# Tracing must be a pure observer: a sweep run with --trace produces
# byte-identical CSV/JSONL artifacts to an untraced run (virtual clocks
# are never advanced by emit), both in plain engine mode and under the
# fork-launcher service where per-task shards are stitched.  Also
# validates the exported Chrome JSON structurally (string(JSON)) and
# round-trips the binary spill through the unimem_trace converter.
# Invoked by ctest (label sweep-smoke) as
#   cmake -DSWEEP_CLI=... -DTRACE_CLI=... -DWORK_DIR=... -DSPEC=fig13
#         -P this_file
foreach(var SWEEP_CLI TRACE_CLI WORK_DIR SPEC)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_golden: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{UNIMEM_BENCH_SMOKE} 1)

function(run_cli)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace_golden: '${ARGN}' exited ${rc}")
  endif()
endfunction()

function(assert_same base other what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${base}" "${other}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "trace_golden: ${what}: ${other} differs from ${base} — tracing "
            "perturbed the run it was observing")
  endif()
endfunction()

# Baseline: untraced --jobs 1.
run_cli("${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --quiet
        --csv "${WORK_DIR}/base.csv" --jsonl "${WORK_DIR}/base.jsonl")

# Engine mode with a Chrome JSON trace.
run_cli("${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --quiet
        --trace "${WORK_DIR}/run.json"
        --csv "${WORK_DIR}/traced.csv" --jsonl "${WORK_DIR}/traced.jsonl")
assert_same("${WORK_DIR}/base.csv" "${WORK_DIR}/traced.csv" "engine csv")
assert_same("${WORK_DIR}/base.jsonl" "${WORK_DIR}/traced.jsonl"
            "engine jsonl")

# The exported JSON must parse and carry a non-empty traceEvents array.
file(READ "${WORK_DIR}/run.json" trace_js)
string(JSON n_events LENGTH "${trace_js}" "traceEvents")
if(n_events LESS 1)
  message(FATAL_ERROR "trace_golden: run.json has no traceEvents")
endif()
string(JSON ev0_ph GET "${trace_js}" "traceEvents" 0 "ph")
if(ev0_ph STREQUAL "")
  message(FATAL_ERROR "trace_golden: traceEvents[0] lacks a ph field")
endif()

# Service mode (fork launcher): per-task binary shards stitched into one
# timeline; artifacts still byte-identical.
run_cli("${SWEEP_CLI}" --spec ${SPEC} --launcher fork --workers 2 --quiet
        --trace "${WORK_DIR}/svc.trace"
        --csv "${WORK_DIR}/svc.csv" --jsonl "${WORK_DIR}/svc.jsonl")
assert_same("${WORK_DIR}/base.csv" "${WORK_DIR}/svc.csv" "service csv")
assert_same("${WORK_DIR}/base.jsonl" "${WORK_DIR}/svc.jsonl" "service jsonl")

# Binary spill converts through the unimem_trace CLI and stays valid JSON.
run_cli("${TRACE_CLI}" "${WORK_DIR}/svc.trace" --json "${WORK_DIR}/svc.json"
        --summary)
file(READ "${WORK_DIR}/svc.json" svc_js)
string(JSON n_svc LENGTH "${svc_js}" "traceEvents")
if(n_svc LESS 1)
  message(FATAL_ERROR "trace_golden: converted svc.json has no traceEvents")
endif()

message(STATUS
        "trace_golden: ${SPEC} CSV/JSONL byte-identical traced vs untraced "
        "(engine + fork service); Chrome JSON validated "
        "(${n_events} engine events, ${n_svc} service events)")
