# CLI contract tests for the sweep service layer: strict option parsing
# (--profiler/--jobs/--indices reject junk and overflow instead of
# silently truncating), the --merge coverage/gap heuristics, duplicate
# shard rejection, torn-last-line --resume, and injected-failure recovery
# through the coordinator with retry counters in the summary JSON.
# Invoked by ctest (label sweep-service) as
#   cmake -DSWEEP_CLI=... -DWORK_DIR=... -P this_file
foreach(var SWEEP_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sweep_service_cases: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{UNIMEM_BENCH_SMOKE} 1)
set(SPEC fig12)

# Run the CLI expecting a specific exit code; exports last_stdout /
# last_stderr for content checks.
function(cli_expect expected_rc label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "sweep_service_cases [${label}]: expected exit ${expected_rc}, "
            "got '${rc}'\nstdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(last_stdout "${stdout}" PARENT_SCOPE)
  set(last_stderr "${stderr}" PARENT_SCOPE)
endfunction()

function(expect_contains text needle label)
  string(FIND "${text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "sweep_service_cases [${label}]: expected '${needle}' in:\n${text}")
  endif()
endfunction()

function(expect_not_contains text needle label)
  string(FIND "${text}" "${needle}" pos)
  if(NOT pos EQUAL -1)
    message(FATAL_ERROR
            "sweep_service_cases [${label}]: did not expect '${needle}' "
            "in:\n${text}")
  endif()
endfunction()

function(expect_same a b label)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "sweep_service_cases [${label}]: ${a} and ${b} differ")
  endif()
endfunction()

# ---- strict option parsing (satellite: no atoi truncation) -----------------

cli_expect(1 "profiler trailing garbage"
           "${SWEEP_CLI}" --spec ${SPEC} --profiler 16x --points)
expect_contains("${last_stderr}" "--profiler wants" "profiler trailing garbage")
cli_expect(1 "profiler overflow"
           "${SWEEP_CLI}" --spec ${SPEC} --profiler 18446744073709551616 --points)
cli_expect(1 "profiler zero period"
           "${SWEEP_CLI}" --spec ${SPEC} --profiler 0 --points)
cli_expect(0 "profiler exact accepted"
           "${SWEEP_CLI}" --spec ${SPEC} --profiler exact --points)

cli_expect(1 "jobs trailing garbage"
           "${SWEEP_CLI}" --spec ${SPEC} --jobs 4x --points)
expect_contains("${last_stderr}" "--jobs wants" "jobs trailing garbage")
cli_expect(1 "jobs negative" "${SWEEP_CLI}" --spec ${SPEC} --jobs -2 --points)

cli_expect(1 "indices trailing garbage"
           "${SWEEP_CLI}" --spec ${SPEC} --indices 1,2x --points)
cli_expect(1 "indices out of range"
           "${SWEEP_CLI}" --spec ${SPEC} --indices 0,99 --points)
expect_contains("${last_stderr}" "does not contain" "indices out of range")

cli_expect(1 "unknown launcher"
           "${SWEEP_CLI}" --spec ${SPEC} --launcher bogus --points)
cli_expect(1 "launcher excludes shards"
           "${SWEEP_CLI}" --spec ${SPEC} --launcher fork --shard 0/2)
cli_expect(1 "resume needs jsonl" "${SWEEP_CLI}" --spec ${SPEC} --resume)

# ---- merge heuristics ------------------------------------------------------

cli_expect(0 "shard 0" "${SWEEP_CLI}" --spec ${SPEC} --shard 0/2 --quiet
           --jsonl "${WORK_DIR}/s0.jsonl")
cli_expect(0 "shard 1" "${SWEEP_CLI}" --spec ${SPEC} --shard 1/2 --quiet
           --jsonl "${WORK_DIR}/s1.jsonl")

# Overlapping shard inputs are a mistake, not a merge.
cli_expect(1 "duplicate shards rejected"
           "${SWEEP_CLI}" --merge "${WORK_DIR}/s0.jsonl" "${WORK_DIR}/s0.jsonl"
           --quiet --csv "${WORK_DIR}/dup.csv")

# A lone shard without --spec merges fine (filtered/partial sweeps are
# legitimate) but the index-gap heuristic must flag it on stderr.
cli_expect(0 "gap heuristic warns"
           "${SWEEP_CLI}" --merge "${WORK_DIR}/s0.jsonl" --quiet
           --csv "${WORK_DIR}/half.csv")
expect_contains("${last_stderr}" "unfilled" "gap heuristic warns")

# With --spec the same gap is a hard coverage error...
cli_expect(1 "spec coverage enforced"
           "${SWEEP_CLI}" --merge "${WORK_DIR}/s0.jsonl" --spec ${SPEC} --quiet
           --csv "${WORK_DIR}/half2.csv")
expect_contains("${last_stderr}" "do not cover" "spec coverage enforced")

# ...and a complete partition passes both checks silently.
cli_expect(0 "full merge clean"
           "${SWEEP_CLI}" --merge "${WORK_DIR}/s0.jsonl" "${WORK_DIR}/s1.jsonl"
           --spec ${SPEC} --quiet --csv "${WORK_DIR}/merged.csv")
expect_not_contains("${last_stderr}" "unfilled" "full merge clean")

# ---- torn-last-line resume -------------------------------------------------

cli_expect(0 "reference run" "${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --quiet
           --csv "${WORK_DIR}/j1.csv" --jsonl "${WORK_DIR}/j1.jsonl")

# Fabricate a crash artifact: three complete rows plus a torn tail.
file(STRINGS "${WORK_DIR}/j1.jsonl" j1_lines)
list(SUBLIST j1_lines 0 3 crash_lines)
list(JOIN crash_lines "\n" crash_text)
string(APPEND crash_text "\n{\"index\":3,\"label\":\"torn-mid-wri")
file(WRITE "${WORK_DIR}/resumed.jsonl" "${crash_text}")

cli_expect(0 "torn resume" "${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --resume
           --quiet --csv "${WORK_DIR}/resumed.csv"
           --jsonl "${WORK_DIR}/resumed.jsonl")
expect_contains("${last_stderr}" "torn trailing line" "torn resume")
expect_contains("${last_stdout}" "3 resumed" "torn resume")
expect_same("${WORK_DIR}/j1.csv" "${WORK_DIR}/resumed.csv" "torn resume csv")
expect_same("${WORK_DIR}/j1.jsonl" "${WORK_DIR}/resumed.jsonl"
            "torn resume jsonl")

# ---- injected-failure recovery through the coordinator ---------------------

# Seeded transient faults on (almost) every point's first attempt; the
# retry layer must recover the campaign to zero failed rows, count its
# work in the summary JSON, and still emit byte-identical artifacts.
cli_expect(0 "service recovery"
           "${SWEEP_CLI}" --spec ${SPEC} --launcher fork --workers 2 --steal
           --retries 3 --inject-fail 0.9:7 --backoff-base 0.001 --quiet
           --csv "${WORK_DIR}/svc.csv" --jsonl "${WORK_DIR}/svc.jsonl"
           --summary-json "${WORK_DIR}/svc.json")
file(READ "${WORK_DIR}/svc.json" summary)
expect_contains("${summary}" "\"failed\":0" "service recovery summary")
expect_contains("${summary}" "\"complete\":true" "service recovery summary")
expect_contains("${summary}" "\"launcher\":\"fork\"" "service recovery summary")
expect_not_contains("${summary}" "\"retries\":0," "service recovery summary")
expect_same("${WORK_DIR}/j1.csv" "${WORK_DIR}/svc.csv" "service recovery csv")
expect_same("${WORK_DIR}/j1.jsonl" "${WORK_DIR}/svc.jsonl"
            "service recovery jsonl")

# The 10k-point stress spec is registered and sized as documented.
cli_expect(0 "stress spec listed" "${SWEEP_CLI}" --list)
expect_contains("${last_stdout}" "service_stress" "stress spec listed")
expect_contains("${last_stdout}" "10000" "stress spec listed")

message(STATUS "sweep_service_cases: all CLI service-layer cases passed")
