# Golden pin of the classic 2-tier path against the N-tier machinery:
# runs SPEC single-process as-is (its points carry no explicit topology,
# so the machine is the classic DRAM+NVM pair built from the bw/lat/dram
# axes) and again with `--tiers classic` (which routes through the
# topology-axis collapse), then asserts the CSV/JSONL artifacts are
# byte-identical.  Any drift here means the N-tier generalization changed
# the 2-tier behavior it must leave untouched.  Invoked by ctest (label
# sweep-smoke) as
#   cmake -DSWEEP_CLI=... -DWORK_DIR=... -DSPEC=fig13 -P this_file
foreach(var SWEEP_CLI WORK_DIR SPEC)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "tiers_golden: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{UNIMEM_BENCH_SMOKE} 1)

function(run_cli)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tiers_golden: '${ARGN}' exited ${rc}")
  endif()
endfunction()

run_cli("${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --quiet
        --csv "${WORK_DIR}/base.csv" --jsonl "${WORK_DIR}/base.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --tiers classic --quiet
        --csv "${WORK_DIR}/classic.csv" --jsonl "${WORK_DIR}/classic.jsonl")

foreach(ext csv jsonl)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/base.${ext}" "${WORK_DIR}/classic.${ext}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "tiers_golden: ${SPEC} --tiers classic ${ext} differs from the "
            "spec-default artifact (the 2-tier path is no longer inert)")
  endif()
endforeach()
message(STATUS
        "tiers_golden: ${SPEC} CSV/JSONL byte-identical with and without "
        "--tiers classic (2-tier machine pinned)")
