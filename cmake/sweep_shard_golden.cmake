# Golden determinism of the unimem_sweep CLI across execution topologies:
# runs SPEC single-process (--jobs 1), as two --shard I/2 slices stitched
# back with --merge, as a fork-based --shards 2 run, under the coordinator
# with each launcher (inproc+steal, fork, cmd self-exec), and as a run
# killed mid-campaign (simulated by truncating the --jobs 1 artifact to a
# prefix plus a torn line) finished via --resume — then asserts the
# CSV/JSONL artifacts of every topology are byte-identical to the
# --jobs 1 ones.  Invoked by ctest (label sweep-smoke) as
#   cmake -DSWEEP_CLI=... -DWORK_DIR=... -DSPEC=fig12 -P this_file
foreach(var SWEEP_CLI WORK_DIR SPEC)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sweep_shard_golden: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{UNIMEM_BENCH_SMOKE} 1)

function(run_cli)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep_shard_golden: '${ARGN}' exited ${rc}")
  endif()
endfunction()

run_cli("${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --quiet
        --csv "${WORK_DIR}/j1.csv" --jsonl "${WORK_DIR}/j1.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --shard 0/2 --quiet
        --jsonl "${WORK_DIR}/s0.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --shard 1/2 --quiet
        --jsonl "${WORK_DIR}/s1.jsonl")
run_cli("${SWEEP_CLI}" --merge "${WORK_DIR}/s0.jsonl" "${WORK_DIR}/s1.jsonl"
        --quiet --csv "${WORK_DIR}/merged.csv"
        --jsonl "${WORK_DIR}/merged.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --shards 2 --quiet
        --csv "${WORK_DIR}/forked.csv" --jsonl "${WORK_DIR}/forked.jsonl")

# Coordinator service topologies: every launcher must reproduce the same
# bytes, including with work stealing and per-point retries enabled.
run_cli("${SWEEP_CLI}" --spec ${SPEC} --launcher inproc --workers 2 --steal
        --retries 1 --quiet
        --csv "${WORK_DIR}/svc_inproc.csv" --jsonl "${WORK_DIR}/svc_inproc.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --launcher fork --workers 2 --quiet
        --csv "${WORK_DIR}/svc_fork.csv" --jsonl "${WORK_DIR}/svc_fork.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --launcher cmd --workers 2 --steal --quiet
        --csv "${WORK_DIR}/svc_cmd.csv" --jsonl "${WORK_DIR}/svc_cmd.jsonl")

# Kill-and-resume: fabricate a crash artifact — the first three complete
# rows of the --jobs 1 stream plus a torn trailing line — and let --resume
# finish the campaign.  The resumed artifacts must be byte-identical too.
file(STRINGS "${WORK_DIR}/j1.jsonl" j1_lines)
list(SUBLIST j1_lines 0 3 crash_lines)
list(JOIN crash_lines "\n" crash_text)
string(APPEND crash_text "\n{\"index\":3,\"label\":\"torn-mid-wri")
file(WRITE "${WORK_DIR}/resumed.jsonl" "${crash_text}")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --resume --quiet
        --csv "${WORK_DIR}/resumed.csv" --jsonl "${WORK_DIR}/resumed.jsonl")

foreach(variant merged forked svc_inproc svc_fork svc_cmd resumed)
  foreach(ext csv jsonl)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              "${WORK_DIR}/j1.${ext}" "${WORK_DIR}/${variant}.${ext}"
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "sweep_shard_golden: ${SPEC} ${variant}.${ext} differs from the "
              "--jobs 1 artifact (determinism across topologies is broken)")
    endif()
  endforeach()
endforeach()
message(STATUS
        "sweep_shard_golden: ${SPEC} CSV/JSONL byte-identical across "
        "--jobs 1, --shard+--merge, --shards 2, the inproc/fork/cmd "
        "launchers, and a killed-then---resume'd run")
