# Golden determinism of the unimem_sweep CLI across execution topologies:
# runs SPEC single-process (--jobs 1), as two --shard I/2 slices stitched
# back with --merge, and as a fork-based --shards 2 run, then asserts the
# CSV/JSONL artifacts of every topology are byte-identical to the
# --jobs 1 ones.  Invoked by ctest (label sweep-smoke) as
#   cmake -DSWEEP_CLI=... -DWORK_DIR=... -DSPEC=fig12 -P this_file
foreach(var SWEEP_CLI WORK_DIR SPEC)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sweep_shard_golden: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{UNIMEM_BENCH_SMOKE} 1)

function(run_cli)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep_shard_golden: '${ARGN}' exited ${rc}")
  endif()
endfunction()

run_cli("${SWEEP_CLI}" --spec ${SPEC} --jobs 1 --quiet
        --csv "${WORK_DIR}/j1.csv" --jsonl "${WORK_DIR}/j1.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --shard 0/2 --quiet
        --jsonl "${WORK_DIR}/s0.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --shard 1/2 --quiet
        --jsonl "${WORK_DIR}/s1.jsonl")
run_cli("${SWEEP_CLI}" --merge "${WORK_DIR}/s0.jsonl" "${WORK_DIR}/s1.jsonl"
        --quiet --csv "${WORK_DIR}/merged.csv"
        --jsonl "${WORK_DIR}/merged.jsonl")
run_cli("${SWEEP_CLI}" --spec ${SPEC} --shards 2 --quiet
        --csv "${WORK_DIR}/forked.csv" --jsonl "${WORK_DIR}/forked.jsonl")

foreach(variant merged forked)
  foreach(ext csv jsonl)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              "${WORK_DIR}/j1.${ext}" "${WORK_DIR}/${variant}.${ext}"
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "sweep_shard_golden: ${SPEC} ${variant}.${ext} differs from the "
              "--jobs 1 artifact (determinism across topologies is broken)")
    endif()
  endforeach()
endforeach()
message(STATUS
        "sweep_shard_golden: ${SPEC} CSV/JSONL byte-identical across "
        "--jobs 1, --shard+--merge, and --shards 2")
