# Asserts that the per-extra-label whole-binary aggregate tests exist.
#
# gtest_discover_tests flattens list-valued PROPERTIES when it serializes
# the discovery script (a documented limitation), silently dropping every
# label after the first.  unimem_add_test works around it by adding one
# whole-binary aggregate test per extra label (`<suite>_<label>`), which is
# what makes `ctest -L e2e` select anything at all.  This script runs
# `ctest -N -L <label>` against the build directory and fails if any
# expected aggregate vanished — so a CMake refactor cannot silently break
# the label without CI noticing.
#
# Inputs (all -D):
#   CTEST_EXECUTABLE  path to ctest
#   BUILD_DIR         the configured build directory
#   LABEL             the ctest label to query (e.g. e2e)
#   EXPECTED          comma-separated aggregate test names that must appear
cmake_minimum_required(VERSION 3.20)

foreach(var CTEST_EXECUTABLE BUILD_DIR LABEL EXPECTED)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_label_aggregates: missing -D${var}")
  endif()
endforeach()

execute_process(
  COMMAND ${CTEST_EXECUTABLE} -N -L ${LABEL}
  WORKING_DIRECTORY ${BUILD_DIR}
  OUTPUT_VARIABLE listing
  ERROR_VARIABLE listing_err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "check_label_aggregates: ctest -N -L ${LABEL} failed (${rc}): "
          "${listing_err}")
endif()

string(REPLACE "," ";" expected_list "${EXPECTED}")
foreach(name IN LISTS expected_list)
  if(NOT listing MATCHES "${name}")
    message(FATAL_ERROR
            "check_label_aggregates: expected aggregate test '${name}' is "
            "missing from `ctest -L ${LABEL}` — the label-flattening "
            "workaround in unimem_add_test was dropped or renamed.\n"
            "Listing was:\n${listing}")
  endif()
endforeach()

message(STATUS
        "label '${LABEL}': all expected aggregates present (${EXPECTED})")
