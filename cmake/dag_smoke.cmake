# dag-smoke pipeline: run the dag_slack sweep (off + slack points) with a
# binary trace, then drive the trace toolbox over it —
#   * --summary must report zero truncated runtime/phase spans on a clean
#     run (every phase BEGIN got its END), and
#   * --dag must rebuild a phase DAG from the runtime/phase spans and
#     report a positive critical-path length.
# Also pins the --dag off/--dag slack axis-collapse pins end to end.
# Invoked by ctest (label dag-smoke) as
#   cmake -DSWEEP_CLI=... -DTRACE_CLI=... -DWORK_DIR=... -P this_file
foreach(var SWEEP_CLI TRACE_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "dag_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(ENV{UNIMEM_BENCH_SMOKE} 1)

function(run_cli out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dag_smoke: '${ARGN}' exited ${rc}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Traced slack-pinned run (the trace carries runtime/phase spans for the
# DAG rebuild; pinning the axis halves the smoke cost).
run_cli(sweep_out "${SWEEP_CLI}" --spec dag_slack --dag slack --jobs 1
        --quiet --trace "${WORK_DIR}/run.trace"
        --jsonl "${WORK_DIR}/slack.jsonl")

# The off pin must also run clean (the collapse path for the other value).
run_cli(off_out "${SWEEP_CLI}" --spec dag_slack --dag off --jobs 1 --quiet
        --jsonl "${WORK_DIR}/off.jsonl")

# --summary: table renders, and a clean run has no torn runtime/phase rows.
run_cli(summary_out "${TRACE_CLI}" "${WORK_DIR}/run.trace" --summary)
if(NOT summary_out MATCHES "truncated")
  message(FATAL_ERROR "dag_smoke: --summary lacks the truncated column")
endif()
if(NOT summary_out MATCHES ", 0 truncated spans")
  message(FATAL_ERROR
          "dag_smoke: --summary reports torn spans on a clean run:\n"
          "${summary_out}")
endif()

# --dag: the critical-path report rebuilds from the same spill.
run_cli(dag_out "${TRACE_CLI}" "${WORK_DIR}/run.trace" --dag)
if(NOT dag_out MATCHES "critical path ")
  message(FATAL_ERROR
          "dag_smoke: --dag did not print a critical-path report:\n"
          "${dag_out}")
endif()
if(dag_out MATCHES "critical path 0\\.000000s")
  message(FATAL_ERROR
          "dag_smoke: --dag reports a zero critical path — phase spans "
          "missing from the trace?\n${dag_out}")
endif()

message(STATUS "dag_smoke: sweep + --summary + --dag pipeline ok")
