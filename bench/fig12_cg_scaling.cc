// Figure 12: CG strong scaling (the paper's Edison runs, class D input,
// NUMA-emulated NVM = 0.6x DRAM bandwidth + 1.89x DRAM latency).
// Expected shape (paper): Unimem stays within ~7% of DRAM-only at every
// scale while NVM-only keeps a visible gap; per-rank data shrinks with
// scale, shifting object sensitivities.
//
// Batch on the sweep engine over the shared "fig12" SweepSpec — an
// explicit-points spec varying `nranks` per row, each rank count
// normalized by its own memoized DRAM-only baseline.
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("fig12");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep(
      "Fig. 12: CG strong scaling, NUMA-emulated NVM (normalized to DRAM-only)");
  rep.set_header({"ranks", "NVM-only", "Unimem", "Unimem migrations"});
  for (int ranks : {2, 4, 8, 16}) {
    const std::string r = std::to_string(ranks);
    const sweep::SweepRow* uni =
        bench::ok_row(outcome, {{"ranks", r}, {"policy", "unimem"}});
    rep.add_row(
        {r, bench::cell(outcome, {{"ranks", r}, {"policy", "nvm-only"}}),
         bench::cell(outcome, {{"ranks", r}, {"policy", "unimem"}}),
         uni != nullptr ? std::to_string(uni->result.total_migrations)
                        : "n/a"});
  }
  rep.print();
  return bench::exit_code(outcome);
}
