// Figure 12: CG strong scaling (the paper's Edison runs, class D input,
// NUMA-emulated NVM = 0.6x DRAM bandwidth + 1.89x DRAM latency).
// Expected shape (paper): Unimem stays within ~7% of DRAM-only at every
// scale while NVM-only keeps a visible gap; per-rank data shrinks with
// scale, shifting object sensitivities.
#include "bench_common.h"

int main() {
  using namespace unimem;
  exp::Report rep(
      "Fig. 12: CG strong scaling, NUMA-emulated NVM (normalized to DRAM-only)");
  rep.set_header({"ranks", "NVM-only", "Unimem", "Unimem migrations"});
  for (int ranks : {2, 4, 8, 16}) {
    exp::RunConfig cfg = bench::base_config("cg");
    cfg.wcfg.cls = 'D';
    cfg.wcfg.nranks = ranks;
    cfg = bench::smoke(cfg);
    cfg.nvm_bw_ratio = 0.60;   // the paper's NUMA emulation
    cfg.nvm_lat_mult = 1.89;
    cfg.policy = exp::Policy::kDramOnly;
    double dram = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kNvmOnly;
    double nvm = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kUnimem;
    exp::RunResult uni = exp::run_once(cfg);
    rep.add_row({std::to_string(ranks), exp::Report::num(nvm / dram, 2),
                 exp::Report::num(uni.time_s / dram, 2),
                 std::to_string(uni.total_migrations)});
  }
  rep.print();
  return 0;
}
