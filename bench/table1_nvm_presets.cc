// Table 1: NVM performance characteristics (from the NVMDB survey), plus
// the derived simulator tier configurations used across the evaluation.
#include "bench_common.h"
#include "simmem/tier_config.h"

int main() {
  using namespace unimem;
  exp::Report rep("Table 1: NVM performance characteristics vs DRAM");
  rep.set_header({"technology", "read (ns)", "write (ns)",
                  "rand read BW (MB/s)", "rand write BW (MB/s)"});
  std::size_t n = 0;
  const mem::NvmTechnology* t = mem::table1_technologies(&n);
  auto range = [](double lo, double hi) {
    return lo == hi ? exp::Report::num(lo, 0)
                    : exp::Report::num(lo, 0) + "-" + exp::Report::num(hi, 0);
  };
  for (std::size_t i = 0; i < n; ++i)
    rep.add_row({t[i].name, range(t[i].read_ns_lo, t[i].read_ns_hi),
                 range(t[i].write_ns_lo, t[i].write_ns_hi),
                 range(t[i].rand_read_mbps_lo, t[i].rand_read_mbps_hi),
                 range(t[i].rand_write_mbps_lo, t[i].rand_write_mbps_hi)});
  rep.print();

  exp::Report rep2("Derived evaluation tiers (DRAM basis + ratio sweeps)");
  rep2.set_header({"tier", "read lat (ns)", "read BW (GB/s)"});
  auto row = [&](const char* name, const mem::TierConfig& c) {
    rep2.add_row({name, exp::Report::num(c.read_latency_s * 1e9, 0),
                  exp::Report::num(c.read_bw / 1e9, 1)});
  };
  row("DRAM basis", mem::TierConfig::dram_basis(0));
  row("NVM 1/2 BW", mem::TierConfig::nvm_scaled(0, 0.5, 1.0));
  row("NVM 1/8 BW", mem::TierConfig::nvm_scaled(0, 0.125, 1.0));
  row("NVM 4x lat", mem::TierConfig::nvm_scaled(0, 1.0, 4.0));
  row("NUMA-emulated (Edison)", mem::TierConfig::nvm_numa_emulated(0));
  rep2.print();
  return 0;
}
