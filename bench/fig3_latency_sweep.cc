// Figure 3: NVM-only execution time vs NVM latency (2x, 4x, 8x DRAM),
// normalized to DRAM-only.  Expected shape (paper): slowdowns grow with
// latency; LU ~2.14x already at 2x.
//
// Batch on the sweep engine over the shared "fig3" SweepSpec.
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("fig3");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep(
      "Fig. 3: NVM-only slowdown vs latency (normalized to DRAM-only)");
  rep.set_header({"benchmark", "2x lat", "4x lat", "8x lat"});
  for (const std::string& w : spec.workloads) {
    std::vector<std::string> row{w};
    for (const char* lat : {"2", "4", "8"})
      row.push_back(bench::cell(outcome, {{"workload", w}, {"lat", lat}}));
    rep.add_row(row);
  }
  rep.print();
  return bench::exit_code(outcome);
}
