// Figure 3: NVM-only execution time vs NVM latency (2x, 4x, 8x DRAM),
// normalized to DRAM-only.  Expected shape (paper): slowdowns grow with
// latency; LU ~2.14x already at 2x.
#include "bench_common.h"

int main() {
  using namespace unimem;
  exp::Report rep("Fig. 3: NVM-only slowdown vs latency (normalized to DRAM-only)");
  rep.set_header({"benchmark", "2x lat", "4x lat", "8x lat"});
  for (const std::string& w : bench::npb()) {
    exp::RunConfig cfg = bench::base_config(w);
    cfg = bench::smoke(cfg);
    cfg.policy = exp::Policy::kDramOnly;
    double dram = exp::run_once(cfg).time_s;
    std::vector<std::string> row{w};
    for (double mult : {2.0, 4.0, 8.0}) {
      cfg.policy = exp::Policy::kNvmOnly;
      cfg.nvm_bw_ratio = 1.0;
      cfg.nvm_lat_mult = mult;
      row.push_back(exp::Report::num(exp::run_once(cfg).time_s / dram, 2));
    }
    rep.add_row(row);
  }
  rep.print();
  return 0;
}
