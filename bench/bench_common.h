// Shared helpers for the figure/table harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/report.h"
#include "experiments/runner.h"
#include "workloads/workload.h"

namespace unimem::bench {

/// The paper's base configuration: class C input, 4 ranks, 1 rank/node,
/// 8 MiB DRAM allowance (= 256 MB scaled), 10 iterations.
inline exp::RunConfig base_config(const std::string& workload) {
  exp::RunConfig cfg;
  cfg.workload = workload;
  cfg.wcfg.cls = 'C';
  cfg.wcfg.iterations = 10;
  cfg.wcfg.nranks = 4;
  cfg.ranks_per_node = 1;
  cfg.dram_capacity = 8 * kMiB;
  return cfg;
}

/// bench-smoke clamp: with UNIMEM_BENCH_SMOKE set in the environment (the
/// ctest `bench-smoke` label sets it), shrink a config to a tiny problem so
/// every figure harness exercises its full sweep in well under a second.
/// The numbers printed are then meaningless; only "it still runs" is tested.
/// Call it after all per-figure overrides of workload-size fields.
inline exp::RunConfig smoke(exp::RunConfig cfg) {
  if (std::getenv("UNIMEM_BENCH_SMOKE") == nullptr) return cfg;
  cfg.wcfg.cls = 'S';
  cfg.wcfg.iterations = std::min(cfg.wcfg.iterations, 3);
  cfg.wcfg.nranks = std::min(cfg.wcfg.nranks, 2);
  return cfg;
}

/// NPB kernels in the paper's presentation order (Figs. 2/3/9/10).
inline std::vector<std::string> npb() {
  return {"cg", "ft", "bt", "lu", "sp", "mg"};
}

}  // namespace unimem::bench
