// Figure 4: impact of per-object placement on SP.  For each NVM config
// (1/2 bandwidth or 4x latency) and input class, place ONE object set in
// DRAM (in_buffer+out_buffer, lhs, or rhs) and compare against DRAM-only
// and NVM-only.
//
// Expected shape (paper Observation 3): the buffers help under the
// bandwidth configuration but not the latency one; lhs helps under the
// latency configuration but not the bandwidth one; rhs helps under both.
//
// Batch on the sweep engine over the shared "fig4" SweepSpec — an
// explicit-points spec (each point carries its own manual_dram set), with
// the DRAM-only reference served by the memoized normalization baseline
// instead of a bespoke run per table.
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("fig4");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  struct NvmCfg {
    const char* slug;  // the spec's "nvm" axis value
    const char* name;  // the table title's human name
  };
  const NvmCfg nvms[] = {{"bw0.5", "1/2 bandwidth"}, {"lat4", "4x latency"}};
  const std::pair<const char*, const char*> sets[] = {
      {"in+out", "in+out buffer"}, {"lhs", "lhs"}, {"rhs", "rhs"}};

  for (char cls : {'C', 'D'}) {
    for (const NvmCfg& n : nvms) {
      exp::Report rep(std::string("Fig. 4: SP class ") + cls + ", NVM = " +
                      n.name + " (normalized to DRAM-only)");
      rep.set_header({"placement in DRAM", "normalized time"});
      const std::map<std::string, std::string> group{
          {"cls", std::string(1, cls)}, {"nvm", n.slug}};
      rep.add_row({"(DRAM-only)", exp::Report::num(1.0, 2)});
      for (const auto& [slug, label] : sets) {
        auto where = group;
        where["placement"] = slug;
        rep.add_row({label, bench::cell(outcome, where)});
      }
      auto where = group;
      where["placement"] = "nvm-only";
      rep.add_row({"(NVM-only)", bench::cell(outcome, where)});
      rep.print();
    }
  }
  return bench::exit_code(outcome);
}
