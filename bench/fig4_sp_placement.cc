// Figure 4: impact of per-object placement on SP.  For each NVM config
// (1/2 bandwidth or 4x latency) and input class, place ONE object set in
// DRAM (in_buffer+out_buffer, lhs, or rhs) and compare against DRAM-only
// and NVM-only.
//
// Expected shape (paper Observation 3): the buffers help under the
// bandwidth configuration but not the latency one; lhs helps under the
// latency configuration but not the bandwidth one; rhs helps under both.
#include "bench_common.h"

int main() {
  using namespace unimem;
  struct NvmCfg {
    const char* name;
    double bw, lat;
  };
  const NvmCfg nvms[] = {{"1/2 bandwidth", 0.5, 1.0}, {"4x latency", 1.0, 4.0}};
  const std::vector<std::pair<std::string, std::vector<std::string>>> sets = {
      {"in+out buffer", {"in_buffer", "out_buffer"}},
      {"lhs", {"lhs"}},
      {"rhs", {"rhs"}},
  };

  for (char cls : {'C', 'D'}) {
    for (const NvmCfg& n : nvms) {
      exp::Report rep(std::string("Fig. 4: SP class ") + cls + ", NVM = " +
                      n.name + " (normalized to DRAM-only)");
      rep.set_header({"placement in DRAM", "normalized time"});
      exp::RunConfig cfg = bench::base_config("sp");
      cfg.wcfg.cls = cls;
      cfg = bench::smoke(cfg);
      cfg.nvm_bw_ratio = n.bw;
      cfg.nvm_lat_mult = n.lat;
      cfg.policy = exp::Policy::kDramOnly;
      double dram = exp::run_once(cfg).time_s;
      rep.add_row({"(DRAM-only)", exp::Report::num(1.0, 2)});
      for (const auto& [label, names] : sets) {
        cfg.policy = exp::Policy::kManual;
        cfg.manual_dram = names;
        rep.add_row({label,
                     exp::Report::num(exp::run_once(cfg).time_s / dram, 2)});
      }
      cfg.policy = exp::Policy::kNvmOnly;
      rep.add_row({"(NVM-only)",
                   exp::Report::num(exp::run_once(cfg).time_s / dram, 2)});
      rep.print();
    }
  }
  return 0;
}
