// Figure 11: contribution of the four techniques, applied cumulatively:
//   (1) cross-phase global search
//   (2) + phase-local search
//   (3) + partitioning large data objects (chunking)
//   (4) + initial data placement
// NVM at 1/2 DRAM bandwidth.  Expected shape (paper): global search
// dominates CG/LU; local search adds for BT/SP; chunking only helps FT;
// initial placement helps everywhere (87% of SP's gain).
#include "bench_common.h"

int main() {
  using namespace unimem;
  exp::Report rep(
      "Fig. 11: cumulative technique ablation at NVM = 1/2 bandwidth "
      "(normalized to DRAM-only; lower is better)");
  rep.set_header({"benchmark", "NVM-only", "(1) global", "(1)+(2) local",
                  "+(3) chunking", "+(4) initial"});
  std::vector<std::string> all = bench::npb();
  all.push_back("nek");
  for (const std::string& w : all) {
    exp::RunConfig cfg = bench::base_config(w);
    cfg = bench::smoke(cfg);
    cfg.nvm_bw_ratio = 0.5;
    cfg.policy = exp::Policy::kDramOnly;
    double dram = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kNvmOnly;
    double nvm = exp::run_once(cfg).time_s;

    auto unimem_time = [&](bool local, bool chunk, bool initial) {
      exp::RunConfig u = cfg;
      u.policy = exp::Policy::kUnimem;
      u.unimem.enable_global_search = true;
      u.unimem.enable_local_search = local;
      u.unimem.enable_chunking = chunk;
      u.unimem.enable_initial_placement = initial;
      return exp::run_once(u).time_s / dram;
    };

    rep.add_row({w, exp::Report::num(nvm / dram, 2),
                 exp::Report::num(unimem_time(false, false, false), 2),
                 exp::Report::num(unimem_time(true, false, false), 2),
                 exp::Report::num(unimem_time(true, true, false), 2),
                 exp::Report::num(unimem_time(true, true, true), 2)});
  }
  rep.print();
  return 0;
}
