// Figure 11: contribution of the four techniques, applied cumulatively:
//   (1) cross-phase global search
//   (2) + phase-local search
//   (3) + partitioning large data objects (chunking)
//   (4) + initial data placement
// NVM at 1/2 DRAM bandwidth.  Expected shape (paper): global search
// dominates CG/LU; local search adds for BT/SP; chunking only helps FT;
// initial placement helps everywhere (87% of SP's gain).
//
// Batch on the sweep engine: the technique axis lives in the shared
// "fig11" SweepSpec (cumulative TechniqueSets), so the 35-point grid runs
// under one memoized-baseline batch instead of a bespoke loop.
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("fig11");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep(
      "Fig. 11: cumulative technique ablation at NVM = 1/2 bandwidth "
      "(normalized to DRAM-only; lower is better)");
  rep.set_header({"benchmark", "NVM-only", "(1) global", "(1)+(2) local",
                  "+(3) chunking", "+(4) initial"});
  for (const std::string& w : spec.workloads) {
    std::vector<std::string> row{
        w, bench::cell(outcome, {{"workload", w}, {"policy", "nvm-only"}})};
    for (const sweep::TechniqueSet& tech : spec.techniques)
      row.push_back(bench::cell(
          outcome,
          {{"workload", w}, {"policy", "unimem"}, {"tech", tech.name}}));
    rep.add_row(row);
  }
  rep.print();
  return bench::exit_code(outcome);
}
