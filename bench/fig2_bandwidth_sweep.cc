// Figure 2: NVM-only execution time vs NVM bandwidth (1/2, 1/4, 1/8 of
// DRAM), normalized to DRAM-only.  Expected shape (paper): clear slowdowns
// growing as bandwidth shrinks; LU among the worst (2.19x at 1/2 BW).
//
// Runs as a batch on the sweep engine (src/sweep/): the grid is the
// shared "fig2" SweepSpec, the DRAM-only baselines are memoized per
// workload, and this file only pivots the rows into the figure's table.
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("fig2");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep(
      "Fig. 2: NVM-only slowdown vs bandwidth (normalized to DRAM-only)");
  rep.set_header({"benchmark", "1/2 BW", "1/4 BW", "1/8 BW"});
  for (const std::string& w : spec.workloads) {
    std::vector<std::string> row{w};
    for (const char* bw : {"0.5", "0.25", "0.125"})
      row.push_back(bench::cell(outcome, {{"workload", w}, {"bw", bw}}));
    rep.add_row(row);
  }
  rep.print();
  return bench::exit_code(outcome);
}
