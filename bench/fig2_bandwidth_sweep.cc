// Figure 2: NVM-only execution time vs NVM bandwidth (1/2, 1/4, 1/8 of
// DRAM), normalized to DRAM-only.  Expected shape (paper): clear slowdowns
// growing as bandwidth shrinks; LU among the worst (2.19x at 1/2 BW).
#include "bench_common.h"

int main() {
  using namespace unimem;
  exp::Report rep("Fig. 2: NVM-only slowdown vs bandwidth (normalized to DRAM-only)");
  rep.set_header({"benchmark", "1/2 BW", "1/4 BW", "1/8 BW"});
  for (const std::string& w : bench::npb()) {
    exp::RunConfig cfg = bench::base_config(w);
    cfg = bench::smoke(cfg);
    cfg.policy = exp::Policy::kDramOnly;
    double dram = exp::run_once(cfg).time_s;
    std::vector<std::string> row{w};
    for (double ratio : {0.5, 0.25, 0.125}) {
      cfg.policy = exp::Policy::kNvmOnly;
      cfg.nvm_bw_ratio = ratio;
      cfg.nvm_lat_mult = 1.0;
      row.push_back(exp::Report::num(exp::run_once(cfg).time_s / dram, 2));
    }
    rep.add_row(row);
  }
  rep.print();
  return 0;
}
