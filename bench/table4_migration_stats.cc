// Table 4: data-migration details for HMS with Unimem (NVM = 1/2 DRAM
// bandwidth): number of migrations, migrated data size, pure runtime cost,
// and the share of migration time overlapped with computation.
// Expected shape (paper): runtime cost < 3% everywhere; overlap typically
// 60-100%; BT and Nek migrate far more than CG/LU/MG.
#include "bench_common.h"

int main() {
  using namespace unimem;
  exp::Report rep("Table 4: migration details (NVM = 1/2 DRAM bandwidth)");
  rep.set_header({"benchmark", "migrations", "migrated (MB)",
                  "pure runtime cost %", "% overlap"});
  std::vector<std::string> all = bench::npb();
  all.push_back("nek");
  for (const std::string& w : all) {
    exp::RunConfig cfg = bench::base_config(w);
    cfg = bench::smoke(cfg);
    cfg.nvm_bw_ratio = 0.5;
    cfg.policy = exp::Policy::kUnimem;
    exp::RunResult r = exp::run_once(cfg);
    rep.add_row({w, std::to_string(r.total_migrations),
                 exp::Report::num(static_cast<double>(r.total_bytes_moved) / 1e6, 1),
                 exp::Report::num(r.mean_overhead_percent, 2),
                 exp::Report::num(r.mean_overlap_percent, 1)});
  }
  rep.print();
  return 0;
}
