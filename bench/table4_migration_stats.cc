// Table 4: data-migration details for HMS with Unimem (NVM = 1/2 DRAM
// bandwidth): number of migrations, migrated data size, pure runtime cost,
// and the share of migration time overlapped with computation.
// Expected shape (paper): runtime cost < 3% everywhere; overlap typically
// 60-100%; BT and Nek migrate far more than CG/LU/MG.
//
// Batch on the sweep engine over the shared "table4" SweepSpec
// (unnormalized — the table reports raw per-run migration stats).
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("table4");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep("Table 4: migration details (NVM = 1/2 DRAM bandwidth)");
  rep.set_header({"benchmark", "migrations", "migrated (MB)",
                  "pure runtime cost %", "% overlap"});
  for (const std::string& w : spec.workloads) {
    const sweep::SweepRow* r = bench::ok_row(outcome, {{"workload", w}});
    if (r == nullptr) {
      rep.add_row({w, "n/a", "n/a", "n/a", "n/a"});
      continue;
    }
    rep.add_row(
        {w, std::to_string(r->result.total_migrations),
         exp::Report::num(static_cast<double>(r->result.total_bytes_moved) / 1e6,
                          1),
         exp::Report::num(r->result.mean_overhead_percent, 2),
         exp::Report::num(r->result.mean_overlap_percent, 1)});
  }
  rep.print();
  return bench::exit_code(outcome);
}
