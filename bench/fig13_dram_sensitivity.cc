// Figure 13: Unimem sensitivity to the DRAM size (128 / 256 / 512 MB in
// the paper = 4 / 8 / 16 MiB scaled), NVM = 1/2 DRAM bandwidth.
// Expected shape (paper): within ~7% of DRAM-only everywhere except MG at
// the smallest DRAM (13%), whose large aliased objects cannot be placed or
// chunked — yet still ~35% of the NVM gap is closed.
#include "bench_common.h"

int main() {
  using namespace unimem;
  exp::Report rep(
      "Fig. 13: Unimem vs DRAM size (normalized to DRAM-only; paper sizes "
      "128/256/512 MB = 4/8/16 MiB scaled)");
  rep.set_header({"benchmark", "NVM-only", "4 MiB", "8 MiB", "16 MiB"});
  std::vector<std::string> all = bench::npb();
  all.push_back("nek");
  for (const std::string& w : all) {
    exp::RunConfig cfg = bench::base_config(w);
    cfg = bench::smoke(cfg);
    cfg.nvm_bw_ratio = 0.5;
    cfg.policy = exp::Policy::kDramOnly;
    double dram = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kNvmOnly;
    double nvm = exp::run_once(cfg).time_s;
    std::vector<std::string> row{w, exp::Report::num(nvm / dram, 2)};
    for (std::size_t mb : {4, 8, 16}) {
      exp::RunConfig u = cfg;
      u.policy = exp::Policy::kUnimem;
      u.dram_capacity = mb * kMiB;
      row.push_back(exp::Report::num(exp::run_once(u).time_s / dram, 2));
    }
    rep.add_row(row);
  }
  rep.print();
  return 0;
}
