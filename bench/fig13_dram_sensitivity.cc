// Figure 13: Unimem sensitivity to the DRAM size (128 / 256 / 512 MB in
// the paper = 4 / 8 / 16 MiB scaled), NVM = 1/2 DRAM bandwidth.
// Expected shape (paper): within ~7% of DRAM-only everywhere except MG at
// the smallest DRAM (13%), whose large aliased objects cannot be placed or
// chunked — yet still ~35% of the NVM gap is closed.
//
// Batch on the sweep engine over the shared "fig13" SweepSpec; the
// NVM-only reference per workload collapses the DRAM axis (its timing is
// capacity-invariant), so the grid is 7 x (1 + 3) points.
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("fig13");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep(
      "Fig. 13: Unimem vs DRAM size (normalized to DRAM-only; paper sizes "
      "128/256/512 MB = 4/8/16 MiB scaled)");
  rep.set_header({"benchmark", "NVM-only", "4 MiB", "8 MiB", "16 MiB"});
  for (const std::string& w : spec.workloads) {
    std::vector<std::string> row{
        w, bench::cell(outcome, {{"workload", w}, {"policy", "nvm-only"}})};
    for (const char* dram : {"4MiB", "8MiB", "16MiB"})
      row.push_back(bench::cell(
          outcome,
          {{"workload", w}, {"policy", "unimem"}, {"dram", dram}}));
    rep.add_row(row);
  }
  rep.print();
  return bench::exit_code(outcome);
}
