// Phase-DAG critical-path planning: slack-scheduled migration triggers vs
// the classic JIT trigger walk (dag_schedule=slack vs off) on nek/lu at
// tight DRAM allowances.  For each (workload, dram) cell the table reports
// the virtual time of both modes, the exposed (critical-path) migration
// time of both, the fraction of copy time slack mode hides, and the
// critical-path length of the last phase DAG.
// Expected shape: slack's exposed time is strictly lower than off's on the
// tight-DRAM cells, with >= 50% of the copy time hidden on at least one.
//
// Batch on the sweep engine over the shared "dag_slack" SweepSpec
// (unnormalized — the split lives in the in-memory RunResult fields).
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("dag_slack");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep(
      "Phase-DAG slack scheduling: hidden vs exposed migration time");
  rep.set_header({"workload", "dram", "time off (s)", "time slack (s)",
                  "exposed off (s)", "exposed slack (s)", "hidden frac",
                  "crit path (s)"});
  for (const std::string& w : spec.workloads) {
    for (std::size_t dram : spec.dram_capacities) {
      std::map<std::string, std::string> off_key{{"workload", w},
                                                 {"dag", "off"}};
      std::map<std::string, std::string> slack_key{{"workload", w},
                                                   {"dag", "slack"}};
      std::string dram_label = std::to_string(dram / kMiB) + "MiB";
      if (spec.dram_capacities.size() > 1) {
        off_key["dram"] = dram_label;
        slack_key["dram"] = dram_label;
      }
      const sweep::SweepRow* off = bench::ok_row(outcome, off_key);
      const sweep::SweepRow* slack = bench::ok_row(outcome, slack_key);
      if (off == nullptr || slack == nullptr) {
        rep.add_row({w, dram_label, "n/a", "n/a", "n/a", "n/a", "n/a",
                     "n/a"});
        continue;
      }
      const double copy = slack->result.total_copy_s;
      const double hidden = copy - slack->result.total_exposed_s;
      rep.add_row({w, dram_label, exp::Report::num(off->result.time_s, 4),
                   exp::Report::num(slack->result.time_s, 4),
                   exp::Report::num(off->result.total_exposed_s, 4),
                   exp::Report::num(slack->result.total_exposed_s, 4),
                   copy > 0 ? exp::Report::num(hidden / copy, 2) : "n/a",
                   exp::Report::num(slack->result.dag_critical_path_s, 4)});
    }
  }
  rep.print();
  return bench::exit_code(outcome);
}
