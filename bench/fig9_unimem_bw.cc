// Figure 9: DRAM-only vs NVM-only vs X-Men vs Unimem, NVM at 1/2 DRAM
// bandwidth, six NPB kernels + Nek5000(eddy).  Expected shape (paper):
// average NVM-only gap ~18%; Unimem within a few percent of DRAM-only and
// never worse than NVM-only; Unimem ~ X-Men on NPB.
//
// Batch on the sweep engine over the shared "fig9" SweepSpec: one
// DRAM-only baseline per workload serves all three policies, and this
// file only pivots the engine rows into the figure's table.
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("fig9");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep(
      "Fig. 9: policies at NVM = 1/2 DRAM bandwidth (normalized to DRAM-only)");
  rep.set_header({"benchmark", "NVM-only", "X-Men", "Unimem", "migrations",
                  "overlap %", "runtime cost %"});
  for (const std::string& w : spec.workloads) {
    const sweep::SweepRow* uni =
        bench::ok_row(outcome, {{"workload", w}, {"policy", "unimem"}});
    rep.add_row(
        {w, bench::cell(outcome, {{"workload", w}, {"policy", "nvm-only"}}),
         bench::cell(outcome, {{"workload", w}, {"policy", "xmen"}}),
         bench::cell(outcome, {{"workload", w}, {"policy", "unimem"}}),
         uni != nullptr ? std::to_string(uni->result.total_migrations) : "n/a",
         uni != nullptr ? exp::Report::num(uni->result.mean_overlap_percent, 1)
                        : "n/a",
         uni != nullptr
             ? exp::Report::num(uni->result.mean_overhead_percent, 2)
             : "n/a"});
  }
  rep.print();
  return bench::exit_code(outcome);
}
