// Figure 9: DRAM-only vs NVM-only vs X-Men vs Unimem, NVM at 1/2 DRAM
// bandwidth, six NPB kernels + Nek5000(eddy).  Expected shape (paper):
// average NVM-only gap ~18%; Unimem within a few percent of DRAM-only and
// never worse than NVM-only; Unimem ~ X-Men on NPB.
#include "bench_common.h"

int main() {
  using namespace unimem;
  exp::Report rep(
      "Fig. 9: policies at NVM = 1/2 DRAM bandwidth (normalized to DRAM-only)");
  rep.set_header({"benchmark", "NVM-only", "X-Men", "Unimem", "migrations",
                  "overlap %", "runtime cost %"});
  std::vector<std::string> all = bench::npb();
  all.push_back("nek");
  for (const std::string& w : all) {
    exp::RunConfig cfg = bench::base_config(w);
    cfg = bench::smoke(cfg);
    cfg.nvm_bw_ratio = 0.5;
    cfg.nvm_lat_mult = 1.0;
    cfg.policy = exp::Policy::kDramOnly;
    double dram = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kNvmOnly;
    double nvm = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kXMen;
    double xmen = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kUnimem;
    exp::RunResult uni = exp::run_once(cfg);
    rep.add_row({w, exp::Report::num(nvm / dram, 2),
                 exp::Report::num(xmen / dram, 2),
                 exp::Report::num(uni.time_s / dram, 2),
                 std::to_string(uni.total_migrations),
                 exp::Report::num(uni.mean_overlap_percent, 1),
                 exp::Report::num(uni.mean_overhead_percent, 2)});
  }
  rep.print();
  return 0;
}
