// Micro-benchmarks (google-benchmark) for the core components: knapsack
// solver (DP vs greedy — the ablation of DESIGN.md §6.4), cache models
// (exact vs analytic — §6.5), the arena allocator, minimpi collectives,
// and the migration engine's copy path.
//
// The *Production benchmarks below are the before/after anchors recorded in
// BENCH_components.json (see scripts/bench_components.sh and the README
// "Perf methodology" section): they size the exact-cache and knapsack hot
// paths the way the planning loop sees them at production problem scales.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/knapsack.h"
#include "core/migration.h"
#include "core/profiler.h"
#include "core/registry.h"
#include "core/sampled_profile.h"
#include "minimpi/comm.h"
#include "perfmon/sample_gate.h"
#include "simcache/analytic_cache.h"
#include "simcache/exact_cache.h"
#include "simmem/arena.h"
#include "trace/trace.h"

namespace {

using namespace unimem;

std::vector<rt::KnapsackItem> make_items(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<rt::KnapsackItem> items;
  for (std::size_t i = 0; i < n; ++i)
    items.push_back(
        rt::KnapsackItem{rng.uniform(0.0, 1.0), 64 * (1 + rng.below(4096))});
  return items;
}

/// Production-shaped instances: chunk-sized objects (64 KiB .. 8 MiB), the
/// regime the planner's per-phase knapsack sees on class C/D inputs.
std::vector<rt::KnapsackItem> make_production_items(std::size_t n,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<rt::KnapsackItem> items;
  for (std::size_t i = 0; i < n; ++i)
    items.push_back(rt::KnapsackItem{rng.uniform(0.0, 1.0),
                                     64 * kKiB * (1 + rng.below(127))});
  return items;
}

void BM_KnapsackDP(benchmark::State& state) {
  auto items = make_items(static_cast<std::size_t>(state.range(0)), 42);
  rt::KnapsackSolver solver(64 * 1024);
  for (auto _ : state) {
    auto r = solver.solve(items, 8 << 20);
    benchmark::DoNotOptimize(r.total_weight);
  }
}
BENCHMARK(BM_KnapsackDP)->Arg(8)->Arg(32)->Arg(128);

void BM_KnapsackGreedy(benchmark::State& state) {
  auto items = make_items(static_cast<std::size_t>(state.range(0)), 42);
  rt::KnapsackSolver solver(64 * 1024);
  for (auto _ : state) {
    auto r = solver.solve_greedy(items, 8 << 20);
    benchmark::DoNotOptimize(r.total_weight);
  }
}
BENCHMARK(BM_KnapsackGreedy)->Arg(8)->Arg(32)->Arg(128);

// ---------------------------------------------------------------------------
// Production-size sweeps (BENCH_components.json anchors).

void BM_KnapsackDPProduction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t cap = static_cast<std::size_t>(state.range(1)) * kMiB;
  auto items = make_production_items(n, 42);
  rt::KnapsackSolver solver(64 * kKiB);
  for (auto _ : state) {
    auto r = solver.solve(items, cap);
    benchmark::DoNotOptimize(r.total_weight);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
// n items vs DRAM-allowance capacity (MiB); item sizes are chunk-scale, so
// every instance is heavily over-subscribed and the DP must actually choose.
BENCHMARK(BM_KnapsackDPProduction)
    ->Args({512, 32})
    ->Args({2048, 128})
    ->Args({2048, 512})
    ->Unit(benchmark::kMillisecond);

// Adaptive re-planning (core/replan.h): the epoch-cadence choice is
// between a full knapsack re-solve over every item — which is exactly
// BM_KnapsackDPProduction/2048/512 above, the anchor the speedup is
// computed against — and the bounded warm-start repair below, which
// classifies per-item weight drift (one linear pass) and re-scores only
// the drifted items over the freed capacity slice.  The repair must beat
// the full DP by a wide margin for the adaptive path to stay cheap at
// any epoch cadence (BENCH_components.json `replan_incremental_speedup`).

/// `state.range(2)` percent of the items drifted: classify + bounded
/// re-score over the proportional capacity slice (the repair's exact
/// shape; the non-drifted residents keep their bytes without being
/// re-packed).
void BM_ReplanIncrementalRepairProduction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t cap = static_cast<std::size_t>(state.range(1)) * kMiB;
  const auto pct = static_cast<std::size_t>(state.range(2));
  auto old_items = make_production_items(n, 42);
  auto new_items = old_items;
  Rng rng(77);
  for (auto& it : new_items)
    if (rng.below(100) < pct) it.weight *= rng.uniform(0.2, 3.0);
  rt::KnapsackSolver solver(64 * kKiB);
  for (auto _ : state) {
    // Drift classification: one pass over the per-item weight deltas.
    std::vector<rt::KnapsackItem> drifted;
    for (std::size_t i = 0; i < n; ++i) {
      const double hi = std::max(old_items[i].weight, new_items[i].weight);
      if (hi > 0 &&
          std::abs(new_items[i].weight - old_items[i].weight) > 0.25 * hi)
        drifted.push_back(new_items[i]);
    }
    // Bounded re-score of the drifted slice only.
    auto r = solver.solve_bounded(drifted, cap * pct / 100);
    benchmark::DoNotOptimize(r.total_weight);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReplanIncrementalRepairProduction)
    ->Args({2048, 512, 5})
    ->Args({2048, 512, 25})
    ->Unit(benchmark::kMillisecond);

void BM_KnapsackHugeProduction(benchmark::State& state) {
  // Item-count x capacity product far past any sensible dense-DP size; the
  // solver is expected to stay sane here rather than allocate gigabytes.
  auto items = make_production_items(8192, 42);
  rt::KnapsackSolver solver(64 * kKiB);
  for (auto _ : state) {
    auto r = solver.solve(items, std::size_t{4096} * kMiB);
    benchmark::DoNotOptimize(r.total_weight);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_KnapsackHugeProduction)->Unit(benchmark::kMillisecond);

/// One descriptor sized like a class-D rank's dominant object.
void BM_ExactCacheSeqPassProduction(benchmark::State& state) {
  cache::ExactCache c;
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kSequential;
  d.accesses = buf.size() / 8;  // one full pass
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_ExactCacheSeqPassProduction)->Arg(64 << 20)->Unit(benchmark::kMillisecond);

/// Iterative-solver shape: the same region swept eight times per phase.
void BM_ExactCacheSeqMultiPassProduction(benchmark::State& state) {
  cache::ExactCache c;
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kSequential;
  d.accesses = 8 * (buf.size() / 8);  // eight passes
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_ExactCacheSeqMultiPassProduction)->Arg(16 << 20)->Unit(benchmark::kMillisecond);

void BM_ExactCacheStridedProduction(benchmark::State& state) {
  cache::ExactCache c;
  std::vector<std::byte> buf(64 << 20);
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kStrided;
  d.stride_bytes = static_cast<std::size_t>(state.range(0));
  const std::uint64_t slots =
      buf.size() / static_cast<std::size_t>(state.range(0));
  d.accesses = 2 * slots;  // two passes over the strided slots
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.accesses));
}
BENCHMARK(BM_ExactCacheStridedProduction)->Arg(256)->Arg(96)->Unit(benchmark::kMillisecond);

void BM_ExactCacheRandomProduction(benchmark::State& state) {
  cache::ExactCache c;
  std::vector<std::byte> buf(64 << 20);
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kRandom;
  d.accesses = 2 << 20;
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.accesses));
}
BENCHMARK(BM_ExactCacheRandomProduction)->Unit(benchmark::kMillisecond);

void BM_ExactCachePointerChaseProduction(benchmark::State& state) {
  cache::ExactCache c;
  std::vector<std::byte> buf(32 << 20);
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kPointerChase;
  d.accesses = 1 << 20;
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.accesses));
}
BENCHMARK(BM_ExactCachePointerChaseProduction)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Profiling tiers (BENCH_components.json `profiler_sampled_speedup`): the
// cost of consuming one PMU miss event.  Exact mode attributes every
// address inline on the rank thread through the registry's locked interval
// map; sampled mode pays one countdown-gate check per event, buffers the
// few captured addresses, and ships them to the ProfileAggregator, which
// attributes out of band against an immutable snapshot.  Registry shape is
// production-like: hundreds of chunk-scale objects, so inline attribution
// walks a deep map with a cache-hostile random stream.

constexpr std::size_t kProfObjects = 1024;
constexpr std::size_t kProfEvents = 1 << 18;

std::vector<std::uint64_t> make_miss_stream(const rt::Registry& reg,
                                            std::size_t n) {
  auto snap = reg.addr_snapshot();
  Rng rng(42);
  std::vector<std::uint64_t> addrs(n);
  for (auto& a : addrs) {
    const auto& s = (*snap)[rng.below(snap->size())];
    a = s.lo + rng.below((s.hi - s.lo) / kCacheLine) * kCacheLine;
  }
  return addrs;
}

void BM_ProfilerExactAccessProduction(benchmark::State& state) {
  mem::HeteroMemory hms(mem::HmsConfig::scaled(0.5, 1.0, 16 << 20, 64 << 20));
  rt::Registry reg(&hms, nullptr);
  for (std::size_t i = 0; i < kProfObjects; ++i)
    {
      std::string name = "o";
      name += std::to_string(i);
      reg.create(name, 64 * kKiB, {}, mem::Tier::kNvm);
    }
  const auto addrs = make_miss_stream(reg, kProfEvents);
  perf::PhaseSamples s;
  s.total_samples = addrs.size();
  s.total_miss_count = addrs.size();
  s.miss_addresses = addrs;
  rt::Profiler prof(&reg);
  for (auto _ : state) {
    prof.begin_iteration();
    prof.record_phase(s, 1.0);
    benchmark::DoNotOptimize(prof.phase_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_ProfilerExactAccessProduction)->Unit(benchmark::kMillisecond);

void BM_ProfilerSampledAccessProduction(benchmark::State& state) {
  mem::HeteroMemory hms(mem::HmsConfig::scaled(0.5, 1.0, 16 << 20, 64 << 20));
  rt::Registry reg(&hms, nullptr);
  for (std::size_t i = 0; i < kProfObjects; ++i)
    {
      std::string name = "o";
      name += std::to_string(i);
      reg.create(name, 64 * kKiB, {}, mem::Tier::kNvm);
    }
  const auto addrs = make_miss_stream(reg, kProfEvents);
  auto snap = reg.addr_snapshot();
  rt::ProfileAggregator agg;
  Rng seeds(7);
  std::size_t slot = 0;
  for (auto _ : state) {
    // The timed region is the rank-thread critical path: gate every event,
    // buffer the captures, hand the batch off.  Aggregation is overlapped
    // with the next phase's compute in production, so the drain that keeps
    // the queue bounded here runs untimed.
    perf::SampleGate gate(64, seeds.next());
    perf::PhaseSamples ps;
    ps.total_miss_count = addrs.size();
    for (std::uint64_t a : addrs) {
      if (!gate.take()) continue;
      ++ps.total_samples;
      ps.miss_addresses.push_back(a);
    }
    rt::ProfileAggregator::Batch b;
    b.slot = slot++;
    b.phase_time_s = 1.0;
    b.snapshot = snap;
    b.samples = std::move(ps);
    agg.submit(std::move(b));
    state.PauseTiming();
    benchmark::DoNotOptimize(agg.drain().size());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_ProfilerSampledAccessProduction)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------

void BM_ExactCacheStream(benchmark::State& state) {
  cache::ExactCache c;
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kSequential;
  d.accesses = buf.size() / 8;
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_ExactCacheStream)->Arg(1 << 20)->Arg(8 << 20);

void BM_AnalyticCacheStream(benchmark::State& state) {
  cache::AnalyticCache c;
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kSequential;
  d.accesses = buf.size() / 8;
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_AnalyticCacheStream)->Arg(1 << 20)->Arg(8 << 20);

void BM_ArenaAllocFree(benchmark::State& state) {
  mem::Arena arena(64 << 20);
  Rng rng(7);
  std::vector<void*> live;
  for (auto _ : state) {
    if (live.size() < 64 && (live.empty() || rng.uniform() < 0.6)) {
      void* p = arena.allocate(64 + rng.below(256 * 1024));
      if (p != nullptr) live.push_back(p);
    } else {
      std::size_t i = rng.below(live.size());
      arena.deallocate(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (void* p : live) arena.deallocate(p);
}
BENCHMARK(BM_ArenaAllocFree);

void BM_MiniMpiAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::World world(ranks);
    world.run([&](mpi::Comm& c) {
      double v[4] = {1, 2, 3, 4};
      for (int i = 0; i < 50; ++i) c.allreduce(v, 4);
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_MiniMpiAllreduce)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MigrationRoundTrip(benchmark::State& state) {
  mem::HeteroMemory hms(mem::HmsConfig::scaled(0.5, 1.0, 16 << 20, 64 << 20));
  rt::Registry reg(&hms, nullptr);
  rt::DataObject* o = reg.create("x", static_cast<std::size_t>(state.range(0)),
                                 {}, mem::Tier::kNvm);
  rt::MigrationEngine eng(&reg);
  bool to_dram = true;
  for (auto _ : state) {
    eng.enqueue(rt::UnitRef{o->id(), 0},
                to_dram ? mem::Tier::kDram : mem::Tier::kNvm, 0.0);
    eng.drain();
    to_dram = !to_dram;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MigrationRoundTrip)->Arg(1 << 20)->Arg(4 << 20);

// Trace emit anchors (trace_emit_overhead in BENCH_components.json): the
// runtime-disabled path must be a branch (<= 1 ns/event), the enabled path
// a clock read + SPSC ring push (<= 50 ns/event).
void BM_TraceEmitDisabledProduction(benchmark::State& state) {
  // Recorder never started: every macro site is the relaxed-load fast path.
  std::uint64_t i = 0;
  for (auto _ : state) {
    UNIMEM_TRACE_INSTANT1("bench", "tick", -1.0, "i", i);
    ++i;
  }
  benchmark::DoNotOptimize(i);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEmitDisabledProduction);

void BM_TraceEmitProduction(benchmark::State& state) {
  auto& rec = trace::TraceRecorder::instance();
  rec.start(1 << 20);
  trace::set_thread_track("bench", 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    UNIMEM_TRACE_INSTANT1("bench", "tick", -1.0, "i", i);
    // Drain (untimed) well before the ring fills so every timed emit
    // measures the push path, never the drop path.
    if ((++i & ((1u << 19) - 1)) == 0) {
      state.PauseTiming();
      rec.flush();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  rec.stop();
}
BENCHMARK(BM_TraceEmitProduction);

}  // namespace

BENCHMARK_MAIN();
