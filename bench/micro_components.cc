// Micro-benchmarks (google-benchmark) for the core components: knapsack
// solver (DP vs greedy — the ablation of DESIGN.md §6.4), cache models
// (exact vs analytic — §6.5), the arena allocator, minimpi collectives,
// and the migration engine's copy path.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/knapsack.h"
#include "core/migration.h"
#include "core/registry.h"
#include "minimpi/comm.h"
#include "simcache/analytic_cache.h"
#include "simcache/exact_cache.h"
#include "simmem/arena.h"

namespace {

using namespace unimem;

std::vector<rt::KnapsackItem> make_items(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<rt::KnapsackItem> items;
  for (std::size_t i = 0; i < n; ++i)
    items.push_back(
        rt::KnapsackItem{rng.uniform(0.0, 1.0), 64 * (1 + rng.below(4096))});
  return items;
}

void BM_KnapsackDP(benchmark::State& state) {
  auto items = make_items(static_cast<std::size_t>(state.range(0)), 42);
  rt::KnapsackSolver solver(64 * 1024);
  for (auto _ : state) {
    auto r = solver.solve(items, 8 << 20);
    benchmark::DoNotOptimize(r.total_weight);
  }
}
BENCHMARK(BM_KnapsackDP)->Arg(8)->Arg(32)->Arg(128);

void BM_KnapsackGreedy(benchmark::State& state) {
  auto items = make_items(static_cast<std::size_t>(state.range(0)), 42);
  rt::KnapsackSolver solver(64 * 1024);
  for (auto _ : state) {
    auto r = solver.solve_greedy(items, 8 << 20);
    benchmark::DoNotOptimize(r.total_weight);
  }
}
BENCHMARK(BM_KnapsackGreedy)->Arg(8)->Arg(32)->Arg(128);

void BM_ExactCacheStream(benchmark::State& state) {
  cache::ExactCache c;
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kSequential;
  d.accesses = buf.size() / 8;
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_ExactCacheStream)->Arg(1 << 20)->Arg(8 << 20);

void BM_AnalyticCacheStream(benchmark::State& state) {
  cache::AnalyticCache c;
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  cache::AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = cache::Pattern::kSequential;
  d.accesses = buf.size() / 8;
  for (auto _ : state) {
    auto r = c.process(d, 32);
    benchmark::DoNotOptimize(r.misses);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_AnalyticCacheStream)->Arg(1 << 20)->Arg(8 << 20);

void BM_ArenaAllocFree(benchmark::State& state) {
  mem::Arena arena(64 << 20);
  Rng rng(7);
  std::vector<void*> live;
  for (auto _ : state) {
    if (live.size() < 64 && (live.empty() || rng.uniform() < 0.6)) {
      void* p = arena.allocate(64 + rng.below(256 * 1024));
      if (p != nullptr) live.push_back(p);
    } else {
      std::size_t i = rng.below(live.size());
      arena.deallocate(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (void* p : live) arena.deallocate(p);
}
BENCHMARK(BM_ArenaAllocFree);

void BM_MiniMpiAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::World world(ranks);
    world.run([&](mpi::Comm& c) {
      double v[4] = {1, 2, 3, 4};
      for (int i = 0; i < 50; ++i) c.allreduce(v, 4);
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_MiniMpiAllreduce)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MigrationRoundTrip(benchmark::State& state) {
  mem::HeteroMemory hms(mem::HmsConfig::scaled(0.5, 1.0, 16 << 20, 64 << 20));
  rt::Registry reg(&hms, nullptr);
  rt::DataObject* o = reg.create("x", static_cast<std::size_t>(state.range(0)),
                                 {}, mem::Tier::kNvm);
  rt::MigrationEngine eng(&reg);
  bool to_dram = true;
  for (auto _ : state) {
    eng.enqueue(rt::UnitRef{o->id(), 0},
                to_dram ? mem::Tier::kDram : mem::Tier::kNvm, 0.0);
    eng.drain();
    to_dram = !to_dram;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MigrationRoundTrip)->Arg(1 << 20)->Arg(4 << 20);

}  // namespace

BENCHMARK_MAIN();
