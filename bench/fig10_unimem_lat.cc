// Figure 10: DRAM-only vs NVM-only vs X-Men vs Unimem, NVM at 4x DRAM
// latency.  Expected shape (paper): average NVM-only gap ~47%; Unimem
// within ~7% of DRAM-only on average, <= 10% per benchmark.
#include "bench_common.h"

int main() {
  using namespace unimem;
  exp::Report rep(
      "Fig. 10: policies at NVM = 4x DRAM latency (normalized to DRAM-only)");
  rep.set_header({"benchmark", "NVM-only", "X-Men", "Unimem"});
  std::vector<std::string> all = bench::npb();
  all.push_back("nek");
  for (const std::string& w : all) {
    exp::RunConfig cfg = bench::base_config(w);
    cfg = bench::smoke(cfg);
    cfg.nvm_bw_ratio = 1.0;
    cfg.nvm_lat_mult = 4.0;
    cfg.policy = exp::Policy::kDramOnly;
    double dram = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kNvmOnly;
    double nvm = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kXMen;
    double xmen = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kUnimem;
    double uni = exp::run_once(cfg).time_s;
    rep.add_row({w, exp::Report::num(nvm / dram, 2),
                 exp::Report::num(xmen / dram, 2),
                 exp::Report::num(uni / dram, 2)});
  }
  rep.print();
  return 0;
}
