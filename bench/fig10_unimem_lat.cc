// Figure 10: DRAM-only vs NVM-only vs X-Men vs Unimem, NVM at 4x DRAM
// latency.  Expected shape (paper): average NVM-only gap ~47%; Unimem
// within ~7% of DRAM-only on average, <= 10% per benchmark.
//
// Batch on the sweep engine over the shared "fig10" SweepSpec (the
// latency twin of fig9's grid).
#include "sweep_bench_common.h"

int main() {
  using namespace unimem;
  const sweep::SweepSpec spec = bench::resolve_spec("fig10");
  const sweep::SweepOutcome outcome = bench::run_spec(spec);

  exp::Report rep(
      "Fig. 10: policies at NVM = 4x DRAM latency (normalized to DRAM-only)");
  rep.set_header({"benchmark", "NVM-only", "X-Men", "Unimem"});
  for (const std::string& w : spec.workloads)
    rep.add_row(
        {w, bench::cell(outcome, {{"workload", w}, {"policy", "nvm-only"}}),
         bench::cell(outcome, {{"workload", w}, {"policy", "xmen"}}),
         bench::cell(outcome, {{"workload", w}, {"policy", "unimem"}})});
  rep.print();
  return bench::exit_code(outcome);
}
