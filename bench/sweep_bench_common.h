// Shared glue for the figure harnesses that run as sweep-engine batches:
// resolve a named SweepSpec (smoke-clamped under UNIMEM_BENCH_SMOKE),
// execute it, and pivot result rows into figure-shaped table cells.
#pragma once

#include <map>
#include <string>

#include "experiments/report.h"
#include "sweep/engine.h"
#include "sweep/result_store.h"
#include "sweep/spec.h"

namespace unimem::bench {

/// The named spec, smoke-clamped when UNIMEM_BENCH_SMOKE is set.
inline sweep::SweepSpec resolve_spec(const std::string& name) {
  sweep::SweepSpec spec = *sweep::spec_by_name(name);
  if (sweep::smoke_requested()) spec = sweep::smoke_clamped(spec);
  return spec;
}

/// Run the whole spec on the engine (default concurrency: one job slot
/// per hardware thread, rank-bounded admission).
inline sweep::SweepOutcome run_spec(const sweep::SweepSpec& spec) {
  sweep::SweepEngine engine;
  return engine.run(spec.expand());
}

/// The matching row when present and ok, else nullptr — for harnesses
/// that print raw RunResult stats (migration counts, overlap), not just
/// the normalized cell.
inline const sweep::SweepRow* ok_row(
    const sweep::SweepOutcome& outcome,
    const std::map<std::string, std::string>& where) {
  const sweep::SweepRow* r = sweep::find_row(outcome.rows, where);
  return (r != nullptr && r->ok) ? r : nullptr;
}

/// Table cell: the normalized time of the row matching `where`, or "n/a"
/// when the point is missing/failed (failures never sink the table).
inline std::string cell(const sweep::SweepOutcome& outcome,
                        const std::map<std::string, std::string>& where,
                        int prec = 2) {
  const sweep::SweepRow* r = ok_row(outcome, where);
  return r != nullptr ? exp::Report::num(r->normalized, prec) : "n/a";
}

inline int exit_code(const sweep::SweepOutcome& outcome) {
  return outcome.failed == 0 ? 0 : 1;
}

}  // namespace unimem::bench
