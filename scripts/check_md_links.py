#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation (the CI `docs` stage).

Scans README.md, ROADMAP.md, and docs/**/*.md for inline links/images
(`[text](target)`) and fails on dead *intra-repo* links:

  * a relative target whose file does not exist, or
  * an anchor (`file.md#section` or `#section`) that matches no heading
    in the target markdown file (GitHub's heading-slug rules).

External links (http/https/mailto) and targets that resolve outside the
repository (e.g. the CI badge's `../../actions/...` GitHub-site path)
are skipped — this check never needs the network.

Exit status: 0 clean, 1 dead links (each printed as file:line: message).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "ROADMAP.md"]
DOC_DIRS = ["docs"]

# Inline links/images: [text](target "title") — target ends at the first
# unbalanced ')' or whitespace-before-title.  Good enough for this repo's
# hand-written markdown; reference-style links are not used here.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug: strip markup-ish punctuation, lowercase,
    spaces to hyphens, then a -N suffix for repeats."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def heading_slugs(md_path: Path) -> set:
    slugs, seen, in_fence = set(), {}, False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1), seen))
    return slugs


def doc_files():
    files = [REPO / f for f in DOC_FILES if (REPO / f).exists()]
    for d in DOC_DIRS:
        files.extend(sorted((REPO / d).glob("**/*.md")))
    return files


def check_file(md_path: Path, slug_cache: dict) -> list:
    errors, in_fence = [], False
    for lineno, line in enumerate(
            md_path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if SCHEME_RE.match(target):  # http:, https:, mailto:, ...
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = (md_path.parent / path_part).resolve()
                try:
                    resolved.relative_to(REPO)
                except ValueError:
                    continue  # escapes the repo (GitHub-site path): skip
                if not resolved.exists():
                    errors.append((lineno, f"dead link: {target} "
                                   f"({resolved.relative_to(REPO)} missing)"))
                    continue
            else:
                resolved = md_path
            if anchor and resolved.suffix == ".md" and resolved.is_file():
                if resolved not in slug_cache:
                    slug_cache[resolved] = heading_slugs(resolved)
                if anchor.lower() not in slug_cache[resolved]:
                    errors.append((lineno, f"dead anchor: {target} "
                                   f"(no such heading in "
                                   f"{resolved.relative_to(REPO)})"))
    return errors


def main() -> int:
    failed = 0
    slug_cache = {}
    for md in doc_files():
        for lineno, msg in check_file(md, slug_cache):
            print(f"{md.relative_to(REPO)}:{lineno}: {msg}")
            failed += 1
    n = len(doc_files())
    if failed:
        print(f"check_md_links: {failed} dead link(s) across {n} file(s)")
        return 1
    print(f"check_md_links: OK ({n} file(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
