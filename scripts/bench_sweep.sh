#!/usr/bin/env bash
# Measures the sweep engine on a full-size spec — wall clock at --jobs 1
# vs --jobs 8 vs a fork-based 2-shard run, per-point result identity
# across all three topologies, and the world count saved by baseline
# memoization — and records the result under "sweep_engine" in
# BENCH_components.json (README "Perf methodology").
#
# Usage: scripts/bench_sweep.sh [spec] [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC="${1:-fig13}"
BUILD="${2:-build}"
OUT=BENCH_components.json

if [ ! -x "$BUILD/unimem_sweep" ]; then
  echo "error: $BUILD/unimem_sweep not built" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/unimem_sweep" --spec "$SPEC" --jobs 1 --quiet \
  --csv "$TMP/j1.csv" --summary-json "$TMP/j1.json" >&2
"$BUILD/unimem_sweep" --spec "$SPEC" --jobs 8 --quiet \
  --csv "$TMP/j8.csv" --summary-json "$TMP/j8.json" >&2
"$BUILD/unimem_sweep" --spec "$SPEC" --shards 2 --jobs 4 --quiet \
  --csv "$TMP/sh2.csv" --summary-json "$TMP/sh2.json" >&2

IDENTICAL=false
cmp -s "$TMP/j1.csv" "$TMP/j8.csv" && IDENTICAL=true
echo "per-point identity across job counts: $IDENTICAL" >&2
SHARD_IDENTICAL=false
cmp -s "$TMP/j1.csv" "$TMP/sh2.csv" && SHARD_IDENTICAL=true
echo "per-point identity sharded (2 procs) vs jobs 1: $SHARD_IDENTICAL" >&2

[ -f "$OUT" ] || echo '{}' > "$OUT"
jq --arg spec "$SPEC" --argjson identical "$IDENTICAL" \
   --argjson shard_identical "$SHARD_IDENTICAL" \
   --slurpfile j1 "$TMP/j1.json" --slurpfile j8 "$TMP/j8.json" \
   --slurpfile sh2 "$TMP/sh2.json" '
  .sweep_engine = {
    spec: $spec,
    points: $j1[0].points,
    host_cpus: $j1[0].host_cpus,
    jobs1_wall_s: ($j1[0].wall_s * 1000 | round / 1000),
    jobs8_wall_s: ($j8[0].wall_s * 1000 | round / 1000),
    sharded2_wall_s: ($sh2[0].wall_s * 1000 | round / 1000),
    speedup_jobs8_over_jobs1:
      ($j1[0].wall_s / $j8[0].wall_s * 100 | round / 100),
    results_identical_across_job_counts: $identical,
    results_identical_sharded_vs_jobs1: $shard_identical,
    worlds_executed: $j1[0].worlds_executed,
    worlds_naive: ($j1[0].points + $j1[0].baseline_requests),
    world_reduction_vs_naive:
      (($j1[0].points + $j1[0].baseline_requests) /
       $j1[0].worlds_executed * 100 | round / 100),
    baselines_memoized:
      ($j1[0].baseline_requests - $j1[0].baseline_computed)
  }
  # Jobs are independent Worlds (no shared state beyond the memoized
  # baselines), so wall-clock scales with cores; a single-core host can
  # only show oversubscription, never speedup.  Say so in the record.
  | if $j1[0].host_cpus < 2 then
      .sweep_engine.note =
        "host_cpus=1: parallel jobs cannot beat serial wall-clock on this host; re-run scripts/bench_sweep.sh on a multicore host for the scaling number"
    else . end
' "$OUT" > "$OUT.tmp" && mv "$OUT.tmp" "$OUT"
echo "recorded sweep_engine ($SPEC) in $OUT"
