#!/usr/bin/env bash
# Runs the production-size component sweeps (exact cache + knapsack) from
# bench/micro_components and merges the results into BENCH_components.json
# under the given label ("pre_pr", "post_pr", ...).  The committed file
# holds one entry per label so hot-path PRs can show before/after numbers
# side by side (README "Perf methodology").
#
# Usage: scripts/bench_components.sh <label> [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: bench_components.sh <label> [build-dir]}"
BUILD="${2:-build}"
OUT=BENCH_components.json

if [ ! -x "$BUILD/micro_components" ]; then
  echo "error: $BUILD/micro_components not built (needs google-benchmark)" >&2
  exit 1
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
"$BUILD/micro_components" \
  --benchmark_filter='Production' \
  --benchmark_out_format=json --benchmark_out="$TMP" >&2

[ -f "$OUT" ] || echo '{}' > "$OUT"
jq --arg lbl "$LABEL" --slurpfile bench "$TMP" '
  .[$lbl] = ($bench[0].benchmarks | map({
    name,
    real_time: .real_time,
    time_unit: .time_unit,
    items_per_second: (.items_per_second // null),
    bytes_per_second: (.bytes_per_second // null)
  }))
  # Whenever both anchors are present, recompute per-benchmark speedups.
  | if (has("pre_pr") and has("post_pr")) then
      .speedup_post_over_pre = (
        (.pre_pr | map({key: .name, value: .real_time}) | from_entries) as $pre
        | .post_pr | map(select($pre[.name] != null)
            | {key: .name,
               value: (($pre[.name] / .real_time) * 100 | round / 100)})
        | from_entries)
    else . end
  # Sampled vs exact profiling tier: per-access cost ratio from the label
  # just recorded (events/s of the gated path over the inline path).
  | (.[$lbl] | map(select(.items_per_second != null)
       | {key: .name, value: .items_per_second}) | from_entries) as $ips
  | if ($ips["BM_ProfilerExactAccessProduction"] != null and
        $ips["BM_ProfilerSampledAccessProduction"] != null) then
      .profiler_sampled_speedup = (
        ($ips["BM_ProfilerSampledAccessProduction"] /
         $ips["BM_ProfilerExactAccessProduction"]) * 100 | round / 100)
    else . end
  # Trace emit cost in ns/event for both gate states (ISSUE: disabled <= 1,
  # enabled <= 50), straight from the anchors just recorded.
  | if ($ips["BM_TraceEmitDisabledProduction"] != null and
        $ips["BM_TraceEmitProduction"] != null) then
      .trace_emit_overhead = {
        disabled_ns_per_event:
          (1e9 / $ips["BM_TraceEmitDisabledProduction"] * 1000 | round / 1000),
        enabled_ns_per_event:
          (1e9 / $ips["BM_TraceEmitProduction"] * 1000 | round / 1000)
      }
    else . end
' "$OUT" > "$OUT.tmp" && mv "$OUT.tmp" "$OUT"

# Slack-scheduled migration overlap: a smoke-scale dag_slack sweep with
# dag_schedule pinned to slack; the fraction of copy time hidden off the
# critical path comes from the run's metrics histograms (sum of hidden
# seconds over sum of copy seconds across the sweep's points).
if [ -x "$BUILD/unimem_sweep" ]; then
  DAGTMP="$(mktemp)"
  UNIMEM_BENCH_SMOKE=1 "$BUILD/unimem_sweep" --spec dag_slack --dag slack \
    --jobs 2 --quiet --summary-json "$DAGTMP" >&2
  jq --slurpfile dag "$DAGTMP" '
    ($dag[0].metrics.histograms["runtime.migration_hidden_s"].sum
       // 0) as $hidden
    | ($dag[0].metrics.histograms["runtime.migration_copy_s"].sum
       // 0) as $copy
    | if $copy > 0 then
        .migration_hidden_fraction = ($hidden / $copy * 1000 | round / 1000)
      else . end
  ' "$OUT" > "$OUT.tmp" && mv "$OUT.tmp" "$OUT"
  rm -f "$DAGTMP"
else
  echo "note: $BUILD/unimem_sweep not built; skipping migration_hidden_fraction" >&2
fi
echo "recorded '$LABEL' in $OUT"
