#!/usr/bin/env python3
"""Compare freshly recorded component-bench numbers against the committed
BENCH_components.json baseline and fail on wall-time regressions.

Used by the advisory `bench-regression` job in .github/workflows/ci.yml:
the job re-runs the `*Production` micro_components sweep at smoke scale
(small --benchmark_min_time) and this script flags any benchmark whose
real_time grew by more than --threshold (default 30%) over the committed
baseline.  Advisory because absolute times vary across runner hardware —
a failure is a signal to re-run scripts/bench_components.sh locally and
look, not a hard gate.

The fresh file may be either
  * a raw google-benchmark JSON (--benchmark_out; has a "benchmarks" key), or
  * another BENCH_components.json-style label file (then --fresh-label picks
    the entry).
The baseline label defaults to "post_pr", falling back to "pre_pr".

Exit codes: 0 ok (or nothing comparable), 1 regression past threshold,
2 usage/IO error.
"""

import argparse
import json
import sys


def die(msg):
    """Usage/IO failure: exit 2, distinct from exit 1 (real regression)."""
    print(f"check_bench_regression: {msg}", file=sys.stderr)
    sys.exit(2)


def load_rows(path, label, fallback_labels=()):
    """Return {benchmark name: real_time_ms} from either supported format."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")

    if "benchmarks" in data:  # raw google-benchmark --benchmark_out file
        rows = data["benchmarks"]
    else:  # BENCH_components.json: {label: [rows...], ...}
        rows = None
        for lbl in (label, *fallback_labels):
            if lbl in data:
                rows = data[lbl]
                label = lbl
                break
        if rows is None:
            die(f"{path} has none of the labels {[label, *fallback_labels]} "
                f"(has: {sorted(data)})")

    out = {}
    for row in rows:
        # google-benchmark emits aggregate rows (mean/median/stddev) when
        # repetitions are on; skip everything but plain iterations rows.
        if row.get("run_type", "iteration") != "iteration":
            continue
        ms = row["real_time"]
        unit = row.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit)
        if scale is None:
            die(f"unknown time_unit {unit!r}")
        out[row["name"]] = ms * scale
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_components.json",
                    help="committed baseline file (default: %(default)s)")
    ap.add_argument("--fresh", required=True,
                    help="freshly recorded numbers (either format)")
    ap.add_argument("--baseline-label", default="post_pr",
                    help="label inside the baseline file (default: "
                         "%(default)s, falls back to pre_pr)")
    ap.add_argument("--fresh-label", default="ci",
                    help="label inside the fresh file when it is a "
                         "BENCH_components-style file (default: %(default)s)")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="allowed fractional real_time growth "
                         "(default: %(default)s = 30%%)")
    args = ap.parse_args()

    baseline = load_rows(args.baseline, args.baseline_label, ("pre_pr",))
    fresh = load_rows(args.fresh, args.fresh_label, ("post_pr", "pre_pr"))

    regressions = []
    compared = 0
    width = max((len(n) for n in fresh), default=4)
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'fresh ms':>10}  ratio")
    for name in sorted(fresh):
        if name not in baseline:
            print(f"{name:<{width}}  {'-':>10}  {fresh[name]:>10.3f}  (new)")
            continue
        base, cur = baseline[name], fresh[name]
        ratio = cur / base if base > 0 else float("inf")
        flag = "  << REGRESSION" if ratio > 1.0 + args.threshold else ""
        print(f"{name:<{width}}  {base:>10.3f}  {cur:>10.3f}  {ratio:5.2f}{flag}")
        compared += 1
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))

    if not compared:
        print("check_bench_regression: no overlapping benchmarks; nothing "
              "to compare (ok)")
        return 0
    if regressions:
        names = ", ".join(f"{n} ({r:.2f}x)" for n, r in regressions)
        print(f"check_bench_regression: {len(regressions)}/{compared} "
              f"benchmarks regressed past {args.threshold:.0%}: {names}",
              file=sys.stderr)
        return 1
    print(f"check_bench_regression: {compared} benchmarks within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
