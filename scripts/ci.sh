#!/usr/bin/env bash
# CI pipeline: configure -> build -> tier-1 tests -> bench smoke ->
# ASan/UBSan tier-1 run -> TSan tier-1 run (minimpi + the migration
# helper thread are the concurrency hot spots the TSan pass guards).
# Suitable as a single GitHub Actions step:  run: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== configure =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== build =="
cmake --build build -j "$JOBS"

echo "== tier-1 tests =="
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

echo "== e2e aggregates =="
# Whole-binary runs: cross-case assertions (e.g. the matrix test's
# cross-strategy checksum comparison) only fire when all cases share one
# process, which the per-case tier-1 entries cannot provide.
ctest --test-dir build -L e2e --output-on-failure -j "$JOBS"

echo "== bench smoke =="
ctest --test-dir build -L bench-smoke --output-on-failure -j "$JOBS"

echo "== sweep smoke =="
# The unimem_sweep CLI end to end at smoke scale (tiny spec, parallel
# engine, JSONL/CSV/summary outputs).
ctest --test-dir build -L sweep-smoke --output-on-failure -j "$JOBS"

echo "== asan+ubsan configure + build + tier-1 =="
cmake -B build-asan -S . -DUNIMEM_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan -L tier1 --output-on-failure -j "$JOBS"

echo "== tsan configure + build + tier-1 + sweep smoke =="
cmake -B build-tsan -S . -DUNIMEM_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir build-tsan -L tier1 --output-on-failure -j "$JOBS"
# Race the sweep worker pool (concurrent Worlds + per-job copy helpers)
# under TSan, not just the single-World suites.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir build-tsan -L sweep-smoke --output-on-failure -j "$JOBS"

echo "CI OK"
