#!/usr/bin/env bash
# CI pipeline, one entry point for local runs and the GitHub Actions
# matrix (.github/workflows/ci.yml — each matrix job runs exactly one
# stage):
#
#   scripts/ci.sh docs      markdown link check over README/ROADMAP/docs/
#                           (no build; also runs first in the release stage)
#   scripts/ci.sh release   docs -> configure+build (RelWithDebInfo) ->
#                           tier-1 -> e2e aggregates -> bench smoke ->
#                           sweep smoke
#   scripts/ci.sh asan      ASan+UBSan Debug build -> tier-1
#   scripts/ci.sh tsan      TSan Debug build -> tier-1 -> sweep smoke
#                           (minimpi + the migration helper thread + the
#                           sweep worker pool are the concurrency hot
#                           spots the TSan pass guards)
#   scripts/ci.sh all       all three stages in order (the default; same
#                           behavior as the old monolithic script)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

stage_docs() {
  echo "== [docs] markdown link check =="
  # Fails on intra-repo links/anchors that point nowhere (README, ROADMAP,
  # docs/**).  External URLs are skipped — no network in CI paths.
  python3 scripts/check_md_links.py
}

stage_release() {
  stage_docs

  echo "== [release] configure =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo

  echo "== [release] build =="
  cmake --build build -j "$JOBS"

  echo "== [release] tier-1 tests =="
  ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

  echo "== [release] e2e aggregates =="
  # Whole-binary runs: cross-case assertions (e.g. the matrix test's
  # cross-strategy checksum comparison) only fire when all cases share one
  # process, which the per-case tier-1 entries cannot provide.  The
  # ctest_e2e_aggregates_exist tier-1 test asserts this label stays
  # populated (see cmake/check_label_aggregates.cmake).
  ctest --test-dir build -L e2e --output-on-failure -j "$JOBS"

  echo "== [release] bench smoke =="
  ctest --test-dir build -L bench-smoke --output-on-failure -j "$JOBS"

  echo "== [release] sweep smoke =="
  # The unimem_sweep CLI end to end at smoke scale (tiny spec, parallel
  # engine, JSONL/CSV/summary outputs, drift-injected replan_drift spec).
  ctest --test-dir build -L sweep-smoke --output-on-failure -j "$JOBS"

  echo "== [release] dag smoke =="
  # Phase-DAG critical-path planning end to end: the dag_slack sweep under
  # both dag_schedule pins, the trace->DAG rebuild (unimem_trace --dag),
  # and the truncated-span accounting in --summary.
  ctest --test-dir build -L dag-smoke --output-on-failure -j "$JOBS"

  echo "== [release] sweep service =="
  # The coordinator/launcher service layer: strict CLI parsing, merge
  # heuristics, injected-failure recovery, kill-and-resume, and the
  # service_stress spec slice across forked workers.
  ctest --test-dir build -L sweep-service --output-on-failure -j "$JOBS"
}

stage_asan() {
  echo "== [asan] asan+ubsan configure + build + tier-1 =="
  cmake -B build-asan -S . -DUNIMEM_SANITIZE=address,undefined \
        -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan -L tier1 --output-on-failure -j "$JOBS"
}

stage_tsan() {
  echo "== [tsan] tsan configure + build + tier-1 + sweep smoke/service =="
  cmake -B build-tsan -S . -DUNIMEM_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-tsan -j "$JOBS"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan -L tier1 --output-on-failure -j "$JOBS"
  # Race the sweep worker pool (concurrent Worlds + per-job copy helpers
  # + the adaptive re-planner's epoch path) under TSan, not just the
  # single-World suites.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan -L sweep-smoke --output-on-failure -j "$JOBS"
  # The service layer too: the single-threaded coordinator forking
  # multi-threaded task children is exactly the pattern TSan polices.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan -L sweep-service --output-on-failure -j "$JOBS"
  # The DAG exchange reads phase timings the rank threads wrote and ships
  # them over extra allreduces at the iteration top; the trace->DAG rebuild
  # reads rings the rank threads filled.  Both must stay race-free.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan -L dag-smoke --output-on-failure -j "$JOBS"
}

STAGE="${1:-all}"
case "$STAGE" in
  docs)    stage_docs ;;
  release) stage_release ;;
  asan)    stage_asan ;;
  tsan)    stage_tsan ;;
  all)
    stage_release
    stage_asan
    stage_tsan
    ;;
  *)
    echo "usage: scripts/ci.sh [docs|release|asan|tsan|all]" >&2
    exit 1
    ;;
esac

echo "CI OK ($STAGE)"
