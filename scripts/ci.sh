#!/usr/bin/env bash
# CI pipeline: configure -> build -> tier-1 tests -> bench smoke ->
# AddressSanitizer configure+build.  Suitable as a single GitHub Actions
# step:  run: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== configure =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== build =="
cmake --build build -j "$JOBS"

echo "== tier-1 tests =="
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

echo "== bench smoke =="
ctest --test-dir build -L bench-smoke --output-on-failure -j "$JOBS"

echo "== asan configure + build =="
cmake -B build-asan -S . -DUNIMEM_SANITIZE=address -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"

echo "CI OK"
