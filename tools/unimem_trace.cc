// unimem_trace: convert, merge, filter, and summarize trace spills.
//
//   unimem_trace run.trace --json run.json        # Perfetto-loadable
//   unimem_trace a.trace b.trace --json all.json  # merge shards
//   unimem_trace run.trace --summary              # per-event rollup
//   unimem_trace run.trace --dag                  # phase critical path
//   unimem_trace run.trace --filter migration --print
//   unimem_trace run.trace --filter sweep --binary sweep-only.trace
//
// Inputs are binary spills ("UNIMTRC1") written by `unimem_sweep --trace
// FILE` (non-.json extension) or harvested per-task shards.  Multiple
// inputs are merged into one timeline: the first file's CLOCK_REALTIME
// epoch anchors the wall clock and later files' tracks are prefixed with
// "fileN/" so same-named threads from different processes stay apart.
//
// --filter matches CAT or CAT/NAME as a substring of "cat/name", e.g.
// "migration" keeps every migration event, "sweep/retry" only retries.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/phase_dag.h"
#include "trace/export.h"

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: unimem_trace FILE... [options]\n"
      "\n"
      "options:\n"
      "  --json PATH     write Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --binary PATH   write the merged/filtered trace as a binary spill\n"
      "  --summary       print a per-category/name rollup table\n"
      "  --dag           rebuild the phase DAG from runtime/phase spans and\n"
      "                  print per-rank slack plus the critical-path length\n"
      "  --print         print every event as one line\n"
      "  --filter STR    keep only events whose cat/name contains STR\n",
      out);
}

struct Args {
  std::vector<std::string> inputs;
  std::string json_out, binary_out, filter;
  bool summary = false, print = false, dag = false;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "unimem_trace: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--summary") {
      a.summary = true;
    } else if (arg == "--dag") {
      a.dag = true;
    } else if (arg == "--print") {
      a.print = true;
    } else if (arg == "--json") {
      const char* v = value("--json");
      if (v == nullptr) return false;
      a.json_out = v;
    } else if (arg == "--binary") {
      const char* v = value("--binary");
      if (v == nullptr) return false;
      a.binary_out = v;
    } else if (arg == "--filter") {
      const char* v = value("--filter");
      if (v == nullptr) return false;
      a.filter = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unimem_trace: unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      a.inputs.push_back(arg);
    }
  }
  if (a.inputs.empty()) {
    std::fprintf(stderr, "unimem_trace: no input files\n");
    return false;
  }
  if (a.json_out.empty() && a.binary_out.empty() && !a.summary && !a.print &&
      !a.dag) {
    a.summary = true;  // bare invocation: the rollup is the useful default
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using unimem::trace::TraceData;
  Args a;
  if (!parse(argc, argv, a)) {
    usage(stderr);
    return 1;
  }

  TraceData data;
  bool first = true;
  for (std::size_t i = 0; i < a.inputs.size(); ++i) {
    TraceData shard;
    if (!unimem::trace::read_binary(a.inputs[i], &shard)) {
      std::fprintf(stderr, "unimem_trace: cannot read %s (not a UNIMTRC1 "
                   "binary spill?)\n", a.inputs[i].c_str());
      return 1;
    }
    if (first) {
      data = std::move(shard);
      first = false;
    } else {
      unimem::trace::merge_into(&data, shard,
                                "file" + std::to_string(i) + "/");
    }
  }

  if (!a.filter.empty()) {
    std::vector<unimem::trace::TraceEventRow> kept;
    for (const auto& e : data.events) {
      const std::string key = data.str(e.cat) + "/" + data.str(e.name);
      if (key.find(a.filter) != std::string::npos) kept.push_back(e);
    }
    data.events = std::move(kept);
  }
  unimem::trace::sort_events(&data);

  if (a.print) {
    for (const auto& e : data.events) {
      std::printf("%12.6fms  %c  %-24s %-18s", e.wall_ns / 1e6, e.phase,
                  (data.str(e.cat) + "/" + data.str(e.name)).c_str(),
                  data.tracks[e.track < data.tracks.size() ? e.track : 0]
                      .name.c_str());
      if (e.vt >= 0) std::printf("  vt=%.6fs", e.vt);
      if (e.arg_name0 != 0)
        std::printf("  %s=%llu", data.str(e.arg_name0).c_str(),
                    static_cast<unsigned long long>(e.arg0));
      if (e.arg_name1 != 0)
        std::printf("  %s=%llu", data.str(e.arg_name1).c_str(),
                    static_cast<unsigned long long>(e.arg1));
      std::printf("\n");
    }
  }

  if (a.summary) {
    std::uint64_t truncated_total = 0;
    std::printf("%-32s %10s %14s %14s %10s\n", "event", "count",
                "wall_total_s", "vt_total_s", "truncated");
    for (const auto& row : unimem::trace::summarize(data)) {
      truncated_total += row.truncated;
      std::printf("%-32s %10llu %14.6f %14.6f %10llu\n",
                  (row.cat + "/" + row.name).c_str(),
                  static_cast<unsigned long long>(row.count),
                  row.wall_total_s, row.vt_total_s,
                  static_cast<unsigned long long>(row.truncated));
    }
    std::printf("%zu events on %zu tracks, %llu dropped, %llu truncated "
                "spans\n",
                data.events.size(), data.tracks.size(),
                static_cast<unsigned long long>(data.dropped),
                static_cast<unsigned long long>(truncated_total));
  }

  if (a.dag) {
    unimem::rt::PhaseDag dag = unimem::rt::PhaseDag::from_trace(data);
    if (!dag.compute()) {
      std::fprintf(stderr, "unimem_trace: --dag: no computable phase DAG "
                   "(trace has no runtime/phase spans?)\n");
      return 1;
    }
    // Per-rank rollup of the node table.
    std::map<int, std::pair<std::size_t, std::size_t>> per_rank;  // phases, crit
    double slack_total = 0;
    for (const auto& n : dag.nodes()) {
      auto& pr = per_rank[n.rank];
      ++pr.first;
      if (n.critical) ++pr.second;
      slack_total += n.slack_s;
    }
    std::printf("%-6s %8s %10s %14s\n", "rank", "phases", "critical",
                "slack_sum_s");
    for (const auto& [rank, pr] : per_rank) {
      double rank_slack = 0;
      for (const auto& n : dag.nodes())
        if (n.rank == rank) rank_slack += n.slack_s;
      std::printf("%-6d %8zu %10zu %14.6f\n", rank, pr.first, pr.second,
                  rank_slack);
    }
    std::printf("%zu nodes, %zu edges, total slack %.6fs, critical path "
                "%.6fs\n",
                dag.nodes().size(), dag.edges().size(), slack_total,
                dag.critical_path_s());
  }

  if (!a.json_out.empty() &&
      !unimem::trace::write_chrome_json(data, a.json_out)) {
    std::fprintf(stderr, "unimem_trace: cannot write %s\n",
                 a.json_out.c_str());
    return 1;
  }
  if (!a.binary_out.empty() &&
      !unimem::trace::write_binary(data, a.binary_out)) {
    std::fprintf(stderr, "unimem_trace: cannot write %s\n",
                 a.binary_out.c_str());
    return 1;
  }
  return 0;
}
