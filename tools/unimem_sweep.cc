// unimem_sweep: batch experiment driver over the sweep subsystem.
//
//   unimem_sweep --list
//   unimem_sweep --spec fig13 --jobs 8
//   unimem_sweep --spec fig2 --filter cg --points
//   unimem_sweep --spec fig11 --jobs 4 --csv out.csv --jsonl out.jsonl
//                [--summary-json summary.json]
//   unimem_sweep --spec fig12 --shards 4            # fork 4 shard children
//   unimem_sweep --spec fig12 --shard 0/2 --jsonl s0.jsonl   # one slice
//   unimem_sweep --merge s0.jsonl s1.jsonl --csv merged.csv  # stitch back
//   unimem_sweep --spec fig12 --launcher fork --workers 4 --steal
//                --retries 2 --jsonl out.jsonl     # coordinator service
//   unimem_sweep --spec fig12 --resume --jsonl out.jsonl     # crash-restart
//
// Runs a named SweepSpec through the SweepEngine: one World per point,
// concurrency bounded by simulated ranks in flight, DRAM-only
// normalization baselines memoized across the whole batch, results
// reported in deterministic spec order.  UNIMEM_BENCH_SMOKE=1 (or
// --smoke) shrinks the spec to smoke scale, same as the bench harnesses.
//
// Sharding: `--shard i/N` runs the i-th deterministic slice of the
// expansion (point indices stay those of the full expansion), `--merge`
// stitches per-shard JSONL files back into the point-ordered CSV/JSONL,
// and `--shards N` does both in one invocation by forking N child
// processes.
//
// Service mode: `--launcher inproc|fork|cmd[:PREFIX]` hands the campaign
// to the coordinator (src/sweep/coordinator.h): chunked dispatch across
// `--workers` slots, optional `--steal` work stealing, `--retries N`
// per-point retries with deterministic backoff, re-dispatch of tasks
// whose worker died, `--resume` crash-restart from an existing --jsonl
// artifact, and a live `--summary-json` rewritten (atomically) after
// every task.  The cmd launcher re-invokes this binary (optionally
// through a PREFIX such as "ssh host") with `--indices`, so any transport
// that can run a command against a shared filesystem works.
//
// Every topology produces byte-identical CSV/JSONL to a single-process
// `--jobs 1` run (asserted by the sweep_shard_golden ctest).
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <exception>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "sweep/coordinator.h"
#include "sweep/engine.h"
#include "sweep/launcher.h"
#include "simmem/tier_config.h"
#include "sweep/result_store.h"
#include "sweep/spec.h"
#include "trace/export.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace {

/// Version of the --summary-json document layout (see README "Summary
/// JSON schema").  Bump when fields change meaning or go away; adding
/// fields is compatible and does not bump.
constexpr int kSummarySchemaVersion = 2;

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// The schema_version/finished_at/metrics tail shared by every final
/// summary writer (the live service summary carries schema_version only —
/// the campaign has not finished and metrics are still accumulating).
std::string summary_tail() {
  return ",\"finished_at\":\"" + iso8601_utc_now() + "\",\"metrics\":" +
         unimem::trace::MetricsRegistry::global().snapshot().to_json();
}

/// Export by extension: .json = Chrome trace-event (Perfetto-loadable),
/// anything else = the compact binary spill format.
bool export_trace(unimem::trace::TraceData data, const std::string& path) {
  unimem::trace::sort_events(&data);
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  return json ? unimem::trace::write_chrome_json(data, path)
              : unimem::trace::write_binary(data, path);
}

void usage(std::FILE* out) {
  std::fputs(
      "usage: unimem_sweep --spec NAME [options]\n"
      "       unimem_sweep --list\n"
      "\n"
      "options:\n"
      "  --spec NAME          built-in spec to run (see --list)\n"
      "  --jobs N             concurrent jobs (default: hardware threads)\n"
      "  --ranks N            max simulated ranks in flight (default: 4*jobs)\n"
      "  --filter STR         run only points whose label contains STR\n"
      "  --indices I,J,...    run only the named expansion indices\n"
      "  --points             print the expanded point list and exit\n"
      "  --csv PATH           write the result table as CSV\n"
      "  --jsonl PATH         stream per-point results as JSONL\n"
      "  --summary-json PATH  write a machine-readable batch summary\n"
      "                       (service mode rewrites it live per task)\n"
      "  --shard I/N          run only the I-th of N deterministic shard slices\n"
      "  --shards N           fork N shard child processes and merge their rows\n"
      "  --merge FILE...      stitch per-shard JSONL files into --csv/--jsonl\n"
      "                       (with --spec: verify the merge covers the spec)\n"
      "  --profiler exact|N   override the spec's profiling tier: exact, or\n"
      "                       sampled with base period N (collapses the prof axis)\n"
      "  --dag off|slack      override the spec's phase-DAG scheduling mode\n"
      "                       (collapses the dag axis)\n"
      "  --tiers SPEC         override the spec's memory topology: a\n"
      "                       parse_topology ladder such as\n"
      "                       hbm:1MiB,dram:4MiB,nvm:512MiB, or 'classic' for\n"
      "                       the 2-tier machine (collapses the tiers axis)\n"
      "  --retries N          re-run failed points up to N times with capped\n"
      "                       deterministic exponential backoff\n"
      "  --launcher KIND      service mode: dispatch via a coordinator; KIND is\n"
      "                       inproc, fork, or cmd[:PREFIX] (e.g. cmd:ssh host)\n"
      "  --workers N          coordinator worker slots (default 2; implies\n"
      "                       --launcher inproc when none given)\n"
      "  --steal              work-steal chunks between coordinator workers\n"
      "  --resume             skip points already ok in the --jsonl artifact\n"
      "                       (tolerates a torn last line from a crash)\n"
      "  --trace PATH         record a span trace of the run; .json writes\n"
      "                       Chrome/Perfetto trace-event JSON, anything else\n"
      "                       the compact binary format (see unimem_trace)\n"
      "  --trace-buf N        per-thread trace ring capacity in events\n"
      "                       (default 16384; overflow drops, never blocks)\n"
      "  --smoke              clamp to smoke scale (same as UNIMEM_BENCH_SMOKE=1)\n"
      "  --quiet              suppress the stdout table\n"
      "\n"
      "fault-injection / internal (used by tests and the cmd launcher):\n"
      "  --inject-fail P[:SEED]  fail each point's first attempt with seeded\n"
      "                          probability P (deterministic per index)\n"
      "  --backoff-base S        retry backoff base delay in seconds\n"
      "  --attempt-base N        campaign-global attempt number of this task\n"
      "  --task-meta PATH        write the engine counter sidecar after the run\n",
      out);
}

/// Strict full-string signed parse: rejects empty strings, trailing
/// garbage ("16x"), and out-of-range values — unlike atoi/atol, which
/// accept all three silently.
bool parse_i64(const char* s, long long lo, long long hi, long long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  if (v < lo || v > hi) return false;
  *out = v;
  return true;
}

bool parse_u64(const char* s, unsigned long long lo, unsigned long long hi,
               unsigned long long* out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  if (v < lo || v > hi) return false;
  *out = v;
  return true;
}

bool parse_f64(const char* s, double lo, double hi, double* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  if (!(v >= lo && v <= hi)) return false;
  *out = v;
  return true;
}

struct Args {
  std::string spec;
  std::string filter;
  std::string profiler;  ///< --profiler exact|N ("" = spec default)
  std::string dag;       ///< --dag off|slack ("" = spec default)
  std::string tiers;     ///< --tiers SPEC|classic ("" = spec default)
  bool have_tiers = false;
  std::string csv, jsonl, summary_json;
  std::string launcher;   ///< "" = engine mode; inproc|fork|cmd[:PREFIX]
  std::string task_meta;  ///< --task-meta sidecar path ("" = none)
  std::string trace;      ///< --trace output path ("" = tracing off)
  unsigned long long trace_buf = 0;  ///< --trace-buf (0 = default ring)
  std::vector<std::string> merge_inputs;
  std::vector<std::size_t> indices;  ///< --indices selection ("" = all)
  bool have_indices = false;
  int jobs = 0;
  int ranks = 0;
  int shard = -1, nshards = 0;  ///< --shard I/N
  int fork_shards = 0;          ///< --shards N
  int retries = 0;
  int workers = 0;  ///< 0 = default (2) in service mode
  int attempt_base = 0;
  double inject_fail = 0.0;
  std::uint64_t inject_seed = 20177;  ///< conf_sc_WuHL17 vintage
  double backoff_base = -1.0;         ///< < 0 = RetryBackoff default
  bool steal = false, resume = false;
  bool list = false, points = false, smoke = false, quiet = false;
  bool merge = false;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "unimem_sweep: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--list") {
      a.list = true;
    } else if (arg == "--points") {
      a.points = true;
    } else if (arg == "--smoke") {
      a.smoke = true;
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (arg == "--steal") {
      a.steal = true;
    } else if (arg == "--resume") {
      a.resume = true;
    } else if (arg == "--spec") {
      const char* v = value("--spec");
      if (v == nullptr) return false;
      a.spec = v;
    } else if (arg == "--filter") {
      const char* v = value("--filter");
      if (v == nullptr) return false;
      a.filter = v;
    } else if (arg == "--profiler") {
      const char* v = value("--profiler");
      if (v == nullptr) return false;
      a.profiler = v;
      unsigned long long period = 0;
      if (a.profiler != "exact" &&
          !parse_u64(v, 1, UINT64_MAX, &period)) {
        std::fprintf(stderr,
                     "unimem_sweep: --profiler wants 'exact' or a period N "
                     ">= 1 (got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--dag") {
      const char* v = value("--dag");
      if (v == nullptr) return false;
      a.dag = v;
      if (a.dag != "off" && a.dag != "slack") {
        std::fprintf(stderr,
                     "unimem_sweep: --dag wants 'off' or 'slack' (got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--tiers") {
      const char* v = value("--tiers");
      if (v == nullptr) return false;
      a.have_tiers = true;
      a.tiers = v;
      if (a.tiers == "classic") a.tiers.clear();
      if (!a.tiers.empty()) {
        try {
          (void)unimem::mem::parse_topology(a.tiers);
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "unimem_sweep: --tiers wants 'classic' or a topology "
                       "like hbm:1MiB,dram:4MiB,nvm:512MiB (%s)\n",
                       e.what());
          return false;
        }
      }
    } else if (arg == "--csv") {
      const char* v = value("--csv");
      if (v == nullptr) return false;
      a.csv = v;
    } else if (arg == "--jsonl") {
      const char* v = value("--jsonl");
      if (v == nullptr) return false;
      a.jsonl = v;
    } else if (arg == "--summary-json") {
      const char* v = value("--summary-json");
      if (v == nullptr) return false;
      a.summary_json = v;
    } else if (arg == "--task-meta") {
      const char* v = value("--task-meta");
      if (v == nullptr) return false;
      a.task_meta = v;
    } else if (arg == "--trace") {
      const char* v = value("--trace");
      if (v == nullptr) return false;
      a.trace = v;
    } else if (arg == "--trace-buf") {
      const char* v = value("--trace-buf");
      if (v == nullptr) return false;
      if (!parse_u64(v, 1, 1ull << 30, &a.trace_buf)) {
        std::fprintf(stderr, "unimem_sweep: --trace-buf wants events in "
                     "[1, 2^30] (got '%s')\n", v);
        return false;
      }
    } else if (arg == "--launcher") {
      const char* v = value("--launcher");
      if (v == nullptr) return false;
      a.launcher = v;
      if (a.launcher != "inproc" && a.launcher != "fork" &&
          a.launcher != "cmd" && a.launcher.rfind("cmd:", 0) != 0) {
        std::fprintf(stderr,
                     "unimem_sweep: --launcher wants inproc, fork, or "
                     "cmd[:PREFIX] (got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--jobs") {
      const char* v = value("--jobs");
      if (v == nullptr) return false;
      long long n = 0;
      if (!parse_i64(v, 0, 1 << 20, &n)) {
        std::fprintf(stderr, "unimem_sweep: --jobs wants an integer >= 0 "
                     "(got '%s')\n", v);
        return false;
      }
      a.jobs = static_cast<int>(n);
    } else if (arg == "--ranks") {
      const char* v = value("--ranks");
      if (v == nullptr) return false;
      long long n = 0;
      if (!parse_i64(v, 0, 1 << 20, &n)) {
        std::fprintf(stderr, "unimem_sweep: --ranks wants an integer >= 0 "
                     "(got '%s')\n", v);
        return false;
      }
      a.ranks = static_cast<int>(n);
    } else if (arg == "--retries") {
      const char* v = value("--retries");
      if (v == nullptr) return false;
      long long n = 0;
      if (!parse_i64(v, 0, 1000, &n)) {
        std::fprintf(stderr, "unimem_sweep: --retries wants an integer in "
                     "[0, 1000] (got '%s')\n", v);
        return false;
      }
      a.retries = static_cast<int>(n);
    } else if (arg == "--workers") {
      const char* v = value("--workers");
      if (v == nullptr) return false;
      long long n = 0;
      if (!parse_i64(v, 1, 1 << 16, &n)) {
        std::fprintf(stderr, "unimem_sweep: --workers wants an integer >= 1 "
                     "(got '%s')\n", v);
        return false;
      }
      a.workers = static_cast<int>(n);
    } else if (arg == "--attempt-base") {
      const char* v = value("--attempt-base");
      if (v == nullptr) return false;
      long long n = 0;
      if (!parse_i64(v, 0, 1 << 20, &n)) {
        std::fprintf(stderr, "unimem_sweep: --attempt-base wants an integer "
                     ">= 0 (got '%s')\n", v);
        return false;
      }
      a.attempt_base = static_cast<int>(n);
    } else if (arg == "--backoff-base") {
      const char* v = value("--backoff-base");
      if (v == nullptr) return false;
      if (!parse_f64(v, 0.0, 3600.0, &a.backoff_base)) {
        std::fprintf(stderr, "unimem_sweep: --backoff-base wants seconds in "
                     "[0, 3600] (got '%s')\n", v);
        return false;
      }
    } else if (arg == "--inject-fail") {
      const char* v = value("--inject-fail");
      if (v == nullptr) return false;
      std::string spec = v;
      const std::size_t colon = spec.find(':');
      bool ok = true;
      if (colon != std::string::npos) {
        unsigned long long seed = 0;
        ok = parse_u64(spec.c_str() + colon + 1, 0, UINT64_MAX, &seed);
        a.inject_seed = seed;
        spec.resize(colon);
      }
      if (!ok || !parse_f64(spec.c_str(), 0.0, 1.0, &a.inject_fail)) {
        std::fprintf(stderr, "unimem_sweep: --inject-fail wants P[:SEED] "
                     "with P in [0, 1] (got '%s')\n", v);
        return false;
      }
    } else if (arg == "--indices") {
      const char* v = value("--indices");
      if (v == nullptr) return false;
      a.have_indices = true;
      const std::string list = v;
      std::size_t start = 0;
      bool ok = !list.empty();
      while (ok && start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        unsigned long long idx = 0;
        ok = parse_u64(list.substr(start, comma - start).c_str(), 0,
                       SIZE_MAX, &idx);
        if (ok) a.indices.push_back(static_cast<std::size_t>(idx));
        start = comma + 1;
      }
      if (!ok) {
        std::fprintf(stderr, "unimem_sweep: --indices wants a comma-separated "
                     "integer list (got '%s')\n", v);
        return false;
      }
    } else if (arg == "--shard") {
      const char* v = value("--shard");
      if (v == nullptr) return false;
      int consumed = -1;
      if (std::sscanf(v, "%d/%d%n", &a.shard, &a.nshards, &consumed) != 2 ||
          consumed != static_cast<int>(std::strlen(v)) || a.shard < 0 ||
          a.nshards < 1 || a.shard >= a.nshards) {
        std::fprintf(stderr,
                     "unimem_sweep: --shard wants I/N with 0 <= I < N "
                     "(got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--shards") {
      const char* v = value("--shards");
      if (v == nullptr) return false;
      long long n = 0;
      if (!parse_i64(v, 1, 1 << 16, &n)) {
        std::fprintf(stderr, "unimem_sweep: --shards wants N >= 1 (got '%s')\n",
                     v);
        return false;
      }
      a.fork_shards = static_cast<int>(n);
    } else if (arg == "--merge") {
      a.merge = true;
    } else if (a.merge && !arg.empty() && arg[0] != '-') {
      a.merge_inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "unimem_sweep: unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  if (a.merge && a.merge_inputs.empty()) {
    std::fprintf(stderr, "unimem_sweep: --merge needs shard JSONL files\n");
    return false;
  }
  if (a.merge && (a.shard >= 0 || a.fork_shards > 0)) {
    std::fprintf(stderr, "unimem_sweep: --merge excludes --shard/--shards\n");
    return false;
  }
  if (a.shard >= 0 && a.fork_shards > 0) {
    std::fprintf(stderr, "unimem_sweep: pick one of --shard or --shards\n");
    return false;
  }
  // --steal/--workers only mean something under a coordinator; default
  // them into the cheapest launcher rather than silently ignoring them.
  if (a.launcher.empty() && (a.steal || a.workers > 0)) a.launcher = "inproc";
  if (!a.launcher.empty() && (a.shard >= 0 || a.fork_shards > 0)) {
    std::fprintf(stderr,
                 "unimem_sweep: --launcher excludes --shard/--shards (the "
                 "coordinator owns the topology)\n");
    return false;
  }
  if (a.resume && a.jsonl.empty()) {
    std::fprintf(stderr, "unimem_sweep: --resume needs --jsonl PATH (the "
                 "artifact to resume from)\n");
    return false;
  }
  return true;
}

/// Absolute path of this binary, for the cmd launcher's self-invocation.
std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

}  // namespace

int run_cli(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unimem_sweep: %s\n", e.what());
    return 1;
  }
}

int run_cli(int argc, char** argv) {
  using namespace unimem;
  Args a;
  if (!parse(argc, argv, a)) {
    usage(stderr);
    return 1;
  }

  if (a.list) {
    std::printf("%-18s %-7s %-32s %s\n", "spec", "points", "axes", "title");
    for (const std::string& name : sweep::spec_names()) {
      sweep::SweepSpec s = *sweep::spec_by_name(name);
      if (a.smoke || sweep::smoke_requested()) s = sweep::smoke_clamped(s);
      std::string axes;
      for (const std::string& ax : s.axis_names()) {
        if (!axes.empty()) axes += ',';
        axes += ax;
      }
      if (axes.empty()) axes = "-";
      std::printf("%-18s %-7zu %-32s %s\n", name.c_str(), s.size(),
                  axes.c_str(), s.title.c_str());
    }
    return 0;
  }

  if (a.merge) {
    // Offline mode: no worlds run; per-shard JSONL rows are stitched back
    // into the point-ordered table (byte-identical to a single-process
    // run's outputs, since every row round-trips exactly).
    const std::vector<sweep::SweepRow> rows =
        sweep::merge_shards(a.merge_inputs);
    // merge_shards rejects overlapping shards; missing ones it cannot
    // tell from a filtered run, so cross-check against the spec when
    // named and otherwise at least flag index gaps.
    if (!a.spec.empty()) {
      auto spec = sweep::spec_by_name(a.spec);
      if (!spec) {
        std::fprintf(stderr, "unimem_sweep: unknown spec '%s' (try --list)\n",
                     a.spec.c_str());
        return 1;
      }
      if (a.smoke || sweep::smoke_requested()) *spec = sweep::smoke_clamped(*spec);
      const auto points = spec->expand(a.filter);
      bool complete = rows.size() == points.size();
      for (std::size_t i = 0; complete && i < rows.size(); ++i)
        complete = rows[i].index == points[i].index;
      if (!complete) {
        std::fprintf(stderr,
                     "unimem_sweep: merged rows (%zu) do not cover spec '%s' "
                     "(%zu points) — a shard file is missing or stale\n",
                     rows.size(), a.spec.c_str(), points.size());
        return 1;
      }
    } else if (!rows.empty() &&
               rows.back().index + 1 != rows.size()) {
      std::fprintf(stderr,
                   "unimem_sweep: warning: merged rows leave point indices "
                   "unfilled (fine for a filtered/partial sweep; otherwise a "
                   "shard file is missing — pass --spec to verify coverage)\n");
    }
    sweep::SweepResultStore store;
    if (!a.jsonl.empty()) store.stream_jsonl(a.jsonl);
    if (!a.csv.empty()) store.write_csv_at_finish(a.csv);
    std::size_t failed = 0;
    for (const sweep::SweepRow& r : rows) {
      if (!r.ok) ++failed;
      store.add(r);  // rows arrive point-ordered, so the stream is too
    }
    store.finish();
    if (!a.quiet)
      store
          .report("merged sweep [" + std::to_string(a.merge_inputs.size()) +
                  " shards, " + std::to_string(rows.size()) + " points]")
          .print();
    std::printf("\nmerge: %zu shard files, %zu points, %zu failed\n",
                a.merge_inputs.size(), rows.size(), failed);
    return failed == 0 ? 0 : 2;
  }

  if (a.spec.empty()) {
    usage(stderr);
    return 1;
  }
  auto spec = sweep::spec_by_name(a.spec);
  if (!spec) {
    std::fprintf(stderr, "unimem_sweep: unknown spec '%s' (try --list)\n",
                 a.spec.c_str());
    return 1;
  }
  if (a.smoke || sweep::smoke_requested()) *spec = sweep::smoke_clamped(*spec);
  if (!a.profiler.empty()) {
    // Collapse the profiling-tier axis to the requested value; explicit
    // points keep their own configs (they never carry the prof axis).
    unsigned long long period = 0;
    if (a.profiler != "exact")
      parse_u64(a.profiler.c_str(), 1, UINT64_MAX, &period);  // parse() vetted
    spec->profiler_periods = {static_cast<std::uint64_t>(period)};
  }
  if (!a.dag.empty()) {
    // Collapse the phase-DAG scheduling axis to the requested value.
    spec->dag_schedules = {a.dag == "slack" ? rt::DagSchedule::kSlack
                                            : rt::DagSchedule::kOff};
  }
  if (a.have_tiers) {
    // Collapse the memory-topology axis to the requested ladder ("" after
    // parse() = the classic 2-tier machine).
    spec->topologies = {a.tiers};
  }

  auto points = spec->expand(a.filter);
  if (points.empty()) {
    std::fprintf(stderr, "unimem_sweep: no points match filter '%s'\n",
                 a.filter.c_str());
    return 1;
  }
  if (a.have_indices) {
    // Select by expansion index (the cmd launcher's task vocabulary);
    // order follows the list so a chunk executes in its dispatch order.
    std::map<std::size_t, const sweep::SweepPoint*> by_index;
    for (const auto& p : points) by_index[p.index] = &p;
    std::vector<sweep::SweepPoint> picked;
    for (std::size_t idx : a.indices) {
      const auto it = by_index.find(idx);
      if (it == by_index.end()) {
        std::fprintf(stderr,
                     "unimem_sweep: --indices names point %zu, which the "
                     "expansion does not contain\n",
                     idx);
        return 1;
      }
      picked.push_back(*it->second);
    }
    points = std::move(picked);
  }
  // Slice after filtering; indices stay those of the full expansion, so a
  // later --merge reassembles the original table.  An empty slice (more
  // shards than points) is a valid degenerate partition member.
  if (a.shard >= 0) points = sweep::shard_slice(points, a.shard, a.nshards);

  if (a.points) {
    std::printf("%-5s %-6s %s\n", "index", "ranks", "label");
    for (const auto& p : points)
      std::printf("%-5zu %-6d %s%s\n", p.index, p.cfg.wcfg.nranks,
                  p.label.c_str(), p.normalize ? "  [normalized]" : "");
    std::printf("%zu points\n", points.size());
    return 0;
  }

  // Resume: read the previous campaign's artifact BEFORE stream_jsonl
  // truncates it.  Only ok rows whose index and label match the current
  // expansion count; failed rows get a second chance.
  std::vector<sweep::SweepRow> resume_rows;
  if (a.resume && std::filesystem::exists(a.jsonl)) {
    std::size_t dropped = 0;
    resume_rows = sweep::read_jsonl_tolerant(a.jsonl, &dropped);
    if (dropped != 0)
      Log::warn(
          "dropped a torn trailing line from %s (previous writer died "
          "mid-write); its point re-runs",
          a.jsonl.c_str());
  }

  if (!a.trace.empty()) {
    if (a.fork_shards > 0)
      Log::warn(
          "--trace with --shards records only the parent process; use "
          "--launcher fork to capture per-task trace shards");
    trace::TraceRecorder::instance().start(
        static_cast<std::size_t>(a.trace_buf));
  }

  sweep::SweepResultStore store;
  if (!a.jsonl.empty()) store.stream_jsonl(a.jsonl);
  if (!a.csv.empty()) store.write_csv_at_finish(a.csv);
  // Service and resumed runs may finalize rows out of point order even at
  // --jobs 1; rewriting the artifact at finish keeps the byte-identity
  // contract across every topology.  Plain engine runs keep the streamed
  // file as-is (completion order == point order at --jobs 1).
  if (!a.jsonl.empty() && (a.resume || !a.launcher.empty()))
    store.write_jsonl_at_finish(a.jsonl);

  sweep::EngineOptions eopts;
  eopts.jobs = a.jobs;
  eopts.max_inflight_ranks = a.ranks;
  eopts.max_point_retries = a.retries;
  eopts.attempt_base = a.attempt_base;
  if (a.backoff_base >= 0) eopts.backoff.base_s = a.backoff_base;
  if (a.inject_fail > 0) {
    const double prob = a.inject_fail;
    const std::uint64_t seed = a.inject_seed;
    eopts.run_point = [prob, seed](const sweep::SweepPoint& p, int attempt) {
      if (attempt == 0) {
        Rng rng(seed ^ (static_cast<std::uint64_t>(p.index) *
                        0x9e3779b97f4a7c15ull));
        if (rng.uniform() < prob)
          throw std::runtime_error("injected transient fault (attempt 0)");
      }
      return exp::run_once(p.cfg);
    };
  }
  eopts.on_result = [&](const sweep::SweepRow& row) { store.add(row); };

  // ---- service mode: coordinator + pluggable launcher -------------------
  if (!a.launcher.empty()) {
    namespace fs = std::filesystem;
    const int workers = a.workers > 0 ? a.workers : 2;
    if (eopts.jobs <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      eopts.jobs = std::max(1, static_cast<int>(hw) / workers);
    }
    eopts.on_result = nullptr;  // rows come back through task artifacts

    std::string scratch =
        (fs::temp_directory_path() / "unimem_sweep.XXXXXX").string();
    if (mkdtemp(scratch.data()) == nullptr) {
      std::fprintf(stderr, "unimem_sweep: cannot create scratch dir\n");
      return 1;
    }

    std::unique_ptr<sweep::Launcher> launcher;
    if (a.launcher == "inproc") {
      launcher = std::make_unique<sweep::InProcessLauncher>();
    } else if (a.launcher == "fork") {
      launcher = std::make_unique<sweep::ForkLauncher>();
    } else {
      // cmd[:PREFIX]: re-invoke this binary (through the PREFIX tokens,
      // e.g. "ssh host") with --indices naming the chunk's points.
      std::vector<std::string> prefix;
      if (a.launcher.rfind("cmd:", 0) == 0) {
        const std::string rest = a.launcher.substr(4);
        std::size_t start = 0;
        while (start < rest.size()) {
          std::size_t sp = rest.find(' ', start);
          if (sp == std::string::npos) sp = rest.size();
          if (sp > start) prefix.push_back(rest.substr(start, sp - start));
          start = sp + 1;
        }
      }
      const std::string self = self_exe(argv[0]);
      const Args args_copy = a;
      auto make_argv = [self, args_copy](const sweep::LaunchTask& t) {
        std::vector<std::string> v{self, "--spec", args_copy.spec, "--quiet"};
        if (args_copy.smoke) v.push_back("--smoke");
        if (!args_copy.profiler.empty()) {
          v.push_back("--profiler");
          v.push_back(args_copy.profiler);
        }
        if (!args_copy.dag.empty()) {
          v.push_back("--dag");
          v.push_back(args_copy.dag);
        }
        if (args_copy.have_tiers) {
          v.push_back("--tiers");
          v.push_back(args_copy.tiers.empty() ? "classic" : args_copy.tiers);
        }
        v.push_back("--jobs");
        v.push_back(std::to_string(t.engine.jobs));
        if (t.engine.max_inflight_ranks > 0) {
          v.push_back("--ranks");
          v.push_back(std::to_string(t.engine.max_inflight_ranks));
        }
        if (t.engine.max_point_retries > 0) {
          v.push_back("--retries");
          v.push_back(std::to_string(t.engine.max_point_retries));
        }
        if (args_copy.backoff_base >= 0) {
          v.push_back("--backoff-base");
          v.push_back(std::to_string(args_copy.backoff_base));
        }
        if (args_copy.inject_fail > 0) {
          v.push_back("--inject-fail");
          v.push_back(std::to_string(args_copy.inject_fail) + ":" +
                      std::to_string(args_copy.inject_seed));
        }
        if (t.attempt_base > 0) {
          v.push_back("--attempt-base");
          v.push_back(std::to_string(t.attempt_base));
        }
        if (!t.trace.empty()) {
          // Binary shard spilled next to the artifact; the coordinator
          // harvests and the parent stitches it into the campaign trace.
          v.push_back("--trace");
          v.push_back(t.trace);
          if (t.trace_buf > 0) {
            v.push_back("--trace-buf");
            v.push_back(std::to_string(t.trace_buf));
          }
        }
        std::string idx;
        for (const sweep::SweepPoint& p : t.points) {
          if (!idx.empty()) idx += ',';
          idx += std::to_string(p.index);
        }
        v.push_back("--indices");
        v.push_back(idx);
        v.push_back("--jsonl");
        v.push_back(t.artifact);
        v.push_back("--task-meta");
        v.push_back(t.artifact + ".meta");
        return v;
      };
      launcher = std::make_unique<sweep::CommandLauncher>(std::move(prefix),
                                                          make_argv);
    }

    sweep::CoordinatorOptions copts;
    copts.launcher = launcher.get();
    copts.workers = workers;
    copts.steal = a.steal;
    copts.engine = eopts;
    copts.scratch_dir = scratch;
    // In-process tasks emit straight into this process's recorder; the
    // process launchers need per-task shards to see inside the children.
    copts.trace_tasks = !a.trace.empty() && a.launcher != "inproc";
    copts.trace_buf = static_cast<std::size_t>(a.trace_buf);
    copts.resume_rows = std::move(resume_rows);
    copts.on_final_row = [&](const sweep::SweepRow& row) { store.add(row); };
    // Live summary: rewrite-and-rename after every task, so a watcher
    // always reads a complete JSON document mid-campaign.
    copts.on_progress = [&](const sweep::CampaignProgress& p) {
      if (a.summary_json.empty()) return;
      const std::string tmp = a.summary_json + ".tmp";
      std::FILE* f = std::fopen(tmp.c_str(), "w");
      if (f == nullptr) return;
      std::fprintf(
          f,
          "{\"schema_version\":%d,\"spec\":\"%s\",\"points\":%zu,"
          "\"done\":%zu,\"failed\":%zu,"
          "\"resumed\":%zu,\"retries\":%zu,\"steals\":%zu,\"tasks\":%zu,"
          "\"task_retries\":%zu,\"workers\":%d,\"launcher\":\"%s\","
          "\"steal\":%s,\"complete\":%s,\"host_cpus\":%u}\n",
          kSummarySchemaVersion, a.spec.c_str(), p.total, p.done, p.failed,
          p.resumed, p.retries, p.steals, p.tasks, p.task_retries, workers,
          launcher->name(), a.steal ? "true" : "false",
          p.complete ? "true" : "false", std::thread::hardware_concurrency());
      std::fclose(f);
      std::rename(tmp.c_str(), a.summary_json.c_str());
    };

    sweep::CampaignOutcome outcome;
    try {
      outcome = sweep::run_campaign(points, copts);
    } catch (...) {
      fs::remove_all(scratch);
      throw;
    }
    if (!a.trace.empty()) {
      // Stitch the coordinator's own events with every harvested task
      // shard (they live in scratch, so merge before removal).  Each
      // task's tracks get a "task-N/" prefix so per-worker rank threads
      // stay distinguishable in the stitched timeline.
      trace::TraceData merged = trace::TraceRecorder::instance().stop();
      for (const std::string& shard : outcome.trace_shards) {
        trace::TraceData sd;
        if (!trace::read_binary(shard, &sd)) {
          Log::warn("skipping unreadable trace shard %s", shard.c_str());
          continue;
        }
        std::string task = fs::path(shard).filename().string();
        const std::size_t dot = task.find('.');
        if (dot != std::string::npos) task.resize(dot);
        trace::merge_into(&merged, sd, task + "/");
      }
      if (!export_trace(std::move(merged), a.trace))
        Log::warn("cannot write trace %s", a.trace.c_str());
    }
    fs::remove_all(scratch);
    store.finish();

    if (!a.quiet) {
      store.report(spec->title + " [" + a.spec + ", " +
                   std::to_string(points.size()) + " points, service]")
          .print();
    }
    std::printf(
        "\nsweep %s [service/%s]: %zu points, %zu failed, %zu resumed, "
        "%zu retries, %zu steals, %zu tasks (%zu re-dispatched), %d workers, "
        "%.2fs wall, %zu worlds executed\n",
        a.spec.c_str(), launcher->name(), outcome.rows.size(), outcome.failed,
        outcome.resumed, outcome.retries, outcome.steals, outcome.tasks,
        outcome.task_retries, outcome.workers, outcome.wall_s,
        outcome.worlds_executed);

    if (!a.summary_json.empty()) {
      // Final summary: the live fields plus the engine aggregates that
      // only exist once every task sidecar is in.
      std::FILE* f = std::fopen(a.summary_json.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "unimem_sweep: cannot open %s\n",
                     a.summary_json.c_str());
        return 1;
      }
      std::fprintf(
          f,
          "{\"schema_version\":%d,\"spec\":\"%s\",\"points\":%zu,"
          "\"done\":%zu,\"failed\":%zu,"
          "\"resumed\":%zu,\"retries\":%zu,\"steals\":%zu,\"tasks\":%zu,"
          "\"task_retries\":%zu,\"workers\":%d,\"launcher\":\"%s\","
          "\"steal\":%s,\"complete\":true,\"jobs\":%d,\"wall_s\":%.6f,"
          "\"worlds_executed\":%zu,\"baseline_requests\":%zu,"
          "\"baseline_computed\":%zu,\"host_cpus\":%u%s}\n",
          kSummarySchemaVersion, a.spec.c_str(), outcome.rows.size(),
          outcome.rows.size(), outcome.failed, outcome.resumed,
          outcome.retries, outcome.steals, outcome.tasks,
          outcome.task_retries, outcome.workers, launcher->name(),
          a.steal ? "true" : "false", outcome.jobs_used, outcome.wall_s,
          outcome.worlds_executed, outcome.baseline_requests,
          outcome.baseline_computed, std::thread::hardware_concurrency(),
          summary_tail().c_str());
      std::fclose(f);
    }
    return outcome.failed == 0 ? 0 : 2;
  }

  // ---- engine mode (single process or forked shards) --------------------
  std::size_t resumed = 0;
  if (a.resume && !resume_rows.empty()) {
    std::set<std::size_t> have;
    std::map<std::size_t, const sweep::SweepPoint*> by_index;
    for (const auto& p : points) by_index[p.index] = &p;
    std::vector<sweep::SweepRow> keep;
    for (const sweep::SweepRow& row : resume_rows) {
      const auto it = by_index.find(row.index);
      if (it == by_index.end()) continue;
      if (row.label != it->second->label)
        throw std::runtime_error(
            "resume row " + std::to_string(row.index) + " has label '" +
            row.label + "' but the spec expands to '" + it->second->label +
            "' — stale artifact from another spec?");
      if (!row.ok || have.count(row.index) != 0) continue;
      have.insert(row.index);
      keep.push_back(row);
    }
    std::sort(keep.begin(), keep.end(),
              [](const sweep::SweepRow& x, const sweep::SweepRow& y) {
                return x.index < y.index;
              });
    for (const sweep::SweepRow& row : keep) store.add(row);
    resumed = keep.size();
    std::vector<sweep::SweepPoint> todo;
    for (const auto& p : points)
      if (have.count(p.index) == 0) todo.push_back(p);
    points = std::move(todo);
  }
  const std::size_t total_points = points.size() + resumed;

  sweep::SweepOutcome outcome;
  if (a.fork_shards > 0 && !points.empty()) {
    // Multi-process topology: fork before any threads exist.  The parent
    // replays merged rows through on_result in point order, so --jsonl
    // streams the same bytes a --jobs 1 run would.
    namespace fs = std::filesystem;
    std::string tmpl =
        (fs::temp_directory_path() / "unimem_sweep.XXXXXX").string();
    if (mkdtemp(tmpl.data()) == nullptr) {
      std::fprintf(stderr, "unimem_sweep: cannot create scratch dir\n");
      return 1;
    }
    sweep::ShardedOptions sopts;
    sopts.shards = a.fork_shards;
    sopts.engine = eopts;
    sopts.scratch_dir = tmpl;
    try {
      outcome = sweep::run_sharded_processes(points, sopts);
    } catch (...) {
      fs::remove_all(tmpl);
      throw;
    }
    fs::remove_all(tmpl);
  } else if (!points.empty()) {
    sweep::SweepEngine engine(eopts);
    outcome = engine.run(points);
  }
  store.finish();

  if (!a.trace.empty() &&
      !export_trace(trace::TraceRecorder::instance().stop(), a.trace))
    Log::warn("cannot write trace %s", a.trace.c_str());

  if (!a.task_meta.empty()) {
    // Engine counter sidecar (same format as shard/task metas), so a
    // coordinator that launched this invocation via the cmd launcher can
    // aggregate world/baseline/retry counters across the fleet.
    std::FILE* f = std::fopen(a.task_meta.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "unimem_sweep: cannot open %s\n",
                   a.task_meta.c_str());
      return 1;
    }
    std::fprintf(f, "%zu %zu %zu %zu %d %zu\n", outcome.worlds_executed,
                 outcome.baseline_requests, outcome.baseline_computed,
                 outcome.failed, outcome.jobs_used, outcome.retries);
    std::fclose(f);
  }

  if (!a.quiet) {
    store.report(spec->title + " [" + a.spec + ", " +
                 std::to_string(total_points) + " points]")
        .print();
  }
  std::printf(
      "\nsweep %s: %zu points, %zu failed, %zu resumed, %.2fs wall, "
      "%zu worlds executed (naive: %zu), %zu/%zu baselines memoized\n",
      a.spec.c_str(), total_points, outcome.failed, resumed, outcome.wall_s,
      outcome.worlds_executed, outcome.rows.size() + outcome.baseline_requests,
      outcome.baseline_requests - outcome.baseline_computed,
      outcome.baseline_requests);

  if (!a.summary_json.empty()) {
    std::FILE* f = std::fopen(a.summary_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "unimem_sweep: cannot open %s\n",
                   a.summary_json.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"schema_version\":%d,\"spec\":\"%s\",\"points\":%zu,"
        "\"failed\":%zu,\"jobs\":%d,"
        "\"shards\":%d,\"retries\":%zu,\"resumed\":%zu,"
        "\"wall_s\":%.6f,\"worlds_executed\":%zu,\"baseline_requests\":%zu,"
        "\"baseline_computed\":%zu,\"host_cpus\":%u%s}\n",
        kSummarySchemaVersion, a.spec.c_str(), total_points, outcome.failed,
        outcome.jobs_used, outcome.shards, outcome.retries, resumed,
        outcome.wall_s, outcome.worlds_executed, outcome.baseline_requests,
        outcome.baseline_computed, std::thread::hardware_concurrency(),
        summary_tail().c_str());
    std::fclose(f);
  }
  return outcome.failed == 0 ? 0 : 2;
}
