// unimem_sweep: batch experiment driver over the sweep subsystem.
//
//   unimem_sweep --list
//   unimem_sweep --spec fig13 --jobs 8
//   unimem_sweep --spec fig2 --filter cg --points
//   unimem_sweep --spec fig11 --jobs 4 --csv out.csv --jsonl out.jsonl
//                [--summary-json summary.json]
//   unimem_sweep --spec fig12 --shards 4            # fork 4 shard children
//   unimem_sweep --spec fig12 --shard 0/2 --jsonl s0.jsonl   # one slice
//   unimem_sweep --merge s0.jsonl s1.jsonl --csv merged.csv  # stitch back
//
// Runs a named SweepSpec through the SweepEngine: one World per point,
// concurrency bounded by simulated ranks in flight, DRAM-only
// normalization baselines memoized across the whole batch, results
// reported in deterministic spec order.  UNIMEM_BENCH_SMOKE=1 (or
// --smoke) shrinks the spec to smoke scale, same as the bench harnesses.
//
// Sharding: `--shard i/N` runs the i-th deterministic slice of the
// expansion (point indices stay those of the full expansion), `--merge`
// stitches per-shard JSONL files back into the point-ordered CSV/JSONL,
// and `--shards N` does both in one invocation by forking N child
// processes.  Every topology produces byte-identical CSV/JSONL to a
// single-process `--jobs 1` run (asserted by the sweep_shard_golden
// ctest).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "sweep/engine.h"
#include "sweep/result_store.h"
#include "sweep/spec.h"

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: unimem_sweep --spec NAME [options]\n"
      "       unimem_sweep --list\n"
      "\n"
      "options:\n"
      "  --spec NAME          built-in spec to run (see --list)\n"
      "  --jobs N             concurrent jobs (default: hardware threads)\n"
      "  --ranks N            max simulated ranks in flight (default: 4*jobs)\n"
      "  --filter STR         run only points whose label contains STR\n"
      "  --points             print the expanded point list and exit\n"
      "  --csv PATH           write the result table as CSV\n"
      "  --jsonl PATH         stream per-point results as JSONL\n"
      "  --summary-json PATH  write a machine-readable batch summary\n"
      "  --shard I/N          run only the I-th of N deterministic shard slices\n"
      "  --shards N           fork N shard child processes and merge their rows\n"
      "  --merge FILE...      stitch per-shard JSONL files into --csv/--jsonl\n"
      "                       (with --spec: verify the merge covers the spec)\n"
      "  --profiler exact|N   override the spec's profiling tier: exact, or\n"
      "                       sampled with base period N (collapses the prof axis)\n"
      "  --smoke              clamp to smoke scale (same as UNIMEM_BENCH_SMOKE=1)\n"
      "  --quiet              suppress the stdout table\n",
      out);
}

struct Args {
  std::string spec;
  std::string filter;
  std::string profiler;  ///< --profiler exact|N ("" = spec default)
  std::string csv, jsonl, summary_json;
  std::vector<std::string> merge_inputs;
  int jobs = 0;
  int ranks = 0;
  int shard = -1, nshards = 0;  ///< --shard I/N
  int fork_shards = 0;          ///< --shards N
  bool list = false, points = false, smoke = false, quiet = false;
  bool merge = false;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "unimem_sweep: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--list") {
      a.list = true;
    } else if (arg == "--points") {
      a.points = true;
    } else if (arg == "--smoke") {
      a.smoke = true;
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (arg == "--spec") {
      const char* v = value("--spec");
      if (v == nullptr) return false;
      a.spec = v;
    } else if (arg == "--filter") {
      const char* v = value("--filter");
      if (v == nullptr) return false;
      a.filter = v;
    } else if (arg == "--profiler") {
      const char* v = value("--profiler");
      if (v == nullptr) return false;
      a.profiler = v;
      if (a.profiler != "exact" && std::atol(a.profiler.c_str()) < 1) {
        std::fprintf(stderr,
                     "unimem_sweep: --profiler wants 'exact' or a period N "
                     ">= 1 (got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--csv") {
      const char* v = value("--csv");
      if (v == nullptr) return false;
      a.csv = v;
    } else if (arg == "--jsonl") {
      const char* v = value("--jsonl");
      if (v == nullptr) return false;
      a.jsonl = v;
    } else if (arg == "--summary-json") {
      const char* v = value("--summary-json");
      if (v == nullptr) return false;
      a.summary_json = v;
    } else if (arg == "--jobs") {
      const char* v = value("--jobs");
      if (v == nullptr) return false;
      a.jobs = std::atoi(v);
    } else if (arg == "--ranks") {
      const char* v = value("--ranks");
      if (v == nullptr) return false;
      a.ranks = std::atoi(v);
    } else if (arg == "--shard") {
      const char* v = value("--shard");
      if (v == nullptr) return false;
      if (std::sscanf(v, "%d/%d", &a.shard, &a.nshards) != 2 || a.shard < 0 ||
          a.nshards < 1 || a.shard >= a.nshards) {
        std::fprintf(stderr,
                     "unimem_sweep: --shard wants I/N with 0 <= I < N "
                     "(got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--shards") {
      const char* v = value("--shards");
      if (v == nullptr) return false;
      a.fork_shards = std::atoi(v);
      if (a.fork_shards < 1) {
        std::fprintf(stderr, "unimem_sweep: --shards wants N >= 1 (got '%s')\n",
                     v);
        return false;
      }
    } else if (arg == "--merge") {
      a.merge = true;
    } else if (a.merge && !arg.empty() && arg[0] != '-') {
      a.merge_inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "unimem_sweep: unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  if (a.merge && a.merge_inputs.empty()) {
    std::fprintf(stderr, "unimem_sweep: --merge needs shard JSONL files\n");
    return false;
  }
  if (a.merge && (a.shard >= 0 || a.fork_shards > 0)) {
    std::fprintf(stderr, "unimem_sweep: --merge excludes --shard/--shards\n");
    return false;
  }
  if (a.shard >= 0 && a.fork_shards > 0) {
    std::fprintf(stderr, "unimem_sweep: pick one of --shard or --shards\n");
    return false;
  }
  return true;
}

}  // namespace

int run_cli(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unimem_sweep: %s\n", e.what());
    return 1;
  }
}

int run_cli(int argc, char** argv) {
  using namespace unimem;
  Args a;
  if (!parse(argc, argv, a)) {
    usage(stderr);
    return 1;
  }

  if (a.list) {
    std::printf("%-12s %-7s %s\n", "spec", "points", "title");
    for (const std::string& name : sweep::spec_names()) {
      sweep::SweepSpec s = *sweep::spec_by_name(name);
      if (a.smoke || sweep::smoke_requested()) s = sweep::smoke_clamped(s);
      std::printf("%-12s %-7zu %s\n", name.c_str(), s.size(), s.title.c_str());
    }
    return 0;
  }

  if (a.merge) {
    // Offline mode: no worlds run; per-shard JSONL rows are stitched back
    // into the point-ordered table (byte-identical to a single-process
    // run's outputs, since every row round-trips exactly).
    const std::vector<sweep::SweepRow> rows =
        sweep::merge_shards(a.merge_inputs);
    // merge_shards rejects overlapping shards; missing ones it cannot
    // tell from a filtered run, so cross-check against the spec when
    // named and otherwise at least flag index gaps.
    if (!a.spec.empty()) {
      auto spec = sweep::spec_by_name(a.spec);
      if (!spec) {
        std::fprintf(stderr, "unimem_sweep: unknown spec '%s' (try --list)\n",
                     a.spec.c_str());
        return 1;
      }
      if (a.smoke || sweep::smoke_requested()) *spec = sweep::smoke_clamped(*spec);
      const auto points = spec->expand(a.filter);
      bool complete = rows.size() == points.size();
      for (std::size_t i = 0; complete && i < rows.size(); ++i)
        complete = rows[i].index == points[i].index;
      if (!complete) {
        std::fprintf(stderr,
                     "unimem_sweep: merged rows (%zu) do not cover spec '%s' "
                     "(%zu points) — a shard file is missing or stale\n",
                     rows.size(), a.spec.c_str(), points.size());
        return 1;
      }
    } else if (!rows.empty() &&
               rows.back().index + 1 != rows.size()) {
      std::fprintf(stderr,
                   "unimem_sweep: warning: merged rows leave point indices "
                   "unfilled (fine for a filtered/partial sweep; otherwise a "
                   "shard file is missing — pass --spec to verify coverage)\n");
    }
    sweep::SweepResultStore store;
    if (!a.jsonl.empty()) store.stream_jsonl(a.jsonl);
    if (!a.csv.empty()) store.write_csv_at_finish(a.csv);
    std::size_t failed = 0;
    for (const sweep::SweepRow& r : rows) {
      if (!r.ok) ++failed;
      store.add(r);  // rows arrive point-ordered, so the stream is too
    }
    store.finish();
    if (!a.quiet)
      store
          .report("merged sweep [" + std::to_string(a.merge_inputs.size()) +
                  " shards, " + std::to_string(rows.size()) + " points]")
          .print();
    std::printf("\nmerge: %zu shard files, %zu points, %zu failed\n",
                a.merge_inputs.size(), rows.size(), failed);
    return failed == 0 ? 0 : 2;
  }

  if (a.spec.empty()) {
    usage(stderr);
    return 1;
  }
  auto spec = sweep::spec_by_name(a.spec);
  if (!spec) {
    std::fprintf(stderr, "unimem_sweep: unknown spec '%s' (try --list)\n",
                 a.spec.c_str());
    return 1;
  }
  if (a.smoke || sweep::smoke_requested()) *spec = sweep::smoke_clamped(*spec);
  if (!a.profiler.empty()) {
    // Collapse the profiling-tier axis to the requested value; explicit
    // points keep their own configs (they never carry the prof axis).
    spec->profiler_periods = {
        a.profiler == "exact"
            ? 0
            : static_cast<std::uint64_t>(std::atol(a.profiler.c_str()))};
  }

  auto points = spec->expand(a.filter);
  if (points.empty()) {
    std::fprintf(stderr, "unimem_sweep: no points match filter '%s'\n",
                 a.filter.c_str());
    return 1;
  }
  // Slice after filtering; indices stay those of the full expansion, so a
  // later --merge reassembles the original table.  An empty slice (more
  // shards than points) is a valid degenerate partition member.
  if (a.shard >= 0) points = sweep::shard_slice(points, a.shard, a.nshards);

  if (a.points) {
    std::printf("%-5s %-6s %s\n", "index", "ranks", "label");
    for (const auto& p : points)
      std::printf("%-5zu %-6d %s%s\n", p.index, p.cfg.wcfg.nranks,
                  p.label.c_str(), p.normalize ? "  [normalized]" : "");
    std::printf("%zu points\n", points.size());
    return 0;
  }

  sweep::SweepResultStore store;
  if (!a.jsonl.empty()) store.stream_jsonl(a.jsonl);
  if (!a.csv.empty()) store.write_csv_at_finish(a.csv);

  sweep::EngineOptions eopts;
  eopts.jobs = a.jobs;
  eopts.max_inflight_ranks = a.ranks;
  eopts.on_result = [&](const sweep::SweepRow& row) { store.add(row); };

  sweep::SweepOutcome outcome;
  if (a.fork_shards > 0) {
    // Multi-process topology: fork before any threads exist.  The parent
    // replays merged rows through on_result in point order, so --jsonl
    // streams the same bytes a --jobs 1 run would.
    namespace fs = std::filesystem;
    std::string tmpl =
        (fs::temp_directory_path() / "unimem_sweep.XXXXXX").string();
    if (mkdtemp(tmpl.data()) == nullptr) {
      std::fprintf(stderr, "unimem_sweep: cannot create scratch dir\n");
      return 1;
    }
    sweep::ShardedOptions sopts;
    sopts.shards = a.fork_shards;
    sopts.engine = eopts;
    sopts.scratch_dir = tmpl;
    try {
      outcome = sweep::run_sharded_processes(points, sopts);
    } catch (...) {
      fs::remove_all(tmpl);
      throw;
    }
    fs::remove_all(tmpl);
  } else {
    sweep::SweepEngine engine(eopts);
    outcome = engine.run(points);
  }
  store.finish();

  if (!a.quiet) {
    store.report(spec->title + " [" + a.spec + ", " +
                 std::to_string(points.size()) + " points]")
        .print();
  }
  std::printf(
      "\nsweep %s: %zu points, %zu failed, %.2fs wall, %zu worlds executed "
      "(naive: %zu), %zu/%zu baselines memoized\n",
      a.spec.c_str(), outcome.rows.size(), outcome.failed, outcome.wall_s,
      outcome.worlds_executed, outcome.rows.size() + outcome.baseline_requests,
      outcome.baseline_requests - outcome.baseline_computed,
      outcome.baseline_requests);

  if (!a.summary_json.empty()) {
    std::FILE* f = std::fopen(a.summary_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "unimem_sweep: cannot open %s\n",
                   a.summary_json.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"spec\":\"%s\",\"points\":%zu,\"failed\":%zu,\"jobs\":%d,"
        "\"wall_s\":%.6f,\"worlds_executed\":%zu,\"baseline_requests\":%zu,"
        "\"baseline_computed\":%zu,\"host_cpus\":%u}\n",
        a.spec.c_str(), outcome.rows.size(), outcome.failed, outcome.jobs_used,
        outcome.wall_s, outcome.worlds_executed, outcome.baseline_requests,
        outcome.baseline_computed, std::thread::hardware_concurrency());
    std::fclose(f);
  }
  return outcome.failed == 0 ? 0 : 2;
}
