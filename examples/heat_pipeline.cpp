// A custom application written directly against the Unimem API — the
// integration a domain scientist would do (paper Table 2: < 20 changed
// lines): allocate target objects with unimem_malloc-style calls, run the
// iterative loop, and let the runtime place data on the NVM+DRAM node.
//
// The app is a 2-grid heat relaxation pipeline with a halo exchange: grid
// `t_now` and `t_next` are streamed every step (bandwidth-sensitive), a
// particle list gathers through an index (latency-leaning), and a large
// history buffer is appended to once per step (cold).
#include <cstdio>

#include "core/runtime.h"
#include "minimpi/comm.h"
#include "workloads/kernels.h"

using namespace unimem;

int main() {
  constexpr int kRanks = 2;
  constexpr int kSteps = 12;
  constexpr std::size_t kGrid = 3 * kMiB;     // per grid copy
  constexpr std::size_t kHistory = 24 * kMiB; // chunkable append log

  mpi::World world(kRanks);
  std::vector<double> times(kRanks);

  // One node: both ranks share the DRAM arbiter (user-level service).
  mem::HeteroMemory hms(mem::HmsConfig{
      mem::TierConfig::dram_basis(20 * kMiB),
      mem::TierConfig::nvm_scaled(256 * kMiB, 0.5, 1.0)});
  mem::DramArbiter arbiter(8 * kMiB);

  world.run([&](mpi::Comm& comm) {
    rt::RuntimeOptions opts;
    opts.ranks_per_node = kRanks;
    rt::Runtime rt(opts, &hms, &arbiter, &comm);

    rt::ObjectTraits grid_traits;
    grid_traits.estimated_references = kSteps * 2.0 * (kGrid / 8.0);
    rt::DataObject* t_now = rt.malloc_object("t_now", kGrid, grid_traits);
    rt::DataObject* t_next = rt.malloc_object("t_next", kGrid, grid_traits);
    rt::DataObject* particles = rt.malloc_object("particles", kMiB);
    rt::ObjectTraits hist_traits;
    hist_traits.chunkable = true;  // regular 1-D append log
    rt::DataObject* history = rt.malloc_object("history", kHistory, hist_traits);
    rt::DataObject* halo = rt.malloc_object("halo", 256 * kKiB);

    wl::fill_object(*t_now, 1);
    const std::uint64_t cells = kGrid / 8;

    rt.start();
    double residual = 1.0;
    for (int step = 0; step < kSteps; ++step) {
      rt.iteration_begin();

      // Relaxation sweep: read t_now, write t_next (+ history append).
      rt.compute(wl::WorkBuilder()
                     .flops(6.0 * static_cast<double>(cells))
                     .seq(t_now, 2 * cells)
                     .seq(t_next, cells, 1.0)
                     .seq(history, kHistory / 8 / kSteps, 1.0)
                     .work());
      wl::stencil_touch(t_now->as_span<double>(), 8);

      // Halo exchange with the neighbour rank.
      wl::ring_exchange(comm, *halo, *halo, 64 * kKiB, step % 3);

      // Particle gather pass through the fresh grid.
      rt.compute(wl::WorkBuilder()
                     .flops(static_cast<double>(cells) / 4)
                     .gather(t_next, cells / 4)
                     .seq(particles, kMiB / 8, 0.5)
                     .work());

      residual *= 0.9;
      comm.allreduce(&residual, 1, mpi::ReduceOp::kMax);
      std::swap(t_now, t_next);
    }
    rt.end();
    times[comm.rank()] = rt.now();

    if (comm.rank() == 0) {
      rt::RuntimeStats s = rt.stats();
      std::printf("heat_pipeline: %d steps on %d ranks in %.2f ms (virtual)\n",
                  kSteps, kRanks, s.total_time_s * 1e3);
      std::printf(
          "  plan=%s, %llu migrations (%.1f MB), %.1f%% overlapped, "
          "runtime cost %.2f%%\n",
          s.plan_kind == rt::Plan::Kind::kGlobal ? "global" : "local",
          static_cast<unsigned long long>(s.migration.migrations),
          static_cast<double>(s.migration.bytes_moved) / 1e6,
          s.migration.overlap_percent(), s.overhead_percent());
      std::printf("  history chunks: %zu (chunkable 1-D object)\n",
                  rt.registry().find("history")->chunk_count());
    }
    rt.free_object(t_now);
    rt.free_object(t_next);
    rt.free_object(particles);
    rt.free_object(history);
    rt.free_object(halo);
  });
  return 0;
}
