// Quickstart: run one NPB-style workload on a simulated NVM+DRAM node
// under three policies and print the paper's headline comparison.
//
//   ./quickstart [workload] [class] [ranks]
//
// Demonstrates the whole public surface: configuring the heterogeneous
// memory, picking a policy, and reading back Unimem's runtime statistics.
#include <cstdio>
#include <string>

#include "experiments/report.h"
#include "experiments/runner.h"

int main(int argc, char** argv) {
  using namespace unimem;

  exp::RunConfig cfg;
  cfg.workload = argc > 1 ? argv[1] : "cg";
  cfg.wcfg.cls = argc > 2 ? argv[2][0] : 'A';
  cfg.wcfg.nranks = argc > 3 ? std::atoi(argv[3]) : 4;
  cfg.wcfg.iterations = 10;
  cfg.nvm_bw_ratio = 0.5;  // NVM with 1/2 DRAM bandwidth
  cfg.nvm_lat_mult = 1.0;

  std::printf("workload=%s class=%c ranks=%d  (NVM: 1/2 DRAM bandwidth)\n",
              cfg.workload.c_str(), cfg.wcfg.cls, cfg.wcfg.nranks);

  cfg.policy = exp::Policy::kDramOnly;
  exp::RunResult dram = exp::run_once(cfg);
  cfg.policy = exp::Policy::kNvmOnly;
  exp::RunResult nvm = exp::run_once(cfg);
  cfg.policy = exp::Policy::kUnimem;
  exp::RunResult uni = exp::run_once(cfg);

  exp::Report rep("quickstart: " + cfg.workload);
  rep.set_header({"policy", "time (ms)", "normalized", "checksum"});
  auto row = [&](const char* name, const exp::RunResult& r) {
    rep.add_row({name, exp::Report::num(r.time_s * 1e3),
                 exp::Report::num(dram.time_s > 0 ? r.time_s / dram.time_s : 0,
                                  3),
                 exp::Report::num(r.checksum, 6)});
  };
  row("DRAM-only", dram);
  row("NVM-only", nvm);
  row("Unimem", uni);
  rep.print();

  std::printf(
      "\nUnimem: %llu migrations, %.1f MB moved, %.1f%% overlapped, "
      "runtime overhead %.2f%%, plan=%s\n",
      static_cast<unsigned long long>(uni.total_migrations),
      static_cast<double>(uni.total_bytes_moved) / 1e6,
      uni.mean_overlap_percent, uni.mean_overhead_percent,
      uni.stats.plan_kind == rt::Plan::Kind::kGlobal  ? "global"
      : uni.stats.plan_kind == rt::Plan::Kind::kLocal ? "local"
                                                      : "none");
  bool ok = uni.checksum == dram.checksum && uni.checksum == nvm.checksum;
  std::printf("checksum integrity across policies: %s\n", ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}
