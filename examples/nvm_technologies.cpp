// Runs one workload across the Table 1 NVM technology presets (STT-RAM,
// PCRAM, ReRAM midpoints expressed as ratios of the DRAM basis) and shows
// how Unimem narrows each gap — the "which NVM could we actually adopt?"
// question the paper's introduction poses.
#include <cstdio>

#include "experiments/report.h"
#include "experiments/runner.h"
#include "simmem/tier_config.h"

using namespace unimem;

int main(int argc, char** argv) {
  const char* wl = argc > 1 ? argv[1] : "lu";

  // Express each technology's midpoint as (bandwidth ratio, latency
  // multiple) of the DRAM basis from its Table 1 row.
  std::size_t n = 0;
  const mem::NvmTechnology* tech = mem::table1_technologies(&n);
  const mem::NvmTechnology& dram_row = tech[0];

  exp::Report rep(std::string("NVM technologies on ") + wl +
                  " (normalized to DRAM-only)");
  rep.set_header({"technology", "BW ratio", "lat mult", "NVM-only", "Unimem"});
  for (std::size_t i = 1; i < n; ++i) {
    double bw_ratio = 0.5 * (tech[i].rand_read_mbps_lo + tech[i].rand_read_mbps_hi) /
                      dram_row.rand_read_mbps_lo;
    double lat_mult = 0.5 * (tech[i].read_ns_lo + tech[i].read_ns_hi) /
                      dram_row.read_ns_lo;
    bw_ratio = std::min(1.0, bw_ratio);
    lat_mult = std::max(1.0, lat_mult);

    exp::RunConfig cfg;
    cfg.workload = wl;
    cfg.wcfg.cls = 'C';
    cfg.wcfg.nranks = 4;
    cfg.wcfg.iterations = 10;
    cfg.nvm_bw_ratio = bw_ratio;
    cfg.nvm_lat_mult = lat_mult;
    cfg.policy = exp::Policy::kDramOnly;
    double dram = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kNvmOnly;
    double nvm = exp::run_once(cfg).time_s;
    cfg.policy = exp::Policy::kUnimem;
    double uni = exp::run_once(cfg).time_s;

    rep.add_row({tech[i].name, exp::Report::num(bw_ratio, 2),
                 exp::Report::num(lat_mult, 1), exp::Report::num(nvm / dram, 2),
                 exp::Report::num(uni / dram, 2)});
  }
  rep.print();
  std::printf(
      "\nReading: Unimem close to 1.0 means the technology is viable as the\n"
      "bulk of main memory with a small DRAM cushion (the paper's thesis).\n");
  return 0;
}
