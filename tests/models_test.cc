// Tests for the performance models (Eq. 1-4), sensitivity classification
// thresholds, and the STREAM / pointer-chase calibration.
#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/models.h"
#include "simcache/analytic_cache.h"
#include "simcache/exact_cache.h"

namespace unimem::rt {
namespace {

mem::HmsConfig half_bw() { return mem::HmsConfig::scaled(0.5, 1.0); }
mem::HmsConfig lat4x() { return mem::HmsConfig::scaled(1.0, 4.0); }

ModelParams params_for(const mem::HmsConfig& hms) {
  ModelParams p;
  p.bw_peak = hms.nvm.read_bw;
  p.cf_bw = 1.0;
  p.cf_lat = 1.0;
  return p;
}

TEST(Models, Eq1ConsumedBandwidth) {
  mem::HmsConfig hms = half_bw();
  PerformanceModel m(params_for(hms), hms.dram, hms.nvm);
  // 1e6 accesses over 10 ms of active time = 6.4 GB/s.
  UnitPhaseProfile u{1000000, 1.0, 0.01};
  EXPECT_NEAR(m.consumed_bandwidth(u), 6.4e9, 1e6);
  // Half the phase active -> double the rate during activity.
  u.time_fraction = 0.5;
  EXPECT_NEAR(m.consumed_bandwidth(u), 12.8e9, 1e6);
}

TEST(Models, ClassificationThresholds) {
  mem::HmsConfig hms = half_bw();  // peak = 6.4 GB/s
  PerformanceModel m(params_for(hms), hms.dram, hms.nvm);
  double t = 0.01;
  // Saturating stream: >= 80% of peak -> bandwidth sensitive.
  UnitPhaseProfile stream{
      static_cast<std::uint64_t>(0.9 * 6.4e9 * t / 64), 1.0, t};
  EXPECT_EQ(m.classify(stream), Sensitivity::kBandwidth);
  // Dependent chain at NVM latency under the 4x-latency configuration:
  // 64 B per 320 ns ~ 0.2 GB/s, way below 10% of peak -> latency.
  mem::HmsConfig hl = lat4x();
  PerformanceModel ml(params_for(hl), hl.dram, hl.nvm);
  UnitPhaseProfile chase{static_cast<std::uint64_t>(t / 320e-9), 1.0, t};
  EXPECT_EQ(ml.classify(chase), Sensitivity::kLatency);
  // Mid-band: "either".
  UnitPhaseProfile mid{
      static_cast<std::uint64_t>(0.4 * 6.4e9 * t / 64), 1.0, t};
  EXPECT_EQ(m.classify(mid), Sensitivity::kEither);
}

TEST(Models, Eq2BandwidthBenefit) {
  mem::HmsConfig hms = half_bw();
  PerformanceModel m(params_for(hms), hms.dram, hms.nvm);
  UnitPhaseProfile u{1000000, 1.0, 0.01};
  double bytes = 1000000.0 * 64;
  double expect = bytes / hms.nvm.read_bw - bytes / hms.dram.read_bw;
  EXPECT_NEAR(m.benefit_bandwidth(u), expect, 1e-9);
  EXPECT_GT(expect, 0);
}

TEST(Models, Eq3LatencyBenefit) {
  mem::HmsConfig hms = lat4x();
  PerformanceModel m(params_for(hms), hms.dram, hms.nvm);
  UnitPhaseProfile u{100000, 1.0, 0.01};
  double expect =
      100000.0 * (hms.nvm.read_latency_s - hms.dram.read_latency_s);
  EXPECT_NEAR(m.benefit_latency(u), expect, 1e-12);
}

TEST(Models, LatencyBenefitZeroWhenLatenciesEqual) {
  // At the 1/2-bandwidth configuration latency is unchanged, so a purely
  // latency-sensitive object gains nothing from DRAM (paper Fig. 4: lhs is
  // insensitive to the bandwidth configuration).
  mem::HmsConfig hms = half_bw();
  PerformanceModel m(params_for(hms), hms.dram, hms.nvm);
  UnitPhaseProfile u{100000, 1.0, 0.01};
  EXPECT_DOUBLE_EQ(m.benefit_latency(u), 0.0);
}

TEST(Models, ConstantFactorsScaleBenefits) {
  mem::HmsConfig hms = half_bw();
  ModelParams p = params_for(hms);
  p.cf_bw = 2.0;
  PerformanceModel m2(p, hms.dram, hms.nvm);
  p.cf_bw = 1.0;
  PerformanceModel m1(p, hms.dram, hms.nvm);
  UnitPhaseProfile u{1000000, 1.0, 0.01};
  EXPECT_NEAR(m2.benefit_bandwidth(u), 2.0 * m1.benefit_bandwidth(u), 1e-12);
}

TEST(Models, Eq4MigrationCostWithOverlap) {
  mem::HmsConfig hms = half_bw();
  PerformanceModel m(params_for(hms), hms.dram, hms.nvm);
  // 6.4 MB at 6.4 GB/s = 1 ms raw.
  EXPECT_NEAR(m.migration_cost(6400000, 6.4e9, 0.0), 1e-3, 1e-9);
  EXPECT_NEAR(m.migration_cost(6400000, 6.4e9, 0.4e-3), 0.6e-3, 1e-9);
  // Fully overlapped -> zero, never negative.
  EXPECT_DOUBLE_EQ(m.migration_cost(6400000, 6.4e9, 5e-3), 0.0);
}

TEST(Models, EitherBandTakesMaxOfBenefits) {
  mem::HmsConfig hms = half_bw();
  PerformanceModel m(params_for(hms), hms.dram, hms.nvm);
  double t = 0.01;
  UnitPhaseProfile mid{
      static_cast<std::uint64_t>(0.4 * 6.4e9 * t / 64), 1.0, t};
  ASSERT_EQ(m.classify(mid), Sensitivity::kEither);
  EXPECT_NEAR(m.benefit(mid),
              std::max(m.benefit_bandwidth(mid), m.benefit_latency(mid)),
              1e-12);
}

// ---------------------------------------------------------------------------
// Calibration

class Calibration : public ::testing::TestWithParam<bool> {};

TEST_P(Calibration, RecoversPlatformParameters) {
  mem::HmsConfig hms = half_bw();
  clk::TimingParams timing;
  std::unique_ptr<cache::CacheModel> cm;
  if (GetParam())
    cm = std::make_unique<cache::ExactCache>();
  else
    cm = std::make_unique<cache::AnalyticCache>();
  ModelParams p = calibrate(hms, *cm, timing);
  // BW_peak measured via Eq. 1 on a saturating NVM stream ~ NVM read bw.
  EXPECT_NEAR(p.bw_peak, hms.nvm.read_bw, 0.15 * hms.nvm.read_bw);
  // The constant factors correct modest model error; they must be sane.
  EXPECT_GT(p.cf_bw, 0.3);
  EXPECT_LT(p.cf_bw, 3.0);
  EXPECT_GT(p.cf_lat, 0.3);
  EXPECT_LT(p.cf_lat, 3.0);
  EXPECT_DOUBLE_EQ(p.t1_percent, 80.0);
  EXPECT_DOUBLE_EQ(p.t2_percent, 10.0);
}

INSTANTIATE_TEST_SUITE_P(Caches, Calibration, ::testing::Bool());

TEST(CalibrationLatencyAxis, PeakTracksNvmConfig) {
  clk::TimingParams timing;
  cache::AnalyticCache cm;
  ModelParams p_bw = calibrate(mem::HmsConfig::scaled(0.25, 1.0), cm, timing);
  ModelParams p_lat = calibrate(mem::HmsConfig::scaled(1.0, 4.0), cm, timing);
  EXPECT_LT(p_bw.bw_peak, p_lat.bw_peak);  // 1/4 bw NVM has lower peak
}

}  // namespace
}  // namespace unimem::rt
