// Tests for the helper-thread migration engine: FIFO processing, virtual
// completion times, overlap accounting (Table 4's %overlap), and failure
// handling.
#include <gtest/gtest.h>

#include "core/migration.h"
#include "core/registry.h"

namespace unimem::rt {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : hms_(mem::HmsConfig::scaled(0.5, 1.0, 8 * kMiB, 64 * kMiB)),
        reg_(&hms_, nullptr),
        eng_(&reg_) {}

  mem::HeteroMemory hms_;
  Registry reg_;
  MigrationEngine eng_;
};

TEST_F(MigrationTest, MovesDataAndRepointsHandle) {
  DataObject* o = reg_.create("x", kMiB, {}, mem::Tier::kNvm);
  o->as_span<double>()[5] = 42.0;
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kDram, 0.0);
  double done = eng_.wait_for(UnitRef{o->id(), 0});
  EXPECT_GT(done, 0.0);
  EXPECT_EQ(o->chunk(0).current_tier(), mem::Tier::kDram);
  EXPECT_EQ(o->as_span<double>()[5], 42.0);
  MigrationStats s = eng_.stats();
  EXPECT_EQ(s.migrations, 1u);
  EXPECT_EQ(s.bytes_moved, kMiB);
}

TEST_F(MigrationTest, CompletionTimeMatchesCopyModel) {
  DataObject* o = reg_.create("x", kMiB, {}, mem::Tier::kNvm);
  const double enqueue_vt = 1.0;
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kDram, enqueue_vt);
  double done = eng_.wait_for(UnitRef{o->id(), 0});
  double expect =
      enqueue_vt + hms_.copy_seconds(o->chunk(0).bytes, mem::Tier::kNvm,
                                     mem::Tier::kDram);
  EXPECT_NEAR(done, expect, 1e-12);
}

TEST_F(MigrationTest, FifoSerializesRequests) {
  DataObject* a = reg_.create("a", kMiB, {}, mem::Tier::kNvm);
  DataObject* b = reg_.create("b", kMiB, {}, mem::Tier::kNvm);
  eng_.enqueue(UnitRef{a->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.enqueue(UnitRef{b->id(), 0}, mem::Tier::kDram, 0.0);
  double da = eng_.wait_for(UnitRef{a->id(), 0});
  double db = eng_.wait_for(UnitRef{b->id(), 0});
  // b cannot start before a finished: db >= 2x single copy.
  double one = hms_.copy_seconds(kMiB, mem::Tier::kNvm, mem::Tier::kDram);
  EXPECT_NEAR(da, one, 1e-12);
  EXPECT_NEAR(db, 2 * one, 1e-12);
}

TEST_F(MigrationTest, WaitForIdleUnitReturnsZero) {
  DataObject* o = reg_.create("x", kMiB, {}, mem::Tier::kNvm);
  EXPECT_DOUBLE_EQ(eng_.wait_for(UnitRef{o->id(), 0}), 0.0);
}

TEST_F(MigrationTest, NoOpWhenAlreadyInTargetTier) {
  DataObject* o = reg_.create("x", kMiB, {}, mem::Tier::kNvm);
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kNvm, 0.0);
  eng_.drain();
  MigrationStats s = eng_.stats();
  EXPECT_EQ(s.migrations, 0u);
  EXPECT_EQ(s.bytes_moved, 0u);
}

TEST_F(MigrationTest, FailedMoveIsCountedAndHarmless) {
  // DRAM tier is 8 MiB; a 12 MiB object cannot fit.
  DataObject* o = reg_.create("big", 12 * kMiB, {}, mem::Tier::kNvm);
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.drain();
  EXPECT_EQ(o->chunk(0).current_tier(), mem::Tier::kNvm);
  MigrationStats s = eng_.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.migrations, 0u);
}

TEST_F(MigrationTest, OverlapPercentAccounting) {
  DataObject* o = reg_.create("x", kMiB, {}, mem::Tier::kNvm);
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.drain();
  // Suppose 1/4 of the copy time was exposed to the application.
  MigrationStats before = eng_.stats();
  eng_.add_exposed_wait(before.copy_time_s / 4);
  MigrationStats s = eng_.stats();
  EXPECT_NEAR(s.overlap_percent(), 75.0, 0.01);
}

TEST_F(MigrationTest, FullyOverlappedWhenNothingExposed) {
  DataObject* o = reg_.create("x", kMiB, {}, mem::Tier::kNvm);
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.drain();
  EXPECT_DOUBLE_EQ(eng_.stats().overlap_percent(), 100.0);
}

TEST_F(MigrationTest, RoundTripPreservesPayload) {
  DataObject* o = reg_.create("rt", 2 * kMiB, {}, mem::Tier::kNvm);
  auto s = o->as_span<double>();
  for (std::size_t i = 0; i < s.size(); i += 7) s[i] = 1.0 / (1.0 + i);
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kNvm, 0.0);
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.drain();
  EXPECT_EQ(o->chunk(0).current_tier(), mem::Tier::kDram);
  auto s2 = o->as_span<double>();
  for (std::size_t i = 0; i < s2.size(); i += 7)
    ASSERT_EQ(s2[i], 1.0 / (1.0 + i));
  EXPECT_EQ(eng_.stats().migrations, 3u);
}

TEST_F(MigrationTest, BatchFillBeforeEvictionSelfCorrects) {
  // DRAM holds 8 MiB.  With "a" (6 MiB) resident, the batch lists the
  // 4 MiB fill of "b" BEFORE the eviction of "a" — the wrap ordering.
  // The fill must defer, the eviction must free the space, and the retry
  // wave must land the fill: no failed move anywhere.
  DataObject* a = reg_.create("a", 6 * kMiB, {}, mem::Tier::kNvm);
  DataObject* b = reg_.create("b", 4 * kMiB, {}, mem::Tier::kNvm);
  eng_.enqueue(UnitRef{a->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.enqueue_batch({
      MigrationEngine::Item{UnitRef{b->id(), 0}, mem::Tier::kDram, 1.0},
      MigrationEngine::Item{UnitRef{a->id(), 0}, mem::Tier::kNvm, 1.0},
  });
  eng_.drain();
  EXPECT_EQ(a->chunk(0).current_tier(), mem::Tier::kNvm);
  EXPECT_EQ(b->chunk(0).current_tier(), mem::Tier::kDram);
  MigrationStats s = eng_.stats();
  EXPECT_EQ(s.migrations, 3u);
  EXPECT_EQ(s.failed, 0u);
}

TEST_F(MigrationTest, DeferredFillRetriesInALaterBatch) {
  // The cross-iteration wrap: the fill's batch carries no eviction at
  // all; the eviction arrives only in the NEXT batch.  The deferred fill
  // must ride along behind it instead of failing terminally.
  DataObject* a = reg_.create("a", 6 * kMiB, {}, mem::Tier::kNvm);
  DataObject* b = reg_.create("b", 4 * kMiB, {}, mem::Tier::kNvm);
  eng_.enqueue(UnitRef{a->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.enqueue(UnitRef{b->id(), 0}, mem::Tier::kDram, 1.0);  // defers
  eng_.enqueue(UnitRef{a->id(), 0}, mem::Tier::kNvm, 2.0);   // frees, retries
  eng_.drain();
  EXPECT_EQ(b->chunk(0).current_tier(), mem::Tier::kDram);
  EXPECT_EQ(eng_.stats().failed, 0u);
  EXPECT_EQ(eng_.stats().migrations, 3u);
}

TEST_F(MigrationTest, DecisionsAreSynchronousWithEnqueue) {
  // The determinism contract: tier state and completion time are decided
  // by enqueue order alone.  Immediately after enqueue returns — no
  // drain, no wait — the logical location has already changed and the
  // payload is intact behind the physical-copy fence (wait_for).
  DataObject* o = reg_.create("x", kMiB, {}, mem::Tier::kNvm);
  o->as_span<double>()[7] = 3.5;
  eng_.enqueue(UnitRef{o->id(), 0}, mem::Tier::kDram, 0.0);
  EXPECT_EQ(o->chunk(0).current_tier(), mem::Tier::kDram);
  eng_.wait_for(UnitRef{o->id(), 0});
  EXPECT_EQ(o->as_span<double>()[7], 3.5);
}

TEST_F(MigrationTest, DrainReturnsLastCompletion) {
  DataObject* a = reg_.create("a", kMiB, {}, mem::Tier::kNvm);
  DataObject* b = reg_.create("b", 2 * kMiB, {}, mem::Tier::kNvm);
  eng_.enqueue(UnitRef{a->id(), 0}, mem::Tier::kDram, 0.0);
  eng_.enqueue(UnitRef{b->id(), 0}, mem::Tier::kDram, 0.0);
  double last = eng_.drain();
  double expect = hms_.copy_seconds(kMiB, mem::Tier::kNvm, mem::Tier::kDram) +
                  hms_.copy_seconds(2 * kMiB, mem::Tier::kNvm,
                                    mem::Tier::kDram);
  EXPECT_NEAR(last, expect, 1e-12);
}

}  // namespace
}  // namespace unimem::rt
