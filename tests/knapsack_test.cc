// Tests for the 0-1 knapsack solver: exactness against brute force on
// random instances (property test) and the behavioural edge cases the
// planner relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/knapsack.h"

namespace unimem::rt {
namespace {

double brute_force_best(const std::vector<KnapsackItem>& items,
                        std::size_t capacity) {
  const std::size_t n = items.size();
  double best = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    double w = 0;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::size_t{1} << i)) {
        w += items[i].weight;
        bytes += items[i].bytes;
      }
    if (bytes <= capacity && w > best) best = w;
  }
  return best;
}

TEST(Knapsack, EmptyInstance) {
  KnapsackSolver s;
  KnapsackResult r = s.solve({}, 1 << 20);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0);
}

TEST(Knapsack, ZeroCapacity) {
  KnapsackSolver s;
  KnapsackResult r = s.solve({{1.0, 100}}, 0);
  EXPECT_TRUE(r.selected.empty());
}

TEST(Knapsack, NegativeWeightNeverSelected) {
  KnapsackSolver s(1024);
  KnapsackResult r = s.solve({{-1.0, 1024}, {2.0, 1024}, {0.0, 1024}},
                             std::size_t{1} << 20);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
}

TEST(Knapsack, OversizedItemSkipped) {
  KnapsackSolver s(1024);
  KnapsackResult r = s.solve({{100.0, 1 << 20}, {1.0, 1024}}, 2048);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
}

TEST(Knapsack, PicksValueOverDensityWhenOptimal) {
  // Greedy-by-density takes the densest item and wastes capacity; the DP
  // must take the two smaller ones (classic greedy-failure case).
  KnapsackSolver s(1);
  std::vector<KnapsackItem> items = {{10.0, 6}, {6.0, 4}, {6.0, 4}};
  KnapsackResult dp = s.solve(items, 8);
  EXPECT_DOUBLE_EQ(dp.total_weight, 12.0);
  KnapsackResult greedy = s.solve_greedy(items, 8);
  EXPECT_DOUBLE_EQ(greedy.total_weight, 10.0);  // density trap
}

TEST(Knapsack, RespectsCapacityExactly) {
  KnapsackSolver s(1);
  KnapsackResult r = s.solve({{1.0, 3}, {1.0, 3}, {1.0, 3}}, 6);
  EXPECT_EQ(r.selected.size(), 2u);
  EXPECT_LE(r.total_bytes, 6u);
}

TEST(Knapsack, GranuleRoundsSizesUp) {
  // With a 1 KiB granule, a 1025-byte item occupies 2 granules: three such
  // items cannot fit a 4 KiB capacity even though raw bytes would fit.
  KnapsackSolver s(1024);
  KnapsackResult r =
      s.solve({{1.0, 1025}, {1.0, 1025}, {1.0, 1025}}, 4 * 1024);
  EXPECT_EQ(r.selected.size(), 2u);
}

class KnapsackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const int n = 3 + static_cast<int>(rng.below(10));  // <= 12 items
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i)
      items.push_back(KnapsackItem{rng.uniform(-0.2, 1.0),
                                   64 * (1 + rng.below(64))});
    std::size_t capacity = 64 * (1 + rng.below(256));
    KnapsackSolver s(64);
    KnapsackResult r = s.solve(items, capacity);
    // Selection must be feasible.
    std::size_t bytes = 0;
    double w = 0;
    for (std::size_t idx : r.selected) {
      bytes += items[idx].bytes;
      w += items[idx].weight;
    }
    EXPECT_LE(bytes, capacity);
    EXPECT_NEAR(w, r.total_weight, 1e-9);
    // And optimal (granule = min item granularity = 64 here, so exact).
    EXPECT_NEAR(r.total_weight, brute_force_best(items, capacity), 1e-9);
    // Greedy is never better than the DP.
    KnapsackResult g = s.solve_greedy(items, capacity);
    EXPECT_LE(g.total_weight, r.total_weight + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Knapsack, AllCandidatesFitFastPath) {
  // Total positive-weight granules below capacity: everything useful is
  // selected without running a DP, non-positive items still excluded.
  KnapsackSolver s(1024);
  std::vector<KnapsackItem> items = {
      {1.0, 1000}, {-1.0, 1000}, {0.5, 3000}, {0.0, 500}};
  KnapsackResult r = s.solve(items, 1 << 20);
  ASSERT_EQ(r.selected, (std::vector<std::size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(r.total_weight, 1.5);
  EXPECT_EQ(r.total_bytes, 4000u);
}

// Property (larger instances): the DP stays optimal up to 20 items, the
// regime the planner sees per phase on most workloads.
class KnapsackProperty20 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackProperty20, MatchesBruteForceUpTo20Items) {
  Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    const int n = 13 + static_cast<int>(rng.below(8));  // 13..20 items
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i)
      items.push_back(KnapsackItem{rng.uniform(-0.2, 1.0),
                                   64 * (1 + rng.below(64))});
    std::size_t capacity = 64 * (1 + rng.below(512));
    KnapsackSolver s(64);
    KnapsackResult r = s.solve(items, capacity);
    std::size_t bytes = 0;
    double w = 0;
    for (std::size_t idx : r.selected) {
      bytes += items[idx].bytes;
      w += items[idx].weight;
    }
    EXPECT_LE(bytes, capacity);
    EXPECT_NEAR(w, r.total_weight, 1e-9);
    EXPECT_NEAR(r.total_weight, brute_force_best(items, capacity), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty20,
                         ::testing::Values(101, 202, 303));

TEST(Knapsack, QuantizationNeverOvercommits) {
  // With a coarse granule and sizes that are not granule multiples, the
  // selection's rounded-up granules must fit the quantized capacity — the
  // solver may under-use DRAM but can never over-commit it.
  const std::size_t granule = 4096;
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const int n = 2 + static_cast<int>(rng.below(14));
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i)
      items.push_back(KnapsackItem{rng.uniform(-0.2, 1.0),
                                   1 + rng.below(10 * granule)});
    const std::size_t capacity = 1 + rng.below(n * 4 * granule);
    KnapsackSolver s(granule);
    KnapsackResult r = s.solve(items, capacity);
    std::size_t quantized = 0;
    for (std::size_t idx : r.selected)
      quantized += (items[idx].bytes + granule - 1) / granule;
    EXPECT_LE(quantized, capacity / granule)
        << "round " << round << ": quantized selection over-commits";
  }
}

TEST(Knapsack, HugeInstanceStaysFeasibleAndUseful) {
  // Item-count x capacity far past the dense-DP budget: the solver must
  // switch to the bounded-approximation path — still feasible, still at
  // least as good as the best single item, and fast enough to run here.
  Rng rng(5);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 64; ++i)
    items.push_back(
        KnapsackItem{rng.uniform(0.0, 1.0), 50000 + rng.below(2000000)});
  const std::size_t capacity = 1 << 20;  // granule 1: ~64 x 2^20 DP cells
  KnapsackSolver s(1);
  KnapsackResult r = s.solve(items, capacity);
  ASSERT_FALSE(r.selected.empty());
  std::size_t bytes = 0;
  for (std::size_t idx : r.selected) bytes += items[idx].bytes;
  EXPECT_LE(bytes, capacity);
  EXPECT_EQ(bytes, r.total_bytes);
  double best_single = 0;
  for (const KnapsackItem& it : items)
    if (it.bytes <= capacity) best_single = std::max(best_single, it.weight);
  EXPECT_GE(r.total_weight, best_single - 1e-12);
}

}  // namespace
}  // namespace unimem::rt
