// Tests for the 0-1 knapsack solver: exactness against brute force on
// random instances (property test) and the behavioural edge cases the
// planner relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/knapsack.h"

namespace unimem::rt {
namespace {

double brute_force_best(const std::vector<KnapsackItem>& items,
                        std::size_t capacity) {
  const std::size_t n = items.size();
  double best = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    double w = 0;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::size_t{1} << i)) {
        w += items[i].weight;
        bytes += items[i].bytes;
      }
    if (bytes <= capacity && w > best) best = w;
  }
  return best;
}

TEST(Knapsack, EmptyInstance) {
  KnapsackSolver s;
  KnapsackResult r = s.solve({}, 1 << 20);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0);
}

TEST(Knapsack, ZeroCapacity) {
  KnapsackSolver s;
  KnapsackResult r = s.solve({{1.0, 100}}, 0);
  EXPECT_TRUE(r.selected.empty());
}

TEST(Knapsack, NegativeWeightNeverSelected) {
  KnapsackSolver s(1024);
  KnapsackResult r = s.solve({{-1.0, 1024}, {2.0, 1024}, {0.0, 1024}},
                             std::size_t{1} << 20);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
}

TEST(Knapsack, OversizedItemSkipped) {
  KnapsackSolver s(1024);
  KnapsackResult r = s.solve({{100.0, 1 << 20}, {1.0, 1024}}, 2048);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
}

TEST(Knapsack, PicksValueOverDensityWhenOptimal) {
  // Greedy-by-density takes the densest item and wastes capacity; the DP
  // must take the two smaller ones (classic greedy-failure case).
  KnapsackSolver s(1);
  std::vector<KnapsackItem> items = {{10.0, 6}, {6.0, 4}, {6.0, 4}};
  KnapsackResult dp = s.solve(items, 8);
  EXPECT_DOUBLE_EQ(dp.total_weight, 12.0);
  KnapsackResult greedy = s.solve_greedy(items, 8);
  EXPECT_DOUBLE_EQ(greedy.total_weight, 10.0);  // density trap
}

TEST(Knapsack, RespectsCapacityExactly) {
  KnapsackSolver s(1);
  KnapsackResult r = s.solve({{1.0, 3}, {1.0, 3}, {1.0, 3}}, 6);
  EXPECT_EQ(r.selected.size(), 2u);
  EXPECT_LE(r.total_bytes, 6u);
}

TEST(Knapsack, GranuleRoundsSizesUp) {
  // With a 1 KiB granule, a 1025-byte item occupies 2 granules: three such
  // items cannot fit a 4 KiB capacity even though raw bytes would fit.
  KnapsackSolver s(1024);
  KnapsackResult r =
      s.solve({{1.0, 1025}, {1.0, 1025}, {1.0, 1025}}, 4 * 1024);
  EXPECT_EQ(r.selected.size(), 2u);
}

class KnapsackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const int n = 3 + static_cast<int>(rng.below(10));  // <= 12 items
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i)
      items.push_back(KnapsackItem{rng.uniform(-0.2, 1.0),
                                   64 * (1 + rng.below(64))});
    std::size_t capacity = 64 * (1 + rng.below(256));
    KnapsackSolver s(64);
    KnapsackResult r = s.solve(items, capacity);
    // Selection must be feasible.
    std::size_t bytes = 0;
    double w = 0;
    for (std::size_t idx : r.selected) {
      bytes += items[idx].bytes;
      w += items[idx].weight;
    }
    EXPECT_LE(bytes, capacity);
    EXPECT_NEAR(w, r.total_weight, 1e-9);
    // And optimal (granule = min item granularity = 64 here, so exact).
    EXPECT_NEAR(r.total_weight, brute_force_best(items, capacity), 1e-9);
    // Greedy is never better than the DP.
    KnapsackResult g = s.solve_greedy(items, capacity);
    EXPECT_LE(g.total_weight, r.total_weight + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Knapsack, AllCandidatesFitFastPath) {
  // Total positive-weight granules below capacity: everything useful is
  // selected without running a DP, non-positive items still excluded.
  KnapsackSolver s(1024);
  std::vector<KnapsackItem> items = {
      {1.0, 1000}, {-1.0, 1000}, {0.5, 3000}, {0.0, 500}};
  KnapsackResult r = s.solve(items, 1 << 20);
  ASSERT_EQ(r.selected, (std::vector<std::size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(r.total_weight, 1.5);
  EXPECT_EQ(r.total_bytes, 4000u);
}

// Property (larger instances): the DP stays optimal up to 20 items, the
// regime the planner sees per phase on most workloads.
class KnapsackProperty20 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackProperty20, MatchesBruteForceUpTo20Items) {
  Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    const int n = 13 + static_cast<int>(rng.below(8));  // 13..20 items
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i)
      items.push_back(KnapsackItem{rng.uniform(-0.2, 1.0),
                                   64 * (1 + rng.below(64))});
    std::size_t capacity = 64 * (1 + rng.below(512));
    KnapsackSolver s(64);
    KnapsackResult r = s.solve(items, capacity);
    std::size_t bytes = 0;
    double w = 0;
    for (std::size_t idx : r.selected) {
      bytes += items[idx].bytes;
      w += items[idx].weight;
    }
    EXPECT_LE(bytes, capacity);
    EXPECT_NEAR(w, r.total_weight, 1e-9);
    EXPECT_NEAR(r.total_weight, brute_force_best(items, capacity), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty20,
                         ::testing::Values(101, 202, 303));

TEST(Knapsack, QuantizationNeverOvercommits) {
  // With a coarse granule and sizes that are not granule multiples, the
  // selection's rounded-up granules must fit the quantized capacity — the
  // solver may under-use DRAM but can never over-commit it.
  const std::size_t granule = 4096;
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const int n = 2 + static_cast<int>(rng.below(14));
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i)
      items.push_back(KnapsackItem{rng.uniform(-0.2, 1.0),
                                   1 + rng.below(10 * granule)});
    const std::size_t capacity = 1 + rng.below(n * 4 * granule);
    KnapsackSolver s(granule);
    KnapsackResult r = s.solve(items, capacity);
    std::size_t quantized = 0;
    for (std::size_t idx : r.selected)
      quantized += (items[idx].bytes + granule - 1) / granule;
    EXPECT_LE(quantized, capacity / granule)
        << "round " << round << ": quantized selection over-commits";
  }
}

TEST(Knapsack, HugeInstanceStaysFeasibleAndUseful) {
  // Item-count x capacity far past the dense-DP budget: the solver must
  // switch to the bounded-approximation path — still feasible, still at
  // least as good as the best single item, and fast enough to run here.
  Rng rng(5);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 64; ++i)
    items.push_back(
        KnapsackItem{rng.uniform(0.0, 1.0), 50000 + rng.below(2000000)});
  const std::size_t capacity = 1 << 20;  // granule 1: ~64 x 2^20 DP cells
  KnapsackSolver s(1);
  KnapsackResult r = s.solve(items, capacity);
  ASSERT_FALSE(r.selected.empty());
  std::size_t bytes = 0;
  for (std::size_t idx : r.selected) bytes += items[idx].bytes;
  EXPECT_LE(bytes, capacity);
  EXPECT_EQ(bytes, r.total_bytes);
  double best_single = 0;
  for (const KnapsackItem& it : items)
    if (it.bytes <= capacity) best_single = std::max(best_single, it.weight);
  EXPECT_GE(r.total_weight, best_single - 1e-12);
}

// ---- multiple-choice knapsack (N-tier placement) ------------------------

/// Exhaustive MCKP optimum: every item takes exactly one tier, every
/// constrained tier's byte sum respects its capacity.  Assumes sizes and
/// capacities are granule-aligned so the solver's quantization is exact.
double mckp_brute_force(const std::vector<MckpItem>& items,
                        const std::vector<std::size_t>& caps) {
  const std::size_t T = caps.size();
  const std::size_t n = items.size();
  double best = -1e300;
  std::vector<std::size_t> assign(n, 0);
  while (true) {
    double w = 0;
    std::vector<std::size_t> used(T, 0);
    for (std::size_t i = 0; i < n; ++i) {
      w += items[i].weights[assign[i]];
      used[assign[i]] += items[i].bytes;
    }
    bool ok = true;
    for (std::size_t j = 0; j < T; ++j)
      if (caps[j] != KnapsackSolver::kUnbounded && used[j] > caps[j])
        ok = false;
    if (ok && w > best) best = w;
    std::size_t k = 0;
    while (k < n && ++assign[k] == T) {
      assign[k] = 0;
      ++k;
    }
    if (k == n) break;
  }
  return best;
}

TEST(Mckp, ValidatesItemArity) {
  KnapsackSolver s(64);
  std::vector<MckpItem> items = {{{1.0, 0.5}, 64}, {{1.0}, 64}};
  EXPECT_THROW(s.solve_mckp(items, {64, KnapsackSolver::kUnbounded}),
               std::invalid_argument);
}

TEST(Mckp, RequiresAnUnboundedTier) {
  KnapsackSolver s(64);
  std::vector<MckpItem> items = {{{1.0, 0.5}, 64}};
  EXPECT_THROW(s.solve_mckp(items, {64, 128}), std::invalid_argument);
  EXPECT_THROW(s.solve_mckp({}, {}), std::invalid_argument);
}

TEST(Mckp, EmptyItems) {
  KnapsackSolver s(64);
  MckpResult r = s.solve_mckp({}, {64, KnapsackSolver::kUnbounded});
  EXPECT_TRUE(r.choice.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0);
}

TEST(Mckp, AllTiersUnboundedPicksBestPerItem) {
  KnapsackSolver s(64);
  std::vector<MckpItem> items = {
      {{1.0, 2.0, 0.5}, 64}, {{3.0, -1.0, 3.0}, 128}, {{-2.0, -1.0, -3.0}, 64}};
  MckpResult r = s.solve_mckp(
      items, {KnapsackSolver::kUnbounded, KnapsackSolver::kUnbounded,
              KnapsackSolver::kUnbounded});
  // Ties (item 1: tiers 0 and 2 both 3.0) resolve to the lowest index.
  EXPECT_EQ(r.choice, (std::vector<int>{1, 0, 1}));
  EXPECT_DOUBLE_EQ(r.total_weight, 2.0 + 3.0 + -1.0);
}

TEST(Mckp, TwoTierMatchesClassicKnapsack) {
  // weights = {benefit, 0} over {DRAM cap, unbounded NVM} is exactly the
  // paper's 0-1 knapsack; totals must agree with solve() on the same
  // instance.
  Rng rng(17);
  for (int round = 0; round < 20; ++round) {
    const int n = 3 + static_cast<int>(rng.below(8));
    std::vector<KnapsackItem> classic;
    std::vector<MckpItem> items;
    for (int i = 0; i < n; ++i) {
      const double w = rng.uniform(-0.2, 1.0);
      const std::size_t bytes = 64 * (1 + rng.below(16));
      classic.push_back(KnapsackItem{w, bytes});
      items.push_back(MckpItem{{w, 0.0}, bytes});
    }
    const std::size_t cap = 64 * (1 + rng.below(64));
    KnapsackSolver s(64);
    MckpResult m = s.solve_mckp(items, {cap, KnapsackSolver::kUnbounded});
    KnapsackResult k = s.solve(classic, cap);
    EXPECT_NEAR(m.total_weight, k.total_weight, 1e-9) << "round " << round;
  }
}

class MckpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MckpProperty, MatchesBruteForceOnRandomLadders) {
  Rng rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    const std::size_t T = 2 + rng.below(3);  // 2..4 tiers
    const int n = 3 + static_cast<int>(rng.below(6));  // <= 8 items
    std::vector<std::size_t> caps(T, 0);
    caps[T - 1] = KnapsackSolver::kUnbounded;
    for (std::size_t j = 0; j + 1 < T; ++j)
      // Occasionally unbounded mid-ladder too (a huge uncontended rung).
      caps[j] = rng.below(8) == 0 ? KnapsackSolver::kUnbounded
                                  : 64 * (1 + rng.below(12));
    std::vector<MckpItem> items;
    for (int i = 0; i < n; ++i) {
      MckpItem it;
      for (std::size_t j = 0; j < T; ++j)
        it.weights.push_back(rng.uniform(-0.5, 1.0));
      it.bytes = 64 * (1 + rng.below(8));
      items.push_back(std::move(it));
    }
    KnapsackSolver s(64);
    MckpResult r = s.solve_mckp(items, caps);
    // Feasible: every constrained tier within its capacity.
    ASSERT_EQ(r.choice.size(), items.size());
    std::vector<std::size_t> used(T, 0);
    double w = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      ASSERT_GE(r.choice[i], 0);
      ASSERT_LT(static_cast<std::size_t>(r.choice[i]), T);
      used[r.choice[i]] += items[i].bytes;
      w += items[i].weights[r.choice[i]];
    }
    for (std::size_t j = 0; j < T; ++j) {
      if (caps[j] != KnapsackSolver::kUnbounded) {
        EXPECT_LE(used[j], caps[j]) << "round " << round << " tier " << j;
      }
    }
    EXPECT_NEAR(w, r.total_weight, 1e-9);
    // Optimal: instances are small + granule-aligned, so the dense DP
    // runs and must match the exhaustive T^n optimum.
    EXPECT_NEAR(r.total_weight, mckp_brute_force(items, caps), 1e-9)
        << "round " << round << " (" << T << " tiers, " << n << " items)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MckpProperty,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

TEST(Mckp, WaterfallFallbackStaysFeasibleAndUseful) {
  // Capacity x item-count past the dense-DP cell budget: the per-tier
  // waterfall must still answer — feasible, and no worse than leaving
  // every item on its best unbounded tier.
  Rng rng(9);
  std::vector<MckpItem> items;
  for (int i = 0; i < 48; ++i)
    items.push_back(MckpItem{{rng.uniform(0.0, 2.0), rng.uniform(0.0, 1.0),
                              0.0},
                             50000 + rng.below(2000000)});
  const std::vector<std::size_t> caps = {1 << 21, 1 << 22,
                                         KnapsackSolver::kUnbounded};
  KnapsackSolver s(1);  // granule 1: far past kDenseDpCellBudget
  MckpResult r = s.solve_mckp(items, caps);
  ASSERT_EQ(r.choice.size(), items.size());
  std::vector<std::size_t> used(3, 0);
  double total = 0, floor = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    used[r.choice[i]] += items[i].bytes;
    total += items[i].weights[r.choice[i]];
    floor += items[i].weights[2];  // best unbounded tier = the backstop
  }
  EXPECT_LE(used[0], caps[0]);
  EXPECT_LE(used[1], caps[1]);
  EXPECT_NEAR(total, r.total_weight, 1e-9);
  EXPECT_GE(r.total_weight, floor - 1e-9);
}

}  // namespace
}  // namespace unimem::rt
