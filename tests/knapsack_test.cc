// Tests for the 0-1 knapsack solver: exactness against brute force on
// random instances (property test) and the behavioural edge cases the
// planner relies on.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/knapsack.h"

namespace unimem::rt {
namespace {

double brute_force_best(const std::vector<KnapsackItem>& items,
                        std::size_t capacity) {
  const std::size_t n = items.size();
  double best = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    double w = 0;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::size_t{1} << i)) {
        w += items[i].weight;
        bytes += items[i].bytes;
      }
    if (bytes <= capacity && w > best) best = w;
  }
  return best;
}

TEST(Knapsack, EmptyInstance) {
  KnapsackSolver s;
  KnapsackResult r = s.solve({}, 1 << 20);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0);
}

TEST(Knapsack, ZeroCapacity) {
  KnapsackSolver s;
  KnapsackResult r = s.solve({{1.0, 100}}, 0);
  EXPECT_TRUE(r.selected.empty());
}

TEST(Knapsack, NegativeWeightNeverSelected) {
  KnapsackSolver s(1024);
  KnapsackResult r = s.solve({{-1.0, 1024}, {2.0, 1024}, {0.0, 1024}},
                             std::size_t{1} << 20);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
}

TEST(Knapsack, OversizedItemSkipped) {
  KnapsackSolver s(1024);
  KnapsackResult r = s.solve({{100.0, 1 << 20}, {1.0, 1024}}, 2048);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1u);
}

TEST(Knapsack, PicksValueOverDensityWhenOptimal) {
  // Greedy-by-density takes the densest item and wastes capacity; the DP
  // must take the two smaller ones (classic greedy-failure case).
  KnapsackSolver s(1);
  std::vector<KnapsackItem> items = {{10.0, 6}, {6.0, 4}, {6.0, 4}};
  KnapsackResult dp = s.solve(items, 8);
  EXPECT_DOUBLE_EQ(dp.total_weight, 12.0);
  KnapsackResult greedy = s.solve_greedy(items, 8);
  EXPECT_DOUBLE_EQ(greedy.total_weight, 10.0);  // density trap
}

TEST(Knapsack, RespectsCapacityExactly) {
  KnapsackSolver s(1);
  KnapsackResult r = s.solve({{1.0, 3}, {1.0, 3}, {1.0, 3}}, 6);
  EXPECT_EQ(r.selected.size(), 2u);
  EXPECT_LE(r.total_bytes, 6u);
}

TEST(Knapsack, GranuleRoundsSizesUp) {
  // With a 1 KiB granule, a 1025-byte item occupies 2 granules: three such
  // items cannot fit a 4 KiB capacity even though raw bytes would fit.
  KnapsackSolver s(1024);
  KnapsackResult r =
      s.solve({{1.0, 1025}, {1.0, 1025}, {1.0, 1025}}, 4 * 1024);
  EXPECT_EQ(r.selected.size(), 2u);
}

class KnapsackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const int n = 3 + static_cast<int>(rng.below(10));  // <= 12 items
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i)
      items.push_back(KnapsackItem{rng.uniform(-0.2, 1.0),
                                   64 * (1 + rng.below(64))});
    std::size_t capacity = 64 * (1 + rng.below(256));
    KnapsackSolver s(64);
    KnapsackResult r = s.solve(items, capacity);
    // Selection must be feasible.
    std::size_t bytes = 0;
    double w = 0;
    for (std::size_t idx : r.selected) {
      bytes += items[idx].bytes;
      w += items[idx].weight;
    }
    EXPECT_LE(bytes, capacity);
    EXPECT_NEAR(w, r.total_weight, 1e-9);
    // And optimal (granule = min item granularity = 64 here, so exact).
    EXPECT_NEAR(r.total_weight, brute_force_best(items, capacity), 1e-9);
    // Greedy is never better than the DP.
    KnapsackResult g = s.solve_greedy(items, capacity);
    EXPECT_LE(g.total_weight, r.total_weight + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace unimem::rt
