// Scenario-matrix end-to-end test: the full paper §3 loop (online
// profiling -> model + knapsack planning -> proactive migration) driven
// through the real Runtime on a multi-rank World for EVERY workload
// (NPB bt/cg/ft/lu/mg/sp + Nek) x planner strategy (local+global,
// local-only, global-only).  Each cell asserts:
//   * the loop ran: iterations complete, phases discovered, plan adopted
//     where the strategy allows one;
//   * DRAM-allowance respect, both modeled (every per-phase planned DRAM
//     set fits the rank budget) and enforced (the arbiter never
//     over-grants, final residency fits the allowance);
//   * non-negative modeled benefit (a plan never predicts a slowdown);
//   * migration integrity: checksums agree across strategies.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/runtime.h"
#include "minimpi/comm.h"
#include "simmem/dram_arbiter.h"
#include "simmem/hetero_memory.h"
#include "workloads/workload.h"

namespace unimem {
namespace {

constexpr int kRanks = 2;
constexpr int kIterations = 6;
constexpr std::size_t kDramAllowance = 2 * kMiB;

struct Strategy {
  const char* name;
  bool local;
  bool global;
};

constexpr Strategy kStrategies[] = {
    {"local_and_global", true, true},
    {"local_only", true, false},
    {"global_only", false, true},
};

struct RankOutcome {
  rt::RuntimeStats stats;
  rt::Plan plan;
  double checksum = 0;
  double no_move_estimate_s = 0;
  std::size_t dram_resident = 0;
  std::size_t arbiter_granted = 0;
  std::size_t arbiter_allowance = 0;
  std::vector<std::size_t> planned_phase_bytes;  ///< per-phase DRAM-set size
};

std::vector<RankOutcome> run_matrix_cell(const std::string& workload,
                                         const Strategy& strategy,
                                         int nranks = kRanks,
                                         int ranks_per_node = 1,
                                         double drift_amplitude = 0.0,
                                         int replan_epoch = 0,
                                         int iterations = kIterations,
                                         rt::DagSchedule dag =
                                             rt::DagSchedule::kOff) {
  wl::WorkloadConfig wcfg;
  wcfg.cls = 'S';
  wcfg.iterations = iterations;
  wcfg.nranks = nranks;
  wcfg.drift_amplitude = drift_amplitude;
  wcfg.drift_period = 3;

  // Every `ranks_per_node` consecutive ranks share one simulated node —
  // one HeteroMemory + one DramArbiter: NVM holds every sharing rank's
  // footprint with churn headroom; the DRAM allowance is far below the
  // working set so the planner must choose and the migration engine must
  // move data (and, with sharing, the ranks must split the allowance).
  const int nnodes = (nranks + ranks_per_node - 1) / ranks_per_node;
  const std::size_t nvm_cap =
      static_cast<std::size_t>(ranks_per_node) *
      (2 * wcfg.rank_bytes() + 32 * kMiB);
  const std::size_t dram_arena = 2 * kDramAllowance + 4 * kMiB;
  struct Node {
    std::unique_ptr<mem::HeteroMemory> hms;
    std::unique_ptr<mem::DramArbiter> arbiter;
  };
  std::vector<Node> nodes(static_cast<std::size_t>(nnodes));
  for (auto& n : nodes) {
    n.hms = std::make_unique<mem::HeteroMemory>(
        mem::HmsConfig{mem::TierConfig::dram_basis(dram_arena),
                       mem::TierConfig::nvm_scaled(nvm_cap, 0.5, 1.0)});
    n.arbiter = std::make_unique<mem::DramArbiter>(kDramAllowance);
  }

  std::vector<RankOutcome> out(static_cast<std::size_t>(nranks));
  mpi::World world(nranks, mpi::NetworkParams{}, ranks_per_node);
  world.run([&](mpi::Comm& comm) {
    const int r = comm.rank();
    Node& node = nodes[static_cast<std::size_t>(comm.node())];
    rt::RuntimeOptions opts;
    opts.ranks_per_node = ranks_per_node;
    opts.enable_local_search = strategy.local;
    opts.enable_global_search = strategy.global;
    opts.replan_epoch = replan_epoch;
    opts.dag_schedule = dag;
    opts.drift_threshold = 0.15;
    opts.drift_budget = 0.5;
    rt::Runtime runtime(opts, node.hms.get(), node.arbiter.get(), &comm);
    auto wl_impl = wl::make_workload(workload);
    out[r].checksum = wl_impl->run_rank(runtime, wcfg);
    out[r].stats = runtime.stats();
    out[r].plan = runtime.current_plan();
    for (const auto& dram_set : out[r].plan.dram_sets) {
      std::size_t bytes = 0;
      // try_unit_bytes: the workload has already freed its objects by the
      // time the plan is inspected, so some unit refs may be stale.
      for (const rt::UnitRef& u : dram_set)
        bytes += runtime.registry().try_unit_bytes(u);
      out[r].planned_phase_bytes.push_back(bytes);
    }
    out[r].dram_resident = runtime.registry().resident_bytes(mem::Tier::kDram);
    out[r].arbiter_granted = node.arbiter->granted();
    out[r].arbiter_allowance = node.arbiter->allowance();
  });
  return out;
}

class E2EMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(E2EMatrix, LoopCompletesRespectsDramAndNeverPlansASlowdown) {
  const std::string workload = std::get<0>(GetParam());
  const Strategy& strategy = kStrategies[std::get<1>(GetParam())];
  std::vector<RankOutcome> ranks = run_matrix_cell(workload, strategy);
  ASSERT_EQ(ranks.size(), static_cast<std::size_t>(kRanks));

  for (const RankOutcome& r : ranks) {
    // The loop ran to completion on every rank.
    EXPECT_EQ(r.stats.iterations, static_cast<std::uint64_t>(kIterations));
    EXPECT_GT(r.stats.phases_executed, 0u);

    // One-shot configuration: the adaptive machinery must stay dormant.
    EXPECT_EQ(r.stats.replan_checks, 0u);
    EXPECT_EQ(r.stats.incremental_repairs, 0u);
    EXPECT_EQ(r.stats.full_replans, 0u);

    // The adopted plan honours the strategy's search switches.
    if (!strategy.local) {
      EXPECT_NE(r.plan.kind, rt::Plan::Kind::kLocal);
    }
    if (!strategy.global) {
      EXPECT_NE(r.plan.kind, rt::Plan::Kind::kGlobal);
    }

    // Non-negative modeled benefit: a plan's predicted iteration time is a
    // real, finite prediction — the planner only adopts a plan predicted
    // to be no slower than leaving everything in place.
    EXPECT_GE(r.plan.predicted_iteration_s, 0.0);
    EXPECT_TRUE(std::isfinite(r.plan.predicted_iteration_s));

    // Modeled DRAM respect: every per-phase planned resident set fits the
    // rank's budget.
    for (std::size_t phase = 0; phase < r.planned_phase_bytes.size(); ++phase)
      EXPECT_LE(r.planned_phase_bytes[phase], kDramAllowance)
          << workload << "/" << strategy.name << " phase " << phase;

    // Enforced DRAM respect: the arbiter never over-granted and the final
    // residency fits the node allowance.
    EXPECT_LE(r.arbiter_granted, r.arbiter_allowance);
    EXPECT_LE(r.dram_resident, r.arbiter_allowance);
  }

  // With both searches available, the allowance is far below the working
  // set on every workload: an empty plan would be a planner bug.  Runtime
  // migrations must have happened whenever the adopted plan schedules any
  // (a plan can legitimately schedule none when the initial placement
  // already realizes its resident sets, e.g. MG).
  if (strategy.local && strategy.global) {
    EXPECT_NE(ranks[0].plan.kind, rt::Plan::Kind::kNone) << workload;
    std::uint64_t total_migrations = 0;
    std::size_t planned = 0;
    for (const RankOutcome& r : ranks) {
      total_migrations += r.stats.migration.migrations;
      planned += r.plan.migration_count();
    }
    if (planned > 0) {
      EXPECT_GT(total_migrations, 0u) << workload;
    }
  }

  // Migration integrity: any two strategies must produce identical
  // numerics for the same workload (placement never changes arithmetic).
  static std::map<std::string, std::vector<double>> checksums;
  std::vector<double> sums;
  for (const RankOutcome& r : ranks) sums.push_back(r.checksum);
  auto [it, inserted] = checksums.emplace(workload, sums);
  if (!inserted) {
    EXPECT_EQ(it->second, sums)
        << workload << "/" << strategy.name
        << ": checksum diverged from a previously run strategy";
  }
}

// ---- ranks_per_node > 1: multiple ranks sharing one simulated node --------
//
// The ROADMAP coverage gap: every matrix cell above runs one rank per
// node.  Here 4 ranks run 2-per-node — two ranks share one HeteroMemory
// and one DramArbiter — so the planner must pack against a per-rank share
// of the node allowance and the arbiter arbitrates real contention.
class E2EMultiRankNode : public ::testing::TestWithParam<std::string> {};

TEST_P(E2EMultiRankNode, SharedNodeSplitsAllowanceAndKeepsNumerics) {
  const std::string workload = GetParam();
  const Strategy& strategy = kStrategies[0];  // local+global
  constexpr int kNr = 4;
  std::vector<RankOutcome> shared =
      run_matrix_cell(workload, strategy, kNr, /*ranks_per_node=*/2);
  std::vector<RankOutcome> owned =
      run_matrix_cell(workload, strategy, kNr, /*ranks_per_node=*/1);
  ASSERT_EQ(shared.size(), static_cast<std::size_t>(kNr));
  ASSERT_EQ(owned.size(), static_cast<std::size_t>(kNr));

  for (int r = 0; r < kNr; ++r) {
    // The loop ran on every rank and the node topology never changes the
    // arithmetic: rank r's checksum is identical under both mappings.
    EXPECT_EQ(shared[r].stats.iterations,
              static_cast<std::uint64_t>(kIterations));
    EXPECT_GT(shared[r].stats.phases_executed, 0u);
    EXPECT_DOUBLE_EQ(shared[r].checksum, owned[r].checksum)
        << workload << " rank " << r;

    // Modeled respect of the per-rank share: with 2 ranks per node each
    // rank plans against allowance/2.
    for (std::size_t phase = 0; phase < shared[r].planned_phase_bytes.size();
         ++phase)
      EXPECT_LE(shared[r].planned_phase_bytes[phase], kDramAllowance / 2)
          << workload << " rank " << r << " phase " << phase;
    EXPECT_LE(shared[r].arbiter_granted, shared[r].arbiter_allowance);
  }

  // Enforced respect per node: the two sharing ranks' final DRAM
  // residency fits the single node allowance they share.
  for (int node = 0; node < kNr / 2; ++node) {
    const std::size_t resident = shared[2 * node].dram_resident +
                                 shared[2 * node + 1].dram_resident;
    EXPECT_LE(resident, kDramAllowance) << workload << " node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(CgFt, E2EMultiRankNode,
                         ::testing::Values("cg", "ft"));

// ---- drift injection + adaptive re-planning -------------------------------
//
// The dynamic-workload scenario: per-phase access weights drift on a
// seeded schedule (wl::DriftSchedule) and the runtime re-plans on an
// epoch cadence (core/replan.h).  Drift perturbs only the modeled
// traffic, so the adaptive and one-shot runs must agree bit-for-bit on
// the numerics while differing in placement behavior.
class E2EAdaptiveReplan
    : public ::testing::TestWithParam<std::tuple<std::string, bool>> {};

TEST_P(E2EAdaptiveReplan, DriftedRunReplansKeepsNumericsAndDram) {
  const std::string workload = std::get<0>(GetParam());
  // Whether a repair/re-solve must actually be adopted at this tiny test
  // scale: on nek the S-class repair candidates never beat "keep stale"
  // (the contract: a repair is adopted only when predicted better), so
  // only the checks themselves are required there.
  const bool expect_adoption = std::get<1>(GetParam());
  const Strategy& strategy = kStrategies[0];  // local+global
  constexpr int kIters = 14;
  constexpr double kAmp = 0.35;
  std::vector<RankOutcome> adaptive = run_matrix_cell(
      workload, strategy, kRanks, 1, kAmp, /*replan_epoch=*/3, kIters);
  std::vector<RankOutcome> oneshot = run_matrix_cell(
      workload, strategy, kRanks, 1, kAmp, /*replan_epoch=*/0, kIters);
  ASSERT_EQ(adaptive.size(), oneshot.size());

  std::uint64_t checks = 0, adaptions = 0;
  for (std::size_t r = 0; r < adaptive.size(); ++r) {
    const RankOutcome& a = adaptive[r];
    // The loop ran, epoch checks fired, and every decision was one of the
    // three paths (counters never exceed the checks that produced them).
    EXPECT_EQ(a.stats.iterations, static_cast<std::uint64_t>(kIters));
    EXPECT_GT(a.stats.replan_checks, 0u) << workload << " rank " << r;
    EXPECT_LE(a.stats.incremental_repairs + a.stats.full_replans,
              a.stats.replan_checks);
    EXPECT_GE(a.stats.last_drift_fraction, 0.0);
    EXPECT_LE(a.stats.last_drift_fraction, 1.0);
    checks += a.stats.replan_checks;
    adaptions += a.stats.incremental_repairs + a.stats.full_replans;

    // Drift injection never changes the arithmetic: the adaptive and
    // one-shot runs see identical payloads.
    EXPECT_DOUBLE_EQ(a.checksum, oneshot[r].checksum)
        << workload << " rank " << r;

    // An adopted repair keeps the budget: modeled and enforced DRAM
    // respect hold exactly as in the static matrix.
    for (std::size_t phase = 0; phase < a.planned_phase_bytes.size(); ++phase)
      EXPECT_LE(a.planned_phase_bytes[phase], kDramAllowance)
          << workload << " phase " << phase;
    EXPECT_LE(a.arbiter_granted, a.arbiter_allowance);
    EXPECT_LE(a.dram_resident, a.arbiter_allowance);

    // The one-shot control must not have touched the adaptive machinery.
    EXPECT_EQ(oneshot[r].stats.replan_checks, 0u);
  }
  // Under 35% injected drift at least one epoch across the ranks must
  // have found the weights moved enough to act on.
  EXPECT_GT(checks, 0u);
  if (expect_adoption) {
    EXPECT_GT(adaptions, 0u) << workload << ": drift never acted on";
  }
}

INSTANTIATE_TEST_SUITE_P(
    CgMgNek, E2EAdaptiveReplan,
    ::testing::Values(std::tuple{std::string("cg"), true},
                      std::tuple{std::string("mg"), true},
                      std::tuple{std::string("nek"), false}),
    [](const ::testing::TestParamInfo<std::tuple<std::string, bool>>& info) {
      return std::get<0>(info.param);
    });

// ---- slack-scheduled migration triggers (dag_schedule=slack) --------------
//
// The phase-DAG cell: every workload runs once with reactive (off) and
// once with slack-scheduled triggers.  Parking a copy in a different
// phase must never change arithmetic or break the allowance, and the
// exposed/hidden split must partition the copy time exactly.
class E2ESlackSchedule : public ::testing::TestWithParam<std::string> {};

TEST_P(E2ESlackSchedule, ChecksumParityDramRespectAndExposedHiddenSplit) {
  const std::string workload = GetParam();
  const Strategy& strategy = kStrategies[0];  // local+global
  std::vector<RankOutcome> off =
      run_matrix_cell(workload, strategy, kRanks, 1, 0.0, 0, kIterations,
                      rt::DagSchedule::kOff);
  std::vector<RankOutcome> slack =
      run_matrix_cell(workload, strategy, kRanks, 1, 0.0, 0, kIterations,
                      rt::DagSchedule::kSlack);
  ASSERT_EQ(off.size(), slack.size());

  for (std::size_t r = 0; r < slack.size(); ++r) {
    const RankOutcome& s = slack[r];
    // The loop ran and the DAG machinery actually engaged.
    EXPECT_EQ(s.stats.iterations, static_cast<std::uint64_t>(kIterations));
    EXPECT_GT(s.stats.dag_builds, 0u) << workload << " rank " << r;
    EXPECT_GT(s.stats.dag_critical_path_s, 0.0) << workload << " rank " << r;

    // Checksum parity: trigger placement never changes arithmetic.
    EXPECT_DOUBLE_EQ(s.checksum, off[r].checksum) << workload << " rank " << r;

    // DRAM-allowance respect, modeled and enforced, exactly as in the
    // static matrix.
    for (std::size_t phase = 0; phase < s.planned_phase_bytes.size(); ++phase)
      EXPECT_LE(s.planned_phase_bytes[phase], kDramAllowance)
          << workload << " phase " << phase;
    EXPECT_LE(s.arbiter_granted, s.arbiter_allowance);
    EXPECT_LE(s.dram_resident, s.arbiter_allowance);

    // The exposed/hidden split partitions the copy time on both modes.
    for (const RankOutcome* o :
         {&s, const_cast<const RankOutcome*>(&off[r])}) {
      const rt::MigrationStats& m = o->stats.migration;
      EXPECT_GE(m.exposed_migration_s(), 0.0);
      EXPECT_GE(m.hidden_migration_s(), 0.0);
      EXPECT_NEAR(m.exposed_migration_s() + m.hidden_migration_s(),
                  m.copy_time_s, 1e-12 + 1e-9 * m.copy_time_s)
          << workload << " rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, E2ESlackSchedule,
                         ::testing::Values("bt", "cg", "ft", "lu", "mg",
                                           "nek", "sp"));

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllStrategies, E2EMatrix,
    ::testing::Combine(::testing::Values("bt", "cg", "ft", "lu", "mg", "nek",
                                         "sp"),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      return std::get<0>(info.param) + "_" +
             kStrategies[std::get<1>(info.param)].name;
    });

}  // namespace
}  // namespace unimem
