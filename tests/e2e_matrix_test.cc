// Scenario-matrix end-to-end test: the full paper §3 loop (online
// profiling -> model + knapsack planning -> proactive migration) driven
// through the real Runtime on a multi-rank World for EVERY workload
// (NPB bt/cg/ft/lu/mg/sp + Nek) x planner strategy (local+global,
// local-only, global-only).  Each cell asserts:
//   * the loop ran: iterations complete, phases discovered, plan adopted
//     where the strategy allows one;
//   * DRAM-allowance respect, both modeled (every per-phase planned DRAM
//     set fits the rank budget) and enforced (the arbiter never
//     over-grants, final residency fits the allowance);
//   * non-negative modeled benefit (a plan never predicts a slowdown);
//   * migration integrity: checksums agree across strategies.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/runtime.h"
#include "minimpi/comm.h"
#include "simmem/dram_arbiter.h"
#include "simmem/hetero_memory.h"
#include "workloads/workload.h"

namespace unimem {
namespace {

constexpr int kRanks = 2;
constexpr int kIterations = 6;
constexpr std::size_t kDramAllowance = 2 * kMiB;

struct Strategy {
  const char* name;
  bool local;
  bool global;
};

constexpr Strategy kStrategies[] = {
    {"local_and_global", true, true},
    {"local_only", true, false},
    {"global_only", false, true},
};

struct RankOutcome {
  rt::RuntimeStats stats;
  rt::Plan plan;
  double checksum = 0;
  double no_move_estimate_s = 0;
  std::size_t dram_resident = 0;
  std::size_t arbiter_granted = 0;
  std::size_t arbiter_allowance = 0;
  std::vector<std::size_t> planned_phase_bytes;  ///< per-phase DRAM-set size
};

std::vector<RankOutcome> run_matrix_cell(const std::string& workload,
                                         const Strategy& strategy) {
  wl::WorkloadConfig wcfg;
  wcfg.cls = 'S';
  wcfg.iterations = kIterations;
  wcfg.nranks = kRanks;

  // One node per rank: NVM holds the whole footprint with churn headroom;
  // the DRAM allowance is far below the working set so the planner must
  // choose and the migration engine must move data.
  const std::size_t nvm_cap = 2 * wcfg.rank_bytes() + 32 * kMiB;
  const std::size_t dram_arena = 2 * kDramAllowance + 4 * kMiB;
  struct Node {
    std::unique_ptr<mem::HeteroMemory> hms;
    std::unique_ptr<mem::DramArbiter> arbiter;
  };
  std::vector<Node> nodes(kRanks);
  for (auto& n : nodes) {
    n.hms = std::make_unique<mem::HeteroMemory>(
        mem::HmsConfig{mem::TierConfig::dram_basis(dram_arena),
                       mem::TierConfig::nvm_scaled(nvm_cap, 0.5, 1.0)});
    n.arbiter = std::make_unique<mem::DramArbiter>(kDramAllowance);
  }

  std::vector<RankOutcome> out(kRanks);
  mpi::World world(kRanks, mpi::NetworkParams{}, /*ranks_per_node=*/1);
  world.run([&](mpi::Comm& comm) {
    const int r = comm.rank();
    Node& node = nodes[static_cast<std::size_t>(comm.node())];
    rt::RuntimeOptions opts;
    opts.ranks_per_node = 1;
    opts.enable_local_search = strategy.local;
    opts.enable_global_search = strategy.global;
    rt::Runtime runtime(opts, node.hms.get(), node.arbiter.get(), &comm);
    auto wl_impl = wl::make_workload(workload);
    out[r].checksum = wl_impl->run_rank(runtime, wcfg);
    out[r].stats = runtime.stats();
    out[r].plan = runtime.current_plan();
    for (const auto& dram_set : out[r].plan.dram_sets) {
      std::size_t bytes = 0;
      // try_unit_bytes: the workload has already freed its objects by the
      // time the plan is inspected, so some unit refs may be stale.
      for (const rt::UnitRef& u : dram_set)
        bytes += runtime.registry().try_unit_bytes(u);
      out[r].planned_phase_bytes.push_back(bytes);
    }
    out[r].dram_resident = runtime.registry().resident_bytes(mem::Tier::kDram);
    out[r].arbiter_granted = node.arbiter->granted();
    out[r].arbiter_allowance = node.arbiter->allowance();
  });
  return out;
}

class E2EMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(E2EMatrix, LoopCompletesRespectsDramAndNeverPlansASlowdown) {
  const std::string workload = std::get<0>(GetParam());
  const Strategy& strategy = kStrategies[std::get<1>(GetParam())];
  std::vector<RankOutcome> ranks = run_matrix_cell(workload, strategy);
  ASSERT_EQ(ranks.size(), static_cast<std::size_t>(kRanks));

  for (const RankOutcome& r : ranks) {
    // The loop ran to completion on every rank.
    EXPECT_EQ(r.stats.iterations, static_cast<std::uint64_t>(kIterations));
    EXPECT_GT(r.stats.phases_executed, 0u);

    // The adopted plan honours the strategy's search switches.
    if (!strategy.local) {
      EXPECT_NE(r.plan.kind, rt::Plan::Kind::kLocal);
    }
    if (!strategy.global) {
      EXPECT_NE(r.plan.kind, rt::Plan::Kind::kGlobal);
    }

    // Non-negative modeled benefit: a plan's predicted iteration time is a
    // real, finite prediction — the planner only adopts a plan predicted
    // to be no slower than leaving everything in place.
    EXPECT_GE(r.plan.predicted_iteration_s, 0.0);
    EXPECT_TRUE(std::isfinite(r.plan.predicted_iteration_s));

    // Modeled DRAM respect: every per-phase planned resident set fits the
    // rank's budget.
    for (std::size_t phase = 0; phase < r.planned_phase_bytes.size(); ++phase)
      EXPECT_LE(r.planned_phase_bytes[phase], kDramAllowance)
          << workload << "/" << strategy.name << " phase " << phase;

    // Enforced DRAM respect: the arbiter never over-granted and the final
    // residency fits the node allowance.
    EXPECT_LE(r.arbiter_granted, r.arbiter_allowance);
    EXPECT_LE(r.dram_resident, r.arbiter_allowance);
  }

  // With both searches available, the allowance is far below the working
  // set on every workload: an empty plan would be a planner bug.  Runtime
  // migrations must have happened whenever the adopted plan schedules any
  // (a plan can legitimately schedule none when the initial placement
  // already realizes its resident sets, e.g. MG).
  if (strategy.local && strategy.global) {
    EXPECT_NE(ranks[0].plan.kind, rt::Plan::Kind::kNone) << workload;
    std::uint64_t total_migrations = 0;
    std::size_t planned = 0;
    for (const RankOutcome& r : ranks) {
      total_migrations += r.stats.migration.migrations;
      planned += r.plan.migration_count();
    }
    if (planned > 0) {
      EXPECT_GT(total_migrations, 0u) << workload;
    }
  }

  // Migration integrity: any two strategies must produce identical
  // numerics for the same workload (placement never changes arithmetic).
  static std::map<std::string, std::vector<double>> checksums;
  std::vector<double> sums;
  for (const RankOutcome& r : ranks) sums.push_back(r.checksum);
  auto [it, inserted] = checksums.emplace(workload, sums);
  if (!inserted) {
    EXPECT_EQ(it->second, sums)
        << workload << "/" << strategy.name
        << ": checksum diverged from a previously run strategy";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllStrategies, E2EMatrix,
    ::testing::Combine(::testing::Values("bt", "cg", "ft", "lu", "mg", "nek",
                                         "sp"),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      return std::get<0>(info.param) + "_" +
             kStrategies[std::get<1>(info.param)].name;
    });

}  // namespace
}  // namespace unimem
