// Tests for the static-placement baselines and the X-Men placement logic.
#include <gtest/gtest.h>

#include "baselines/static_context.h"
#include "baselines/xmen.h"
#include "minimpi/comm.h"

namespace unimem::baseline {
namespace {

TEST(PlacementFns, Basics) {
  EXPECT_EQ(nvm_only()("anything", 1), mem::Tier::kNvm);
  EXPECT_EQ(dram_only()("anything", 1), mem::Tier::kDram);
  auto m = manual({"a", "b"});
  EXPECT_EQ(m("a", 1), mem::Tier::kDram);
  EXPECT_EQ(m("c", 1), mem::Tier::kNvm);
}

TEST(StaticContext, PlacesAndTimesWork) {
  mem::HeteroMemory hms(mem::HmsConfig::scaled(0.5, 1.0, 8 * kMiB, 64 * kMiB));
  StaticContextOptions opts;
  StaticContext ctx(opts, &hms, nullptr, nullptr, manual({"fast"}));
  rt::DataObject* fast = ctx.malloc_object("fast", kMiB, {});
  rt::DataObject* slow = ctx.malloc_object("slow", kMiB, {});
  EXPECT_EQ(fast->chunk(0).current_tier(), mem::Tier::kDram);
  EXPECT_EQ(slow->chunk(0).current_tier(), mem::Tier::kNvm);

  rt::PhaseWork w;
  w.accesses.push_back(
      rt::ObjectAccess{slow, cache::Pattern::kSequential, 1 << 18});
  double before = ctx.now();
  ctx.compute(w);
  EXPECT_GT(ctx.now(), before);
}

TEST(StaticContext, OfflineProfileRecordsGroundTruth) {
  mem::HeteroMemory hms(mem::HmsConfig::scaled(0.5, 1.0, 8 * kMiB, 64 * kMiB));
  StaticContextOptions opts;
  opts.record_profile = true;
  StaticContext ctx(opts, &hms, nullptr, nullptr, nvm_only());
  rt::DataObject* a = ctx.malloc_object("a", 4 * kMiB, {});
  rt::PhaseWork w;
  w.accesses.push_back(
      rt::ObjectAccess{a, cache::Pattern::kSequential, 1 << 19});
  ctx.compute(w);
  const auto& profs = ctx.profiles();
  ASSERT_EQ(profs.count("a"), 1u);
  EXPECT_GT(profs.at("a").misses, 0u);
  EXPECT_EQ(profs.at("a").bytes, 4 * kMiB);
  EXPECT_EQ(profs.at("a").dominant_pattern(), cache::Pattern::kSequential);
}

TEST(XMen, PacksByBenefitDensity) {
  mem::HmsConfig hms = mem::HmsConfig::scaled(0.5, 1.0);
  std::map<std::string, ObjectProfile> profs;
  auto mk = [&](const char* n, std::uint64_t misses, std::uint64_t bytes,
                cache::Pattern p) {
    ObjectProfile op;
    op.misses = misses;
    op.serialized_misses = static_cast<double>(misses);
    op.bytes = bytes;
    op.misses_by_pattern[p] = misses;
    profs[n] = op;
  };
  mk("hot_small", 1000000, 1 * kMiB, cache::Pattern::kSequential);
  mk("hot_big", 1100000, 6 * kMiB, cache::Pattern::kSequential);
  mk("cold", 10, 1 * kMiB, cache::Pattern::kSequential);

  auto placed = xmen_placement(profs, hms, 4 * kMiB);
  // Greedy by density: hot_small first; hot_big does not fit the 4 MiB
  // budget; cold has positive (tiny) benefit so X-Men still packs it.
  ASSERT_FALSE(placed.empty());
  EXPECT_EQ(placed[0], "hot_small");
  for (const auto& n : placed) EXPECT_NE(n, "hot_big");
}

TEST(XMen, LatencyPatternUsesLatencyBenefit) {
  // At the 1/2-bandwidth NVM config, latencies are equal, so a pure
  // pointer-chasing object has zero benefit and is never placed.
  mem::HmsConfig hms = mem::HmsConfig::scaled(0.5, 1.0);
  std::map<std::string, ObjectProfile> profs;
  ObjectProfile chase;
  chase.misses = 1000000;
  chase.serialized_misses = 1000000;
  chase.bytes = kMiB;
  chase.misses_by_pattern[cache::Pattern::kPointerChase] = 1000000;
  profs["chase"] = chase;
  EXPECT_TRUE(xmen_placement(profs, hms, 8 * kMiB).empty());

  // At the 4x-latency config the same object is worth placing.
  mem::HmsConfig hms_lat = mem::HmsConfig::scaled(1.0, 4.0);
  auto placed = xmen_placement(profs, hms_lat, 8 * kMiB);
  ASSERT_EQ(placed.size(), 1u);
  EXPECT_EQ(placed[0], "chase");
}

TEST(XMen, EmptyProfilesGiveEmptyPlacement) {
  EXPECT_TRUE(
      xmen_placement({}, mem::HmsConfig::scaled(0.5, 1.0), 8 * kMiB).empty());
}

TEST(XMen, RespectsBudgetExactly) {
  mem::HmsConfig hms = mem::HmsConfig::scaled(0.5, 1.0);
  std::map<std::string, ObjectProfile> profs;
  for (int i = 0; i < 6; ++i) {
    ObjectProfile op;
    op.misses = 100000 + i;
    op.serialized_misses = op.misses;
    op.bytes = kMiB;
    op.misses_by_pattern[cache::Pattern::kSequential] = op.misses;
    // Append (not operator+) dodges GCC 12's -Wrestrict false positive
    // at -O3, which broke Release builds.
    std::string name("o");
    name += std::to_string(i);
    profs[name] = op;
  }
  auto placed = xmen_placement(profs, hms, 3 * kMiB);
  EXPECT_EQ(placed.size(), 3u);
}

}  // namespace
}  // namespace unimem::baseline
