// Tests for minimpi: collective values, point-to-point semantics, virtual
// time synchronization, and the PMPI hook stream — parameterized over rank
// counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "minimpi/comm.h"
#include "minimpi/pmpi.h"

namespace unimem::mpi {
namespace {

class MiniMpi : public ::testing::TestWithParam<int> {};

TEST_P(MiniMpi, AllreduceSum) {
  World world(GetParam());
  std::vector<double> results(GetParam());
  world.run([&](Comm& c) {
    double v[2] = {static_cast<double>(c.rank() + 1), 1.0};
    c.allreduce(v, 2);
    results[c.rank()] = v[0];
    EXPECT_DOUBLE_EQ(v[1], static_cast<double>(c.size()));
  });
  const int p = GetParam();
  for (double r : results) EXPECT_DOUBLE_EQ(r, p * (p + 1) / 2.0);
}

TEST_P(MiniMpi, AllreduceMaxMin) {
  World world(GetParam());
  world.run([&](Comm& c) {
    double v[1] = {static_cast<double>(c.rank())};
    c.allreduce(v, 1, ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(v[0], static_cast<double>(c.size() - 1));
    v[0] = static_cast<double>(c.rank());
    c.allreduce(v, 1, ReduceOp::kMin);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
  });
}

TEST_P(MiniMpi, AllreduceUint64) {
  World world(GetParam());
  world.run([&](Comm& c) {
    std::uint64_t v[1] = {1};
    c.allreduce(v, 1);
    EXPECT_EQ(v[0], static_cast<std::uint64_t>(c.size()));
  });
}

TEST_P(MiniMpi, BcastFromEveryRoot) {
  World world(GetParam());
  world.run([&](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      int payload = c.rank() == root ? 1000 + root : -1;
      c.bcast(&payload, sizeof payload, root);
      EXPECT_EQ(payload, 1000 + root);
    }
  });
}

TEST_P(MiniMpi, ReduceToRoot) {
  World world(GetParam());
  world.run([&](Comm& c) {
    double v[1] = {1.0};
    c.reduce(v, 1, 0);
    if (c.rank() == 0) {
      EXPECT_DOUBLE_EQ(v[0], static_cast<double>(c.size()));
    }
  });
}

TEST_P(MiniMpi, RingSendrecv) {
  World world(GetParam());
  world.run([&](Comm& c) {
    const int p = c.size();
    int out = c.rank();
    int in = -1;
    c.sendrecv(&out, sizeof out, (c.rank() + 1) % p, &in, sizeof in,
               (c.rank() + p - 1) % p, 7);
    EXPECT_EQ(in, (c.rank() + p - 1) % p);
  });
}

TEST_P(MiniMpi, AlltoallPermutation) {
  const int p = GetParam();
  World world(p);
  world.run([&](Comm& c) {
    std::vector<std::int32_t> send(p), recv(p, -1);
    for (int i = 0; i < p; ++i) send[i] = c.rank() * 100 + i;
    c.alltoall(send.data(), recv.data(), sizeof(std::int32_t));
    for (int i = 0; i < p; ++i) EXPECT_EQ(recv[i], i * 100 + c.rank());
  });
}

TEST_P(MiniMpi, BarrierSynchronizesVirtualClocks) {
  World world(GetParam());
  world.run([&](Comm& c) {
    // Ranks advance different amounts, then meet at a barrier.
    c.clock().advance(0.001 * (c.rank() + 1));
    c.barrier();
    double after = c.clock().now();
    // All ranks leave at >= the max entry time.
    EXPECT_GE(after, 0.001 * c.size());
  });
}

TEST_P(MiniMpi, CollectiveClocksAgreeExactly) {
  const int p = GetParam();
  World world(p);
  std::vector<double> exit_times(p);
  world.run([&](Comm& c) {
    c.clock().advance(0.002 * (p - c.rank()));
    double v[1] = {1.0};
    c.allreduce(v, 1);
    exit_times[c.rank()] = c.clock().now();
  });
  for (int r = 1; r < p; ++r)
    EXPECT_DOUBLE_EQ(exit_times[r], exit_times[0]);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MiniMpi, ::testing::Values(1, 2, 3, 4, 8));

TEST(MiniMpiP2p, MessageOrderingFifo) {
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) c.send(&i, sizeof i, 1, 3);
    } else {
      for (int i = 0; i < 50; ++i) {
        int v = -1;
        c.recv(&v, sizeof v, 0, 3);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(MiniMpiP2p, TagsKeepStreamsSeparate) {
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      int a = 1, b = 2;
      c.send(&a, sizeof a, 1, 10);
      c.send(&b, sizeof b, 1, 20);
    } else {
      int v = 0;
      c.recv(&v, sizeof v, 0, 20);  // receive the second tag first
      EXPECT_EQ(v, 2);
      c.recv(&v, sizeof v, 0, 10);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(MiniMpiP2p, RecvClockRespectsWireCost) {
  NetworkParams net;
  World world(2, net);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<char> big(1 << 20);
      c.send(big.data(), big.size(), 1, 1);
    } else {
      std::vector<char> big(1 << 20);
      c.recv(big.data(), big.size(), 0, 1);
      // Receiver cannot finish before send time + wire cost.
      EXPECT_GE(c.clock().now(), net.p2p_cost(big.size()));
    }
  });
}

TEST(MiniMpiP2p, IsendIrecvWait) {
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      int v = 77;
      Request r = c.isend(&v, sizeof v, 1, 5);
      c.wait(r);
    } else {
      int v = 0;
      Request r = c.irecv(&v, sizeof v, 0, 5);
      c.wait(r);
      EXPECT_EQ(v, 77);
      EXPECT_TRUE(r.done);
    }
  });
}

TEST(MiniMpiHooks, BlockingAndNonblockingOps) {
  struct Recorder : PmpiHooks {
    std::vector<OpKind> pre, post;
    std::vector<bool> blocking;
    void on_pre_op(const OpInfo& i) override {
      pre.push_back(i.kind);
      blocking.push_back(i.blocking);
    }
    void on_post_op(const OpInfo& i) override { post.push_back(i.kind); }
  };
  World world(2);
  std::vector<Recorder> recs(2);
  world.run([&](Comm& c) {
    c.set_hooks(&recs[c.rank()]);
    c.barrier();
    if (c.rank() == 0) {
      int v = 1;
      Request r = c.isend(&v, sizeof v, 1, 9);
      c.wait(r);
    } else {
      int v = 0;
      Request r = c.irecv(&v, sizeof v, 0, 9);
      c.wait(r);
    }
    c.set_hooks(nullptr);
  });
  for (const Recorder& r : recs) {
    ASSERT_EQ(r.pre.size(), 3u);  // barrier, isend/irecv, wait
    EXPECT_EQ(r.pre[0], OpKind::kBarrier);
    EXPECT_TRUE(r.blocking[0]);
    EXPECT_FALSE(r.blocking[1]);  // non-blocking merges into next phase
    EXPECT_EQ(r.pre[2], OpKind::kWait);
    EXPECT_TRUE(r.blocking[2]);
    EXPECT_EQ(r.pre.size(), r.post.size());
  }
}

TEST(MiniMpiWorld, ExceptionPropagates) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& c) {
                 if (c.rank() == 1) throw std::runtime_error("rank fail");
                 // Rank 0 does nothing and exits cleanly.
               }),
               std::runtime_error);
}

TEST(MiniMpiWorld, NodeMapping) {
  World world(4, NetworkParams{}, 2);
  world.run([&](Comm& c) { EXPECT_EQ(c.node(), c.rank() / 2); });
}

TEST(NetworkParamsModel, CostsScale) {
  NetworkParams n;
  EXPECT_GT(n.p2p_cost(1 << 20), n.p2p_cost(0));
  EXPECT_DOUBLE_EQ(n.collective_cost(0, 1), 0.0);
  EXPECT_GT(n.collective_cost(64, 8), n.collective_cost(64, 2));
}

}  // namespace
}  // namespace unimem::mpi
