// Sweep subsystem tests: spec expansion (cartesian order, axis collapse,
// filtering, smoke clamp), baseline memoization (key coverage,
// single-flight under concurrency), engine semantics (deterministic
// ordering, rank-bounded admission liveness, failure isolation), result
// serialization (JSONL/CSV), and the determinism regression the ISSUE
// demands: the same spec run with 1 and 8 jobs produces bitwise-identical
// time_s/checksum per point.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "experiments/report.h"
#include "sweep/baseline_cache.h"
#include "sweep/engine.h"
#include "sweep/result_store.h"
#include "sweep/spec.h"

namespace unimem::sweep {
namespace {

SweepSpec tiny_spec() {
  SweepSpec s;
  s.name = "tiny";
  s.workloads = {"cg", "ft"};
  s.policies = {exp::Policy::kNvmOnly, exp::Policy::kUnimem};
  s.nvm_bw_ratios = {0.5};
  s.cls = 'S';
  s.iterations = 2;
  s.nranks = 2;
  s.dram_capacities = {2 * kMiB};
  return s;
}

// ---- spec expansion -------------------------------------------------------

TEST(SweepSpec, CartesianExpansionIsStableAndLabeled) {
  SweepSpec s = *spec_by_name("fig13");
  const auto points = s.expand();
  // 7 workloads x (1 NVM-only with the DRAM axis collapsed + 3 Unimem
  // DRAM capacities).
  EXPECT_EQ(points.size(), 7u * 4u);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i);
  std::set<std::string> labels;
  for (const auto& p : points) labels.insert(p.label);
  EXPECT_EQ(labels.size(), points.size()) << "labels must be unique";
}

TEST(SweepSpec, InsensitiveAxesCollapsePerPolicy) {
  SweepSpec s = *spec_by_name("fig13");
  const auto points = s.expand();
  std::size_t nvm_points = 0;
  for (const auto& p : points) {
    if (p.axis.at("policy") == "nvm-only") {
      ++nvm_points;
      EXPECT_EQ(p.axis.at("dram"), "*");  // capacity-invariant timing
    } else {
      EXPECT_NE(p.axis.at("dram"), "*");
    }
  }
  EXPECT_EQ(nvm_points, 7u);
}

TEST(SweepSpec, TechniqueAxisOnlyMultipliesUnimemPoints) {
  SweepSpec s = *spec_by_name("fig11");
  const auto points = s.expand();
  EXPECT_EQ(points.size(), 7u * (1u + 4u));
  for (const auto& p : points) {
    if (p.axis.at("policy") == "unimem") {
      EXPECT_NE(p.axis.at("tech"), "*");
    } else {
      EXPECT_EQ(p.axis.at("tech"), "*");
    }
  }
}

TEST(SweepSpec, FilterKeepsOriginalIndices) {
  SweepSpec s = *spec_by_name("fig2");
  const auto all = s.expand();
  const auto filtered = s.expand("lu/");
  ASSERT_FALSE(filtered.empty());
  EXPECT_LT(filtered.size(), all.size());
  for (const auto& p : filtered) {
    EXPECT_NE(p.label.find("lu/"), std::string::npos);
    EXPECT_EQ(all[p.index].label, p.label);  // index survives filtering
  }
}

TEST(SweepSpec, SmokeClampShrinksTheProblem) {
  SweepSpec s = *spec_by_name("fig11");
  SweepSpec clamped = smoke_clamped(s);
  EXPECT_EQ(clamped.cls, 'S');
  EXPECT_LE(clamped.iterations, 3);
  EXPECT_LE(clamped.nranks, 2);
  EXPECT_EQ(clamped.size(), s.size()) << "smoke shrinks points, not the grid";
}

TEST(SweepSpec, EveryRegisteredSpecExpands) {
  for (const std::string& name : spec_names()) {
    auto s = spec_by_name(name);
    ASSERT_TRUE(s.has_value()) << name;
    EXPECT_GE(s->size(), 18u) << name;
  }
  EXPECT_FALSE(spec_by_name("no-such-spec").has_value());
}

// ---- baseline service -----------------------------------------------------

TEST(BaselineService, KeyCoversTimingFieldsAndIgnoresNvmAxes) {
  exp::RunConfig a;
  a.workload = "cg";
  const std::string base = BaselineService::key(a);

  // Invariant axes: a DRAM-only run's time does not depend on these.
  exp::RunConfig b = a;
  b.nvm_bw_ratio = 0.125;
  b.nvm_lat_mult = 8.0;
  b.dram_capacity = 4 * kMiB;
  b.policy = exp::Policy::kUnimem;
  b.unimem.enable_chunking = false;
  EXPECT_EQ(BaselineService::key(b), base);

  // Sensitive fields: each must produce a distinct key.
  auto differs = [&](auto&& mutate) {
    exp::RunConfig c = a;
    mutate(c);
    return BaselineService::key(c) != base;
  };
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.workload = "ft"; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.wcfg.cls = 'A'; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.wcfg.iterations = 3; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.wcfg.nranks = 8; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.ranks_per_node = 2; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.net.alpha_s = 5e-6; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.net.beta_bps = 1e9; }));
  EXPECT_TRUE(
      differs([](exp::RunConfig& c) { c.unimem.timing.cpu_freq_hz = 3e9; }));
  EXPECT_TRUE(
      differs([](exp::RunConfig& c) { c.unimem.cache.size_bytes = 1 << 19; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.unimem.use_exact_cache = true; }));
}

TEST(BaselineService, SingleFlightUnderConcurrentRequests) {
  std::atomic<int> runs{0};
  BaselineService svc([&](const exp::RunConfig& cfg) {
    runs.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    exp::RunResult r;
    r.time_s = 1.0 + cfg.nvm_bw_ratio;  // any deterministic value
    return r;
  });

  exp::RunConfig cfg;
  cfg.workload = "cg";
  std::vector<std::thread> threads;
  std::vector<double> seen(8, 0.0);
  for (int i = 0; i < 8; ++i)
    threads.emplace_back(
        [&, i] { seen[i] = svc.dram_baseline(cfg).time_s; });
  for (auto& t : threads) t.join();

  EXPECT_EQ(runs.load(), 1) << "one computation serves all waiters";
  EXPECT_EQ(svc.computed(), 1u);
  EXPECT_EQ(svc.requests(), 8u);
  for (double v : seen) EXPECT_EQ(v, seen[0]);

  exp::RunConfig other = cfg;
  other.workload = "ft";
  svc.dram_baseline(other);
  EXPECT_EQ(svc.computed(), 2u);
}

TEST(BaselineService, PropagatesFailuresToEveryWaiter) {
  BaselineService svc([](const exp::RunConfig&) -> exp::RunResult {
    throw std::runtime_error("baseline boom");
  });
  exp::RunConfig cfg;
  cfg.workload = "cg";
  EXPECT_THROW(svc.dram_baseline(cfg), std::runtime_error);
  // The failure is cached; a second request rethrows without recomputing.
  EXPECT_THROW(svc.dram_baseline(cfg), std::runtime_error);
  EXPECT_EQ(svc.computed(), 1u);
}

// ---- engine ---------------------------------------------------------------

TEST(SweepEngine, RunsABatchInPointOrderWithMemoizedBaselines) {
  SweepSpec s = tiny_spec();
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 4u);  // {cg,ft} x {nvm-only,unimem}

  std::vector<std::size_t> completion_order;
  EngineOptions opts;
  opts.jobs = 4;
  opts.on_result = [&](const SweepRow& row) {
    completion_order.push_back(row.index);
  };
  SweepEngine engine(opts);
  const SweepOutcome out = engine.run(points);

  ASSERT_EQ(out.rows.size(), points.size());
  EXPECT_EQ(out.failed, 0u);
  EXPECT_EQ(completion_order.size(), points.size());
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    const SweepRow& r = out.rows[i];
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_EQ(r.index, points[i].index) << "rows land in point order";
    EXPECT_EQ(r.label, points[i].label);
    EXPECT_GT(r.result.time_s, 0.0);
    EXPECT_GT(r.baseline_time_s, 0.0);
    EXPECT_GT(r.normalized, 0.0);
    // Nothing meaningfully beats the DRAM-only machine (Unimem is allowed
    // the same 2% modeling slack integration_test grants it).
    EXPECT_GE(r.normalized, 0.98) << r.label;
  }
  // One DRAM-only baseline per workload, shared by both policies.
  EXPECT_EQ(out.baseline_requests, 4u);
  EXPECT_EQ(out.baseline_computed, 2u);
  EXPECT_EQ(out.worlds_executed, 4u + 2u);
}

TEST(SweepEngine, JobWiderThanTheRankBudgetStillRuns) {
  SweepSpec s = tiny_spec();
  s.workloads = {"cg"};
  s.policies = {exp::Policy::kNvmOnly};
  s.nranks = 4;  // wider than the 2-rank budget below
  EngineOptions opts;
  opts.jobs = 4;
  opts.max_inflight_ranks = 2;
  SweepEngine engine(opts);
  const SweepOutcome out = engine.run(s.expand());
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_TRUE(out.rows[0].ok) << out.rows[0].error;
}

TEST(SweepEngine, FailingPointsAreIsolated) {
  SweepSpec s = tiny_spec();
  s.policies = {exp::Policy::kNvmOnly};
  SweepSpec::ExplicitPoint bad;
  bad.label = "bogus/point";
  bad.cfg.workload = "bogus";
  bad.cfg.wcfg.cls = 'S';
  bad.cfg.wcfg.iterations = 1;
  bad.cfg.wcfg.nranks = 1;
  bad.normalize = true;  // the baseline itself throws -> isolated too
  s.explicit_points.push_back(bad);

  EngineOptions opts;
  opts.jobs = 3;
  SweepEngine engine(opts);
  const SweepOutcome out = engine.run(s.expand());

  ASSERT_EQ(out.rows.size(), 3u);  // cg, ft, bogus
  EXPECT_EQ(out.failed, 1u);
  EXPECT_TRUE(out.rows[0].ok);
  EXPECT_TRUE(out.rows[1].ok);
  EXPECT_FALSE(out.rows[2].ok);
  EXPECT_NE(out.rows[2].error.find("unknown workload"), std::string::npos)
      << out.rows[2].error;
}

// The determinism regression: the same SweepSpec run with --jobs 1 and
// --jobs 8 produces bitwise-identical time_s/checksum per point.  This is
// what flushes out hidden shared mutable state between concurrent Worlds.
TEST(SweepEngine, SweepDeterminismAcrossJobCounts) {
  SweepSpec s = tiny_spec();
  s.workloads = {"cg", "mg"};
  s.nvm_bw_ratios = {0.5, 0.25};
  s.iterations = 3;
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 8u);

  EngineOptions serial;
  serial.jobs = 1;
  SweepEngine e1(serial);
  const SweepOutcome a = e1.run(points);

  EngineOptions wide;
  wide.jobs = 8;
  SweepEngine e8(wide);
  const SweepOutcome b = e8.run(points);

  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.failed, 0u);
  EXPECT_EQ(b.failed, 0u);
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    SCOPED_TRACE(a.rows[i].label);
    // Bitwise, not approximate: placement decisions, migration schedules
    // and virtual-time accounting must not feel neighboring Worlds.
    EXPECT_EQ(a.rows[i].result.time_s, b.rows[i].result.time_s);
    EXPECT_EQ(a.rows[i].result.checksum, b.rows[i].result.checksum);
    EXPECT_EQ(a.rows[i].baseline_time_s, b.rows[i].baseline_time_s);
    EXPECT_EQ(a.rows[i].normalized, b.rows[i].normalized);
    EXPECT_EQ(a.rows[i].result.total_migrations,
              b.rows[i].result.total_migrations);
  }
}

// The exact cache model is address-sensitive (set indexing by line
// address), so this config would catch any arena offset that depends on
// helper-thread timing — the zombie-free race the per-tier quiescing in
// MigrationEngine exists to prevent.  Tight DRAM maximizes churn.
TEST(SweepEngine, DeterministicWithExactCacheAndTightDram) {
  SweepSpec s = tiny_spec();
  s.workloads = {"nek", "cg"};
  s.policies = {exp::Policy::kUnimem};
  s.iterations = 4;
  s.dram_capacities = {kMiB};
  s.unimem.use_exact_cache = true;
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 2u);

  auto run_with_jobs = [&](int jobs) {
    EngineOptions o;
    o.jobs = jobs;
    SweepEngine e(o);
    return e.run(points);
  };
  const SweepOutcome a = run_with_jobs(1);
  const SweepOutcome b = run_with_jobs(4);
  const SweepOutcome c = run_with_jobs(1);  // cross-run, not just cross-jobs

  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_TRUE(a.rows[i].ok) << a.rows[i].error;
    EXPECT_EQ(a.rows[i].result.time_s, b.rows[i].result.time_s);
    EXPECT_EQ(a.rows[i].result.time_s, c.rows[i].result.time_s);
    EXPECT_EQ(a.rows[i].result.checksum, b.rows[i].result.checksum);
    EXPECT_EQ(a.rows[i].result.total_migrations,
              b.rows[i].result.total_migrations);
    EXPECT_EQ(a.rows[i].result.total_migrations,
              c.rows[i].result.total_migrations);
  }
}

// ---- result store ---------------------------------------------------------

SweepRow make_row(std::size_t index, bool ok) {
  SweepRow r;
  r.index = index;
  r.label = "cg/nvm-only/bw0.5#" + std::to_string(index);
  r.axis = {{"workload", "cg"}, {"policy", "nvm-only"}};
  r.ok = ok;
  if (!ok) r.error = "boom, with \"quotes\"";
  r.result.time_s = 0.125 * static_cast<double>(index + 1);
  r.result.checksum = 42.5;
  r.baseline_time_s = 0.125;
  r.normalized = static_cast<double>(index + 1);
  return r;
}

TEST(SweepResultStore, StreamsJsonlAndWritesSortedCsv) {
  const std::string dir = ::testing::TempDir();
  const std::string jsonl = dir + "/sweep_test_rows.jsonl";
  const std::string csv = dir + "/sweep_test_rows.csv";
  {
    SweepResultStore store;
    store.stream_jsonl(jsonl);
    store.write_csv_at_finish(csv);
    store.add(make_row(2, true));  // completion order != point order
    store.add(make_row(0, true));
    store.add(make_row(1, false));
    store.finish();
    ASSERT_EQ(store.rows().size(), 3u);
    EXPECT_EQ(store.rows()[0].index, 0u);  // finish() sorts by index
    EXPECT_EQ(store.rows()[2].index, 2u);
  }

  std::ifstream jf(jsonl);
  ASSERT_TRUE(jf.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(jf, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  // JSONL preserves completion order but carries the index.
  EXPECT_NE(lines[0].find("\"index\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"index\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[2].find("\\\"quotes\\\""), std::string::npos);

  std::ifstream cf(csv);
  ASSERT_TRUE(cf.good());
  std::vector<std::string> csv_lines;
  while (std::getline(cf, line)) csv_lines.push_back(line);
  ASSERT_EQ(csv_lines.size(), 4u);  // header + 3 rows in index order
  EXPECT_EQ(csv_lines[0].rfind("index,label,ok", 0), 0u);
  EXPECT_EQ(csv_lines[1].rfind("0,", 0), 0u);
  EXPECT_EQ(csv_lines[3].rfind("2,", 0), 0u);
  // The failed row's error was sanitized into a single record.
  EXPECT_EQ(std::count(csv_lines[2].begin(), csv_lines[2].end(), ','), 11);
}

TEST(SweepResultStore, FindRowMatchesAxisSubsets) {
  std::vector<SweepRow> rows{make_row(0, true), make_row(1, true)};
  rows[1].axis["policy"] = "unimem";
  EXPECT_EQ(find_row(rows, {{"policy", "unimem"}}), &rows[1]);
  EXPECT_EQ(find_row(rows, {{"workload", "cg"}}), &rows[0]);
  EXPECT_EQ(find_row(rows, {{"workload", "ft"}}), nullptr);
  EXPECT_EQ(find_row(rows, {{"no-such-axis", "x"}}), nullptr);
}

// ---- exp::Report serialization (the satellite this PR adds) ---------------

TEST(Report, CsvAndJsonlSerialization) {
  exp::Report rep("Sweep Report: unit");
  rep.set_header({"benchmark", "value"});
  rep.add_row({"cg", "1.25"});
  rep.add_row({"ft", "2.50"});
  EXPECT_EQ(rep.to_csv(), "benchmark,value\ncg,1.25\nft,2.50\n");
  const std::string jsonl = rep.to_jsonl();
  EXPECT_NE(jsonl.find("{\"report\":\"Sweep Report: unit\",\"benchmark\":"
                       "\"cg\",\"value\":\"1.25\"}"),
            std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(Report, SlugsAreFilesystemSafeAndUniquePerProcess) {
  exp::Report a("Fig. X: some sweep (1/2 BW)");
  EXPECT_EQ(a.slug(), "fig-x-some-sweep-1-2-bw");
  EXPECT_EQ(a.slug(), a.slug()) << "stable per report";
  exp::Report b("Fig. X: some sweep (1/2 BW)");
  EXPECT_EQ(b.slug(), "fig-x-some-sweep-1-2-bw-2") << "no clobbering";
}

TEST(Report, EnvDrivenPerReportFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string prefix = dir + "/report_env_test";
  ASSERT_EQ(setenv("UNIMEM_CSV", prefix.c_str(), 1), 0);
  ASSERT_EQ(setenv("UNIMEM_JSONL", prefix.c_str(), 1), 0);
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  {
    exp::Report rep("Env Report One");
    rep.set_header({"k"});
    rep.add_row({"v1"});
    rep.print(sink);
    exp::Report rep2("Env Report Two");
    rep2.set_header({"k"});
    rep2.add_row({"v2"});
    rep2.print(sink);
  }
  std::fclose(sink);
  unsetenv("UNIMEM_CSV");
  unsetenv("UNIMEM_JSONL");

  // Two reports, four files, nobody overwrote anybody.
  std::ifstream c1(prefix + "-env-report-one.csv");
  std::ifstream c2(prefix + "-env-report-two.csv");
  std::ifstream j1(prefix + "-env-report-one.jsonl");
  std::ifstream j2(prefix + "-env-report-two.jsonl");
  ASSERT_TRUE(c1.good());
  ASSERT_TRUE(c2.good());
  ASSERT_TRUE(j1.good());
  ASSERT_TRUE(j2.good());
  std::stringstream ss;
  ss << c1.rdbuf();
  EXPECT_EQ(ss.str(), "k\nv1\n");
  ss.str("");
  ss << j2.rdbuf();
  EXPECT_NE(ss.str().find("\"k\":\"v2\""), std::string::npos);
}

}  // namespace
}  // namespace unimem::sweep
