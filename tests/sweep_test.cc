// Sweep subsystem tests: spec expansion (cartesian order, axis collapse,
// filtering, smoke clamp), baseline memoization (key coverage,
// single-flight under concurrency), engine semantics (deterministic
// ordering, rank-bounded admission liveness, failure isolation), result
// serialization (JSONL/CSV), and the determinism regression the ISSUE
// demands: the same spec run with 1 and 8 jobs produces bitwise-identical
// time_s/checksum per point.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "experiments/report.h"
#include "sweep/baseline_cache.h"
#include "sweep/engine.h"
#include "sweep/result_store.h"
#include "sweep/spec.h"

namespace unimem::sweep {
namespace {

SweepSpec tiny_spec() {
  SweepSpec s;
  s.name = "tiny";
  s.workloads = {"cg", "ft"};
  s.policies = {exp::Policy::kNvmOnly, exp::Policy::kUnimem};
  s.nvm_bw_ratios = {0.5};
  s.cls = 'S';
  s.iterations = 2;
  s.nranks = 2;
  s.dram_capacities = {2 * kMiB};
  return s;
}

// ---- spec expansion -------------------------------------------------------

TEST(SweepSpec, CartesianExpansionIsStableAndLabeled) {
  SweepSpec s = *spec_by_name("fig13");
  const auto points = s.expand();
  // 7 workloads x (1 NVM-only with the DRAM axis collapsed + 3 Unimem
  // DRAM capacities).
  EXPECT_EQ(points.size(), 7u * 4u);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i);
  std::set<std::string> labels;
  for (const auto& p : points) labels.insert(p.label);
  EXPECT_EQ(labels.size(), points.size()) << "labels must be unique";
}

TEST(SweepSpec, InsensitiveAxesCollapsePerPolicy) {
  SweepSpec s = *spec_by_name("fig13");
  const auto points = s.expand();
  std::size_t nvm_points = 0;
  for (const auto& p : points) {
    if (p.axis.at("policy") == "nvm-only") {
      ++nvm_points;
      EXPECT_EQ(p.axis.at("dram"), "*");  // capacity-invariant timing
    } else {
      EXPECT_NE(p.axis.at("dram"), "*");
    }
  }
  EXPECT_EQ(nvm_points, 7u);
}

TEST(SweepSpec, TechniqueAxisOnlyMultipliesUnimemPoints) {
  SweepSpec s = *spec_by_name("fig11");
  const auto points = s.expand();
  EXPECT_EQ(points.size(), 7u * (1u + 4u));
  for (const auto& p : points) {
    if (p.axis.at("policy") == "unimem") {
      EXPECT_NE(p.axis.at("tech"), "*");
    } else {
      EXPECT_EQ(p.axis.at("tech"), "*");
    }
  }
}

TEST(SweepSpec, ProfilerAxisOnlyMultipliesUnimemPoints) {
  SweepSpec s = *spec_by_name("profiler_fidelity");
  const auto points = s.expand();
  // 7 workloads x 4 profiler periods, Unimem-only.
  EXPECT_EQ(points.size(), 7u * 4u);
  std::set<std::string> labels;
  for (const auto& p : points) {
    labels.insert(p.label);
    ASSERT_EQ(p.axis.at("policy"), "unimem");
    const std::string& prof = p.axis.at("prof");
    if (prof == "exact") {
      EXPECT_EQ(p.cfg.unimem.profiler_mode, rt::ProfilerMode::kExact);
    } else {
      ASSERT_EQ(prof[0], 's') << prof;
      EXPECT_EQ(p.cfg.unimem.profiler_mode, rt::ProfilerMode::kSampled);
      EXPECT_EQ(p.cfg.unimem.sample_period_mult,
                static_cast<std::uint64_t>(std::stoull(prof.substr(1))));
    }
  }
  EXPECT_EQ(labels.size(), points.size()) << "labels must be unique";

  // A policy that never profiles must collapse the axis instead of
  // multiplying its points.
  SweepSpec mixed = s;
  mixed.workloads = {"cg"};
  mixed.policies = {exp::Policy::kNvmOnly, exp::Policy::kUnimem};
  std::size_t nvm_points = 0;
  for (const auto& p : mixed.expand()) {
    if (p.axis.at("policy") == "nvm-only") {
      ++nvm_points;
      EXPECT_EQ(p.axis.at("prof"), "*");
    } else {
      EXPECT_NE(p.axis.at("prof"), "*");
    }
  }
  EXPECT_EQ(nvm_points, 1u);
}

TEST(SweepSpec, TopologyAxisExpandsAndCollapses) {
  SweepSpec s = *spec_by_name("tier_ladder");
  const auto points = s.expand();
  // 2 workloads x 2 policies x 3 topologies; both policies are
  // tier-sensitive, so nothing collapses.
  EXPECT_EQ(points.size(), 2u * 2u * 3u);
  std::set<std::string> slugs;
  for (const auto& p : points) {
    slugs.insert(p.axis.at("tiers"));
    if (p.axis.at("tiers") == "classic") {
      EXPECT_TRUE(p.cfg.tiers.empty());
    } else {
      EXPECT_FALSE(p.cfg.tiers.empty());
    }
  }
  EXPECT_EQ(slugs, (std::set<std::string>{"classic", "hbm2M-dram8M-nvm512M",
                                          "hbm2M-dram8M-cxl32M-nvm512M"}));

  // A DRAM-only policy ignores the ladder entirely (its machine runs at
  // DRAM speed everywhere): the axis collapses to the first topology.
  SweepSpec mixed = s;
  mixed.workloads = {"cg"};
  mixed.policies = {exp::Policy::kDramOnly, exp::Policy::kUnimem};
  std::size_t dram_points = 0;
  for (const auto& p : mixed.expand()) {
    if (p.axis.at("policy") == "dram-only") {
      ++dram_points;
      EXPECT_EQ(p.axis.at("tiers"), "*");
      EXPECT_EQ(p.cfg.tiers, mixed.topologies.front());
    } else {
      EXPECT_NE(p.axis.at("tiers"), "*");
    }
  }
  EXPECT_EQ(dram_points, 1u);
}

TEST(SweepSpec, TierSensitivity3IsAFig13ShapedGrid) {
  SweepSpec s = *spec_by_name("tier_sensitivity3");
  const auto points = s.expand();
  EXPECT_EQ(points.size(), 3u * 2u * 3u);
  for (const auto& p : points) {
    // Every point runs an explicit 3-tier ladder (no classic rung here).
    ASSERT_FALSE(p.cfg.tiers.empty()) << p.label;
    EXPECT_EQ(p.cfg.tiers.find("hbm:"), 0u) << p.label;
  }
}

TEST(SweepSpec, AxisNamesReportTheVariedAxes) {
  EXPECT_EQ(spec_by_name("fig13")->axis_names(),
            (std::vector<std::string>{"workload", "policy", "dram"}));
  EXPECT_EQ(spec_by_name("tier_ladder")->axis_names(),
            (std::vector<std::string>{"workload", "policy", "tiers"}));
  EXPECT_EQ(spec_by_name("table4")->axis_names(),
            (std::vector<std::string>{"workload"}));
  // Explicit-only specs report their per-point pivot keys, sorted.
  EXPECT_EQ(spec_by_name("fig12")->axis_names(),
            (std::vector<std::string>{"ranks"}));
  EXPECT_EQ(spec_by_name("fig4")->axis_names(),
            (std::vector<std::string>{"cls", "nvm", "placement"}));
}

TEST(SweepSpec, FilterKeepsOriginalIndices) {
  SweepSpec s = *spec_by_name("fig2");
  const auto all = s.expand();
  const auto filtered = s.expand("lu/");
  ASSERT_FALSE(filtered.empty());
  EXPECT_LT(filtered.size(), all.size());
  for (const auto& p : filtered) {
    EXPECT_NE(p.label.find("lu/"), std::string::npos);
    EXPECT_EQ(all[p.index].label, p.label);  // index survives filtering
  }
}

TEST(SweepSpec, SmokeClampShrinksTheProblem) {
  SweepSpec s = *spec_by_name("fig11");
  SweepSpec clamped = smoke_clamped(s);
  EXPECT_EQ(clamped.cls, 'S');
  EXPECT_LE(clamped.iterations, 3);
  EXPECT_LE(clamped.nranks, 2);
  EXPECT_EQ(clamped.size(), s.size()) << "smoke shrinks points, not the grid";
}

TEST(SweepSpec, SmokeClampAlsoClampsExplicitPoints) {
  // The explicit-points specs carry per-point configs (fig4's manual
  // placements, fig12's 16-rank rows) that bypass the spec-level scalars;
  // the smoke clamp must reach into each of them or sweep-smoke runs the
  // full problem.
  for (const char* name : {"fig4", "fig12"}) {
    SweepSpec clamped = smoke_clamped(*spec_by_name(name));
    ASSERT_FALSE(clamped.explicit_points.empty()) << name;
    for (const auto& e : clamped.explicit_points) {
      EXPECT_EQ(e.cfg.wcfg.cls, 'S') << e.label;
      EXPECT_LE(e.cfg.wcfg.iterations, 3) << e.label;
      EXPECT_LE(e.cfg.wcfg.nranks, 2) << e.label;
    }
    EXPECT_EQ(clamped.size(), spec_by_name(name)->size())
        << "smoke shrinks points, not the table shape";
  }
}

TEST(SweepSpec, EveryRegisteredSpecExpands) {
  EXPECT_EQ(spec_names().size(), 15u);
  for (const std::string& name : spec_names()) {
    auto s = spec_by_name(name);
    ASSERT_TRUE(s.has_value()) << name;
    // Smallest real figure sweep is table4's 7 Unimem points.
    EXPECT_GE(s->size(), 7u) << name;
  }
  EXPECT_FALSE(spec_by_name("no-such-spec").has_value());
}

TEST(SweepSpec, ExplicitPointsAppendAfterGridWithUniqueLabels) {
  SweepSpec s = tiny_spec();  // 4 grid points
  SweepSpec::ExplicitPoint e;
  e.cfg.workload = "mg";
  e.cfg.wcfg.cls = 'S';
  e.cfg.policy = exp::Policy::kManual;
  e.cfg.manual_dram = {"u"};
  e.label = "mg/manual/extra1";
  e.axis = {{"placement", "u"}, {"policy", "overridden"}};
  s.explicit_points.push_back(e);
  e.label = "mg/manual/extra2";
  e.axis = {{"placement", "v"}};
  s.explicit_points.push_back(e);

  const auto points = s.expand();
  ASSERT_EQ(points.size(), 6u);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i) << "explicit indices continue the grid's";
  std::set<std::string> labels;
  for (const auto& p : points) labels.insert(p.label);
  EXPECT_EQ(labels.size(), points.size()) << "labels must be unique";

  // Explicit points land after every grid point, carry their full config,
  // and merge custom axis values over the automatic workload/policy keys.
  const SweepPoint& x = points[4];
  EXPECT_EQ(x.label, "mg/manual/extra1");
  EXPECT_EQ(x.cfg.workload, "mg");
  EXPECT_EQ(x.cfg.manual_dram, std::vector<std::string>{"u"});
  EXPECT_EQ(x.axis.at("workload"), "mg");
  EXPECT_EQ(x.axis.at("placement"), "u");
  EXPECT_EQ(x.axis.at("policy"), "overridden") << "custom axis wins";
  EXPECT_EQ(points[5].axis.at("policy"), "manual") << "auto key by default";
}

TEST(SweepSpec, Fig4SpecVariesManualPlacementsPerPoint) {
  SweepSpec s = *spec_by_name("fig4");
  const auto points = s.expand();
  // {C,D} x {bw0.5,lat4} x (3 placements + nvm-only), explicit-only.
  ASSERT_EQ(points.size(), 16u);
  EXPECT_TRUE(s.workloads.empty()) << "no grid points";
  std::size_t manual = 0;
  for (const auto& p : points) {
    EXPECT_EQ(p.cfg.workload, "sp");
    EXPECT_TRUE(p.normalize);
    ASSERT_TRUE(p.axis.count("cls") && p.axis.count("nvm") &&
                p.axis.count("placement"))
        << p.label;
    if (p.axis.at("policy") == "manual") {
      ++manual;
      EXPECT_FALSE(p.cfg.manual_dram.empty()) << p.label;
    } else {
      EXPECT_EQ(p.axis.at("policy"), "nvm-only");
      EXPECT_TRUE(p.cfg.manual_dram.empty()) << p.label;
    }
  }
  EXPECT_EQ(manual, 12u);
}

TEST(SweepSpec, Fig12SpecVariesRanksPerPoint) {
  SweepSpec s = *spec_by_name("fig12");
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 8u);
  std::set<int> ranks;
  for (const auto& p : points) {
    EXPECT_EQ(p.cfg.workload, "cg");
    EXPECT_EQ(p.cfg.wcfg.cls, 'D');
    EXPECT_EQ(p.axis.at("ranks"), std::to_string(p.cfg.wcfg.nranks));
    ranks.insert(p.cfg.wcfg.nranks);
  }
  EXPECT_EQ(ranks, (std::set<int>{2, 4, 8, 16}));
}

TEST(SweepSpec, FilterKeepsOriginalIndicesForExplicitPoints) {
  SweepSpec s = *spec_by_name("fig4");
  const auto all = s.expand();
  const auto filtered = s.expand("/lhs");
  ASSERT_EQ(filtered.size(), 4u);  // one per (cls, nvm) group
  for (const auto& p : filtered) {
    EXPECT_NE(p.label.find("/lhs"), std::string::npos);
    EXPECT_EQ(all[p.index].label, p.label) << "index survives filtering";
  }
}

TEST(SweepSpec, ShardSlicesPartitionTheExpansionExactly) {
  for (const char* name : {"fig4", "fig12", "fig13", "table4"}) {
    const auto all = spec_by_name(name)->expand();
    for (int n : {1, 2, 3, 4, 7, 16}) {
      std::vector<std::size_t> seen;
      for (int i = 0; i < n; ++i) {
        const auto slice = shard_slice(all, i, n);
        std::size_t prev_index = 0;
        for (std::size_t k = 0; k < slice.size(); ++k) {
          // Slices preserve expansion order and original indices/labels.
          if (k > 0) {
            EXPECT_GT(slice[k].index, prev_index);
          }
          prev_index = slice[k].index;
          EXPECT_EQ(all[slice[k].index].label, slice[k].label);
          seen.push_back(slice[k].index);
        }
      }
      // No overlap, no gap: the N slices are exactly the expansion.
      std::sort(seen.begin(), seen.end());
      ASSERT_EQ(seen.size(), all.size()) << name << " N=" << n;
      for (std::size_t k = 0; k < seen.size(); ++k)
        EXPECT_EQ(seen[k], all[k].index);
    }
  }
  const auto all = spec_by_name("fig12")->expand();
  EXPECT_THROW(shard_slice(all, 0, 0), std::invalid_argument);
  EXPECT_THROW(shard_slice(all, -1, 2), std::invalid_argument);
  EXPECT_THROW(shard_slice(all, 2, 2), std::invalid_argument);
}

TEST(SweepSpec, ShardSlicesKeepBaselineGroupsTogether) {
  // As long as there are at least as many baseline groups as shards,
  // every group lands whole on one shard, so no shard recomputes a
  // neighbor's DRAM-only baseline (fig12: the nvm-only and unimem rows
  // of one rank count travel together).
  const auto all = spec_by_name("fig12")->expand();
  for (int n : {2, 4}) {
    std::map<std::string, int> shard_of_key;
    for (int i = 0; i < n; ++i)
      for (const auto& p : shard_slice(all, i, n)) {
        const std::string key = BaselineService::key(p.cfg);
        auto [it, fresh] = shard_of_key.emplace(key, i);
        EXPECT_EQ(it->second, i) << p.label << " split its baseline group";
      }
    EXPECT_EQ(shard_of_key.size(), 4u) << "one group per rank count";
  }
  // More shards than groups: falls back to per-point dealing so shards
  // do not sit idle (fig12 has 4 groups; 8 shards still all get a point).
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(shard_slice(all, i, 8).size(), 1u);
}

// ---- baseline service -----------------------------------------------------

TEST(BaselineService, KeyCoversTimingFieldsAndIgnoresNvmAxes) {
  exp::RunConfig a;
  a.workload = "cg";
  const std::string base = BaselineService::key(a);

  // Invariant axes: a DRAM-only run's time does not depend on these.
  exp::RunConfig b = a;
  b.nvm_bw_ratio = 0.125;
  b.nvm_lat_mult = 8.0;
  b.dram_capacity = 4 * kMiB;
  b.policy = exp::Policy::kUnimem;
  b.unimem.enable_chunking = false;
  EXPECT_EQ(BaselineService::key(b), base);

  // Sensitive fields: each must produce a distinct key.
  auto differs = [&](auto&& mutate) {
    exp::RunConfig c = a;
    mutate(c);
    return BaselineService::key(c) != base;
  };
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.workload = "ft"; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.wcfg.cls = 'A'; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.wcfg.iterations = 3; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.wcfg.nranks = 8; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.ranks_per_node = 2; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.net.alpha_s = 5e-6; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.net.beta_bps = 1e9; }));
  EXPECT_TRUE(
      differs([](exp::RunConfig& c) { c.unimem.timing.cpu_freq_hz = 3e9; }));
  EXPECT_TRUE(
      differs([](exp::RunConfig& c) { c.unimem.cache.size_bytes = 1 << 19; }));
  EXPECT_TRUE(differs([](exp::RunConfig& c) { c.unimem.use_exact_cache = true; }));
}

TEST(BaselineService, KeyIsShardStableAcrossPolicyVariants) {
  // Shard stability: every point of a figure group must resolve to the
  // same baseline key no matter which shard (process) computes it, so
  // normalization never depends on the expansion's partition.  fig4: a
  // manual-placement point and its nvm-only reference share one key;
  // fig12: the nvm-only and unimem points of one rank count share one
  // key, and different rank counts do not.
  const auto fig4 = spec_by_name("fig4")->expand();
  ASSERT_EQ(fig4.size(), 16u);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_EQ(BaselineService::key(fig4[i].cfg), BaselineService::key(fig4[0].cfg))
        << fig4[i].label;

  const auto fig12 = spec_by_name("fig12")->expand();
  ASSERT_EQ(fig12.size(), 8u);
  EXPECT_EQ(BaselineService::key(fig12[0].cfg), BaselineService::key(fig12[1].cfg));
  EXPECT_NE(BaselineService::key(fig12[0].cfg), BaselineService::key(fig12[2].cfg))
      << "distinct rank counts need distinct baselines";
}

TEST(BaselineService, SingleFlightUnderConcurrentRequests) {
  std::atomic<int> runs{0};
  BaselineService svc([&](const exp::RunConfig& cfg) {
    runs.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    exp::RunResult r;
    r.time_s = 1.0 + cfg.nvm_bw_ratio;  // any deterministic value
    return r;
  });

  exp::RunConfig cfg;
  cfg.workload = "cg";
  std::vector<std::thread> threads;
  std::vector<double> seen(8, 0.0);
  for (int i = 0; i < 8; ++i)
    threads.emplace_back(
        [&, i] { seen[i] = svc.dram_baseline(cfg).time_s; });
  for (auto& t : threads) t.join();

  EXPECT_EQ(runs.load(), 1) << "one computation serves all waiters";
  EXPECT_EQ(svc.computed(), 1u);
  EXPECT_EQ(svc.requests(), 8u);
  for (double v : seen) EXPECT_EQ(v, seen[0]);

  exp::RunConfig other = cfg;
  other.workload = "ft";
  svc.dram_baseline(other);
  EXPECT_EQ(svc.computed(), 2u);
}

TEST(BaselineService, PropagatesFailuresToEveryWaiter) {
  BaselineService svc([](const exp::RunConfig&) -> exp::RunResult {
    throw std::runtime_error("baseline boom");
  });
  exp::RunConfig cfg;
  cfg.workload = "cg";
  EXPECT_THROW(svc.dram_baseline(cfg), std::runtime_error);
  // The failure is cached; a second request rethrows without recomputing.
  EXPECT_THROW(svc.dram_baseline(cfg), std::runtime_error);
  EXPECT_EQ(svc.computed(), 1u);
}

// ---- engine ---------------------------------------------------------------

TEST(SweepEngine, RunsABatchInPointOrderWithMemoizedBaselines) {
  SweepSpec s = tiny_spec();
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 4u);  // {cg,ft} x {nvm-only,unimem}

  std::vector<std::size_t> completion_order;
  EngineOptions opts;
  opts.jobs = 4;
  opts.on_result = [&](const SweepRow& row) {
    completion_order.push_back(row.index);
  };
  SweepEngine engine(opts);
  const SweepOutcome out = engine.run(points);

  ASSERT_EQ(out.rows.size(), points.size());
  EXPECT_EQ(out.failed, 0u);
  EXPECT_EQ(completion_order.size(), points.size());
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    const SweepRow& r = out.rows[i];
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_EQ(r.index, points[i].index) << "rows land in point order";
    EXPECT_EQ(r.label, points[i].label);
    EXPECT_GT(r.result.time_s, 0.0);
    EXPECT_GT(r.baseline_time_s, 0.0);
    EXPECT_GT(r.normalized, 0.0);
    // Nothing meaningfully beats the DRAM-only machine (Unimem is allowed
    // the same 2% modeling slack integration_test grants it).
    EXPECT_GE(r.normalized, 0.98) << r.label;
  }
  // One DRAM-only baseline per workload, shared by both policies.
  EXPECT_EQ(out.baseline_requests, 4u);
  EXPECT_EQ(out.baseline_computed, 2u);
  EXPECT_EQ(out.worlds_executed, 4u + 2u);
}

TEST(SweepEngine, JobWiderThanTheRankBudgetStillRuns) {
  SweepSpec s = tiny_spec();
  s.workloads = {"cg"};
  s.policies = {exp::Policy::kNvmOnly};
  s.nranks = 4;  // wider than the 2-rank budget below
  EngineOptions opts;
  opts.jobs = 4;
  opts.max_inflight_ranks = 2;
  SweepEngine engine(opts);
  const SweepOutcome out = engine.run(s.expand());
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_TRUE(out.rows[0].ok) << out.rows[0].error;
}

TEST(SweepEngine, FailingPointsAreIsolated) {
  SweepSpec s = tiny_spec();
  s.policies = {exp::Policy::kNvmOnly};
  SweepSpec::ExplicitPoint bad;
  bad.label = "bogus/point";
  bad.cfg.workload = "bogus";
  bad.cfg.wcfg.cls = 'S';
  bad.cfg.wcfg.iterations = 1;
  bad.cfg.wcfg.nranks = 1;
  bad.normalize = true;  // the baseline itself throws -> isolated too
  s.explicit_points.push_back(bad);

  EngineOptions opts;
  opts.jobs = 3;
  SweepEngine engine(opts);
  const SweepOutcome out = engine.run(s.expand());

  ASSERT_EQ(out.rows.size(), 3u);  // cg, ft, bogus
  EXPECT_EQ(out.failed, 1u);
  EXPECT_TRUE(out.rows[0].ok);
  EXPECT_TRUE(out.rows[1].ok);
  EXPECT_FALSE(out.rows[2].ok);
  EXPECT_NE(out.rows[2].error.find("unknown workload"), std::string::npos)
      << out.rows[2].error;
}

// The determinism regression: the same SweepSpec run with --jobs 1 and
// --jobs 8 produces bitwise-identical time_s/checksum per point.  This is
// what flushes out hidden shared mutable state between concurrent Worlds.
TEST(SweepEngine, SweepDeterminismAcrossJobCounts) {
  SweepSpec s = tiny_spec();
  s.workloads = {"cg", "mg"};
  s.nvm_bw_ratios = {0.5, 0.25};
  s.iterations = 3;
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 8u);

  EngineOptions serial;
  serial.jobs = 1;
  SweepEngine e1(serial);
  const SweepOutcome a = e1.run(points);

  EngineOptions wide;
  wide.jobs = 8;
  SweepEngine e8(wide);
  const SweepOutcome b = e8.run(points);

  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.failed, 0u);
  EXPECT_EQ(b.failed, 0u);
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    SCOPED_TRACE(a.rows[i].label);
    // Bitwise, not approximate: placement decisions, migration schedules
    // and virtual-time accounting must not feel neighboring Worlds.
    EXPECT_EQ(a.rows[i].result.time_s, b.rows[i].result.time_s);
    EXPECT_EQ(a.rows[i].result.checksum, b.rows[i].result.checksum);
    EXPECT_EQ(a.rows[i].baseline_time_s, b.rows[i].baseline_time_s);
    EXPECT_EQ(a.rows[i].normalized, b.rows[i].normalized);
    EXPECT_EQ(a.rows[i].result.total_migrations,
              b.rows[i].result.total_migrations);
  }
}

// The exact cache model is address-sensitive (set indexing by line
// address), so this config would catch any arena offset that depends on
// helper-thread timing — the zombie-free race the per-tier quiescing in
// MigrationEngine exists to prevent.  Tight DRAM maximizes churn.
TEST(SweepEngine, DeterministicWithExactCacheAndTightDram) {
  SweepSpec s = tiny_spec();
  s.workloads = {"nek", "cg"};
  s.policies = {exp::Policy::kUnimem};
  s.iterations = 4;
  s.dram_capacities = {kMiB};
  s.unimem.use_exact_cache = true;
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 2u);

  auto run_with_jobs = [&](int jobs) {
    EngineOptions o;
    o.jobs = jobs;
    SweepEngine e(o);
    return e.run(points);
  };
  const SweepOutcome a = run_with_jobs(1);
  const SweepOutcome b = run_with_jobs(4);
  const SweepOutcome c = run_with_jobs(1);  // cross-run, not just cross-jobs

  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_TRUE(a.rows[i].ok) << a.rows[i].error;
    EXPECT_EQ(a.rows[i].result.time_s, b.rows[i].result.time_s);
    EXPECT_EQ(a.rows[i].result.time_s, c.rows[i].result.time_s);
    EXPECT_EQ(a.rows[i].result.checksum, b.rows[i].result.checksum);
    EXPECT_EQ(a.rows[i].result.total_migrations,
              b.rows[i].result.total_migrations);
    EXPECT_EQ(a.rows[i].result.total_migrations,
              c.rows[i].result.total_migrations);
  }
}

// ---- golden determinism across execution topologies -----------------------

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Run `points` through one engine into CSV + point-ordered JSONL files;
/// returns {csv, jsonl} contents.
std::pair<std::string, std::string> run_to_files(
    const std::vector<SweepPoint>& points, int jobs, const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string csv = dir + "/golden_" + tag + ".csv";
  const std::string jsonl = dir + "/golden_" + tag + ".jsonl";
  SweepResultStore store;
  store.write_csv_at_finish(csv);
  store.write_jsonl_at_finish(jsonl);
  EngineOptions opts;
  opts.jobs = jobs;
  opts.on_result = [&](const SweepRow& row) { store.add(row); };
  SweepEngine engine(opts);
  engine.run(points);
  store.finish();
  return {slurp(csv), slurp(jsonl)};
}

}  // namespace

// The archetype headline: PR 3's determinism invariant as a ctest, not a
// promise.  The fig12 and fig4 specs (explicit points with per-point
// nranks / manual_dram) run three ways — serial, 4-way threaded, and as a
// 2-way shard partition whose JSONL halves are merged back — and all
// three must produce byte-identical CSV/JSONL artifacts.
TEST(SweepGoldenDeterminism, Fig12AndFig4AcrossJobsAndShards) {
  for (const char* name : {"fig12", "fig4"}) {
    SCOPED_TRACE(name);
    const SweepSpec spec = smoke_clamped(*spec_by_name(name));
    const auto points = spec.expand();

    const auto [csv1, jsonl1] = run_to_files(points, 1, std::string(name) + "_j1");
    const auto [csv4, jsonl4] = run_to_files(points, 4, std::string(name) + "_j4");
    EXPECT_EQ(csv1, csv4);
    EXPECT_EQ(jsonl1, jsonl4);

    // 2-way sharded: each shard gets its own engine AND its own baseline
    // service (as separate processes would), streams its slice to JSONL;
    // the merge stitches the halves back into point order.
    const std::string dir = ::testing::TempDir();
    std::vector<std::string> shard_files;
    for (int shard = 0; shard < 2; ++shard) {
      const std::string path = dir + "/golden_" + name + "_shard" +
                               std::to_string(shard) + ".jsonl";
      SweepResultStore store;
      store.stream_jsonl(path);
      EngineOptions opts;
      opts.jobs = 2;
      opts.on_result = [&](const SweepRow& row) { store.add(row); };
      SweepEngine engine(opts);
      engine.run(shard_slice(points, shard, 2));
      store.finish();
      shard_files.push_back(path);
    }
    const std::string csv_m = dir + "/golden_" + name + "_merged.csv";
    const std::string jsonl_m = dir + "/golden_" + name + "_merged.jsonl";
    SweepResultStore merged;
    merged.write_csv_at_finish(csv_m);
    merged.write_jsonl_at_finish(jsonl_m);
    for (const SweepRow& r : merge_shards(shard_files)) merged.add(r);
    merged.finish();
    EXPECT_EQ(csv1, slurp(csv_m));
    EXPECT_EQ(jsonl1, slurp(jsonl_m));
  }
}

// Sampled profiling moves attribution onto a background thread; the
// determinism contract (sampling schedules seeded per (rank, phase, epoch),
// adaptive-rate updates only at drain barriers) must keep sweep artifacts a
// pure function of the spec.  One exact + one sampled point per workload of
// the smoke-clamped profiler_fidelity spec, run serial / 4-way threaded /
// 2-way sharded-and-merged — byte-identical every way.
TEST(SweepGoldenDeterminism, SampledProfilerAcrossJobsAndShards) {
  SweepSpec spec = smoke_clamped(*spec_by_name("profiler_fidelity"));
  spec.profiler_periods = {0, 64};  // exact + one sampled period per workload
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 7u * 2u);

  const auto [csv1, jsonl1] = run_to_files(points, 1, "proffid_j1");
  const auto [csv4, jsonl4] = run_to_files(points, 4, "proffid_j4");
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);

  const std::string dir = ::testing::TempDir();
  std::vector<std::string> shard_files;
  for (int shard = 0; shard < 2; ++shard) {
    const std::string path =
        dir + "/golden_proffid_shard" + std::to_string(shard) + ".jsonl";
    SweepResultStore store;
    store.stream_jsonl(path);
    EngineOptions opts;
    opts.jobs = 2;
    opts.on_result = [&](const SweepRow& row) { store.add(row); };
    SweepEngine engine(opts);
    engine.run(shard_slice(points, shard, 2));
    store.finish();
    shard_files.push_back(path);
  }
  const std::string csv_m = dir + "/golden_proffid_merged.csv";
  const std::string jsonl_m = dir + "/golden_proffid_merged.jsonl";
  SweepResultStore merged;
  merged.write_csv_at_finish(csv_m);
  merged.write_jsonl_at_finish(jsonl_m);
  for (const SweepRow& r : merge_shards(shard_files)) merged.add(r);
  merged.finish();
  EXPECT_EQ(csv1, slurp(csv_m));
  EXPECT_EQ(jsonl1, slurp(jsonl_m));
}

// Slack-scheduled migration triggers consult the cross-rank phase DAG,
// which is exchanged over extra allreduces at the iteration top — a new
// place where thread scheduling could leak into results.  The dag_slack
// spec (off + slack points) must stay a pure function of the spec across
// serial / 4-way threaded / 2-way sharded-and-merged execution, and
// pinning dag_schedule=off must leave no trace in labels or results (the
// collapsed axis is how every pre-existing spec runs).
TEST(SweepGoldenDeterminism, DagSlackAcrossJobsAndShards) {
  const SweepSpec spec = smoke_clamped(*spec_by_name("dag_slack"));
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 2u * 3u * 2u);  // {nek,lu} x drams x {off,slack}

  const auto [csv1, jsonl1] = run_to_files(points, 1, "dag_j1");
  const auto [csv4, jsonl4] = run_to_files(points, 4, "dag_j4");
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(jsonl1, jsonl4);

  const std::string dir = ::testing::TempDir();
  std::vector<std::string> shard_files;
  for (int shard = 0; shard < 2; ++shard) {
    const std::string path =
        dir + "/golden_dag_shard" + std::to_string(shard) + ".jsonl";
    SweepResultStore store;
    store.stream_jsonl(path);
    EngineOptions opts;
    opts.jobs = 2;
    opts.on_result = [&](const SweepRow& row) { store.add(row); };
    SweepEngine engine(opts);
    engine.run(shard_slice(points, shard, 2));
    store.finish();
    shard_files.push_back(path);
  }
  const std::string csv_m = dir + "/golden_dag_merged.csv";
  const std::string jsonl_m = dir + "/golden_dag_merged.jsonl";
  SweepResultStore merged;
  merged.write_csv_at_finish(csv_m);
  merged.write_jsonl_at_finish(jsonl_m);
  for (const SweepRow& r : merge_shards(shard_files)) merged.add(r);
  merged.finish();
  EXPECT_EQ(csv1, slurp(csv_m));
  EXPECT_EQ(jsonl1, slurp(jsonl_m));

  // Off pin: collapsing the axis (the --dag off CLI path) drops the axis
  // key from every label and reproduces the two-value run's off rows
  // field-for-field — the off path is byte-identical to a dag-unaware
  // spec.
  SweepSpec off_spec = spec;
  off_spec.dag_schedules = {rt::DagSchedule::kOff};
  const auto off_points = off_spec.expand();
  ASSERT_EQ(off_points.size(), points.size() / 2);
  EngineOptions oopts;
  oopts.jobs = 1;
  std::vector<SweepRow> off_rows;
  oopts.on_result = [&](const SweepRow& row) { off_rows.push_back(row); };
  SweepEngine oengine(oopts);
  oengine.run(off_points);
  std::sort(off_rows.begin(), off_rows.end(),
            [](const SweepRow& a, const SweepRow& b) { return a.index < b.index; });
  SweepResultStore two_store;
  std::vector<SweepRow> two_rows;
  EngineOptions topts;
  topts.jobs = 1;
  topts.on_result = [&](const SweepRow& row) { two_rows.push_back(row); };
  SweepEngine tengine(topts);
  tengine.run(points);
  std::sort(two_rows.begin(), two_rows.end(),
            [](const SweepRow& a, const SweepRow& b) { return a.index < b.index; });
  std::size_t oi = 0;
  for (const SweepRow& r : two_rows) {
    auto it = r.axis.find("dag");
    ASSERT_NE(it, r.axis.end());
    if (it->second != "off") continue;
    ASSERT_LT(oi, off_rows.size());
    const SweepRow& o = off_rows[oi++];
    SCOPED_TRACE(r.label);
    EXPECT_EQ(o.axis.count("dag"), 0u);          // collapsed axis: no key
    EXPECT_EQ(r.label, o.label + "/dagoff");     // only the label suffix differs
    EXPECT_TRUE(o.ok) << o.error;
    EXPECT_EQ(o.result.time_s, r.result.time_s);
    EXPECT_EQ(o.result.checksum, r.result.checksum);
    EXPECT_EQ(o.result.total_migrations, r.result.total_migrations);
    EXPECT_EQ(o.result.total_bytes_moved, r.result.total_bytes_moved);
  }
  EXPECT_EQ(oi, off_rows.size());
}

// ---- result store ---------------------------------------------------------

SweepRow make_row(std::size_t index, bool ok) {
  SweepRow r;
  r.index = index;
  r.label = "cg/nvm-only/bw0.5#" + std::to_string(index);
  r.axis = {{"workload", "cg"}, {"policy", "nvm-only"}};
  r.ok = ok;
  if (!ok) r.error = "boom, with \"quotes\"";
  r.result.time_s = 0.125 * static_cast<double>(index + 1);
  r.result.checksum = 42.5;
  r.baseline_time_s = 0.125;
  r.normalized = static_cast<double>(index + 1);
  return r;
}

TEST(SweepResultStore, StreamsJsonlAndWritesSortedCsv) {
  const std::string dir = ::testing::TempDir();
  const std::string jsonl = dir + "/sweep_test_rows.jsonl";
  const std::string csv = dir + "/sweep_test_rows.csv";
  {
    SweepResultStore store;
    store.stream_jsonl(jsonl);
    store.write_csv_at_finish(csv);
    store.add(make_row(2, true));  // completion order != point order
    store.add(make_row(0, true));
    store.add(make_row(1, false));
    store.finish();
    ASSERT_EQ(store.rows().size(), 3u);
    EXPECT_EQ(store.rows()[0].index, 0u);  // finish() sorts by index
    EXPECT_EQ(store.rows()[2].index, 2u);
  }

  std::ifstream jf(jsonl);
  ASSERT_TRUE(jf.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(jf, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  // JSONL preserves completion order but carries the index.
  EXPECT_NE(lines[0].find("\"index\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"index\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[2].find("\\\"quotes\\\""), std::string::npos);

  std::ifstream cf(csv);
  ASSERT_TRUE(cf.good());
  std::vector<std::string> csv_lines;
  while (std::getline(cf, line)) csv_lines.push_back(line);
  ASSERT_EQ(csv_lines.size(), 4u);  // header + 3 rows in index order
  EXPECT_EQ(csv_lines[0].rfind("index,label,ok", 0), 0u);
  EXPECT_EQ(csv_lines[1].rfind("0,", 0), 0u);
  EXPECT_EQ(csv_lines[3].rfind("2,", 0), 0u);
  // The failed row's error was sanitized into a single record.
  EXPECT_EQ(std::count(csv_lines[2].begin(), csv_lines[2].end(), ','), 11);
}

TEST(SweepResultStore, JsonlRoundTripsExactly) {
  // parse_jsonl_line is the merge path's foundation: every row shape the
  // store can emit must reconstruct bit-identically (doubles included —
  // %.17g round-trips through strtod) and re-serialize to the same bytes.
  SweepRow normalized = make_row(3, true);
  SweepRow failed = make_row(7, false);  // error with escaped quotes
  failed.error += "\nsecond line\tand tab";
  SweepRow raw = make_row(0, true);  // no baseline -> fields omitted
  raw.baseline_time_s = 0;
  raw.normalized = 0;
  raw.axis.clear();
  for (const SweepRow& r : {normalized, failed, raw}) {
    const std::string line = SweepResultStore::jsonl_line(r);
    const SweepRow back = parse_jsonl_line(line);
    EXPECT_EQ(back.index, r.index);
    EXPECT_EQ(back.label, r.label);
    EXPECT_EQ(back.axis, r.axis);
    EXPECT_EQ(back.ok, r.ok);
    EXPECT_EQ(back.error, r.error);
    EXPECT_EQ(back.result.time_s, r.result.time_s);
    EXPECT_EQ(back.result.checksum, r.result.checksum);
    EXPECT_EQ(back.baseline_time_s, r.baseline_time_s);
    EXPECT_EQ(back.normalized, r.normalized);
    EXPECT_EQ(SweepResultStore::jsonl_line(back), line) << "byte round-trip";
  }
  EXPECT_THROW(parse_jsonl_line(""), std::runtime_error);
  EXPECT_THROW(parse_jsonl_line("{\"index\":oops"), std::runtime_error);
  EXPECT_THROW(
      parse_jsonl_line(SweepResultStore::jsonl_line(raw) + "trailing"),
      std::runtime_error);
}

TEST(SweepResultStore, FailureRowsStreamMergeAndStayPointOrdered) {
  // A point whose run throws must still produce a well-formed JSONL
  // record that survives the shard merge, and the merged CSV must keep
  // the failed row at its point position.
  SweepSpec s = tiny_spec();
  s.workloads = {"cg", "bogus", "ft"};  // point 1 of 3 fails
  s.policies = {exp::Policy::kNvmOnly};
  s.normalize = false;
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 3u);

  const std::string dir = ::testing::TempDir();
  std::vector<std::string> shard_files;
  for (int shard = 0; shard < 2; ++shard) {
    const std::string path =
        dir + "/failrow_shard" + std::to_string(shard) + ".jsonl";
    SweepResultStore store;
    store.stream_jsonl(path);
    EngineOptions opts;
    opts.jobs = 2;
    opts.on_result = [&](const SweepRow& row) { store.add(row); };
    SweepEngine engine(opts);
    engine.run(shard_slice(points, shard, 2));
    store.finish();
    shard_files.push_back(path);
  }

  const std::vector<SweepRow> rows = merge_shards(shard_files);
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(rows[i].index, i) << "merged rows are point-ordered";
  EXPECT_TRUE(rows[0].ok);
  EXPECT_FALSE(rows[1].ok);
  EXPECT_NE(rows[1].error.find("unknown workload"), std::string::npos);
  EXPECT_TRUE(rows[2].ok);

  const std::string csv_path = dir + "/failrow_merged.csv";
  SweepResultStore merged;
  merged.write_csv_at_finish(csv_path);
  for (const SweepRow& r : rows) merged.add(r);
  merged.finish();
  std::ifstream cf(csv_path);
  ASSERT_TRUE(cf.good());
  std::string line;
  std::vector<std::string> csv_lines;
  while (std::getline(cf, line)) csv_lines.push_back(line);
  ASSERT_EQ(csv_lines.size(), 4u);
  EXPECT_EQ(csv_lines[2].rfind("1,", 0), 0u) << "failed row keeps its slot";
  EXPECT_NE(csv_lines[2].find(",0,"), std::string::npos);  // ok=0

  // Overlapping shard inputs (not a partition) are rejected loudly.
  EXPECT_THROW(merge_shards({shard_files[0], shard_files[0]}),
               std::runtime_error);
}

TEST(SweepResultStore, FindRowMatchesAxisSubsets) {
  std::vector<SweepRow> rows{make_row(0, true), make_row(1, true)};
  rows[1].axis["policy"] = "unimem";
  EXPECT_EQ(find_row(rows, {{"policy", "unimem"}}), &rows[1]);
  EXPECT_EQ(find_row(rows, {{"workload", "cg"}}), &rows[0]);
  EXPECT_EQ(find_row(rows, {{"workload", "ft"}}), nullptr);
  EXPECT_EQ(find_row(rows, {{"no-such-axis", "x"}}), nullptr);
}

// ---- exp::Report serialization (the satellite this PR adds) ---------------

TEST(Report, CsvAndJsonlSerialization) {
  exp::Report rep("Sweep Report: unit");
  rep.set_header({"benchmark", "value"});
  rep.add_row({"cg", "1.25"});
  rep.add_row({"ft", "2.50"});
  EXPECT_EQ(rep.to_csv(), "benchmark,value\ncg,1.25\nft,2.50\n");
  const std::string jsonl = rep.to_jsonl();
  EXPECT_NE(jsonl.find("{\"report\":\"Sweep Report: unit\",\"benchmark\":"
                       "\"cg\",\"value\":\"1.25\"}"),
            std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(Report, SlugsAreFilesystemSafeAndUniquePerProcess) {
  exp::Report a("Fig. X: some sweep (1/2 BW)");
  EXPECT_EQ(a.slug(), "fig-x-some-sweep-1-2-bw");
  EXPECT_EQ(a.slug(), a.slug()) << "stable per report";
  exp::Report b("Fig. X: some sweep (1/2 BW)");
  EXPECT_EQ(b.slug(), "fig-x-some-sweep-1-2-bw-2") << "no clobbering";
}

TEST(Report, EnvDrivenPerReportFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string prefix = dir + "/report_env_test";
  ASSERT_EQ(setenv("UNIMEM_CSV", prefix.c_str(), 1), 0);
  ASSERT_EQ(setenv("UNIMEM_JSONL", prefix.c_str(), 1), 0);
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  {
    exp::Report rep("Env Report One");
    rep.set_header({"k"});
    rep.add_row({"v1"});
    rep.print(sink);
    exp::Report rep2("Env Report Two");
    rep2.set_header({"k"});
    rep2.add_row({"v2"});
    rep2.print(sink);
  }
  std::fclose(sink);
  unsetenv("UNIMEM_CSV");
  unsetenv("UNIMEM_JSONL");

  // Two reports, four files, nobody overwrote anybody.
  std::ifstream c1(prefix + "-env-report-one.csv");
  std::ifstream c2(prefix + "-env-report-two.csv");
  std::ifstream j1(prefix + "-env-report-one.jsonl");
  std::ifstream j2(prefix + "-env-report-two.jsonl");
  ASSERT_TRUE(c1.good());
  ASSERT_TRUE(c2.good());
  ASSERT_TRUE(j1.good());
  ASSERT_TRUE(j2.good());
  std::stringstream ss;
  ss << c1.rdbuf();
  EXPECT_EQ(ss.str(), "k\nv1\n");
  ss.str("");
  ss << j2.rdbuf();
  EXPECT_NE(ss.str().find("\"k\":\"v2\""), std::string::npos);
}

}  // namespace
}  // namespace unimem::sweep
