// Tests for the Unimem runtime end to end on synthetic applications:
// PMPI phase detection, profiling -> planning -> enforcement, initial
// placement, the C API, and the variation monitor.
#include <gtest/gtest.h>

#include "core/capi.h"
#include "core/runtime.h"
#include "minimpi/comm.h"

namespace unimem::rt {
namespace {

struct TestRig {
  explicit TestRig(std::size_t dram = 8 * kMiB)
      : hms(mem::HmsConfig{mem::TierConfig::dram_basis(2 * dram + 4 * kMiB),
                           mem::TierConfig::nvm_scaled(128 * kMiB, 0.5, 1.0)}),
        arbiter(dram) {}
  mem::HeteroMemory hms;
  mem::DramArbiter arbiter;
};

/// A synthetic iterative app: one hot streamed object, one cold one, three
/// phases per iteration (compute / allreduce / compute).
void run_app(Runtime& rt, mpi::Comm& comm, int iterations,
             DataObject* hot, DataObject* cold, std::uint64_t hot_accesses) {
  rt.start();
  for (int it = 0; it < iterations; ++it) {
    rt.iteration_begin();
    PhaseWork w1;
    w1.flops = 1e5;
    w1.accesses.push_back(
        ObjectAccess{hot, cache::Pattern::kSequential, hot_accesses});
    rt.compute(w1);
    double v[1] = {1.0};
    comm.allreduce(v, 1);
    PhaseWork w2;
    w2.flops = 1e5;
    w2.accesses.push_back(
        ObjectAccess{cold, cache::Pattern::kSequential, 1024});
    w2.accesses.push_back(
        ObjectAccess{hot, cache::Pattern::kSequential, hot_accesses / 2});
    rt.compute(w2);
  }
  rt.end();
}

TEST(Runtime, PhaseDetectionViaPmpi) {
  TestRig rig;
  mpi::World world(2);
  world.run([&](mpi::Comm& comm) {
    RuntimeOptions opts;
    Runtime rt(opts, &rig.hms, &rig.arbiter, &comm);
    DataObject* hot = rt.malloc_object("hot", 2 * kMiB);
    DataObject* cold = rt.malloc_object("cold", 2 * kMiB);
    run_app(rt, comm, 4, hot, cold, 1 << 18);
    // 3 phases per iteration discovered in the profiled iteration:
    // [compute][allreduce][compute-tail].
    EXPECT_EQ(rt.profiler().phase_count(), 3u);
    EXPECT_FALSE(rt.profiler().phases()[0].is_communication);
    EXPECT_TRUE(rt.profiler().phases()[1].is_communication);
  });
}

TEST(Runtime, ProfilerAttributesHotObject) {
  TestRig rig;
  mpi::World world(1);
  world.run([&](mpi::Comm& comm) {
    RuntimeOptions opts;
    opts.enable_initial_placement = false;
    Runtime rt(opts, &rig.hms, &rig.arbiter, &comm);
    DataObject* hot = rt.malloc_object("hot", 2 * kMiB);
    DataObject* cold = rt.malloc_object("cold", 2 * kMiB);
    run_app(rt, comm, 3, hot, cold, 1 << 19);
    const auto& ph0 = rt.profiler().phases()[0];
    auto it = ph0.units.find(UnitRef{hot->id(), 0});
    ASSERT_NE(it, ph0.units.end());
    EXPECT_GT(it->second.est_accesses, 0u);
    // Phase 0 never touches `cold`.
    EXPECT_EQ(ph0.units.count(UnitRef{cold->id(), 0}), 0u);
  });
}

TEST(Runtime, EnforcementPlacesHotObjectInDram) {
  TestRig rig;
  mpi::World world(1);
  world.run([&](mpi::Comm& comm) {
    RuntimeOptions opts;
    opts.enable_initial_placement = false;  // force a runtime migration
    Runtime rt(opts, &rig.hms, &rig.arbiter, &comm);
    DataObject* hot = rt.malloc_object("hot", 2 * kMiB);
    DataObject* cold = rt.malloc_object("cold", 2 * kMiB);
    EXPECT_EQ(hot->chunk(0).current_tier(), mem::Tier::kNvm);
    run_app(rt, comm, 5, hot, cold, 1 << 19);
    EXPECT_EQ(hot->chunk(0).current_tier(), mem::Tier::kDram);
    RuntimeStats s = rt.stats();
    EXPECT_GE(s.migration.migrations, 1u);
    EXPECT_NE(s.plan_kind, Plan::Kind::kNone);
  });
}

TEST(Runtime, UnimemFasterThanNoManagement) {
  TestRig rig;
  double managed = 0, unmanaged = 0;
  {
    mpi::World world(1);
    world.run([&](mpi::Comm& comm) {
      RuntimeOptions opts;
      Runtime rt(opts, &rig.hms, &rig.arbiter, &comm);
      DataObject* hot = rt.malloc_object("hot", 2 * kMiB);
      DataObject* cold = rt.malloc_object("cold", 2 * kMiB);
      run_app(rt, comm, 8, hot, cold, 1 << 19);
      managed = rt.stats().total_time_s;
      rt.free_object(hot);
      rt.free_object(cold);
    });
  }
  {
    TestRig rig2;
    mpi::World world(1);
    world.run([&](mpi::Comm& comm) {
      RuntimeOptions opts;
      opts.enable_initial_placement = false;
      opts.enable_local_search = false;
      opts.enable_global_search = false;  // plans never move anything
      Runtime rt(opts, &rig2.hms, &rig2.arbiter, &comm);
      DataObject* hot = rt.malloc_object("hot", 2 * kMiB);
      DataObject* cold = rt.malloc_object("cold", 2 * kMiB);
      run_app(rt, comm, 8, hot, cold, 1 << 19);
      unmanaged = rt.stats().total_time_s;
    });
  }
  EXPECT_LT(managed, unmanaged);
}

TEST(Runtime, InitialPlacementUsesSymbolicEstimates) {
  TestRig rig;
  mpi::World world(1);
  world.run([&](mpi::Comm& comm) {
    RuntimeOptions opts;
    Runtime rt(opts, &rig.hms, &rig.arbiter, &comm);
    ObjectTraits hot_traits;
    hot_traits.estimated_references = 1e9;
    ObjectTraits unknown;  // estimated_references = -1
    DataObject* hot = rt.malloc_object("hot", 2 * kMiB, hot_traits);
    DataObject* unk = rt.malloc_object("unknown", 2 * kMiB, unknown);
    rt.start();  // triggers initial placement
    EXPECT_EQ(hot->chunk(0).current_tier(), mem::Tier::kDram);
    EXPECT_EQ(unk->chunk(0).current_tier(), mem::Tier::kNvm);
    rt.end();
  });
}

TEST(Runtime, OverheadStaysSmall) {
  TestRig rig;
  mpi::World world(1);
  world.run([&](mpi::Comm& comm) {
    RuntimeOptions opts;
    Runtime rt(opts, &rig.hms, &rig.arbiter, &comm);
    DataObject* hot = rt.malloc_object("hot", 2 * kMiB);
    DataObject* cold = rt.malloc_object("cold", 2 * kMiB);
    run_app(rt, comm, 10, hot, cold, 1 << 19);
    // Paper Table 4: pure runtime cost < 3% in all cases.
    EXPECT_LT(rt.stats().overhead_percent(), 3.0);
  });
}

TEST(Runtime, VariationTriggersReprofile) {
  TestRig rig;
  mpi::World world(1);
  world.run([&](mpi::Comm& comm) {
    RuntimeOptions opts;
    Runtime rt(opts, &rig.hms, &rig.arbiter, &comm);
    DataObject* a = rt.malloc_object("a", 2 * kMiB);
    DataObject* b = rt.malloc_object("b", 2 * kMiB);
    rt.start();
    for (int it = 0; it < 14; ++it) {
      rt.iteration_begin();
      PhaseWork w;
      w.flops = 1e5;
      // Phase workload shifts dramatically after iteration 7.
      DataObject* target = it < 7 ? a : b;
      std::uint64_t n = it < 7 ? (1 << 18) : (1 << 20);
      w.accesses.push_back(
          ObjectAccess{target, cache::Pattern::kSequential, n});
      rt.compute(w);
      double v[1] = {1.0};
      comm.allreduce(v, 1);
    }
    rt.end();
    EXPECT_GE(rt.stats().reprofiles, 1u);
  });
}

TEST(Runtime, ManualPhaseBoundaryWithoutMpi) {
  TestRig rig;
  RuntimeOptions opts;
  Runtime rt(opts, &rig.hms, &rig.arbiter, nullptr);
  DataObject* a = rt.malloc_object("a", kMiB);
  rt.start();
  for (int it = 0; it < 3; ++it) {
    rt.iteration_begin();
    PhaseWork w;
    w.accesses.push_back(ObjectAccess{a, cache::Pattern::kSequential, 4096});
    rt.compute(w);
    rt.phase_boundary();
    rt.compute(w);
  }
  rt.end();
  EXPECT_GT(rt.now(), 0.0);
  EXPECT_EQ(rt.stats().phases_executed, 3u * 2u);
}

TEST(Runtime, StatsReportPlanKindAndMigrations) {
  TestRig rig;
  mpi::World world(1);
  world.run([&](mpi::Comm& comm) {
    RuntimeOptions opts;
    opts.enable_initial_placement = false;
    Runtime rt(opts, &rig.hms, &rig.arbiter, &comm);
    DataObject* hot = rt.malloc_object("hot", 2 * kMiB);
    DataObject* cold = rt.malloc_object("cold", 2 * kMiB);
    run_app(rt, comm, 6, hot, cold, 1 << 19);
    RuntimeStats s = rt.stats();
    EXPECT_GT(s.total_time_s, 0.0);
    EXPECT_GT(s.phases_executed, 0u);
    EXPECT_GE(s.migration.overlap_percent(), 0.0);
    EXPECT_LE(s.migration.overlap_percent(), 100.0);
  });
}

TEST(CApi, TableTwoSurface) {
  TestRig rig;
  mpi::World world(1);
  world.run([&](mpi::Comm& comm) {
    Runtime* rt = unimem_init(RuntimeOptions{}, &rig.hms, &rig.arbiter, &comm);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(unimem_current(), rt);
    DataObject* o = unimem_malloc("obj", kMiB);
    ASSERT_NE(o, nullptr);
    unimem_start();
    rt->iteration_begin();
    PhaseWork w;
    w.accesses.push_back(ObjectAccess{o, cache::Pattern::kSequential, 4096});
    rt->compute(w);
    unimem_end();
    unimem_free(o);
    unimem_shutdown();
    EXPECT_EQ(unimem_current(), nullptr);
  });
}

}  // namespace
}  // namespace unimem::rt
