// Property + golden tests for the phase-DAG critical-path math
// (core/phase_dag.h): the CPM forward/backward pass against an O(V*E)
// brute-force relaxation over random DAGs, the structural invariants the
// slack scheduler relies on, and the two ingestion paths (from_profile
// barrier edges, from_trace span parsing incl. torn spans).
#include "core/phase_dag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "trace/export.h"

namespace unimem::rt {
namespace {

constexpr double kTol = 1e-9;

/// O(V*E) reference: relax every edge V times (no topological order
/// needed), exactly the textbook longest-path recurrences the CPM pass
/// must reproduce.
struct BruteForce {
  std::vector<double> earliest, latest;
  double makespan = 0;

  explicit BruteForce(const PhaseDag& dag) {
    const auto& nodes = dag.nodes();
    const auto& edges = dag.edges();
    const std::size_t V = nodes.size();
    earliest.assign(V, 0.0);
    for (std::size_t pass = 0; pass < V; ++pass)
      for (const auto& [u, v] : edges)
        earliest[v] =
            std::max(earliest[v], earliest[u] + nodes[u].duration_s);
    for (std::size_t v = 0; v < V; ++v)
      makespan = std::max(makespan, earliest[v] + nodes[v].duration_s);
    latest.assign(V, 0.0);
    for (std::size_t v = 0; v < V; ++v)
      latest[v] = makespan - nodes[v].duration_s;
    for (std::size_t pass = 0; pass < V; ++pass)
      for (const auto& [u, v] : edges)
        latest[u] = std::min(latest[u], latest[v] - nodes[u].duration_s);
  }
};

void expect_matches_brute_force(PhaseDag& dag) {
  ASSERT_TRUE(dag.compute());
  const BruteForce ref(dag);
  EXPECT_NEAR(dag.critical_path_s(), ref.makespan, kTol);
  bool any_critical = false;
  for (std::size_t v = 0; v < dag.nodes().size(); ++v) {
    const PhaseDag::Node& n = dag.nodes()[v];
    EXPECT_NEAR(n.earliest_s, ref.earliest[v], kTol) << "node " << v;
    EXPECT_NEAR(n.latest_s, ref.latest[v], kTol) << "node " << v;
    EXPECT_NEAR(n.slack_s, std::max(0.0, ref.latest[v] - ref.earliest[v]),
                kTol)
        << "node " << v;
    // The invariant the scheduler trusts: critical <=> zero slack.
    EXPECT_EQ(n.critical, n.slack_s <= dag.eps()) << "node " << v;
    any_critical = any_critical || n.critical;
    // Nothing starts later than the makespan allows.
    EXPECT_LE(n.earliest_s + n.duration_s, dag.critical_path_s() + kTol);
    EXPECT_LE(n.latest_s + n.duration_s, dag.critical_path_s() + kTol);
  }
  if (!dag.nodes().empty()) {
    EXPECT_TRUE(any_critical);
  }
}

// ---------------------------------------------------------------------------
// Property test: 40+ random DAGs across three shape families.
// ---------------------------------------------------------------------------

TEST(PhaseDagProperty, RandomDagsMatchBruteForce) {
  Rng rng(20177);
  for (int trial = 0; trial < 48; ++trial) {
    PhaseDag dag;
    const int shape = trial % 3;
    if (shape == 0) {
      // Single chain, one rank: every node critical.
      const std::size_t P = 1 + rng.below(12);
      for (std::size_t p = 0; p < P; ++p)
        dag.add_node(0, p, rng.uniform(0.1, 2.0), false);
      for (std::size_t p = 1; p < P; ++p) dag.add_edge(p - 1, p);
    } else if (shape == 1) {
      // Diamond lattice: several ranks fanning out of a common source
      // phase and joining at a common sink phase.
      const int R = 2 + static_cast<int>(rng.below(4));
      const std::size_t src =
          dag.add_node(0, 0, rng.uniform(0.1, 1.0), false);
      std::vector<std::size_t> mids;
      for (int r = 0; r < R; ++r)
        mids.push_back(dag.add_node(r, 1, rng.uniform(0.1, 3.0), false));
      const std::size_t sink =
          dag.add_node(0, 2, rng.uniform(0.1, 1.0), true);
      for (std::size_t m : mids) {
        dag.add_edge(src, m);
        dag.add_edge(m, sink);
      }
    } else {
      // Disconnected ranks: random forward edges within each rank's
      // chain, no cross-rank edges — shorter components are pure slack.
      const int R = 2 + static_cast<int>(rng.below(3));
      std::vector<std::vector<std::size_t>> idx(R);
      for (int r = 0; r < R; ++r) {
        const std::size_t P = 1 + rng.below(8);
        for (std::size_t p = 0; p < P; ++p)
          idx[r].push_back(dag.add_node(r, p, rng.uniform(0.05, 1.5),
                                        rng.below(4) == 0));
        // Forward-only random edges keep it acyclic by construction.
        for (std::size_t i = 0; i < idx[r].size(); ++i)
          for (std::size_t j = i + 1; j < idx[r].size(); ++j)
            if (rng.below(3) == 0) dag.add_edge(idx[r][i], idx[r][j]);
      }
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_matches_brute_force(dag);
  }
}

TEST(PhaseDagProperty, CriticalChainReachesSinkOnRandomDags) {
  // On every connected random DAG there is a zero-slack chain realizing
  // the makespan: following critical successors from a critical source
  // must reach a node that finishes at critical_path_s().
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    PhaseDag dag;
    const std::size_t V = 2 + rng.below(14);
    for (std::size_t v = 0; v < V; ++v)
      dag.add_node(static_cast<int>(v), 0, rng.uniform(0.1, 2.0), false);
    for (std::size_t i = 0; i < V; ++i)
      for (std::size_t j = i + 1; j < V; ++j)
        if (rng.below(3) == 0) dag.add_edge(i, j);
    ASSERT_TRUE(dag.compute());
    // Some critical node must finish exactly at the makespan...
    double best_finish = 0;
    for (const auto& n : dag.nodes())
      if (n.critical)
        best_finish = std::max(best_finish, n.earliest_s + n.duration_s);
    EXPECT_NEAR(best_finish, dag.critical_path_s(), kTol);
    // ...and every critical non-source is fed by a critical predecessor
    // finishing exactly at its start (the chain is gapless).
    for (std::size_t v = 0; v < dag.nodes().size(); ++v) {
      const auto& n = dag.nodes()[v];
      if (!n.critical || n.earliest_s <= kTol) continue;
      bool fed = false;
      for (const auto& [u, w] : dag.edges()) {
        if (w != v) continue;
        const auto& p = dag.nodes()[u];
        if (p.critical &&
            std::abs(p.earliest_s + p.duration_s - n.earliest_s) <= kTol)
          fed = true;
      }
      EXPECT_TRUE(fed) << "critical node " << v << " has no critical feeder";
    }
  }
}

// ---------------------------------------------------------------------------
// Pinned edge cases.
// ---------------------------------------------------------------------------

TEST(PhaseDag, EmptyDagComputes) {
  PhaseDag dag;
  EXPECT_TRUE(dag.compute());
  EXPECT_TRUE(dag.computed());
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 0.0);
  EXPECT_EQ(dag.find(0, 0), nullptr);
  // Unknown phases: no slack, conservatively critical.
  EXPECT_DOUBLE_EQ(dag.slack(0, 0), 0.0);
  EXPECT_TRUE(dag.critical(0, 0));
}

TEST(PhaseDag, SinglePhase) {
  PhaseDag dag;
  dag.add_node(0, 0, 1.5, false);
  ASSERT_TRUE(dag.compute());
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 1.5);
  const PhaseDag::Node* n = dag.find(0, 0);
  ASSERT_NE(n, nullptr);
  EXPECT_DOUBLE_EQ(n->earliest_s, 0.0);
  EXPECT_DOUBLE_EQ(n->latest_s, 0.0);
  EXPECT_TRUE(n->critical);
  EXPECT_EQ(dag.critical_phases(0), std::set<std::size_t>{0});
}

TEST(PhaseDag, AllCommPhasesEveryNodeCritical) {
  // Symmetric SPMD: every phase on every rank is a comm phase with equal
  // duration — the barrier edges couple the ranks into one lattice where
  // nothing has slack.
  const std::size_t R = 3, P = 4;
  std::vector<std::vector<double>> dur(R, std::vector<double>(P, 1.0));
  std::vector<std::vector<char>> kinds(R, std::vector<char>(P, 1));
  PhaseDag dag = PhaseDag::from_profile(dur, kinds);
  ASSERT_TRUE(dag.compute());
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), static_cast<double>(P));
  for (const auto& n : dag.nodes()) {
    EXPECT_TRUE(n.critical);
    EXPECT_DOUBLE_EQ(n.slack_s, 0.0);
  }
}

TEST(PhaseDag, CycleRefusesToCompute) {
  PhaseDag dag;
  dag.add_node(0, 0, 1.0, false);
  dag.add_node(0, 1, 1.0, false);
  dag.add_edge(0, 1);
  dag.add_edge(1, 0);
  EXPECT_FALSE(dag.compute());
  EXPECT_FALSE(dag.computed());
}

TEST(PhaseDag, IgnoresBogusEdges) {
  PhaseDag dag;
  dag.add_node(0, 0, 1.0, false);
  dag.add_edge(0, 0);   // self loop
  dag.add_edge(0, 7);   // out of range
  dag.add_edge(7, 0);
  EXPECT_TRUE(dag.edges().empty());
  EXPECT_TRUE(dag.compute());
}

// ---------------------------------------------------------------------------
// from_profile: barrier-edge structure and the slack it produces.
// ---------------------------------------------------------------------------

TEST(PhaseDagFromProfile, BarrierEdgesCoupleRanksAtCommPhases) {
  // Two ranks, three phases; only rank 0's phase 2 is comm.  The barrier
  // must add (rank 1, phase 1) -> (rank 0, phase 2) and nothing else
  // beyond program order.
  std::vector<std::vector<double>> dur{{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}};
  std::vector<std::vector<char>> kinds{{0, 0, 1}, {0, 0, 0}};
  PhaseDag dag = PhaseDag::from_profile(dur, kinds);
  ASSERT_EQ(dag.nodes().size(), 6u);
  // Program order: 2 ranks x 2 edges; barrier: exactly 1 extra.
  EXPECT_EQ(dag.edges().size(), 5u);
  std::set<std::pair<int, std::size_t>> barrier_targets;
  for (const auto& [u, v] : dag.edges())
    if (dag.nodes()[u].rank != dag.nodes()[v].rank)
      barrier_targets.insert({dag.nodes()[v].rank, dag.nodes()[v].phase});
  EXPECT_EQ(barrier_targets,
            (std::set<std::pair<int, std::size_t>>{{0, 2}}));
}

TEST(PhaseDagFromProfile, ImbalancedRankGainsSlackBeforeBarrier) {
  // Rank 0 computes 3s then hits a barrier comm; rank 1 computes 1s then
  // the same barrier.  Rank 1's compute phase has 2s of slack; rank 0's
  // is critical.
  std::vector<std::vector<double>> dur{{3.0, 0.5}, {1.0, 0.5}};
  std::vector<std::vector<char>> kinds{{0, 1}, {0, 1}};
  PhaseDag dag = PhaseDag::from_profile(dur, kinds);
  ASSERT_TRUE(dag.compute());
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 3.5);
  EXPECT_TRUE(dag.critical(0, 0));
  EXPECT_FALSE(dag.critical(1, 0));
  EXPECT_NEAR(dag.slack(1, 0), 2.0, kTol);
  // The slack scheduler's query surface agrees with the node table.
  const std::set<std::size_t> crit0 = dag.critical_phases(0);
  EXPECT_EQ(crit0, (std::set<std::size_t>{0, 1}));
  EXPECT_EQ(dag.critical_phases(1), std::set<std::size_t>{1});
}

TEST(PhaseDagFromProfile, RaggedInputsAllowed) {
  // Rank 1 measured fewer phases (mid-iteration join): its short row
  // still builds, and the comm phase only pulls edges from rows that
  // have the predecessor phase.
  std::vector<std::vector<double>> dur{{1.0, 1.0, 1.0}, {1.0}};
  std::vector<std::vector<char>> kinds{{0, 0, 1}, {0}};
  PhaseDag dag = PhaseDag::from_profile(dur, kinds);
  ASSERT_EQ(dag.nodes().size(), 4u);
  ASSERT_TRUE(dag.compute());
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 3.0);
}

// ---------------------------------------------------------------------------
// from_trace: span parsing, rank mapping, torn spans.
// ---------------------------------------------------------------------------

namespace {

/// Append a "runtime/phase" B or E event on `track` at virtual time `vt`.
void phase_event(trace::TraceData* data, std::uint32_t track, char ph,
                 double vt, std::uint64_t wall_ns, bool is_comm = false) {
  trace::TraceEventRow e;
  e.cat = data->intern("runtime");
  e.name = data->intern("phase");
  e.phase = ph;
  e.vt = vt;
  e.wall_ns = wall_ns;
  e.track = track;
  if (ph == 'E') {
    e.arg_name0 = data->intern("is_comm");
    e.arg0 = is_comm ? 1 : 0;
  }
  data->events.push_back(e);
}

std::uint32_t add_track(trace::TraceData* data, const std::string& name) {
  data->tracks.push_back(trace::TraceTrack{name, 0});
  return static_cast<std::uint32_t>(data->tracks.size() - 1);
}

}  // namespace

TEST(PhaseDagFromTrace, ParsesSpansAndRankNames) {
  trace::TraceData data;
  const std::uint32_t t1 = add_track(&data, "rank 1");
  const std::uint32_t t0 = add_track(&data, "rank 0");
  // rank 0: [0,3) compute, [3,3.5) comm; rank 1: [0,1) compute,
  // [3,3.5) comm — the imbalanced-barrier scenario via the trace path.
  phase_event(&data, t0, 'B', 0.0, 10);
  phase_event(&data, t0, 'E', 3.0, 20);
  phase_event(&data, t1, 'B', 0.0, 11);
  phase_event(&data, t1, 'E', 1.0, 21);
  phase_event(&data, t0, 'B', 3.0, 30);
  phase_event(&data, t0, 'E', 3.5, 40, /*is_comm=*/true);
  phase_event(&data, t1, 'B', 3.0, 31);
  phase_event(&data, t1, 'E', 3.5, 41, /*is_comm=*/true);
  PhaseDag dag = PhaseDag::from_trace(data);
  ASSERT_EQ(dag.nodes().size(), 4u);
  ASSERT_TRUE(dag.compute());
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 3.5);
  // Track "rank 1" was registered first but must land as row 1: the row
  // with the 3s phase (rank 0) is critical, the 1s one is not.
  EXPECT_TRUE(dag.critical(0, 0));
  EXPECT_FALSE(dag.critical(1, 0));
  EXPECT_NEAR(dag.slack(1, 0), 2.0, kTol);
}

TEST(PhaseDagFromTrace, SkipsTornAndUnstampedSpans) {
  trace::TraceData data;
  const std::uint32_t t = add_track(&data, "rank 0");
  phase_event(&data, t, 'B', 0.0, 10);
  phase_event(&data, t, 'E', 1.0, 20);
  phase_event(&data, t, 'E', 2.0, 30);   // torn: END without begin
  phase_event(&data, t, 'B', 2.0, 40);   // torn: begin without END
  PhaseDag dag = PhaseDag::from_trace(data);
  ASSERT_EQ(dag.nodes().size(), 1u);
  ASSERT_TRUE(dag.compute());
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 1.0);
}

TEST(PhaseDagFromTrace, EmptyTraceBuildsEmptyDag) {
  trace::TraceData data;
  PhaseDag dag = PhaseDag::from_trace(data);
  EXPECT_TRUE(dag.nodes().empty());
  EXPECT_TRUE(dag.compute());
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 0.0);
}

}  // namespace
}  // namespace unimem::rt
