// Tests for the adaptive re-planning controller (core/replan.h): drift
// detection boundaries, incremental-vs-full-DP plan equivalence when
// nothing drifted, fallback to the full solve past the drift budget, and
// the repair contract — the repaired plan's predicted time is never worse
// than keeping the stale plan (property-tested over random instances).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/planner.h"
#include "core/profiler.h"
#include "core/registry.h"
#include "core/replan.h"

namespace unimem::rt {
namespace {

constexpr double kT = 0.01;  ///< phase duration used in synthetic profiles

class ReplanTest : public ::testing::Test {
 protected:
  ReplanTest()
      : hms_(mem::HmsConfig::scaled(0.5, 1.0, 32 * kMiB, 128 * kMiB)),
        reg_(&hms_, nullptr) {
    ModelParams p;
    p.bw_peak = hms_.config().nvm.read_bw;
    model_ = std::make_unique<PerformanceModel>(p, hms_.config().dram,
                                                hms_.config().nvm);
  }

  DataObject* obj(const char* name, std::size_t bytes) {
    return reg_.create(name, bytes, ObjectTraits{false, -1}, mem::Tier::kNvm,
                       chunk_bytes_for(false, bytes));
  }

  /// Record a synthetic computation phase into `prof` where each listed
  /// object is observed with the given miss count (the planner_test
  /// scaffolding: samples proportional to each object's share).
  static void phase(
      Profiler& prof,
      std::initializer_list<std::pair<DataObject*, std::uint64_t>> hot) {
    perf::PhaseSamples s;
    s.total_samples = 10000;
    std::uint64_t total = 0;
    for (auto& [o, misses] : hot) total += misses;
    s.total_miss_count = total;
    for (auto& [o, misses] : hot) {
      std::uint64_t n = misses * 8000 / std::max<std::uint64_t>(total, 1);
      for (std::uint64_t i = 0; i < n; i += 10) {
        std::uint32_t c = static_cast<std::uint32_t>(i % o->chunk_count());
        s.miss_addresses.push_back(
            reinterpret_cast<std::uint64_t>(o->chunk(c).data()) +
            (i * 64) % o->chunk(c).bytes);
      }
    }
    prof.record_phase(s, kT);
  }

  ReplanController controller(std::size_t budget, double threshold = 0.25,
                              double drift_budget = 0.25) {
    ReplanOptions o;
    o.drift_threshold = threshold;
    o.drift_budget = drift_budget;
    o.dram_budget = budget;
    return ReplanController(&reg_, model_.get(), o);
  }

  std::size_t dram_bytes() const {
    return reg_.resident_bytes(mem::Tier::kDram);
  }

  mem::HeteroMemory hms_;
  Registry reg_;
  std::unique_ptr<PerformanceModel> model_;
};

TEST_F(ReplanTest, ZeroDriftKeepsStalePlanAndMatchesFullDp) {
  DataObject* hot = obj("hot", 2 * kMiB);
  DataObject* warm = obj("warm", 2 * kMiB);
  DataObject* cold = obj("cold", 2 * kMiB);

  Profiler before(&reg_);
  phase(before, {{hot, 500000}, {warm, 300000}, {cold, 1000}});
  before.record_comm_phase(kT / 10);

  // Adopt the full DP's answer and make the registry reflect it (global
  // search only: the aggregate path the controller's repair mirrors).
  PlannerOptions po;
  po.local_search = false;
  po.dram_budget = 5 * kMiB;
  Planner planner(&reg_, model_.get(), po);
  Plan full = planner.plan(before);
  ASSERT_NE(full.kind, Plan::Kind::kNone);
  for (const UnitRef& u : full.dram_sets[0])
    ASSERT_TRUE(reg_.migrate(u, mem::Tier::kDram));

  ReplanController ctl = controller(5 * kMiB);
  ctl.observe(before);

  // An identical second profile: nothing drifted, the stale plan stays —
  // which is exactly what a full DP re-solve would decide too.
  Profiler after(&reg_);
  phase(after, {{hot, 500000}, {warm, 300000}, {cold, 1000}});
  after.record_comm_phase(kT / 10);

  DriftReport rep = ctl.classify(after);
  EXPECT_EQ(rep.drifted, 0u);
  EXPECT_GT(rep.tracked, 0u);

  ReplanDecision d = ctl.decide(after);
  EXPECT_EQ(d.path, ReplanDecision::Path::kKeepStale);
  EXPECT_DOUBLE_EQ(d.repaired_predicted_s, d.stale_predicted_s);

  // Full-DP equivalence at zero drift: re-running the planner on the
  // unchanged profile picks the residency the registry already has.
  Plan again = planner.plan(after);
  ASSERT_NE(again.kind, Plan::Kind::kNone);
  std::set<UnitRef> now_resident;
  for (const UnitRef& u : reg_.all_units())
    if (reg_.unit_tier(u) == mem::Tier::kDram) now_resident.insert(u);
  EXPECT_EQ(again.dram_sets[0], now_resident);
  EXPECT_EQ(again.migration_count(), 0u);
}

TEST_F(ReplanTest, DriftDetectionBoundaries) {
  DataObject* steady = obj("steady", kMiB);
  DataObject* creeping = obj("creeping", kMiB);
  DataObject* jumping = obj("jumping", kMiB);

  // Single-object phases so each unit's estimated accesses track its miss
  // count exactly (no cross-object sample apportioning).
  Profiler before(&reg_);
  phase(before, {{steady, 400000}});
  phase(before, {{creeping, 400000}});
  phase(before, {{jumping, 400000}});

  ReplanController ctl = controller(4 * kMiB, /*threshold=*/0.25);
  ctl.observe(before);
  ASSERT_EQ(ctl.baseline_weights().size(), 3u);

  // +10% is rel 0.1/1.1 ~ 0.091 (relative to the larger reading): under
  // the 0.25 threshold.  2x is rel 0.5: over it.
  Profiler after(&reg_);
  phase(after, {{steady, 400000}});
  phase(after, {{creeping, 440000}});
  phase(after, {{jumping, 800000}});

  DriftReport rep = ctl.classify(after);
  EXPECT_EQ(rep.tracked, 3u);
  EXPECT_EQ(rep.drifted, 1u);
  EXPECT_NEAR(rep.max_rel_change, 0.5, 0.05);

  // A vanished unit drifts by definition (rel = 1): drop the jumping
  // phase entirely.
  Profiler gone(&reg_);
  phase(gone, {{steady, 400000}});
  phase(gone, {{creeping, 400000}});
  DriftReport rep2 = ctl.classify(gone);
  EXPECT_EQ(rep2.drifted, 1u);
  EXPECT_NEAR(rep2.max_rel_change, 1.0, 1e-9);
}

TEST_F(ReplanTest, FallbackTriggersAtTheDriftBudget) {
  std::vector<DataObject*> objs;
  for (int i = 0; i < 8; ++i) {
    std::string name("o");
    name += std::to_string(i);
    objs.push_back(obj(name.c_str(), kMiB));
  }
  Profiler before(&reg_);
  for (DataObject* o : objs) phase(before, {{o, 400000}});

  ReplanController ctl =
      controller(4 * kMiB, /*threshold=*/0.25, /*drift_budget=*/0.25);
  ctl.observe(before);

  // 6 of 8 units double: drift fraction 0.75 > 0.25 -> full re-solve.
  Profiler big(&reg_);
  for (std::size_t i = 0; i < objs.size(); ++i)
    phase(big, {{objs[i], i < 6 ? 800000u : 400000u}});
  ReplanDecision d = ctl.decide(big);
  EXPECT_EQ(d.path, ReplanDecision::Path::kFullSolve);
  EXPECT_NEAR(d.drift.drift_fraction(), 0.75, 1e-9);

  // 1 of 8 drifts: within budget, the bounded repair path answers (the
  // newly hot outsider is worth promoting, so the repair wins).
  Profiler small(&reg_);
  for (std::size_t i = 0; i < objs.size(); ++i)
    phase(small, {{objs[i], i == 0 ? 800000u : 400000u}});
  ReplanDecision d2 = ctl.decide(small);
  EXPECT_NE(d2.path, ReplanDecision::Path::kFullSolve);
  EXPECT_NEAR(d2.drift.drift_fraction(), 0.125, 1e-9);
}

TEST_F(ReplanTest, IncrementalRepairSwapsDriftedResidentForNewlyHotUnit) {
  DataObject* fading = obj("fading", 2 * kMiB);
  DataObject* rising = obj("rising", 2 * kMiB);
  DataObject* steady = obj("steady", kMiB);

  // Baseline: fading is the hot resident, steady rides along.
  Profiler before(&reg_);
  phase(before, {{fading, 800000}});
  phase(before, {{steady, 300000}});
  phase(before, {{rising, 1000}});
  ASSERT_TRUE(reg_.migrate(UnitRef{fading->id(), 0}, mem::Tier::kDram));
  ASSERT_TRUE(reg_.migrate(UnitRef{steady->id(), 0}, mem::Tier::kDram));

  // Budget fits only one of the 2 MiB objects next to steady.
  ReplanController ctl =
      controller(3 * kMiB + kMiB / 2, /*threshold=*/0.25, /*budget=*/0.9);
  ctl.observe(before);

  // The hot set flips: fading collapses, rising explodes; steady steady.
  Profiler after(&reg_);
  phase(after, {{fading, 1000}});
  phase(after, {{steady, 300000}});
  phase(after, {{rising, 800000}});

  ReplanDecision d = ctl.decide(after);
  ASSERT_EQ(d.path, ReplanDecision::Path::kIncremental);
  EXPECT_LT(d.repaired_predicted_s, d.stale_predicted_s);
  ASSERT_EQ(d.plan.kind, Plan::Kind::kIncremental);

  bool evicts_fading = false, fills_rising = false, touches_steady = false;
  for (const auto& v : d.plan.at_phase)
    for (const PlannedMigration& m : v) {
      if (m.unit.object == fading->id() && m.to == mem::Tier::kNvm)
        evicts_fading = true;
      if (m.unit.object == rising->id() && m.to == mem::Tier::kDram)
        fills_rising = true;
      if (m.unit.object == steady->id()) touches_steady = true;
    }
  EXPECT_TRUE(evicts_fading);
  EXPECT_TRUE(fills_rising);
  // Warm start: the non-drifted resident is never touched.
  EXPECT_FALSE(touches_steady);
  // The repaired resident set keeps steady and holds the budget.
  const std::set<UnitRef>& final_set = d.plan.dram_sets[0];
  EXPECT_TRUE(final_set.count(UnitRef{steady->id(), 0}));
  EXPECT_TRUE(final_set.count(UnitRef{rising->id(), 0}));
  EXPECT_FALSE(final_set.count(UnitRef{fading->id(), 0}));
}

TEST_F(ReplanTest, PropertyRepairedPlanNeverWorseThanStaleAndFitsBudget) {
  // Random instances: N objects with random sizes and miss counts, a
  // random subset resident, random per-unit perturbations.  Whatever path
  // the controller picks, the adopted prediction must never exceed the
  // stale prediction, and a repaired resident set must fit the budget.
  Rng rng(20260730);
  std::vector<DataObject*> objs;
  for (int i = 0; i < 12; ++i) {
    std::string name("p");
    name += std::to_string(i);
    objs.push_back(obj(name.c_str(), (1 + rng.below(4)) * (kMiB / 2)));
  }
  const std::size_t budget = 4 * kMiB;

  for (int round = 0; round < 40; ++round) {
    // Reset residency to a random subset that fits.
    std::size_t used = 0;
    for (DataObject* o : objs) {
      UnitRef u{o->id(), 0};
      if (reg_.unit_tier(u) == mem::Tier::kDram) {
        ASSERT_TRUE(reg_.migrate(u, mem::Tier::kNvm));
      }
      if (rng.uniform() < 0.4 && used + o->bytes() <= budget) {
        ASSERT_TRUE(reg_.migrate(u, mem::Tier::kDram));
        used += o->bytes();
      }
    }

    std::vector<std::uint64_t> misses;
    Profiler before(&reg_);
    for (DataObject* o : objs) {
      misses.push_back(100000 + rng.below(900000));
      phase(before, {{o, misses.back()}});
    }

    ReplanController ctl = controller(budget, 0.25, /*drift_budget=*/1.1);
    ctl.observe(before);

    Profiler after(&reg_);
    for (std::size_t i = 0; i < objs.size(); ++i) {
      double f = rng.uniform(0.25, 3.0);  // heavy random drift
      phase(after, {{objs[i], static_cast<std::uint64_t>(
                                  static_cast<double>(misses[i]) * f)}});
    }

    ReplanDecision d = ctl.decide(after);
    EXPECT_LE(d.repaired_predicted_s, d.stale_predicted_s + 1e-12)
        << "round " << round;
    if (d.path == ReplanDecision::Path::kIncremental) {
      std::size_t bytes = 0;
      for (const UnitRef& u : d.plan.dram_sets[0]) bytes += reg_.unit_bytes(u);
      EXPECT_LE(bytes, budget) << "round " << round;
    } else {
      EXPECT_EQ(d.plan.kind, Plan::Kind::kNone) << "round " << round;
    }
  }
}

TEST_F(ReplanTest, SolveBoundedPublicEntryAgreesWithSolveOnEasyInstances) {
  // All-fit and filtering behavior match the exact entry point, so the
  // repair path cannot select a non-fitting or worthless item.
  std::vector<KnapsackItem> items{{1.0, kMiB},
                                  {-0.5, kMiB},        // never selected
                                  {2.0, 10 * kMiB},    // larger than capacity
                                  {0.5, 2 * kMiB}};
  KnapsackSolver s;
  KnapsackResult exact = s.solve(items, 4 * kMiB);
  KnapsackResult bounded = s.solve_bounded(items, 4 * kMiB);
  EXPECT_EQ(exact.selected, bounded.selected);
  EXPECT_DOUBLE_EQ(exact.total_weight, bounded.total_weight);

  // Oversubscribed: the bounded answer is at least half the DP optimum
  // (1/2-approximation guarantee).
  Rng rng(7);
  std::vector<KnapsackItem> big;
  for (int i = 0; i < 64; ++i)
    big.push_back(KnapsackItem{rng.uniform(0.1, 1.0),
                               (1 + rng.below(32)) * (kMiB / 8)});
  KnapsackResult opt = s.solve(big, 8 * kMiB);
  KnapsackResult approx = s.solve_bounded(big, 8 * kMiB);
  EXPECT_GE(approx.total_weight, 0.5 * opt.total_weight);
  EXPECT_LE(approx.total_weight, opt.total_weight + 1e-12);
}

}  // namespace
}  // namespace unimem::rt
