// Trace subsystem tests: SPSC ring semantics (wraparound order, overflow
// drop accounting), recorder lifecycle (start/stop/restart generations,
// lazy thread registration, concurrent emit vs drain — the case TSan digs
// into), exporter round-trips (binary spill, Chrome JSON structure and
// escaping, shard merging with wall-clock alignment), the span summary
// rollup, the metrics registry, and an end-to-end run_once() recording
// that asserts the runtime actually emits phase spans in virtual time.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "experiments/runner.h"
#include "trace/export.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace unimem::trace {
namespace {

Event make_event(const char* cat, const char* name, Phase ph,
                 std::uint64_t seq) {
  Event e;
  e.cat = cat;
  e.name = name;
  e.phase = ph;
  e.arg_name0 = "seq";
  e.arg0 = seq;
  return e;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- ring -----------------------------------------------------------------

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Ring(1).capacity(), 8u);  // minimum
  EXPECT_EQ(Ring(8).capacity(), 8u);
  EXPECT_EQ(Ring(9).capacity(), 16u);
  EXPECT_EQ(Ring(1000).capacity(), 1024u);
}

TEST(TraceRing, OverflowDropsNewestAndCounts) {
  Ring r(8);
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_TRUE(r.push(make_event("t", "e", Phase::kInstant, i)));
  EXPECT_FALSE(r.push(make_event("t", "e", Phase::kInstant, 8)));
  EXPECT_FALSE(r.push(make_event("t", "e", Phase::kInstant, 9)));
  EXPECT_EQ(r.dropped(), 2u);

  std::vector<Event> out;
  EXPECT_EQ(r.pop_into(&out), 8u);
  ASSERT_EQ(out.size(), 8u);
  // Drop-newest: the surviving events are exactly the first 8, in order.
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i].arg0, i);
}

TEST(TraceRing, WraparoundPreservesFifoOrderAcrossManyCycles) {
  Ring r(8);
  std::vector<Event> out;
  std::uint64_t seq = 0, expect = 0;
  // 100 fill/drain cycles march the monotonic indices far past the
  // capacity, so the mask wraps continuously.
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 5; ++i)
      ASSERT_TRUE(r.push(make_event("t", "e", Phase::kInstant, seq++)));
    out.clear();
    ASSERT_EQ(r.pop_into(&out), 5u);
    for (const Event& e : out) EXPECT_EQ(e.arg0, expect++);
  }
  EXPECT_EQ(r.dropped(), 0u);
}

// ---- recorder lifecycle ---------------------------------------------------

TEST(TraceRecorder, InactiveRecorderRecordsNothing) {
  auto& rec = TraceRecorder::instance();
  ASSERT_FALSE(rec.active());
  UNIMEM_TRACE_INSTANT("test", "ignored", -1.0);
  emit_event(Phase::kInstant, "test", "ignored-too", -1.0);
  rec.start();
  const TraceData data = rec.stop();
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.dropped, 0u);
}

TEST(TraceRecorder, RecordsEventsWithArgsAndNamedTracks) {
  auto& rec = TraceRecorder::instance();
  rec.start();
  set_thread_track("main-thread", 7);
  UNIMEM_TRACE_BEGIN2("cat", "span", 1.5, "a", 3, "b", 4);
  UNIMEM_TRACE_END("cat", "span", 2.5);
  UNIMEM_TRACE_INSTANT1("cat", "blip", -1.0, "x", 42);
  const TraceData data = rec.stop();

  ASSERT_EQ(data.events.size(), 3u);
  const TraceEventRow& b = data.events[0];
  EXPECT_EQ(data.str(b.cat), "cat");
  EXPECT_EQ(data.str(b.name), "span");
  EXPECT_EQ(b.phase, 'B');
  EXPECT_DOUBLE_EQ(b.vt, 1.5);
  EXPECT_EQ(data.str(b.arg_name0), "a");
  EXPECT_EQ(b.arg0, 3u);
  EXPECT_EQ(data.str(b.arg_name1), "b");
  EXPECT_EQ(b.arg1, 4u);
  EXPECT_EQ(data.events[1].phase, 'E');
  const TraceEventRow& inst = data.events[2];
  EXPECT_EQ(inst.phase, 'i');
  EXPECT_LT(inst.vt, 0.0);
  EXPECT_EQ(inst.arg0, 42u);

  ASSERT_LT(b.track, data.tracks.size());
  EXPECT_EQ(data.tracks[b.track].name, "main-thread");
  EXPECT_EQ(data.tracks[b.track].sort_hint, 7);
  // Wall stamps are monotone within one thread.
  EXPECT_LE(data.events[0].wall_ns, data.events[1].wall_ns);
}

TEST(TraceRecorder, RestartDiscardsPriorStateAndReregistersThreads) {
  auto& rec = TraceRecorder::instance();
  rec.start();
  set_thread_track("before", 0);
  UNIMEM_TRACE_INSTANT("gen", "old", -1.0);
  rec.start();  // restart without stop — the fork-child path
  UNIMEM_TRACE_INSTANT("gen", "new", -1.0);
  const TraceData data = rec.stop();
  ASSERT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.str(data.events[0].name), "new");
  for (const TraceTrack& t : data.tracks) EXPECT_NE(t.name, "before");
}

TEST(TraceRecorder, UnnamedThreadsRegisterLazily) {
  auto& rec = TraceRecorder::instance();
  rec.start();
  std::thread([] { UNIMEM_TRACE_INSTANT("lazy", "hi", -1.0); }).join();
  const TraceData data = rec.stop();
  ASSERT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.tracks[data.events[0].track].name, "thread");
}

TEST(TraceRecorder, ConcurrentEmitAndDrainLosesNothingUnaccounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  auto& rec = TraceRecorder::instance();
  rec.start(256);  // small rings force mid-run drains and real overflow

  std::atomic<bool> done{false};
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) rec.flush();
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([t] {
      set_thread_track("producer " + std::to_string(t), t);
      for (int i = 0; i < kPerThread; ++i)
        UNIMEM_TRACE_INSTANT1("stress", "tick", -1.0, "i",
                              static_cast<std::uint64_t>(i));
    });
  }
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_release);
  drainer.join();
  const TraceData data = rec.stop();

  // Every emit either landed or was counted as dropped — no silent loss.
  EXPECT_EQ(data.events.size() + data.dropped,
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_FALSE(data.empty());
  // Per-track sequences stay in emit order even through partial drains.
  std::map<std::uint32_t, std::uint64_t> next;
  for (const TraceEventRow& e : data.events) {
    const auto it = next.find(e.track);
    if (it != next.end()) {
      EXPECT_GT(e.arg0, it->second);
    }
    next[e.track] = e.arg0;
  }
}

// ---- exporters ------------------------------------------------------------

TraceData sample_data() {
  TraceData d;
  d.epoch_realtime_ns = 1'000'000;
  const std::uint32_t track =
      static_cast<std::uint32_t>(d.tracks.size());
  d.tracks.push_back({"rank \"0\"", 3});  // quote exercises escaping
  TraceEventRow b;
  b.cat = d.intern("runtime");
  b.name = d.intern("phase");
  b.arg_name0 = d.intern("iter");
  b.arg0 = 2;
  b.vt = 0.25;
  b.wall_ns = 100;
  b.track = track;
  b.phase = 'B';
  TraceEventRow e = b;
  e.vt = 0.75;
  e.wall_ns = 400;
  e.phase = 'E';
  TraceEventRow i;
  i.cat = d.intern("sweep");
  i.name = d.intern("retry");
  i.vt = -1.0;  // wall-only
  i.wall_ns = 200;
  i.track = track;
  i.phase = 'i';
  d.events = {b, i, e};
  d.dropped = 5;
  return d;
}

TEST(TraceExport, BinaryRoundTripIsLossless) {
  const std::string path = testing::TempDir() + "/trace_rt.trace";
  const TraceData d = sample_data();
  ASSERT_TRUE(write_binary(d, path));
  TraceData r;
  ASSERT_TRUE(read_binary(path, &r));
  EXPECT_EQ(r.epoch_realtime_ns, d.epoch_realtime_ns);
  EXPECT_EQ(r.dropped, d.dropped);
  ASSERT_EQ(r.strings.size(), d.strings.size());
  ASSERT_EQ(r.tracks.size(), d.tracks.size());
  EXPECT_EQ(r.tracks[1].name, "rank \"0\"");
  EXPECT_EQ(r.tracks[1].sort_hint, 3);
  ASSERT_EQ(r.events.size(), d.events.size());
  for (std::size_t i = 0; i < d.events.size(); ++i) {
    EXPECT_EQ(r.str(r.events[i].cat), d.str(d.events[i].cat));
    EXPECT_EQ(r.str(r.events[i].name), d.str(d.events[i].name));
    EXPECT_EQ(r.events[i].arg0, d.events[i].arg0);
    EXPECT_DOUBLE_EQ(r.events[i].vt, d.events[i].vt);
    EXPECT_EQ(r.events[i].wall_ns, d.events[i].wall_ns);
    EXPECT_EQ(r.events[i].track, d.events[i].track);
    EXPECT_EQ(r.events[i].phase, d.events[i].phase);
  }
  std::remove(path.c_str());
}

TEST(TraceExport, ReadBinaryRejectsGarbage) {
  const std::string path = testing::TempDir() + "/trace_garbage.trace";
  { std::ofstream(path) << "definitely not a trace"; }
  TraceData r;
  EXPECT_FALSE(read_binary(path, &r));
  EXPECT_FALSE(read_binary(path + ".does-not-exist", &r));
  std::remove(path.c_str());
}

TEST(TraceExport, ChromeJsonCarriesBothClocksAndEscapes) {
  const std::string path = testing::TempDir() + "/trace_export.json";
  ASSERT_TRUE(write_chrome_json(sample_data(), path));
  const std::string js = slurp(path);
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  // The span has a virtual stamp: it shows on both clock processes.  The
  // wall-only instant must appear exactly once (pid 2 only).
  std::size_t phase_hits = 0, retry_hits = 0;
  for (std::size_t at = js.find("\"phase\""); at != std::string::npos;
       at = js.find("\"phase\"", at + 1))
    ++phase_hits;
  for (std::size_t at = js.find("\"retry\""); at != std::string::npos;
       at = js.find("\"retry\"", at + 1))
    ++retry_hits;
  EXPECT_EQ(phase_hits, 4u);  // B+E on the virtual pid, B+E on the wall pid
  EXPECT_EQ(retry_hits, 1u);
  EXPECT_NE(js.find("rank \\\"0\\\""), std::string::npos) << "escaping";
  EXPECT_NE(js.find("\"virtual time\""), std::string::npos);
  EXPECT_NE(js.find("\"wall time\""), std::string::npos);
  EXPECT_NE(js.find("\"dropped\":5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExport, MergeRemapsIdsPrefixesTracksAndAlignsWallClock) {
  TraceData base = sample_data();  // epoch 1'000'000
  TraceData shard;
  shard.epoch_realtime_ns = 4'000'000;  // started 3 ms after base
  const std::uint32_t t =
      static_cast<std::uint32_t>(shard.tracks.size());
  shard.tracks.push_back({"rank 0", 1});
  TraceEventRow e;
  e.cat = shard.intern("sweep");
  e.name = shard.intern("point");
  e.vt = -1.0;
  e.wall_ns = 10;
  e.track = t;
  e.phase = 'i';
  shard.events.push_back(e);
  shard.dropped = 2;

  merge_into(&base, shard, "task-3/");
  ASSERT_EQ(base.events.size(), 4u);
  const TraceEventRow& m = base.events.back();
  EXPECT_EQ(base.str(m.cat), "sweep");
  EXPECT_EQ(base.str(m.name), "point");
  EXPECT_EQ(base.tracks[m.track].name, "task-3/rank 0");
  EXPECT_EQ(m.wall_ns, 10u + 3'000'000u) << "epoch delta applied";
  EXPECT_EQ(base.dropped, 7u);
}

TEST(TraceExport, SortAndSummarizeRollUpSpans) {
  TraceData d = sample_data();
  std::swap(d.events[0], d.events[2]);  // out of wall order
  sort_events(&d);
  EXPECT_EQ(d.events.front().wall_ns, 100u);
  EXPECT_EQ(d.events.back().wall_ns, 400u);

  const std::vector<TraceSummaryRow> rows = summarize(d);
  ASSERT_EQ(rows.size(), 2u);
  const auto phase =
      rows[0].name == "phase" ? rows[0] : rows[1];
  const auto retry =
      rows[0].name == "retry" ? rows[0] : rows[1];
  EXPECT_EQ(phase.cat, "runtime");
  EXPECT_EQ(phase.count, 1u);  // one matched B/E pair
  EXPECT_NEAR(phase.wall_total_s, 300e-9, 1e-15);
  EXPECT_NEAR(phase.vt_total_s, 0.5, 1e-12);
  EXPECT_EQ(retry.count, 1u);
  EXPECT_EQ(retry.wall_total_s, 0.0);
}

TEST(TraceExport, SummarizeCountsTornSpansAsTruncated) {
  // Two torn shapes a killed worker leaves behind: a BEGIN with no END at
  // the tail of the trace, and a nested BEGIN discarded when an outer END
  // unwinds past it.  Both must be counted as truncated (and excluded from
  // count/totals) instead of silently dropped.
  TraceData d;
  d.epoch_realtime_ns = 1'000'000;
  const std::uint32_t track = static_cast<std::uint32_t>(d.tracks.size());
  d.tracks.push_back({"rank 0", 1});
  auto ev = [&](const char* name, char phase, std::uint64_t wall, double vt) {
    TraceEventRow r;
    r.cat = d.intern("runtime");
    r.name = d.intern(name);
    r.vt = vt;
    r.wall_ns = wall;
    r.track = track;
    r.phase = phase;
    return r;
  };
  d.events = {
      ev("phase", 'B', 100, 0.25),
      ev("solve", 'B', 150, 0.30),  // discarded by phase's END unwind
      ev("phase", 'E', 400, 0.75),
      ev("phase", 'B', 500, 1.00),  // worker killed mid-phase: no END
  };

  const std::vector<TraceSummaryRow> rows = summarize(d);
  ASSERT_EQ(rows.size(), 2u);
  const TraceSummaryRow& phase = rows[0].name == "phase" ? rows[0] : rows[1];
  const TraceSummaryRow& solve = rows[0].name == "solve" ? rows[0] : rows[1];
  EXPECT_EQ(phase.name, "phase");
  EXPECT_EQ(phase.count, 1u);  // only the matched pair rolls up
  EXPECT_EQ(phase.truncated, 1u);
  EXPECT_NEAR(phase.wall_total_s, 300e-9, 1e-15);
  EXPECT_NEAR(phase.vt_total_s, 0.5, 1e-12);
  EXPECT_EQ(solve.name, "solve");
  EXPECT_EQ(solve.count, 0u);
  EXPECT_EQ(solve.truncated, 1u);
  EXPECT_EQ(solve.wall_total_s, 0.0);

  // A clean trace reports zero truncation.
  TraceData clean = sample_data();
  for (const TraceSummaryRow& r : summarize(clean))
    EXPECT_EQ(r.truncated, 0u) << r.name;
}

// ---- metrics --------------------------------------------------------------

TEST(Metrics, CountersGaugesHistogramsRoundTrip) {
  MetricsRegistry reg;
  reg.counter("a.count")->add(3);
  reg.counter("a.count")->add();  // same handle via get-or-create
  reg.gauge("b.gauge")->set(2.5);
  auto* h = reg.histogram("c.hist");
  h->observe(1.0);
  h->observe(4.0);
  h->observe(0.25);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("b.gauge"), 2.5);
  const auto& hs = snap.histograms.at("c.hist");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 5.25);
  EXPECT_DOUBLE_EQ(hs.min, 0.25);
  EXPECT_DOUBLE_EQ(hs.max, 4.0);

  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, ConcurrentAddsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&reg] {
      auto* c = reg.counter("hot");
      auto* h = reg.histogram("obs");
      for (int i = 0; i < kAdds; ++i) {
        c->add();
        h->observe(1.0);
      }
    });
  for (auto& t : ts) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hot"),
            static_cast<std::uint64_t>(kThreads) * kAdds);
  EXPECT_EQ(snap.histograms.at("obs").count,
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, JsonIsDeterministicSortedAndStructured) {
  MetricsRegistry reg;
  reg.counter("z.last")->add(1);
  reg.counter("a.first")->add(2);
  reg.gauge("mid")->set(1.5);
  reg.histogram("h")->observe(2.0);
  const std::string js = reg.snapshot().to_json();
  EXPECT_EQ(js, reg.snapshot().to_json()) << "deterministic";
  EXPECT_LT(js.find("a.first"), js.find("z.last")) << "sorted keys";
  EXPECT_NE(js.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(js.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(js.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(js.find("\"count\":1"), std::string::npos);
}

// ---- end to end -----------------------------------------------------------

TEST(TraceIntegration, RunOnceEmitsRuntimePhaseSpansInVirtualTime) {
  auto& rec = TraceRecorder::instance();
  rec.start();
  exp::RunConfig cfg;
  cfg.workload = "cg";
  cfg.wcfg.cls = 'S';
  // Enough iterations for the 2-iteration profiling window to close and
  // the planner to actually solve.
  cfg.wcfg.iterations = 4;
  cfg.wcfg.nranks = 2;
  cfg.policy = exp::Policy::kUnimem;
  const exp::RunResult res = exp::run_once(cfg);
  const TraceData data = rec.stop();
  EXPECT_GT(res.time_s, 0.0);

  std::size_t begins = 0, ends = 0, solves = 0;
  std::set<std::string> track_names;
  for (const TraceEventRow& e : data.events) {
    if (data.str(e.cat) == "runtime" && data.str(e.name) == "phase") {
      EXPECT_GE(e.vt, 0.0) << "phases carry the virtual clock";
      if (e.phase == 'B') ++begins;
      if (e.phase == 'E') ++ends;
    }
    if (data.str(e.name) == "plan.solve" && e.phase == 'B') ++solves;
    track_names.insert(data.tracks[e.track].name);
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends) << "spans are balanced";
  EXPECT_GE(solves, 1u) << "the planner ran at least once";
  EXPECT_TRUE(track_names.count("rank 0") == 1 &&
              track_names.count("rank 1") == 1)
      << "per-rank tracks are named";

  // run_once also published into the global metrics registry.
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_GE(snap.counters.at("runtime.replan_checks"), 0u);
  EXPECT_EQ(snap.histograms.at("runtime.world_time_s").count >= 1, true);
  MetricsRegistry::global().reset();
}

}  // namespace
}  // namespace unimem::trace
