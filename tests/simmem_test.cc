// Tests for the tiered-memory substrate: arena allocator invariants,
// tier configs (Table 1), the HMS copy model, the DRAM arbiter, and the
// N-tier topology layer (backend registry, parse_topology, per-tier
// arbiter allowances).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "simmem/arena.h"
#include "simmem/dram_arbiter.h"
#include "simmem/hetero_memory.h"
#include "simmem/tier_config.h"

namespace unimem::mem {
namespace {

TEST(Arena, BasicAllocFree) {
  Arena a(kMiB);
  void* p = a.allocate(1000);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(a.contains(p));
  EXPECT_EQ(a.used(), align_up(1000, kCacheLine));
  a.deallocate(p);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.free_bytes(), a.capacity());
}

TEST(Arena, AlignmentIs64) {
  Arena a(kMiB);
  for (int i = 0; i < 10; ++i) {
    void* p = a.allocate(i * 7 + 1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLine, 0u);
  }
}

TEST(Arena, ReturnsNullWhenFull) {
  Arena a(64 * kKiB);
  void* p = a.allocate(64 * kKiB);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.allocate(64), nullptr);
  a.deallocate(p);
  EXPECT_NE(a.allocate(64), nullptr);
}

TEST(Arena, ZeroAllocation) {
  Arena a(kMiB);
  EXPECT_EQ(a.allocate(0), nullptr);
  a.deallocate(nullptr);  // must be a no-op
}

TEST(Arena, CoalescingAllowsFullReuse) {
  Arena a(256 * kKiB);
  void* p1 = a.allocate(64 * kKiB);
  void* p2 = a.allocate(64 * kKiB);
  void* p3 = a.allocate(64 * kKiB);
  ASSERT_NE(p3, nullptr);
  // Free in an order that exercises both-side coalescing.
  a.deallocate(p1);
  a.deallocate(p3);
  a.deallocate(p2);
  EXPECT_EQ(a.largest_free_block(), a.capacity());
  EXPECT_NE(a.allocate(a.capacity()), nullptr);
}

TEST(Arena, PeakTracking) {
  Arena a(kMiB);
  void* p1 = a.allocate(256 * kKiB);
  void* p2 = a.allocate(128 * kKiB);
  a.deallocate(p1);
  EXPECT_EQ(a.peak_used(), 384 * kKiB);
  a.deallocate(p2);
  EXPECT_EQ(a.peak_used(), 384 * kKiB);
}

TEST(Arena, WritesDoNotCorruptNeighbours) {
  Arena a(kMiB);
  auto* p1 = static_cast<unsigned char*>(a.allocate(4096));
  auto* p2 = static_cast<unsigned char*>(a.allocate(4096));
  std::memset(p1, 0xAA, 4096);
  std::memset(p2, 0x55, 4096);
  EXPECT_EQ(p1[4095], 0xAA);
  EXPECT_EQ(p2[0], 0x55);
}

/// Property test: random alloc/free stress keeps the accounting exact and
/// never produces overlapping blocks.
class ArenaStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaStress, RandomAllocFree) {
  Arena a(2 * kMiB);
  Rng rng(GetParam());
  struct Block {
    std::byte* p;
    std::size_t len;
  };
  std::vector<Block> live;
  std::size_t expected_used = 0;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.uniform() < 0.55) {
      std::size_t want = 64 + rng.below(16 * kKiB);
      void* p = a.allocate(want);
      if (p != nullptr) {
        std::size_t len = align_up(want, kCacheLine);
        // No overlap with any live block.
        auto* np = static_cast<std::byte*>(p);
        for (const Block& b : live)
          EXPECT_TRUE(np + len <= b.p || b.p + b.len <= np);
        live.push_back({np, len});
        expected_used += len;
      }
    } else {
      std::size_t i = rng.below(live.size());
      a.deallocate(live[i].p);
      expected_used -= live[i].len;
      live[i] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(a.used(), expected_used);
    ASSERT_EQ(a.live_blocks(), live.size());
  }
  for (const Block& b : live) a.deallocate(b.p);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.largest_free_block(), a.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaStress,
                         ::testing::Values(1, 2, 3, 17, 99, 123456));

TEST(TierConfig, NvmScalingRatios) {
  TierConfig d = TierConfig::dram_basis(kMiB);
  TierConfig n = TierConfig::nvm_scaled(kMiB, 0.5, 4.0);
  EXPECT_DOUBLE_EQ(n.read_bw, d.read_bw * 0.5);
  EXPECT_DOUBLE_EQ(n.write_bw, d.write_bw * 0.5);
  EXPECT_DOUBLE_EQ(n.read_latency_s, d.read_latency_s * 4.0);
  EXPECT_DOUBLE_EQ(n.write_latency_s, d.write_latency_s * 4.0);
}

TEST(TierConfig, NumaEmulationMatchesPaper) {
  // §4: "the emulated NVM has 60% of DRAM bandwidth and 1.89x latency".
  TierConfig d = TierConfig::dram_basis(kMiB);
  TierConfig n = TierConfig::nvm_numa_emulated(kMiB);
  EXPECT_NEAR(n.read_bw / d.read_bw, 0.60, 1e-12);
  EXPECT_NEAR(n.read_latency_s / d.read_latency_s, 1.89, 1e-12);
}

TEST(TierConfig, Table1HasFourTechnologies) {
  std::size_t n = 0;
  const NvmTechnology* t = table1_technologies(&n);
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(t[0].name, "DRAM");
  EXPECT_EQ(t[1].name, "STT-RAM (ITRS'13)");
  EXPECT_EQ(t[2].name, "PCRAM");
  EXPECT_EQ(t[3].name, "ReRAM");
  // STT-RAM per Table 1: 60ns read, 80ns write, 800/600 MB/s.
  EXPECT_DOUBLE_EQ(t[1].read_ns_lo, 60);
  EXPECT_DOUBLE_EQ(t[1].write_ns_lo, 80);
  EXPECT_DOUBLE_EQ(t[1].rand_read_mbps_lo, 800);
  EXPECT_DOUBLE_EQ(t[1].rand_write_mbps_lo, 600);
}

TEST(HeteroMemory, TierOfAndAllocation) {
  HeteroMemory hms(HmsConfig::scaled(0.5, 1.0, kMiB, 4 * kMiB));
  void* d = hms.allocate(Tier::kDram, 1000);
  void* n = hms.allocate(Tier::kNvm, 1000);
  ASSERT_NE(d, nullptr);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(hms.tier_of(d), Tier::kDram);
  EXPECT_EQ(hms.tier_of(n), Tier::kNvm);
  hms.deallocate(Tier::kDram, d);
  hms.deallocate(Tier::kNvm, n);
}

TEST(HeteroMemory, CopyCostModel) {
  HeteroMemory hms(HmsConfig::scaled(0.5, 1.0, kMiB, 4 * kMiB));
  // NVM -> DRAM limited by min(nvm.read_bw, dram.write_bw) = nvm.read_bw.
  double up = hms.copy_seconds(kMiB, Tier::kNvm, Tier::kDram);
  EXPECT_NEAR(up, static_cast<double>(kMiB) / hms.config().nvm.read_bw, 1e-12);
  // Moving down is limited by NVM write bandwidth (= the slower side).
  double down = hms.copy_seconds(kMiB, Tier::kDram, Tier::kNvm);
  EXPECT_NEAR(down, static_cast<double>(kMiB) / hms.config().nvm.write_bw,
              1e-12);
  EXPECT_GT(down, 0.0);
}

TEST(DramArbiter, EnforcesAllowance) {
  DramArbiter arb(kMiB);
  EXPECT_TRUE(arb.request(512 * kKiB));
  EXPECT_TRUE(arb.request(512 * kKiB));
  EXPECT_FALSE(arb.request(1));
  EXPECT_EQ(arb.available(), 0u);
  arb.release(512 * kKiB);
  EXPECT_TRUE(arb.request(256 * kKiB));
  EXPECT_EQ(arb.granted(), 768 * kKiB);
}

TEST(TierBackends, BuiltinsRegisteredAndLookupWorks) {
  const std::vector<std::string> names = tier_backend_names();
  for (const char* want : {"cxl", "dram", "hbm", "nvm", "remote"})
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  TierFactory f = find_tier_backend("hbm");
  ASSERT_TRUE(f);
  const TierConfig t = f(kMiB);
  EXPECT_EQ(t.capacity_bytes, kMiB);
  EXPECT_DOUBLE_EQ(t.read_bw, TierConfig::hbm(kMiB).read_bw);
  EXPECT_FALSE(find_tier_backend("no-such-backend"));
}

TEST(TierBackends, RegistrationRejectsDuplicates) {
  auto toy = [](std::size_t cap) { return TierConfig::dram_basis(cap); };
  EXPECT_TRUE(register_tier_backend("simmem-test-toy", toy));
  EXPECT_FALSE(register_tier_backend("simmem-test-toy", toy));  // taken
  EXPECT_FALSE(register_tier_backend("dram", toy));             // built-in
  // The registered backend is immediately parseable.
  TopologyConfig topo = parse_topology("simmem-test-toy:1MiB,nvm:4MiB");
  ASSERT_EQ(topo.num_tiers(), 2u);
  EXPECT_EQ(topo.tiers[0].capacity_bytes, kMiB);
}

TEST(ParseTopology, LaddersSuffixesAndErrors) {
  TopologyConfig topo = parse_topology("hbm:1MiB,dram:4MiB,nvm:512MiB");
  ASSERT_EQ(topo.num_tiers(), 3u);
  EXPECT_EQ(topo.tiers[0].name, "HBM");
  EXPECT_EQ(topo.tiers[0].capacity_bytes, kMiB);
  EXPECT_EQ(topo.tiers[1].name, "DRAM");
  EXPECT_EQ(topo.tiers[1].capacity_bytes, 4 * kMiB);
  EXPECT_EQ(topo.tiers[2].capacity_bytes, 512 * kMiB);
  // KiB/GiB suffixes and plain bytes.
  EXPECT_EQ(parse_topology("dram:64KiB,nvm:1GiB").tiers[0].capacity_bytes,
            64 * kKiB);
  EXPECT_EQ(parse_topology("dram:4096,nvm:1MiB").tiers[0].capacity_bytes,
            4096u);
  EXPECT_THROW(parse_topology(""), std::invalid_argument);
  EXPECT_THROW(parse_topology("dram:1MiB"), std::invalid_argument);  // < 2
  EXPECT_THROW(parse_topology("bogus:1MiB,nvm:1MiB"), std::invalid_argument);
  EXPECT_THROW(parse_topology("dram:xx,nvm:1MiB"), std::invalid_argument);
}

TEST(HeteroMemory, NTierTopologyAllocationAndBackstop) {
  TopologyConfig topo = parse_topology("hbm:1MiB,dram:2MiB,nvm:16MiB");
  HeteroMemory hms(topo);
  EXPECT_EQ(hms.num_tiers(), 3u);
  EXPECT_EQ(hms.backstop_tier(), tier(2));
  // The synthesized 2-tier view pairs the fastest tier with the backstop.
  EXPECT_DOUBLE_EQ(hms.config().dram.read_bw, TierConfig::hbm(0).read_bw);
  EXPECT_EQ(hms.config().nvm.capacity_bytes, 16 * kMiB);
  // Every tier allocates from its own arena and tier_of() round-trips.
  for (int k = 0; k < 3; ++k) {
    void* p = hms.allocate(tier(k), 1000);
    ASSERT_NE(p, nullptr) << "tier " << k;
    EXPECT_EQ(hms.tier_of(p), tier(k));
    hms.deallocate(tier(k), p);
  }
  // Copy cost between adjacent tiers is limited by the slower endpoint.
  const double down = hms.copy_seconds(kMiB, tier(0), tier(2));
  EXPECT_NEAR(down,
              static_cast<double>(kMiB) / hms.tier_config(tier(2)).write_bw,
              1e-12);
}

TEST(DramArbiter, PerTierAllowances) {
  DramArbiter arb({kMiB, 2 * kMiB, DramArbiter::kUnbounded});
  EXPECT_TRUE(arb.constrains(0));
  EXPECT_TRUE(arb.constrains(1));
  EXPECT_FALSE(arb.constrains(2));   // explicit kUnbounded
  EXPECT_FALSE(arb.constrains(7));   // past the vector: unmetered
  EXPECT_FALSE(arb.constrains(-1));
  // Tiers meter independently.
  EXPECT_TRUE(arb.request_tier(0, kMiB));
  EXPECT_FALSE(arb.request_tier(0, 1));
  EXPECT_TRUE(arb.request_tier(1, 2 * kMiB));
  EXPECT_FALSE(arb.request_tier(1, 1));
  EXPECT_TRUE(arb.request_tier(2, std::size_t{1} << 40));  // never refused
  arb.release_tier(1, kMiB);
  EXPECT_TRUE(arb.request_tier(1, kMiB));
  EXPECT_EQ(arb.granted_tier(1), 2 * kMiB);
  EXPECT_EQ(arb.allowance_tier(2), DramArbiter::kUnbounded);
  // The tier-0 shorthands stay the 2-tier reading.
  EXPECT_EQ(arb.granted(), kMiB);
  EXPECT_EQ(arb.available(), 0u);
}

TEST(DramArbiter, ConcurrentRequestsStayBounded) {
  DramArbiter arb(1000 * kCacheLine);
  std::vector<std::thread> threads;
  std::atomic<int> granted{0};
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i)
        if (arb.request(kCacheLine)) ++granted;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), 1000);
  EXPECT_EQ(arb.available(), 0u);
}

}  // namespace
}  // namespace unimem::mem
