// Tests for the placement planner: knapsack-driven selection, budget
// safety, local vs global search, dependency-respecting triggers, and the
// chunking-granularity switch.
#include <gtest/gtest.h>

#include "core/phase_dag.h"
#include "core/planner.h"
#include "core/profiler.h"
#include "core/registry.h"

namespace unimem::rt {
namespace {

constexpr double kT = 0.01;  ///< phase duration used in synthetic profiles

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : hms_(mem::HmsConfig::scaled(0.5, 1.0, 32 * kMiB, 128 * kMiB)),
        reg_(&hms_, nullptr),
        prof_(&reg_) {
    ModelParams p;
    p.bw_peak = hms_.config().nvm.read_bw;
    model_ = std::make_unique<PerformanceModel>(p, hms_.config().dram,
                                                hms_.config().nvm);
  }

  DataObject* obj(const char* name, std::size_t bytes, bool chunkable = false) {
    return reg_.create(name, bytes, ObjectTraits{chunkable, -1},
                       mem::Tier::kNvm, chunk_bytes_for(chunkable, bytes));
  }

  /// Record a synthetic computation phase where each listed object is
  /// "observed" with the given miss count (bandwidth-heavy profile).
  void phase(std::initializer_list<std::pair<DataObject*, std::uint64_t>> hot) {
    perf::PhaseSamples s;
    s.total_samples = 10000;
    std::uint64_t total = 0;
    for (auto& [o, misses] : hot) total += misses;
    s.total_miss_count = total;
    for (auto& [o, misses] : hot) {
      // Samples proportional to each object's share, spread over chunks.
      std::uint64_t n = misses * 8000 / std::max<std::uint64_t>(total, 1);
      for (std::uint64_t i = 0; i < n; i += 10) {
        std::uint32_t c = static_cast<std::uint32_t>(i % o->chunk_count());
        s.miss_addresses.push_back(
            reinterpret_cast<std::uint64_t>(o->chunk(c).data()) +
            (i * 64) % o->chunk(c).bytes);
      }
    }
    prof_.record_phase(s, kT);
  }

  void comm_phase() { prof_.record_comm_phase(kT / 10); }

  Plan plan(std::size_t budget, bool local = true, bool global = true,
            bool chunking = true) {
    PlannerOptions o;
    o.local_search = local;
    o.global_search = global;
    o.chunking = chunking;
    o.dram_budget = budget;
    Planner p(&reg_, model_.get(), o);
    return p.plan(prof_);
  }

  mem::HeteroMemory hms_;
  Registry reg_;
  Profiler prof_;
  std::unique_ptr<PerformanceModel> model_;
};

TEST_F(PlannerTest, EmptyProfileGivesNoPlan) {
  Plan p = plan(8 * kMiB);
  EXPECT_EQ(p.kind, Plan::Kind::kNone);
  EXPECT_EQ(p.migration_count(), 0u);
}

TEST_F(PlannerTest, GlobalSelectsHottestWithinBudget) {
  DataObject* hot = obj("hot", 2 * kMiB);
  DataObject* cold = obj("cold", 2 * kMiB);
  DataObject* big_hot = obj("big_hot", 2 * kMiB);
  phase({{hot, 500000}, {cold, 1000}, {big_hot, 400000}});
  comm_phase();
  Plan p = plan(5 * kMiB, /*local=*/false, /*global=*/true);
  ASSERT_EQ(p.kind, Plan::Kind::kGlobal);
  // hot and big_hot fit together (4 MiB <= 5 MiB) and dominate benefit.
  std::set<UnitRef> in_dram = p.dram_sets[0];
  EXPECT_TRUE(in_dram.count(UnitRef{hot->id(), 0}));
  EXPECT_TRUE(in_dram.count(UnitRef{big_hot->id(), 0}));
  EXPECT_FALSE(in_dram.count(UnitRef{cold->id(), 0}));
}

TEST_F(PlannerTest, BudgetNeverExceeded) {
  std::vector<DataObject*> objs;
  for (int i = 0; i < 8; ++i) {
    // Built with append (not operator+) to dodge GCC 12's -Wrestrict
    // false positive at -O3, which broke Release builds.
    std::string name("o");
    name += std::to_string(i);
    objs.push_back(obj(name.c_str(), kMiB));
  }
  phase({{objs[0], 100000},
         {objs[1], 90000},
         {objs[2], 80000},
         {objs[3], 70000},
         {objs[4], 60000}});
  phase({{objs[5], 100000}, {objs[6], 90000}, {objs[7], 80000}});
  for (std::size_t budget : {kMiB, 2 * kMiB, 3 * kMiB, 5 * kMiB}) {
    Plan p = plan(budget);
    for (const auto& s : p.dram_sets) {
      std::size_t bytes = 0;
      for (const UnitRef& u : s) bytes += reg_.unit_bytes(u);
      EXPECT_LE(bytes, budget);
    }
  }
}

TEST_F(PlannerTest, LocalSearchRotatesDisjointHotSets) {
  // Two phases with disjoint hot objects, each ~ the whole budget: a
  // global placement can hold only one; the local plan should migrate.
  DataObject* a = obj("a", 3 * kMiB);
  DataObject* b = obj("b", 3 * kMiB);
  phase({{a, 800000}});
  comm_phase();
  phase({{b, 800000}});
  comm_phase();
  Plan local = plan(4 * kMiB, true, false);
  ASSERT_EQ(local.kind, Plan::Kind::kLocal);
  EXPECT_GE(local.migration_count(), 2u);
  // Phase 0's resident set holds a, phase 2's holds b.
  EXPECT_TRUE(local.dram_sets[0].count(UnitRef{a->id(), 0}));
  EXPECT_TRUE(local.dram_sets[2].count(UnitRef{b->id(), 0}));
  EXPECT_FALSE(local.dram_sets[2].count(UnitRef{a->id(), 0}));
}

TEST_F(PlannerTest, PlanPicksPredictedBetterSearch) {
  // Same stable object hot in every phase: local and global agree on the
  // placement and the chosen plan must not schedule recurring migrations.
  DataObject* a = obj("a", 2 * kMiB);
  for (int i = 0; i < 3; ++i) {
    phase({{a, 500000}});
    comm_phase();
  }
  Plan p = plan(4 * kMiB);
  EXPECT_LE(p.migration_count(), 1u);
  EXPECT_LT(p.predicted_iteration_s, 6 * kT + 3 * kT / 10);
}

TEST_F(PlannerTest, TriggerRespectsDependencyWindow) {
  // Object b is needed in phase 2 and referenced nowhere else: its fill
  // must trigger strictly after phase 2's previous use (i.e. not in the
  // phases where it is busy) and be marked as needed at phase 2.
  DataObject* a = obj("a", 3 * kMiB);
  DataObject* b = obj("b", 3 * kMiB);
  phase({{a, 800000}});
  comm_phase();
  phase({{b, 800000}});
  comm_phase();
  Plan p = plan(4 * kMiB, true, false);
  bool found = false;
  for (std::size_t ph = 0; ph < p.at_phase.size(); ++ph) {
    for (const PlannedMigration& m : p.at_phase[ph]) {
      if (m.unit.object == b->id() && m.to == mem::Tier::kDram) {
        found = true;
        EXPECT_EQ(m.needed_phase, 2u);
        EXPECT_NE(m.trigger_phase, 2u);  // proactive, not synchronous
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PlannerTest, ChunkingAllowsPartialPlacement) {
  // A 12 MiB chunkable object against a 6 MiB budget: with chunking the
  // planner places some chunks; without, the object is all-or-nothing and
  // cannot be placed at all.
  DataObject* big = obj("big", 12 * kMiB, /*chunkable=*/true);
  ASSERT_GT(big->chunk_count(), 1u);
  phase({{big, 1500000}});
  comm_phase();
  Plan with = plan(6 * kMiB, false, true, /*chunking=*/true);
  std::size_t placed = 0;
  for (const UnitRef& u : with.dram_sets[0])
    if (u.object == big->id()) ++placed;
  EXPECT_GT(placed, 0u);
  EXPECT_LT(placed, big->chunk_count());

  Plan without = plan(6 * kMiB, false, true, /*chunking=*/false);
  for (const UnitRef& u : without.dram_sets[0])
    EXPECT_NE(u.object, big->id());
}

TEST_F(PlannerTest, EvictionMakesRoomForHotterObject) {
  DataObject* stale = obj("stale", 3 * kMiB);
  DataObject* hot = obj("hot", 3 * kMiB);
  // stale starts resident in DRAM.
  ASSERT_TRUE(reg_.migrate(UnitRef{stale->id(), 0}, mem::Tier::kDram));
  phase({{hot, 900000}, {stale, 1000}});
  comm_phase();
  Plan p = plan(4 * kMiB);
  bool evicts_stale = false, fills_hot = false;
  for (const auto& v : p.at_phase)
    for (const PlannedMigration& m : v) {
      if (m.unit.object == stale->id() && m.to == mem::Tier::kNvm)
        evicts_stale = true;
      if (m.unit.object == hot->id() && m.to == mem::Tier::kDram)
        fills_hot = true;
    }
  EXPECT_TRUE(evicts_stale);
  EXPECT_TRUE(fills_hot);
}

TEST_F(PlannerTest, GlobalSlackFillRidesNonReferencingGap) {
  // x is hot in phases 0 and 4 with a three-phase gap between the
  // references.  The classic global trigger parks the one-time fill right
  // at the first reference (zero window); slack mode may ride any
  // non-referencing run, so the fill should trigger at phase 1 and be due
  // at the next reference, phase 4 — even when the single-chain DAG has no
  // real slack (fallback picks the maximal-overlap run).
  DataObject* x = obj("x", 3 * kMiB);
  DataObject* y = obj("y", 3 * kMiB);
  phase({{x, 800000}});
  phase({{y, 100000}});
  phase({{y, 100000}});
  phase({{y, 100000}});
  phase({{x, 800000}});

  auto fill_of = [&](const Plan& p) -> const PlannedMigration* {
    for (const auto& v : p.at_phase)
      for (const PlannedMigration& m : v)
        if (m.unit.object == x->id() && m.to == mem::Tier::kDram) return &m;
    return nullptr;
  };

  PlannerOptions o;
  o.local_search = false;
  o.dram_budget = 4 * kMiB;
  Planner off(&reg_, model_.get(), o);
  Plan off_plan = off.plan(prof_);
  ASSERT_EQ(off_plan.kind, Plan::Kind::kGlobal);
  const PlannedMigration* off_fill = fill_of(off_plan);
  ASSERT_NE(off_fill, nullptr);
  EXPECT_EQ(off_fill->trigger_phase, 0u);
  EXPECT_EQ(off_plan.slack_scheduled + off_plan.fallback_triggers, 0u);

  PhaseDag dag = PhaseDag::from_profile({{kT, kT, kT, kT, kT}},
                                        {{0, 0, 0, 0, 0}});
  ASSERT_TRUE(dag.compute());
  o.dag = &dag;
  Planner slack(&reg_, model_.get(), o);
  Plan slack_plan = slack.plan(prof_);
  ASSERT_EQ(slack_plan.kind, Plan::Kind::kGlobal);
  const PlannedMigration* slack_fill = fill_of(slack_plan);
  ASSERT_NE(slack_fill, nullptr);
  EXPECT_EQ(slack_fill->trigger_phase, 1u);
  EXPECT_EQ(slack_fill->needed_phase, 4u);
  // Single chain: every phase is critical, so the DAG endorsed nothing and
  // the run was a fallback choice.
  EXPECT_EQ(slack_plan.slack_scheduled, 0u);
  EXPECT_GE(slack_plan.fallback_triggers, 1u);
}

TEST_F(PlannerTest, NoMoveTimeSumsPhases) {
  DataObject* a = obj("a", kMiB);
  phase({{a, 1000}});
  comm_phase();
  PlannerOptions o;
  o.dram_budget = kMiB;
  Planner p(&reg_, model_.get(), o);
  EXPECT_NEAR(p.no_move_time(prof_), kT + kT / 10, 1e-12);
}

}  // namespace
}  // namespace unimem::rt
