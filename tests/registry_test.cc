// Tests for the object registry: allocation, chunking, migration with
// handle/alias repointing, address attribution, and arbiter integration.
#include <gtest/gtest.h>

#include <cstring>

#include "core/registry.h"
#include "simmem/dram_arbiter.h"

namespace unimem::rt {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest()
      : hms_(mem::HmsConfig::scaled(0.5, 1.0, 4 * kMiB, 64 * kMiB)),
        arbiter_(2 * kMiB),
        reg_(&hms_, &arbiter_) {}

  mem::HeteroMemory hms_;
  mem::DramArbiter arbiter_;
  Registry reg_;
};

TEST_F(RegistryTest, CreateZeroesPayload) {
  DataObject* o = reg_.create("x", 4096, {}, mem::Tier::kNvm);
  auto s = o->as_span<double>();
  for (double v : s) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(o->bytes(), 4096u);
  EXPECT_EQ(o->chunk_count(), 1u);
  EXPECT_EQ(reg_.find("x"), o);
  EXPECT_EQ(reg_.find("nope"), nullptr);
}

TEST_F(RegistryTest, ChunkingSplitsLargeObjects) {
  DataObject* o =
      reg_.create("big", 5 * kMiB, ObjectTraits{true, -1}, mem::Tier::kNvm,
                  kMiB);
  EXPECT_EQ(o->chunk_count(), 5u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < o->chunk_count(); ++i)
    total += o->chunk(i).bytes;
  EXPECT_GE(total, 5 * kMiB);
  // Units enumerate per chunk.
  EXPECT_EQ(reg_.all_units().size(), 5u);
}

TEST_F(RegistryTest, ChunkHelperRespectsThreshold) {
  EXPECT_EQ(chunk_bytes_for(true, kChunkThreshold), 0u);
  EXPECT_EQ(chunk_bytes_for(true, kChunkThreshold + 1), kChunkBytes);
  EXPECT_EQ(chunk_bytes_for(false, 100 * kMiB), 0u);
}

TEST_F(RegistryTest, MigratePreservesData) {
  DataObject* o = reg_.create("m", 64 * kKiB, {}, mem::Tier::kNvm);
  auto s = o->as_span<double>();
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<double>(i);
  void* old = o->chunk(0).data();
  ASSERT_TRUE(reg_.migrate(UnitRef{o->id(), 0}, mem::Tier::kDram));
  EXPECT_EQ(o->chunk(0).current_tier(), mem::Tier::kDram);
  EXPECT_NE(o->chunk(0).data(), old);
  auto s2 = o->as_span<double>();
  for (std::size_t i = 0; i < s2.size(); ++i)
    ASSERT_EQ(s2[i], static_cast<double>(i));
}

TEST_F(RegistryTest, MigrateToSameTierIsNoOp) {
  DataObject* o = reg_.create("n", 4096, {}, mem::Tier::kNvm);
  void* p = o->chunk(0).data();
  EXPECT_TRUE(reg_.migrate(UnitRef{o->id(), 0}, mem::Tier::kNvm));
  EXPECT_EQ(o->chunk(0).data(), p);
}

TEST_F(RegistryTest, MigrationFailsWhenArbiterRefuses) {
  // Arbiter allows 2 MiB; a 3 MiB object cannot be promoted.
  DataObject* o = reg_.create("big", 3 * kMiB, {}, mem::Tier::kNvm);
  EXPECT_FALSE(reg_.migrate(UnitRef{o->id(), 0}, mem::Tier::kDram));
  EXPECT_EQ(o->chunk(0).current_tier(), mem::Tier::kNvm);
  EXPECT_EQ(arbiter_.granted(), 0u);  // grant rolled back
}

TEST_F(RegistryTest, AliasRepointedOnMigration) {
  DataObject* o = reg_.create("a", 4096, {}, mem::Tier::kNvm);
  void* alias = nullptr;
  reg_.add_alias(o->id(), &alias);
  EXPECT_EQ(alias, o->chunk(0).data());
  ASSERT_TRUE(reg_.migrate(UnitRef{o->id(), 0}, mem::Tier::kDram));
  EXPECT_EQ(alias, o->chunk(0).data());  // follows the move
}

TEST_F(RegistryTest, AttributionFollowsMigration) {
  DataObject* o = reg_.create("t", 4096, {}, mem::Tier::kNvm);
  auto addr = reinterpret_cast<std::uint64_t>(o->chunk(0).data());
  auto hit = reg_.attribute(addr + 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->object, o->id());
  ASSERT_TRUE(reg_.migrate(UnitRef{o->id(), 0}, mem::Tier::kDram));
  // Old address no longer attributes; new one does.
  EXPECT_FALSE(reg_.attribute(addr + 100).has_value());
  auto naddr = reinterpret_cast<std::uint64_t>(o->chunk(0).data());
  EXPECT_TRUE(reg_.attribute(naddr + 100).has_value());
}

TEST_F(RegistryTest, AttributionPerChunk) {
  DataObject* o =
      reg_.create("c", 3 * kMiB, ObjectTraits{true, -1}, mem::Tier::kNvm,
                  kMiB);
  ASSERT_EQ(o->chunk_count(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<std::uint64_t>(o->chunk(i).data());
    auto hit = reg_.attribute(a + 5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->chunk, i);
  }
}

TEST_F(RegistryTest, DestroyReleasesEverything) {
  std::size_t before = hms_.arena(mem::Tier::kNvm).used();
  DataObject* o = reg_.create("d", kMiB, {}, mem::Tier::kNvm);
  auto addr = reinterpret_cast<std::uint64_t>(o->chunk(0).data());
  reg_.destroy(o->id());
  EXPECT_EQ(hms_.arena(mem::Tier::kNvm).used(), before);
  EXPECT_FALSE(reg_.attribute(addr).has_value());
  EXPECT_EQ(reg_.object_count(), 0u);
}

TEST_F(RegistryTest, ResidentBytesTracksTiers) {
  reg_.create("a", kMiB, {}, mem::Tier::kNvm);
  DataObject* b = reg_.create("b", kMiB, {}, mem::Tier::kNvm);
  EXPECT_EQ(reg_.resident_bytes(mem::Tier::kNvm), 2 * kMiB);
  EXPECT_EQ(reg_.resident_bytes(mem::Tier::kDram), 0u);
  ASSERT_TRUE(reg_.migrate(UnitRef{b->id(), 0}, mem::Tier::kDram));
  EXPECT_EQ(reg_.resident_bytes(mem::Tier::kNvm), kMiB);
  EXPECT_EQ(reg_.resident_bytes(mem::Tier::kDram), kMiB);
}

TEST_F(RegistryTest, ThrowsWhenNvmFull) {
  EXPECT_THROW(reg_.create("huge", 65 * kMiB, {}, mem::Tier::kNvm),
               std::bad_alloc);
}

}  // namespace
}  // namespace unimem::rt
