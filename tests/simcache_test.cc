// Tests for the cache substrate: exact LRU behaviour, descriptor
// arithmetic, and the exact-vs-analytic agreement property the benches
// depend on (they use the analytic model; tests anchor it to ground truth).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "simcache/access_descriptor.h"
#include "simcache/analytic_cache.h"
#include "simcache/exact_cache.h"

namespace unimem::cache {
namespace {

constexpr int kMlp = 32;

TEST(AccessDescriptor, LineTouchArithmetic) {
  AccessDescriptor d;
  d.region_bytes = kMiB;
  d.accesses = 1024;
  d.access_bytes = 8;
  d.pattern = Pattern::kSequential;
  EXPECT_EQ(d.line_touches(), 128u);  // 8 doubles per line
  d.pattern = Pattern::kRandom;
  EXPECT_EQ(d.line_touches(), 1024u);  // every access a fresh line
  d.pattern = Pattern::kStrided;
  d.stride_bytes = 128;
  EXPECT_EQ(d.line_touches(), 1024u);  // stride >= line
  d.stride_bytes = 32;
  EXPECT_EQ(d.line_touches(), 512u);  // two accesses share a line
}

TEST(AccessDescriptor, FootprintLines) {
  AccessDescriptor d;
  d.region_bytes = kMiB;
  d.pattern = Pattern::kSequential;
  EXPECT_EQ(d.footprint_lines(), kMiB / 64);
  d.pattern = Pattern::kStrided;
  d.stride_bytes = 256;
  EXPECT_EQ(d.footprint_lines(), kMiB / 256);  // only every 4th line
}

TEST(AccessDescriptor, EffectiveMlp) {
  AccessDescriptor d;
  d.pattern = Pattern::kSequential;
  EXPECT_EQ(effective_mlp(d, kMlp), kMlp);
  d.pattern = Pattern::kPointerChase;
  EXPECT_EQ(effective_mlp(d, kMlp), 1);  // dependent chain, always 1
  d.mlp = 16;
  EXPECT_EQ(effective_mlp(d, kMlp), 1);  // override cannot break dependence
  d.pattern = Pattern::kRandom;
  EXPECT_EQ(effective_mlp(d, kMlp), 16);  // override honoured
  d.mlp = 0;
  EXPECT_EQ(effective_mlp(d, kMlp), kMlp / 4);
}

TEST(ExactCache, ColdMissThenHit) {
  ExactCache c(CacheConfig{64 * kKiB, 16, 64});
  EXPECT_TRUE(c.touch(0));
  EXPECT_FALSE(c.touch(0));
  EXPECT_FALSE(c.touch(32));  // same line
  EXPECT_TRUE(c.touch(64));   // next line
}

TEST(ExactCache, LruEvictionOrder) {
  // Direct-mapped-like tiny config: 4 sets x 2 ways, line 64.
  ExactCache c(CacheConfig{512, 2, 64});
  // Three lines mapping to the same set (set stride = 4 lines = 256 B).
  EXPECT_TRUE(c.touch(0));
  EXPECT_TRUE(c.touch(256));
  EXPECT_FALSE(c.touch(0));    // still resident
  EXPECT_TRUE(c.touch(512));   // evicts 256 (LRU), not 0
  EXPECT_FALSE(c.touch(0));
  EXPECT_TRUE(c.touch(256));   // was evicted
}

TEST(ExactCache, SmallRegionIsCapturedAfterWarmup) {
  ExactCache c;  // 1 MiB
  std::vector<std::byte> buf(256 * kKiB);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = Pattern::kSequential;
  d.accesses = 8 * (buf.size() / 8);  // 8 passes
  AccessResult r = c.process(d, kMlp);
  // Only the first pass misses.
  EXPECT_NEAR(static_cast<double>(r.misses),
              static_cast<double>(buf.size() / 64),
              static_cast<double>(buf.size() / 64) * 0.05);
}

TEST(ExactCache, StreamLargerThanCacheMissesEveryLine) {
  ExactCache c;  // 1 MiB
  std::vector<std::byte> buf(8 * kMiB);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = Pattern::kSequential;
  d.accesses = 2 * (buf.size() / 8);  // 2 passes, both should miss fully
  AccessResult r = c.process(d, kMlp);
  EXPECT_EQ(r.line_touches, 2 * buf.size() / 64);
  EXPECT_NEAR(static_cast<double>(r.misses),
              static_cast<double>(r.line_touches),
              static_cast<double>(r.line_touches) * 0.01);
}

TEST(ExactCache, ResetClearsState) {
  ExactCache c;
  EXPECT_TRUE(c.touch(0));
  EXPECT_FALSE(c.touch(0));
  c.reset();
  EXPECT_TRUE(c.touch(0));
}

TEST(AnalyticCache, SerializedMissesFollowMlp) {
  AnalyticCache c;
  std::vector<std::byte> buf(8 * kMiB);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.accesses = buf.size() / 8;
  d.pattern = Pattern::kSequential;
  AccessResult seq = c.process(d, kMlp);
  d.pattern = Pattern::kPointerChase;
  AccessResult chase = c.process(d, kMlp);
  EXPECT_NEAR(seq.serialized_misses * kMlp, static_cast<double>(seq.misses),
              1.0);
  EXPECT_DOUBLE_EQ(chase.serialized_misses,
                   static_cast<double>(chase.misses));
}

TEST(AnalyticCache, ChunkSlicesShareTheCache) {
  // Fourteen 1 MiB slices of one 14 MiB logical sweep must NOT each be
  // treated as cache-resident (the regression behind the FT bug).
  AnalyticCache c;
  std::vector<std::byte> buf(kMiB);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = kMiB;
  d.logical_bytes = 14 * kMiB;
  d.pattern = Pattern::kSequential;
  d.accesses = 4 * (kMiB / 8);  // several passes over the slice
  AccessResult r = c.process(d, kMlp);
  EXPECT_NEAR(static_cast<double>(r.misses),
              static_cast<double>(r.line_touches),
              static_cast<double>(r.line_touches) * 0.01);
}

// ---------------------------------------------------------------------------
// Property: ExactCache's bulk process() path (per-set pass shortcuts, CSR
// strided streams) is access-for-access equivalent to the retained touch()
// oracle.  The oracle below replays the descriptor's address stream one
// byte address at a time — the definitional reference implementation.

AccessResult oracle_process(ExactCache& c, const AccessDescriptor& d,
                            int default_mlp) {
  AccessResult r;
  if (d.accesses == 0 || d.region_bytes == 0 || d.base == nullptr) return r;
  const auto base = reinterpret_cast<std::uint64_t>(d.base);
  // Same seeding as ExactCache::process so randomized streams coincide.
  Rng rng(d.seed * 0x2545F4914F6CDD1Dull + 7);
  auto touch_count = [&](std::uint64_t addr) {
    ++r.line_touches;
    if (c.touch(addr)) ++r.misses;
  };
  switch (d.pattern) {
    case Pattern::kSequential: {
      const std::uint64_t touches = d.line_touches();
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      for (std::uint64_t i = 0; i < touches; ++i)
        touch_count(base + (i % region_lines) * kCacheLine);
      break;
    }
    case Pattern::kStrided: {
      const std::uint64_t slots = std::max<std::uint64_t>(
          1, d.region_bytes / std::max<std::size_t>(d.stride_bytes, 1));
      for (std::uint64_t i = 0; i < d.accesses; ++i)
        touch_count(base + (i % slots) * d.stride_bytes);
      break;
    }
    case Pattern::kRandom:
    case Pattern::kGather: {
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      for (std::uint64_t i = 0; i < d.accesses; ++i)
        touch_count(base + rng.below(region_lines) * kCacheLine);
      break;
    }
    case Pattern::kPointerChase: {
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      std::uint64_t line_idx = rng.below(region_lines);
      for (std::uint64_t i = 0; i < d.accesses; ++i) {
        touch_count(base + line_idx * kCacheLine);
        line_idx = (line_idx * 6364136223846793005ull +
                    rng.below(region_lines)) %
                   region_lines;
      }
      break;
    }
  }
  r.serialized_misses =
      static_cast<double>(r.misses) / effective_mlp(d, default_mlp);
  return r;
}

struct EquivCase {
  const char* name;
  Pattern pattern;
  std::size_t region;
  std::uint64_t accesses;
  std::size_t stride = 64;
  std::size_t base_offset = 0;  ///< misalign the base address
};

class BulkOracleEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(BulkOracleEquivalence, BulkPathMatchesTouchOracle) {
  const EquivCase& tc = GetParam();
  // Cache small enough that every family exercises evictions, with an
  // odd (non-power-of-two-sets) sibling config to cover the modulo path.
  for (const CacheConfig cfg :
       {CacheConfig{256 * kKiB, 16, 64}, CacheConfig{192 * kKiB, 16, 64}}) {
    ExactCache bulk(cfg);
    ExactCache byhand(cfg);
    std::vector<std::byte> buf(tc.region + tc.base_offset);
    AccessDescriptor d;
    d.base = buf.data() + tc.base_offset;
    d.region_bytes = tc.region;
    d.pattern = tc.pattern;
    d.accesses = tc.accesses;
    d.stride_bytes = tc.stride;
    AccessResult rb = bulk.process(d, kMlp);
    AccessResult ro = oracle_process(byhand, d, kMlp);
    EXPECT_EQ(rb.line_touches, ro.line_touches) << tc.name;
    EXPECT_EQ(rb.misses, ro.misses) << tc.name;
    EXPECT_DOUBLE_EQ(rb.serialized_misses, ro.serialized_misses) << tc.name;
    // Warm-state equivalence: a second, different descriptor must see the
    // exact same (tag, age) state in both instances.
    AccessDescriptor d2 = d;
    d2.pattern = tc.pattern == Pattern::kSequential ? Pattern::kRandom
                                                    : Pattern::kSequential;
    d2.accesses = 4096;
    d2.seed = 99;
    EXPECT_EQ(bulk.process(d2, kMlp).misses,
              oracle_process(byhand, d2, kMlp).misses)
        << tc.name << " (warm state diverged)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DescriptorFamilies, BulkOracleEquivalence,
    ::testing::Values(
        // Sequential: single pass, multi pass, partial tail, tiny region,
        // cache-resident region, and a misaligned base.
        EquivCase{"seq_one_pass_oversized", Pattern::kSequential, 4 * kMiB,
                  4 * kMiB / 8},
        EquivCase{"seq_multi_pass", Pattern::kSequential, kMiB,
                  3 * kMiB / 8 + 1234},
        EquivCase{"seq_fits_in_cache", Pattern::kSequential, 128 * kKiB,
                  8 * 128 * kKiB / 8},
        EquivCase{"seq_partial_pass_only", Pattern::kSequential, 4 * kMiB,
                  kMiB / 8},
        EquivCase{"seq_tiny_region", Pattern::kSequential, 300, 5000},
        EquivCase{"seq_misaligned_base", Pattern::kSequential, 2 * kMiB,
                  6 * kMiB / 8 + 7, 64, 24},
        // Strided: stride >= line (distinct lines), a non-line-multiple
        // stride, dense sub-line strides, and stride > region.
        EquivCase{"strided_256", Pattern::kStrided, 4 * kMiB, 80000, 256},
        EquivCase{"strided_96", Pattern::kStrided, 4 * kMiB, 100000, 96},
        EquivCase{"strided_misaligned", Pattern::kStrided, 2 * kMiB, 50000,
                  192, 40},
        EquivCase{"strided_dense_32", Pattern::kStrided, kMiB, 120000, 32},
        EquivCase{"strided_dense_48", Pattern::kStrided, kMiB, 120000, 48},
        EquivCase{"strided_gt_region", Pattern::kStrided, 4 * kKiB, 1000,
                  8 * kKiB},
        // Random / gather / pointer chase share the RNG stream contract.
        EquivCase{"random_oversized", Pattern::kRandom, 4 * kMiB, 200000},
        EquivCase{"random_resident", Pattern::kRandom, 64 * kKiB, 100000},
        EquivCase{"gather", Pattern::kGather, 2 * kMiB, 150000},
        EquivCase{"pointer_chase", Pattern::kPointerChase, 2 * kMiB, 100000}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Property: the analytic model agrees with the exact simulator across the
// pattern space (within tolerance) for both cache-resident and oversized
// regions.

struct AgreeCase {
  Pattern pattern;
  std::size_t region;
  std::uint64_t accesses;
  double tolerance;  ///< relative miss-count tolerance
};

class CacheAgreement : public ::testing::TestWithParam<AgreeCase> {};

TEST_P(CacheAgreement, AnalyticTracksExact) {
  const AgreeCase& tc = GetParam();
  ExactCache exact;
  AnalyticCache analytic;
  std::vector<std::byte> buf(tc.region);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = tc.region;
  d.pattern = tc.pattern;
  d.accesses = tc.accesses;
  d.stride_bytes = 256;
  AccessResult re = exact.process(d, kMlp);
  AccessResult ra = analytic.process(d, kMlp);
  ASSERT_GT(re.misses, 0u);
  double rel = std::abs(static_cast<double>(ra.misses) -
                        static_cast<double>(re.misses)) /
               static_cast<double>(re.misses);
  EXPECT_LE(rel, tc.tolerance) << "exact=" << re.misses
                               << " analytic=" << ra.misses;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CacheAgreement,
    ::testing::Values(
        // Oversized streams: both should miss ~every line.
        AgreeCase{Pattern::kSequential, 8 * kMiB, 4 * kMiB / 8, 0.05},
        AgreeCase{Pattern::kSequential, 4 * kMiB, 2 * kMiB / 8, 0.05},
        AgreeCase{Pattern::kStrided, 8 * kMiB, 32768, 0.05},
        // Random over oversized region: steady-state miss probability.
        AgreeCase{Pattern::kRandom, 8 * kMiB, 200000, 0.15},
        AgreeCase{Pattern::kRandom, 16 * kMiB, 200000, 0.15},
        AgreeCase{Pattern::kGather, 8 * kMiB, 200000, 0.15},
        // Pointer chase over oversized region.
        AgreeCase{Pattern::kPointerChase, 8 * kMiB, 100000, 0.15},
        // Small region, many passes: cold misses only.
        AgreeCase{Pattern::kSequential, 256 * kKiB, 8 * 256 * kKiB / 8, 0.10},
        AgreeCase{Pattern::kRandom, 256 * kKiB, 100000, 0.25}));

}  // namespace
}  // namespace unimem::cache
