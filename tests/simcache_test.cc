// Tests for the cache substrate: exact LRU behaviour, descriptor
// arithmetic, and the exact-vs-analytic agreement property the benches
// depend on (they use the analytic model; tests anchor it to ground truth).
#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "simcache/access_descriptor.h"
#include "simcache/analytic_cache.h"
#include "simcache/exact_cache.h"

namespace unimem::cache {
namespace {

constexpr int kMlp = 32;

TEST(AccessDescriptor, LineTouchArithmetic) {
  AccessDescriptor d;
  d.region_bytes = kMiB;
  d.accesses = 1024;
  d.access_bytes = 8;
  d.pattern = Pattern::kSequential;
  EXPECT_EQ(d.line_touches(), 128u);  // 8 doubles per line
  d.pattern = Pattern::kRandom;
  EXPECT_EQ(d.line_touches(), 1024u);  // every access a fresh line
  d.pattern = Pattern::kStrided;
  d.stride_bytes = 128;
  EXPECT_EQ(d.line_touches(), 1024u);  // stride >= line
  d.stride_bytes = 32;
  EXPECT_EQ(d.line_touches(), 512u);  // two accesses share a line
}

TEST(AccessDescriptor, FootprintLines) {
  AccessDescriptor d;
  d.region_bytes = kMiB;
  d.pattern = Pattern::kSequential;
  EXPECT_EQ(d.footprint_lines(), kMiB / 64);
  d.pattern = Pattern::kStrided;
  d.stride_bytes = 256;
  EXPECT_EQ(d.footprint_lines(), kMiB / 256);  // only every 4th line
}

TEST(AccessDescriptor, EffectiveMlp) {
  AccessDescriptor d;
  d.pattern = Pattern::kSequential;
  EXPECT_EQ(effective_mlp(d, kMlp), kMlp);
  d.pattern = Pattern::kPointerChase;
  EXPECT_EQ(effective_mlp(d, kMlp), 1);  // dependent chain, always 1
  d.mlp = 16;
  EXPECT_EQ(effective_mlp(d, kMlp), 1);  // override cannot break dependence
  d.pattern = Pattern::kRandom;
  EXPECT_EQ(effective_mlp(d, kMlp), 16);  // override honoured
  d.mlp = 0;
  EXPECT_EQ(effective_mlp(d, kMlp), kMlp / 4);
}

TEST(ExactCache, ColdMissThenHit) {
  ExactCache c(CacheConfig{64 * kKiB, 16, 64});
  EXPECT_TRUE(c.touch(0));
  EXPECT_FALSE(c.touch(0));
  EXPECT_FALSE(c.touch(32));  // same line
  EXPECT_TRUE(c.touch(64));   // next line
}

TEST(ExactCache, LruEvictionOrder) {
  // Direct-mapped-like tiny config: 4 sets x 2 ways, line 64.
  ExactCache c(CacheConfig{512, 2, 64});
  // Three lines mapping to the same set (set stride = 4 lines = 256 B).
  EXPECT_TRUE(c.touch(0));
  EXPECT_TRUE(c.touch(256));
  EXPECT_FALSE(c.touch(0));    // still resident
  EXPECT_TRUE(c.touch(512));   // evicts 256 (LRU), not 0
  EXPECT_FALSE(c.touch(0));
  EXPECT_TRUE(c.touch(256));   // was evicted
}

TEST(ExactCache, SmallRegionIsCapturedAfterWarmup) {
  ExactCache c;  // 1 MiB
  std::vector<std::byte> buf(256 * kKiB);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = Pattern::kSequential;
  d.accesses = 8 * (buf.size() / 8);  // 8 passes
  AccessResult r = c.process(d, kMlp);
  // Only the first pass misses.
  EXPECT_NEAR(static_cast<double>(r.misses),
              static_cast<double>(buf.size() / 64),
              static_cast<double>(buf.size() / 64) * 0.05);
}

TEST(ExactCache, StreamLargerThanCacheMissesEveryLine) {
  ExactCache c;  // 1 MiB
  std::vector<std::byte> buf(8 * kMiB);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.pattern = Pattern::kSequential;
  d.accesses = 2 * (buf.size() / 8);  // 2 passes, both should miss fully
  AccessResult r = c.process(d, kMlp);
  EXPECT_EQ(r.line_touches, 2 * buf.size() / 64);
  EXPECT_NEAR(static_cast<double>(r.misses),
              static_cast<double>(r.line_touches),
              static_cast<double>(r.line_touches) * 0.01);
}

TEST(ExactCache, ResetClearsState) {
  ExactCache c;
  EXPECT_TRUE(c.touch(0));
  EXPECT_FALSE(c.touch(0));
  c.reset();
  EXPECT_TRUE(c.touch(0));
}

TEST(AnalyticCache, SerializedMissesFollowMlp) {
  AnalyticCache c;
  std::vector<std::byte> buf(8 * kMiB);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = buf.size();
  d.accesses = buf.size() / 8;
  d.pattern = Pattern::kSequential;
  AccessResult seq = c.process(d, kMlp);
  d.pattern = Pattern::kPointerChase;
  AccessResult chase = c.process(d, kMlp);
  EXPECT_NEAR(seq.serialized_misses * kMlp, static_cast<double>(seq.misses),
              1.0);
  EXPECT_DOUBLE_EQ(chase.serialized_misses,
                   static_cast<double>(chase.misses));
}

TEST(AnalyticCache, ChunkSlicesShareTheCache) {
  // Fourteen 1 MiB slices of one 14 MiB logical sweep must NOT each be
  // treated as cache-resident (the regression behind the FT bug).
  AnalyticCache c;
  std::vector<std::byte> buf(kMiB);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = kMiB;
  d.logical_bytes = 14 * kMiB;
  d.pattern = Pattern::kSequential;
  d.accesses = 4 * (kMiB / 8);  // several passes over the slice
  AccessResult r = c.process(d, kMlp);
  EXPECT_NEAR(static_cast<double>(r.misses),
              static_cast<double>(r.line_touches),
              static_cast<double>(r.line_touches) * 0.01);
}

// ---------------------------------------------------------------------------
// Property: the analytic model agrees with the exact simulator across the
// pattern space (within tolerance) for both cache-resident and oversized
// regions.

struct AgreeCase {
  Pattern pattern;
  std::size_t region;
  std::uint64_t accesses;
  double tolerance;  ///< relative miss-count tolerance
};

class CacheAgreement : public ::testing::TestWithParam<AgreeCase> {};

TEST_P(CacheAgreement, AnalyticTracksExact) {
  const AgreeCase& tc = GetParam();
  ExactCache exact;
  AnalyticCache analytic;
  std::vector<std::byte> buf(tc.region);
  AccessDescriptor d;
  d.base = buf.data();
  d.region_bytes = tc.region;
  d.pattern = tc.pattern;
  d.accesses = tc.accesses;
  d.stride_bytes = 256;
  AccessResult re = exact.process(d, kMlp);
  AccessResult ra = analytic.process(d, kMlp);
  ASSERT_GT(re.misses, 0u);
  double rel = std::abs(static_cast<double>(ra.misses) -
                        static_cast<double>(re.misses)) /
               static_cast<double>(re.misses);
  EXPECT_LE(rel, tc.tolerance) << "exact=" << re.misses
                               << " analytic=" << ra.misses;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CacheAgreement,
    ::testing::Values(
        // Oversized streams: both should miss ~every line.
        AgreeCase{Pattern::kSequential, 8 * kMiB, 4 * kMiB / 8, 0.05},
        AgreeCase{Pattern::kSequential, 4 * kMiB, 2 * kMiB / 8, 0.05},
        AgreeCase{Pattern::kStrided, 8 * kMiB, 32768, 0.05},
        // Random over oversized region: steady-state miss probability.
        AgreeCase{Pattern::kRandom, 8 * kMiB, 200000, 0.15},
        AgreeCase{Pattern::kRandom, 16 * kMiB, 200000, 0.15},
        AgreeCase{Pattern::kGather, 8 * kMiB, 200000, 0.15},
        // Pointer chase over oversized region.
        AgreeCase{Pattern::kPointerChase, 8 * kMiB, 100000, 0.15},
        // Small region, many passes: cold misses only.
        AgreeCase{Pattern::kSequential, 256 * kKiB, 8 * 256 * kKiB / 8, 0.10},
        AgreeCase{Pattern::kRandom, 256 * kKiB, 100000, 0.25}));

}  // namespace
}  // namespace unimem::cache
