// Unit tests for the common utilities: units, RNG, interval map.
#include <gtest/gtest.h>

#include <set>

#include "common/interval_map.h"
#include "common/rng.h"
#include "common/units.h"

namespace unimem {
namespace {

TEST(Units, AlignUp) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_up(1000, 8), 1000u);
}

TEST(Units, LinesOf) {
  EXPECT_EQ(lines_of(0), 0u);
  EXPECT_EQ(lines_of(1), 1u);
  EXPECT_EQ(lines_of(64), 1u);
  EXPECT_EQ(lines_of(65), 2u);
  EXPECT_EQ(lines_of(kMiB), kMiB / 64);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mbps(1000), 1e9);
  EXPECT_DOUBLE_EQ(gbps(12.8), 12.8e9);
  EXPECT_DOUBLE_EQ(ns(80), 80e-9);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BelowBound) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(IntervalMap, InsertAndFind) {
  IntervalMap<int> m;
  EXPECT_TRUE(m.insert(100, 200, 1));
  EXPECT_TRUE(m.insert(200, 300, 2));
  EXPECT_EQ(m.find(100).value(), 1);
  EXPECT_EQ(m.find(199).value(), 1);
  EXPECT_EQ(m.find(200).value(), 2);
  EXPECT_EQ(m.find(299).value(), 2);
  EXPECT_FALSE(m.find(300).has_value());
  EXPECT_FALSE(m.find(99).has_value());
}

TEST(IntervalMap, RejectsOverlap) {
  IntervalMap<int> m;
  ASSERT_TRUE(m.insert(100, 200, 1));
  EXPECT_FALSE(m.insert(150, 250, 2));  // overlaps tail
  EXPECT_FALSE(m.insert(50, 150, 3));   // overlaps head
  EXPECT_FALSE(m.insert(120, 180, 4));  // nested
  EXPECT_FALSE(m.insert(100, 200, 5));  // identical
  EXPECT_TRUE(m.insert(200, 210, 6));   // adjacent is fine
  EXPECT_TRUE(m.insert(90, 100, 7));
}

TEST(IntervalMap, RejectsEmptyInterval) {
  IntervalMap<int> m;
  EXPECT_FALSE(m.insert(5, 5, 1));
  EXPECT_FALSE(m.insert(6, 5, 1));
}

TEST(IntervalMap, Erase) {
  IntervalMap<int> m;
  ASSERT_TRUE(m.insert(0, 10, 1));
  EXPECT_TRUE(m.erase(0));
  EXPECT_FALSE(m.erase(0));
  EXPECT_FALSE(m.find(5).has_value());
  EXPECT_TRUE(m.insert(0, 10, 2));  // reusable after erase
  EXPECT_EQ(m.find(5).value(), 2);
}

TEST(IntervalMap, ManyDisjointIntervals) {
  IntervalMap<std::uint64_t> m;
  for (std::uint64_t i = 0; i < 500; ++i)
    ASSERT_TRUE(m.insert(i * 100, i * 100 + 60, i));
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(m.find(i * 100 + 30).value(), i);
    EXPECT_FALSE(m.find(i * 100 + 80).has_value());
  }
  EXPECT_EQ(m.size(), 500u);
}

}  // namespace
}  // namespace unimem
