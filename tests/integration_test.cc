// Integration tests: every workload runs under every policy with identical
// numerics (checksums must match — migrations may never corrupt data), and
// the policy ordering the paper reports must hold:
//   DRAM-only <= Unimem <= NVM-only   (in execution time).
#include <gtest/gtest.h>

#include "experiments/runner.h"

namespace unimem::exp {
namespace {

class WorkloadIntegration : public ::testing::TestWithParam<std::string> {};

RunConfig base_cfg(const std::string& wl) {
  RunConfig cfg;
  cfg.workload = wl;
  cfg.wcfg.cls = 'S';
  cfg.wcfg.iterations = 6;
  cfg.wcfg.nranks = 2;
  cfg.dram_capacity = 2 * kMiB;
  cfg.nvm_bw_ratio = 0.5;
  cfg.nvm_lat_mult = 1.0;
  return cfg;
}

TEST_P(WorkloadIntegration, ChecksumsIdenticalAcrossPolicies) {
  RunConfig cfg = base_cfg(GetParam());
  cfg.policy = Policy::kDramOnly;
  RunResult dram = run_once(cfg);
  cfg.policy = Policy::kNvmOnly;
  RunResult nvm = run_once(cfg);
  cfg.policy = Policy::kUnimem;
  RunResult uni = run_once(cfg);
  cfg.policy = Policy::kXMen;
  RunResult xmen = run_once(cfg);
  EXPECT_DOUBLE_EQ(dram.checksum, nvm.checksum);
  EXPECT_DOUBLE_EQ(dram.checksum, uni.checksum);
  EXPECT_DOUBLE_EQ(dram.checksum, xmen.checksum);
}

TEST_P(WorkloadIntegration, PolicyTimeOrdering) {
  RunConfig cfg = base_cfg(GetParam());
  cfg.policy = Policy::kDramOnly;
  RunResult dram = run_once(cfg);
  cfg.policy = Policy::kNvmOnly;
  RunResult nvm = run_once(cfg);
  cfg.policy = Policy::kUnimem;
  RunResult uni = run_once(cfg);
  EXPECT_GT(nvm.time_s, dram.time_s);          // the NVM gap exists
  EXPECT_LE(uni.time_s, nvm.time_s * 1.02);    // Unimem never loses much
  EXPECT_GE(uni.time_s, dram.time_s * 0.98);   // and cannot beat DRAM-only
}

TEST_P(WorkloadIntegration, UnimemOverheadBounded) {
  RunConfig cfg = base_cfg(GetParam());
  cfg.policy = Policy::kUnimem;
  RunResult r = run_once(cfg);
  EXPECT_LT(r.mean_overhead_percent, 5.0);
  EXPECT_GE(r.mean_overlap_percent, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadIntegration,
                         ::testing::Values("cg", "ft", "bt", "lu", "sp", "mg",
                                           "nek"));

TEST(Integration, DeterministicAcrossRuns) {
  RunConfig cfg = base_cfg("cg");
  cfg.policy = Policy::kUnimem;
  RunResult a = run_once(cfg);
  RunResult b = run_once(cfg);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
}

TEST(Integration, StrongScalingReducesPerRankTime) {
  RunConfig cfg = base_cfg("cg");
  cfg.wcfg.cls = 'A';
  cfg.policy = Policy::kNvmOnly;
  cfg.wcfg.nranks = 1;
  RunResult one = run_once(cfg);
  cfg.wcfg.nranks = 4;
  RunResult four = run_once(cfg);
  EXPECT_LT(four.time_s, one.time_s);
}

TEST(Integration, LatencyConfigHurtsLatencySensitiveWorkloads) {
  // SP's lhs is latency-sensitive: a 4x latency NVM must slow NVM-only SP
  // more than the bandwidth-halved NVM does (Fig. 4's lhs panel).
  RunConfig cfg = base_cfg("sp");
  cfg.policy = Policy::kNvmOnly;
  cfg.nvm_bw_ratio = 0.5;
  cfg.nvm_lat_mult = 1.0;
  RunResult bw = run_once(cfg);
  cfg.nvm_bw_ratio = 1.0;
  cfg.nvm_lat_mult = 4.0;
  RunResult lat = run_once(cfg);
  EXPECT_GT(lat.time_s, bw.time_s);
}

TEST(Integration, MultipleRanksPerNodeShareTheArbiter) {
  RunConfig cfg = base_cfg("lu");
  cfg.wcfg.nranks = 4;
  cfg.ranks_per_node = 4;  // all ranks on one node share 2 MiB of DRAM
  cfg.policy = Policy::kUnimem;
  RunResult shared = run_once(cfg);
  cfg.ranks_per_node = 1;  // each rank gets its own 2 MiB node
  RunResult owned = run_once(cfg);
  EXPECT_DOUBLE_EQ(shared.checksum, owned.checksum);
  // Less DRAM per rank cannot make things faster.
  EXPECT_GE(shared.time_s, owned.time_s * 0.999);
}

TEST(Integration, XMenPlacementIsStatic) {
  RunConfig cfg = base_cfg("bt");
  cfg.policy = Policy::kXMen;
  RunResult r = run_once(cfg);
  // The measured pass runs under a manual placement: no Unimem stats.
  EXPECT_EQ(r.total_migrations, 0u);
  EXPECT_GT(r.time_s, 0.0);
}

TEST(Integration, UnimemCompetitiveWithXMenOnPhaseVaryingNek) {
  RunConfig cfg = base_cfg("nek");
  cfg.wcfg.cls = 'A';
  cfg.wcfg.iterations = 20;
  cfg.policy = Policy::kXMen;
  RunResult xmen = run_once(cfg);
  cfg.policy = Policy::kUnimem;
  RunResult uni = run_once(cfg);
  cfg.policy = Policy::kNvmOnly;
  RunResult nvm = run_once(cfg);
  // Paper §5 reports Unimem 10% better than X-Men on Nek5000.  Our
  // reproduction reaches parity (within 5%) — see EXPERIMENTS.md for why
  // the rotation-enforcement gap keeps the full 10% out of reach — while
  // both beat NVM-only decisively.  Note X-Men here is conservatively
  // granted exact (PIN-grade) profiles; Unimem works from sampled ones.
  EXPECT_LT(uni.time_s, xmen.time_s * 1.05);
  EXPECT_LT(uni.time_s, nvm.time_s);
}

TEST(Integration, ThreeTierTopologyRunsDeterministicallyWithSameChecksum) {
  // An explicit HBM+DRAM+NVM ladder through the full runtime: the MCKP
  // placement and multi-tier migration chains may never corrupt data
  // (checksums match the classic 2-tier run) and must be deterministic
  // across repeated runs.
  RunConfig cfg = base_cfg("cg");
  cfg.policy = Policy::kUnimem;
  RunResult classic = run_once(cfg);
  cfg.tiers = "hbm:1MiB,dram:2MiB,nvm:64MiB";
  RunResult a = run_once(cfg);
  RunResult b = run_once(cfg);
  EXPECT_DOUBLE_EQ(a.checksum, classic.checksum);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_GT(a.time_s, 0.0);
}

TEST(Integration, TierLadderNeverSlowerThanBackstopOnly) {
  // Giving the planner fast rungs cannot make things slower than leaving
  // everything in the backstop (the NVM-only reading of the same ladder).
  RunConfig cfg = base_cfg("mg");
  cfg.tiers = "hbm:1MiB,dram:2MiB,nvm:64MiB";
  cfg.policy = Policy::kNvmOnly;
  RunResult backstop = run_once(cfg);
  cfg.policy = Policy::kUnimem;
  RunResult uni = run_once(cfg);
  EXPECT_DOUBLE_EQ(uni.checksum, backstop.checksum);
  EXPECT_LE(uni.time_s, backstop.time_s * 1.02);
}

}  // namespace
}  // namespace unimem::exp
