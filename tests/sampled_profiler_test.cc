// Sampled profiling tier: gate/seed determinism, adaptive-rate control,
// statistical fidelity of the thinned sample stream, out-of-band
// aggregation equivalence, and snapshot-based attribution correctness
// under migration.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/profiler.h"
#include "core/registry.h"
#include "core/sampled_profile.h"
#include "perfmon/sample_gate.h"
#include "perfmon/sampler.h"

namespace unimem::rt {
namespace {

// ---------------------------------------------------------------------------
// SampleGate / schedule_seed / AdaptiveRate

TEST(SampleGate, SameSeedSameSchedule) {
  perf::SampleGate a(16, 99), b(16, 99);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(a.take(), b.take());
}

TEST(SampleGate, CaptureRateMatchesPeriod) {
  const std::uint64_t period = 32;
  perf::SampleGate gate(period, 7);
  const int n = 1 << 20;
  int captured = 0;
  for (int i = 0; i < n; ++i) captured += gate.take() ? 1 : 0;
  const double expected = static_cast<double>(n) / period;
  EXPECT_NEAR(captured, expected, 0.05 * expected);
}

TEST(SampleGate, PeriodOneCapturesEverything) {
  perf::SampleGate gate(1, 5);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(gate.take());
}

TEST(ScheduleSeed, StableAndCoordinateSensitive) {
  const std::uint64_t s = perf::schedule_seed(42, 1, 3, 7);
  EXPECT_EQ(s, perf::schedule_seed(42, 1, 3, 7));  // pure function
  EXPECT_NE(s, perf::schedule_seed(42, 0, 3, 7));  // rank matters
  EXPECT_NE(s, perf::schedule_seed(42, 1, 4, 7));  // phase matters
  EXPECT_NE(s, perf::schedule_seed(42, 1, 3, 8));  // epoch matters
  EXPECT_NE(s, perf::schedule_seed(43, 1, 3, 7));  // base seed matters
}

TEST(AdaptiveRate, BacksOffAndRecovers) {
  perf::AdaptiveRate::Options o;
  o.base_period = 64;
  o.max_period = 256;
  o.high_watermark = 512;
  o.low_watermark = 64;
  perf::AdaptiveRate rate(o);
  EXPECT_EQ(rate.period(), 64u);
  rate.observe_iteration(10000, 4);  // 2500/phase: plenty -> widen
  EXPECT_EQ(rate.period(), 128u);
  rate.observe_iteration(10000, 4);
  EXPECT_EQ(rate.period(), 256u);
  rate.observe_iteration(10000, 4);  // clamped at max
  EXPECT_EQ(rate.period(), 256u);
  rate.observe_iteration(100, 4);    // 25/phase: thin -> narrow
  EXPECT_EQ(rate.period(), 128u);
  rate.observe_iteration(100, 4);
  EXPECT_EQ(rate.period(), 64u);
  rate.observe_iteration(100, 4);    // never below base
  EXPECT_EQ(rate.period(), 64u);
}

TEST(AdaptiveRate, DisabledNeverMoves) {
  perf::AdaptiveRate::Options o;
  o.base_period = 64;
  o.enabled = false;
  perf::AdaptiveRate rate(o);
  rate.observe_iteration(1 << 20, 1);
  EXPECT_EQ(rate.period(), 64u);
}

// ---------------------------------------------------------------------------
// Sampled stream fidelity + aggregation

class SampledProfilerTest : public ::testing::Test {
 protected:
  SampledProfilerTest()
      : hms_(mem::HmsConfig::scaled(0.5, 1.0, 8 * kMiB, 64 * kMiB)),
        reg_(&hms_, nullptr) {}

  perf::MemWindow window_for(DataObject* o, std::uint64_t misses,
                             double mem_time_s) {
    perf::MemWindow w;
    w.region_base = reinterpret_cast<std::uint64_t>(o->chunk(0).data());
    w.region_bytes = o->bytes();
    w.misses = misses;
    w.mem_time_s = mem_time_s;
    return w;
  }

  mem::HeteroMemory hms_;
  Registry reg_;
};

TEST_F(SampledProfilerTest, ExactStreamUnaffectedBySampledCalls) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  std::vector<perf::MemWindow> w{window_for(o, 100000, 2e-3)};
  perf::Sampler a(clk::TimingParams{}, 42), b(clk::TimingParams{}, 42);
  // Interleave sampled-mode calls on `b` only: the exact stream must stay
  // bit-identical because sampled mode never touches the member RNG.
  perf::SampledConfig cfg{8, 1234};
  (void)b.sample_phase(w, 1e-3, 3e-3, cfg);
  perf::PhaseSamples ea = a.sample_phase(w, 1e-3, 3e-3);
  perf::PhaseSamples eb = b.sample_phase(w, 1e-3, 3e-3);
  ASSERT_EQ(ea.miss_addresses.size(), eb.miss_addresses.size());
  EXPECT_EQ(ea.miss_addresses, eb.miss_addresses);
  EXPECT_EQ(ea.total_samples, eb.total_samples);
}

TEST_F(SampledProfilerTest, SampledScheduleIsSeedDeterministic) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  std::vector<perf::MemWindow> w{window_for(o, 100000, 2e-3)};
  perf::Sampler s1(clk::TimingParams{}, 1), s2(clk::TimingParams{}, 2);
  perf::SampledConfig cfg{16, perf::schedule_seed(42, 0, 3, 1)};
  // Different member seeds, same SampledConfig: identical capture.
  perf::PhaseSamples p1 = s1.sample_phase(w, 1e-3, 3e-3, cfg);
  perf::PhaseSamples p2 = s2.sample_phase(w, 1e-3, 3e-3, cfg);
  EXPECT_EQ(p1.total_samples, p2.total_samples);
  EXPECT_EQ(p1.miss_addresses, p2.miss_addresses);
  EXPECT_GT(p1.total_samples, 0u);
}

TEST_F(SampledProfilerTest, EstAccessesConvergeToMissShares) {
  // Ground truth: A carries 3/4 of the misses and of the memory time, B
  // 1/4.  The thinned stream must apportion the precise aggregate counter
  // close to those shares — per seed within a loose band, and with the
  // across-seed mean tight around the truth (unbiased, noisier by
  // ~sqrt(period)).
  DataObject* a = reg_.create("a", kMiB, {}, mem::Tier::kNvm);
  DataObject* b = reg_.create("b", kMiB, {}, mem::Tier::kNvm);
  std::vector<perf::MemWindow> w{window_for(a, 300000, 3e-3),
                                 window_for(b, 100000, 1e-3)};
  perf::Sampler sampler(clk::TimingParams{});
  const double phase_time = 5e-3;  // 1e-3 compute + 4e-3 memory
  double sum_a = 0;
  const int kSeeds = 20;
  for (int seed = 0; seed < kSeeds; ++seed) {
    perf::SampledConfig cfg{8, perf::schedule_seed(100 + seed, 0, 0, 0)};
    perf::PhaseSamples s = sampler.sample_phase(w, 1e-3, phase_time, cfg);
    Profiler prof(&reg_);
    prof.record_phase(s, phase_time);
    const auto& units = prof.phases()[0].units;
    const double est_a =
        static_cast<double>(units.at(UnitRef{a->id(), 0}).est_accesses);
    const double est_b =
        static_cast<double>(units.at(UnitRef{b->id(), 0}).est_accesses);
    EXPECT_NEAR(est_a + est_b, 400000.0, 2.0);  // counter stays precise
    EXPECT_NEAR(est_a, 300000.0, 0.15 * 300000.0) << "seed " << seed;
    sum_a += est_a;
  }
  EXPECT_NEAR(sum_a / kSeeds, 300000.0, 0.04 * 300000.0);
}

TEST_F(SampledProfilerTest, AggregatorMatchesInlineAttribution) {
  // Identical evidence through the deferred path and the inline path must
  // produce identical per-unit profiles.
  DataObject* a = reg_.create("a", kMiB, {}, mem::Tier::kNvm);
  DataObject* b = reg_.create("b", kMiB, {}, mem::Tier::kNvm);
  std::vector<perf::MemWindow> w{window_for(a, 60000, 2e-3),
                                 window_for(b, 20000, 1e-3)};
  perf::Sampler sampler(clk::TimingParams{});
  perf::SampledConfig cfg{4, 777};
  perf::PhaseSamples s = sampler.sample_phase(w, 1e-3, 4e-3, cfg);
  ASSERT_FALSE(s.miss_addresses.empty());

  Profiler inline_prof(&reg_);
  inline_prof.record_phase(s, 4e-3);

  Profiler deferred_prof(&reg_);
  ProfileAggregator agg;
  ProfileAggregator::Batch batch;
  batch.slot = deferred_prof.record_phase_pending(4e-3);
  batch.samples = s;
  batch.phase_time_s = 4e-3;
  batch.snapshot = reg_.addr_snapshot();
  agg.submit(std::move(batch));
  auto results = agg.drain();
  ASSERT_EQ(results.size(), 1u);
  deferred_prof.fill_phase(results[0].slot, std::move(results[0].units));

  const auto& pi = inline_prof.phases()[0].units;
  const auto& pd = deferred_prof.phases()[0].units;
  ASSERT_EQ(pi.size(), pd.size());
  for (const auto& [u, prof] : pi) {
    const auto it = pd.find(u);
    ASSERT_NE(it, pd.end());
    EXPECT_EQ(prof.est_accesses, it->second.est_accesses);
    EXPECT_DOUBLE_EQ(prof.time_fraction, it->second.time_fraction);
  }
}

TEST_F(SampledProfilerTest, SnapshotPinsAttributionAcrossMigration) {
  // The batch snapshot must keep attributing the phase's addresses to the
  // unit that owned them when the phase closed, even after a migration
  // repoints the live address map (and the old range could be reused).
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  const auto old_base = reinterpret_cast<std::uint64_t>(o->chunk(0).data());
  auto snap = reg_.addr_snapshot();

  perf::PhaseSamples s;
  s.total_samples = 100;
  s.total_miss_count = 5000;
  for (int i = 0; i < 50; ++i) s.miss_addresses.push_back(old_base + 64 * i);

  ASSERT_TRUE(reg_.migrate(UnitRef{o->id(), 0}, mem::Tier::kDram));
  // Live map no longer covers the old NVM range...
  EXPECT_FALSE(reg_.attribute(old_base).has_value());

  // ...but the snapshot taken at phase close still does.
  ProfileAggregator agg;
  ProfileAggregator::Batch batch;
  batch.slot = 0;
  batch.samples = std::move(s);
  batch.phase_time_s = 1e-3;
  batch.snapshot = snap;
  agg.submit(std::move(batch));
  auto results = agg.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].attributed, 50u);
  EXPECT_EQ(results[0].units.at(UnitRef{o->id(), 0}).est_accesses, 5000u);
}

TEST_F(SampledProfilerTest, AddrVersionTracksMapChanges) {
  const std::uint64_t v0 = reg_.addr_version();
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  const std::uint64_t v1 = reg_.addr_version();
  EXPECT_GT(v1, v0);
  auto s1 = reg_.addr_snapshot();
  EXPECT_EQ(s1.get(), reg_.addr_snapshot().get());  // cached while unchanged
  ASSERT_TRUE(reg_.migrate(UnitRef{o->id(), 0}, mem::Tier::kDram));
  EXPECT_GT(reg_.addr_version(), v1);
  EXPECT_NE(s1.get(), reg_.addr_snapshot().get());
}

TEST_F(SampledProfilerTest, DrainReturnsSlotSortedResults) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  auto snap = reg_.addr_snapshot();
  const auto base = reinterpret_cast<std::uint64_t>(o->chunk(0).data());
  ProfileAggregator agg;
  for (std::size_t slot : {std::size_t{2}, std::size_t{0}, std::size_t{1}}) {
    ProfileAggregator::Batch b;
    b.slot = slot;
    b.samples.total_samples = 10;
    b.samples.total_miss_count = 100;
    b.samples.miss_addresses = {base};
    b.phase_time_s = 1e-3;
    b.snapshot = snap;
    agg.submit(std::move(b));
  }
  auto results = agg.drain();
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(results[i].slot, i);
  EXPECT_TRUE(agg.drain().empty());  // barrier consumed the results
}

}  // namespace
}  // namespace unimem::rt
