// End-to-end smoke test of the full paper §3 loop on the CG workload:
// online profiling -> model + knapsack planning -> proactive migration,
// driven through the real Runtime on a multi-rank World (not through the
// experiment runner), so the final placement can be inspected before the
// runtime is torn down.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/runtime.h"
#include "experiments/runner.h"
#include "minimpi/comm.h"
#include "simmem/dram_arbiter.h"
#include "simmem/hetero_memory.h"
#include "workloads/workload.h"

namespace unimem {
namespace {

constexpr int kRanks = 2;
constexpr int kIterations = 8;
constexpr std::size_t kDramAllowance = 2 * kMiB;

struct RankOutcome {
  rt::RuntimeStats stats;
  rt::Plan::Kind plan_kind = rt::Plan::Kind::kNone;
  double checksum = 0;
  std::size_t dram_resident = 0;   ///< registry bytes in DRAM at the end
  std::size_t arbiter_granted = 0; ///< node DRAM granted at the end
  std::size_t arbiter_allowance = 0;
};

/// Run CG under the Unimem runtime, one node per rank, and capture what
/// each rank's runtime looked like at unimem_end.
std::vector<RankOutcome> run_cg_under_unimem() {
  wl::WorkloadConfig wcfg;
  wcfg.cls = 'S';
  wcfg.iterations = kIterations;
  wcfg.nranks = kRanks;

  // One node per rank: NVM holds the whole footprint with churn headroom,
  // DRAM allowance is ~a quarter of the rank's objects so the planner must
  // actually choose and the migration engine must actually move data.
  const std::size_t nvm_cap = 2 * wcfg.rank_bytes() + 32 * kMiB;
  const std::size_t dram_arena = 2 * kDramAllowance + 4 * kMiB;
  struct Node {
    std::unique_ptr<mem::HeteroMemory> hms;
    std::unique_ptr<mem::DramArbiter> arbiter;
  };
  std::vector<Node> nodes(kRanks);
  for (auto& n : nodes) {
    n.hms = std::make_unique<mem::HeteroMemory>(
        mem::HmsConfig{mem::TierConfig::dram_basis(dram_arena),
                       mem::TierConfig::nvm_scaled(nvm_cap, 0.5, 1.0)});
    n.arbiter = std::make_unique<mem::DramArbiter>(kDramAllowance);
  }

  std::vector<RankOutcome> out(kRanks);
  mpi::World world(kRanks, mpi::NetworkParams{}, /*ranks_per_node=*/1);
  world.run([&](mpi::Comm& comm) {
    const int r = comm.rank();
    Node& node = nodes[static_cast<std::size_t>(comm.node())];
    rt::RuntimeOptions opts;
    opts.ranks_per_node = 1;
    rt::Runtime runtime(opts, node.hms.get(), node.arbiter.get(), &comm);
    auto workload = wl::make_workload("cg");
    out[r].checksum = workload->run_rank(runtime, wcfg);
    out[r].stats = runtime.stats();
    out[r].plan_kind = runtime.current_plan().kind;
    out[r].dram_resident = runtime.registry().resident_bytes(mem::Tier::kDram);
    out[r].arbiter_granted = node.arbiter->granted();
    out[r].arbiter_allowance = node.arbiter->allowance();
  });
  return out;
}

TEST(E2EUnimem, FullLoopProfilesPlansAndMigratesOnCg) {
  std::vector<RankOutcome> ranks = run_cg_under_unimem();
  ASSERT_EQ(ranks.size(), static_cast<std::size_t>(kRanks));

  std::uint64_t total_migrations = 0;
  for (const RankOutcome& r : ranks) {
    // The loop ran to completion: every iteration executed, phases were
    // discovered through the PMPI hooks, and a plan was adopted.
    EXPECT_EQ(r.stats.iterations, static_cast<std::uint64_t>(kIterations));
    EXPECT_GT(r.stats.phases_executed, 0u);
    EXPECT_NE(r.plan_kind, rt::Plan::Kind::kNone);
    total_migrations += r.stats.migration.migrations;
  }
  // Proactive enforcement actually moved data (the DRAM allowance is far
  // below the working set, so an empty plan would be a planner bug).
  EXPECT_GT(total_migrations, 0u);
}

TEST(E2EUnimem, FinalPlacementRespectsDramCapacity) {
  std::vector<RankOutcome> ranks = run_cg_under_unimem();
  for (const RankOutcome& r : ranks) {
    // The arbiter never over-granted, and the bytes the registry holds in
    // DRAM fit inside the node allowance (1 rank/node here).
    EXPECT_LE(r.arbiter_granted, r.arbiter_allowance);
    EXPECT_LE(r.dram_resident, r.arbiter_allowance);
  }
}

TEST(E2EUnimem, RunnerPathMatchesAndMigrationsAreCounted) {
  // The same loop through the experiment runner: Unimem must preserve the
  // DRAM-only checksum and report its migrations in the run summary.
  exp::RunConfig cfg;
  cfg.workload = "cg";
  cfg.wcfg.cls = 'S';
  cfg.wcfg.iterations = kIterations;
  cfg.wcfg.nranks = kRanks;
  cfg.dram_capacity = kDramAllowance;
  cfg.policy = exp::Policy::kDramOnly;
  exp::RunResult dram = exp::run_once(cfg);
  cfg.policy = exp::Policy::kUnimem;
  exp::RunResult uni = exp::run_once(cfg);
  EXPECT_DOUBLE_EQ(uni.checksum, dram.checksum);
  EXPECT_GT(uni.total_migrations, 0u);
  EXPECT_GT(uni.total_bytes_moved, 0u);
}

}  // namespace
}  // namespace unimem
