// Sweep service tests: deterministic retry backoff, engine-level point
// retries (rows byte-identical to first-try successes), the campaign
// coordinator (work stealing, dead-worker reassignment, resume), the
// launcher topologies (in-process, fork, command), the crash-tolerant
// JSONL reader, CSV label sanitization, and the sharded-process summary
// fields this PR's satellites fix.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sweep/coordinator.h"
#include "sweep/engine.h"
#include "sweep/launcher.h"
#include "sweep/result_store.h"
#include "sweep/spec.h"

namespace unimem::sweep {
namespace {

// Synthetic points and a pure run_point hook: the service layer's
// contracts (dispatch, retries, artifacts, determinism) are independent
// of the simulator, so these tests exercise them without running Worlds.
std::vector<SweepPoint> synth_points(std::size_t n) {
  std::vector<SweepPoint> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i].index = i;
    pts[i].label = "synth/p" + std::to_string(i);
    pts[i].axis = {{"workload", "synth"}};
    pts[i].normalize = false;
  }
  return pts;
}

exp::RunResult synth_result(std::size_t index) {
  exp::RunResult r;
  r.time_s = 0.001 * static_cast<double>(index + 1);
  r.checksum = 1.5 * static_cast<double>(index);
  r.total_migrations = index;
  return r;
}

/// Fresh per-test scratch directory (stale task artifacts/sidecars from a
/// previous ctest run would pollute counter aggregation).
std::string fresh_scratch(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/svc_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> jsonl_lines(const std::vector<SweepRow>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const SweepRow& r : rows) out.push_back(SweepResultStore::jsonl_line(r));
  return out;
}

// ---- retry backoff --------------------------------------------------------

TEST(RetryBackoff, DeterministicCappedJitteredSchedule) {
  RetryBackoff b;
  b.base_s = 0.1;
  b.max_s = 1.0;

  EXPECT_EQ(b.delay_s(3, 1), b.delay_s(3, 1)) << "pure function of inputs";
  EXPECT_EQ(b.delay_s(3, 0), 0.0) << "no delay before a first attempt";

  // Nominal delay doubles per attempt until the cap; jitter scales it
  // into [0.5, 1.0) of nominal.
  auto expect_window = [&](int attempt, double nominal) {
    const double d = b.delay_s(7, attempt);
    EXPECT_GE(d, 0.5 * nominal) << "attempt " << attempt;
    EXPECT_LT(d, nominal) << "attempt " << attempt;
  };
  expect_window(1, 0.1);
  expect_window(2, 0.2);
  expect_window(3, 0.4);
  expect_window(8, 1.0);  // 0.1 * 2^7 = 12.8, capped at max_s
  expect_window(30, 1.0);  // deep attempts stay capped, no overflow

  // Jitter decorrelates points and attempts (thundering-herd guard), and
  // the seed is part of the schedule's identity.
  EXPECT_NE(b.delay_s(0, 1), b.delay_s(1, 1));
  EXPECT_NE(b.delay_s(0, 1), b.delay_s(0, 2));
  RetryBackoff other = b;
  other.seed ^= 0x1234;
  EXPECT_NE(b.delay_s(0, 1), other.delay_s(0, 1));
}

// ---- engine-level point retries -------------------------------------------

TEST(SweepEngine, RetriedRowsAreByteIdenticalToFirstTrySuccesses) {
  const auto points = synth_points(20);

  EngineOptions flaky;
  flaky.jobs = 4;
  flaky.max_point_retries = 2;
  flaky.backoff.base_s = 1e-4;
  flaky.run_point = [](const SweepPoint& p, int attempt) {
    if (attempt == 0 && p.index % 3 == 0)
      throw std::runtime_error("injected transient fault");
    return synth_result(p.index);
  };
  const SweepOutcome a = SweepEngine(flaky).run(points);

  EngineOptions clean;
  clean.jobs = 4;
  clean.run_point = [](const SweepPoint& p, int) {
    return synth_result(p.index);
  };
  const SweepOutcome b = SweepEngine(clean).run(points);

  EXPECT_EQ(a.failed, 0u) << "every injected fault recovered";
  EXPECT_EQ(a.retries, 7u) << "one retry per index divisible by 3";
  EXPECT_EQ(b.retries, 0u);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  // The determinism bar: attempts are counters, never artifact data.
  EXPECT_EQ(jsonl_lines(a.rows), jsonl_lines(b.rows));
}

TEST(SweepEngine, RetryBudgetExhaustedKeepsTheFailureRow) {
  const auto points = synth_points(3);
  EngineOptions opts;
  opts.jobs = 2;
  opts.max_point_retries = 2;
  opts.backoff.base_s = 1e-4;
  opts.run_point = [](const SweepPoint& p, int) -> exp::RunResult {
    if (p.index == 1) throw std::runtime_error("permanent fault");
    return synth_result(p.index);
  };
  const SweepOutcome out = SweepEngine(opts).run(points);
  EXPECT_EQ(out.failed, 1u);
  EXPECT_EQ(out.retries, 2u) << "the whole budget was spent on point 1";
  EXPECT_FALSE(out.rows[1].ok);
  EXPECT_NE(out.rows[1].error.find("permanent fault"), std::string::npos);
  EXPECT_TRUE(out.rows[0].ok);
  EXPECT_TRUE(out.rows[2].ok);
}

// ---- coordinator ----------------------------------------------------------

// The service-layer headline at stress scale: a 10k-point campaign with
// seeded transient faults and a deliberately slow worker slice recovers
// to zero failed rows, steals work off the straggler, and still produces
// rows byte-identical to a plain engine run of the same points.
TEST(Coordinator, StressCampaignRecoversFaultsStealsWorkStaysDeterministic) {
  const std::size_t kPoints = 10000;
  const auto points = synth_points(kPoints);
  const std::string scratch = fresh_scratch("stress");

  InProcessLauncher launcher;
  CoordinatorOptions opts;
  opts.launcher = &launcher;
  opts.workers = 4;
  opts.steal = true;
  opts.scratch_dir = scratch;
  opts.engine.jobs = 2;
  opts.engine.max_point_retries = 2;
  opts.engine.backoff.base_s = 1e-4;
  // Slot 0's slice (indices 0 mod 4) blocks until every other worker's
  // point has completed, so the drained workers must steal slot 0's queued
  // chunks — deterministic regardless of scheduler or sanitizer slowdown.
  // No deadlock: workers steal only once their own (all non-slot-0) queue
  // has fully completed, so the last non-slot-0 point always has an
  // unblocked worker to run on.
  std::atomic<std::size_t> other_done{0};
  const std::size_t kOtherPoints = kPoints - kPoints / 4;
  opts.engine.run_point = [&](const SweepPoint& p, int attempt) {
    if (attempt == 0 && p.index % 5 == 0)
      throw std::runtime_error("injected transient fault");
    if (p.index % 4 == 0) {
      while (other_done.load(std::memory_order_acquire) < kOtherPoints)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else {
      other_done.fetch_add(1, std::memory_order_acq_rel);
    }
    return synth_result(p.index);
  };

  std::size_t final_rows = 0;
  opts.on_final_row = [&](const SweepRow&) { ++final_rows; };
  CampaignProgress last{};
  std::size_t progress_calls = 0;
  opts.on_progress = [&](const CampaignProgress& p) {
    ++progress_calls;
    last = p;
  };

  const CampaignOutcome out = run_campaign(points, opts);

  EXPECT_EQ(out.failed, 0u) << "every injected fault recovered";
  EXPECT_GT(out.steals, 0u) << "idle workers must take the straggler's chunks";
  EXPECT_GE(out.tasks, 4u);
  EXPECT_EQ(out.resumed, 0u);
  EXPECT_EQ(out.workers, 4);
  if (out.task_retries == 0) {
    // The exact counters hold unless the host is so starved that a task
    // dies outright (e.g. pthread_create EAGAIN under a sanitizer while
    // the box is saturated); the coordinator recovers those by
    // re-dispatch, which legitimately re-runs points and shifts counts.
    EXPECT_TRUE(out.task_failures.empty());
    EXPECT_EQ(out.retries, kPoints / 5) << "one retry per injected point";
    EXPECT_EQ(out.jobs_used, 2) << "per-task width, aggregated from sidecars";
    EXPECT_EQ(out.worlds_executed, kPoints)
        << "only successful attempts count as executed worlds";
  } else {
    for (const std::string& f : out.task_failures)
      std::fprintf(stderr, "note: recovered task failure: %s\n", f.c_str());
    EXPECT_LE(out.retries, kPoints / 5)
        << "faults inject on first-dispatch attempt 0 only";
    EXPECT_EQ(out.task_failures.size(), out.task_retries);
  }
  EXPECT_EQ(final_rows, kPoints);
  EXPECT_GE(progress_calls, out.tasks + 1);
  EXPECT_TRUE(last.complete);
  EXPECT_EQ(last.done, kPoints);

  EngineOptions plain;
  plain.jobs = 4;
  plain.run_point = [](const SweepPoint& p, int) {
    return synth_result(p.index);
  };
  const SweepOutcome ref = SweepEngine(plain).run(points);
  ASSERT_EQ(out.rows.size(), ref.rows.size());
  EXPECT_EQ(jsonl_lines(out.rows), jsonl_lines(ref.rows))
      << "campaign rows must match a plain engine run byte-for-byte";
}

TEST(Coordinator, ResumeAcceptsPriorRowsAndRejectsForeignArtifacts) {
  const auto points = synth_points(10);
  const std::string scratch = fresh_scratch("resume");

  auto base_opts = [&](InProcessLauncher* launcher) {
    CoordinatorOptions o;
    o.launcher = launcher;
    o.workers = 2;
    o.scratch_dir = scratch;
    o.engine.jobs = 1;
    o.engine.run_point = [](const SweepPoint& p, int) {
      return synth_result(p.index);
    };
    return o;
  };

  InProcessLauncher l1;
  const CampaignOutcome first = run_campaign(points, base_opts(&l1));
  ASSERT_EQ(first.failed, 0u);

  // Resume with the first six rows plus a FAILED row for point 7: ok rows
  // are accepted, the failed one is re-run (a resume is a second chance).
  std::vector<SweepRow> resume(first.rows.begin(), first.rows.begin() + 6);
  SweepRow failed7 = first.rows[7];
  failed7.ok = false;
  failed7.error = "crashed last time";
  failed7.result = exp::RunResult{};
  resume.push_back(failed7);

  InProcessLauncher l2;
  CoordinatorOptions o2 = base_opts(&l2);
  o2.resume_rows = resume;
  const CampaignOutcome second = run_campaign(points, o2);
  EXPECT_EQ(second.resumed, 6u) << "only ok rows satisfy their points";
  EXPECT_EQ(second.failed, 0u);
  EXPECT_EQ(jsonl_lines(second.rows), jsonl_lines(first.rows));

  // An artifact whose labels disagree with the spec expansion is from a
  // different campaign — refuse instead of silently mixing results.
  InProcessLauncher l3;
  CoordinatorOptions o3 = base_opts(&l3);
  o3.resume_rows = {first.rows[0]};
  o3.resume_rows[0].label = "other-spec/p0";
  EXPECT_THROW(run_campaign(points, o3), std::runtime_error);
}

TEST(Coordinator, ForkedWorkerKilledMidTaskIsReassigned) {
  const auto points = synth_points(8);
  const std::string scratch = fresh_scratch("killfork");
  const std::string sentinel = scratch + "/killed.once";

  ForkLauncher launcher;
  CoordinatorOptions opts;
  opts.launcher = &launcher;
  opts.workers = 2;
  opts.max_task_retries = 2;
  opts.scratch_dir = scratch;
  opts.engine.jobs = 1;
  opts.engine.run_point = [sentinel](const SweepPoint& p, int) {
    if (p.index == 5 && !std::filesystem::exists(sentinel)) {
      std::FILE* f = std::fopen(sentinel.c_str(), "w");
      if (f != nullptr) std::fclose(f);
      raise(SIGKILL);  // the worker process dies mid-chunk
    }
    return synth_result(p.index);
  };

  const CampaignOutcome out = run_campaign(points, opts);
  EXPECT_EQ(out.failed, 0u) << "the dead worker's points were re-run";
  EXPECT_GE(out.task_retries, 1u);
  EXPECT_GT(out.tasks, 2u) << "the re-dispatch is a fresh task";

  EngineOptions plain;
  plain.jobs = 1;
  plain.run_point = [](const SweepPoint& p, int) {
    return synth_result(p.index);
  };
  const SweepOutcome ref = SweepEngine(plain).run(points);
  EXPECT_EQ(jsonl_lines(out.rows), jsonl_lines(ref.rows))
      << "rows the dead worker already streamed are kept, the rest re-run";
}

TEST(Coordinator, CommandWorkerFailuresNameExitStatusAndSignal) {
  const std::string scratch = fresh_scratch("cmdfail");

  auto run_with_cmd = [&](const std::string& shell_cmd, int task_retries) {
    CommandLauncher launcher({}, [&](const LaunchTask&) {
      return std::vector<std::string>{"/bin/sh", "-c", shell_cmd};
    });
    CoordinatorOptions opts;
    opts.launcher = &launcher;
    opts.workers = 1;
    opts.max_task_retries = task_retries;
    opts.scratch_dir = scratch;
    return run_campaign(synth_points(2), opts);
  };

  // The command exits nonzero without writing an artifact: after the
  // re-dispatch budget the points are finalized failed, naming the fate.
  const CampaignOutcome exited = run_with_cmd("exit 7", 1);
  EXPECT_EQ(exited.failed, 2u);
  EXPECT_EQ(exited.task_retries, 1u);
  EXPECT_EQ(exited.tasks, 2u);
  for (const SweepRow& r : exited.rows) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("worker died"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("exited 7"), std::string::npos) << r.error;
  }

  const CampaignOutcome killed = run_with_cmd("kill -KILL $$", 0);
  EXPECT_EQ(killed.failed, 2u);
  for (const SweepRow& r : killed.rows)
    EXPECT_NE(r.error.find("signal 9"), std::string::npos) << r.error;
}

// ---- crash-tolerant JSONL reader ------------------------------------------

SweepRow tolerant_row(std::size_t index, bool ok) {
  SweepRow r;
  r.index = index;
  r.label = "synth/p" + std::to_string(index);
  r.ok = ok;
  if (!ok) r.error = "boom";
  r.result = synth_result(index);
  return r;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

TEST(ReadJsonlTolerant, DropsOnlyTheTornFinalLine) {
  const std::string dir = fresh_scratch("tolerant");
  const std::string l0 = SweepResultStore::jsonl_line(tolerant_row(0, true));
  const std::string l1 = SweepResultStore::jsonl_line(tolerant_row(1, false));

  const std::string torn = dir + "/torn.jsonl";
  write_file(torn, l0 + "\n" + l1 + "\n{\"index\":2,\"label\":\"torn-mid");
  std::size_t dropped = 99;
  const auto rows = read_jsonl_tolerant(torn, &dropped);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(rows[0].index, 0u);
  EXPECT_FALSE(rows[1].ok);

  const std::string clean = dir + "/clean.jsonl";
  write_file(clean, l0 + "\n" + l1 + "\n");
  dropped = 99;
  EXPECT_EQ(read_jsonl_tolerant(clean, &dropped).size(), 2u);
  EXPECT_EQ(dropped, 0u);

  // A malformed line with complete lines after it is corruption, not a
  // crash tail — refuse the artifact.
  const std::string corrupt = dir + "/corrupt.jsonl";
  write_file(corrupt, l0 + "\ngarbage not json\n" + l1 + "\n");
  EXPECT_THROW(read_jsonl_tolerant(corrupt), std::runtime_error);

  EXPECT_THROW(read_jsonl_tolerant(dir + "/no-such-file.jsonl"),
               std::runtime_error);
}

TEST(ReadJsonlTolerant, LaterDuplicatesWin) {
  // A resumed campaign appends a fresh (successful) row for a point that
  // previously failed; readers must keep the newer one.
  const std::string dir = fresh_scratch("dedupe");
  const std::string path = dir + "/dup.jsonl";
  write_file(path,
             SweepResultStore::jsonl_line(tolerant_row(4, false)) + "\n" +
                 SweepResultStore::jsonl_line(tolerant_row(4, true)) + "\n");
  const auto rows = read_jsonl_tolerant(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].index, 4u);
  EXPECT_TRUE(rows[0].ok) << "the later (resumed) row replaced the failure";
}

// ---- CSV sanitization (satellite: labels can carry commas) ----------------

TEST(SweepResultStore, CsvSanitizesCommasAndNewlinesInLabelAndError) {
  const std::string dir = fresh_scratch("csv");
  const std::string csv = dir + "/sanitize.csv";
  SweepRow r = tolerant_row(0, false);
  r.label = "cg/manual/dram1,5MiB";  // locale-style decimal comma
  r.error = "boom, with comma\nand newline";
  {
    SweepResultStore store;
    store.write_csv_at_finish(csv);
    store.add(r);
    store.finish();
  }
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  std::string extra;
  EXPECT_FALSE(std::getline(in, extra)) << "the newline was flattened";
  EXPECT_EQ(std::count(row.begin(), row.end(), ','), 11)
      << "cell commas would shift every column after label: " << row;
  EXPECT_NE(row.find("cg/manual/dram1;5MiB"), std::string::npos) << row;
  EXPECT_NE(row.find("boom; with comma and newline"), std::string::npos) << row;
}

// ---- sharded-process summary fields (satellite) ---------------------------

TEST(ShardedProcesses, ReportsShardsAndPerChildJobsAndAggregatesRetries) {
  const std::string scratch = fresh_scratch("sharded");
  const auto points = synth_points(6);
  ShardedOptions opts;
  opts.shards = 2;
  opts.scratch_dir = scratch;
  opts.engine.jobs = 1;
  opts.engine.max_point_retries = 1;
  opts.engine.backoff.base_s = 1e-4;
  opts.engine.run_point = [](const SweepPoint& p, int attempt) {
    if (attempt == 0 && p.index == 2)
      throw std::runtime_error("injected transient fault");
    return synth_result(p.index);
  };

  const SweepOutcome out = run_sharded_processes(points, opts);
  EXPECT_EQ(out.shards, 2) << "process fan-out reported separately";
  EXPECT_EQ(out.jobs_used, 1) << "per-child width, not the sum over shards";
  EXPECT_EQ(out.retries, 1u) << "child retry counters aggregate via sidecars";
  EXPECT_EQ(out.failed, 0u);
  ASSERT_EQ(out.rows.size(), points.size());
  for (std::size_t i = 0; i < out.rows.size(); ++i)
    EXPECT_EQ(out.rows[i].index, i) << "merged rows are point-ordered";
}

// ---- wait-status naming ---------------------------------------------------

TEST(DescribeWaitStatus, NamesExitCodesAndSignals) {
  auto wait_status_of = [](void (*child)()) {
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
      child();
      _exit(0);
    }
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    return status;
  };
  EXPECT_EQ(describe_wait_status(wait_status_of([] { _exit(4); })),
            "exited 4");
  const std::string sig =
      describe_wait_status(wait_status_of([] { raise(SIGKILL); }));
  EXPECT_EQ(sig.rfind("killed by signal 9", 0), 0u) << sig;
}

}  // namespace
}  // namespace unimem::sweep
