#!/usr/bin/env python3
"""Contract tests for scripts/check_bench_regression.py.

Pins the pieces CI relies on: both input formats (raw google-benchmark
--benchmark_out JSON and BENCH_components.json-style label files), the
label fallback chains, aggregate-row skipping, time-unit scaling, and the
exit-code contract (0 ok / nothing comparable, 1 regression past
threshold, 2 usage or IO error).

Run standalone (python3 tests/check_bench_regression_test.py) or via the
`check_bench_regression_py` ctest; CHECK_SCRIPT overrides the script path.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.environ.get(
    "CHECK_SCRIPT",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                 "scripts", "check_bench_regression.py"))


def bench_row(name, real_time_ms, unit="ms", run_type="iteration"):
    return {"name": name, "real_time": real_time_ms, "time_unit": unit,
            "run_type": run_type}


def run_check(baseline, fresh, *extra):
    """Write both payloads to temp files and run the script against them."""
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "baseline.json")
        fp = os.path.join(d, "fresh.json")
        with open(bp, "w") as f:
            json.dump(baseline, f)
        with open(fp, "w") as f:
            json.dump(fresh, f)
        return subprocess.run(
            [sys.executable, SCRIPT, "--baseline", bp, "--fresh", fp, *extra],
            capture_output=True, text=True)


class CheckBenchRegressionTest(unittest.TestCase):
    def test_ok_within_threshold(self):
        baseline = {"post_pr": [bench_row("BM_A", 100.0)]}
        fresh = {"benchmarks": [bench_row("BM_A", 110.0)]}  # +10% < 30%
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("within", r.stdout)

    def test_regression_exits_1(self):
        baseline = {"post_pr": [bench_row("BM_A", 100.0)]}
        fresh = {"benchmarks": [bench_row("BM_A", 150.0)]}  # +50% > 30%
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("REGRESSION", r.stdout)
        self.assertIn("regressed", r.stderr)

    def test_threshold_flag_respected(self):
        baseline = {"post_pr": [bench_row("BM_A", 100.0)]}
        fresh = {"benchmarks": [bench_row("BM_A", 150.0)]}
        r = run_check(baseline, fresh, "--threshold", "0.60")
        self.assertEqual(r.returncode, 0, r.stdout)

    def test_label_file_as_fresh_input(self):
        # Fresh side in BENCH_components style with the default "ci" label.
        baseline = {"post_pr": [bench_row("BM_A", 100.0)]}
        fresh = {"ci": [bench_row("BM_A", 105.0)]}
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_baseline_label_fallback_to_pre_pr(self):
        # No post_pr in the baseline: the pre_pr fallback must kick in.
        baseline = {"pre_pr": [bench_row("BM_A", 100.0)]}
        fresh = {"benchmarks": [bench_row("BM_A", 100.0)]}
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_fresh_label_fallback_chain(self):
        # No "ci" label in the fresh file: falls back post_pr, then pre_pr.
        baseline = {"post_pr": [bench_row("BM_A", 100.0)]}
        fresh = {"pre_pr": [bench_row("BM_A", 100.0)]}
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_missing_labels_exit_2(self):
        baseline = {"something_else": [bench_row("BM_A", 100.0)]}
        fresh = {"benchmarks": [bench_row("BM_A", 100.0)]}
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 2, r.stdout)
        self.assertIn("none of the labels", r.stderr)

    def test_unreadable_file_exits_2(self):
        with tempfile.TemporaryDirectory() as d:
            fp = os.path.join(d, "fresh.json")
            with open(fp, "w") as f:
                json.dump({"benchmarks": []}, f)
            r = subprocess.run(
                [sys.executable, SCRIPT, "--baseline",
                 os.path.join(d, "missing.json"), "--fresh", fp],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)
        self.assertIn("cannot read", r.stderr)

    def test_invalid_json_exits_2(self):
        with tempfile.TemporaryDirectory() as d:
            bp = os.path.join(d, "baseline.json")
            fp = os.path.join(d, "fresh.json")
            with open(bp, "w") as f:
                f.write("{not json")
            with open(fp, "w") as f:
                json.dump({"benchmarks": []}, f)
            r = subprocess.run(
                [sys.executable, SCRIPT, "--baseline", bp, "--fresh", fp],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)

    def test_nothing_comparable_is_ok(self):
        # Disjoint benchmark sets: advisory gate must not fail the build.
        baseline = {"post_pr": [bench_row("BM_OLD", 100.0)]}
        fresh = {"benchmarks": [bench_row("BM_NEW", 100.0)]}
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("nothing", r.stdout)
        self.assertIn("(new)", r.stdout)

    def test_aggregate_rows_skipped(self):
        # Repetition aggregates (mean/median/stddev) must not be compared —
        # only the regressed mean row here, and it is skipped, so exit 0.
        baseline = {"post_pr": [bench_row("BM_A", 100.0)]}
        fresh = {"benchmarks": [
            bench_row("BM_A_mean", 500.0, run_type="aggregate"),
            bench_row("BM_A", 100.0),
        ]}
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertNotIn("BM_A_mean", r.stdout)

    def test_time_unit_scaling(self):
        # 0.1 s == 100 ms: same wall time in different units, no regression;
        # and a ns-unit fresh row 50x the baseline must still trip.
        baseline = {"post_pr": [bench_row("BM_A", 100.0, unit="ms"),
                                bench_row("BM_B", 1.0, unit="ms")]}
        fresh = {"benchmarks": [bench_row("BM_A", 0.1, unit="s"),
                                bench_row("BM_B", 5e7, unit="ns")]}  # 50 ms
        r = run_check(baseline, fresh)
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("BM_B", r.stderr)
        self.assertNotIn("BM_A", r.stderr)


if __name__ == "__main__":
    unittest.main()
