// Tests for the execution engine (descriptor -> time/misses, chunk
// splitting, tier dependence) and the profiler's sample attribution and
// multi-iteration folding.
#include <gtest/gtest.h>

#include "core/exec_engine.h"
#include "core/profiler.h"
#include "core/registry.h"
#include "simcache/analytic_cache.h"

namespace unimem::rt {
namespace {

class ExecEngineTest : public ::testing::Test {
 protected:
  ExecEngineTest()
      : hms_(mem::HmsConfig::scaled(0.5, 1.0, 16 * kMiB, 128 * kMiB)),
        reg_(&hms_, nullptr),
        engine_(&hms_, &cache_, clk::TimingParams{}) {}

  mem::HeteroMemory hms_;
  cache::AnalyticCache cache_;
  Registry reg_;
  ExecEngine engine_;
};

TEST_F(ExecEngineTest, ComputeOnlyWork) {
  PhaseWork w;
  w.flops = 9.6e6;
  PhaseExec e = engine_.run(w);
  EXPECT_NEAR(e.compute_s, 1e-3, 1e-9);
  EXPECT_DOUBLE_EQ(e.mem_s, 0.0);
  EXPECT_TRUE(e.windows.empty());
}

TEST_F(ExecEngineTest, NvmStreamSlowerThanDram) {
  DataObject* n = reg_.create("n", 4 * kMiB, {}, mem::Tier::kNvm);
  DataObject* d = reg_.create("d", 4 * kMiB, {}, mem::Tier::kNvm);
  ASSERT_TRUE(reg_.migrate(UnitRef{d->id(), 0}, mem::Tier::kDram));
  auto work = [](DataObject* o) {
    PhaseWork w;
    w.accesses.push_back(
        ObjectAccess{o, cache::Pattern::kSequential, 4 * kMiB / 8});
    return w;
  };
  double t_nvm = engine_.run(work(n)).mem_s;
  double t_dram = engine_.run(work(d)).mem_s;
  EXPECT_GT(t_nvm, 1.9 * t_dram);  // 1/2 bandwidth NVM
}

TEST_F(ExecEngineTest, PointerChaseInsensitiveToBandwidthConfig) {
  // At the 1/2-BW configuration latencies are equal: a dependent chain
  // costs the same on both tiers (paper Fig. 4, lhs panel).
  DataObject* n = reg_.create("n2", 4 * kMiB, {}, mem::Tier::kNvm);
  DataObject* d = reg_.create("d2", 4 * kMiB, {}, mem::Tier::kNvm);
  ASSERT_TRUE(reg_.migrate(UnitRef{d->id(), 0}, mem::Tier::kDram));
  auto work = [](DataObject* o) {
    PhaseWork w;
    w.accesses.push_back(
        ObjectAccess{o, cache::Pattern::kPointerChase, 100000});
    return w;
  };
  EXPECT_NEAR(engine_.run(work(n)).mem_s, engine_.run(work(d)).mem_s, 1e-9);
}

TEST_F(ExecEngineTest, ChunkSplitPreservesTotals) {
  DataObject* whole = reg_.create("w", 6 * kMiB, {}, mem::Tier::kNvm);
  DataObject* chunked = reg_.create("c", 6 * kMiB, ObjectTraits{true, -1},
                                    mem::Tier::kNvm, kMiB);
  ASSERT_EQ(chunked->chunk_count(), 6u);
  auto work = [](DataObject* o) {
    PhaseWork w;
    w.accesses.push_back(
        ObjectAccess{o, cache::Pattern::kSequential, 6 * kMiB / 8});
    return w;
  };
  PhaseExec ew = engine_.run(work(whole));
  PhaseExec ec = engine_.run(work(chunked));
  ASSERT_EQ(ec.unit_results.size(), 6u);
  std::uint64_t misses_c = 0;
  for (auto& [u, r] : ec.unit_results) misses_c += r.misses;
  // Same logical traversal: totals agree within rounding.
  EXPECT_NEAR(static_cast<double>(misses_c),
              static_cast<double>(ew.unit_results[0].second.misses),
              0.02 * static_cast<double>(ew.unit_results[0].second.misses));
  EXPECT_NEAR(ec.mem_s, ew.mem_s, 0.05 * ew.mem_s);
}

TEST_F(ExecEngineTest, SubRangeAccessesOnlyPartOfObject) {
  DataObject* o = reg_.create("r", 8 * kMiB, {}, mem::Tier::kNvm);
  PhaseWork w;
  ObjectAccess a{o, cache::Pattern::kSequential, kMiB / 8};
  a.offset = kMiB;
  a.length = kMiB;
  w.accesses.push_back(a);
  PhaseExec e = engine_.run(w);
  ASSERT_EQ(e.windows.size(), 1u);
  EXPECT_EQ(e.windows[0].region_bytes, kMiB);
  auto base = reinterpret_cast<std::uint64_t>(o->chunk(0).data());
  EXPECT_EQ(e.windows[0].region_base, base + kMiB);
}

TEST_F(ExecEngineTest, WriteFractionUsesWriteBandwidth) {
  DataObject* o = reg_.create("wf", 4 * kMiB, {}, mem::Tier::kNvm);
  PhaseWork rd, wr;
  ObjectAccess a{o, cache::Pattern::kSequential, 4 * kMiB / 8};
  rd.accesses.push_back(a);
  a.write_fraction = 1.0;
  wr.accesses.push_back(a);
  // NVM write bandwidth < read bandwidth => writes cost more.
  EXPECT_GT(engine_.run(wr).mem_s, engine_.run(rd).mem_s);
}

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest()
      : hms_(mem::HmsConfig::scaled(0.5, 1.0, 8 * kMiB, 64 * kMiB)),
        reg_(&hms_, nullptr),
        prof_(&reg_) {}

  perf::PhaseSamples samples_for(DataObject* o, std::uint64_t n_addr,
                                 std::uint64_t misses) {
    perf::PhaseSamples s;
    s.total_samples = 1000;
    s.total_miss_count = misses;
    auto base = reinterpret_cast<std::uint64_t>(o->chunk(0).data());
    for (std::uint64_t i = 0; i < n_addr; ++i)
      s.miss_addresses.push_back(base + (i * 64) % o->bytes());
    return s;
  }

  mem::HeteroMemory hms_;
  Registry reg_;
  Profiler prof_;
};

TEST_F(ProfilerTest, AttributesAddressesToUnits) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  prof_.record_phase(samples_for(o, 500, 80000), 1e-3);
  ASSERT_EQ(prof_.phase_count(), 1u);
  const auto& ph = prof_.phases()[0];
  auto it = ph.units.find(UnitRef{o->id(), 0});
  ASSERT_NE(it, ph.units.end());
  EXPECT_EQ(it->second.est_accesses, 80000u);  // all samples hit this object
  EXPECT_NEAR(it->second.time_fraction, 0.5, 1e-9);
}

TEST_F(ProfilerTest, UnknownAddressesIgnored) {
  reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  perf::PhaseSamples s;
  s.total_samples = 100;
  s.total_miss_count = 1000;
  s.miss_addresses = {1, 2, 3};  // not any object's range
  prof_.record_phase(s, 1e-3);
  EXPECT_TRUE(prof_.phases()[0].units.empty());
}

TEST_F(ProfilerTest, LastReferenceBeforeWrapsCyclically) {
  DataObject* a = reg_.create("a", kMiB, {}, mem::Tier::kNvm);
  DataObject* b = reg_.create("b", kMiB, {}, mem::Tier::kNvm);
  prof_.record_phase(samples_for(a, 100, 1000), 1e-3);  // phase 0: a
  prof_.record_comm_phase(1e-4);                        // phase 1
  prof_.record_phase(samples_for(b, 100, 1000), 1e-3);  // phase 2: b
  EXPECT_EQ(prof_.last_reference_before(2, UnitRef{a->id(), 0}), 0);
  EXPECT_EQ(prof_.last_reference_before(0, UnitRef{b->id(), 0}), 2);  // wrap
  EXPECT_EQ(prof_.last_reference_before(2, UnitRef{b->id(), 0}), -1);
}

TEST_F(ProfilerTest, FoldAveragesIterations) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  // Two profiled iterations of the same 2-phase structure with different
  // sampled intensities: folding averages them.
  prof_.record_phase(samples_for(o, 100, 60000), 2e-3);
  prof_.record_comm_phase(1e-4);
  prof_.record_phase(samples_for(o, 100, 20000), 1e-3);
  prof_.record_comm_phase(1e-4);
  EXPECT_EQ(prof_.fold(2), FoldStatus::kOk);
  ASSERT_EQ(prof_.phase_count(), 2u);
  const auto& u = prof_.phases()[0].units.at(UnitRef{o->id(), 0});
  EXPECT_EQ(u.est_accesses, 40000u);                    // mean of 60k/20k
  EXPECT_NEAR(prof_.phases()[0].phase_time_s, 1.5e-3, 1e-9);
  EXPECT_TRUE(prof_.phases()[1].is_communication);
}

TEST_F(ProfilerTest, FoldTruncatesNonDivisibleTail) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  // 3 phases, period 2: the largest divisible prefix (2 phases = 2 periods
  // of the 1-phase iteration) folds; the partial tail is dropped instead
  // of silently leaving the profile un-averaged.
  prof_.record_phase(samples_for(o, 10, 60000), 1e-3);
  prof_.record_phase(samples_for(o, 10, 20000), 1e-3);
  prof_.record_phase(samples_for(o, 10, 999999), 1e-3);
  EXPECT_EQ(prof_.fold(2), FoldStatus::kTruncated);
  ASSERT_EQ(prof_.phase_count(), 1u);
  const auto& u = prof_.phases()[0].units.at(UnitRef{o->id(), 0});
  EXPECT_EQ(u.est_accesses, 40000u);  // tail phase did not contaminate
}

TEST_F(ProfilerTest, FoldOfIdenticalPeriodsIsExact) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  // est_accesses = 100003 is not divisible by 3: per-period integer
  // division would report 100002 (or worse).  Summing raw counts and
  // dividing once must reproduce one period's counts exactly.
  for (int i = 0; i < 3; ++i) {
    prof_.record_phase(samples_for(o, 10, 100003), 1e-3);
    prof_.record_comm_phase(1e-4);
  }
  EXPECT_EQ(prof_.fold(3), FoldStatus::kOk);
  ASSERT_EQ(prof_.phase_count(), 2u);
  const auto& u = prof_.phases()[0].units.at(UnitRef{o->id(), 0});
  EXPECT_EQ(u.est_accesses, 100003u);
}

TEST_F(ProfilerTest, FoldRejectsPhaseKindMismatch) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  // Period 1 is (compute, comm) but period 2 is (comm, compute): the
  // periods are not repetitions of one iteration structure, so nothing
  // folds and the caller is told why.
  prof_.record_phase(samples_for(o, 10, 100), 1e-3);
  prof_.record_comm_phase(1e-4);
  prof_.record_comm_phase(1e-4);
  prof_.record_phase(samples_for(o, 10, 100), 1e-3);
  EXPECT_EQ(prof_.fold(2), FoldStatus::kKindMismatch);
  EXPECT_EQ(prof_.phase_count(), 4u);  // untouched
}

TEST_F(ProfilerTest, PendingPhaseFilledLater) {
  DataObject* o = reg_.create("o", kMiB, {}, mem::Tier::kNvm);
  // Sampled-tier shape: the observation is appended in program order
  // (keeping comm/compute interleaving intact) and populated after
  // out-of-band attribution.
  std::size_t slot = prof_.record_phase_pending(1e-3);
  prof_.record_comm_phase(1e-4);
  ASSERT_EQ(prof_.phase_count(), 2u);
  EXPECT_TRUE(prof_.phases()[slot].units.empty());
  std::map<UnitRef, UnitPhaseProfile> units;
  units[UnitRef{o->id(), 0}] = UnitPhaseProfile{5000, 0.25, 1e-3};
  prof_.fill_phase(slot, units);
  EXPECT_EQ(prof_.phases()[slot].units.at(UnitRef{o->id(), 0}).est_accesses,
            5000u);
  EXPECT_FALSE(prof_.phases()[slot].is_communication);
}

}  // namespace
}  // namespace unimem::rt
