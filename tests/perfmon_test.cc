// Tests for the PEBS-like sampler and the virtual clock / timing params.
#include <gtest/gtest.h>

#include "perfmon/sampler.h"
#include "simclock/timing_params.h"
#include "simclock/virtual_clock.h"

namespace unimem {
namespace {

TEST(VirtualClock, AdvanceAndWait) {
  clk::VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(0.5);
  EXPECT_DOUBLE_EQ(c.now(), 0.5);
  EXPECT_DOUBLE_EQ(c.wait_until(0.75), 0.25);
  EXPECT_DOUBLE_EQ(c.now(), 0.75);
  // Waiting for the past is a no-op.
  EXPECT_DOUBLE_EQ(c.wait_until(0.1), 0.0);
  EXPECT_DOUBLE_EQ(c.now(), 0.75);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(TimingParams, SamplePeriodAndCompute) {
  clk::TimingParams t;
  t.cpu_freq_hz = 2.4e9;
  t.sample_interval_cycles = 1000;
  EXPECT_NEAR(t.sample_period_s(), 1000 / 2.4e9, 1e-15);
  t.flops_per_sec = 9.6e9;
  EXPECT_NEAR(t.compute_seconds(9.6e6), 1e-3, 1e-12);
}

TEST(Sampler, SampleCountMatchesPhaseLength) {
  clk::TimingParams t;
  perf::Sampler s(t);
  std::vector<perf::MemWindow> w{{0x10000, 1 << 20, 10000, 1e-3}};
  perf::PhaseSamples ps = s.sample_phase(w, 0.0, 1e-3);
  EXPECT_EQ(ps.total_samples,
            static_cast<std::uint64_t>(1e-3 / t.sample_period_s()));
  EXPECT_EQ(ps.total_miss_count, 10000u);
}

TEST(Sampler, AddressesFallInsideRegions) {
  clk::TimingParams t;
  perf::Sampler s(t);
  std::vector<perf::MemWindow> w{{0x100000, 4096, 5000, 2e-3}};
  perf::PhaseSamples ps = s.sample_phase(w, 0.0, 2e-3);
  ASSERT_FALSE(ps.miss_addresses.empty());
  for (std::uint64_t a : ps.miss_addresses) {
    EXPECT_GE(a, 0x100000u);
    EXPECT_LT(a, 0x100000u + 4096u);
  }
}

TEST(Sampler, TimeFractionsTrackWindowShares) {
  clk::TimingParams t;
  perf::Sampler s(t);
  // Window A takes 3x the memory time of window B.
  std::vector<perf::MemWindow> w{{0x1000000, 1 << 20, 30000, 3e-3},
                                 {0x2000000, 1 << 20, 10000, 1e-3}};
  perf::PhaseSamples ps = s.sample_phase(w, 1e-3, 5e-3);
  std::uint64_t a = 0, b = 0;
  for (std::uint64_t addr : ps.miss_addresses)
    (addr < 0x2000000 ? a : b) += 1;
  ASSERT_GT(b, 0u);
  EXPECT_NEAR(static_cast<double>(a) / static_cast<double>(b), 3.0, 0.35);
  // The compute segment yields no addresses: sampled addresses should be
  // about 4/5 of the total samples.
  EXPECT_NEAR(static_cast<double>(ps.miss_addresses.size()) /
                  static_cast<double>(ps.total_samples),
              0.8, 0.08);
}

TEST(Sampler, ComputeOnlyPhaseYieldsNoAddresses) {
  clk::TimingParams t;
  perf::Sampler s(t);
  perf::PhaseSamples ps = s.sample_phase({}, 1e-3, 1e-3);
  EXPECT_TRUE(ps.miss_addresses.empty());
  EXPECT_EQ(ps.total_miss_count, 0u);
  EXPECT_GT(ps.total_samples, 0u);
}

TEST(Sampler, ZeroDurationPhase) {
  clk::TimingParams t;
  perf::Sampler s(t);
  perf::PhaseSamples ps = s.sample_phase({}, 0.0, 0.0);
  EXPECT_EQ(ps.total_samples, 0u);
}

TEST(Sampler, WindowWithoutMissesProducesNoAddresses) {
  clk::TimingParams t;
  perf::Sampler s(t);
  std::vector<perf::MemWindow> w{{0x1000, 4096, 0, 1e-3}};
  perf::PhaseSamples ps = s.sample_phase(w, 0.0, 1e-3);
  EXPECT_TRUE(ps.miss_addresses.empty());
}

}  // namespace
}  // namespace unimem
