#include "simmem/arena.h"

#include <cstdio>
#include <cstdlib>

#include "common/units.h"

namespace unimem::mem {

Arena::Arena(std::size_t capacity)
    : capacity_(align_up(capacity, kCacheLine)),
      buffer_(static_cast<std::byte*>(std::malloc(capacity_ + kCacheLine))) {
  if (buffer_ == nullptr) {
    std::fprintf(stderr, "Arena: cannot reserve %zu bytes\n", capacity_);
    std::abort();
  }
  // Start the usable region at a 64-byte-aligned offset inside the buffer.
  auto base = reinterpret_cast<std::uintptr_t>(buffer_.get());
  base_shift_ = align_up(base, kCacheLine) - base;
  free_.emplace(0, capacity_);
}

void* Arena::allocate(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  bytes = align_up(bytes, kCacheLine);
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= bytes) {
      std::size_t off = it->first;
      std::size_t len = it->second;
      free_.erase(it);
      if (len > bytes) free_.emplace(off + bytes, len - bytes);
      live_.emplace(off, bytes);
      used_ += bytes;
      if (used_ > peak_) peak_ = used_;
      return buffer_.get() + base_shift_ + off;
    }
  }
  return nullptr;
}

void Arena::deallocate(void* p) {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto off = static_cast<std::size_t>(static_cast<std::byte*>(p) -
                                      (buffer_.get() + base_shift_));
  auto it = live_.find(off);
  if (it == live_.end()) {
    std::fprintf(stderr, "Arena::deallocate: pointer not owned by arena\n");
    std::abort();
  }
  std::size_t len = it->second;
  live_.erase(it);
  used_ -= len;
  // Insert into the free map and coalesce with neighbours.
  auto [fit, ok] = free_.emplace(off, len);
  (void)ok;
  // Coalesce with next block.
  auto next = std::next(fit);
  if (next != free_.end() && fit->first + fit->second == next->first) {
    fit->second += next->second;
    free_.erase(next);
  }
  // Coalesce with previous block.
  if (fit != free_.begin()) {
    auto prev = std::prev(fit);
    if (prev->first + prev->second == fit->first) {
      prev->second += fit->second;
      free_.erase(fit);
    }
  }
}

bool Arena::contains(const void* p) const {
  auto* b = static_cast<const std::byte*>(p);
  const std::byte* lo = buffer_.get() + base_shift_;
  return b >= lo && b < lo + capacity_;
}

std::size_t Arena::used() const {
  std::lock_guard<std::mutex> lk(mu_);
  return used_;
}

std::size_t Arena::peak_used() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_;
}

std::size_t Arena::free_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return capacity_ - used_;
}

std::size_t Arena::live_blocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_.size();
}

std::size_t Arena::largest_free_block() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t best = 0;
  for (const auto& [off, len] : free_)
    if (len > best) best = len;
  return best;
}

}  // namespace unimem::mem
