#include "simmem/tier_config.h"

namespace unimem::mem {

namespace {
// Paper Table 1 (from Suzuki & Swanson, NVMDB survey of 340 papers).
const NvmTechnology kTable1[] = {
    {"DRAM", 10, 10, 10, 10, 1000, 1000, 900, 900},
    {"STT-RAM (ITRS'13)", 60, 60, 80, 80, 800, 800, 600, 600},
    {"PCRAM", 20, 200, 80, 10000, 200, 800, 100, 800},
    {"ReRAM", 10, 1000, 10, 10000, 20, 100, 1, 8},
};
}  // namespace

const NvmTechnology* table1_technologies(std::size_t* count) {
  *count = sizeof(kTable1) / sizeof(kTable1[0]);
  return kTable1;
}

}  // namespace unimem::mem
