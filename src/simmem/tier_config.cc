#include "simmem/tier_config.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace unimem::mem {

namespace {
// Paper Table 1 (from Suzuki & Swanson, NVMDB survey of 340 papers).
const NvmTechnology kTable1[] = {
    {"DRAM", 10, 10, 10, 10, 1000, 1000, 900, 900},
    {"STT-RAM (ITRS'13)", 60, 60, 80, 80, 800, 800, 600, 600},
    {"PCRAM", 20, 200, 80, 10000, 200, 800, 100, 800},
    {"ReRAM", 10, 1000, 10, 10000, 20, 100, 1, 8},
};
}  // namespace

const NvmTechnology* table1_technologies(std::size_t* count) {
  *count = sizeof(kTable1) / sizeof(kTable1[0]);
  return kTable1;
}

// ---------------------------------------------------------------------------
// Tier backend registry

namespace {

struct BackendRegistry {
  std::mutex mu;
  std::map<std::string, TierFactory> backends;

  BackendRegistry() {
    // Built-in backends.  "nvm" is a definite operating point (half DRAM
    // bandwidth at 4x latency — both paper sweep axes degraded at once);
    // the ratio-parameterized forms stay available through
    // TierConfig::nvm_scaled for the 2-tier figure sweeps.
    backends["dram"] = [](std::size_t c) { return TierConfig::dram_basis(c); };
    backends["hbm"] = [](std::size_t c) { return TierConfig::hbm(c); };
    backends["cxl"] = [](std::size_t c) { return TierConfig::cxl(c); };
    backends["nvm"] = [](std::size_t c) {
      return TierConfig::nvm_scaled(c, 0.5, 4.0);
    };
    backends["remote"] = [](std::size_t c) { return TierConfig::remote(c); };
  }
};

BackendRegistry& backend_registry() {
  static BackendRegistry reg;
  return reg;
}

/// "8MiB" / "512KiB" / "1GiB" / "4096" -> bytes; throws on garbage.
std::size_t parse_capacity(const std::string& s) {
  std::size_t mult = 1;
  std::string digits = s;
  auto ends_with = [&](const char* suf) {
    const std::size_t n = std::char_traits<char>::length(suf);
    return s.size() > n && s.compare(s.size() - n, n, suf) == 0;
  };
  if (ends_with("KiB")) { mult = kKiB; digits = s.substr(0, s.size() - 3); }
  else if (ends_with("MiB")) { mult = kMiB; digits = s.substr(0, s.size() - 3); }
  else if (ends_with("GiB")) { mult = kGiB; digits = s.substr(0, s.size() - 3); }
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("parse_topology: bad capacity '" + s + "'");
  return static_cast<std::size_t>(std::strtoull(digits.c_str(), nullptr, 10)) *
         mult;
}

}  // namespace

bool register_tier_backend(const std::string& name, TierFactory factory) {
  BackendRegistry& reg = backend_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  return reg.backends.emplace(name, std::move(factory)).second;
}

TierFactory find_tier_backend(const std::string& name) {
  BackendRegistry& reg = backend_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.backends.find(name);
  return it == reg.backends.end() ? TierFactory{} : it->second;
}

std::vector<std::string> tier_backend_names() {
  BackendRegistry& reg = backend_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::vector<std::string> out;
  for (const auto& [name, f] : reg.backends) out.push_back(name);
  return out;  // std::map iterates sorted
}

TopologyConfig parse_topology(const std::string& spec) {
  TopologyConfig topo;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty())
      throw std::invalid_argument("parse_topology: empty tier in '" + spec +
                                  "'");
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("parse_topology: expected name:capacity, got '" +
                                  part + "'");
    const std::string name = part.substr(0, colon);
    TierFactory f = find_tier_backend(name);
    if (!f) {
      std::string known;
      for (const std::string& n : tier_backend_names())
        known += (known.empty() ? "" : ", ") + n;
      throw std::invalid_argument("parse_topology: unknown tier backend '" +
                                  name + "' (registered: " + known + ")");
    }
    topo.tiers.push_back(f(parse_capacity(part.substr(colon + 1))));
    if (comma == spec.size()) break;
  }
  if (topo.tiers.size() < 2)
    throw std::invalid_argument(
        "parse_topology: need at least 2 tiers (fastest first, backstop "
        "last), got '" +
        spec + "'");
  return topo;
}

}  // namespace unimem::mem
