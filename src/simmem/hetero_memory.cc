#include "simmem/hetero_memory.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace unimem::mem {

HeteroMemory::HeteroMemory(HmsConfig cfg)
    : cfg_(std::move(cfg)),
      dram_(std::make_unique<Arena>(cfg_.dram.capacity_bytes)),
      nvm_(std::make_unique<Arena>(cfg_.nvm.capacity_bytes)) {}

Tier HeteroMemory::tier_of(const void* p) const {
  if (dram_->contains(p)) return Tier::kDram;
  if (nvm_->contains(p)) return Tier::kNvm;
  std::fprintf(stderr, "HeteroMemory::tier_of: unknown pointer\n");
  std::abort();
}

double HeteroMemory::copy_bandwidth(Tier from, Tier to) const {
  return std::min(tier_config(from).read_bw, tier_config(to).write_bw);
}

double HeteroMemory::copy_seconds(std::size_t bytes, Tier from, Tier to) const {
  return static_cast<double>(bytes) / copy_bandwidth(from, to);
}

}  // namespace unimem::mem
