#include "simmem/hetero_memory.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace unimem::mem {

HeteroMemory::HeteroMemory(HmsConfig cfg)
    : HeteroMemory(TopologyConfig::dram_nvm(cfg.dram, cfg.nvm)) {}

HeteroMemory::HeteroMemory(TopologyConfig cfg)
    : tiers_(std::move(cfg.tiers)) {
  if (tiers_.size() < 2) {
    std::fprintf(stderr, "HeteroMemory: need at least 2 tiers\n");
    std::abort();
  }
  cfg_ = HmsConfig{tiers_.front(), tiers_.back()};
  arenas_.reserve(tiers_.size());
  for (const TierConfig& t : tiers_)
    arenas_.push_back(std::make_unique<Arena>(t.capacity_bytes));
}

Tier HeteroMemory::tier_of(const void* p) const {
  for (std::size_t i = 0; i < arenas_.size(); ++i)
    if (arenas_[i]->contains(p)) return tier(static_cast<int>(i));
  std::fprintf(stderr, "HeteroMemory::tier_of: unknown pointer\n");
  std::abort();
}

double HeteroMemory::copy_bandwidth(Tier from, Tier to) const {
  return std::min(tier_config(from).read_bw, tier_config(to).write_bw);
}

double HeteroMemory::copy_seconds(std::size_t bytes, Tier from, Tier to) const {
  return static_cast<double>(bytes) / copy_bandwidth(from, to);
}

}  // namespace unimem::mem
