// First-fit free-list arena allocator over one contiguous buffer.
//
// The paper's user-level DRAM service uses "a simple memory allocator
// without consideration of memory allocation efficiency and fragmentation,
// because we expect that data movement should not be frequent".  This arena
// is that allocator: correct, thread-safe, O(#free-blocks) per operation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace unimem::mem {

class Arena {
 public:
  explicit Arena(std::size_t capacity);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `bytes` (rounded up to cache-line multiple), 64-byte aligned.
  /// Returns nullptr when no free block fits.
  void* allocate(std::size_t bytes);

  /// Release a block previously returned by allocate().  Coalesces with
  /// free neighbours.  Passing a pointer not owned by this arena aborts.
  void deallocate(void* p);

  /// True if `p` lies inside this arena's buffer.
  bool contains(const void* p) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const;
  std::size_t peak_used() const;
  std::size_t free_bytes() const;
  /// Number of live allocations.
  std::size_t live_blocks() const;
  /// Largest single block currently allocatable.
  std::size_t largest_free_block() const;

 private:
  struct FreeDeleter {
    void operator()(std::byte* p) const noexcept { std::free(p); }
  };

  std::size_t capacity_;
  /// malloc'd, NOT value-initialized: an untouched tier costs no resident
  /// pages, so large simulated NVM tiers stay cheap on the host.
  std::unique_ptr<std::byte[], FreeDeleter> buffer_;
  std::size_t base_shift_ = 0;  ///< offset of the aligned usable region
  mutable std::mutex mu_;
  // offset -> length, for free and live blocks respectively.
  std::map<std::size_t, std::size_t> free_;
  std::map<std::size_t, std::size_t> live_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace unimem::mem
