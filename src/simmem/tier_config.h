// Memory-tier performance/capacity descriptions.
//
// The paper (Table 1, from the UCSD NVMDB survey) characterizes candidate
// NVM technologies by read/write latency and random read/write bandwidth.
// Its evaluation then sweeps NVM as *ratios* of DRAM: 1/2..1/8 bandwidth and
// 2x..8x latency (Quartz can emulate one axis at a time), plus a NUMA-based
// emulation with 0.6x bandwidth and 1.89x latency used on Edison.
//
// We model a tier with four numbers (read/write latency, read/write
// bandwidth) and provide both the published Table 1 presets and the
// ratio-derived configurations the evaluation actually uses.
//
// Beyond the paper's DRAM+NVM pair, a TopologyConfig describes an ordered
// N-tier machine (HBM above DRAM, CXL-attached far memory, remote-node
// pools).  Tier *backends* are registration-based — named factories behind
// one interface, the way FreeBSD's pluggable TCP stacks register alternative
// implementations (sys/netinet/tcp_stacks) — so new tier kinds plug in
// without touching the simulator: register_tier_backend("mytier", fn) makes
// "mytier:64MiB" parseable by parse_topology() and usable from the
// `unimem_sweep --tiers` CLI.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"

namespace unimem::mem {

struct TierConfig {
  std::string name;
  std::size_t capacity_bytes = 0;
  double read_latency_s = 0;   ///< per-cacheline load-to-use latency
  double write_latency_s = 0;  ///< per-cacheline write latency
  double read_bw = 0;          ///< sustained read bandwidth (bytes/s)
  double write_bw = 0;         ///< sustained write bandwidth (bytes/s)

  /// DRAM basis used throughout the evaluation.  Absolute values are a
  /// plausible single-socket DDR4 operating point; only the *ratios* of the
  /// NVM configurations below matter for the reproduced results.
  static TierConfig dram_basis(std::size_t capacity) {
    return TierConfig{"DRAM", capacity, unimem::ns(80), unimem::ns(80),
                      unimem::gbps(12.8), unimem::gbps(9.6)};
  }

  /// NVM derived from the DRAM basis by scaling bandwidth down by
  /// `bw_ratio` (e.g. 0.5 = "1/2 DRAM bandwidth") and latency up by
  /// `lat_mult` (e.g. 4.0 = "4x DRAM latency").  The paper's Quartz setup
  /// changes one axis at a time; pass 1.0 for the axis left untouched.
  static TierConfig nvm_scaled(std::size_t capacity, double bw_ratio,
                               double lat_mult) {
    TierConfig d = dram_basis(capacity);
    return TierConfig{"NVM", capacity, d.read_latency_s * lat_mult,
                      d.write_latency_s * lat_mult, d.read_bw * bw_ratio,
                      d.write_bw * bw_ratio};
  }

  /// NUMA-emulated NVM used for the strong-scaling tests on Edison:
  /// "the emulated NVM has 60% of DRAM bandwidth and 1.89x of DRAM latency".
  static TierConfig nvm_numa_emulated(std::size_t capacity) {
    return nvm_scaled(capacity, 0.60, 1.89);
  }

  /// On-package high-bandwidth memory above DRAM (MCDRAM/HBM2-class): ~4x
  /// DRAM bandwidth at slightly worse load-to-use latency.
  static TierConfig hbm(std::size_t capacity) {
    return TierConfig{"HBM", capacity, unimem::ns(100), unimem::ns(100),
                      unimem::gbps(51.2), unimem::gbps(38.4)};
  }

  /// CXL-attached far memory: the protocol hop costs ~3x DRAM latency and
  /// the link sustains about half the local bandwidth.
  static TierConfig cxl(std::size_t capacity) {
    return TierConfig{"CXL", capacity, unimem::ns(250), unimem::ns(250),
                      unimem::gbps(6.4), unimem::gbps(4.8)};
  }

  /// Remote-node memory reached over the fabric (RDMA-class): microsecond
  /// latency, a few GB/s of sustained bandwidth.
  static TierConfig remote(std::size_t capacity) {
    return TierConfig{"remote", capacity, unimem::ns(1500), unimem::ns(1500),
                      unimem::gbps(2.5), unimem::gbps(2.5)};
  }
};

/// An ordered multi-tier machine.  Index 0 is the fastest tier (initial
/// placement promotes there); the LAST tier is the unconstrained backstop
/// where every object starts and evictions land — the role NVM plays in the
/// paper's two-tier machine.  `tiers.size() >= 2` always.
struct TopologyConfig {
  std::vector<TierConfig> tiers;

  std::size_t num_tiers() const { return tiers.size(); }

  /// Paper machine as a topology: {DRAM, NVM}.
  static TopologyConfig dram_nvm(TierConfig dram, TierConfig nvm) {
    return TopologyConfig{{std::move(dram), std::move(nvm)}};
  }
};

// ---------------------------------------------------------------------------
// Pluggable tier backends (registration-based, FreeBSD tcp_stacks style).

/// Builds a TierConfig of the backend's kind at the requested capacity.
using TierFactory = std::function<TierConfig(std::size_t capacity_bytes)>;

/// Register a named backend; returns false (and changes nothing) when the
/// name is already taken.  Built-ins ("dram", "hbm", "cxl", "nvm",
/// "remote") are pre-registered.  Thread-safe.
bool register_tier_backend(const std::string& name, TierFactory factory);

/// Look up a backend by name; empty function when unknown.  Thread-safe.
TierFactory find_tier_backend(const std::string& name);

/// Registered backend names, sorted (for --help / error messages).
std::vector<std::string> tier_backend_names();

/// Parse a topology spec "name:capacity,name:capacity,..." — e.g.
/// "hbm:1MiB,dram:4MiB,nvm:512MiB" — into an ordered TopologyConfig via the
/// backend registry.  Capacities accept KiB/MiB/GiB suffixes (or plain
/// bytes).  Order is fastest-first; the last entry is the backstop tier.
/// Throws std::invalid_argument on unknown backends, bad capacities, or
/// fewer than two tiers.
TopologyConfig parse_topology(const std::string& spec);

/// A published NVM technology data point (paper Table 1).  Latencies and
/// bandwidths are ranges for PCRAM/ReRAM; lo == hi for point values.
struct NvmTechnology {
  std::string name;
  double read_ns_lo, read_ns_hi;
  double write_ns_lo, write_ns_hi;
  double rand_read_mbps_lo, rand_read_mbps_hi;
  double rand_write_mbps_lo, rand_write_mbps_hi;

  /// Midpoint tier derived from the published ranges.
  TierConfig midpoint_tier(std::size_t capacity) const {
    auto mid = [](double lo, double hi) { return 0.5 * (lo + hi); };
    return TierConfig{name, capacity,
                      unimem::ns(mid(read_ns_lo, read_ns_hi)),
                      unimem::ns(mid(write_ns_lo, write_ns_hi)),
                      unimem::mbps(mid(rand_read_mbps_lo, rand_read_mbps_hi)),
                      unimem::mbps(mid(rand_write_mbps_lo, rand_write_mbps_hi))};
  }
};

/// The four rows of Table 1.
const NvmTechnology* table1_technologies(std::size_t* count);

}  // namespace unimem::mem
