// Memory-tier performance/capacity descriptions.
//
// The paper (Table 1, from the UCSD NVMDB survey) characterizes candidate
// NVM technologies by read/write latency and random read/write bandwidth.
// Its evaluation then sweeps NVM as *ratios* of DRAM: 1/2..1/8 bandwidth and
// 2x..8x latency (Quartz can emulate one axis at a time), plus a NUMA-based
// emulation with 0.6x bandwidth and 1.89x latency used on Edison.
//
// We model a tier with four numbers (read/write latency, read/write
// bandwidth) and provide both the published Table 1 presets and the
// ratio-derived configurations the evaluation actually uses.
#pragma once

#include <cstddef>
#include <string>

#include "common/units.h"

namespace unimem::mem {

struct TierConfig {
  std::string name;
  std::size_t capacity_bytes = 0;
  double read_latency_s = 0;   ///< per-cacheline load-to-use latency
  double write_latency_s = 0;  ///< per-cacheline write latency
  double read_bw = 0;          ///< sustained read bandwidth (bytes/s)
  double write_bw = 0;         ///< sustained write bandwidth (bytes/s)

  /// DRAM basis used throughout the evaluation.  Absolute values are a
  /// plausible single-socket DDR4 operating point; only the *ratios* of the
  /// NVM configurations below matter for the reproduced results.
  static TierConfig dram_basis(std::size_t capacity) {
    return TierConfig{"DRAM", capacity, unimem::ns(80), unimem::ns(80),
                      unimem::gbps(12.8), unimem::gbps(9.6)};
  }

  /// NVM derived from the DRAM basis by scaling bandwidth down by
  /// `bw_ratio` (e.g. 0.5 = "1/2 DRAM bandwidth") and latency up by
  /// `lat_mult` (e.g. 4.0 = "4x DRAM latency").  The paper's Quartz setup
  /// changes one axis at a time; pass 1.0 for the axis left untouched.
  static TierConfig nvm_scaled(std::size_t capacity, double bw_ratio,
                               double lat_mult) {
    TierConfig d = dram_basis(capacity);
    return TierConfig{"NVM", capacity, d.read_latency_s * lat_mult,
                      d.write_latency_s * lat_mult, d.read_bw * bw_ratio,
                      d.write_bw * bw_ratio};
  }

  /// NUMA-emulated NVM used for the strong-scaling tests on Edison:
  /// "the emulated NVM has 60% of DRAM bandwidth and 1.89x of DRAM latency".
  static TierConfig nvm_numa_emulated(std::size_t capacity) {
    return nvm_scaled(capacity, 0.60, 1.89);
  }
};

/// A published NVM technology data point (paper Table 1).  Latencies and
/// bandwidths are ranges for PCRAM/ReRAM; lo == hi for point values.
struct NvmTechnology {
  std::string name;
  double read_ns_lo, read_ns_hi;
  double write_ns_lo, write_ns_hi;
  double rand_read_mbps_lo, rand_read_mbps_hi;
  double rand_write_mbps_lo, rand_write_mbps_hi;

  /// Midpoint tier derived from the published ranges.
  TierConfig midpoint_tier(std::size_t capacity) const {
    auto mid = [](double lo, double hi) { return 0.5 * (lo + hi); };
    return TierConfig{name, capacity,
                      unimem::ns(mid(read_ns_lo, read_ns_hi)),
                      unimem::ns(mid(write_ns_lo, write_ns_hi)),
                      unimem::mbps(mid(rand_read_mbps_lo, rand_read_mbps_hi)),
                      unimem::mbps(mid(rand_write_mbps_lo, rand_write_mbps_hi))};
  }
};

/// The four rows of Table 1.
const NvmTechnology* table1_technologies(std::size_t* count);

}  // namespace unimem::mem
