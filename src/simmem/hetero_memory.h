// The heterogeneous main-memory system (HMS): one small fast DRAM tier and
// one large slow NVM tier sharing a physical address space (two arenas in
// the host process).  Provides tier-tagged allocation and the inter-tier
// copy-cost model used by the migration engine (paper Eq. 4's
// `data_size / mem_copy_bw` term).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "simmem/arena.h"
#include "simmem/tier_config.h"

namespace unimem::mem {

enum class Tier : int { kDram = 0, kNvm = 1 };

inline const char* tier_name(Tier t) {
  return t == Tier::kDram ? "DRAM" : "NVM";
}

inline Tier other_tier(Tier t) {
  return t == Tier::kDram ? Tier::kNvm : Tier::kDram;
}

struct HmsConfig {
  TierConfig dram;
  TierConfig nvm;

  /// Evaluation default: 8 MiB DRAM + 512 MiB NVM (the paper's 256 MB DRAM /
  /// 16 GB NVM scaled by 32x; see DESIGN.md §5), NVM at `bw_ratio` of DRAM
  /// bandwidth and `lat_mult` of DRAM latency.
  static HmsConfig scaled(double bw_ratio, double lat_mult,
                          std::size_t dram_cap = 8 * kMiB,
                          std::size_t nvm_cap = 512 * kMiB) {
    return HmsConfig{TierConfig::dram_basis(dram_cap),
                     TierConfig::nvm_scaled(nvm_cap, bw_ratio, lat_mult)};
  }

  /// DRAM-only system: both tiers are DRAM-speed (placement irrelevant).
  static HmsConfig dram_only(std::size_t cap = 512 * kMiB) {
    return HmsConfig{TierConfig::dram_basis(cap),
                     TierConfig::nvm_scaled(cap, 1.0, 1.0)};
  }
};

class HeteroMemory {
 public:
  explicit HeteroMemory(HmsConfig cfg);

  const HmsConfig& config() const { return cfg_; }
  const TierConfig& tier_config(Tier t) const {
    return t == Tier::kDram ? cfg_.dram : cfg_.nvm;
  }

  Arena& arena(Tier t) { return t == Tier::kDram ? *dram_ : *nvm_; }
  const Arena& arena(Tier t) const { return t == Tier::kDram ? *dram_ : *nvm_; }

  /// Allocate in the requested tier; nullptr if it does not fit.
  void* allocate(Tier t, std::size_t bytes) { return arena(t).allocate(bytes); }
  void deallocate(Tier t, void* p) { arena(t).deallocate(p); }

  /// Which tier owns pointer `p`?  Aborts if neither does.
  Tier tier_of(const void* p) const;

  /// Modeled seconds to copy `bytes` from `from` to `to`: limited by the
  /// source read bandwidth and destination write bandwidth.
  double copy_seconds(std::size_t bytes, Tier from, Tier to) const;

  /// Memory-copy bandwidth between the tiers (bytes/s), direction-aware.
  double copy_bandwidth(Tier from, Tier to) const;

 private:
  HmsConfig cfg_;
  std::unique_ptr<Arena> dram_;
  std::unique_ptr<Arena> nvm_;
};

}  // namespace unimem::mem
