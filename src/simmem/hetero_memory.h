// The heterogeneous main-memory system (HMS): an ordered set of memory
// tiers sharing a physical address space (one arena per tier in the host
// process).  The paper's machine is the 2-tier special case — one small
// fast DRAM tier and one large slow NVM tier; a TopologyConfig generalizes
// to N tiers (HBM above DRAM, CXL far memory, remote pools).  Provides
// tier-tagged allocation and the inter-tier copy-cost model used by the
// migration engine (paper Eq. 4's `data_size / mem_copy_bw` term).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "simmem/arena.h"
#include "simmem/tier_config.h"

namespace unimem::mem {

/// A tier is an *index* into the HMS's ordered tier list: 0 is the fastest
/// tier, the last is the unconstrained backstop where objects start.  The
/// two named values are the paper's 2-tier machine; N-tier code addresses
/// intermediate tiers with tier(i).
enum class Tier : int { kDram = 0, kNvm = 1 };

inline Tier tier(int index) { return static_cast<Tier>(index); }
inline int tier_index(Tier t) { return static_cast<int>(t); }

inline const char* tier_name(Tier t) {
  return t == Tier::kDram ? "DRAM" : "NVM";
}

inline Tier other_tier(Tier t) {
  return t == Tier::kDram ? Tier::kNvm : Tier::kDram;
}

struct HmsConfig {
  TierConfig dram;
  TierConfig nvm;

  /// Evaluation default: 8 MiB DRAM + 512 MiB NVM (the paper's 256 MB DRAM /
  /// 16 GB NVM scaled by 32x; see DESIGN.md §5), NVM at `bw_ratio` of DRAM
  /// bandwidth and `lat_mult` of DRAM latency.
  static HmsConfig scaled(double bw_ratio, double lat_mult,
                          std::size_t dram_cap = 8 * kMiB,
                          std::size_t nvm_cap = 512 * kMiB) {
    return HmsConfig{TierConfig::dram_basis(dram_cap),
                     TierConfig::nvm_scaled(nvm_cap, bw_ratio, lat_mult)};
  }

  /// DRAM-only system: both tiers are DRAM-speed (placement irrelevant).
  static HmsConfig dram_only(std::size_t cap = 512 * kMiB) {
    return HmsConfig{TierConfig::dram_basis(cap),
                     TierConfig::nvm_scaled(cap, 1.0, 1.0)};
  }
};

class HeteroMemory {
 public:
  /// The paper's 2-tier machine.
  explicit HeteroMemory(HmsConfig cfg);
  /// An N-tier machine (cfg.tiers.size() >= 2, fastest first, backstop
  /// last).  config() then reports the synthesized {fastest, backstop}
  /// pair, which is what the calibration/model layer keys on.
  explicit HeteroMemory(TopologyConfig cfg);

  const HmsConfig& config() const { return cfg_; }

  std::size_t num_tiers() const { return tiers_.size(); }
  /// The unconstrained last tier where every object starts (== kNvm on the
  /// 2-tier machine).
  Tier backstop_tier() const {
    return tier(static_cast<int>(tiers_.size()) - 1);
  }

  const TierConfig& tier_config(Tier t) const {
    return tiers_[static_cast<std::size_t>(tier_index(t))];
  }

  Arena& arena(Tier t) {
    return *arenas_[static_cast<std::size_t>(tier_index(t))];
  }
  const Arena& arena(Tier t) const {
    return *arenas_[static_cast<std::size_t>(tier_index(t))];
  }

  /// Allocate in the requested tier; nullptr if it does not fit.
  void* allocate(Tier t, std::size_t bytes) { return arena(t).allocate(bytes); }
  void deallocate(Tier t, void* p) { arena(t).deallocate(p); }

  /// Which tier owns pointer `p`?  Aborts if none does.
  Tier tier_of(const void* p) const;

  /// Modeled seconds to copy `bytes` from `from` to `to`: limited by the
  /// source read bandwidth and destination write bandwidth.
  double copy_seconds(std::size_t bytes, Tier from, Tier to) const;

  /// Memory-copy bandwidth between the tiers (bytes/s), direction-aware.
  double copy_bandwidth(Tier from, Tier to) const;

 private:
  HmsConfig cfg_;  ///< synthesized {tiers_.front(), tiers_.back()} view
  std::vector<TierConfig> tiers_;
  std::vector<std::unique_ptr<Arena>> arenas_;
};

}  // namespace unimem::mem
