// User-level fast-memory space service.
//
// Paper §3.3: "To manage the DRAM space, we avoid making any change to the
// OS, and introduce a user-level service.  Each node runs an instance of
// such service.  The service coordinates the DRAM allocation from multiple
// MPI processes on the same node ... and bounds the memory allocation
// within the DRAM space allowance."
//
// One DramArbiter instance is shared by all ranks mapped to the same
// simulated node; every allocation a rank's runtime makes in a
// *constrained* tier must first be granted here.  On the paper's 2-tier
// machine only tier 0 (DRAM) is constrained — the single-allowance
// constructor and the unsuffixed accessors keep that reading.  On an N-tier
// machine every tier except the backstop typically carries its own
// allowance (kUnbounded marks a tier the arbiter does not meter).
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace unimem::mem {

class DramArbiter {
 public:
  /// Allowance sentinel: the arbiter does not meter this tier.
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  /// 2-tier form: tier 0 (DRAM) gets `node_allowance`, every other tier is
  /// unbounded.
  explicit DramArbiter(std::size_t node_allowance)
      : DramArbiter(std::vector<std::size_t>{node_allowance}) {}

  /// Per-tier allowances, indexed by tier; kUnbounded entries (and tiers
  /// past the vector's end) are not metered.
  explicit DramArbiter(std::vector<std::size_t> allowances)
      : allowances_(std::move(allowances)),
        granted_tiers_(allowances_.size(), 0) {}

  /// Does the arbiter meter allocations in tier `t`?
  bool constrains(int t) const {
    return t >= 0 && static_cast<std::size_t>(t) < allowances_.size() &&
           allowances_[static_cast<std::size_t>(t)] != kUnbounded;
  }

  /// Try to reserve `bytes` in tier `t`; false if over allowance.  Always
  /// succeeds for unmetered tiers.
  bool request_tier(int t, std::size_t bytes) {
    if (!constrains(t)) return true;
    std::lock_guard<std::mutex> lk(mu_);
    auto& granted = granted_tiers_[static_cast<std::size_t>(t)];
    if (granted + bytes > allowances_[static_cast<std::size_t>(t)])
      return false;
    granted += bytes;
    return true;
  }

  /// Return previously granted bytes in tier `t` (no-op for unmetered).
  void release_tier(int t, std::size_t bytes) {
    if (!constrains(t)) return;
    std::lock_guard<std::mutex> lk(mu_);
    auto& granted = granted_tiers_[static_cast<std::size_t>(t)];
    granted = bytes > granted ? 0 : granted - bytes;
  }

  /// Allowance of tier `t`; kUnbounded for unmetered tiers.
  std::size_t allowance_tier(int t) const {
    return constrains(t) ? allowances_[static_cast<std::size_t>(t)]
                         : kUnbounded;
  }

  std::size_t granted_tier(int t) const {
    if (!constrains(t)) return 0;
    std::lock_guard<std::mutex> lk(mu_);
    return granted_tiers_[static_cast<std::size_t>(t)];
  }

  // ---- tier-0 (DRAM) shorthands, the paper's reading -------------------

  bool request(std::size_t bytes) { return request_tier(0, bytes); }
  void release(std::size_t bytes) { release_tier(0, bytes); }

  std::size_t allowance() const { return allowances_.empty() ? 0 : allowances_[0]; }

  std::size_t granted() const { return granted_tier(0); }

  std::size_t available() const {
    std::lock_guard<std::mutex> lk(mu_);
    return allowances_.empty() ? 0 : allowances_[0] - granted_tiers_[0];
  }

 private:
  std::vector<std::size_t> allowances_;
  mutable std::mutex mu_;
  std::vector<std::size_t> granted_tiers_;  ///< guarded by mu_
};

}  // namespace unimem::mem
