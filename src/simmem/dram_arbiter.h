// User-level DRAM space service.
//
// Paper §3.3: "To manage the DRAM space, we avoid making any change to the
// OS, and introduce a user-level service.  Each node runs an instance of
// such service.  The service coordinates the DRAM allocation from multiple
// MPI processes on the same node ... and bounds the memory allocation
// within the DRAM space allowance."
//
// One DramArbiter instance is shared by all ranks mapped to the same
// simulated node; every DRAM allocation a rank's runtime makes must first be
// granted here.
#pragma once

#include <cstddef>
#include <mutex>

namespace unimem::mem {

class DramArbiter {
 public:
  explicit DramArbiter(std::size_t node_allowance)
      : allowance_(node_allowance) {}

  /// Try to reserve `bytes` of node DRAM; false if over allowance.
  bool request(std::size_t bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    if (granted_ + bytes > allowance_) return false;
    granted_ += bytes;
    return true;
  }

  /// Return previously granted bytes.
  void release(std::size_t bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    granted_ = bytes > granted_ ? 0 : granted_ - bytes;
  }

  std::size_t allowance() const { return allowance_; }

  std::size_t granted() const {
    std::lock_guard<std::mutex> lk(mu_);
    return granted_;
  }

  std::size_t available() const {
    std::lock_guard<std::mutex> lk(mu_);
    return allowance_ - granted_;
  }

 private:
  std::size_t allowance_;
  mutable std::mutex mu_;
  std::size_t granted_ = 0;
};

}  // namespace unimem::mem
