// 0-1 knapsack solver for placement decisions.
//
// Paper §3.1.3: "Given the DRAM size limitation, our data placement problem
// is to maximize total weights of data objects in DRAM while satisfying the
// DRAM size constraint.  This is a 0-1 knapsack problem", solved by dynamic
// programming.  Sizes are quantized to a granule so the DP table stays
// small; a greedy-by-density fallback handles degenerate capacities and
// serves as the ablation baseline (DESIGN.md §6.4).
//
// On an N-tier machine the placement problem generalizes to a
// multiple-choice knapsack (MCKP): each unit picks *a* tier — not in/out of
// DRAM — under per-tier capacities.  solve_mckp() is exact (multi-dim DP)
// up to the same cell budget the 0-1 path uses, then degrades to a
// waterfall of per-tier solve_bounded() passes, so both entry points share
// one bounded-approximation story.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace unimem::rt {

struct KnapsackItem {
  double weight = 0;       ///< value of keeping this item in DRAM (seconds)
  std::size_t bytes = 0;   ///< item size
};

struct KnapsackResult {
  std::vector<std::size_t> selected;  ///< indices into the item array
  double total_weight = 0;
  std::size_t total_bytes = 0;
};

/// One unit in the multiple-choice (N-tier) placement problem.  weights[k]
/// is the value of placing the unit in tier k, in the same seconds currency
/// as KnapsackItem::weight; the arity must equal the capacity vector's.
struct MckpItem {
  std::vector<double> weights;
  std::size_t bytes = 0;
};

struct MckpResult {
  std::vector<int> choice;  ///< choice[i] = tier index picked for item i
  double total_weight = 0;  ///< sum of weights[i][choice[i]]
};

class KnapsackSolver {
 public:
  /// `granule` quantizes sizes for the DP (default 64 KiB).  Items with
  /// non-positive weight are never selected (placing them in DRAM cannot
  /// help); items larger than the capacity are skipped.
  explicit KnapsackSolver(std::size_t granule = 64 * 1024)
      : granule_(granule) {}

  /// Exact DP solution (rolling 1-D array, pseudo-polynomial in
  /// capacity/granule).  The capacity is pre-clamped to the candidates'
  /// total quantized size, and when everything fits no DP runs at all.
  /// Instances whose item-count x capacity product would make the dense
  /// DP table unreasonable fall back to a 1/2-approximation (quantized
  /// density greedy refined with the best single item) so planning stays
  /// online at any scale.
  KnapsackResult solve(const std::vector<KnapsackItem>& items,
                       std::size_t capacity_bytes) const;

  /// Greedy by weight density (weight/bytes); not optimal, used for
  /// comparison and as the ablation baseline (DESIGN.md §6.4).
  KnapsackResult solve_greedy(const std::vector<KnapsackItem>& items,
                              std::size_t capacity_bytes) const;

  /// Bounded 1/2-approximation without the dense DP, at any instance
  /// size: quantized density greedy refined with the best single item
  /// (the same path solve() falls back to past its cell budget).  Used by
  /// the incremental re-planner to re-score only the drifted/displaced
  /// items over the freed capacity slice — O(n log n) in the candidate
  /// count, independent of the capacity.
  KnapsackResult solve_bounded(const std::vector<KnapsackItem>& items,
                               std::size_t capacity_bytes) const;

  /// Capacity sentinel for solve_mckp: the tier is unmetered.  At least one
  /// entry of the capacity vector must be kUnbounded (the backstop tier that
  /// can absorb everything) or the instance has no guaranteed-feasible
  /// choice and solve_mckp throws std::invalid_argument.
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  /// Multiple-choice knapsack: every item picks exactly one tier,
  /// maximizing total weight subject to per-tier byte capacities
  /// (kUnbounded entries are unmetered).  Contract:
  ///   - every item's weights arity must equal capacities.size(), and at
  ///     least one capacity must be kUnbounded, else std::invalid_argument;
  ///   - sizes are quantized to the same granule as solve(), rounded up;
  ///   - the solution is exact (multi-dimensional rolling DP over the
  ///     product of constrained-tier granule capacities) while
  ///     n x prod(cap_j + 1) fits the same cell budget solve() uses;
  ///   - past the budget it degrades to a waterfall of per-tier
  ///     solve_bounded() passes in tier-index order, scoring each item by
  ///     its marginal weight over its best unbounded choice — so the
  ///     bounded-approximation story is shared with the 0-1 path;
  ///   - ties prefer the unbounded choice, then the lower constrained tier
  ///     index, so results are deterministic.
  MckpResult solve_mckp(const std::vector<MckpItem>& items,
                        const std::vector<std::size_t>& capacities) const;

 private:
  /// Shared candidate filter + degenerate-instance shortcut for both
  /// public entry points: fills `cand`/`gsz` with the positive-weight
  /// items that fit `cap` granules (and their quantized sizes), and
  /// returns true when `out` is already the final answer — no candidates,
  /// or everything fits (take all).  Keeping this in one place is what
  /// guarantees solve() and solve_bounded() agree on degenerate
  /// instances.
  bool prefilter(const std::vector<KnapsackItem>& items, std::size_t cap,
                 std::vector<std::size_t>* cand,
                 std::vector<std::size_t>* gsz, KnapsackResult* out) const;

  /// Bounded-approximation path for instances past the dense-DP budget.
  /// `cand`/`gsz` are the candidate indices and their quantized sizes;
  /// `cap` is the pre-clamped capacity in granules.
  KnapsackResult solve_bounded(const std::vector<KnapsackItem>& items,
                               const std::vector<std::size_t>& cand,
                               const std::vector<std::size_t>& gsz,
                               std::size_t cap) const;

  std::size_t granule_;
};

}  // namespace unimem::rt
