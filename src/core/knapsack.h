// 0-1 knapsack solver for placement decisions.
//
// Paper §3.1.3: "Given the DRAM size limitation, our data placement problem
// is to maximize total weights of data objects in DRAM while satisfying the
// DRAM size constraint.  This is a 0-1 knapsack problem", solved by dynamic
// programming.  Sizes are quantized to a granule so the DP table stays
// small; a greedy-by-density fallback handles degenerate capacities and
// serves as the ablation baseline (DESIGN.md §6.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace unimem::rt {

struct KnapsackItem {
  double weight = 0;       ///< value of keeping this item in DRAM (seconds)
  std::size_t bytes = 0;   ///< item size
};

struct KnapsackResult {
  std::vector<std::size_t> selected;  ///< indices into the item array
  double total_weight = 0;
  std::size_t total_bytes = 0;
};

class KnapsackSolver {
 public:
  /// `granule` quantizes sizes for the DP (default 64 KiB).  Items with
  /// non-positive weight are never selected (placing them in DRAM cannot
  /// help); items larger than the capacity are skipped.
  explicit KnapsackSolver(std::size_t granule = 64 * 1024)
      : granule_(granule) {}

  /// Exact DP solution (rolling 1-D array, pseudo-polynomial in
  /// capacity/granule).  The capacity is pre-clamped to the candidates'
  /// total quantized size, and when everything fits no DP runs at all.
  /// Instances whose item-count x capacity product would make the dense
  /// DP table unreasonable fall back to a 1/2-approximation (quantized
  /// density greedy refined with the best single item) so planning stays
  /// online at any scale.
  KnapsackResult solve(const std::vector<KnapsackItem>& items,
                       std::size_t capacity_bytes) const;

  /// Greedy by weight density (weight/bytes); not optimal, used for
  /// comparison and as the ablation baseline (DESIGN.md §6.4).
  KnapsackResult solve_greedy(const std::vector<KnapsackItem>& items,
                              std::size_t capacity_bytes) const;

  /// Bounded 1/2-approximation without the dense DP, at any instance
  /// size: quantized density greedy refined with the best single item
  /// (the same path solve() falls back to past its cell budget).  Used by
  /// the incremental re-planner to re-score only the drifted/displaced
  /// items over the freed capacity slice — O(n log n) in the candidate
  /// count, independent of the capacity.
  KnapsackResult solve_bounded(const std::vector<KnapsackItem>& items,
                               std::size_t capacity_bytes) const;

 private:
  /// Shared candidate filter + degenerate-instance shortcut for both
  /// public entry points: fills `cand`/`gsz` with the positive-weight
  /// items that fit `cap` granules (and their quantized sizes), and
  /// returns true when `out` is already the final answer — no candidates,
  /// or everything fits (take all).  Keeping this in one place is what
  /// guarantees solve() and solve_bounded() agree on degenerate
  /// instances.
  bool prefilter(const std::vector<KnapsackItem>& items, std::size_t cap,
                 std::vector<std::size_t>* cand,
                 std::vector<std::size_t>* gsz, KnapsackResult* out) const;

  /// Bounded-approximation path for instances past the dense-DP budget.
  /// `cand`/`gsz` are the candidate indices and their quantized sizes;
  /// `cap` is the pre-clamped capacity in granules.
  KnapsackResult solve_bounded(const std::vector<KnapsackItem>& items,
                               const std::vector<std::size_t>& cand,
                               const std::vector<std::size_t>& gsz,
                               std::size_t cap) const;

  std::size_t granule_;
};

}  // namespace unimem::rt
