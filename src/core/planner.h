// Data-placement decision (paper §3.1.3, "Step 3").
//
// For every phase, each referenced unit gets a weight
//     w = BFT - COST - extra_COST            (Eq. 5)
// where BFT is the Eq. 2/3 benefit, COST the Eq. 4 migration cost net of
// the overlap window (time between the unit's previous reference and the
// phase), and extra_COST the eviction traffic needed to make room.  A 0-1
// knapsack over the DRAM capacity picks the resident set.
//
// Two searches are run and the predicted-faster plan is used:
//   * phase-local search  — one knapsack per phase, migrations between
//     phases, triggers placed right after the unit's previous reference so
//     the helper thread can overlap the copy;
//   * cross-phase global search — one knapsack over aggregated benefits,
//     a single placement for the whole iteration, no intra-iteration moves.
//
// On an N-tier machine (PlannerOptions::tier_budgets non-empty) the search
// becomes multiple-choice: every group picks *a* tier, scored against the
// backstop through the pairwise Eq. 2/3 forms, and the MCKP solver packs
// the constrained tiers jointly (knapsack.h).  The 2-tier path never sets
// tier_budgets, keeping the classic searches byte-identical.
#pragma once

#include <set>
#include <vector>

#include "core/knapsack.h"
#include "core/models.h"
#include "core/profiler.h"
#include "core/registry.h"

namespace unimem::rt {

class PhaseDag;

struct PlannedMigration {
  UnitRef unit;
  mem::Tier to = mem::Tier::kDram;
  /// Phase at whose start the request is enqueued (proactive trigger).
  std::size_t trigger_phase = 0;
  /// Phase that needs the unit resident (for stats/debug).
  std::size_t needed_phase = 0;
};

struct Plan {
  /// kIncremental: a warm-start repair of the previous plan produced by
  /// the ReplanController (replan.h), not a fresh search.
  /// kTiered: the N-tier multiple-choice placement (tier_budgets set).
  enum class Kind {
    kNone,
    kLocal,
    kGlobal,
    kIncremental,
    kTiered
  } kind = Kind::kNone;
  /// Migrations to enqueue at the start of each phase, every iteration.
  /// Index: phase; empty vector = nothing to do.
  std::vector<std::vector<PlannedMigration>> at_phase;
  /// Predicted iteration time under this plan (seconds).
  double predicted_iteration_s = 0;
  /// Predicted resident set per phase (diagnostics / tests).
  std::vector<std::set<UnitRef>> dram_sets;

  std::size_t migration_count() const {
    std::size_t n = 0;
    for (const auto& v : at_phase) n += v.size();
    return n;
  }

  /// Slack-scheduling tallies (PlannerOptions::dag != nullptr; else zero):
  /// triggers parked in an off-critical-path phase whose slack covered the
  /// copy vs. fills that fell back to the earliest legal trigger.
  std::size_t slack_scheduled = 0;
  std::size_t fallback_triggers = 0;
};

struct PlannerOptions {
  bool local_search = true;
  bool global_search = true;
  /// May chunks of one object be placed independently?  When false (the
  /// Fig. 11 "partitioning large data objects" ablation), an object's
  /// chunks form one all-or-nothing placement group, so an object larger
  /// than the budget can never migrate — the paper's motivating problem.
  bool chunking = true;
  /// DRAM bytes this rank may plan with (its share of the node allowance).
  std::size_t dram_budget = 0;
  /// Computed phase DAG for slack-scheduled triggers (dag_schedule=slack);
  /// nullptr keeps the classic JIT trigger walk byte-identical.
  const PhaseDag* dag = nullptr;
  /// This rank's id in the DAG (slack/critical lookups).
  int rank = 0;
  /// Per-tier byte budgets for the N-tier multiple-choice search, indexed
  /// by tier; KnapsackSolver::kUnbounded entries are unmetered (the last
  /// tier — the backstop — always is).  Empty (the default, and always on
  /// a 2-tier machine) routes planning through the classic searches.
  std::vector<std::size_t> tier_budgets;
};

class Planner {
 public:
  Planner(const Registry* registry, const PerformanceModel* model,
          PlannerOptions opts)
      : registry_(registry), model_(model), opts_(opts) {}

  /// Build the best plan from one profiled iteration.  `initial_tiers`
  /// describes where each unit lives when the plan starts executing.
  Plan plan(const Profiler& prof) const;

  /// Predicted iteration time if nothing moves (everything stays where the
  /// profiler saw it) — the baseline both searches must beat.
  double no_move_time(const Profiler& prof) const;

 private:
  /// A placement group: one chunk (chunking on) or one whole object
  /// (chunking off).  Units move together.
  struct Group {
    std::vector<UnitRef> units;
    std::size_t bytes = 0;
  };
  /// Aggregated (group, phase) profiles, indexed [phase][group].
  using GroupProfiles = std::vector<std::map<std::size_t, UnitPhaseProfile>>;

  std::vector<Group> build_groups() const;
  GroupProfiles aggregate(const Profiler& prof,
                          const std::vector<Group>& groups) const;

  Plan plan_local(const Profiler& prof, const std::vector<Group>& groups,
                  const GroupProfiles& gp) const;
  Plan plan_global(const Profiler& prof, const std::vector<Group>& groups,
                   const GroupProfiles& gp) const;
  /// N-tier placement (tier_budgets set): one MCKP over the aggregated
  /// per-(group, tier) benefits, every referenced group choosing a tier;
  /// demotions enqueue before promotions in the phase-0 FIFO batch.
  Plan plan_tiered(const Profiler& prof, const std::vector<Group>& groups,
                   const GroupProfiles& gp) const;

  /// Overlap window before `phase` available for moving group `g`: the
  /// summed duration of phases since its previous reference.
  double overlap_window(const GroupProfiles& gp,
                        const std::vector<double>& phase_times,
                        std::size_t phase, std::size_t g,
                        std::size_t* trigger) const;

  /// Slack-mode trigger chooser (opts_.dag set): walk candidates from the
  /// latest phase before `needed` back to `earliest` and pick the first
  /// (= latest) off-critical-path phase whose accumulated window and DAG
  /// slack both cover `copy_s`.  Falls back to `earliest` with the full
  /// window — maximal overlap — when no phase qualifies.  Returns the
  /// trigger, stores the trigger->needed window in *window, and reports
  /// whether slack (vs fallback) won in *scheduled.
  std::size_t slack_trigger(const std::vector<double>& phase_times,
                            std::size_t needed, std::size_t earliest,
                            double copy_s, double* window,
                            bool* scheduled) const;

  /// Slack-mode trigger chooser for a global plan's one-time fill.  Unlike
  /// the per-iteration rotation case, a one-time NVM->DRAM fill is legal in
  /// ANY phase that does not reference the group: phases before the copy
  /// lands simply keep reading NVM, and a referencing phase blocks on
  /// in-flight copies before touching the data.  So the whole cycle is
  /// searchable — enumerate the maximal cyclic runs of non-referencing
  /// phases and ride the one that hides the most copy time, preferring a
  /// DAG-endorsed (off-critical, slack-covered) run.  Returns the trigger;
  /// stores the phase the fill must beat in *needed, the overlap window in
  /// *window, and whether DAG slack endorsed the spot in *scheduled.
  std::size_t global_slack_trigger(const GroupProfiles& gp,
                                   const std::vector<double>& phase_times,
                                   std::size_t g, std::size_t first_ref,
                                   double copy_s, std::size_t* needed,
                                   double* window, bool* scheduled) const;

  bool group_in_dram(const Group& g) const;

  const Registry* registry_;
  const PerformanceModel* model_;
  PlannerOptions opts_;
};

}  // namespace unimem::rt
