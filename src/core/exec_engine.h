// Execution engine: the shared substrate that turns a phase's access
// descriptors into modeled time, LLC misses and PMU windows.  Used by the
// Unimem runtime and by the static-placement baselines so that all policies
// are timed by the *same* model.
//
// The memory time of one region on one tier is
//     max(miss_bytes / BW_eff,  serialized_misses * LAT_eff)
// — the bandwidth term dominates for massive independent accesses, the
// latency term for dependent chains, reproducing Observation 3 of the
// paper.  BW/LAT are read/write mixes of the tier's parameters.
#pragma once

#include <memory>
#include <vector>

#include "core/object.h"
#include "perfmon/sampler.h"
#include "simcache/cache_model.h"
#include "simclock/timing_params.h"
#include "simmem/hetero_memory.h"

namespace unimem::rt {

/// One object access inside a phase, as declared by the workload.  The
/// region defaults to the whole object; offset/length select a sub-range
/// (used by workloads to express per-chunk traversals).
struct ObjectAccess {
  DataObject* object = nullptr;
  cache::Pattern pattern = cache::Pattern::kSequential;
  std::uint64_t accesses = 0;
  std::uint32_t access_bytes = 8;
  std::size_t stride_bytes = 64;
  double write_fraction = 0;
  int mlp = 0;       ///< 0 = pattern default
  std::size_t offset = 0;
  std::size_t length = 0;  ///< 0 = to end of object
};

/// Compute work submitted for the current phase.
struct PhaseWork {
  double flops = 0;
  std::vector<ObjectAccess> accesses;
};

/// Result of executing one phase's work through the model.
struct PhaseExec {
  double compute_s = 0;
  double mem_s = 0;
  std::vector<perf::MemWindow> windows;               ///< for the sampler
  std::vector<std::pair<UnitRef, cache::AccessResult>> unit_results;

  double total_s() const { return compute_s + mem_s; }
};

class ExecEngine {
 public:
  ExecEngine(mem::HeteroMemory* hms, cache::CacheModel* cache,
             clk::TimingParams timing)
      : hms_(hms), cache_(cache), timing_(timing) {}

  /// Model the given work against the objects' *current* placements.
  PhaseExec run(const PhaseWork& work) const;

  /// Memory time of one access result on one tier (exposed for tests and
  /// for the planner's ground-truth-free sanity checks).
  double mem_time(const cache::AccessResult& r, const mem::TierConfig& tier,
                  double write_fraction) const;

  const clk::TimingParams& timing() const { return timing_; }
  cache::CacheModel& cache() { return *cache_; }

 private:
  mem::HeteroMemory* hms_;
  cache::CacheModel* cache_;
  clk::TimingParams timing_;
};

}  // namespace unimem::rt
