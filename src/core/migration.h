// Proactive data-movement engine (paper §3.1.3 / §3.3 and Fig. 6).
//
// "The helper thread is invoked in unimem_init.  In the main computation
// loop, the helper thread and the main thread interact through a shared
// FIFO queue.  The main thread puts data movement requests into the queue;
// the helper thread checks the queue, performs data movement, and removes
// the data movement request off the queue once the data movement is done.
// At the beginning of each phase, the runtime of the main thread will check
// the queue status to determine if all proactive data movement for the
// current phase is done."
//
// Determinism contract: every *decision* — does the move succeed, which
// tier a unit is in, the virtual completion time, the stats — is made
// synchronously on the enqueuing (rank) thread, in enqueue order, so the
// modeled outcome is a pure function of virtual-time events and never of
// host scheduling.  The helper std::thread performs only the physical
// memcpy between tier arenas and the source-block release; anything that
// touches payload bytes first fences on wait_for() (compute(), the PMPI
// pre-op hook, DataObject::chunk_span), which blocks until the copy is
// done.  Virtual timing: a request enqueued at virtual time t completes at
//     max(t, previous request completion) + size / copy_bw,
// and a phase that needs the unit earlier than that waits for the
// remainder — the exposed (non-overlapped) migration cost.
//
// A fill can be submitted before the eviction that frees its space (plan
// wrap across the iteration boundary); a failed move is retried — a
// bounded number of times — after any later request in the same or a
// subsequent batch makes progress, so the FIFO self-corrects without
// consulting wall-clock queue state.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/object.h"
#include "core/registry.h"

namespace unimem::rt {

struct MigrationStats {
  std::uint64_t migrations = 0;       ///< completed unit moves
  std::uint64_t failed = 0;           ///< destination full, move skipped
  std::uint64_t bytes_moved = 0;
  double copy_time_s = 0;             ///< total modeled copy time
  double exposed_wait_s = 0;          ///< part not overlapped with app
  double overlap_percent() const {
    if (copy_time_s <= 0) return 100.0;
    return 100.0 * (1.0 - std::min(1.0, exposed_wait_s / copy_time_s));
  }
  /// Copy time on the critical path (waits can stack past the raw copy
  /// time when one stall covers several queued units, hence the clamp) —
  /// and its complement, the part hidden behind computation.  By
  /// construction exposed + hidden == copy_time_s.
  double exposed_migration_s() const {
    return std::min(exposed_wait_s, copy_time_s);
  }
  double hidden_migration_s() const {
    return copy_time_s - exposed_migration_s();
  }
};

class MigrationEngine {
 public:
  explicit MigrationEngine(Registry* registry);
  ~MigrationEngine();

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  struct Item {
    UnitRef unit;
    mem::Tier to;
    double enqueue_vt;
  };

  /// Submit one movement request at virtual time `enqueue_vt`.  The
  /// decision (and the completion-time math) happens before this returns;
  /// only the payload copy is left to the helper thread.
  void enqueue(UnitRef unit, mem::Tier to, double enqueue_vt);

  /// Submit a phase's requests as one FIFO batch: a move that fails
  /// because its space is freed by a *later* entry of the batch is
  /// retried within the batch (and once more in later batches).
  void enqueue_batch(const std::vector<Item>& items);

  /// Block the calling thread until every physical copy for `unit` is
  /// done; returns the virtual completion time of the last decided
  /// request for it (0.0 when none was decided).  The caller charges
  /// max(0, result - now) to its clock — the exposed cost.
  double wait_for(UnitRef unit);

  /// Resolve any still-deferred requests (terminally, as failed), block
  /// until the copy queue is fully drained, and return the virtual
  /// completion time of the last processed request.
  double drain();

  /// Block until no pending physical copy has its SOURCE in `tier`.
  /// Arena free-lists are first-fit: a zombie source block landing at a
  /// host-scheduling-dependent point between two allocations in the same
  /// tier would make the chosen offsets (and therefore the addresses an
  /// address-sensitive cache model sees) nondeterministic.  Every
  /// decision path that allocates in a tier quiesces it first, so all
  /// arena mutations happen in decision order.
  void quiesce(mem::Tier tier);

  /// Block until every pending physical copy is done (both tiers).
  void quiesce_all();

  /// Record exposed waiting time (kept here so Table 4's %overlap is
  /// computed in one place).
  void add_exposed_wait(double seconds);

  MigrationStats stats() const;

 private:
  struct Request {
    UnitRef unit;
    mem::Tier to;
    double enqueue_vt;
    int retries_left = 2;
  };

  /// Decide a batch (plus any earlier deferred requests) in FIFO order on
  /// the calling thread.  Runs retry waves until no wave makes progress.
  void process(std::deque<Request> ready);
  void submit_copy(const Registry::PendingCopy& copy);
  /// Block until the helper has no outstanding physical copies (used to
  /// reclaim source blocks when a destination arena looks full).
  void wait_copies_drained();
  void copy_worker();

  Registry* registry_;

  // Decision state: owned by the enqueuing (rank) thread; never touched
  // by the helper.
  std::deque<Request> deferred_;
  std::map<UnitRef, double> completion_vt_;
  double last_completion_vt_ = 0;
  MigrationStats stats_;

  // Copy state: shared with the helper thread, guarded by copy_mu_.
  mutable std::mutex copy_mu_;
  std::condition_variable copy_cv_;
  std::deque<Registry::PendingCopy> copies_;
  std::map<UnitRef, int> copy_pending_;  ///< outstanding copies per unit
  /// Outstanding zombie frees per tier, sized to the HMS's tier count.
  std::vector<int> pending_src_in_tier_;
  bool stop_ = false;
  std::thread helper_;
};

}  // namespace unimem::rt
