// Proactive data-movement engine (paper §3.1.3 / §3.3 and Fig. 6).
//
// "The helper thread is invoked in unimem_init.  In the main computation
// loop, the helper thread and the main thread interact through a shared
// FIFO queue.  The main thread puts data movement requests into the queue;
// the helper thread checks the queue, performs data movement, and removes
// the data movement request off the queue once the data movement is done.
// At the beginning of each phase, the runtime of the main thread will check
// the queue status to determine if all proactive data movement for the
// current phase is done."
//
// The engine runs a real helper std::thread that performs the real memcpy
// between tier arenas (the registry repoints the handle).  Virtual timing:
// a request enqueued at virtual time t completes at
//     max(t, previous request completion) + size / copy_bw,
// and a phase that needs the unit earlier than that waits for the
// remainder — the exposed (non-overlapped) migration cost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "core/object.h"
#include "core/registry.h"

namespace unimem::rt {

struct MigrationStats {
  std::uint64_t migrations = 0;       ///< completed unit moves
  std::uint64_t failed = 0;           ///< destination full, move skipped
  std::uint64_t bytes_moved = 0;
  double copy_time_s = 0;             ///< total modeled copy time
  double exposed_wait_s = 0;          ///< part not overlapped with app
  double overlap_percent() const {
    if (copy_time_s <= 0) return 100.0;
    return 100.0 * (1.0 - std::min(1.0, exposed_wait_s / copy_time_s));
  }
};

class MigrationEngine {
 public:
  explicit MigrationEngine(Registry* registry);
  ~MigrationEngine();

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  /// Put a movement request on the FIFO queue at virtual time `enqueue_vt`.
  void enqueue(UnitRef unit, mem::Tier to, double enqueue_vt);

  /// Block the calling thread until every queued request for `unit` has
  /// been processed; returns the virtual completion time of the last one
  /// (0.0 when none was pending).  The caller charges
  /// max(0, result - now) to its clock — the exposed cost.
  double wait_for(UnitRef unit);

  /// Block until the queue is fully drained; returns the virtual
  /// completion time of the last processed request.
  double drain();

  /// Record exposed waiting time (kept here so Table 4's %overlap is
  /// computed in one place).
  void add_exposed_wait(double seconds);

  MigrationStats stats() const;

 private:
  struct Request {
    UnitRef unit;
    mem::Tier to;
    double enqueue_vt;
    /// A fill can reach the queue head before the eviction that frees its
    /// space (triggers wrap across the iteration boundary); re-queue it a
    /// bounded number of times so the FIFO self-corrects.
    int retries_left = 2;
  };

  void worker();

  Registry* registry_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  std::map<UnitRef, int> pending_;          ///< outstanding requests per unit
  std::map<UnitRef, double> completion_vt_; ///< last completion per unit
  double last_completion_vt_ = 0;
  MigrationStats stats_;
  bool stop_ = false;
  std::thread helper_;
};

}  // namespace unimem::rt
