#include "core/replan.h"

#include <algorithm>
#include <cmath>

#include "trace/trace.h"

namespace unimem::rt {

std::map<UnitRef, double> ReplanController::unit_weights(
    const Profiler& prof) const {
  std::map<UnitRef, double> w;
  for (const PhaseObservation& ph : prof.phases())
    for (const auto& [u, uprof] : ph.units) w[u] += model_->benefit(uprof);
  return w;
}

void ReplanController::observe(const Profiler& prof) {
  baseline_w_ = unit_weights(prof);
  has_baseline_ = true;
}

std::set<UnitRef> ReplanController::drifted_units(
    const std::map<UnitRef, double>& w_new, DriftReport* report) const {
  std::set<UnitRef> drifted;
  auto consider = [&](UnitRef u, double w_old, double w_cur) {
    const double hi = std::max(w_old, w_cur);
    if (hi < opts_.min_weight_s) return;  // noise floor
    ++report->tracked;
    // Relative to the larger reading: symmetric in direction, and a unit
    // appearing from / vanishing to zero drifts by exactly 1.
    const double rel = std::abs(w_cur - w_old) / hi;
    report->max_rel_change = std::max(report->max_rel_change, rel);
    if (rel > opts_.drift_threshold) drifted.insert(u);
  };
  for (const auto& [u, w_old] : baseline_w_) {
    auto it = w_new.find(u);
    consider(u, w_old, it != w_new.end() ? it->second : 0.0);
  }
  for (const auto& [u, w_cur] : w_new)
    if (baseline_w_.count(u) == 0) consider(u, 0.0, w_cur);
  report->drifted = drifted.size();
  return drifted;
}

DriftReport ReplanController::classify(const Profiler& prof) const {
  DriftReport rep;
  drifted_units(unit_weights(prof), &rep);
  return rep;
}

Plan ReplanController::repair(const Profiler& prof,
                              const std::map<UnitRef, double>& w_new,
                              const std::set<UnitRef>& drifted,
                              double* stale_predicted_s,
                              double* repaired_predicted_s) const {
  const std::size_t P = std::max<std::size_t>(prof.phase_count(), 1);
  double stale = 0;
  for (const PhaseObservation& ph : prof.phases()) stale += ph.phase_time_s;

  // Warm start: every non-drifted resident keeps its place and its bytes.
  // Only the drifted units — displaced residents and newly hot outsiders —
  // compete, over exactly the capacity the non-drifted residents leave.
  std::set<UnitRef> resident;
  std::size_t kept_bytes = 0;
  for (const UnitRef& u : registry_->all_units()) {
    if (registry_->unit_tier(u) != mem::Tier::kDram) continue;
    resident.insert(u);
    if (drifted.count(u) == 0) kept_bytes += registry_->unit_bytes(u);
  }
  const std::size_t slice = opts_.dram_budget > kept_bytes
                                ? opts_.dram_budget - kept_bytes
                                : 0;

  const double copy_in_bw =
      registry_->hms().copy_bandwidth(mem::Tier::kNvm, mem::Tier::kDram);

  std::vector<UnitRef> cand;
  std::vector<KnapsackItem> items;
  for (const UnitRef& u : drifted) {
    const std::size_t bytes = registry_->try_unit_bytes(u);
    if (bytes == 0) continue;  // unit vanished since the snapshot
    auto it = w_new.find(u);
    const double w = it != w_new.end() ? it->second : 0.0;
    // A displaced resident re-enters for free; an outsider pays its fill
    // copy once (the global search's accounting, Eq. 4 with no window).
    const double cost = resident.count(u) != 0
                            ? 0.0
                            : static_cast<double>(bytes) / copy_in_bw;
    cand.push_back(u);
    items.push_back(KnapsackItem{w - cost, bytes});
  }

  // Bounded re-score over the affected capacity slice only: O(|drifted|)
  // work instead of the full items x capacity DP.
  KnapsackResult sel = solver_.solve_bounded(items, slice);
  std::set<UnitRef> chosen;
  for (std::size_t idx : sel.selected) chosen.insert(cand[idx]);

  Plan plan;
  plan.kind = Plan::Kind::kIncremental;
  plan.at_phase.assign(P, {});
  plan.dram_sets.assign(P, {});

  auto first_reference = [&](UnitRef u) -> std::size_t {
    for (std::size_t p = 0; p < prof.phase_count(); ++p)
      if (prof.phases()[p].references(u)) return p;
    return 0;
  };

  double predicted = stale;
  // Evictions first (the phase-0 FIFO batch frees space before fills):
  // drifted residents that lost their slot.
  for (const UnitRef& u : resident) {
    if (drifted.count(u) == 0 || chosen.count(u) != 0) continue;
    plan.at_phase[0].push_back(PlannedMigration{u, mem::Tier::kNvm, 0, 0});
    auto it = w_new.find(u);
    if (it != w_new.end()) predicted += it->second;  // its speed is lost
  }
  // Fills: chosen outsiders move in; the knapsack weight already nets the
  // copy cost out of the benefit, so the prediction applies the same pair.
  for (const UnitRef& u : cand) {
    if (chosen.count(u) == 0 || resident.count(u) != 0) continue;
    const std::size_t bytes = registry_->unit_bytes(u);
    plan.at_phase[0].push_back(
        PlannedMigration{u, mem::Tier::kDram, 0, first_reference(u)});
    auto it = w_new.find(u);
    if (it != w_new.end()) predicted -= it->second;
    predicted += static_cast<double>(bytes) / copy_in_bw;
  }

  // Repaired resident set = kept survivors + the re-scored winners.
  std::set<UnitRef> final_set;
  for (const UnitRef& u : resident)
    if (drifted.count(u) == 0 || chosen.count(u) != 0) final_set.insert(u);
  for (const UnitRef& u : chosen) final_set.insert(u);
  for (std::size_t p = 0; p < P; ++p) plan.dram_sets[p] = final_set;

  plan.predicted_iteration_s = predicted;
  if (stale_predicted_s != nullptr) *stale_predicted_s = stale;
  if (repaired_predicted_s != nullptr) *repaired_predicted_s = predicted;
  return plan;
}

ReplanDecision ReplanController::decide(
    const Profiler& prof, const std::set<std::size_t>* critical_phases) const {
  ReplanDecision d;
  const std::map<UnitRef, double> w_new = unit_weights(prof);
  std::set<UnitRef> drifted = drifted_units(w_new, &d.drift);
  if (critical_phases != nullptr) {
    // Per-phase repair scope: drift referenced only off the critical path
    // cannot stretch the makespan — keep those units on the stale plan.
    std::set<UnitRef> on_path;
    for (const UnitRef& u : drifted) {
      bool critical_ref = false;
      for (std::size_t p : *critical_phases) {
        if (p < prof.phase_count() && prof.phases()[p].references(u)) {
          critical_ref = true;
          break;
        }
      }
      if (critical_ref) on_path.insert(u);
    }
    d.drift.off_path = drifted.size() - on_path.size();
    drifted = std::move(on_path);
  }
  // Classification instant: wall-only (vt < 0) — the controller runs at
  // the iteration boundary and owns no virtual timestamp of its own; the
  // adopted path is traced by the runtime with its virtual time.
  UNIMEM_TRACE_INSTANT2("replan", "classify", -1.0, "drifted",
                        d.drift.drifted, "tracked", d.drift.tracked);

  double stale = 0;
  for (const PhaseObservation& ph : prof.phases()) stale += ph.phase_time_s;
  d.stale_predicted_s = stale;
  d.repaired_predicted_s = stale;

  if (d.drift.drift_fraction() > opts_.drift_budget) {
    // The working set reshuffled wholesale; a bounded patch of the old
    // answer is no longer trustworthy — re-run the full DP.  (Checked
    // before the critical-path filter's survivors: a reshuffle that
    // starts off-path still invalidates the whole placement.)
    d.path = ReplanDecision::Path::kFullSolve;
    return d;
  }
  if (drifted.empty()) {
    // Unchanged weights — or drift parked off the critical path: the
    // current plan is still the adopted answer.
    d.path = ReplanDecision::Path::kKeepStale;
    return d;
  }
  if (registry_->hms().num_tiers() > 2) {
    // The warm-start repair reasons in resident-in-DRAM terms; on an
    // N-tier machine any real drift re-runs the multiple-choice solve
    // instead of patching a 2-tier answer onto it.
    d.path = ReplanDecision::Path::kFullSolve;
    return d;
  }

  double stale_pred = 0, repaired_pred = 0;
  UNIMEM_TRACE_BEGIN1("replan", "repair", -1.0, "drifted", drifted.size());
  Plan repaired = repair(prof, w_new, drifted, &stale_pred, &repaired_pred);
  UNIMEM_TRACE_END("replan", "repair", -1.0);
  d.stale_predicted_s = stale_pred;
  if (repaired_pred < stale_pred) {
    d.path = ReplanDecision::Path::kIncremental;
    d.plan = std::move(repaired);
    d.repaired_predicted_s = repaired_pred;
  } else {
    // The contract: never adopt a repair predicted worse than doing
    // nothing.  (Drifted weights with no better packing, e.g. everything
    // got uniformly colder.)
    d.path = ReplanDecision::Path::kKeepStale;
    d.repaired_predicted_s = stale_pred;
  }
  return d;
}

}  // namespace unimem::rt
