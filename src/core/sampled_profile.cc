#include "core/sampled_profile.h"

#include <algorithm>

namespace unimem::rt {

ProfileAggregator::ProfileAggregator()
    : worker_([this] { worker_loop(); }) {}

ProfileAggregator::~ProfileAggregator() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void ProfileAggregator::submit(Batch b) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(b));
  }
  work_cv_.notify_one();
}

std::vector<ProfileAggregator::SlotProfile> ProfileAggregator::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return queue_.empty() && !busy_; });
  std::vector<SlotProfile> out = std::move(results_);
  results_.clear();
  std::sort(out.begin(), out.end(),
            [](const SlotProfile& a, const SlotProfile& b) {
              return a.slot < b.slot;
            });
  return out;
}

void ProfileAggregator::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Batch b = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lk.unlock();
    SlotProfile r = process(b);
    lk.lock();
    results_.push_back(std::move(r));
    busy_ = false;
    if (queue_.empty()) done_cv_.notify_all();
  }
}

ProfileAggregator::SlotProfile ProfileAggregator::process(const Batch& b) {
  SlotProfile out;
  out.slot = b.slot;

  // Attribute each buffered address against the phase's snapshot
  // (binary search over spans sorted by lo).
  std::map<UnitRef, std::uint64_t> counts;
  if (b.snapshot && !b.snapshot->empty()) {
    const auto& spans = *b.snapshot;
    for (std::uint64_t addr : b.samples.miss_addresses) {
      auto it = std::upper_bound(
          spans.begin(), spans.end(), addr,
          [](std::uint64_t a, const Registry::AddrSpan& s) { return a < s.lo; });
      if (it == spans.begin()) continue;
      --it;
      if (addr < it->hi) {
        ++counts[it->unit];
        ++out.attributed;
      }
    }
  }

  out.units = apportion_profile(counts, out.attributed,
                                b.samples.total_samples,
                                b.samples.total_miss_count, b.phase_time_s);
  return out;
}

}  // namespace unimem::rt
