// C-style API matching the paper's Table 2.
//
//   unimem_init    initialization for hardware counters, timers, globals
//   unimem_start   identify the beginning of the main computation loop
//   unimem_end     identify the end of the main computation loop
//   unimem_malloc  identify and allocate target data objects
//   unimem_free    free memory allocation for target data objects
//
// "In all applications we evaluated, the modification to the applications
// is less than 20 lines of code."  These functions bind a thread-local
// current Runtime so legacy-style code can stay free of C++ plumbing.
#pragma once

#include <cstddef>

#include "core/runtime.h"

namespace unimem {

/// Create a Runtime bound to the calling thread and return it; the caller
/// keeps ownership of hms/arbiter/comm.  Equivalent to unimem_init.
rt::Runtime* unimem_init(rt::RuntimeOptions opts, mem::HeteroMemory* hms,
                         mem::DramArbiter* arbiter, mpi::Comm* comm);

/// Tear down the calling thread's runtime (joins the helper thread).
void unimem_shutdown();

/// The calling thread's runtime; nullptr before unimem_init.
rt::Runtime* unimem_current();

/// Mark the beginning of the main computation loop.
void unimem_start();

/// Mark the end of the main computation loop.
void unimem_end();

/// Allocate a target data object and return its payload pointer; the
/// pointer is repointed on migration through the returned handle.
rt::DataObject* unimem_malloc(const char* name, std::size_t bytes,
                              rt::ObjectTraits traits = rt::ObjectTraits{});

/// Free a target data object.
void unimem_free(rt::DataObject* obj);

}  // namespace unimem
