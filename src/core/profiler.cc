#include "core/profiler.h"

#include <algorithm>

namespace unimem::rt {

void Profiler::record_phase(const perf::PhaseSamples& samples,
                            double phase_time_s) {
  PhaseObservation obs;
  obs.phase_time_s = phase_time_s;

  // Attribute each sampled miss address to a unit.
  std::map<UnitRef, std::uint64_t> counts;
  std::uint64_t attributed = 0;
  for (std::uint64_t addr : samples.miss_addresses) {
    if (auto unit = registry_->attribute(addr)) {
      ++counts[*unit];
      ++attributed;
    }
  }

  if (attributed > 0 && samples.total_samples > 0) {
    for (const auto& [unit, n] : counts) {
      UnitPhaseProfile p;
      // Apportion the precise aggregate miss counter by sample share.
      p.est_accesses = static_cast<std::uint64_t>(
          static_cast<double>(samples.total_miss_count) *
          static_cast<double>(n) / static_cast<double>(attributed));
      p.time_fraction = static_cast<double>(n) /
                        static_cast<double>(samples.total_samples);
      p.phase_time_s = phase_time_s;
      if (p.est_accesses > 0) obs.units.emplace(unit, p);
    }
  }
  phases_.push_back(std::move(obs));
}

void Profiler::record_comm_phase(double phase_time_s) {
  PhaseObservation obs;
  obs.phase_time_s = phase_time_s;
  obs.is_communication = true;
  phases_.push_back(std::move(obs));
}

void Profiler::fold(std::size_t periods) {
  if (periods <= 1 || phases_.empty()) return;
  if (phases_.size() % periods != 0) return;
  const std::size_t P = phases_.size() / periods;
  std::vector<PhaseObservation> folded(P);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    PhaseObservation& dst = folded[i % P];
    const PhaseObservation& src = phases_[i];
    dst.phase_time_s += src.phase_time_s / static_cast<double>(periods);
    dst.is_communication = src.is_communication;
    for (const auto& [u, prof] : src.units) {
      UnitPhaseProfile& agg = dst.units[u];
      agg.est_accesses += prof.est_accesses / periods;
      agg.time_fraction += prof.time_fraction / static_cast<double>(periods);
    }
  }
  for (auto& ph : folded)
    for (auto& [u, prof] : ph.units) prof.phase_time_s = ph.phase_time_s;
  phases_ = std::move(folded);
}

int Profiler::last_reference_before(std::size_t phase, UnitRef u) const {
  const std::size_t P = phases_.size();
  if (P == 0) return -1;
  for (std::size_t back = 1; back < P; ++back) {
    std::size_t idx = (phase + P - back) % P;
    if (phases_[idx].references(u)) return static_cast<int>(idx);
  }
  return -1;
}

std::vector<UnitRef> Profiler::hot_units() const {
  std::vector<UnitRef> out;
  for (const auto& ph : phases_)
    for (const auto& [u, prof] : ph.units)
      if (std::find(out.begin(), out.end(), u) == out.end()) out.push_back(u);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace unimem::rt
