#include "core/profiler.h"

#include <algorithm>

#include "common/log.h"

namespace unimem::rt {

std::map<UnitRef, UnitPhaseProfile> apportion_profile(
    const std::map<UnitRef, std::uint64_t>& counts, std::uint64_t attributed,
    std::uint64_t total_samples, std::uint64_t total_miss_count,
    double phase_time_s) {
  std::map<UnitRef, UnitPhaseProfile> out;
  if (attributed == 0 || total_samples == 0) return out;
  for (const auto& [unit, n] : counts) {
    UnitPhaseProfile p;
    // Apportion the precise aggregate miss counter by sample share.
    p.est_accesses = static_cast<std::uint64_t>(
        static_cast<double>(total_miss_count) * static_cast<double>(n) /
        static_cast<double>(attributed));
    p.time_fraction =
        static_cast<double>(n) / static_cast<double>(total_samples);
    p.phase_time_s = phase_time_s;
    if (p.est_accesses > 0) out.emplace(unit, p);
  }
  return out;
}

void Profiler::record_phase(const perf::PhaseSamples& samples,
                            double phase_time_s) {
  PhaseObservation obs;
  obs.phase_time_s = phase_time_s;

  // Attribute each sampled miss address to a unit.
  std::map<UnitRef, std::uint64_t> counts;
  std::uint64_t attributed = 0;
  for (std::uint64_t addr : samples.miss_addresses) {
    if (auto unit = registry_->attribute(addr)) {
      ++counts[*unit];
      ++attributed;
    }
  }

  obs.units = apportion_profile(counts, attributed, samples.total_samples,
                                samples.total_miss_count, phase_time_s);
  phases_.push_back(std::move(obs));
}

std::size_t Profiler::record_phase_pending(double phase_time_s) {
  PhaseObservation obs;
  obs.phase_time_s = phase_time_s;
  phases_.push_back(std::move(obs));
  return phases_.size() - 1;
}

void Profiler::fill_phase(std::size_t slot,
                          std::map<UnitRef, UnitPhaseProfile> units) {
  phases_.at(slot).units = std::move(units);
}

void Profiler::record_comm_phase(double phase_time_s) {
  PhaseObservation obs;
  obs.phase_time_s = phase_time_s;
  obs.is_communication = true;
  phases_.push_back(std::move(obs));
}

FoldStatus Profiler::fold(std::size_t periods) {
  if (periods <= 1 || phases_.empty()) return FoldStatus::kOk;
  // Fold the largest divisible prefix; a partially recorded trailing
  // iteration is dropped rather than silently leaving the profile
  // un-averaged.
  const std::size_t usable = (phases_.size() / periods) * periods;
  const bool truncated = usable != phases_.size();
  if (usable == 0) {
    Log::info("profiler: fold(%zu) has only %zu phases; nothing folded",
              periods, phases_.size());
    return FoldStatus::kTruncated;
  }
  const std::size_t P = usable / periods;
  // Phase kinds must agree position-for-position across periods — a
  // mismatch means the periods are not repetitions of the same iteration
  // structure and averaging them would be meaningless.
  for (std::size_t i = P; i < usable; ++i) {
    if (phases_[i].is_communication != phases_[i % P].is_communication) {
      Log::info(
          "profiler: fold(%zu) phase-kind mismatch at phase %zu; "
          "nothing folded",
          periods, i);
      return FoldStatus::kKindMismatch;
    }
  }
  std::vector<PhaseObservation> folded(P);
  // Accumulate raw sums, divide once at the end: per-period integer
  // division would lose up to periods-1 accesses per unit.
  std::vector<std::map<UnitRef, std::uint64_t>> access_sums(P);
  for (std::size_t i = 0; i < usable; ++i) {
    PhaseObservation& dst = folded[i % P];
    const PhaseObservation& src = phases_[i];
    dst.phase_time_s += src.phase_time_s / static_cast<double>(periods);
    dst.is_communication = src.is_communication;
    for (const auto& [u, prof] : src.units) {
      UnitPhaseProfile& agg = dst.units[u];
      access_sums[i % P][u] += prof.est_accesses;
      agg.time_fraction += prof.time_fraction / static_cast<double>(periods);
    }
  }
  for (std::size_t p = 0; p < P; ++p)
    for (auto& [u, prof] : folded[p].units)
      prof.est_accesses = (access_sums[p][u] + periods / 2) / periods;
  for (auto& ph : folded)
    for (auto& [u, prof] : ph.units) prof.phase_time_s = ph.phase_time_s;
  phases_ = std::move(folded);
  if (truncated)
    Log::info("profiler: fold dropped a partial trailing iteration");
  return truncated ? FoldStatus::kTruncated : FoldStatus::kOk;
}

int Profiler::last_reference_before(std::size_t phase, UnitRef u) const {
  const std::size_t P = phases_.size();
  if (P == 0) return -1;
  for (std::size_t back = 1; back < P; ++back) {
    std::size_t idx = (phase + P - back) % P;
    if (phases_[idx].references(u)) return static_cast<int>(idx);
  }
  return -1;
}

std::vector<UnitRef> Profiler::hot_units() const {
  std::vector<UnitRef> out;
  for (const auto& ph : phases_)
    for (const auto& [u, prof] : ph.units)
      if (std::find(out.begin(), out.end(), u) == out.end()) out.push_back(u);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace unimem::rt
