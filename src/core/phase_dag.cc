#include "core/phase_dag.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "trace/export.h"

namespace unimem::rt {

double PhaseDag::eps() const {
  return 1e-9 * std::max(1.0, critical_path_s_);
}

std::size_t PhaseDag::add_node(int rank, std::size_t phase, double duration_s,
                               bool is_comm) {
  const std::size_t idx = nodes_.size();
  Node n;
  n.rank = rank;
  n.phase = phase;
  n.duration_s = duration_s;
  n.is_comm = is_comm;
  nodes_.push_back(n);
  index_[{rank, phase}] = idx;
  computed_ = false;
  return idx;
}

void PhaseDag::add_edge(std::size_t from, std::size_t to) {
  if (from >= nodes_.size() || to >= nodes_.size() || from == to) return;
  edges_.emplace_back(from, to);
  computed_ = false;
}

bool PhaseDag::compute() {
  const std::size_t V = nodes_.size();
  std::vector<std::vector<std::size_t>> succs(V), preds(V);
  std::vector<std::size_t> indeg(V, 0);
  for (const auto& [u, v] : edges_) {
    succs[u].push_back(v);
    preds[v].push_back(u);
    ++indeg[v];
  }

  // Kahn in node-index order (deterministic for identical inputs).
  std::vector<std::size_t> topo;
  topo.reserve(V);
  std::vector<std::size_t> frontier;
  for (std::size_t v = 0; v < V; ++v)
    if (indeg[v] == 0) frontier.push_back(v);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const std::size_t u = frontier[head];
    topo.push_back(u);
    for (std::size_t v : succs[u])
      if (--indeg[v] == 0) frontier.push_back(v);
  }
  if (topo.size() != V) return false;  // cycle

  // Forward pass: earliest starts, then the makespan.
  for (Node& n : nodes_) n.earliest_s = 0;
  for (std::size_t u : topo)
    for (std::size_t v : succs[u])
      nodes_[v].earliest_s = std::max(
          nodes_[v].earliest_s, nodes_[u].earliest_s + nodes_[u].duration_s);
  critical_path_s_ = 0;
  for (const Node& n : nodes_)
    critical_path_s_ = std::max(critical_path_s_, n.earliest_s + n.duration_s);

  // Backward pass: latest starts against the global makespan, so a
  // disconnected shorter component reads as pure slack.
  for (Node& n : nodes_) n.latest_s = critical_path_s_ - n.duration_s;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t v = *it;
    for (std::size_t u : preds[v])
      nodes_[u].latest_s = std::min(nodes_[u].latest_s,
                                    nodes_[v].latest_s - nodes_[u].duration_s);
  }
  computed_ = true;
  const double tol = eps();
  for (Node& n : nodes_) {
    n.slack_s = std::max(0.0, n.latest_s - n.earliest_s);
    n.critical = n.slack_s <= tol;
  }
  return true;
}

std::size_t PhaseDag::index_of(int rank, std::size_t phase) const {
  auto it = index_.find({rank, phase});
  return it == index_.end() ? static_cast<std::size_t>(-1) : it->second;
}

const PhaseDag::Node* PhaseDag::find(int rank, std::size_t phase) const {
  const std::size_t idx = index_of(rank, phase);
  return idx < nodes_.size() ? &nodes_[idx] : nullptr;
}

double PhaseDag::slack(int rank, std::size_t phase) const {
  const Node* n = find(rank, phase);
  return n != nullptr && computed_ ? n->slack_s : 0.0;
}

bool PhaseDag::critical(int rank, std::size_t phase) const {
  const Node* n = find(rank, phase);
  return n != nullptr && computed_ ? n->critical : true;
}

std::set<std::size_t> PhaseDag::critical_phases(int rank) const {
  std::set<std::size_t> out;
  for (const Node& n : nodes_)
    if (n.rank == rank && n.critical) out.insert(n.phase);
  return out;
}

PhaseDag PhaseDag::from_profile(
    const std::vector<std::vector<double>>& durations,
    const std::vector<std::vector<char>>& kinds) {
  PhaseDag dag;
  const std::size_t R = durations.size();
  for (std::size_t r = 0; r < R; ++r)
    for (std::size_t p = 0; p < durations[r].size(); ++p) {
      const bool comm =
          r < kinds.size() && p < kinds[r].size() && kinds[r][p] != 0;
      dag.add_node(static_cast<int>(r), p, durations[r][p], comm);
    }
  for (std::size_t r = 0; r < R; ++r)
    for (std::size_t p = 1; p < durations[r].size(); ++p) {
      const std::size_t to = dag.index_of(static_cast<int>(r), p);
      dag.add_edge(dag.index_of(static_cast<int>(r), p - 1), to);
      if (!dag.nodes_[to].is_comm) continue;
      // Barrier: a comm phase waits on every rank's previous phase.
      for (std::size_t o = 0; o < R; ++o) {
        if (o == r) continue;
        const std::size_t from = dag.index_of(static_cast<int>(o), p - 1);
        if (from < dag.nodes_.size()) dag.add_edge(from, to);
      }
    }
  return dag;
}

PhaseDag PhaseDag::from_trace(const trace::TraceData& data) {
  using trace::TraceEventRow;
  // Per-track phase spans in emission order (stable wall-time sort, the
  // same ordering summarize() uses).
  std::vector<TraceEventRow> events = data.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEventRow& a, const TraceEventRow& b) {
                     return a.wall_ns < b.wall_ns;
                   });

  struct Span {
    double duration_s;
    bool is_comm;
  };
  std::map<std::uint32_t, std::vector<Span>> spans;   // track -> sequence
  std::map<std::uint32_t, std::vector<double>> open;  // track -> B vt stack
  for (const TraceEventRow& e : events) {
    if (data.str(e.cat) != "runtime" || data.str(e.name) != "phase") continue;
    if (e.phase == 'B') {
      open[e.track].push_back(e.vt);
    } else if (e.phase == 'E') {
      auto& stack = open[e.track];
      if (stack.empty()) continue;  // torn: END without a recorded begin
      const double begin_vt = stack.back();
      stack.pop_back();
      if (begin_vt < 0 || e.vt < 0) continue;  // no virtual stamps
      const bool comm = data.str(e.arg_name0) == "is_comm" && e.arg0 != 0;
      spans[e.track].push_back(Span{e.vt - begin_vt, comm});
    }
  }

  // Track -> rank: parse "rank N" names (merged shards carry prefixes like
  // "task-3/rank 0"); unnamed tracks sort after the named ones.  Rows are
  // densely renumbered in (parsed rank, track) order — the barrier edges
  // only need phase indices aligned across rows, not original rank ids.
  std::vector<std::pair<std::pair<int, std::uint32_t>, const std::vector<Span>*>>
      rows;
  for (const auto& [track, seq] : spans) {
    int rank = -1;
    if (track < data.tracks.size()) {
      const std::string& name = data.tracks[track].name;
      const std::size_t pos = name.rfind("rank ");
      if (pos != std::string::npos)
        rank = std::atoi(name.c_str() + pos + 5);
    }
    if (rank < 0) rank = static_cast<int>(spans.size()) + static_cast<int>(track);
    rows.push_back({{rank, track}, &seq});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::vector<double>> durations;
  std::vector<std::vector<char>> kinds;
  for (const auto& [key, seq] : rows) {
    durations.emplace_back();
    kinds.emplace_back();
    for (const Span& s : *seq) {
      durations.back().push_back(s.duration_s);
      kinds.back().push_back(s.is_comm ? 1 : 0);
    }
  }
  return from_profile(durations, kinds);
}

}  // namespace unimem::rt
