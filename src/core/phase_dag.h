// Phase execution DAG + critical-path math (ROADMAP item 3).
//
// Nodes are (rank, phase) executions with measured durations; edges are
// program order within a rank plus the barrier dependencies a blocking
// communication phase imposes (every rank must finish phase p-1 before
// any rank's comm phase p can complete — minimpi's collectives leave all
// ranks at max(entry times), so the dependency is real, not heuristic).
//
// compute() runs the classic CPM pass:
//   earliest[v] = max over preds u of (earliest[u] + dur[u]), 0 at sources
//   makespan    = max over v of (earliest[v] + dur[v])
//   latest[v]   = min over succs w of latest[w], minus dur[v]
//                 (sinks: makespan - dur[v] — disconnected components all
//                 measure against the global makespan, so a shorter
//                 component carries slack)
//   slack[v]    = latest[v] - earliest[v];  critical iff slack ~ 0
//
// Two ingestion paths build the same structure:
//   * from_profile — the runtime's per-rank phase durations exchanged at
//     an iteration boundary (the online slack-scheduling path);
//   * from_trace   — "runtime/phase" B/E spans of a recorded trace (the
//     offline `unimem_trace --dag` report).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace unimem::trace {
struct TraceData;
}

namespace unimem::rt {

class PhaseDag {
 public:
  struct Node {
    int rank = 0;
    std::size_t phase = 0;
    double duration_s = 0;
    bool is_comm = false;
    // Filled by compute():
    double earliest_s = 0;  ///< earliest start time
    double latest_s = 0;    ///< latest start that keeps the makespan
    double slack_s = 0;     ///< latest_s - earliest_s
    bool critical = false;  ///< slack within tolerance of zero
  };

  /// Slack below eps() counts as zero (floating-point accumulation noise
  /// along a long chain, relative to the critical-path length).
  double eps() const;

  // Builder preconditions (add_node/add_edge):
  //  * Add each (rank, phase) pair at most once.  A duplicate is not
  //    rejected, but the lookup index keeps only the latest node, so the
  //    earlier one becomes unreachable through find()/slack()/critical()
  //    while still shaping the CPM result — a state no caller wants.
  //  * Edge endpoints must be indices returned by a *prior* add_node on
  //    this DAG.  Out-of-range endpoints and self-edges are silently
  //    dropped; duplicate parallel edges are accepted and harmless.
  //  * Durations must be finite and >= 0 (profiled times; never NaN).
  //  * Any add invalidates computed(): until the next successful
  //    compute(), slack() reads 0 and critical() reads true — the
  //    conservative answers that keep the slack scheduler honest.

  /// Returns the node's index (edges reference indices).
  std::size_t add_node(int rank, std::size_t phase, double duration_s,
                       bool is_comm);
  void add_edge(std::size_t from, std::size_t to);

  /// CPM forward/backward pass.  Returns false — and marks nothing
  /// computed — when the edge set has a cycle.  An empty DAG computes
  /// trivially (critical_path_s() == 0).
  bool compute();
  bool computed() const { return computed_; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::pair<std::size_t, std::size_t>>& edges() const {
    return edges_;
  }
  double critical_path_s() const { return critical_path_s_; }

  /// nullptr when (rank, phase) was never added.
  const Node* find(int rank, std::size_t phase) const;
  /// 0 when unknown (an unknown phase offers no schedulable slack).
  double slack(int rank, std::size_t phase) const;
  /// true when unknown — conservative: the slack scheduler must not park
  /// a copy in a phase it knows nothing about.
  bool critical(int rank, std::size_t phase) const;
  /// Phase indices of `rank` sitting on the critical path.
  std::set<std::size_t> critical_phases(int rank) const;

  /// Build from exchanged per-rank phase durations: durations[r][p] is
  /// rank r's phase p time, kinds[r][p] nonzero for communication phases.
  /// Edges: (r, p-1) -> (r, p) program order, plus (r', p-1) -> (r, p)
  /// for every rank r' when (r, p) is a comm phase (the barrier).
  /// Ragged inputs are allowed; missing entries simply have no node.
  static PhaseDag from_profile(const std::vector<std::vector<double>>& durations,
                               const std::vector<std::vector<char>>& kinds);

  /// Build from a drained trace: per-track "runtime/phase" B/E spans in
  /// virtual time become that track's phase sequence (rank parsed from
  /// the "rank N" track name, falling back to track order); is_comm reads
  /// the END event's is_comm argument.  Torn spans (B without E) are
  /// skipped — summarize() counts those separately.
  static PhaseDag from_trace(const trace::TraceData& data);

 private:
  std::size_t index_of(int rank, std::size_t phase) const;  // npos = absent

  std::map<std::pair<int, std::size_t>, std::size_t> index_;
  std::vector<Node> nodes_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  double critical_path_s_ = 0;
  bool computed_ = false;
};

}  // namespace unimem::rt
