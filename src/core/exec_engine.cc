#include "core/exec_engine.h"

#include <algorithm>

#include "common/units.h"

namespace unimem::rt {

double ExecEngine::mem_time(const cache::AccessResult& r,
                            const mem::TierConfig& tier,
                            double write_fraction) const {
  const double bytes = static_cast<double>(r.bytes_from_memory());
  const double bw = 1.0 / ((1.0 - write_fraction) / tier.read_bw +
                           write_fraction / tier.write_bw);
  const double lat = (1.0 - write_fraction) * tier.read_latency_s +
                     write_fraction * tier.write_latency_s;
  return std::max(bytes / bw, r.serialized_misses * lat);
}

PhaseExec ExecEngine::run(const PhaseWork& work) const {
  PhaseExec out;
  out.compute_s = timing_.compute_seconds(work.flops);

  for (const ObjectAccess& a : work.accesses) {
    if (a.object == nullptr || a.accesses == 0) continue;
    DataObject& obj = *a.object;
    const std::size_t obj_bytes = obj.bytes();
    const std::size_t off = std::min(a.offset, obj_bytes);
    const std::size_t len =
        a.length == 0 ? obj_bytes - off : std::min(a.length, obj_bytes - off);
    if (len == 0) continue;

    // Split the logical range across the object's chunks; accesses are
    // apportioned by overlap so chunked and unchunked objects see the same
    // total traffic.
    std::size_t chunk_begin = 0;
    for (std::uint32_t ci = 0; ci < obj.chunk_count(); ++ci) {
      Chunk& c = obj.chunk(ci);
      const std::size_t c_lo = chunk_begin;
      const std::size_t c_hi = chunk_begin + c.bytes;
      chunk_begin = c_hi;
      const std::size_t lo = std::max(off, c_lo);
      const std::size_t hi = std::min(off + len, c_hi);
      if (lo >= hi) continue;
      const std::size_t part = hi - lo;

      cache::AccessDescriptor d;
      d.base = static_cast<std::byte*>(c.data()) + (lo - c_lo);
      d.region_bytes = part;
      d.pattern = a.pattern;
      d.accesses = static_cast<std::uint64_t>(
          static_cast<double>(a.accesses) * static_cast<double>(part) /
          static_cast<double>(len));
      if (d.accesses == 0) continue;
      d.access_bytes = a.access_bytes;
      d.stride_bytes = a.stride_bytes;
      d.write_fraction = a.write_fraction;
      d.mlp = a.mlp;
      d.seed = (static_cast<std::uint64_t>(obj.id()) << 20) ^ ci;
      d.logical_bytes = len;  // the whole traversal, not just this chunk

      cache::AccessResult r = cache_->process(d, timing_.default_mlp);
      const mem::TierConfig& tier = hms_->tier_config(c.current_tier());
      const double t = mem_time(r, tier, a.write_fraction);
      out.mem_s += t;
      out.windows.push_back(perf::MemWindow{
          reinterpret_cast<std::uint64_t>(d.base), part, r.misses, t});
      out.unit_results.emplace_back(UnitRef{obj.id(), ci}, r);
    }
  }
  return out;
}

}  // namespace unimem::rt
