// Offline model calibration (paper §3.1.2).
//
// "To measure BW_peak, we run a highly memory bandwidth intensive
// benchmark, the STREAM benchmark, with maximum memory concurrency, and use
// Equation 1 and performance counters."  CF_bw is the ratio of measured to
// predicted performance for STREAM; CF_lat likewise for a single-threaded
// pointer-chasing benchmark.  "Given a hardware platform, CF_bw and CF_lat
// need to be calculated only once."
//
// We run the same two microbenchmarks through the same cache + sampler
// machinery the runtime uses online, so the factors absorb exactly the
// modeling errors the paper's factors absorb (sampling loss, MLP overlap).
#pragma once

#include "core/exec_engine.h"
#include "core/models.h"
#include "simcache/cache_model.h"
#include "simclock/timing_params.h"
#include "simmem/hetero_memory.h"

namespace unimem::rt {

struct CalibrationOptions {
  double t1_percent = 80.0;
  double t2_percent = 10.0;
  std::size_t region_bytes = 16 * kMiB;   ///< working set (>> LLC)
  std::uint64_t sampler_seed = 7;
};

/// Measure BW_peak / CF_bw / CF_lat for the given HMS + cache + timing and
/// return a ready-to-use ModelParams.
ModelParams calibrate(const mem::HmsConfig& hms, cache::CacheModel& cache,
                      const clk::TimingParams& timing,
                      CalibrationOptions opts = CalibrationOptions{});

}  // namespace unimem::rt
