// Object registry: owns all target data objects of one rank, performs the
// actual tier allocations, maintains the address->unit attribution map the
// profiler uses to map sampled miss addresses back to objects, and performs
// migrations (allocate in destination tier, copy payload, repoint handle
// and registered aliases, free source).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/interval_map.h"
#include "core/object.h"
#include "simmem/dram_arbiter.h"
#include "simmem/hetero_memory.h"

namespace unimem::rt {

class Registry {
 public:
  /// `arbiter` is the node-level DRAM space service shared by all ranks on
  /// the node; may be nullptr for single-rank tools (then only the local
  /// arena bounds DRAM use).
  Registry(mem::HeteroMemory* hms, mem::DramArbiter* arbiter);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Allocate a target object in `initial` tier.  If `chunk_bytes` > 0 and
  /// the object is chunkable and larger than chunk_bytes, it is split into
  /// ceil(bytes/chunk_bytes) chunks.  Throws std::bad_alloc when the tier
  /// cannot hold the payload.
  DataObject* create(const std::string& name, std::size_t bytes,
                     ObjectTraits traits, mem::Tier initial,
                     std::size_t chunk_bytes = 0);

  /// Free an object and all its chunks.
  void destroy(ObjectId id);

  /// Register a programmer-visible alias pointer to be repointed on moves.
  void add_alias(ObjectId id, void** alias);

  /// Move one unit to `to`.  Returns false (no state change) when the
  /// destination cannot hold it (arena full or arbiter refuses).  Safe to
  /// call from the helper thread concurrently with profiler lookups.
  bool migrate(UnitRef unit, mem::Tier to);

  /// Split migration, decision half (see MigrationEngine): allocate in
  /// `to`, repoint the chunk/aliases/address map, and move the DRAM
  /// *accounting* (arbiter grant) — all synchronously, so tier state and
  /// grant decisions are a pure function of the caller's (virtual) order.
  /// The payload still lives at `src`; the caller must memcpy dst <- src
  /// and then call finish_migration, which frees the source arena block.
  /// Returns nullopt (no state change) when the destination cannot hold
  /// the unit.  Precondition: the unit is not already in `to`.
  struct PendingCopy {
    UnitRef unit;
    void* src = nullptr;
    void* dst = nullptr;
    std::size_t bytes = 0;
    mem::Tier from = mem::Tier::kNvm;
  };
  std::optional<PendingCopy> migrate_start(UnitRef unit, mem::Tier to);

  /// Physical-completion half: release the source arena block.  (The
  /// arbiter accounting already moved in migrate_start.)  Takes no
  /// registry lock — safe from the copy helper thread.
  void finish_migration(const PendingCopy& c);

  /// Attribute a sampled miss address to a unit, if it belongs to one.
  std::optional<UnitRef> attribute(std::uint64_t addr) const;

  /// One row of an attribution snapshot: unit mapped at [lo, hi).
  struct AddrSpan {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    UnitRef unit;
  };
  using AddrSnapshot = std::vector<AddrSpan>;

  /// Monotonic counter bumped whenever the address map changes (create /
  /// destroy / migrate).  Lets deferred-attribution callers cheaply decide
  /// whether a cached addr_snapshot() is still current.
  std::uint64_t addr_version() const;

  /// Immutable copy of the address map, sorted by `lo`.  Sampled-mode
  /// profiling attributes miss addresses off the rank thread against the
  /// snapshot taken when the phase closed: migrations repoint the live map
  /// synchronously on the rank thread (and freed ranges can be reused), so
  /// a live lookup at drain time would misattribute.  The snapshot pins the
  /// phase's own view.
  std::shared_ptr<const AddrSnapshot> addr_snapshot() const;

  DataObject* get(ObjectId id);
  const DataObject* get(ObjectId id) const;
  DataObject* find(const std::string& name);
  std::size_t object_count() const;
  std::size_t unit_bytes(UnitRef u) const;
  mem::Tier unit_tier(UnitRef u) const;

  /// unit_bytes for possibly-stale refs (e.g. a plan inspected after the
  /// app freed its objects): 0 when the unit no longer exists.
  std::size_t try_unit_bytes(UnitRef u) const;

  /// Every unit whose mapped range intersects [lo, hi).
  std::vector<UnitRef> units_overlapping(std::uint64_t lo,
                                         std::uint64_t hi) const;

  /// All units, in (object, chunk) order.
  std::vector<UnitRef> all_units() const;

  mem::HeteroMemory& hms() { return *hms_; }
  const mem::HeteroMemory& hms() const { return *hms_; }
  mem::DramArbiter* arbiter() { return arbiter_; }

  /// Total bytes currently resident in `t` across registered units.
  std::size_t resident_bytes(mem::Tier t) const;

 private:
  void map_unit(const Chunk& c, UnitRef ref);
  void unmap_unit(const Chunk& c);
  void* allocate_in(mem::Tier t, std::size_t bytes);
  void release_in(mem::Tier t, void* p, std::size_t bytes);

  mem::HeteroMemory* hms_;
  mem::DramArbiter* arbiter_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<DataObject>> objects_;
  IntervalMap<UnitRef> addr_map_;
  std::uint64_t addr_version_ = 0;  // guarded by mu_
  /// Cache: snapshot of addr_map_ at version snapshot_version_ (guarded by
  /// mu_; shared_ptr hands out immutable views without copying per call).
  mutable std::shared_ptr<const AddrSnapshot> snapshot_cache_;
  mutable std::uint64_t snapshot_version_ = ~0ull;
};

}  // namespace unimem::rt
