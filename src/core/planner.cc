#include "core/planner.h"

#include <algorithm>
#include <map>

#include "core/phase_dag.h"

namespace unimem::rt {

double Planner::no_move_time(const Profiler& prof) const {
  double t = 0;
  for (const auto& ph : prof.phases()) t += ph.phase_time_s;
  return t;
}

std::vector<Planner::Group> Planner::build_groups() const {
  std::vector<Group> out;
  if (opts_.chunking) {
    for (const UnitRef& u : registry_->all_units())
      out.push_back(Group{{u}, registry_->unit_bytes(u)});
  } else {
    std::map<ObjectId, std::size_t> index;
    for (const UnitRef& u : registry_->all_units()) {
      auto [it, fresh] = index.emplace(u.object, out.size());
      if (fresh) out.push_back(Group{});
      Group& g = out[it->second];
      g.units.push_back(u);
      g.bytes += registry_->unit_bytes(u);
    }
  }
  return out;
}

Planner::GroupProfiles Planner::aggregate(
    const Profiler& prof, const std::vector<Group>& groups) const {
  // unit -> group index.
  std::map<UnitRef, std::size_t> owner;
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (const UnitRef& u : groups[g].units) owner[u] = g;

  GroupProfiles gp(prof.phase_count());
  for (std::size_t p = 0; p < prof.phase_count(); ++p) {
    for (const auto& [u, uprof] : prof.phases()[p].units) {
      auto it = owner.find(u);
      if (it == owner.end()) continue;
      UnitPhaseProfile& agg = gp[p][it->second];
      agg.est_accesses += uprof.est_accesses;
      agg.time_fraction = std::min(1.0, agg.time_fraction + uprof.time_fraction);
      agg.phase_time_s = uprof.phase_time_s;
    }
  }
  return gp;
}

bool Planner::group_in_dram(const Group& g) const {
  for (const UnitRef& u : g.units)
    if (registry_->unit_tier(u) != mem::Tier::kDram) return false;
  return true;
}

double Planner::overlap_window(const GroupProfiles& gp,
                               const std::vector<double>& phase_times,
                               std::size_t phase, std::size_t g,
                               std::size_t* trigger) const {
  const std::size_t P = gp.size();
  int last = -1;
  for (std::size_t back = 1; back < P; ++back) {
    std::size_t idx = (phase + P - back) % P;
    if (gp[idx].count(g) != 0) {
      last = static_cast<int>(idx);
      break;
    }
  }
  *trigger = last < 0 ? (phase + 1) % P
                      : (static_cast<std::size_t>(last) + 1) % P;
  double window = 0;
  for (std::size_t i = *trigger; i != phase; i = (i + 1) % P)
    window += phase_times[i];
  return window;
}

std::size_t Planner::slack_trigger(const std::vector<double>& phase_times,
                                   std::size_t needed, std::size_t earliest,
                                   double copy_s, double* window,
                                   bool* scheduled) const {
  const std::size_t P = phase_times.size();
  double w = 0;
  if (earliest != needed) {
    for (std::size_t cand = (needed + P - 1) % P;; cand = (cand + P - 1) % P) {
      w += phase_times[cand];
      if (w >= copy_s && !opts_.dag->critical(opts_.rank, cand) &&
          opts_.dag->slack(opts_.rank, cand) >= copy_s) {
        // Latest off-critical-path phase with room: the copy hides in its
        // slack instead of delaying critical work.
        *window = w;
        *scheduled = true;
        return cand;
      }
      if (cand == earliest) break;
    }
  }
  // Every candidate is critical (the SPMD-symmetric common case) or too
  // tight: enqueue at the earliest legal trigger with the full window —
  // maximal overlap headroom for the serial copy engine.
  *window = w;
  *scheduled = false;
  return earliest;
}

std::size_t Planner::global_slack_trigger(
    const GroupProfiles& gp, const std::vector<double>& phase_times,
    std::size_t g, std::size_t first_ref, double copy_s, std::size_t* needed,
    double* window, bool* scheduled) const {
  const std::size_t P = phase_times.size();
  *needed = first_ref;
  *window = 0;
  *scheduled = false;
  if (P == 0 || first_ref >= P || gp[first_ref].count(g) == 0)
    return first_ref;

  std::vector<bool> refs(P, false);
  for (std::size_t p = 0; p < P; ++p) refs[p] = gp[p].count(g) != 0;

  // Walk the cycle once starting after first_ref; every maximal run of
  // non-referencing phases closes at a referencing phase (first_ref at the
  // latest, since it is referenced), yielding one candidate: enqueue at
  // the run's first phase, overlap its whole duration, land before the
  // closing phase.
  std::size_t best_trigger = first_ref;
  double best_window = -1.0;
  std::size_t run_start = P;
  double run_window = 0;
  bool run_in_slack = true;
  for (std::size_t step = 1; step <= P; ++step) {
    const std::size_t p = (first_ref + step) % P;
    if (!refs[p]) {
      if (run_start == P) {
        run_start = p;
        run_window = 0;
        run_in_slack = true;
      }
      run_window += phase_times[p];
      run_in_slack = run_in_slack && !opts_.dag->critical(opts_.rank, p) &&
                     opts_.dag->slack(opts_.rank, p) >= copy_s;
      continue;
    }
    if (run_start != P) {
      // Hidden time is capped at the copy itself; among equally-hiding
      // runs the first found (soonest after first_ref) wins
      // deterministically.
      if (std::min(run_window, copy_s) > std::min(best_window, copy_s)) {
        best_trigger = run_start;
        best_window = run_window;
        *needed = p;
        *scheduled = run_in_slack && run_window >= copy_s;
      }
      run_start = P;
    }
  }
  if (best_window < 0) return first_ref;  // referenced every phase
  *window = best_window;
  return best_trigger;
}

Plan Planner::plan_local(const Profiler& prof,
                         const std::vector<Group>& groups,
                         const GroupProfiles& gp) const {
  const std::size_t P = gp.size();
  Plan plan;
  plan.kind = Plan::Kind::kLocal;
  plan.at_phase.assign(P, {});
  plan.dram_sets.assign(P, {});

  std::vector<double> phase_times;
  phase_times.reserve(P);
  for (const auto& ph : prof.phases()) phase_times.push_back(ph.phase_time_s);

  const double copy_in_bw =
      registry_->hms().copy_bandwidth(mem::Tier::kNvm, mem::Tier::kDram);
  const double copy_out_bw =
      registry_->hms().copy_bandwidth(mem::Tier::kDram, mem::Tier::kNvm);

  // Group-resident set entering the iteration.  `profile_dram` freezes the
  // placement the profiled times were measured under: a profiled phase time
  // already includes the speed of its then-resident objects, so predictions
  // subtract a benefit only for *newly* promoted groups and add it back as
  // a loss for groups that were resident and get evicted.
  std::set<std::size_t> dram_set;
  for (std::size_t g = 0; g < groups.size(); ++g)
    if (group_in_dram(groups[g])) dram_set.insert(g);
  const std::set<std::size_t> profile_dram = dram_set;

  auto bytes_of = [&](const std::set<std::size_t>& s) {
    std::size_t sum = 0;
    for (std::size_t g : s) sum += groups[g].bytes;
    return sum;
  };

  // The helper thread is one serial copy engine: it cannot overlap an
  // unbounded volume of migrations per iteration.  Once the planned copy
  // time exceeds this share of the iteration, further candidates must
  // justify their full (unoverlapped) copy cost.
  const double copy_budget_s = 0.4 * no_move_time(prof);
  double planned_copy_s = 0;

  double predicted = 0;
  for (std::size_t p = 0; p < P; ++p) {
    predicted += phase_times[p];
    if (gp[p].empty()) {
      plan.dram_sets[p] = {};
      for (std::size_t g : dram_set)
        for (const UnitRef& u : groups[g].units) plan.dram_sets[p].insert(u);
      continue;
    }

    // Knapsack items: groups referenced in this phase, weighted by Eq. 5.
    std::vector<std::size_t> refs;
    std::vector<KnapsackItem> items;
    std::vector<double> benefits, costs;
    std::vector<std::size_t> triggers;
    for (const auto& [g, uprof] : gp[p]) {
      const std::size_t bytes = groups[g].bytes;
      double benefit = model_->benefit(uprof);
      double cost = 0;
      std::size_t trigger = p;
      if (dram_set.count(g) == 0) {
        // Earliest legal trigger: right after the previous reference.
        double window = overlap_window(gp, phase_times, p, g, &trigger);
        const double copy_s = static_cast<double>(bytes) / copy_in_bw;
        if (opts_.dag != nullptr) {
          // Slack mode: park the fill in the latest off-critical-path
          // phase whose slack covers the copy (fallback: earliest trigger
          // with the full window).
          bool scheduled = false;
          trigger =
              slack_trigger(phase_times, p, trigger, copy_s, &window,
                            &scheduled);
          (scheduled ? plan.slack_scheduled : plan.fallback_triggers) += 1;
        } else {
          // Just-in-time refinement: a fill parked in DRAM phases before
          // it is needed blocks the rotation of other hot sets through
          // the budget.  Walk the trigger forward (shrinking the window)
          // while the remaining window still covers the copy twice over.
          while (trigger != p) {
            double next_window = window - phase_times[trigger];
            if (next_window < 2.0 * copy_s) break;
            window = next_window;
            trigger = (trigger + 1) % P;
          }
        }
        if (planned_copy_s > copy_budget_s) window = 0;  // engine saturated
        cost = model_->migration_cost(bytes, copy_in_bw, window);
        // extra_COST: eviction traffic if the incoming group overflows
        // DRAM.  The victim is chosen among units not referenced in this
        // phase, so its copy-out rides the same helper-thread window as
        // the fill and earns the same overlap credit (Eq. 4), after the
        // fill's own copy time is deducted from the window.
        if (bytes_of(dram_set) + bytes > opts_.dram_budget) {
          double window_left =
              std::max(0.0, window - static_cast<double>(bytes) / copy_in_bw);
          cost += model_->migration_cost(bytes, copy_out_bw, window_left);
        }
      }
      refs.push_back(g);
      benefits.push_back(benefit);
      costs.push_back(cost);
      triggers.push_back(trigger);
      items.push_back(KnapsackItem{benefit - cost, bytes});
    }

    KnapsackSolver solver;
    KnapsackResult sel = solver.solve(items, opts_.dram_budget);
    std::set<std::size_t> selected;
    for (std::size_t idx : sel.selected) selected.insert(refs[idx]);

    // Evictions: non-selected residents leave when space is needed,
    // preferring victims not referenced in this phase; they are enqueued at
    // the earliest incoming trigger so the FIFO frees space before fills.
    std::size_t earliest_trigger = p;
    for (std::size_t i = 0; i < refs.size(); ++i)
      if (selected.count(refs[i]) != 0 && dram_set.count(refs[i]) == 0)
        earliest_trigger = std::min(earliest_trigger, triggers[i]);

    std::size_t incoming = 0;
    for (std::size_t g : selected)
      if (dram_set.count(g) == 0) incoming += groups[g].bytes;
    std::size_t resident = bytes_of(dram_set);
    std::size_t free_space =
        opts_.dram_budget > resident ? opts_.dram_budget - resident : 0;
    std::size_t to_free = incoming > free_space ? incoming - free_space : 0;

    std::vector<std::size_t> victims;
    for (std::size_t g : dram_set)
      if (selected.count(g) == 0) victims.push_back(g);
    std::stable_sort(victims.begin(), victims.end(),
                     [&](std::size_t a, std::size_t b) {
                       return gp[p].count(a) < gp[p].count(b);
                     });
    std::set<std::size_t> survivors;
    for (std::size_t v : victims) {
      if (to_free == 0) {
        survivors.insert(v);
        continue;
      }
      // Dependency: the victim may only start moving out after its own
      // last reference before this phase — evicting a set while the phase
      // that uses it is still running would stall that phase on its own
      // eviction.  (The FIFO retry absorbs any fill that lands first.)
      std::size_t victim_trigger = earliest_trigger;
      overlap_window(gp, phase_times, p, v, &victim_trigger);
      for (const UnitRef& u : groups[v].units)
        plan.at_phase[victim_trigger].push_back(
            PlannedMigration{u, mem::Tier::kNvm, victim_trigger, p});
      // The eviction's copy-out cost is already accounted inside the
      // incoming groups' extra_COST (they share the fill window); charging
      // it here again would double-count and bias against rotation plans.
      planned_copy_s += static_cast<double>(groups[v].bytes) / copy_out_bw;
      to_free = groups[v].bytes >= to_free ? 0 : to_free - groups[v].bytes;
    }

    // Fills + predicted accounting, relative to the profiled placement.
    for (std::size_t i = 0; i < refs.size(); ++i) {
      std::size_t g = refs[i];
      if (selected.count(g) == 0) {
        // Referenced here but not resident during this phase: if it was
        // resident when profiled, its speed is lost.
        if (profile_dram.count(g) != 0) predicted += benefits[i];
        continue;
      }
      if (profile_dram.count(g) == 0) predicted -= benefits[i];
      if (dram_set.count(g) == 0) {
        predicted += costs[i];
        planned_copy_s += static_cast<double>(groups[g].bytes) / copy_in_bw;
        for (const UnitRef& u : groups[g].units)
          plan.at_phase[triggers[i]].push_back(
              PlannedMigration{u, mem::Tier::kDram, triggers[i], p});
      }
    }

    dram_set = selected;
    dram_set.insert(survivors.begin(), survivors.end());
    for (std::size_t g : dram_set)
      for (const UnitRef& u : groups[g].units) plan.dram_sets[p].insert(u);
  }

  plan.predicted_iteration_s = predicted;
  return plan;
}

Plan Planner::plan_global(const Profiler& prof,
                          const std::vector<Group>& groups,
                          const GroupProfiles& gp) const {
  const std::size_t P = gp.size();
  Plan plan;
  plan.kind = Plan::Kind::kGlobal;
  plan.at_phase.assign(std::max<std::size_t>(P, 1), {});
  plan.dram_sets.assign(std::max<std::size_t>(P, 1), {});

  // All phases combined into one: aggregate benefit per group.
  std::map<std::size_t, double> benefit;
  for (std::size_t p = 0; p < P; ++p)
    for (const auto& [g, uprof] : gp[p]) benefit[g] += model_->benefit(uprof);

  const double copy_in_bw =
      registry_->hms().copy_bandwidth(mem::Tier::kNvm, mem::Tier::kDram);
  std::vector<std::size_t> refs;
  std::vector<KnapsackItem> items;
  for (const auto& [g, b] : benefit) {
    // One migration per run at most, usually overlapped; charge it once.
    double cost = group_in_dram(groups[g])
                      ? 0.0
                      : static_cast<double>(groups[g].bytes) / copy_in_bw;
    refs.push_back(g);
    items.push_back(KnapsackItem{b - cost, groups[g].bytes});
  }

  KnapsackSolver solver;
  KnapsackResult sel = solver.solve(items, opts_.dram_budget);
  std::set<std::size_t> selected;
  for (std::size_t idx : sel.selected) selected.insert(refs[idx]);

  double predicted = no_move_time(prof);
  // Make room first: evict residents that were not selected (enqueued at
  // phase 0, ahead of every fill in the FIFO).
  for (std::size_t g = 0; g < groups.size(); ++g)
    if (group_in_dram(groups[g]) && selected.count(g) == 0)
      for (const UnitRef& u : groups[g].units)
        plan.at_phase[0].push_back(PlannedMigration{u, mem::Tier::kNvm, 0, 0});
  // Fills trigger right after the group's last referencing phase so the
  // one-time migration overlaps the tail of the first enforcing iteration
  // instead of stalling its first phase.
  std::vector<double> phase_times;
  for (const auto& ph : prof.phases()) phase_times.push_back(ph.phase_time_s);
  // Symmetric accounting against the profiled placement: resident groups
  // that stay contribute no delta; evicted residents lose their speed.
  for (const auto& [g, b] : benefit)
    if (group_in_dram(groups[g]) && selected.count(g) == 0) predicted += b;
  for (std::size_t g : selected) {
    if (!group_in_dram(groups[g])) predicted -= benefit[g];
    if (!group_in_dram(groups[g])) {
      std::size_t first_ref = 0;
      for (std::size_t p = 0; p < P; ++p)
        if (gp[p].count(g) != 0) {
          first_ref = p;
          break;
        }
      std::size_t trigger = first_ref;
      std::size_t needed = first_ref;
      double window = overlap_window(gp, phase_times, first_ref, g, &trigger);
      if (opts_.dag != nullptr) {
        // The one-time fill may ride any non-referencing run of phases in
        // the cycle, not just the gap ending at the first reference: pick
        // the run that hides the most copy time (DAG-endorsed if one is).
        bool scheduled = false;
        const double copy_s =
            static_cast<double>(groups[g].bytes) / copy_in_bw;
        trigger = global_slack_trigger(gp, phase_times, g, first_ref, copy_s,
                                       &needed, &window, &scheduled);
        (scheduled ? plan.slack_scheduled : plan.fallback_triggers) += 1;
      }
      (void)window;
      for (const UnitRef& u : groups[g].units)
        plan.at_phase[trigger].push_back(
            PlannedMigration{u, mem::Tier::kDram, trigger, needed});
    }
  }
  for (std::size_t p = 0; p < plan.dram_sets.size(); ++p)
    for (std::size_t g : selected)
      for (const UnitRef& u : groups[g].units) plan.dram_sets[p].insert(u);

  plan.predicted_iteration_s = predicted;
  return plan;
}

Plan Planner::plan_tiered(const Profiler& prof,
                          const std::vector<Group>& groups,
                          const GroupProfiles& gp) const {
  const std::size_t P = gp.size();
  Plan plan;
  plan.kind = Plan::Kind::kTiered;
  plan.at_phase.assign(std::max<std::size_t>(P, 1), {});
  plan.dram_sets.assign(std::max<std::size_t>(P, 1), {});

  const mem::HeteroMemory& hms = registry_->hms();
  const std::size_t T = hms.num_tiers();
  const mem::Tier backstop = hms.backstop_tier();
  const mem::TierConfig& back_cfg = hms.tier_config(backstop);

  // Aggregated per-(group, tier) benefit over the whole iteration, every
  // tier scored against the backstop through the pairwise Eq. 2/3 forms
  // (the backstop's own column is 0 by construction).
  std::map<std::size_t, std::vector<double>> benefit;
  for (std::size_t p = 0; p < P; ++p)
    for (const auto& [g, uprof] : gp[p]) {
      auto [it, fresh] = benefit.emplace(g, std::vector<double>(T, 0.0));
      for (std::size_t k = 0; k + 1 < T; ++k)
        it->second[k] += model_->benefit_between(
            uprof, hms.tier_config(mem::tier(static_cast<int>(k))), back_cfg);
    }

  // A group's current tier: units move together, so a (transiently) mixed
  // group counts as its slowest member's.
  auto group_tier = [&](const Group& g) {
    int t = 0;
    for (const UnitRef& u : g.units)
      t = std::max(t, mem::tier_index(registry_->unit_tier(u)));
    return t;
  };

  // MCKP items: every referenced group chooses a tier; each weight nets the
  // one-time fill copy out of the benefit (charged once, exactly the global
  // search's accounting), and staying put is free.
  std::vector<std::size_t> refs;
  std::vector<MckpItem> items;
  for (const auto& [g, ben] : benefit) {
    const int cur = group_tier(groups[g]);
    MckpItem item;
    item.bytes = groups[g].bytes;
    item.weights.assign(T, 0.0);
    for (std::size_t k = 0; k < T; ++k) {
      double cost = 0;
      if (static_cast<int>(k) != cur)
        cost = static_cast<double>(groups[g].bytes) /
               hms.copy_bandwidth(mem::tier(cur), mem::tier(static_cast<int>(k)));
      item.weights[k] = ben[k] - cost;
    }
    refs.push_back(g);
    items.push_back(std::move(item));
  }

  std::vector<std::size_t> caps(T, KnapsackSolver::kUnbounded);
  for (std::size_t k = 0; k < opts_.tier_budgets.size() && k < T; ++k)
    caps[k] = opts_.tier_budgets[k];
  caps[T - 1] = KnapsackSolver::kUnbounded;  // the backstop absorbs the rest

  KnapsackSolver solver;
  const MckpResult sel = solver.solve_mckp(items, caps);

  auto first_ref = [&](std::size_t g) {
    for (std::size_t p = 0; p < P; ++p)
      if (gp[p].count(g) != 0) return p;
    return std::size_t{0};
  };

  double predicted = no_move_time(prof);
  // Unreferenced groups vacate constrained tiers (the global search's
  // eviction scan, generalized) so the chosen packing actually fits.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (benefit.count(g) != 0) continue;
    if (group_tier(groups[g]) != static_cast<int>(T) - 1)
      for (const UnitRef& u : groups[g].units)
        plan.at_phase[0].push_back(PlannedMigration{u, backstop, 0, 0});
  }
  // Demotions enqueue before promotions: the phase-0 FIFO batch frees
  // constrained space before filling it (same discipline as plan_global).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const std::size_t g = refs[i];
      const int cur = group_tier(groups[g]);
      const int to = sel.choice[i];
      if (to == cur) continue;
      if ((to > cur) != (pass == 0)) continue;
      for (const UnitRef& u : groups[g].units)
        plan.at_phase[0].push_back(
            PlannedMigration{u, mem::tier(to), 0, first_ref(g)});
      // Symmetric accounting against the profiled placement: moving from
      // `cur` to `to` changes the iteration by benefit lost minus the
      // (cost-netted) weight gained.
      predicted += benefit.at(g)[cur] - items[i].weights[to];
    }
  }
  for (std::size_t i = 0; i < refs.size(); ++i)
    if (sel.choice[i] == 0)
      for (std::size_t p = 0; p < plan.dram_sets.size(); ++p)
        for (const UnitRef& u : groups[refs[i]].units)
          plan.dram_sets[p].insert(u);

  plan.predicted_iteration_s = predicted;
  return plan;
}

Plan Planner::plan(const Profiler& prof) const {
  if (prof.phase_count() == 0) return Plan{};
  std::vector<Group> groups = build_groups();
  GroupProfiles gp = aggregate(prof, groups);
  if (!opts_.tier_budgets.empty()) return plan_tiered(prof, groups, gp);

  Plan best;
  best.predicted_iteration_s = no_move_time(prof);
  if (opts_.global_search) {
    Plan g = plan_global(prof, groups, gp);
    if (best.kind == Plan::Kind::kNone ||
        g.predicted_iteration_s < best.predicted_iteration_s)
      best = std::move(g);
  }
  if (opts_.local_search) {
    Plan l = plan_local(prof, groups, gp);
    // The local model credits overlap optimistically (the helper thread is
    // one serial engine and enforcement interleaving is imperfect), so a
    // rotation plan must beat the global plan by a clear margin before it
    // is adopted.
    double margin = l.migration_count() > best.migration_count() ? 0.70 : 1.0;
    if (best.kind == Plan::Kind::kNone ||
        l.predicted_iteration_s < margin * best.predicted_iteration_s)
      best = std::move(l);
  }
  return best;
}

}  // namespace unimem::rt
