#include "core/registry.h"

#include <cstring>
#include <new>
#include <stdexcept>

#include "common/units.h"

namespace unimem::rt {

Registry::Registry(mem::HeteroMemory* hms, mem::DramArbiter* arbiter)
    : hms_(hms), arbiter_(arbiter) {}

Registry::~Registry() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& obj : objects_) {
    if (!obj) continue;
    for (std::size_t i = 0; i < obj->chunk_count(); ++i) {
      Chunk& c = obj->chunk(i);
      if (c.data() != nullptr)
        release_in(c.current_tier(), c.data(), c.bytes);
    }
  }
}

void* Registry::allocate_in(mem::Tier t, std::size_t bytes) {
  // The arbiter meters constrained tiers only (tier 0 / DRAM on the paper's
  // 2-tier machine; every non-backstop tier on an N-tier one).
  if (arbiter_ != nullptr && arbiter_->constrains(mem::tier_index(t))) {
    if (!arbiter_->request_tier(mem::tier_index(t), bytes)) return nullptr;
    void* p = hms_->allocate(t, bytes);
    if (p == nullptr) arbiter_->release_tier(mem::tier_index(t), bytes);
    return p;
  }
  return hms_->allocate(t, bytes);
}

void Registry::release_in(mem::Tier t, void* p, std::size_t bytes) {
  hms_->deallocate(t, p);
  if (arbiter_ != nullptr) arbiter_->release_tier(mem::tier_index(t), bytes);
}

DataObject* Registry::create(const std::string& name, std::size_t bytes,
                             ObjectTraits traits, mem::Tier initial,
                             std::size_t chunk_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  auto id = static_cast<ObjectId>(objects_.size());
  auto obj = std::make_unique<DataObject>(id, name, bytes, traits);

  std::size_t n_chunks = 1;
  if (traits.chunkable && chunk_bytes > 0 && bytes > chunk_bytes)
    n_chunks = (bytes + chunk_bytes - 1) / chunk_bytes;

  std::size_t remaining = bytes;
  for (std::size_t i = 0; i < n_chunks; ++i) {
    std::size_t sz = n_chunks == 1
                         ? bytes
                         : std::min(remaining, (bytes + n_chunks - 1) / n_chunks);
    remaining -= sz;
    auto chunk = std::make_unique<Chunk>();
    chunk->bytes = align_up(sz, kCacheLine);
    void* p = allocate_in(initial, chunk->bytes);
    if (p == nullptr) {
      // Roll back everything allocated so far.
      for (std::size_t j = 0; j < obj->chunks_.size(); ++j) {
        Chunk& c = *obj->chunks_[j];
        unmap_unit(c);
        release_in(c.current_tier(), c.data(), c.bytes);
      }
      throw std::bad_alloc();
    }
    std::memset(p, 0, chunk->bytes);
    chunk->ptr.store(p, std::memory_order_release);
    chunk->tier.store(static_cast<int>(initial), std::memory_order_release);
    obj->chunks_.push_back(std::move(chunk));
    map_unit(*obj->chunks_.back(), UnitRef{id, static_cast<std::uint32_t>(i)});
  }

  objects_.push_back(std::move(obj));
  return objects_.back().get();
}

void Registry::destroy(ObjectId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& obj = objects_.at(id);
  if (!obj) return;
  for (std::size_t i = 0; i < obj->chunk_count(); ++i) {
    Chunk& c = obj->chunk(i);
    unmap_unit(c);
    release_in(c.current_tier(), c.data(), c.bytes);
  }
  obj.reset();
}

void Registry::add_alias(ObjectId id, void** alias) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& obj = objects_.at(id);
  obj->aliases_.push_back(alias);
  *alias = obj->chunk(0).data();
}

void Registry::map_unit(const Chunk& c, UnitRef ref) {
  auto lo = reinterpret_cast<std::uint64_t>(c.data());
  addr_map_.insert(lo, lo + c.bytes, ref);
  ++addr_version_;
}

void Registry::unmap_unit(const Chunk& c) {
  addr_map_.erase(reinterpret_cast<std::uint64_t>(c.data()));
  ++addr_version_;
}

bool Registry::migrate(UnitRef unit, mem::Tier to) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (objects_.at(unit.object)->chunk(unit.chunk).current_tier() == to)
      return true;
  }
  // The synchronous form is the split form with the copy done inline.
  std::optional<PendingCopy> pc = migrate_start(unit, to);
  if (!pc.has_value()) return false;
  std::memcpy(pc->dst, pc->src, pc->bytes);
  finish_migration(*pc);
  return true;
}

std::optional<Registry::PendingCopy> Registry::migrate_start(UnitRef unit,
                                                             mem::Tier to) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& obj = objects_.at(unit.object);
  Chunk& c = obj->chunk(unit.chunk);
  const mem::Tier from = c.current_tier();

  void* dst = allocate_in(to, c.bytes);
  if (dst == nullptr) return std::nullopt;

  PendingCopy pc;
  pc.unit = unit;
  pc.src = c.data();
  pc.dst = dst;
  pc.bytes = c.bytes;
  pc.from = from;

  unmap_unit(c);
  c.ptr.store(dst, std::memory_order_release);
  c.tier.store(static_cast<int>(to), std::memory_order_release);
  map_unit(c, unit);
  // Allowance accounting follows the decision, not the copy: the allowance
  // is a placement budget, and placement just changed.
  if (arbiter_ != nullptr) arbiter_->release_tier(mem::tier_index(from), c.bytes);

  if (unit.chunk == 0)
    for (void** a : obj->aliases_) *a = dst;
  return pc;
}

void Registry::finish_migration(const PendingCopy& c) {
  // Arena-only release (the arbiter part happened in migrate_start);
  // arenas carry their own locks, so the helper thread never contends
  // with registry users here.
  hms_->deallocate(c.from, c.src);
}

std::optional<UnitRef> Registry::attribute(std::uint64_t addr) const {
  std::lock_guard<std::mutex> lk(mu_);
  return addr_map_.find(addr);
}

std::uint64_t Registry::addr_version() const {
  std::lock_guard<std::mutex> lk(mu_);
  return addr_version_;
}

std::shared_ptr<const Registry::AddrSnapshot> Registry::addr_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (snapshot_version_ != addr_version_) {
    auto snap = std::make_shared<AddrSnapshot>();
    snap->reserve(addr_map_.size());
    addr_map_.for_each([&](std::uint64_t lo, std::uint64_t hi,
                           const UnitRef& u) {
      snap->push_back(AddrSpan{lo, hi, u});
    });
    snapshot_cache_ = std::move(snap);
    snapshot_version_ = addr_version_;
  }
  return snapshot_cache_;
}

DataObject* Registry::get(ObjectId id) {
  std::lock_guard<std::mutex> lk(mu_);
  return objects_.at(id).get();
}

const DataObject* Registry::get(ObjectId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return objects_.at(id).get();
}

DataObject* Registry::find(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& o : objects_)
    if (o && o->name() == name) return o.get();
  return nullptr;
}

std::size_t Registry::object_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (auto& o : objects_)
    if (o) ++n;
  return n;
}

std::size_t Registry::unit_bytes(UnitRef u) const {
  std::lock_guard<std::mutex> lk(mu_);
  return objects_.at(u.object)->chunk(u.chunk).bytes;
}

std::size_t Registry::try_unit_bytes(UnitRef u) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (u.object >= objects_.size() || !objects_[u.object]) return 0;
  const DataObject& obj = *objects_[u.object];
  if (u.chunk >= obj.chunk_count()) return 0;
  return obj.chunk(u.chunk).bytes;
}

std::vector<UnitRef> Registry::units_overlapping(std::uint64_t lo,
                                                 std::uint64_t hi) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<UnitRef> out;
  addr_map_.for_each_overlapping(lo, hi,
                                 [&](const UnitRef& u) { out.push_back(u); });
  return out;
}

mem::Tier Registry::unit_tier(UnitRef u) const {
  std::lock_guard<std::mutex> lk(mu_);
  return objects_.at(u.object)->chunk(u.chunk).current_tier();
}

std::vector<UnitRef> Registry::all_units() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<UnitRef> out;
  for (auto& o : objects_) {
    if (!o) continue;
    for (std::uint32_t c = 0; c < o->chunk_count(); ++c)
      out.push_back(UnitRef{o->id(), c});
  }
  return out;
}

std::size_t Registry::resident_bytes(mem::Tier t) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t sum = 0;
  for (auto& o : objects_) {
    if (!o) continue;
    for (std::uint32_t c = 0; c < o->chunk_count(); ++c)
      if (o->chunk(c).current_tier() == t) sum += o->chunk(c).bytes;
  }
  return sum;
}

}  // namespace unimem::rt
