#include "core/capi.h"

#include <memory>

namespace unimem {

namespace {
thread_local std::unique_ptr<rt::Runtime> g_runtime;
}  // namespace

rt::Runtime* unimem_init(rt::RuntimeOptions opts, mem::HeteroMemory* hms,
                         mem::DramArbiter* arbiter, mpi::Comm* comm) {
  g_runtime = std::make_unique<rt::Runtime>(opts, hms, arbiter, comm);
  return g_runtime.get();
}

void unimem_shutdown() { g_runtime.reset(); }

rt::Runtime* unimem_current() { return g_runtime.get(); }

void unimem_start() {
  if (g_runtime) g_runtime->start();
}

void unimem_end() {
  if (g_runtime) g_runtime->end();
}

rt::DataObject* unimem_malloc(const char* name, std::size_t bytes,
                              rt::ObjectTraits traits) {
  return g_runtime ? g_runtime->malloc_object(name, bytes, traits) : nullptr;
}

void unimem_free(rt::DataObject* obj) {
  if (g_runtime) g_runtime->free_object(obj);
}

}  // namespace unimem
