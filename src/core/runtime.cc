#include "core/runtime.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "trace/trace.h"

namespace unimem::rt {

Runtime::Runtime(RuntimeOptions opts, mem::HeteroMemory* hms,
                 mem::DramArbiter* arbiter, mpi::Comm* comm)
    : opts_(opts), hms_(hms), comm_(comm), profiler_(nullptr) {
  if (opts_.use_exact_cache)
    cache_ = std::make_unique<cache::ExactCache>(opts_.cache);
  else
    cache_ = std::make_unique<cache::AnalyticCache>(opts_.cache);

  registry_ = std::make_unique<Registry>(hms_, arbiter);
  profiler_ = Profiler(registry_.get());
  engine_ = std::make_unique<ExecEngine>(hms_, cache_.get(), opts_.timing);
  migrator_ = std::make_unique<MigrationEngine>(registry_.get());
  sampler_ = std::make_unique<perf::Sampler>(opts_.timing, opts_.sampler_seed);

  dram_budget_ = opts_.dram_budget;
  if (dram_budget_ == 0) {
    std::size_t node_allowance = arbiter != nullptr
                                     ? arbiter->allowance()
                                     : hms_->config().dram.capacity_bytes;
    dram_budget_ = node_allowance / std::max(1, opts_.ranks_per_node);
  }

  // unimem_init: one-time calibration (STREAM + pointer chase, §3.1.2).
  CalibrationOptions copts;
  copts.t1_percent = opts_.t1_percent;
  copts.t2_percent = opts_.t2_percent;
  model_params_ = calibrate(hms_->config(), *cache_, opts_.timing, copts);
  model_ = std::make_unique<PerformanceModel>(model_params_, hms_->config().dram,
                                              hms_->config().nvm);
  if (opts_.replan_epoch > 0 && opts_.enable_chunking) {
    // The controller re-scores at unit granularity, which equals the
    // planner's group granularity exactly when chunking is on; under the
    // chunking ablation a unit-level repair could split an all-or-nothing
    // object group, so the adaptive path stays off there.
    ReplanOptions ropts;
    ropts.drift_threshold = opts_.drift_threshold;
    ropts.drift_budget = opts_.drift_budget;
    ropts.dram_budget = dram_budget_;
    replanner_ = std::make_unique<ReplanController>(registry_.get(),
                                                    model_.get(), ropts);
  }
  if (opts_.profiler_mode == ProfilerMode::kSampled) {
    aggregator_ = std::make_unique<ProfileAggregator>();
    perf::AdaptiveRate::Options aopts;
    aopts.base_period = std::max<std::uint64_t>(1, opts_.sample_period_mult);
    aopts.max_period = opts_.sample_period_max;
    aopts.high_watermark = opts_.sample_high_watermark;
    aopts.low_watermark = opts_.sample_low_watermark;
    aopts.enabled = opts_.adaptive_sampling;
    adaptive_rate_ = std::make_unique<perf::AdaptiveRate>(aopts);
  }
  if (comm_ != nullptr) comm_->set_hooks(this);

  // The Runtime is constructed on its rank's thread (see run_once): name
  // that thread's trace track after the rank so the exported timeline
  // reads "rank 0", "rank 1", ... top to bottom.
  if (trace::on()) {
    const int rank = comm_ != nullptr ? comm_->rank() : 0;
    trace::set_thread_track("rank " + std::to_string(rank), rank);
  }
}

Runtime::~Runtime() {
  if (comm_ != nullptr) comm_->set_hooks(nullptr);
}

clk::VirtualClock& Runtime::clock() {
  return comm_ != nullptr ? comm_->clock() : own_clock_;
}
const clk::VirtualClock& Runtime::clock() const {
  return comm_ != nullptr ? comm_->clock() : own_clock_;
}

void Runtime::charge_overhead(double seconds) {
  overhead_s_ += seconds;
  clock().advance(seconds);
}

// ---------------------------------------------------------------------------
// Allocation API

DataObject* Runtime::malloc_object(const std::string& name, std::size_t bytes,
                                   ObjectTraits traits) {
  // All data objects start in NVM by default (§3.2); initial placement
  // promotes the hottest ones at unimem_start.  Chunk layout is policy-
  // invariant (see chunk_bytes_for); enable_chunking only controls whether
  // the planner may place chunks independently.
  std::size_t cb = opts_.chunk_bytes != 0
                       ? (traits.chunkable && bytes > kChunkThreshold
                              ? opts_.chunk_bytes
                              : 0)
                       : chunk_bytes_for(traits.chunkable, bytes);
  // Allocation mutates the backstop arena (NVM on the 2-tier machine):
  // zombie blocks of in-flight fills must land first so the chosen offsets
  // stay in decision order.
  const mem::Tier backstop = hms_->backstop_tier();
  migrator_->quiesce(backstop);
  DataObject* obj = registry_->create(name, bytes, traits, backstop, cb);
  // Raw app accesses (checksum taps, fill patterns) go through
  // chunk_span(); fence them against the migration helper so the app
  // never reads or writes a chunk mid-copy.  Virtual time is not charged:
  // the modeled cost of these taps stays inside the declared phases.
  obj->set_access_fence([this](const DataObject& o, std::size_t chunk) {
    migrator_->wait_for(UnitRef{o.id(), static_cast<std::uint32_t>(chunk)});
  });
  return obj;
}

void Runtime::free_object(DataObject* obj) {
  if (obj == nullptr) return;
  // The blocks return to the arenas: every physical copy still in flight
  // must land first — copies of this object for payload safety, and any
  // zombie source block so the free-list mutations stay in decision
  // order.  No virtual-time charge: frees sit outside the declared
  // phases, like the raw access taps.
  migrator_->quiesce_all();
  registry_->destroy(obj->id());
}

void Runtime::add_alias(DataObject* obj, void** alias) {
  registry_->add_alias(obj->id(), alias);
}

// ---------------------------------------------------------------------------
// Initial data placement (§3.2)

void Runtime::apply_initial_placement() {
  // Rank objects by the compiler-style symbolic reference estimate and
  // greedily promote the most-referenced ones, subject to the DRAM budget.
  struct Cand {
    UnitRef unit;
    double refs;
    std::size_t bytes;
  };
  std::vector<Cand> cands;
  for (const UnitRef& u : registry_->all_units()) {
    const DataObject* obj = registry_->get(u.object);
    if (obj == nullptr) continue;
    double est = obj->traits().estimated_references;
    if (est < 0) continue;  // unknown before the main loop: stays in NVM
    // Spread the estimate across chunks.
    cands.push_back(Cand{u, est / static_cast<double>(obj->chunk_count()),
                         registry_->unit_bytes(u)});
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) { return a.refs > b.refs; });
  std::size_t used = registry_->resident_bytes(mem::Tier::kDram);
  for (const Cand& c : cands) {
    if (c.refs <= 0) break;
    if (used + c.bytes > dram_budget_) continue;
    if (registry_->migrate(c.unit, mem::Tier::kDram)) used += c.bytes;
  }
}

// ---------------------------------------------------------------------------
// Loop lifecycle

void Runtime::start() {
  started_ = true;
  if (opts_.enable_initial_placement) apply_initial_placement();
  mode_ = Mode::kProfiling;
  profiler_.begin_iteration();
  profile_iters_in_row_ = 0;
  iteration_ = 0;
  phase_idx_ = 0;
  open_phase();
}

void Runtime::iteration_begin() {
  if (!started_) {
    start();
    return;
  }
  if (iteration_ == 0 && phases_executed_ == 0) {
    // First call right after start(): nothing to close yet.
    return;
  }
  // Close the tail phase of the previous iteration.
  close_phase(false, 0.0);
  // Sampled tier: the iteration boundary is the drain barrier — results
  // land in the Profiler and the adaptive rate steps, both on the rank
  // thread at this fixed point (deterministic regardless of when the
  // aggregation thread actually ran).
  flush_sampled_profile();
  // Slack mode: refresh the phase DAG from the iteration just closed.
  // Must run at this unconditional point — it contains collectives, and
  // ranks' mode/drift decisions below may diverge.
  update_phase_dag();

  if (mode_ == Mode::kProfiling &&
      ++profile_iters_in_row_ < std::max(1, opts_.profile_iterations)) {
    // Keep profiling: "a few invocations of each phase" average out the
    // sampling noise of any single iteration.
  } else if (mode_ == Mode::kProfiling) {
    make_plan();
    mode_ = Mode::kEnforcing;
    enforce_iters_since_plan_ = 0;
  } else if (epoch_profiling_) {
    // The epoch re-profiling iteration just ended (the plan was enforced
    // throughout): let the controller keep/repair/re-solve from the drift.
    epoch_profiling_ = false;
    ++enforce_iters_since_plan_;
    finish_epoch_check();
  } else if (reprofile_requested_) {
    // Variation detected (>10%): re-profile this iteration, re-plan after.
    profiler_.begin_iteration();
    mode_ = Mode::kProfiling;
    reprofile_requested_ = false;
    profile_iters_in_row_ = 0;
    ++reprofiles_;
  } else {
    ++enforce_iters_since_plan_;
    if (replanner_ != nullptr &&
        enforce_iters_since_plan_ % opts_.replan_epoch == 0) {
      // Epoch due: sample the coming iteration without dropping the plan.
      profiler_.begin_iteration();
      epoch_profiling_ = true;
    }
  }

  prev_phase_times_ = std::move(cur_phase_times_);
  cur_phase_times_.clear();
  cur_phase_kinds_.clear();
  ++iteration_;
  phase_idx_ = 0;
  if (mode_ == Mode::kEnforcing) enqueue_phase_migrations(0);
  open_phase();
}

void Runtime::end() {
  close_phase(false, 0.0);
  flush_sampled_profile();
  double done_vt = migrator_->drain();
  double waited = clock().wait_until(done_vt);
  migrator_->add_exposed_wait(waited);
  end_vt_ = clock().now();
  mode_ = Mode::kIdle;
  started_ = false;
}

// ---------------------------------------------------------------------------
// Phase machinery

void Runtime::open_phase() {
  phase_open_vt_ = clock().now();
  phase_compute_s_ = 0;
  phase_windows_.clear();
  UNIMEM_TRACE_BEGIN2("runtime", "phase", phase_open_vt_, "iter", iteration_,
                      "phase", phase_idx_);
}

void Runtime::close_phase(bool is_comm, double comm_time) {
  const double phase_time = clock().now() - phase_open_vt_;
  UNIMEM_TRACE_END2("runtime", "phase", clock().now(), "is_comm",
                    is_comm ? 1 : 0, "phase", phase_idx_);
  (void)comm_time;
  ++phases_executed_;
  cur_phase_times_.push_back(phase_time);
  cur_phase_kinds_.push_back(is_comm ? 1 : 0);

  if (mode_ == Mode::kProfiling || epoch_profiling_) {
    if (is_comm) {
      profiler_.record_comm_phase(phase_time);
    } else if (aggregator_ != nullptr) {
      // Sampled tier: gate the capture on a per-(rank, phase, epoch)
      // seeded schedule, charge only the cheap on-thread cost, and defer
      // attribution to the aggregation thread against the phase's own
      // address-map snapshot.
      perf::SampledConfig scfg;
      scfg.period = adaptive_rate_->period();
      scfg.seed = perf::schedule_seed(opts_.sampler_seed,
                                      comm_ != nullptr ? comm_->rank() : 0,
                                      phase_idx_, iteration_);
      perf::PhaseSamples samples = sampler_->sample_phase(
          phase_windows_, phase_compute_s_, phase_time, scfg);
      profile_samples_ += samples.total_samples;
      charge_overhead(static_cast<double>(samples.miss_addresses.size()) *
                      opts_.overhead_per_sample_sampled_s);
      ProfileAggregator::Batch b;
      b.slot = profiler_.record_phase_pending(phase_time);
      b.phase_time_s = phase_time;
      b.snapshot = registry_->addr_snapshot();
      b.samples = std::move(samples);
      aggregator_->submit(std::move(b));
      batches_pending_ = true;
    } else {
      perf::PhaseSamples samples =
          sampler_->sample_phase(phase_windows_, phase_compute_s_, phase_time);
      charge_overhead(static_cast<double>(samples.miss_addresses.size()) *
                      opts_.overhead_per_sample_s);
      profiler_.record_phase(samples, phase_time);
    }
  }
  if (mode_ == Mode::kEnforcing) {
    charge_overhead(opts_.overhead_per_phase_s);
    // Variation monitor (§3.2): compare with the same phase last iteration.
    // With the adaptive controller armed, the epoch cadence owns the drift
    // response (a monitor-triggered full re-profile would fight it).
    std::size_t idx = cur_phase_times_.size() - 1;
    if (replanner_ == nullptr && enforce_iters_since_plan_ >= 3 &&
        idx < prev_phase_times_.size()) {
      double prev = prev_phase_times_[idx];
      if (prev > 0 &&
          std::abs(phase_time - prev) > opts_.reprofile_threshold * prev)
        reprofile_requested_ = true;
    }
  }
}

void Runtime::enqueue_phase_migrations(std::size_t phase_idx) {
  if (plan_.kind == Plan::Kind::kNone) return;
  if (phase_idx >= plan_.at_phase.size()) return;
  // One FIFO batch per trigger phase: a fill whose space is freed by a
  // later eviction of the same batch self-corrects inside the batch.
  std::vector<MigrationEngine::Item> batch;
  batch.reserve(plan_.at_phase[phase_idx].size());
  for (const PlannedMigration& m : plan_.at_phase[phase_idx]) {
    charge_overhead(opts_.overhead_per_phase_s);
    batch.push_back(MigrationEngine::Item{m.unit, m.to, clock().now()});
  }
  if (!batch.empty()) migrator_->enqueue_batch(batch);
}

void Runtime::phase_boundary() {
  close_phase(false, 0.0);
  ++phase_idx_;
  if (mode_ == Mode::kEnforcing) enqueue_phase_migrations(phase_idx_);
  open_phase();
}

void Runtime::wait_for_buffer(const void* buf, std::size_t bytes) {
  if (buf == nullptr || bytes == 0) return;
  const auto lo = reinterpret_cast<std::uint64_t>(buf);
  for (const UnitRef& u : registry_->units_overlapping(lo, lo + bytes)) {
    double done_vt = migrator_->wait_for(u);
    double waited = clock().wait_until(done_vt);
    if (waited > 0) migrator_->add_exposed_wait(waited);
  }
}

void Runtime::on_pre_op(const mpi::OpInfo& info) {
  if (!started_) return;
  // Correctness mirror of compute(): minimpi is about to memcpy the op's
  // buffers, so any in-flight migration of their owning units must finish
  // first (otherwise the helper thread's copy races the op).  Applies to
  // non-blocking calls too — an eager isend reads its payload right away.
  wait_for_buffer(info.read_buf, info.read_bytes);
  wait_for_buffer(info.write_buf, info.write_bytes);
  if (!info.blocking) return;
  // The blocking MPI call ends the computation phase and is itself a
  // communication phase.  The comm phase's own planned migrations are NOT
  // enqueued here: the helper could start copying a unit while the op
  // memcpys the same buffer (the wait above only covers already-enqueued
  // work).  They are issued in on_post_op, once the op's copies are done.
  close_phase(false, 0.0);
  ++phase_idx_;
  open_phase();
}

void Runtime::on_post_op(const mpi::OpInfo& info) {
  if (!started_ || !info.blocking) return;
  close_phase(true, 0.0);
  ++phase_idx_;
  if (mode_ == Mode::kEnforcing) {
    enqueue_phase_migrations(phase_idx_ - 1);  // deferred from on_pre_op
    enqueue_phase_migrations(phase_idx_);
  }
  open_phase();
}

// ---------------------------------------------------------------------------
// Compute

void Runtime::compute(const PhaseWork& work) {
  // Correctness: a phase must not run while its objects are in flight.
  // Wait for any outstanding migration of units this work touches; the
  // remainder of the copy is the exposed (non-overlapped) cost.
  for (const ObjectAccess& a : work.accesses) {
    if (a.object == nullptr) continue;
    for (std::uint32_t c = 0; c < a.object->chunk_count(); ++c) {
      double done_vt = migrator_->wait_for(UnitRef{a.object->id(), c});
      double waited = clock().wait_until(done_vt);
      if (waited > 0) migrator_->add_exposed_wait(waited);
    }
  }

  PhaseExec exec = engine_->run(work);
  clock().advance(exec.total_s());
  phase_compute_s_ += exec.compute_s;
  if (mode_ == Mode::kProfiling || epoch_profiling_)
    phase_windows_.insert(phase_windows_.end(), exec.windows.begin(),
                          exec.windows.end());
}

// ---------------------------------------------------------------------------
// Planning

void Runtime::flush_sampled_profile() {
  if (aggregator_ == nullptr || !batches_pending_) return;
  batches_pending_ = false;
  UNIMEM_TRACE_BEGIN("profiler", "drain", clock().now());
  std::vector<ProfileAggregator::SlotProfile> results = aggregator_->drain();
  UNIMEM_TRACE_END1("profiler", "drain", clock().now(), "batches",
                    results.size());
  std::uint64_t attributed = 0;
  for (auto& r : results) {
    attributed += r.attributed;
    profiler_.fill_phase(r.slot, std::move(r.units));
  }
  profile_attributed_ += attributed;
  adaptive_rate_->observe_iteration(attributed, results.size());
}

void Runtime::update_phase_dag() {
  if (opts_.dag_schedule != DagSchedule::kSlack) return;
  if (cur_phase_times_.empty()) return;
  std::vector<std::vector<double>> durations;
  std::vector<std::vector<char>> kinds;
  if (comm_ == nullptr || comm_->size() == 1) {
    durations.push_back(cur_phase_times_);
    kinds.push_back(cur_phase_kinds_);
  } else {
    // Symmetric exchange: every rank contributes its per-phase durations
    // and kinds.  The internal collectives must not read as application
    // phases, so the PMPI hooks are suppressed for their duration.
    const int R = comm_->size();
    const int rank = comm_->rank();
    comm_->set_hooks(nullptr);
    std::uint64_t pmax = cur_phase_times_.size();
    comm_->allreduce(&pmax, 1, mpi::ReduceOp::kMax);
    const std::size_t P = static_cast<std::size_t>(pmax);
    std::vector<double> flat(static_cast<std::size_t>(R) * P, 0.0);
    std::vector<std::uint64_t> kflat(static_cast<std::size_t>(R) * P, 0);
    for (std::size_t p = 0; p < cur_phase_times_.size() && p < P; ++p) {
      flat[static_cast<std::size_t>(rank) * P + p] = cur_phase_times_[p];
      kflat[static_cast<std::size_t>(rank) * P + p] =
          p < cur_phase_kinds_.size() && cur_phase_kinds_[p] != 0 ? 1 : 0;
    }
    comm_->allreduce(flat.data(), flat.size(), mpi::ReduceOp::kSum);
    comm_->allreduce(kflat.data(), kflat.size(), mpi::ReduceOp::kMax);
    comm_->set_hooks(this);
    durations.assign(static_cast<std::size_t>(R), {});
    kinds.assign(static_cast<std::size_t>(R), {});
    for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r)
      for (std::size_t p = 0; p < P; ++p) {
        durations[r].push_back(flat[r * P + p]);
        kinds[r].push_back(kflat[r * P + p] != 0 ? 1 : 0);
      }
  }
  dag_ = PhaseDag::from_profile(durations, kinds);
  if (dag_.compute()) {
    dag_ready_ = true;
    ++dag_builds_;
    UNIMEM_TRACE_INSTANT1("runtime", "dag.build", clock().now(), "nodes",
                          dag_.nodes().size());
  }
}

void Runtime::make_plan() {
  flush_sampled_profile();  // defensive: fold must see completed profiles
  UNIMEM_TRACE_BEGIN1("runtime", "plan.solve", clock().now(), "iter",
                      iteration_);
  profiler_.fold(static_cast<std::size_t>(std::max(1, profile_iters_in_row_)));
  PlannerOptions popts;
  popts.local_search = opts_.enable_local_search;
  popts.global_search = opts_.enable_global_search;
  popts.chunking = opts_.enable_chunking;
  popts.dram_budget = dram_budget_;
  if (opts_.dag_schedule == DagSchedule::kSlack && dag_ready_) {
    popts.dag = &dag_;
    popts.rank = comm_ != nullptr ? comm_->rank() : 0;
  }
  if (hms_->num_tiers() > 2) {
    // N-tier machine: hand the planner this rank's share of every
    // constrained tier and let the multiple-choice search place across the
    // ladder.  (Never set on 2-tier, keeping the classic searches
    // byte-identical.)
    const mem::DramArbiter* arb = registry_->arbiter();
    popts.tier_budgets.assign(hms_->num_tiers(),
                              KnapsackSolver::kUnbounded);
    for (std::size_t k = 0; k + 1 < hms_->num_tiers(); ++k) {
      const int ki = static_cast<int>(k);
      const std::size_t node_cap =
          arb != nullptr && arb->constrains(ki)
              ? arb->allowance_tier(ki)
              : hms_->tier_config(mem::tier(ki)).capacity_bytes;
      popts.tier_budgets[k] = node_cap / std::max(1, opts_.ranks_per_node);
    }
  }
  Planner planner(registry_.get(), model_.get(), popts);
  plan_ = planner.plan(profiler_);
  if (!opts_.proactive_migration) {
    // Ablation: synchronous migration — move everything at the phase that
    // needs it, nothing is overlapped.
    std::vector<std::vector<PlannedMigration>> sync(plan_.at_phase.size());
    for (const auto& v : plan_.at_phase)
      for (PlannedMigration m : v) {
        m.trigger_phase = m.needed_phase;
        sync[m.needed_phase].push_back(m);
      }
    plan_.at_phase = std::move(sync);
  }
  std::size_t items = 0;
  for (const auto& ph : profiler_.phases()) items += ph.units.size();
  charge_overhead(opts_.overhead_plan_fixed_s +
                  static_cast<double>(items) * opts_.overhead_per_plan_item_s);
  if (replanner_ != nullptr) replanner_->observe(profiler_);
  UNIMEM_TRACE_END2("runtime", "plan.solve", clock().now(), "migrations",
                    plan_.migration_count(), "kind",
                    static_cast<int>(plan_.kind));
  Log::info("rank plan: kind=%d migrations/iter=%zu predicted=%.3fms",
            static_cast<int>(plan_.kind), plan_.migration_count(),
            plan_.predicted_iteration_s * 1e3);
}

void Runtime::finish_epoch_check() {
  flush_sampled_profile();  // defensive: decide() must see completed profiles
  ++replan_checks_;
  // Slack mode: only drift referenced in a critical-path phase justifies a
  // repair; off-path drift stays on the cheap keep-stale path.
  std::set<std::size_t> critical;
  const std::set<std::size_t>* critical_ptr = nullptr;
  if (opts_.dag_schedule == DagSchedule::kSlack && dag_ready_) {
    critical = dag_.critical_phases(comm_ != nullptr ? comm_->rank() : 0);
    critical_ptr = &critical;
  }
  ReplanDecision d = replanner_->decide(profiler_, critical_ptr);
  dag_offpath_drift_ += d.drift.off_path;
  last_drift_fraction_ = d.drift.drift_fraction();
  UNIMEM_TRACE_INSTANT2("replan", "decision", clock().now(), "path",
                        static_cast<int>(d.path), "drifted", d.drift.drifted);
  switch (d.path) {
    case ReplanDecision::Path::kFullSolve:
      ++full_replans_;
      // The epoch profile is a single iteration; make_plan folds by the
      // recorded row count.
      profile_iters_in_row_ = 1;
      make_plan();
      enforce_iters_since_plan_ = 0;
      break;
    case ReplanDecision::Path::kIncremental:
      ++incremental_repairs_;
      plan_ = std::move(d.plan);
      // Only the drifted items were re-scored: charge the bounded repair,
      // not a full planning pass over every (unit, phase) profile.
      charge_overhead(opts_.overhead_plan_fixed_s +
                      static_cast<double>(d.drift.drifted) *
                          opts_.overhead_per_plan_item_s);
      replanner_->observe(profiler_);
      enforce_iters_since_plan_ = 0;
      break;
    case ReplanDecision::Path::kKeepStale:
      // Plan unchanged; refresh the drift baseline so slow creep is
      // measured against the latest accepted weights.
      replanner_->observe(profiler_);
      break;
  }
  Log::info("replan check: drift=%.3f (%zu/%zu) path=%d",
            d.drift.drift_fraction(), d.drift.drifted, d.drift.tracked,
            static_cast<int>(d.path));
}

// ---------------------------------------------------------------------------
// Stats

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  s.migration = migrator_->stats();
  s.overhead_s = overhead_s_;
  s.total_time_s = end_vt_ > 0 ? end_vt_ : clock().now();
  s.phases_executed = phases_executed_;
  s.iterations = iteration_ + (phases_executed_ > 0 ? 1 : 0);
  s.reprofiles = reprofiles_;
  s.plan_kind = plan_.kind;
  s.planned_migrations_per_iteration = plan_.migration_count();
  s.replan_checks = replan_checks_;
  s.incremental_repairs = incremental_repairs_;
  s.full_replans = full_replans_;
  s.last_drift_fraction = last_drift_fraction_;
  s.profile_samples = profile_samples_;
  s.profile_attributed = profile_attributed_;
  s.sample_period_mult = adaptive_rate_ != nullptr ? adaptive_rate_->period() : 0;
  s.dag_critical_path_s = dag_ready_ ? dag_.critical_path_s() : 0.0;
  s.dag_builds = dag_builds_;
  s.dag_slack_scheduled = plan_.slack_scheduled;
  s.dag_fallback_triggers = plan_.fallback_triggers;
  s.dag_offpath_drift = dag_offpath_drift_;
  return s;
}

}  // namespace unimem::rt
