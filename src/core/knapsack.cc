#include "core/knapsack.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace unimem::rt {

namespace {

/// Quantized size in granules, rounded up (an item must fully fit).
std::size_t granules(std::size_t bytes, std::size_t granule) {
  return (bytes + granule - 1) / granule;
}

/// Dense-DP size guard: past this many table cells the pseudo-polynomial
/// DP stops being "lightweight enough to run online" (paper §3.1.3) and
/// the solver switches to the bounded-approximation path.
constexpr std::size_t kDenseDpCellBudget = std::size_t{1} << 25;

}  // namespace

bool KnapsackSolver::prefilter(const std::vector<KnapsackItem>& items,
                               std::size_t cap,
                               std::vector<std::size_t>* cand,
                               std::vector<std::size_t>* gsz,
                               KnapsackResult* out) const {
  // Candidates: positive weight, fits at all.  Track quantized sizes once.
  std::size_t total_g = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight <= 0) continue;
    const std::size_t g = granules(items[i].bytes, granule_);
    if (g > cap) continue;
    cand->push_back(i);
    gsz->push_back(g);
    total_g += g;
  }
  if (cand->empty()) return true;

  // Pre-clamp: nothing above the candidates' total quantized size is
  // reachable, and when everything fits there is nothing to optimize.
  if (total_g <= cap) {
    for (std::size_t i : *cand) {
      out->selected.push_back(i);
      out->total_weight += items[i].weight;
      out->total_bytes += items[i].bytes;
    }
    std::sort(out->selected.begin(), out->selected.end());
    return true;
  }
  return false;
}

KnapsackResult KnapsackSolver::solve(const std::vector<KnapsackItem>& items,
                                     std::size_t capacity_bytes) const {
  KnapsackResult out;
  std::size_t cap = capacity_bytes / granule_;
  if (cap == 0 || items.empty()) return out;

  std::vector<std::size_t> cand;
  std::vector<std::size_t> gsz;
  if (prefilter(items, cap, &cand, &gsz, &out)) return out;

  auto take = [&](std::size_t ci) {
    out.selected.push_back(cand[ci]);
    out.total_weight += items[cand[ci]].weight;
    out.total_bytes += items[cand[ci]].bytes;
  };

  const std::size_t n = cand.size();
  if (n * (cap + 1) > kDenseDpCellBudget)
    return solve_bounded(items, cand, gsz, cap);

  // Rolling 1-D DP over capacity; decisions go into a flat bit matrix
  // (row per item) so the selection can be reconstructed without the 2-D
  // value table.
  const std::size_t stride = (cap + 1 + 63) / 64;
  std::vector<double> best(cap + 1, 0.0);
  std::vector<std::uint64_t> taken(n * stride, 0);
  // Per-row capacity clamp: items 0..i cannot fill more than their summed
  // granules hi[i], so cells above hi[i] are never materialized.  The
  // invariant is that after row i, best[0..hi[i]] holds the exact optima;
  // a read that would land above a row's clamp is answered by best[hi[i]]
  // (the optimum is constant up there).
  std::vector<std::size_t> hi(n);
  std::size_t prev = 0;  // hi of the previous row
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = gsz[i];
    const double w = items[cand[i]].weight;
    hi[i] = std::min(cap, prev + g);
    std::uint64_t* row = &taken[i * stride];
    // Cells in (prev, hi[i]] were unreachable before this row: the
    // not-take value is best[prev], and they must be materialized so later
    // rows read correct carries.
    const double keep = best[prev];
    // Newly reachable cells the item itself cannot occupy (c < g) still
    // carry the previous row's plateau value.
    for (std::size_t c = std::min(hi[i], g - 1); c > prev; --c) best[c] = keep;
    const std::size_t lo_upper = std::max(prev + 1, g);
    for (std::size_t c = hi[i]; c >= lo_upper; --c) {
      const double with = best[c - g] + w;
      if (with > keep) {
        best[c] = with;
        row[c >> 6] |= std::uint64_t{1} << (c & 63);
      } else {
        best[c] = keep;
      }
      if (c == lo_upper) break;  // avoid size_t underflow
    }
    // Classic in-place sweep for the cells both rows can reach.
    for (std::size_t c = std::min(prev, hi[i]); c >= g; --c) {
      const double with = best[c - g] + w;
      if (with > best[c]) {
        best[c] = with;
        row[c >> 6] |= std::uint64_t{1} << (c & 63);
      }
      if (c == g) break;  // avoid size_t underflow
    }
    prev = hi[i];
  }

  // Reconstruct.
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    c = std::min(c, hi[i]);
    if ((taken[i * stride + (c >> 6)] >> (c & 63)) & 1) {
      take(i);
      c -= gsz[i];
    }
  }
  std::sort(out.selected.begin(), out.selected.end());
  return out;
}

KnapsackResult KnapsackSolver::solve_bounded(
    const std::vector<KnapsackItem>& items, std::size_t capacity_bytes) const {
  KnapsackResult out;
  const std::size_t cap = capacity_bytes / granule_;
  if (cap == 0 || items.empty()) return out;

  std::vector<std::size_t> cand;
  std::vector<std::size_t> gsz;
  if (prefilter(items, cap, &cand, &gsz, &out)) return out;
  return solve_bounded(items, cand, gsz, cap);
}

KnapsackResult KnapsackSolver::solve_bounded(
    const std::vector<KnapsackItem>& items,
    const std::vector<std::size_t>& cand, const std::vector<std::size_t>& gsz,
    std::size_t cap) const {
  // Density greedy on the quantized sizes (so the capacity accounting is
  // identical to the DP's), refined with the best single candidate: the
  // better of the two is a 1/2-approximation of the DP optimum.
  std::vector<std::size_t> order(cand.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return items[cand[a]].weight * static_cast<double>(gsz[b]) >
           items[cand[b]].weight * static_cast<double>(gsz[a]);
  });

  KnapsackResult out;
  std::size_t used = 0;
  std::size_t best_single = order[0];
  for (std::size_t ci : order) {
    if (items[cand[ci]].weight > items[cand[best_single]].weight)
      best_single = ci;
    if (used + gsz[ci] > cap) continue;
    used += gsz[ci];
    out.selected.push_back(cand[ci]);
    out.total_weight += items[cand[ci]].weight;
    out.total_bytes += items[cand[ci]].bytes;
  }
  if (items[cand[best_single]].weight > out.total_weight) {
    out = KnapsackResult{};
    out.selected.push_back(cand[best_single]);
    out.total_weight = items[cand[best_single]].weight;
    out.total_bytes = items[cand[best_single]].bytes;
  }
  std::sort(out.selected.begin(), out.selected.end());
  return out;
}

MckpResult KnapsackSolver::solve_mckp(
    const std::vector<MckpItem>& items,
    const std::vector<std::size_t>& capacities) const {
  const std::size_t K = capacities.size();
  if (K == 0)
    throw std::invalid_argument("solve_mckp: empty capacity vector");
  std::vector<int> unbounded;
  std::vector<int> constrained;
  for (std::size_t k = 0; k < K; ++k) {
    if (capacities[k] == kUnbounded)
      unbounded.push_back(static_cast<int>(k));
    else
      constrained.push_back(static_cast<int>(k));
  }
  if (unbounded.empty())
    throw std::invalid_argument(
        "solve_mckp: at least one tier must be kUnbounded (the backstop)");
  for (const MckpItem& it : items)
    if (it.weights.size() != K)
      throw std::invalid_argument(
          "solve_mckp: item weight arity != tier count");

  MckpResult out;
  const std::size_t n = items.size();
  out.choice.assign(n, 0);

  // Baseline: every item takes its best unbounded tier (any other
  // unbounded choice is dominated, so the DP never needs to consider it).
  std::vector<int> best_u(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    int best = unbounded.front();
    for (int k : unbounded)
      if (items[i].weights[k] > items[i].weights[best]) best = k;
    best_u[i] = best;
    out.choice[i] = best;
  }

  auto finish = [&] {
    out.total_weight = 0;
    for (std::size_t i = 0; i < n; ++i)
      out.total_weight += items[i].weights[out.choice[i]];
    return out;
  };
  if (constrained.empty() || n == 0) return finish();

  // Quantize once; the per-dimension caps are pre-clamped to the total
  // quantized size exactly like the 0-1 path's capacity pre-clamp.
  std::vector<std::size_t> gsz(n);
  std::size_t total_g = 0;
  for (std::size_t i = 0; i < n; ++i) {
    gsz[i] = granules(items[i].bytes, granule_);
    total_g += gsz[i];
  }
  const std::size_t m = constrained.size();
  std::vector<std::size_t> cap(m);
  for (std::size_t j = 0; j < m; ++j)
    cap[j] = std::min(capacities[constrained[j]] / granule_, total_g);

  // Dense-DP budget: n x prod(cap_j + 1) cells, overflow-safely.
  bool dense = true;
  std::size_t P = 1;
  for (std::size_t j = 0; j < m && dense; ++j) {
    if (P > kDenseDpCellBudget / (cap[j] + 1)) dense = false;
    else P *= cap[j] + 1;
  }
  if (dense && P > kDenseDpCellBudget / n) dense = false;

  if (!dense) {
    // Waterfall fallback: fill constrained tiers in index order through the
    // bounded 0-1 path, each pass scoring still-unassigned items by their
    // marginal weight over their best unbounded choice.
    std::vector<char> assigned(n, 0);
    for (std::size_t j = 0; j < m; ++j) {
      const int tier = constrained[j];
      std::vector<KnapsackItem> sub;
      std::vector<std::size_t> map;
      for (std::size_t i = 0; i < n; ++i) {
        if (assigned[i]) continue;
        sub.push_back(KnapsackItem{
            items[i].weights[tier] - items[i].weights[best_u[i]],
            items[i].bytes});
        map.push_back(i);
      }
      const KnapsackResult r = solve_bounded(sub, capacities[tier]);
      for (std::size_t s : r.selected) {
        out.choice[map[s]] = tier;
        assigned[map[s]] = 1;
      }
    }
    return finish();
  }

  // Exact multi-dimensional DP: two rolling value arrays over the
  // flattened product of constrained-tier granule capacities, plus a
  // per-item pick table for reconstruction (-1 = best unbounded choice,
  // j = constrained dimension j).
  std::vector<std::size_t> stride(m, 1);
  for (std::size_t j = 1; j < m; ++j) stride[j] = stride[j - 1] * (cap[j - 1] + 1);

  std::vector<double> prev(P, 0.0);
  std::vector<double> next(P, 0.0);
  std::vector<std::int8_t> pick(n * P, -1);
  std::vector<std::size_t> coord(m, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double wu = items[i].weights[best_u[i]];
    std::fill(coord.begin(), coord.end(), 0);
    for (std::size_t idx = 0; idx < P; ++idx) {
      double best = prev[idx] + wu;
      std::int8_t pk = -1;
      for (std::size_t j = 0; j < m; ++j) {
        if (coord[j] < gsz[i]) continue;
        const double v = prev[idx - gsz[i] * stride[j]] +
                         items[i].weights[constrained[j]];
        if (v > best) {
          best = v;
          pk = static_cast<std::int8_t>(j);
        }
      }
      next[idx] = best;
      pick[i * P + idx] = pk;
      for (std::size_t j = 0; j < m; ++j) {  // odometer increment
        if (++coord[j] <= cap[j]) break;
        coord[j] = 0;
      }
    }
    prev.swap(next);
  }

  // Reconstruct from the full-capacity cell (mixed-radix index P - 1).
  std::size_t idx = P - 1;
  for (std::size_t i = n; i-- > 0;) {
    const std::int8_t pk = pick[i * P + idx];
    if (pk >= 0) {
      out.choice[i] = constrained[pk];
      idx -= gsz[i] * stride[pk];
    }
  }
  return finish();
}

KnapsackResult KnapsackSolver::solve_greedy(
    const std::vector<KnapsackItem>& items, std::size_t capacity_bytes) const {
  KnapsackResult out;
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    double da = items[a].weight / static_cast<double>(std::max<std::size_t>(items[a].bytes, 1));
    double db = items[b].weight / static_cast<double>(std::max<std::size_t>(items[b].bytes, 1));
    return da > db;
  });
  std::size_t used = 0;
  for (std::size_t i : order) {
    if (items[i].weight <= 0) continue;
    if (used + items[i].bytes > capacity_bytes) continue;
    used += items[i].bytes;
    out.selected.push_back(i);
    out.total_weight += items[i].weight;
    out.total_bytes += items[i].bytes;
  }
  std::sort(out.selected.begin(), out.selected.end());
  return out;
}

}  // namespace unimem::rt
