#include "core/knapsack.h"

#include <algorithm>
#include <numeric>

namespace unimem::rt {

namespace {
/// Quantized size in granules, rounded up (an item must fully fit).
std::size_t granules(std::size_t bytes, std::size_t granule) {
  return (bytes + granule - 1) / granule;
}
}  // namespace

KnapsackResult KnapsackSolver::solve(const std::vector<KnapsackItem>& items,
                                     std::size_t capacity_bytes) const {
  KnapsackResult out;
  const std::size_t cap = capacity_bytes / granule_;
  if (cap == 0 || items.empty()) return out;

  // Candidates: positive weight, fits at all.
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < items.size(); ++i)
    if (items[i].weight > 0 && granules(items[i].bytes, granule_) <= cap)
      cand.push_back(i);
  if (cand.empty()) return out;

  // DP over capacity; keep per-cell best value and a take-bit per item to
  // reconstruct the selection.
  const std::size_t n = cand.size();
  std::vector<double> best(cap + 1, 0.0);
  // take[i][c]: whether candidate i is taken at capacity c.
  std::vector<std::vector<bool>> take(n, std::vector<bool>(cap + 1, false));

  for (std::size_t i = 0; i < n; ++i) {
    const auto& it = items[cand[i]];
    const std::size_t g = granules(it.bytes, granule_);
    for (std::size_t c = cap; c >= g; --c) {
      double with = best[c - g] + it.weight;
      if (with > best[c]) {
        best[c] = with;
        take[i][c] = true;
      }
      if (c == g) break;  // avoid size_t underflow
    }
  }

  // Reconstruct.
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][c]) {
      out.selected.push_back(cand[i]);
      out.total_weight += items[cand[i]].weight;
      out.total_bytes += items[cand[i]].bytes;
      c -= granules(items[cand[i]].bytes, granule_);
    }
  }
  std::sort(out.selected.begin(), out.selected.end());
  return out;
}

KnapsackResult KnapsackSolver::solve_greedy(
    const std::vector<KnapsackItem>& items, std::size_t capacity_bytes) const {
  KnapsackResult out;
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    double da = items[a].weight / static_cast<double>(std::max<std::size_t>(items[a].bytes, 1));
    double db = items[b].weight / static_cast<double>(std::max<std::size_t>(items[b].bytes, 1));
    return da > db;
  });
  std::size_t used = 0;
  for (std::size_t i : order) {
    if (items[i].weight <= 0) continue;
    if (used + items[i].bytes > capacity_bytes) continue;
    used += items[i].bytes;
    out.selected.push_back(i);
    out.total_weight += items[i].weight;
    out.total_bytes += items[i].bytes;
  }
  std::sort(out.selected.begin(), out.selected.end());
  return out;
}

}  // namespace unimem::rt
