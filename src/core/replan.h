// Adaptive re-planning (drift-aware incremental DP).
//
// The paper's runtime profiles once and plans once per iteration structure
// (§3.1), re-profiling from scratch only when a phase's time drifts past
// the 10% variation threshold (§3.2).  Long-running workloads drift more
// gently: per-unit access weights shift between iterations while most of
// the working set stays put.  A full O(items x capacity) knapsack re-solve
// for every wobble is wasted work — and a stale plan leaks time.
//
// The ReplanController closes that gap.  On a configurable epoch cadence
// the runtime re-profiles one iteration *while still enforcing the current
// plan*, and the controller compares the fresh per-unit weights against
// the snapshot the current plan was built from:
//
//   * no unit drifted            -> keep the plan (it is still optimal);
//   * a small fraction drifted   -> repair the plan incrementally:
//       keep every non-drifted resident where it is (warm start), free
//       the bytes held by drifted residents, and re-score only the
//       drifted/displaced units with a bounded knapsack over that
//       capacity slice (KnapsackSolver::solve_bounded) — O(drifted)
//       instead of O(all items x full capacity);
//   * too many drifted           -> fall back to the full DP re-solve.
//
// Contract (property-tested): the repaired plan's predicted iteration
// time is never worse than keeping the stale plan — when the bounded
// repair cannot beat "do nothing", the controller says keep.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/knapsack.h"
#include "core/models.h"
#include "core/planner.h"
#include "core/profiler.h"
#include "core/registry.h"

namespace unimem::rt {

struct ReplanOptions {
  /// Per-unit relative weight change that counts as drift.
  double drift_threshold = 0.25;
  /// Max fraction of tracked units allowed to drift before the controller
  /// demands a full DP re-solve instead of an incremental repair.
  double drift_budget = 0.25;
  /// DRAM bytes the rank plans with (same budget the Planner packs).
  std::size_t dram_budget = 0;
  /// Weights below this floor (seconds of modeled benefit) are noise and
  /// never count as drifted on their own.
  double min_weight_s = 1e-9;
};

struct DriftReport {
  std::size_t tracked = 0;  ///< units with a usable weight in either profile
  std::size_t drifted = 0;  ///< units past the relative-change threshold
  /// Drifted units excluded from repair because no critical-path phase
  /// references them (decide() with a critical-phase set only).
  std::size_t off_path = 0;
  double max_rel_change = 0;

  double drift_fraction() const {
    return tracked > 0 ? static_cast<double>(drifted) /
                             static_cast<double>(tracked)
                       : 0.0;
  }
};

struct ReplanDecision {
  enum class Path {
    kKeepStale,    ///< current plan still wins; nothing to do
    kIncremental,  ///< `plan` holds the bounded warm-start repair
    kFullSolve     ///< drift past budget: caller re-runs the full planner
  };
  Path path = Path::kKeepStale;
  DriftReport drift;
  Plan plan;  ///< valid for kIncremental only
  /// Predicted next-iteration time of keeping the current placement.
  double stale_predicted_s = 0;
  /// Predicted next-iteration time of the repaired plan (== stale when no
  /// repair was attempted or the repair lost).
  double repaired_predicted_s = 0;
};

class ReplanController {
 public:
  ReplanController(const Registry* registry, const PerformanceModel* model,
                   ReplanOptions opts)
      : registry_(registry), model_(model), opts_(opts) {}

  /// Aggregated DRAM-residence weight per unit of one (folded) iteration
  /// profile: the sum over phases of the Eq. 2/3 benefit — the same number
  /// the global search feeds the knapsack.
  std::map<UnitRef, double> unit_weights(const Profiler& prof) const;

  /// Snapshot the reference weights the next drift check compares against.
  /// Called whenever a plan is adopted (full solve or repair) and after a
  /// keep-stale decision, so drift is always measured against the most
  /// recent accepted knowledge.
  void observe(const Profiler& prof);
  bool has_baseline() const { return has_baseline_; }

  /// Classify the per-unit weight drift of `prof` against the snapshot.
  /// A unit counts as drifted when its weight changed by more than
  /// drift_threshold relative to the larger of the two readings (units
  /// appearing or vanishing drift by definition unless below the noise
  /// floor).
  DriftReport classify(const Profiler& prof) const;

  /// The epoch decision: keep the stale plan, adopt the incremental
  /// repair, or demand a full re-solve.  On kIncremental the returned
  /// plan's predicted time is <= the stale prediction by construction.
  ///
  /// `critical_phases` (optional, phase-DAG slack mode) restricts the
  /// repair to drift that matters: a drifted unit referenced only in
  /// off-critical-path phases cannot stretch the makespan, so it stays on
  /// the keep-stale path and is tallied in DriftReport::off_path.  The
  /// drift *fraction* (the full-solve tripwire) still counts every
  /// drifted unit — wholesale reshuffles must reach the full DP even
  /// when they start off-path.
  ReplanDecision decide(const Profiler& prof,
                        const std::set<std::size_t>* critical_phases =
                            nullptr) const;

  /// The warm-start repair itself, exposed for tests and benches: keeps
  /// the non-drifted residents, re-scores `drifted` over the freed
  /// capacity slice with the bounded solver, and emits the migration diff
  /// as a Plan (evictions before fills at phase 0).
  Plan repair(const Profiler& prof, const std::map<UnitRef, double>& w_new,
              const std::set<UnitRef>& drifted, double* stale_predicted_s,
              double* repaired_predicted_s) const;

  const ReplanOptions& options() const { return opts_; }
  const std::map<UnitRef, double>& baseline_weights() const {
    return baseline_w_;
  }

 private:
  /// Units of the snapshot/fresh pair whose weight changed past the
  /// threshold (shared by classify and decide).
  std::set<UnitRef> drifted_units(const std::map<UnitRef, double>& w_new,
                                  DriftReport* report) const;

  const Registry* registry_;
  const PerformanceModel* model_;
  ReplanOptions opts_;
  KnapsackSolver solver_;
  std::map<UnitRef, double> baseline_w_;
  bool has_baseline_ = false;
};

}  // namespace unimem::rt
