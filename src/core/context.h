// Execution-context interface: what a workload needs from a data-placement
// policy.  The Unimem Runtime implements it, and so do the static baseline
// policies (DRAM-only, NVM-only, manual placement, X-Men), which lets every
// workload run unmodified under every policy — the way the paper compares
// them.
#pragma once

#include <string>

#include "core/exec_engine.h"
#include "core/object.h"
#include "minimpi/comm.h"

namespace unimem::rt {

class Context {
 public:
  virtual ~Context() = default;

  /// Allocate a target data object (unimem_malloc).
  virtual DataObject* malloc_object(const std::string& name,
                                    std::size_t bytes,
                                    ObjectTraits traits = ObjectTraits{}) = 0;
  /// Free a target data object (unimem_free).
  virtual void free_object(DataObject* obj) = 0;

  /// Mark the beginning of the main computation loop (unimem_start).
  virtual void start() = 0;
  /// Mark the top of each loop iteration.
  virtual void iteration_begin() = 0;
  /// Mark the end of the main computation loop (unimem_end).
  virtual void end() = 0;

  /// Submit modeled computation for the current phase.
  virtual void compute(const PhaseWork& work) = 0;

  /// The rank's communicator; nullptr for single-rank tools.
  virtual mpi::Comm* comm() = 0;

  /// Current virtual time of this rank.
  virtual double now() const = 0;
};

}  // namespace unimem::rt
