// Unimem's lightweight performance models (paper §3.1.2, Equations 1-4).
//
//   Eq. 1  BW_obj  = accessed-data-size / fraction-of-time-accessing
//   Eq. 2  BFT_bw  = (A*64/NVM_bw - A*64/DRAM_bw) * CF_bw
//   Eq. 3  BFT_lat = (A*NVM_lat - A*DRAM_lat)     * CF_lat
//   Eq. 4  COST    = max(size/copy_bw - overlap, 0)
//
// Classification thresholds: BW_obj >= t1% of peak NVM bandwidth =>
// bandwidth-sensitive (use Eq. 2); <= t2% => latency-sensitive (Eq. 3);
// in between => max(Eq. 2, Eq. 3).  Paper values: t1 = 80, t2 = 10.
//
// CF_bw / CF_lat are constant factors measured once per platform by running
// STREAM (bandwidth) and pointer-chasing (latency) benchmarks and taking
// the ratio of measured to predicted performance (see calibration.h).
#pragma once

#include <algorithm>
#include <cstdint>

#include "simmem/hetero_memory.h"

namespace unimem::rt {

/// What the profiler estimated for one (object-unit, phase) pair — derived
/// purely from sampled counters, never from simulator ground truth.
struct UnitPhaseProfile {
  std::uint64_t est_accesses = 0;  ///< estimated main-memory accesses
  double time_fraction = 0;        ///< fraction of phase time with accesses
  double phase_time_s = 0;         ///< profiled phase duration
};

enum class Sensitivity : int { kBandwidth, kLatency, kEither };

inline const char* sensitivity_name(Sensitivity s) {
  switch (s) {
    case Sensitivity::kBandwidth: return "bandwidth";
    case Sensitivity::kLatency: return "latency";
    case Sensitivity::kEither: return "either";
  }
  return "?";
}

struct ModelParams {
  double t1_percent = 80.0;  ///< bandwidth-sensitivity threshold
  double t2_percent = 10.0;  ///< latency-sensitivity threshold
  double bw_peak = 0;        ///< measured peak NVM bandwidth (bytes/s)
  double cf_bw = 1.0;        ///< constant factor for Eq. 2
  double cf_lat = 1.0;       ///< constant factor for Eq. 3
};

class PerformanceModel {
 public:
  PerformanceModel(ModelParams params, const mem::TierConfig& dram,
                   const mem::TierConfig& nvm)
      : p_(params), dram_(dram), nvm_(nvm) {}

  const ModelParams& params() const { return p_; }

  /// Eq. 1: estimated main-memory bandwidth consumption of the object.
  double consumed_bandwidth(const UnitPhaseProfile& u) const {
    double active = u.time_fraction * u.phase_time_s;
    if (active <= 0) return 0;
    return static_cast<double>(u.est_accesses) * 64.0 / active;
  }

  Sensitivity classify(const UnitPhaseProfile& u) const {
    double bw = consumed_bandwidth(u);
    if (p_.bw_peak <= 0) return Sensitivity::kEither;
    double pct = 100.0 * bw / p_.bw_peak;
    if (pct >= p_.t1_percent) return Sensitivity::kBandwidth;
    if (pct <= p_.t2_percent) return Sensitivity::kLatency;
    return Sensitivity::kEither;
  }

  /// Eq. 2: benefit of DRAM residence for a bandwidth-sensitive unit (s).
  double benefit_bandwidth(const UnitPhaseProfile& u) const {
    double bytes = static_cast<double>(u.est_accesses) * 64.0;
    return (bytes / nvm_.read_bw - bytes / dram_.read_bw) * p_.cf_bw;
  }

  /// Eq. 3: benefit of DRAM residence for a latency-sensitive unit (s).
  double benefit_latency(const UnitPhaseProfile& u) const {
    double a = static_cast<double>(u.est_accesses);
    return (a * nvm_.read_latency_s - a * dram_.read_latency_s) * p_.cf_lat;
  }

  /// Benefit dispatched on sensitivity (paper: the "either" band takes the
  /// max of the two estimates).
  double benefit(const UnitPhaseProfile& u) const {
    switch (classify(u)) {
      case Sensitivity::kBandwidth: return benefit_bandwidth(u);
      case Sensitivity::kLatency: return benefit_latency(u);
      case Sensitivity::kEither:
        return std::max(benefit_bandwidth(u), benefit_latency(u));
    }
    return 0;
  }

  /// Eq. 4: migration cost net of the overlappable part (s).
  double migration_cost(std::size_t bytes, double copy_bw,
                        double overlap_s) const {
    double raw = static_cast<double>(bytes) / copy_bw;
    return std::max(raw - overlap_s, 0.0);
  }

  // ---- N-tier forms ------------------------------------------------------
  // Eqs. 2/3 for an arbitrary (fast, slow) tier pair: the benefit of
  // residence in `fast` relative to `slow`.  With (fast, slow) = the
  // model's own (DRAM, NVM) pair these are the identical floating-point
  // expressions as the members above — the MCKP planner scores every tier
  // against the backstop through them.

  double benefit_bandwidth_between(const UnitPhaseProfile& u,
                                   const mem::TierConfig& fast,
                                   const mem::TierConfig& slow) const {
    double bytes = static_cast<double>(u.est_accesses) * 64.0;
    return (bytes / slow.read_bw - bytes / fast.read_bw) * p_.cf_bw;
  }

  double benefit_latency_between(const UnitPhaseProfile& u,
                                 const mem::TierConfig& fast,
                                 const mem::TierConfig& slow) const {
    double a = static_cast<double>(u.est_accesses);
    return (a * slow.read_latency_s - a * fast.read_latency_s) * p_.cf_lat;
  }

  /// Sensitivity-dispatched benefit of `fast` over `slow` (classification
  /// depends only on the profile and the calibrated peak, not the pair).
  double benefit_between(const UnitPhaseProfile& u, const mem::TierConfig& fast,
                         const mem::TierConfig& slow) const {
    switch (classify(u)) {
      case Sensitivity::kBandwidth: return benefit_bandwidth_between(u, fast, slow);
      case Sensitivity::kLatency: return benefit_latency_between(u, fast, slow);
      case Sensitivity::kEither:
        return std::max(benefit_bandwidth_between(u, fast, slow),
                        benefit_latency_between(u, fast, slow));
    }
    return 0;
  }

 private:
  ModelParams p_;
  mem::TierConfig dram_;
  mem::TierConfig nvm_;
};

}  // namespace unimem::rt
