// Phase profiler (paper §3.1.1, "Step 1").
//
// Consumes the PMU sample stream of each profiled phase, maps sampled miss
// addresses back to object units through the registry's interval map, and
// estimates per-(unit, phase):
//   * est_accesses  — the aggregate LLC-miss counter apportioned by the
//                     unit's share of address samples, and
//   * time_fraction — the fraction of samples attributing to the unit
//                     (Eq. 1's  #samples_with_data_accesses / #samples).
// It also maintains the phase->units reference table the planner uses for
// dependency windows and proactive-migration trigger points.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/models.h"
#include "core/registry.h"
#include "perfmon/sampler.h"

namespace unimem::rt {

struct PhaseObservation {
  double phase_time_s = 0;
  bool is_communication = false;
  std::map<UnitRef, UnitPhaseProfile> units;

  bool references(UnitRef u) const { return units.count(u) != 0; }
};

/// Apportion one phase's PMU evidence into per-unit profiles: the precise
/// aggregate miss counter is split by each unit's share of attributed
/// address samples, and time_fraction is Eq. 1's samples-with-data /
/// total-samples.  Shared by the inline (exact) and deferred (sampled)
/// attribution paths so both produce identical profiles for identical
/// evidence.
std::map<UnitRef, UnitPhaseProfile> apportion_profile(
    const std::map<UnitRef, std::uint64_t>& counts, std::uint64_t attributed,
    std::uint64_t total_samples, std::uint64_t total_miss_count,
    double phase_time_s);

/// Outcome of Profiler::fold (see below).
enum class FoldStatus {
  kOk,            ///< every recorded phase participated in the average
  kTruncated,     ///< a non-divisible tail was dropped before folding
  kKindMismatch,  ///< phase kinds disagree across periods; nothing folded
};

class Profiler {
 public:
  explicit Profiler(const Registry* registry) : registry_(registry) {}

  /// Forget the previous iteration's observations.
  void begin_iteration() { phases_.clear(); }

  /// Record one computation phase from its sample stream.
  void record_phase(const perf::PhaseSamples& samples, double phase_time_s);

  /// Record a communication phase (no object attribution).
  void record_comm_phase(double phase_time_s);

  /// Sampled-tier support: append an empty computation-phase observation
  /// now (keeping the phase sequence in program order) and fill in its
  /// per-unit profiles later, once out-of-band attribution finishes.
  /// Returns the slot index to pass to fill_phase.  Both calls must come
  /// from the rank thread; only the aggregator's *own* state is touched
  /// off-thread.
  std::size_t record_phase_pending(double phase_time_s);
  void fill_phase(std::size_t slot, std::map<UnitRef, UnitPhaseProfile> units);

  const std::vector<PhaseObservation>& phases() const { return phases_; }
  std::size_t phase_count() const { return phases_.size(); }

  /// Merge `periods` consecutive profiled iterations into one averaged
  /// iteration profile (paper §3: "profiles memory references ... with a
  /// few invocations of each phase").
  ///
  /// Contract:
  ///  * When the recorded phase count is not a multiple of `periods`, the
  ///    largest divisible prefix is folded, the tail is dropped, and
  ///    kTruncated is returned (a partially recorded last iteration must
  ///    not silently keep the profile un-averaged, as it used to).
  ///  * Phase kinds (compute vs communication) must agree across periods
  ///    position-for-position; on disagreement nothing is folded and
  ///    kKindMismatch is returned.
  ///  * est_accesses are averaged by summing raw counts and dividing once,
  ///    round-to-nearest — folding N identical periods reproduces one
  ///    period's counts exactly.
  FoldStatus fold(std::size_t periods);

  /// Most recent phase index < `phase` (cyclically, scanning at most one
  /// full iteration) that references `u`; -1 when no other phase does.
  int last_reference_before(std::size_t phase, UnitRef u) const;

  /// All units with nonzero estimated accesses anywhere in the iteration.
  std::vector<UnitRef> hot_units() const;

 private:
  const Registry* registry_;
  std::vector<PhaseObservation> phases_;
};

}  // namespace unimem::rt
