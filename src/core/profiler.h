// Phase profiler (paper §3.1.1, "Step 1").
//
// Consumes the PMU sample stream of each profiled phase, maps sampled miss
// addresses back to object units through the registry's interval map, and
// estimates per-(unit, phase):
//   * est_accesses  — the aggregate LLC-miss counter apportioned by the
//                     unit's share of address samples, and
//   * time_fraction — the fraction of samples attributing to the unit
//                     (Eq. 1's  #samples_with_data_accesses / #samples).
// It also maintains the phase->units reference table the planner uses for
// dependency windows and proactive-migration trigger points.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/models.h"
#include "core/registry.h"
#include "perfmon/sampler.h"

namespace unimem::rt {

struct PhaseObservation {
  double phase_time_s = 0;
  bool is_communication = false;
  std::map<UnitRef, UnitPhaseProfile> units;

  bool references(UnitRef u) const { return units.count(u) != 0; }
};

class Profiler {
 public:
  explicit Profiler(const Registry* registry) : registry_(registry) {}

  /// Forget the previous iteration's observations.
  void begin_iteration() { phases_.clear(); }

  /// Record one computation phase from its sample stream.
  void record_phase(const perf::PhaseSamples& samples, double phase_time_s);

  /// Record a communication phase (no object attribution).
  void record_comm_phase(double phase_time_s);

  const std::vector<PhaseObservation>& phases() const { return phases_; }
  std::size_t phase_count() const { return phases_.size(); }

  /// Merge `periods` consecutive profiled iterations into one averaged
  /// iteration profile (paper §3: "profiles memory references ... with a
  /// few invocations of each phase").  No-op unless the recorded phase
  /// count is an exact multiple of the period.
  void fold(std::size_t periods);

  /// Most recent phase index < `phase` (cyclically, scanning at most one
  /// full iteration) that references `u`; -1 when no other phase does.
  int last_reference_before(std::size_t phase, UnitRef u) const;

  /// All units with nonzero estimated accesses anywhere in the iteration.
  std::vector<UnitRef> hot_units() const;

 private:
  const Registry* registry_;
  std::vector<PhaseObservation> phases_;
};

}  // namespace unimem::rt
