#include "core/calibration.h"

#include <algorithm>

#include "common/units.h"
#include "perfmon/sampler.h"

namespace unimem::rt {

namespace {

struct MicrobenchResult {
  std::uint64_t est_accesses = 0;  ///< from the sampled counters
  double time_fraction = 0;
  double phase_time_s = 0;
  double measured_mem_s = 0;       ///< the "ground truth" timing
};

/// Run one synthetic descriptor through cache + timing + sampler, exactly
/// like an application phase, and recover the sampled view of it.
MicrobenchResult run_microbench(const cache::AccessDescriptor& d,
                                const mem::TierConfig& tier,
                                cache::CacheModel& cache,
                                const clk::TimingParams& timing,
                                std::uint64_t seed) {
  cache.reset();
  cache::AccessResult r = cache.process(d, timing.default_mlp);

  const double bw = 1.0 / ((1.0 - d.write_fraction) / tier.read_bw +
                           d.write_fraction / tier.write_bw);
  const double lat = (1.0 - d.write_fraction) * tier.read_latency_s +
                     d.write_fraction * tier.write_latency_s;
  const double mem_s =
      std::max(static_cast<double>(r.bytes_from_memory()) / bw,
               r.serialized_misses * lat);

  // A microbenchmark phase: negligible compute, one memory window.
  perf::Sampler sampler(timing, seed);
  std::vector<perf::MemWindow> windows{perf::MemWindow{
      reinterpret_cast<std::uint64_t>(d.base), d.region_bytes, r.misses,
      mem_s}};
  perf::PhaseSamples s = sampler.sample_phase(windows, 0.0, mem_s);

  MicrobenchResult out;
  out.phase_time_s = mem_s;
  out.measured_mem_s = mem_s;
  if (s.total_samples > 0) {
    // All addresses belong to the single region; apportionment is trivial
    // but goes through the same arithmetic the profiler uses.
    std::uint64_t n_attr = s.miss_addresses.size();
    out.est_accesses = n_attr == 0 ? 0 : s.total_miss_count;
    out.time_fraction =
        static_cast<double>(n_attr) / static_cast<double>(s.total_samples);
  }
  return out;
}

}  // namespace

ModelParams calibrate(const mem::HmsConfig& hms, cache::CacheModel& cache,
                      const clk::TimingParams& timing,
                      CalibrationOptions opts) {
  ModelParams p;
  p.t1_percent = opts.t1_percent;
  p.t2_percent = opts.t2_percent;

  // A scratch buffer to give descriptors real addresses (contents unused).
  std::vector<std::byte> scratch(opts.region_bytes);

  // --- BW_peak: STREAM over NVM, maximum concurrency (Eq. 1) -------------
  cache::AccessDescriptor stream;
  stream.base = scratch.data();
  stream.region_bytes = opts.region_bytes;
  stream.pattern = cache::Pattern::kSequential;
  stream.accesses = 2 * (opts.region_bytes / 8);  // two passes over doubles
  stream.access_bytes = 8;

  MicrobenchResult nvm_stream =
      run_microbench(stream, hms.nvm, cache, timing, opts.sampler_seed);
  if (nvm_stream.time_fraction > 0) {
    p.bw_peak = static_cast<double>(nvm_stream.est_accesses) * 64.0 /
                (nvm_stream.time_fraction * nvm_stream.phase_time_s);
  } else {
    p.bw_peak = hms.nvm.read_bw;  // degenerate (no samples): fall back
  }

  // --- CF_bw: STREAM, predicted vs measured on DRAM ----------------------
  MicrobenchResult dram_stream =
      run_microbench(stream, hms.dram, cache, timing, opts.sampler_seed + 1);
  double predicted_bw_s =
      static_cast<double>(dram_stream.est_accesses) * 64.0 / hms.dram.read_bw;
  p.cf_bw = predicted_bw_s > 0 ? dram_stream.measured_mem_s / predicted_bw_s
                               : 1.0;

  // --- CF_lat: pointer chase (single thread, no concurrency) on DRAM -----
  cache::AccessDescriptor chase;
  chase.base = scratch.data();
  chase.region_bytes = opts.region_bytes;
  chase.pattern = cache::Pattern::kPointerChase;
  chase.accesses = std::max<std::uint64_t>(1, opts.region_bytes / 1024);
  chase.access_bytes = 8;

  MicrobenchResult dram_chase =
      run_microbench(chase, hms.dram, cache, timing, opts.sampler_seed + 2);
  double predicted_lat_s =
      static_cast<double>(dram_chase.est_accesses) * hms.dram.read_latency_s;
  p.cf_lat = predicted_lat_s > 0
                 ? dram_chase.measured_mem_s / predicted_lat_s
                 : 1.0;

  cache.reset();
  return p;
}

}  // namespace unimem::rt
