#include "core/migration.h"

#include <algorithm>
#include <cstring>

#include "trace/trace.h"

namespace unimem::rt {

MigrationEngine::MigrationEngine(Registry* registry)
    : registry_(registry),
      pending_src_in_tier_(registry->hms().num_tiers(), 0),
      helper_([this] { copy_worker(); }) {}

MigrationEngine::~MigrationEngine() {
  {
    std::lock_guard<std::mutex> lk(copy_mu_);
    stop_ = true;
  }
  copy_cv_.notify_all();
  helper_.join();
}

void MigrationEngine::enqueue(UnitRef unit, mem::Tier to, double enqueue_vt) {
  enqueue_batch({Item{unit, to, enqueue_vt}});
}

void MigrationEngine::enqueue_batch(const std::vector<Item>& items) {
  std::deque<Request> ready;
  for (const Item& it : items) {
    UNIMEM_TRACE_INSTANT2("migration", "enqueue", it.enqueue_vt, "object",
                          it.unit.object, "chunk", it.unit.chunk);
    ready.push_back(Request{it.unit, it.to, it.enqueue_vt, 2});
  }
  process(std::move(ready));
}

void MigrationEngine::process(std::deque<Request> ready) {
  // Earlier deferred requests rejoin behind the new batch: the batch's
  // evictions run first, exactly the ordering the wrap case needs.
  for (Request& d : deferred_) ready.push_back(d);
  deferred_.clear();

  bool progress = false;
  for (;;) {
    if (ready.empty()) {
      // Retry wave: anything deferred in this call gets another look as
      // long as the previous wave moved at least one unit (and thereby
      // freed space somewhere).
      if (!progress || deferred_.empty()) break;
      progress = false;
      for (Request& d : deferred_) ready.push_back(d);
      deferred_.clear();
    }
    Request req = ready.front();
    ready.pop_front();

    const mem::Tier from = registry_->unit_tier(req.unit);
    double done_vt = std::max(req.enqueue_vt, last_completion_vt_);
    if (from != req.to) {
      // Zombie source blocks in the destination tier must land before we
      // allocate there, both so the space is actually reclaimable and so
      // the first-fit offset (an address the exact cache model can feel)
      // never depends on helper-thread timing.
      quiesce(req.to);
      auto copy = registry_->migrate_start(req.unit, req.to);
      if (copy.has_value()) {
        const double copy_s =
            registry_->hms().copy_seconds(copy->bytes, from, req.to);
        done_vt += copy_s;
        ++stats_.migrations;
        stats_.bytes_moved += copy->bytes;
        stats_.copy_time_s += copy_s;
        progress = true;
        // Commit point: the decision (destination block, completion vt)
        // is final here, on the rank thread, in virtual order.
        UNIMEM_TRACE_INSTANT2("migration", "commit", done_vt, "object",
                              req.unit.object, "bytes", copy->bytes);
        submit_copy(*copy);
      } else if (req.retries_left > 0) {
        // Destination full: a later request may free the space (an
        // eviction ordered after us); try again behind it.
        --req.retries_left;
        deferred_.push_back(req);
        continue;  // not decided yet: no completion recorded
      } else {
        ++stats_.failed;
      }
    }
    last_completion_vt_ = std::max(last_completion_vt_, done_vt);
    completion_vt_[req.unit] = done_vt;
  }
}

void MigrationEngine::submit_copy(const Registry::PendingCopy& copy) {
  {
    std::lock_guard<std::mutex> lk(copy_mu_);
    copies_.push_back(copy);
    ++copy_pending_[copy.unit];
    ++pending_src_in_tier_[static_cast<int>(copy.from)];
  }
  copy_cv_.notify_all();
}

void MigrationEngine::copy_worker() {
  bool track_named = false;
  std::unique_lock<std::mutex> lk(copy_mu_);
  for (;;) {
    copy_cv_.wait(lk, [&] { return stop_ || !copies_.empty(); });
    if (copies_.empty()) {
      if (stop_) return;
      continue;
    }
    Registry::PendingCopy c = copies_.front();
    copies_.pop_front();
    lk.unlock();
    if (trace::on() && !track_named) {
      trace::set_thread_track("migration-helper", 100);
      track_named = true;
    }
    // Wall-clock-only span (vt < 0): the physical copy has no virtual
    // timestamp of its own — its modeled cost was charged at commit.
    UNIMEM_TRACE_BEGIN2("migration", "copy", -1.0, "object", c.unit.object,
                        "bytes", c.bytes);
    std::memcpy(c.dst, c.src, c.bytes);
    registry_->finish_migration(c);
    UNIMEM_TRACE_END("migration", "copy", -1.0);
    lk.lock();
    if (--copy_pending_[c.unit] == 0) copy_pending_.erase(c.unit);
    --pending_src_in_tier_[static_cast<int>(c.from)];
    copy_cv_.notify_all();
  }
}

void MigrationEngine::wait_copies_drained() {
  std::unique_lock<std::mutex> lk(copy_mu_);
  copy_cv_.wait(lk, [&] { return copies_.empty() && copy_pending_.empty(); });
}

void MigrationEngine::quiesce(mem::Tier tier) {
  std::unique_lock<std::mutex> lk(copy_mu_);
  copy_cv_.wait(
      lk, [&] { return pending_src_in_tier_[static_cast<int>(tier)] == 0; });
}

void MigrationEngine::quiesce_all() { wait_copies_drained(); }

double MigrationEngine::wait_for(UnitRef unit) {
  {
    std::unique_lock<std::mutex> lk(copy_mu_);
    copy_cv_.wait(lk,
                  [&] { return copy_pending_.find(unit) == copy_pending_.end(); });
  }
  auto it = completion_vt_.find(unit);
  return it == completion_vt_.end() ? 0.0 : it->second;
}

double MigrationEngine::drain() {
  // No further batches are coming: still-deferred requests resolve
  // terminally (and deterministically) as failed moves.
  for (const Request& req : deferred_) {
    ++stats_.failed;
    const double done_vt = std::max(req.enqueue_vt, last_completion_vt_);
    last_completion_vt_ = std::max(last_completion_vt_, done_vt);
    completion_vt_[req.unit] = done_vt;
  }
  deferred_.clear();
  wait_copies_drained();
  return last_completion_vt_;
}

void MigrationEngine::add_exposed_wait(double seconds) {
  stats_.exposed_wait_s += seconds;
}

MigrationStats MigrationEngine::stats() const { return stats_; }

}  // namespace unimem::rt
