#include "core/migration.h"

#include <algorithm>

namespace unimem::rt {

MigrationEngine::MigrationEngine(Registry* registry)
    : registry_(registry), helper_([this] { worker(); }) {}

MigrationEngine::~MigrationEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  helper_.join();
}

void MigrationEngine::enqueue(UnitRef unit, mem::Tier to, double enqueue_vt) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(Request{unit, to, enqueue_vt});
    ++pending_[unit];
  }
  cv_.notify_all();
}

void MigrationEngine::worker() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Request req = queue_.front();
    queue_.pop_front();

    const mem::Tier from = registry_->unit_tier(req.unit);
    double done_vt = std::max(req.enqueue_vt, last_completion_vt_);
    bool moved = false;
    if (from != req.to) {
      const std::size_t bytes = registry_->unit_bytes(req.unit);
      // Perform the real copy without holding our lock (the registry has
      // its own lock; wait_for callers block on pending_, not the copy).
      lk.unlock();
      moved = registry_->migrate(req.unit, req.to);
      lk.lock();
      if (moved) {
        done_vt += registry_->hms().copy_seconds(bytes, from, req.to);
        ++stats_.migrations;
        stats_.bytes_moved += bytes;
        stats_.copy_time_s +=
            registry_->hms().copy_seconds(bytes, from, req.to);
      } else if (req.retries_left > 0 && !queue_.empty()) {
        // Destination full: later queue entries may free the space (an
        // eviction ordered after us); try again behind them.
        --req.retries_left;
        queue_.push_back(req);
        continue;  // pending_ count unchanged until finally resolved
      } else {
        ++stats_.failed;
      }
    }
    last_completion_vt_ = std::max(last_completion_vt_, done_vt);
    completion_vt_[req.unit] = done_vt;
    if (--pending_[req.unit] == 0) pending_.erase(req.unit);
    cv_.notify_all();
  }
}

double MigrationEngine::wait_for(UnitRef unit) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return pending_.find(unit) == pending_.end(); });
  auto it = completion_vt_.find(unit);
  return it == completion_vt_.end() ? 0.0 : it->second;
}

double MigrationEngine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return queue_.empty() && pending_.empty(); });
  return last_completion_vt_;
}

void MigrationEngine::add_exposed_wait(double seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.exposed_wait_s += seconds;
}

MigrationStats MigrationEngine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace unimem::rt
