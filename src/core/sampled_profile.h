// Out-of-band aggregation for the sampled profiler tier (heapprofd idiom:
// do the minimum on the hot thread, centralize the rest).
//
// In sampled mode the rank thread only gates and buffers miss addresses;
// attribution (address -> unit) and apportioning happen here, on a single
// aggregation thread, against the immutable address-map snapshot captured
// when the phase closed.  The snapshot matters for correctness, not just
// speed: migrations repoint the live registry map synchronously on the
// rank thread, and freed ranges can be reused by later allocations, so a
// live lookup at drain time would misattribute the phase's addresses.
//
// Determinism: results depend only on batch contents (samples + snapshot),
// never on when the worker runs.  The rank thread folds results back into
// the Profiler only at drain() barriers, so the consumer-visible profile
// is a pure function of the configuration.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/profiler.h"
#include "core/registry.h"
#include "perfmon/sampler.h"

namespace unimem::rt {

class ProfileAggregator {
 public:
  /// One closed phase's deferred-attribution work.
  struct Batch {
    std::size_t slot = 0;  ///< Profiler::record_phase_pending slot
    perf::PhaseSamples samples;
    double phase_time_s = 0;
    std::shared_ptr<const Registry::AddrSnapshot> snapshot;
  };

  /// One phase's finished per-unit profile.
  struct SlotProfile {
    std::size_t slot = 0;
    std::map<UnitRef, UnitPhaseProfile> units;
    std::uint64_t attributed = 0;  ///< address samples that hit a unit
  };

  ProfileAggregator();
  ~ProfileAggregator();

  ProfileAggregator(const ProfileAggregator&) = delete;
  ProfileAggregator& operator=(const ProfileAggregator&) = delete;

  /// Hand one phase's evidence to the worker.  Cheap: one lock + notify.
  void submit(Batch b);

  /// Barrier: wait for every submitted batch to finish, then return all
  /// results sorted by slot (and forget them).  Call from the rank thread.
  std::vector<SlotProfile> drain();

 private:
  void worker_loop();
  static SlotProfile process(const Batch& b);

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals the worker
  std::condition_variable done_cv_;   // signals drain()
  std::deque<Batch> queue_;
  std::vector<SlotProfile> results_;
  bool busy_ = false;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace unimem::rt
