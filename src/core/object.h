// Target data objects.
//
// Paper §3: "Unimem directs data placement for data objects (e.g., multi-
// dimensional arrays).  The data objects must be allocated using certain
// Unimem APIs by the programmer."  A handle stays valid across migrations:
// the runtime repoints it after moving the payload (§3.3), and aliases
// registered by the programmer are repointed too.
//
// Large chunkable objects are split into independently placeable chunks
// (§3.2 "Handling large data objects"); every object has at least one chunk.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "simmem/hetero_memory.h"

namespace unimem::rt {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kInvalidObject = ~ObjectId{0};

/// Chunk layout constants.  Chunkable objects above the threshold are
/// ALWAYS stored chunked, under every policy, so the data layout (and thus
/// workload checksums) is policy-invariant; whether the *planner* may place
/// chunks independently is a separate switch (RuntimeOptions
/// enable_chunking, the Fig. 11 ablation).
inline constexpr std::size_t kChunkBytes = std::size_t{1} << 20;      // 1 MiB
inline constexpr std::size_t kChunkThreshold = std::size_t{2} << 20;  // 2 MiB

/// Chunk size to use at allocation: 0 (unchunked) or kChunkBytes.
constexpr std::size_t chunk_bytes_for(bool chunkable, std::size_t bytes) {
  return chunkable && bytes > kChunkThreshold ? kChunkBytes : 0;
}

/// Per-object knowledge the programmer can provide at allocation time.
struct ObjectTraits {
  /// May the runtime split this object into chunks?  Per the paper we are
  /// conservative: only 1-D arrays with regular references qualify (memory
  /// aliasing makes chunking unsafe otherwise, e.g. MG).
  bool chunkable = false;
  /// Compiler-style symbolic estimate of the number of memory references
  /// (evaluated before the main loop); < 0 means "unknown at loop entry",
  /// e.g. iteration counts decided by a convergence test.  Drives initial
  /// data placement (§3.2).
  double estimated_references = -1.0;
};

/// One migratable unit: either a whole object or one chunk of it.
struct Chunk {
  std::atomic<void*> ptr{nullptr};
  std::size_t bytes = 0;
  std::atomic<int> tier{static_cast<int>(mem::Tier::kNvm)};

  mem::Tier current_tier() const {
    return static_cast<mem::Tier>(tier.load(std::memory_order_acquire));
  }
  void* data() const { return ptr.load(std::memory_order_acquire); }
};

class DataObject {
 public:
  DataObject(ObjectId id, std::string name, std::size_t bytes,
             ObjectTraits traits)
      : id_(id), name_(std::move(name)), bytes_(bytes), traits_(traits) {}

  ObjectId id() const { return id_; }
  const std::string& name() const { return name_; }
  std::size_t bytes() const { return bytes_; }
  const ObjectTraits& traits() const { return traits_; }

  std::size_t chunk_count() const { return chunks_.size(); }
  Chunk& chunk(std::size_t i) { return *chunks_[i]; }
  const Chunk& chunk(std::size_t i) const { return *chunks_[i]; }

  /// Typed view of chunk `i`'s payload.  Blocks on in-flight migrations of
  /// the chunk first (see set_access_fence): the span the caller gets
  /// back is stable until the caller itself reaches the next phase
  /// boundary, since migrations are only enqueued from the owning rank's
  /// thread at boundaries.
  template <typename T>
  std::span<T> chunk_span(std::size_t i) {
    sync_for_access(i);
    Chunk& c = *chunks_[i];
    return {static_cast<T*>(c.data()), c.bytes / sizeof(T)};
  }

  /// Typed view of the whole payload; only valid for single-chunk objects.
  template <typename T>
  std::span<T> as_span() {
    return chunk_span<T>(0);
  }

  /// Install the runtime's migration fence: a callback that blocks until
  /// no migration of the given chunk is queued or in flight.
  void set_access_fence(std::function<void(const DataObject&, std::size_t)> fence) {
    fence_ = std::move(fence);
  }

  /// Block until in-flight migrations of chunk `i` are done (no-op for
  /// objects without a fence, e.g. registry-direct test objects).
  void sync_for_access(std::size_t i) const {
    if (fence_) fence_(*this, i);
  }

  /// True when every chunk currently lives in `t`.
  bool fully_in(mem::Tier t) const {
    for (const auto& c : chunks_)
      if (c->current_tier() != t) return false;
    return true;
  }

 private:
  friend class Registry;
  ObjectId id_;
  std::string name_;
  std::size_t bytes_;
  ObjectTraits traits_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  /// Programmer-registered aliases repointed on migration (whole-object,
  /// offset 0 — matching the paper's unimem_malloc alias registration).
  std::vector<void**> aliases_;
  /// Runtime-installed migration fence (see set_access_fence).
  std::function<void(const DataObject&, std::size_t)> fence_;
};

/// Identifies a migratable unit inside the registry.
struct UnitRef {
  ObjectId object = kInvalidObject;
  std::uint32_t chunk = 0;

  bool operator==(const UnitRef&) const = default;
  bool operator<(const UnitRef& o) const {
    return object != o.object ? object < o.object : chunk < o.chunk;
  }
};

}  // namespace unimem::rt
