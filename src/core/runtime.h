// The Unimem runtime (paper §3): online profiling -> performance modeling
// -> placement decision -> proactive enforcement, phase by phase.
//
// Workflow (paper Fig. 8):
//   iteration 1             : phase profiling via sampled counters
//   end of iteration 1      : model + knapsack -> local & global plans,
//                             pick the predicted-better one
//   iterations 2..N         : enforce; helper thread migrates proactively
//                             at trigger phases; phases wait only for
//                             not-yet-finished moves (exposed cost)
//   any phase drifts > 10%  : re-profile next iteration and re-plan
//
// Phase boundaries are discovered transparently through minimpi's PMPI
// hooks: every *blocking* MPI call ends the current computation phase and
// is itself a communication phase; non-blocking calls merge into the
// following phase (paper §2.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/context.h"
#include "core/exec_engine.h"
#include "core/migration.h"
#include "core/models.h"
#include "core/phase_dag.h"
#include "core/planner.h"
#include "core/profiler.h"
#include "core/registry.h"
#include "core/replan.h"
#include "core/sampled_profile.h"
#include "minimpi/comm.h"
#include "minimpi/pmpi.h"
#include "perfmon/sample_gate.h"
#include "perfmon/sampler.h"
#include "simcache/analytic_cache.h"
#include "simcache/exact_cache.h"
#include "simclock/virtual_clock.h"

namespace unimem::rt {

/// Profiling tier.  kExact consumes every PMU sample inline on the rank
/// thread (the original offline-planning path).  kSampled gates capture on
/// a seeded schedule, defers attribution to an aggregation thread, and
/// adapts its rate — the production-overhead tier (paper §3.1.1's PEBS
/// framing; heapprofd-style out-of-band processing).
enum class ProfilerMode { kExact, kSampled };

/// Migration-trigger scheduling (ROADMAP item 3).  kOff keeps the classic
/// reactive/JIT trigger placement (byte-identical artifacts).  kSlack
/// exchanges per-rank phase durations at each iteration boundary, builds
/// the phase execution DAG (core/phase_dag.h), and schedules proactive
/// copies into off-critical-path slack; per-phase plan repair keeps
/// off-path drift on the cheap keep-stale path.
enum class DagSchedule { kOff, kSlack };

struct RuntimeOptions {
  // ---- technique switches (Fig. 11 ablation) --------------------------
  bool enable_global_search = true;   ///< technique (1)
  bool enable_local_search = true;    ///< technique (2)
  bool enable_chunking = true;        ///< technique (3)
  bool enable_initial_placement = true;  ///< technique (4)
  /// false = synchronous migration at the needed phase (no helper-thread
  /// overlap) — the ablation of the proactive mechanism.
  bool proactive_migration = true;

  // ---- model / substrate ----------------------------------------------
  bool use_exact_cache = false;  ///< exact LLC sim instead of analytic
  cache::CacheConfig cache{};
  clk::TimingParams timing{};
  double t1_percent = 80.0;
  double t2_percent = 10.0;
  double reprofile_threshold = 0.10;  ///< "obvious variation" (paper: 10%)

  // ---- adaptive re-planning (drift-aware incremental DP) ----------------
  /// Re-profile every `replan_epoch` enforcing iterations (while still
  /// enforcing the current plan) and let the ReplanController keep,
  /// repair, or fully re-solve the plan from the per-unit weight drift.
  /// 0 = off: one-shot planning plus the paper's 10% variation monitor.
  /// When on, the epoch cadence supersedes the variation monitor (the
  /// controller owns the drift response).
  int replan_epoch = 0;
  /// Per-unit relative weight change that counts as drift.
  double drift_threshold = 0.25;
  /// Max fraction of drifted units repaired incrementally; past this the
  /// full knapsack DP re-runs.
  double drift_budget = 0.25;
  /// Iterations profiled before planning ("a few invocations of each
  /// phase"); > 1 averages out sampling noise.
  int profile_iterations = 2;
  std::uint64_t sampler_seed = 42;

  // ---- phase-DAG critical-path scheduling -----------------------------
  DagSchedule dag_schedule = DagSchedule::kOff;

  // ---- profiling tier (profiler_mode = sampled) ------------------------
  ProfilerMode profiler_mode = ProfilerMode::kExact;
  /// Base PMU events per captured sample (sampled mode; 1 = capture all).
  std::uint64_t sample_period_mult = 64;
  std::uint64_t sample_period_max = 4096;
  /// Adaptive backoff: widen the period when phases already attribute
  /// plenty of evidence, narrow it back when evidence runs thin.  Updated
  /// only at drain barriers, so the period sequence is deterministic.
  bool adaptive_sampling = true;
  std::uint64_t sample_high_watermark = 512;
  std::uint64_t sample_low_watermark = 64;

  /// DRAM bytes this rank plans with; 0 = node allowance / ranks_per_node.
  std::size_t dram_budget = 0;
  int ranks_per_node = 1;
  /// Chunk size override for large chunkable objects; 0 = kChunkBytes.
  std::size_t chunk_bytes = 0;

  // ---- modeled runtime-overhead charges (virtual seconds) --------------
  double overhead_per_sample_s = 25e-9;   ///< exact: inline sample handling
  /// sampled: gate + buffer only; attribution runs out of band.
  double overhead_per_sample_sampled_s = 2e-9;
  double overhead_per_phase_s = 0.5e-6;   ///< queue status check / sync
  double overhead_per_plan_item_s = 1e-6; ///< modeling + knapsack per item
  double overhead_plan_fixed_s = 20e-6;
};

struct RuntimeStats {
  MigrationStats migration;
  double overhead_s = 0;        ///< Table 4 "pure runtime cost" (seconds)
  double total_time_s = 0;      ///< virtual time at unimem_end
  std::uint64_t phases_executed = 0;
  std::uint64_t iterations = 0;
  std::uint64_t reprofiles = 0;
  Plan::Kind plan_kind = Plan::Kind::kNone;
  std::size_t planned_migrations_per_iteration = 0;

  // Adaptive re-planning (replan_epoch > 0).
  std::uint64_t replan_checks = 0;        ///< epoch drift evaluations
  std::uint64_t incremental_repairs = 0;  ///< plans repaired in place
  std::uint64_t full_replans = 0;         ///< epoch checks that re-ran the DP
  double last_drift_fraction = 0;         ///< of the most recent check

  // Sampled profiling tier (profiler_mode = sampled; zero in exact mode).
  std::uint64_t profile_samples = 0;      ///< captured (gated) samples
  std::uint64_t profile_attributed = 0;   ///< samples attributed to units
  std::uint64_t sample_period_mult = 0;   ///< current adaptive period

  // Phase-DAG slack scheduling (dag_schedule = slack; zero when off).
  double dag_critical_path_s = 0;           ///< of the latest built DAG
  std::uint64_t dag_builds = 0;             ///< iteration-boundary rebuilds
  std::uint64_t dag_slack_scheduled = 0;    ///< triggers parked into slack
  std::uint64_t dag_fallback_triggers = 0;  ///< fell back to earliest trigger
  std::uint64_t dag_offpath_drift = 0;      ///< drifted units kept stale

  double overhead_percent() const {
    return total_time_s > 0 ? 100.0 * overhead_s / total_time_s : 0.0;
  }
};

class Runtime final : public Context, public mpi::PmpiHooks {
 public:
  /// `comm` may be nullptr (single-rank); `arbiter` may be nullptr (then
  /// the DRAM arena alone bounds placement).  unimem_init: spawns the
  /// helper thread, calibrates the model (cached per configuration).
  Runtime(RuntimeOptions opts, mem::HeteroMemory* hms,
          mem::DramArbiter* arbiter, mpi::Comm* comm);
  ~Runtime() override;

  // ---- Context (paper Table 2 API) -------------------------------------
  DataObject* malloc_object(const std::string& name, std::size_t bytes,
                            ObjectTraits traits = ObjectTraits{}) override;
  void free_object(DataObject* obj) override;
  void start() override;
  void iteration_begin() override;
  void end() override;
  void compute(const PhaseWork& work) override;
  mpi::Comm* comm() override { return comm_; }
  double now() const override { return clock().now(); }

  /// Register a programmer alias created before the main loop (§3.3).
  void add_alias(DataObject* obj, void** alias);

  /// Manual phase boundary for non-MPI applications.
  void phase_boundary();

  // ---- PmpiHooks --------------------------------------------------------
  void on_pre_op(const mpi::OpInfo& info) override;
  void on_post_op(const mpi::OpInfo& info) override;

  // ---- introspection ----------------------------------------------------
  RuntimeStats stats() const;
  Registry& registry() { return *registry_; }
  const Plan& current_plan() const { return plan_; }
  const ModelParams& model_params() const { return model_params_; }
  const Profiler& profiler() const { return profiler_; }
  /// nullptr unless replan_epoch > 0.
  const ReplanController* replanner() const { return replanner_.get(); }

 private:
  enum class Mode { kIdle, kProfiling, kEnforcing };

  clk::VirtualClock& clock();
  const clk::VirtualClock& clock() const;
  void close_phase(bool is_comm, double comm_time);
  void open_phase();
  /// Block until in-flight migrations of every unit overlapping
  /// [buf, buf+bytes) are done, charging the exposed wait (the MPI-path
  /// twin of compute()'s wait — see on_pre_op).
  void wait_for_buffer(const void* buf, std::size_t bytes);
  void enqueue_phase_migrations(std::size_t phase_idx);
  /// Drain barrier for sampled-mode profiling: fold the aggregator's
  /// finished results back into the Profiler and update the adaptive
  /// rate.  No-op in exact mode or when nothing is pending.  Must run
  /// before the profile is consumed (fold/plan/replan) or cleared.
  void flush_sampled_profile();
  /// Slack mode only: exchange the just-closed iteration's per-rank phase
  /// durations (symmetric collectives, PMPI hooks suppressed), build the
  /// phase DAG, and run the CPM pass.  Called unconditionally at the
  /// iteration boundary so every rank participates every iteration.
  void update_phase_dag();
  void make_plan();
  /// Consume the just-finished epoch profile: classify drift, then keep
  /// the plan, adopt the controller's incremental repair, or re-run the
  /// full planner.
  void finish_epoch_check();
  void apply_initial_placement();
  void charge_overhead(double seconds);

  RuntimeOptions opts_;
  mem::HeteroMemory* hms_;
  mpi::Comm* comm_;
  clk::VirtualClock own_clock_;  ///< used when comm_ == nullptr

  std::unique_ptr<cache::CacheModel> cache_;
  std::unique_ptr<Registry> registry_;
  std::unique_ptr<ExecEngine> engine_;
  std::unique_ptr<MigrationEngine> migrator_;
  std::unique_ptr<perf::Sampler> sampler_;
  Profiler profiler_;
  /// Sampled tier only (nullptr in exact mode: true zero-cost path).
  std::unique_ptr<ProfileAggregator> aggregator_;
  std::unique_ptr<perf::AdaptiveRate> adaptive_rate_;
  bool batches_pending_ = false;
  std::uint64_t profile_samples_ = 0;
  std::uint64_t profile_attributed_ = 0;
  ModelParams model_params_;
  std::unique_ptr<PerformanceModel> model_;
  std::unique_ptr<ReplanController> replanner_;
  Plan plan_;

  Mode mode_ = Mode::kIdle;
  bool started_ = false;
  std::size_t dram_budget_ = 0;
  std::size_t phase_idx_ = 0;       ///< within the current iteration
  std::uint64_t iteration_ = 0;
  bool reprofile_requested_ = false;
  int profile_iters_in_row_ = 0;    ///< iterations profiled so far
  /// Enforcing iterations completed under the current plan.  The variation
  /// monitor arms only at >= 3: the first enforcing iteration differs from
  /// the profiled one by design (placement improved), the second can still
  /// absorb the exposed tail of first-time migrations (a fill triggered
  /// late in iteration N completes at the top of N+1), so the first pair
  /// of comparable steady iterations is (3, 4).
  int enforce_iters_since_plan_ = 0;

  // Current-phase accumulation.
  double phase_open_vt_ = 0;
  double phase_compute_s_ = 0;
  std::vector<perf::MemWindow> phase_windows_;

  // Previous-iteration phase times for the variation monitor.
  std::vector<double> prev_phase_times_;
  std::vector<double> cur_phase_times_;
  /// Parallel to cur_phase_times_: nonzero = communication phase (DAG
  /// barrier edges).
  std::vector<char> cur_phase_kinds_;

  // Phase-DAG slack scheduling (dag_schedule = slack).
  PhaseDag dag_;
  bool dag_ready_ = false;
  std::uint64_t dag_builds_ = 0;
  std::uint64_t dag_offpath_drift_ = 0;

  /// True while the one epoch-cadence re-profiling iteration runs: the
  /// plan keeps being enforced, but phases are sampled again so the
  /// ReplanController can compare weights at iteration end.
  bool epoch_profiling_ = false;

  double overhead_s_ = 0;
  std::uint64_t phases_executed_ = 0;
  std::uint64_t reprofiles_ = 0;
  std::uint64_t replan_checks_ = 0;
  std::uint64_t incremental_repairs_ = 0;
  std::uint64_t full_replans_ = 0;
  double last_drift_fraction_ = 0;
  double end_vt_ = 0;
};

}  // namespace unimem::rt
