// Shared real-arithmetic kernels for the workloads.  These touch the
// actual object payloads (with a stride, to bound host cost) so that a
// migration that corrupted or mis-repointed a buffer changes the checksum.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "core/exec_engine.h"
#include "core/object.h"
#include "minimpi/comm.h"

namespace unimem::wl {

inline constexpr std::size_t kTouchStride = 8;  ///< touch every 8th element

/// Deterministically fill a span with values derived from `seed`.
void fill_pattern(std::span<double> a, std::uint64_t seed);

/// y[i] += alpha * x[i] over the strided sample; returns sum of updates.
double axpy_touch(std::span<double> y, std::span<const double> x,
                  double alpha);

/// Sum over the strided sample.
double sum_touch(std::span<const double> a);

/// Strided stencil-ish update: a[i] = 0.5*a[i] + 0.25*(a[i-s]+a[i+s]).
double stencil_touch(std::span<double> a, std::size_t stride);

/// Gather: acc += a[idx[i] % a.size()] over a strided sample of idx.
double gather_touch(std::span<const double> a,
                    std::span<const std::int32_t> idx);

/// Apply fn(span) to every chunk of a (possibly chunked) object.
template <typename Fn>
void for_each_chunk(rt::DataObject& obj, Fn&& fn) {
  for (std::size_t c = 0; c < obj.chunk_count(); ++c)
    fn(obj.chunk_span<double>(c));
}

/// Sum over all chunks.
double sum_object(rt::DataObject& obj);

/// Fill all chunks deterministically.
void fill_object(rt::DataObject& obj, std::uint64_t seed);

/// Ring sendrecv: pack `payload_bytes` from `out` to the right neighbour,
/// receive into `in` from the left.  Blocking => one communication phase.
void ring_exchange(mpi::Comm& comm, rt::DataObject& out, rt::DataObject& in,
                   std::size_t payload_bytes, int tag);

/// Fluent builder for the access-descriptor list of one phase.  `scale`
/// multiplies every declared access count and flop (DriftSchedule's
/// per-phase drift factor); the default 1.0 is the static workload.
class WorkBuilder {
 public:
  explicit WorkBuilder(double scale = 1.0) : scale_(scale) {}

  WorkBuilder& flops(double f) {
    w_.flops += f * scale_;
    return *this;
  }
  /// Unit-stride stream (high MLP => bandwidth-sensitive when large).
  WorkBuilder& seq(rt::DataObject* o, std::uint64_t n, double wf = 0.0,
                   int mlp = 0) {
    return push(o, cache::Pattern::kSequential, n, 64, wf, mlp);
  }
  /// Fixed-stride sweep.
  WorkBuilder& strided(rt::DataObject* o, std::uint64_t n, std::size_t stride,
                       double wf = 0.0) {
    return push(o, cache::Pattern::kStrided, n, stride, wf, 0);
  }
  /// Independent random accesses.
  WorkBuilder& random(rt::DataObject* o, std::uint64_t n, double wf = 0.0) {
    return push(o, cache::Pattern::kRandom, n, 64, wf, 0);
  }
  /// Index-driven gather.
  WorkBuilder& gather(rt::DataObject* o, std::uint64_t n) {
    return push(o, cache::Pattern::kGather, n, 64, 0.0, 0);
  }
  /// Dependent chain (latency-sensitive).
  WorkBuilder& chase(rt::DataObject* o, std::uint64_t n) {
    return push(o, cache::Pattern::kPointerChase, n, 64, 0.0, 0);
  }
  const rt::PhaseWork& work() const { return w_; }

 private:
  WorkBuilder& push(rt::DataObject* o, cache::Pattern p, std::uint64_t n,
                    std::size_t stride, double wf, int mlp) {
    rt::ObjectAccess a;
    a.object = o;
    a.pattern = p;
    a.accesses = scale_ == 1.0 ? n
                               : static_cast<std::uint64_t>(
                                     static_cast<double>(n) * scale_ + 0.5);
    a.stride_bytes = stride;
    a.write_fraction = wf;
    a.mlp = mlp;
    w_.accesses.push_back(a);
    return *this;
  }
  double scale_ = 1.0;
  rt::PhaseWork w_;
};

}  // namespace unimem::wl
