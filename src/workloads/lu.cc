// LU — SSOR solver for the Navier-Stokes equations (NPB).
//
// Target data objects (Table 3): u, rsd, frct, flux, a, b, c, d, buf, buf1.
//
// LU shows the largest NVM-only slowdown in the paper's preliminary study
// (2.19x at 1/2 bandwidth, 2.14x at 2x latency): the SSOR wavefront sweeps
// are memory-bound with limited overlap.  The same objects (rsd, u, the
// a..d block diagonals) are hot in every phase, so cross-phase global
// search captures >90% of the achievable gain (Fig. 11).
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace unimem::wl {

namespace {

class LuWorkload final : public Workload {
 public:
  std::string name() const override { return "lu"; }

  double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) override {
    const std::size_t B = cfg.rank_bytes();
    const double iters = cfg.iterations;
    auto elems = [](std::size_t bytes) { return bytes / sizeof(double); };

    const std::size_t n_u = elems(B * 12 / 100);
    const std::size_t n_rsd = elems(B * 12 / 100);
    const std::size_t n_frct = elems(B * 10 / 100);
    const std::size_t n_flux = elems(B * 8 / 100);
    const std::size_t n_diag = elems(B * 10 / 100);  // a,b,c,d
    const std::size_t n_buf = elems(B * 2 / 100);

    auto dobj = [&](const char* n, std::size_t e, double est) {
      rt::ObjectTraits t;
      t.estimated_references = est;
      return ctx.malloc_object(n, e * sizeof(double), t);
    };
    rt::DataObject* u = dobj("u", n_u, iters * 3.0 * n_u);
    rt::DataObject* rsd = dobj("rsd", n_rsd, iters * 6.0 * n_rsd);
    rt::DataObject* frct = dobj("frct", n_frct, iters * n_frct);
    rt::DataObject* flux = dobj("flux", n_flux, iters * 2.0 * n_flux);
    rt::DataObject* a = dobj("a", n_diag, iters * 2.0 * n_diag);
    rt::DataObject* b = dobj("b", n_diag, iters * 2.0 * n_diag);
    rt::DataObject* c = dobj("c", n_diag, iters * 2.0 * n_diag);
    rt::DataObject* d = dobj("d", n_diag, iters * 2.0 * n_diag);
    rt::DataObject* buf = dobj("buf", n_buf, iters * n_buf);
    rt::DataObject* buf1 = dobj("buf1", n_buf, iters * n_buf);

    fill_object(*u, 41);
    fill_object(*rsd, 42);
    fill_object(*a, 43);
    fill_object(*d, 44);

    double checksum = 0;
    mpi::Comm& comm = *ctx.comm();
    DriftSchedule drift(cfg);
    ctx.start();
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.iteration_begin();

      // Phase: rhs — flux-difference streams.
      ctx.compute(WorkBuilder(drift.factor(it, 0))
                      .flops(6.0 * static_cast<double>(n_rsd))
                      .seq(u, n_u)
                      .seq(frct, n_frct)
                      .seq(flux, 2 * n_flux, 0.5)
                      .seq(rsd, 2 * n_rsd, 0.5)
                      .work());
      checksum += axpy_touch(rsd->as_span<double>(), u->as_span<double>(), 0.2);

      // Phase: lower-triangular wavefront (dependent sweep, low MLP).
      ctx.compute(WorkBuilder(drift.factor(it, 1))
                      .flops(8.0 * static_cast<double>(n_diag))
                      .seq(a, n_diag, 0.0, /*mlp=*/12)
                      .seq(b, n_diag, 0.0, /*mlp=*/12)
                      .seq(c, n_diag, 0.0, /*mlp=*/12)
                      .seq(d, n_diag, 0.0, /*mlp=*/12)
                      .seq(rsd, n_rsd, 0.5, /*mlp=*/12)
                      .work());
      checksum += stencil_touch(rsd->as_span<double>(), 4);

      // Phase: wavefront boundary exchange.
      ctx.compute(
          WorkBuilder(drift.factor(it, 2)).seq(buf, 2 * n_buf, 1.0).work());
      ring_exchange(comm, *buf, *buf1, n_buf * sizeof(double), 500 + it % 3);

      // Phase: upper-triangular wavefront.
      ctx.compute(WorkBuilder(drift.factor(it, 3))
                      .flops(8.0 * static_cast<double>(n_diag))
                      .seq(buf1, n_buf)
                      .seq(a, n_diag, 0.0, /*mlp=*/12)
                      .seq(b, n_diag, 0.0, /*mlp=*/12)
                      .seq(c, n_diag, 0.0, /*mlp=*/12)
                      .seq(d, n_diag, 0.0, /*mlp=*/12)
                      .seq(rsd, n_rsd, 0.5, /*mlp=*/12)
                      .work());
      checksum += stencil_touch(rsd->as_span<double>(), 16);

      // Phase: update u from rsd.
      ctx.compute(WorkBuilder(drift.factor(it, 4))
                      .flops(2.0 * static_cast<double>(n_u))
                      .seq(rsd, n_rsd)
                      .seq(u, n_u, 1.0)
                      .work());
      checksum += axpy_touch(u->as_span<double>(), rsd->as_span<double>(), 0.3);

      double norm[1] = {checksum * 1e-9};
      comm.allreduce(norm, 1);
    }
    ctx.end();

    checksum += sum_object(*u) + sum_object(*rsd);
    for (rt::DataObject* o : {u, rsd, frct, flux, a, b, c, d, buf, buf1})
      ctx.free_object(o);
    return checksum;
  }
};

}  // namespace

std::unique_ptr<Workload> make_lu() { return std::make_unique<LuWorkload>(); }

}  // namespace unimem::wl
