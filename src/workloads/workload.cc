#include "workloads/workload.h"

#include <stdexcept>

namespace unimem::wl {

std::unique_ptr<Workload> make_cg();
std::unique_ptr<Workload> make_ft();
std::unique_ptr<Workload> make_bt();
std::unique_ptr<Workload> make_lu();
std::unique_ptr<Workload> make_sp();
std::unique_ptr<Workload> make_mg();
std::unique_ptr<Workload> make_nek();

std::unique_ptr<Workload> make_workload(const std::string& name) {
  if (name == "cg") return make_cg();
  if (name == "ft") return make_ft();
  if (name == "bt") return make_bt();
  if (name == "lu") return make_lu();
  if (name == "sp") return make_sp();
  if (name == "mg") return make_mg();
  if (name == "nek") return make_nek();
  throw std::invalid_argument("unknown workload: " + name);
}

std::vector<std::string> workload_names() {
  return {"cg", "ft", "bt", "lu", "sp", "mg", "nek"};
}

}  // namespace unimem::wl
