#include "workloads/workload.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace unimem::wl {

DriftSchedule::DriftSchedule(const WorkloadConfig& cfg)
    : amplitude_(cfg.drift_amplitude),
      period_(std::max(1, cfg.drift_period)),
      seed_(cfg.drift_seed) {}

double DriftSchedule::factor(int iteration, std::size_t phase) const {
  if (amplitude_ <= 0) return 1.0;
  const std::uint64_t window =
      static_cast<std::uint64_t>(iteration < 0 ? 0 : iteration) /
      static_cast<std::uint64_t>(period_);
  // One independent draw per (window, phase): SplitMix64 seeded from the
  // pair, burning one output to decorrelate nearby seeds.
  Rng rng(seed_ ^ (window * 0x9e3779b97f4a7c15ull) ^
          (static_cast<std::uint64_t>(phase) * 0xbf58476d1ce4e5b9ull));
  rng.next();
  return std::max(0.05, 1.0 + amplitude_ * rng.uniform(-1.0, 1.0));
}

std::unique_ptr<Workload> make_cg();
std::unique_ptr<Workload> make_ft();
std::unique_ptr<Workload> make_bt();
std::unique_ptr<Workload> make_lu();
std::unique_ptr<Workload> make_sp();
std::unique_ptr<Workload> make_mg();
std::unique_ptr<Workload> make_nek();

std::unique_ptr<Workload> make_workload(const std::string& name) {
  if (name == "cg") return make_cg();
  if (name == "ft") return make_ft();
  if (name == "bt") return make_bt();
  if (name == "lu") return make_lu();
  if (name == "sp") return make_sp();
  if (name == "mg") return make_mg();
  if (name == "nek") return make_nek();
  throw std::invalid_argument("unknown workload: " + name);
}

std::vector<std::string> workload_names() {
  return {"cg", "ft", "bt", "lu", "sp", "mg", "nek"};
}

}  // namespace unimem::wl
