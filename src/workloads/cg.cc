// CG — conjugate gradient with an implicit sparse matrix (NPB kernel).
//
// Target data objects (paper Table 3): col_idx, a, w, z, p, q, r, rowstr, x
// (42% of the application footprint; the init-only arrays aelt/acol/arow
// are deliberately NOT target objects, as in the paper).
//
// Access character: the SpMV streams a and col_idx (bandwidth) and gathers
// p through col_idx (irregular, latency-leaning); the vector updates are
// short streams.  The pattern is identical in every phase of every
// iteration, which is why the paper finds cross-phase global search
// contributes >90% of Unimem's gain on CG.
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace unimem::wl {

namespace {

class CgWorkload final : public Workload {
 public:
  std::string name() const override { return "cg"; }

  double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) override {
    // Footprint ~ 132*na bytes: a(8*11na) + col_idx(4*11na) + 7 vectors.
    // CG's target objects are only 42% of the app footprint (Table 3) —
    // the init-only arrays are excluded — so the target set is about half
    // a rank's share and mostly fits the DRAM allowance, as in the paper.
    const std::size_t na =
        std::max<std::size_t>(4096, cfg.rank_bytes() / 2 / 132) &
        ~std::size_t{1023};
    const std::size_t nz = 11 * na;
    const double iters = cfg.iterations;

    rt::ObjectTraits t;
    auto dobj = [&](const char* n, std::size_t elems, double est) {
      rt::ObjectTraits tt = t;
      tt.estimated_references = est;
      return ctx.malloc_object(n, elems * sizeof(double), tt);
    };
    rt::ObjectTraits ti;  // int32 arrays
    ti.estimated_references = iters * static_cast<double>(nz);
    rt::DataObject* col_idx =
        ctx.malloc_object("col_idx", nz * sizeof(std::int32_t), ti);
    rt::DataObject* a = dobj("a", nz, iters * static_cast<double>(nz));
    // w's reference count depends on a convergence test -> unknown at loop
    // entry (exercises the paper's "cannot determine initial placement").
    rt::DataObject* w = dobj("w", na, -1.0);
    rt::DataObject* z = dobj("z", na, iters * 3.0 * static_cast<double>(na));
    rt::DataObject* p = dobj("p", na, iters * static_cast<double>(nz));
    rt::DataObject* q = dobj("q", na, iters * 3.0 * static_cast<double>(na));
    rt::DataObject* r = dobj("r", na, iters * 3.0 * static_cast<double>(na));
    rt::ObjectTraits tr;
    tr.estimated_references = iters * static_cast<double>(na);
    rt::DataObject* rowstr =
        ctx.malloc_object("rowstr", (na + 1) * sizeof(std::int32_t), tr);
    rt::DataObject* x = dobj("x", na, iters * 2.0 * static_cast<double>(na));

    // Real data.
    fill_object(*a, 11);
    fill_object(*p, 12);
    fill_object(*x, 13);
    {
      auto ci = col_idx->as_span<std::int32_t>();
      Rng rng(99);
      for (std::size_t i = 0; i < ci.size(); i += kTouchStride)
        ci[i] = static_cast<std::int32_t>(rng.below(na));
      auto rs = rowstr->as_span<std::int32_t>();
      for (std::size_t i = 0; i < rs.size(); i += kTouchStride)
        rs[i] = static_cast<std::int32_t>(i * 11);
    }

    double checksum = 0;
    mpi::Comm& comm = *ctx.comm();
    DriftSchedule drift(cfg);
    ctx.start();
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.iteration_begin();

      // Phase: q = A*p  (SpMV: stream a/col_idx, gather p, write q).
      ctx.compute(WorkBuilder(drift.factor(it, 0))
                      .flops(2.0 * static_cast<double>(nz))
                      .seq(a, nz)
                      .seq(col_idx, nz)
                      .strided(rowstr, na, 64)
                      .gather(p, nz)
                      .seq(q, na, 1.0)
                      .work());
      checksum += gather_touch(p->as_span<double>(),
                               col_idx->as_span<std::int32_t>());
      axpy_touch(q->as_span<double>(), a->as_span<double>().subspan(0, na),
                 0.5);

      double dot[1] = {sum_touch(q->as_span<double>())};
      comm.allreduce(dot, 1);
      double alpha = 1.0 / (1.0 + std::abs(dot[0]));

      // Phase: z += alpha p ; r -= alpha q.
      ctx.compute(WorkBuilder(drift.factor(it, 1))
                      .flops(4.0 * static_cast<double>(na))
                      .seq(z, na, 0.5)
                      .seq(p, na)
                      .seq(r, na, 0.5)
                      .seq(q, na)
                      .work());
      checksum += axpy_touch(z->as_span<double>(), p->as_span<double>(), alpha);
      checksum +=
          axpy_touch(r->as_span<double>(), q->as_span<double>(), -alpha);

      double rho[1] = {sum_touch(r->as_span<double>())};
      comm.allreduce(rho, 1);
      double beta = rho[0] / (1.0 + std::abs(dot[0]));

      // Phase: p = r + beta p ; x += alpha z ; w norm work.
      ctx.compute(WorkBuilder(drift.factor(it, 2))
                      .flops(5.0 * static_cast<double>(na))
                      .seq(p, na, 0.5)
                      .seq(r, na)
                      .seq(x, na, 0.5)
                      .seq(z, na)
                      .seq(w, na, 1.0)
                      .work());
      checksum += axpy_touch(p->as_span<double>(), r->as_span<double>(), beta);
      checksum += axpy_touch(x->as_span<double>(), z->as_span<double>(), alpha);
      fill_pattern(w->as_span<double>(), static_cast<std::uint64_t>(it));

      double norm[1] = {sum_touch(x->as_span<double>())};
      comm.allreduce(norm, 1);
      checksum += norm[0] * 1e-3;
    }
    ctx.end();

    checksum += sum_object(*x) + sum_object(*z);
    for (rt::DataObject* o : {col_idx, a, w, z, p, q, r, rowstr, x})
      ctx.free_object(o);
    return checksum;
  }
};

}  // namespace

std::unique_ptr<Workload> make_cg() { return std::make_unique<CgWorkload>(); }

}  // namespace unimem::wl
