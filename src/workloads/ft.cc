// FT — 3-D FFT PDE solver (NPB).
//
// Target data objects (Table 3): u, u0, u1, u2, twiddle (99% of footprint).
//
// u0/u1/u2 are large contiguous 1-D arrays with regular references — the
// one case where the paper's conservative chunking applies and pays off:
// "we do have a benchmark (FT) benefit from partitioning large data
// objects" (58% of FT's improvement, Fig. 11).  Whole objects exceed the
// DRAM budget and could never migrate; chunks can.  The per-iteration
// all-to-all transpose makes FT communication-heavy.
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace unimem::wl {

namespace {

class FtWorkload final : public Workload {
 public:
  std::string name() const override { return "ft"; }

  double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) override {
    // FT's grids are the largest arrays in the suite relative to DRAM (the
    // paper runs FT at CLASS C because D is too long): a single grid array
    // exceeds the DRAM allowance, so whole-object placement is impossible
    // and chunked placement is the only way to use DRAM at all.
    const std::size_t B = cfg.rank_bytes() * 5 / 2;
    const double iters = cfg.iterations;
    auto elems = [](std::size_t bytes) { return bytes / sizeof(double); };

    const std::size_t n_grid = elems(B * 29 / 100);  // u0/u1/u2 each
    const std::size_t n_tw = elems(B * 10 / 100);
    const std::size_t n_roots = elems(B / 100);

    auto dobj = [&](const char* n, std::size_t e, double est,
                    bool chunkable) {
      rt::ObjectTraits t;
      t.estimated_references = est;
      t.chunkable = chunkable;  // regular 1-D references: safe to chunk
      return ctx.malloc_object(n, e * sizeof(double), t);
    };
    rt::DataObject* u = dobj("u", n_roots, iters * n_roots, false);
    rt::DataObject* u0 = dobj("u0", n_grid, iters * 3.0 * n_grid, true);
    rt::DataObject* u1 = dobj("u1", n_grid, iters * 4.0 * n_grid, true);
    rt::DataObject* u2 = dobj("u2", n_grid, iters * 2.0 * n_grid, true);
    rt::DataObject* twiddle = dobj("twiddle", n_tw, iters * 2.0 * n_tw, false);

    fill_object(*u0, 61);
    fill_object(*u1, 62);
    fill_object(*twiddle, 63);
    fill_object(*u, 64);

    const int p = ctx.comm()->size();
    // Per-destination transpose slice, rounded to whole doubles.
    const std::size_t a2a_bytes =
        std::max<std::size_t>(4096, n_grid * sizeof(double) /
                                        static_cast<std::size_t>(p) / 4) &
        ~std::size_t{7};
    std::vector<double> sendbuf(a2a_bytes / 8 * static_cast<std::size_t>(p));
    std::vector<double> recvbuf(sendbuf.size());

    double checksum = 0;
    mpi::Comm& comm = *ctx.comm();
    DriftSchedule drift(cfg);
    ctx.start();
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.iteration_begin();

      // Phase: evolve — u1 = u0 * twiddle^t (bulk streams).
      ctx.compute(WorkBuilder(drift.factor(it, 0))
                      .flops(4.0 * static_cast<double>(n_grid))
                      .seq(u0, n_grid, 0.5)
                      .seq(twiddle, n_tw)
                      .seq(u1, n_grid, 1.0)
                      .work());
      for_each_chunk(*u0, [&](std::span<double> s) {
        checksum += stencil_touch(s, 8);
      });

      // Phase: local 1-D FFTs along the first two dimensions — strided
      // butterfly passes over u1 with the root table u.
      ctx.compute(WorkBuilder(drift.factor(it, 1))
                      .flops(10.0 * static_cast<double>(n_grid))
                      .seq(u, 4 * n_roots)
                      .strided(u1, 2 * n_grid, 128, 0.5)
                      .work());
      for_each_chunk(*u1, [&](std::span<double> s) {
        checksum += stencil_touch(s, 32);
      });

      // Phase: global transpose (all-to-all).
      comm.alltoall(sendbuf.data(), recvbuf.data(), a2a_bytes);

      // Phase: FFT along the third dimension into u2 + checksum taps.
      ctx.compute(WorkBuilder(drift.factor(it, 2))
                      .flops(6.0 * static_cast<double>(n_grid))
                      .seq(u1, n_grid)
                      .seq(u, 2 * n_roots)
                      .seq(u2, n_grid, 1.0)
                      .random(u2, n_grid / 64)
                      .work());
      for_each_chunk(*u2, [&](std::span<double> s) {
        checksum += sum_touch(s) * 1e-6;
      });

      double norm[1] = {checksum * 1e-9};
      comm.allreduce(norm, 1);
    }
    ctx.end();

    checksum += sum_object(*u1) + sum_object(*u0);
    for (rt::DataObject* o : {u, u0, u1, u2, twiddle}) ctx.free_object(o);
    return checksum;
  }
};

}  // namespace

std::unique_ptr<Workload> make_ft() { return std::make_unique<FtWorkload>(); }

}  // namespace unimem::wl
