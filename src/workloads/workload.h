// Workload interface: phase-structured iterative MPI mini-apps mirroring
// the paper's benchmarks (NPB CG/FT/BT/LU/SP/MG and Nek5000-eddy).
//
// Each workload allocates the *same target data objects* as the paper's
// Table 3, runs an iterative main loop whose phases are delineated by
// (mini-)MPI calls, performs real (scaled-down) arithmetic on the object
// payloads so data integrity across migrations is checkable, and declares
// its per-phase access patterns to the memory substrate through PhaseWork
// descriptors.
//
// A workload runs against any rt::Context — the Unimem runtime or a static
// placement baseline — which is how the paper's policy comparisons are
// produced.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/context.h"

namespace unimem::wl {

struct WorkloadConfig {
  /// NPB-style input class (scaled; see DESIGN.md §5): S/A/C/D.
  char cls = 'C';
  int iterations = 10;
  /// Ranks sharing the global problem (strong scaling divides the data).
  int nranks = 4;

  /// Global problem footprint for the class across all ranks.  Chosen so
  /// that at the paper's base configuration (class C, 4 ranks, 8 MiB DRAM
  /// ~ 256 MB) a rank's target objects are ~2x the DRAM allowance — the
  /// same "most-but-not-all fits" regime as NPB class C vs 256 MB.
  std::size_t global_footprint() const {
    switch (cls) {
      case 'S': return 8 * kMiB;
      case 'A': return 24 * kMiB;
      case 'C': return 48 * kMiB;
      case 'D': return 96 * kMiB;
      default: return 48 * kMiB;
    }
  }
  /// Per-rank share of the footprint.
  std::size_t rank_bytes() const {
    return global_footprint() / static_cast<std::size_t>(nranks < 1 ? 1 : nranks);
  }
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  /// SPMD body: runs on every rank inside World::run.  Returns a checksum
  /// that must be identical for the same config under any placement
  /// policy (migration-integrity check).
  virtual double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) = 0;
};

/// Factory: "cg", "ft", "bt", "lu", "sp", "mg", "nek".
std::unique_ptr<Workload> make_workload(const std::string& name);

/// The six NPB kernels + Nek, in the paper's presentation order.
std::vector<std::string> workload_names();

}  // namespace unimem::wl
