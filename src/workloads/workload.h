// Workload interface: phase-structured iterative MPI mini-apps mirroring
// the paper's benchmarks (NPB CG/FT/BT/LU/SP/MG and Nek5000-eddy).
//
// Each workload allocates the *same target data objects* as the paper's
// Table 3, runs an iterative main loop whose phases are delineated by
// (mini-)MPI calls, performs real (scaled-down) arithmetic on the object
// payloads so data integrity across migrations is checkable, and declares
// its per-phase access patterns to the memory substrate through PhaseWork
// descriptors.
//
// A workload runs against any rt::Context — the Unimem runtime or a static
// placement baseline — which is how the paper's policy comparisons are
// produced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/context.h"

namespace unimem::wl {

struct WorkloadConfig {
  /// NPB-style input class (scaled; see DESIGN.md §5): S/A/C/D.
  char cls = 'C';
  int iterations = 10;
  /// Ranks sharing the global problem (strong scaling divides the data).
  int nranks = 4;

  // ---- drift injection (dynamic-workload scenarios) ---------------------
  /// Amplitude of the seeded multiplicative perturbation DriftSchedule
  /// applies to each phase's declared access counts: factors are drawn
  /// uniformly from [1 - a, 1 + a).  0 (default) = static workload.
  /// Perturbs only the *modeled* traffic, never the touch kernels, so
  /// checksums stay placement- and drift-invariant.
  double drift_amplitude = 0.0;
  /// Iterations per drift window: factors re-draw every `drift_period`
  /// iterations (piecewise-constant step drifts, the shape the adaptive
  /// re-planner's epoch cadence is built to catch).
  int drift_period = 4;
  std::uint64_t drift_seed = 0x9e3779b9ull;

  /// Global problem footprint for the class across all ranks.  Chosen so
  /// that at the paper's base configuration (class C, 4 ranks, 8 MiB DRAM
  /// ~ 256 MB) a rank's target objects are ~2x the DRAM allowance — the
  /// same "most-but-not-all fits" regime as NPB class C vs 256 MB.
  std::size_t global_footprint() const {
    switch (cls) {
      case 'S': return 8 * kMiB;
      case 'A': return 24 * kMiB;
      case 'C': return 48 * kMiB;
      case 'D': return 96 * kMiB;
      default: return 48 * kMiB;
    }
  }
  /// Per-rank share of the footprint.
  std::size_t rank_bytes() const {
    return global_footprint() / static_cast<std::size_t>(nranks < 1 ? 1 : nranks);
  }
};

/// Seeded drift-injection schedule: a multiplicative access-weight factor
/// per (iteration window, phase), piecewise-constant over
/// `drift_period` iterations.  Pure function of the config — identical on
/// every rank, so collectives stay balanced and runs stay deterministic.
/// Workloads feed the factor to WorkBuilder's scale so per-unit profile
/// weights genuinely shift between windows (each phase drifts
/// independently, and units mix phases differently).
class DriftSchedule {
 public:
  explicit DriftSchedule(const WorkloadConfig& cfg);

  bool active() const { return amplitude_ > 0; }

  /// Scale factor for phase `phase` of iteration `iteration`; 1.0 when
  /// drift is off.  Clamped to >= 0.05 so extreme amplitudes never turn a
  /// phase's traffic negative.
  double factor(int iteration, std::size_t phase) const;

 private:
  double amplitude_;
  int period_;
  std::uint64_t seed_;
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  /// SPMD body: runs on every rank inside World::run.  Returns a checksum
  /// that must be identical for the same config under any placement
  /// policy (migration-integrity check).
  virtual double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) = 0;
};

/// Factory: "cg", "ft", "bt", "lu", "sp", "mg", "nek".
std::unique_ptr<Workload> make_workload(const std::string& name);

/// The six NPB kernels + Nek, in the paper's presentation order.
std::vector<std::string> workload_names();

}  // namespace unimem::wl
