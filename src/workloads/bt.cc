// BT — block tridiagonal ADI solver (NPB).
//
// Target data objects (Table 3): rhs, forcing, u, us, vs, ws, qs, rho_i,
// square, out_buffer, in_buffer, fjac, njac, lhsa, lhsb, lhsc.
//
// The x/y/z sweep phases are each hot on a *different* block system
// (lhsa / lhsb / lhsc with fjac/njac), so a single whole-iteration
// placement leaves gains on the table — this is the benchmark where the
// paper's phase-local search adds 19% on top of the global search
// (Fig. 11), at the cost of per-phase migrations (24 per run in Table 4).
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace unimem::wl {

namespace {

class BtWorkload final : public Workload {
 public:
  std::string name() const override { return "bt"; }

  double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) override {
    const std::size_t B = cfg.rank_bytes();
    const double iters = cfg.iterations;
    auto elems = [](std::size_t bytes) { return bytes / sizeof(double); };

    // The three block systems are sized so one phase's hot set (lhsX +
    // jacobians + rhs) is about one DRAM budget, but all three together are
    // not — the regime where phase-local placement beats a global one.
    const std::size_t n_lhs = elems(B * 20 / 100);  // lhsa/lhsb/lhsc
    const std::size_t n_jac = elems(B * 12 / 100);  // fjac/njac
    const std::size_t n_u = elems(B * 8 / 100);
    const std::size_t n_rhs = elems(B * 10 / 100);
    const std::size_t n_forc = elems(B * 3 / 100);
    const std::size_t n_aux = elems(B / 200);       // 6 aux arrays
    const std::size_t n_buf = elems(B * 3 / 200);

    auto dobj = [&](const char* n, std::size_t e, double est) {
      rt::ObjectTraits t;
      t.estimated_references = est;
      return ctx.malloc_object(n, e * sizeof(double), t);
    };
    rt::DataObject* rhs = dobj("rhs", n_rhs, iters * 5.0 * n_rhs);
    rt::DataObject* forcing = dobj("forcing", n_forc, iters * n_forc);
    rt::DataObject* u = dobj("u", n_u, iters * 2.0 * n_u);
    rt::DataObject* us = dobj("us", n_aux, iters * n_aux);
    rt::DataObject* vs = dobj("vs", n_aux, iters * n_aux);
    rt::DataObject* ws = dobj("ws", n_aux, iters * n_aux);
    rt::DataObject* qs = dobj("qs", n_aux, iters * n_aux);
    rt::DataObject* rho_i = dobj("rho_i", n_aux, iters * n_aux);
    rt::DataObject* square = dobj("square", n_aux, iters * n_aux);
    rt::DataObject* out_buffer = dobj("out_buffer", n_buf, iters * 2.0 * n_buf);
    rt::DataObject* in_buffer = dobj("in_buffer", n_buf, iters * 2.0 * n_buf);
    rt::DataObject* fjac = dobj("fjac", n_jac, iters * 3.0 * n_jac);
    rt::DataObject* njac = dobj("njac", n_jac, iters * 3.0 * n_jac);
    rt::DataObject* lhsa = dobj("lhsa", n_lhs, iters * 2.0 * n_lhs);
    rt::DataObject* lhsb = dobj("lhsb", n_lhs, iters * 2.0 * n_lhs);
    rt::DataObject* lhsc = dobj("lhsc", n_lhs, iters * 2.0 * n_lhs);

    fill_object(*u, 31);
    fill_object(*rhs, 32);
    fill_object(*lhsa, 33);
    fill_object(*lhsb, 34);
    fill_object(*lhsc, 35);

    double checksum = 0;
    mpi::Comm& comm = *ctx.comm();
    DriftSchedule drift(cfg);
    ctx.start();
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.iteration_begin();

      // Phase: compute_rhs.
      ctx.compute(WorkBuilder(drift.factor(it, 0))
                      .flops(8.0 * static_cast<double>(n_rhs))
                      .seq(u, n_u)
                      .seq(forcing, n_forc)
                      .seq(us, n_aux)
                      .seq(vs, n_aux)
                      .seq(ws, n_aux)
                      .seq(qs, n_aux)
                      .seq(rho_i, n_aux)
                      .seq(square, n_aux)
                      .seq(rhs, 2 * n_rhs, 0.5)
                      .work());
      checksum += axpy_touch(rhs->as_span<double>(), u->as_span<double>(), 0.2);

      // Phase: x_solve — block solves on lhsa (+ jacobians), high traffic.
      ctx.compute(WorkBuilder(drift.factor(it, 1))
                      .flops(10.0 * static_cast<double>(n_lhs))
                      .seq(fjac, 2 * n_jac, 0.3)
                      .seq(njac, 2 * n_jac, 0.3)
                      .seq(lhsa, 6 * n_lhs, 0.4, /*mlp=*/12)
                      .seq(rhs, n_rhs, 0.5)
                      .work());
      checksum += stencil_touch(lhsa->as_span<double>(), 8);

      // Phase: face exchange.
      ctx.compute(WorkBuilder(drift.factor(it, 2))
                      .flops(static_cast<double>(n_buf))
                      .seq(out_buffer, 2 * n_buf, 1.0)
                      .work());
      ring_exchange(comm, *out_buffer, *in_buffer, n_buf * sizeof(double),
                    300 + it % 5);

      // Phase: y_solve — hot on lhsb.
      ctx.compute(WorkBuilder(drift.factor(it, 3))
                      .flops(10.0 * static_cast<double>(n_lhs))
                      .seq(in_buffer, n_buf)
                      .seq(fjac, n_jac, 0.3)
                      .seq(njac, n_jac, 0.3)
                      .seq(lhsb, 6 * n_lhs, 0.4, /*mlp=*/12)
                      .seq(rhs, n_rhs, 0.5)
                      .work());
      checksum += stencil_touch(lhsb->as_span<double>(), 8);

      // Phase: face exchange.
      ctx.compute(WorkBuilder(drift.factor(it, 4))
                      .flops(static_cast<double>(n_buf))
                      .seq(out_buffer, 2 * n_buf, 1.0)
                      .work());
      ring_exchange(comm, *out_buffer, *in_buffer, n_buf * sizeof(double),
                    400 + it % 5);

      // Phase: z_solve + add — hot on lhsc, final u update.
      ctx.compute(WorkBuilder(drift.factor(it, 5))
                      .flops(10.0 * static_cast<double>(n_lhs))
                      .seq(in_buffer, n_buf)
                      .seq(lhsc, 6 * n_lhs, 0.4, /*mlp=*/12)
                      .seq(rhs, n_rhs, 0.3)
                      .seq(u, n_u, 1.0)
                      .work());
      checksum += stencil_touch(lhsc->as_span<double>(), 8);
      checksum += axpy_touch(u->as_span<double>(), rhs->as_span<double>(), 0.1);

      double norm[1] = {checksum * 1e-9};
      comm.allreduce(norm, 1);
    }
    ctx.end();

    checksum += sum_object(*u) + sum_object(*rhs);
    for (rt::DataObject* o :
         {rhs, forcing, u, us, vs, ws, qs, rho_i, square, out_buffer,
          in_buffer, fjac, njac, lhsa, lhsb, lhsc})
      ctx.free_object(o);
    return checksum;
  }
};

}  // namespace

std::unique_ptr<Workload> make_bt() { return std::make_unique<BtWorkload>(); }

}  // namespace unimem::wl
