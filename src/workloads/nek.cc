// Nek5000 "eddy" — spectral-element CFD production-code proxy.
//
// The paper uses the eddy test problem (256x256 mesh) with 48 target data
// objects: "main simulation variables and geometry arrays in Nek5000 core"
// (35% of the footprint).  Nek5000 is the one code in the evaluation where
// Unimem beats the statically-placed X-Men (~10%): "Nek5000 is a
// production code with various memory access patterns across phases.
// Unimem adapts to those variations."  X-Men installs ONE placement from
// whole-run aggregates; Unimem's phase-local search follows the per-phase
// hot-set rotation, and its variation monitor additionally re-profiles
// when the simulation drifts mid-run (§3.2 workload variation).
//
// The proxy therefore rotates the hot set across the phases of every
// iteration (momentum solve -> pressure solve -> geometry/dealiasing ->
// scalar transport), with each phase's working set comparable to the DRAM
// budget, and applies one mild intensity drift halfway through the run to
// exercise the re-profiling path.
#include <cmath>
#include <cstdio>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace unimem::wl {

namespace {

constexpr int kNumVars = 24;  ///< simulation variables vx,vy,pr,t,...
constexpr int kNumGeom = 24;  ///< geometry arrays g01..g24

class NekWorkload final : public Workload {
 public:
  std::string name() const override { return "nek"; }

  double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) override {
    // Nek5000's working set is large relative to the DRAM allowance: each
    // solver stage's hot set alone rivals the budget, so a single static
    // placement can cover only a fraction of any stage — the regime where
    // phase-adaptive placement pays.
    const std::size_t B = cfg.rank_bytes() * 8 / 3;
    const double iters = cfg.iterations;
    auto elems = [](std::size_t bytes) { return bytes / sizeof(double); };

    // 48 objects: variables carry 70% of the footprint, geometry 30%.
    const std::size_t n_var = elems(B * 75 / 100 / kNumVars);
    const std::size_t n_geom = elems(B * 25 / 100 / kNumGeom);

    std::vector<rt::DataObject*> vars, geom;
    char nm[32];
    for (int i = 0; i < kNumVars; ++i) {
      std::snprintf(nm, sizeof nm, "v%02d", i);
      rt::ObjectTraits t;
      t.estimated_references = iters * static_cast<double>(n_var) *
                               (i < 8 ? 3.0 : 1.5);
      vars.push_back(ctx.malloc_object(nm, n_var * sizeof(double), t));
    }
    for (int i = 0; i < kNumGeom; ++i) {
      std::snprintf(nm, sizeof nm, "g%02d", i);
      rt::ObjectTraits t;
      t.estimated_references = -1.0;  // geometry use depends on runtime flags
      geom.push_back(ctx.malloc_object(nm, n_geom * sizeof(double), t));
    }
    for (int i = 0; i < 8; ++i) fill_object(*vars[i], 70 + i);
    for (int i = 0; i < 4; ++i) fill_object(*geom[i], 80 + i);

    double checksum = 0;
    mpi::Comm& comm = *ctx.comm();
    DriftSchedule drift(cfg);
    ctx.start();
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.iteration_begin();
      // Mid-run drift (§3.2 workload variation): halfway through the
      // simulation the pressure preconditioner changes, shifting the hot
      // variable group of the pressure phase — a > 10% phase-time change
      // that the variation monitor must catch and re-plan for.
      const bool late = it * 2 >= cfg.iterations;
      const int p_lo = late ? 12 : 8;
      const int geom_passes = 2;

      // Phase 1: momentum solve — hot on vars[0..7].
      {
        WorkBuilder w(drift.factor(it, 0));
        w.flops(6.0 * static_cast<double>(n_var));
        for (int i = 0; i < 4; ++i) w.seq(vars[i], 6 * n_var, 0.4);
        ctx.compute(w.work());
      }
      checksum += axpy_touch(vars[0]->as_span<double>(),
                             vars[1]->as_span<double>(), 0.01);
      double dot[1] = {checksum * 1e-9};
      comm.allreduce(dot, 1);

      // Phase 2: pressure solve — hot on an 8-variable window that shifts
      // when the preconditioner drifts.
      {
        WorkBuilder w(drift.factor(it, 1));
        w.flops(8.0 * static_cast<double>(n_var));
        for (int i = p_lo; i < p_lo + 4; ++i)
          w.seq(vars[i], 6 * n_var, 0.4);
        w.gather(vars[p_lo], n_var / 2);
        ctx.compute(w.work());
      }
      checksum += stencil_touch(vars[8]->as_span<double>(), 8);
      double dot2[1] = {checksum * 1e-9};
      comm.allreduce(dot2, 1);

      // Phase 3: geometry / dealiasing — hot on the geometry arrays.
      {
        WorkBuilder w(drift.factor(it, 2));
        w.flops(6.0 * static_cast<double>(n_geom) * geom_passes);
        for (int i = 0; i < kNumGeom; ++i)
          w.seq(geom[i], static_cast<std::uint64_t>(geom_passes) * n_geom,
                0.3);
        // Lagged fields touched lightly while geometry dominates.
        for (int i = 20; i < kNumVars; ++i) w.seq(vars[i], n_var / 4, 0.2);
        w.chase(geom[1], n_geom / 8);
        ctx.compute(w.work());
      }
      checksum += stencil_touch(geom[0]->as_span<double>(), 4);
      double dot3[1] = {checksum * 1e-9};
      comm.allreduce(dot3, 1);

      // Phase 4: scalar transport + gs_op — hot on vars[16..23].
      {
        WorkBuilder w(drift.factor(it, 3));
        w.flops(4.0 * static_cast<double>(n_var));
        for (int i = 16; i < 20; ++i) w.seq(vars[i], 6 * n_var, 0.4);
        w.gather(vars[16], n_var / 2);
        ctx.compute(w.work());
      }
      checksum += sum_touch(vars[16]->as_span<double>()) * 1e-6;
      double norm[1] = {checksum * 1e-9};
      comm.allreduce(norm, 1);
    }
    ctx.end();

    checksum += sum_object(*vars[0]) + sum_object(*geom[0]);
    for (auto* o : vars) ctx.free_object(o);
    for (auto* o : geom) ctx.free_object(o);
    return checksum;
  }
};

}  // namespace

std::unique_ptr<Workload> make_nek() { return std::make_unique<NekWorkload>(); }

}  // namespace unimem::wl
