// SP — scalar pentadiagonal ADI solver (NPB).
//
// Target data objects (Table 3): u, us, vs, ws, qs, rho_i, square, rhs,
// forcing, out_buffer, in_buffer, lhs (98% of footprint).
//
// The paper's Fig. 4 establishes the per-object sensitivities this kernel
// must reproduce:
//   * lhs        — latency-sensitive (dependent line-solve recurrences),
//                  not bandwidth-sensitive;
//   * in/out_buffer — bandwidth-sensitive (bulk pack/unpack streams),
//                  not latency-sensitive;
//   * rhs        — sensitive to both.
// Initial data placement contributes 87% of Unimem's SP improvement
// (Fig. 11): rhs is hot in every phase and its reference count is known
// before the loop.
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace unimem::wl {

namespace {

class SpWorkload final : public Workload {
 public:
  std::string name() const override { return "sp"; }

  double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) override {
    const std::size_t B = cfg.rank_bytes();
    const double iters = cfg.iterations;
    auto elems = [](std::size_t bytes) { return bytes / sizeof(double); };

    // Size split (fractions of the rank footprint).
    const std::size_t n_lhs = elems(B / 4);          // 25%
    const std::size_t n_u = elems(B * 15 / 100);     // 15%
    const std::size_t n_rhs = elems(B * 15 / 100);   // 15%
    const std::size_t n_forc = elems(B / 10);        // 10%
    const std::size_t n_aux = elems(B * 4 / 100);    // 4% x 6
    const std::size_t n_buf = elems(B * 5 / 100);    // 5% x 2

    auto dobj = [&](const char* n, std::size_t e, double est) {
      rt::ObjectTraits t;
      t.estimated_references = est;
      return ctx.malloc_object(n, e * sizeof(double), t);
    };
    // rhs has by far the largest known reference count (hot in all phases).
    rt::DataObject* u = dobj("u", n_u, iters * 2.0 * n_u);
    rt::DataObject* us = dobj("us", n_aux, iters * n_aux);
    rt::DataObject* vs = dobj("vs", n_aux, iters * n_aux);
    rt::DataObject* ws = dobj("ws", n_aux, iters * n_aux);
    rt::DataObject* qs = dobj("qs", n_aux, iters * n_aux);
    rt::DataObject* rho_i = dobj("rho_i", n_aux, iters * n_aux);
    rt::DataObject* square = dobj("square", n_aux, iters * n_aux);
    rt::DataObject* rhs = dobj("rhs", n_rhs, iters * 6.0 * n_rhs);
    rt::DataObject* forcing = dobj("forcing", n_forc, iters * n_forc);
    rt::DataObject* out_buffer = dobj("out_buffer", n_buf, iters * 4.0 * n_buf);
    rt::DataObject* in_buffer = dobj("in_buffer", n_buf, iters * 4.0 * n_buf);
    rt::DataObject* lhs = dobj("lhs", n_lhs, iters * 3.0 * n_lhs);

    fill_object(*u, 21);
    fill_object(*forcing, 22);
    fill_object(*lhs, 23);
    fill_object(*out_buffer, 24);

    double checksum = 0;
    mpi::Comm& comm = *ctx.comm();
    DriftSchedule drift(cfg);
    ctx.start();
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.iteration_begin();

      // Phase: compute_rhs — bulk streams over u/forcing/aux into rhs.
      ctx.compute(WorkBuilder(drift.factor(it, 0))
                      .flops(6.0 * static_cast<double>(n_rhs))
                      .seq(u, n_u)
                      .seq(forcing, n_forc)
                      .seq(us, n_aux)
                      .seq(vs, n_aux)
                      .seq(ws, n_aux)
                      .seq(qs, n_aux)
                      .seq(rho_i, n_aux)
                      .seq(square, n_aux)
                      .seq(rhs, 2 * n_rhs, 0.5)
                      .work());
      checksum += axpy_touch(rhs->as_span<double>(), u->as_span<double>(), 0.3);
      checksum += stencil_touch(u->as_span<double>(), 8);

      // Phase: x_solve — dependent recurrences along lines: lhs is swept
      // with serialized accesses (latency-sensitive), rhs updated.
      ctx.compute(WorkBuilder(drift.factor(it, 1))
                      .flops(4.0 * static_cast<double>(n_lhs))
                      .seq(lhs, n_lhs, 0.3, /*mlp=*/1)
                      .seq(rhs, n_rhs, 0.5, /*mlp=*/12)
                      .work());
      checksum += stencil_touch(lhs->as_span<double>(), 4);

      // Phase: pack + boundary exchange (bandwidth-heavy buffer streams).
      ctx.compute(WorkBuilder(drift.factor(it, 2))
                      .flops(static_cast<double>(n_buf))
                      .seq(rhs, n_buf)
                      .seq(out_buffer, 2 * n_buf, 1.0)
                      .work());
      ring_exchange(comm, *out_buffer, *in_buffer, n_buf * sizeof(double),
                    100 + it % 7);

      // Phase: unpack + y_solve.
      ctx.compute(WorkBuilder(drift.factor(it, 3))
                      .flops(4.0 * static_cast<double>(n_lhs))
                      .seq(in_buffer, 2 * n_buf)
                      .seq(lhs, n_lhs, 0.3, /*mlp=*/1)
                      .seq(rhs, n_rhs, 0.5, /*mlp=*/12)
                      .work());
      checksum += sum_touch(in_buffer->as_span<double>()) * 1e-6;
      checksum += stencil_touch(lhs->as_span<double>(), 16);

      // Phase: second exchange (z sweep boundary).
      ctx.compute(WorkBuilder(drift.factor(it, 4))
                      .flops(static_cast<double>(n_buf))
                      .seq(out_buffer, 2 * n_buf, 1.0)
                      .seq(rhs, n_buf)
                      .work());
      ring_exchange(comm, *out_buffer, *in_buffer, n_buf * sizeof(double),
                    200 + it % 7);

      // Phase: z_solve + add — lhs recurrence, final u update.
      ctx.compute(WorkBuilder(drift.factor(it, 5))
                      .flops(5.0 * static_cast<double>(n_lhs))
                      .seq(lhs, n_lhs, 0.3, /*mlp=*/1)
                      .seq(rhs, n_rhs, 0.3, /*mlp=*/12)
                      .seq(u, n_u, 1.0)
                      .work());
      checksum += axpy_touch(u->as_span<double>(), rhs->as_span<double>(), 0.1);

      double norm[1] = {checksum * 1e-9};
      comm.allreduce(norm, 1);
    }
    ctx.end();

    checksum += sum_object(*u) + sum_object(*rhs);
    for (rt::DataObject* o : {u, us, vs, ws, qs, rho_i, square, rhs, forcing,
                              out_buffer, in_buffer, lhs})
      ctx.free_object(o);
    return checksum;
  }
};

}  // namespace

std::unique_ptr<Workload> make_sp() { return std::make_unique<SpWorkload>(); }

}  // namespace unimem::wl
