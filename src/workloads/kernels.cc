#include "workloads/kernels.h"

#include <algorithm>
#include <cstring>

namespace unimem::wl {

void fill_pattern(std::span<double> a, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < a.size(); i += kTouchStride)
    a[i] = rng.uniform(-1.0, 1.0);
}

double axpy_touch(std::span<double> y, std::span<const double> x,
                  double alpha) {
  double acc = 0;
  std::size_t n = std::min(y.size(), x.size());
  for (std::size_t i = 0; i < n; i += kTouchStride) {
    y[i] += alpha * x[i];
    acc += y[i];
  }
  return acc;
}

double sum_touch(std::span<const double> a) {
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); i += kTouchStride) acc += a[i];
  return acc;
}

double stencil_touch(std::span<double> a, std::size_t stride) {
  if (a.size() < 2 * stride + 1) return 0;
  double acc = 0;
  for (std::size_t i = stride; i + stride < a.size();
       i += kTouchStride * stride) {
    a[i] = 0.5 * a[i] + 0.25 * (a[i - stride] + a[i + stride]);
    acc += a[i];
  }
  return acc;
}

double gather_touch(std::span<const double> a,
                    std::span<const std::int32_t> idx) {
  if (a.empty() || idx.empty()) return 0;
  double acc = 0;
  for (std::size_t i = 0; i < idx.size(); i += kTouchStride) {
    auto j = static_cast<std::size_t>(
                 idx[i] < 0 ? -idx[i] : idx[i]) %
             a.size();
    acc += a[j];
  }
  return acc;
}

double sum_object(rt::DataObject& obj) {
  double acc = 0;
  for_each_chunk(obj, [&](std::span<double> s) { acc += sum_touch(s); });
  return acc;
}

void fill_object(rt::DataObject& obj, std::uint64_t seed) {
  std::uint64_t s = seed;
  for_each_chunk(obj, [&](std::span<double> sp) { fill_pattern(sp, s++); });
}

void ring_exchange(mpi::Comm& comm, rt::DataObject& out, rt::DataObject& in,
                   std::size_t payload_bytes, int tag) {
  const int p = comm.size();
  const int dst = (comm.rank() + 1) % p;
  const int src = (comm.rank() + p - 1) % p;
  const std::size_t bytes =
      std::min({payload_bytes, out.chunk(0).bytes, in.chunk(0).bytes});
  comm.sendrecv(out.chunk(0).data(), bytes, dst, in.chunk(0).data(), bytes,
                src, tag);
}

}  // namespace unimem::wl
