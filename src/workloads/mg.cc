// MG — multigrid V-cycle (NPB).
//
// Target data objects (Table 3): buff, u, v, r (99% of footprint).
//
// u holds all grid levels in one array accessed through aliased views —
// the reason the paper's compiler tool cannot chunk MG ("because of widely
// employed memory alias in the benchmark").  With the scaled-down 4 MiB
// DRAM (paper: 128 MB), neither u nor r fits and Unimem degrades to a 13%
// gap while still closing ~35% of the NVM-DRAM distance (Fig. 13); with
// 8 MiB (256 MB) r+v fit and the gap closes.
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace unimem::wl {

namespace {

class MgWorkload final : public Workload {
 public:
  std::string name() const override { return "mg"; }

  double run_rank(rt::Context& ctx, const WorkloadConfig& cfg) override {
    const std::size_t B = cfg.rank_bytes();
    const double iters = cfg.iterations;
    auto elems = [](std::size_t bytes) { return bytes / sizeof(double); };

    // u never fits the DRAM allowance and cannot be chunked; r fits the
    // 8 MiB (256 MB-equivalent) budget but not the 4 MiB (128 MB) one —
    // the Fig. 13 degradation case.
    const std::size_t n_u = elems(B * 40 / 100);   // all levels, aliased
    const std::size_t n_r = elems(B * 25 / 100);
    const std::size_t n_v = elems(B * 20 / 100);
    const std::size_t n_buff = elems(B * 10 / 100);

    auto dobj = [&](const char* n, std::size_t e, double est,
                    bool chunkable) {
      rt::ObjectTraits t;
      t.estimated_references = est;
      t.chunkable = chunkable;  // u/r are NOT chunkable (aliases)
      return ctx.malloc_object(n, e * sizeof(double), t);
    };
    rt::DataObject* buff = dobj("buff", n_buff, iters * 2.0 * n_buff, false);
    rt::DataObject* u = dobj("u", n_u, iters * 2.0 * n_u, false);
    rt::DataObject* v = dobj("v", n_v, iters * 2.0 * n_v, false);
    rt::DataObject* r = dobj("r", n_r, iters * 4.0 * n_r, false);

    fill_object(*u, 51);
    fill_object(*v, 52);

    double checksum = 0;
    mpi::Comm& comm = *ctx.comm();
    DriftSchedule drift(cfg);
    ctx.start();
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.iteration_begin();

      // Phase: residual r = v - A u (stream over the fine level).
      ctx.compute(WorkBuilder(drift.factor(it, 0))
                      .flops(4.0 * static_cast<double>(n_r))
                      .seq(v, n_v)
                      .seq(u, n_u / 2)
                      .seq(r, 2 * n_r, 0.5)
                      .work());
      checksum += axpy_touch(r->as_span<double>(), v->as_span<double>(), 1.0);

      // Phase: halo exchange through buff.
      ctx.compute(
          WorkBuilder(drift.factor(it, 1)).seq(buff, 2 * n_buff, 1.0).work());
      ring_exchange(comm, *buff, *buff, n_buff * sizeof(double) / 2,
                    600 + it % 3);

      // Phase: restrict/prolongate — strided sweeps over the level
      // hierarchy inside u (stride grows with coarsening).
      ctx.compute(WorkBuilder(drift.factor(it, 2))
                      .flops(3.0 * static_cast<double>(n_u))
                      .strided(u, n_u / 2, 128, 0.5)
                      .strided(u, n_u / 8, 512, 0.5)
                      .strided(r, n_r / 2, 256)
                      .work());
      checksum += stencil_touch(u->as_span<double>(), 64);

      // Phase: smoother — psinv stream over u and r.
      ctx.compute(WorkBuilder(drift.factor(it, 3))
                      .flops(4.0 * static_cast<double>(n_u))
                      .seq(r, n_r)
                      .seq(u, n_u, 0.5)
                      .work());
      checksum += axpy_touch(u->as_span<double>(), r->as_span<double>(), 0.5);

      double norm[1] = {checksum * 1e-9};
      comm.allreduce(norm, 1);
    }
    ctx.end();

    checksum += sum_object(*u) + sum_object(*r);
    for (rt::DataObject* o : {buff, u, v, r}) ctx.free_object(o);
    return checksum;
  }
};

}  // namespace

std::unique_ptr<Workload> make_mg() { return std::make_unique<MgWorkload>(); }

}  // namespace unimem::wl
