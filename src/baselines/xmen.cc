#include "baselines/xmen.h"

#include <algorithm>

#include "common/units.h"

namespace unimem::baseline {

std::vector<std::string> xmen_placement(
    const std::map<std::string, ObjectProfile>& profiles,
    const mem::HmsConfig& hms, std::size_t dram_budget) {
  struct Cand {
    std::string name;
    double density = 0;  ///< benefit per byte
    std::size_t bytes = 0;
  };
  std::vector<Cand> cands;
  for (const auto& [name, p] : profiles) {
    if (p.misses == 0 || p.bytes == 0) continue;
    // Whole-run stall estimate on each memory, from the traced pattern
    // class (streaming => bandwidth bound; pointer chasing => latency
    // bound; random => the max of both), homogeneous over the object.
    const double bytes_moved = static_cast<double>(p.misses) * 64.0;
    double nvm_s = 0, dram_s = 0;
    switch (p.dominant_pattern()) {
      case cache::Pattern::kSequential:
      case cache::Pattern::kStrided:
        nvm_s = bytes_moved / hms.nvm.read_bw;
        dram_s = bytes_moved / hms.dram.read_bw;
        break;
      case cache::Pattern::kPointerChase:
        nvm_s = p.serialized_misses * hms.nvm.read_latency_s;
        dram_s = p.serialized_misses * hms.dram.read_latency_s;
        break;
      case cache::Pattern::kRandom:
      case cache::Pattern::kGather:
        nvm_s = std::max(bytes_moved / hms.nvm.read_bw,
                         p.serialized_misses * hms.nvm.read_latency_s);
        dram_s = std::max(bytes_moved / hms.dram.read_bw,
                          p.serialized_misses * hms.dram.read_latency_s);
        break;
    }
    double benefit = nvm_s - dram_s;
    if (benefit <= 0) continue;
    cands.push_back(
        Cand{name, benefit / static_cast<double>(p.bytes), p.bytes});
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) {
                     return a.density > b.density;
                   });
  std::vector<std::string> placed;
  std::size_t used = 0;
  for (const Cand& c : cands) {
    // Allocations round up to cache-line multiples; pack what will
    // actually be charged against the DRAM allowance.
    std::size_t charged = align_up(c.bytes, kCacheLine);
    if (used + charged > dram_budget) continue;
    used += charged;
    placed.push_back(c.name);
  }
  return placed;
}

}  // namespace unimem::baseline
