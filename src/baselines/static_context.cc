#include "baselines/static_context.h"

#include <algorithm>
#include <new>

namespace unimem::baseline {

PlacementFn nvm_only() {
  return [](const std::string&, std::size_t) { return mem::Tier::kNvm; };
}

PlacementFn dram_only() {
  return [](const std::string&, std::size_t) { return mem::Tier::kDram; };
}

PlacementFn manual(std::vector<std::string> dram_names) {
  return [names = std::move(dram_names)](const std::string& n, std::size_t) {
    return std::find(names.begin(), names.end(), n) != names.end()
               ? mem::Tier::kDram
               : mem::Tier::kNvm;
  };
}

StaticContext::StaticContext(StaticContextOptions opts,
                             mem::HeteroMemory* hms,
                             mem::DramArbiter* arbiter, mpi::Comm* comm,
                             PlacementFn placement)
    : opts_(opts), comm_(comm), placement_(std::move(placement)) {
  if (opts_.use_exact_cache)
    cache_ = std::make_unique<cache::ExactCache>(opts_.cache);
  else
    cache_ = std::make_unique<cache::AnalyticCache>(opts_.cache);
  registry_ = std::make_unique<rt::Registry>(hms, arbiter);
  engine_ =
      std::make_unique<rt::ExecEngine>(hms, cache_.get(), opts_.timing);
}

double StaticContext::now() const {
  return comm_ != nullptr ? comm_->clock().now() : own_clock_.now();
}

rt::DataObject* StaticContext::malloc_object(const std::string& name,
                                             std::size_t bytes,
                                             rt::ObjectTraits traits) {
  mem::Tier t = placement_(name, bytes);
  // A PlacementFn answers in the paper's 2-tier vocabulary; on an N-tier
  // machine its "NVM" answer means the unconstrained backstop (identical on
  // 2-tier, where the backstop IS kNvm).
  const mem::Tier backstop = registry_->hms().backstop_tier();
  if (t == mem::Tier::kNvm) t = backstop;
  // Same chunk layout as the Unimem runtime => identical data layout and
  // checksums across policies.  A DRAM placement that exceeds the node
  // allowance falls back to the backstop (as a real tiering allocator
  // would).
  rt::DataObject* obj = nullptr;
  try {
    obj = registry_->create(name, bytes, traits, t,
                            rt::chunk_bytes_for(traits.chunkable, bytes));
  } catch (const std::bad_alloc&) {
    if (t != backstop) {
      obj = registry_->create(name, bytes, traits, backstop,
                              rt::chunk_bytes_for(traits.chunkable, bytes));
    } else {
      throw;
    }
  }
  names_[obj->id()] = name;
  if (opts_.record_profile) profiles_[name].bytes = bytes;
  return obj;
}

void StaticContext::free_object(rt::DataObject* obj) {
  if (obj != nullptr) registry_->destroy(obj->id());
}

void StaticContext::compute(const rt::PhaseWork& work) {
  rt::PhaseExec exec = engine_->run(work);
  clk::VirtualClock& clock =
      comm_ != nullptr ? comm_->clock() : own_clock_;
  clock.advance(exec.total_s());

  if (opts_.record_profile) {
    // Offline trace collection: exact per-object counts, as PIN would see.
    for (std::size_t i = 0; i < exec.unit_results.size(); ++i) {
      const auto& [unit, res] = exec.unit_results[i];
      auto it = names_.find(unit.object);
      if (it == names_.end()) continue;
      ObjectProfile& p = profiles_[it->second];
      p.misses += res.misses;
      p.serialized_misses += res.serialized_misses;
      // Pattern attribution from the submitted work (trace analysis).
      if (i < work.accesses.size()) {
        // unit_results follow the accesses order but may have more entries
        // (chunk splits); re-derive pattern from the object access list.
      }
    }
    for (const rt::ObjectAccess& a : work.accesses) {
      if (a.object == nullptr) continue;
      auto it = names_.find(a.object->id());
      if (it == names_.end()) continue;
      profiles_[it->second].misses_by_pattern[a.pattern] += a.accesses;
    }
  }
}

}  // namespace unimem::baseline
