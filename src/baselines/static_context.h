// Static-placement execution context: objects are placed once, at
// allocation, by a policy function, and never move.  Implements the same
// Context interface as the Unimem runtime and times phases through the
// same ExecEngine, so DRAM-only / NVM-only / manual / X-Men placements are
// directly comparable with Unimem.
//
// Optionally records per-object ground-truth access aggregates — the
// equivalent of the PIN-based offline profiling pass X-Men (Dulloor et
// al., EuroSys'16) relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/context.h"
#include "core/exec_engine.h"
#include "core/registry.h"
#include "minimpi/comm.h"
#include "simcache/analytic_cache.h"
#include "simcache/exact_cache.h"
#include "simclock/virtual_clock.h"

namespace unimem::baseline {

/// Decides the tier of an object at allocation time.
using PlacementFn =
    std::function<mem::Tier(const std::string& name, std::size_t bytes)>;

/// Everything in NVM.
PlacementFn nvm_only();
/// Everything in DRAM (use with an HMS whose DRAM tier is large enough).
PlacementFn dram_only();
/// Objects whose name is in `dram_names` go to DRAM, the rest to NVM.
PlacementFn manual(std::vector<std::string> dram_names);

/// Ground-truth per-object aggregate collected by the offline profile pass.
struct ObjectProfile {
  std::uint64_t misses = 0;
  double serialized_misses = 0;
  std::uint64_t bytes = 0;  ///< object size
  /// Misses by access pattern, to classify streaming / pointer-chasing /
  /// random the way X-Men's trace analysis does.
  std::map<cache::Pattern, std::uint64_t> misses_by_pattern;

  cache::Pattern dominant_pattern() const {
    cache::Pattern best = cache::Pattern::kSequential;
    std::uint64_t n = 0;
    for (auto& [p, m] : misses_by_pattern)
      if (m > n) { n = m; best = p; }
    return best;
  }
};

struct StaticContextOptions {
  bool use_exact_cache = false;
  cache::CacheConfig cache{};
  clk::TimingParams timing{};
  /// Record ground-truth object profiles (the offline profiling pass).
  bool record_profile = false;
};

class StaticContext final : public rt::Context {
 public:
  StaticContext(StaticContextOptions opts, mem::HeteroMemory* hms,
                mem::DramArbiter* arbiter, mpi::Comm* comm,
                PlacementFn placement);
  ~StaticContext() override = default;

  rt::DataObject* malloc_object(const std::string& name, std::size_t bytes,
                                rt::ObjectTraits traits) override;
  void free_object(rt::DataObject* obj) override;
  void start() override {}
  void iteration_begin() override {}
  void end() override { end_vt_ = now(); }
  void compute(const rt::PhaseWork& work) override;
  mpi::Comm* comm() override { return comm_; }
  double now() const override;

  rt::Registry& registry() { return *registry_; }
  const std::map<std::string, ObjectProfile>& profiles() const {
    return profiles_;
  }
  double total_time_s() const { return end_vt_ > 0 ? end_vt_ : now(); }

 private:
  StaticContextOptions opts_;
  mpi::Comm* comm_;
  clk::VirtualClock own_clock_;
  std::unique_ptr<cache::CacheModel> cache_;
  std::unique_ptr<rt::Registry> registry_;
  std::unique_ptr<rt::ExecEngine> engine_;
  PlacementFn placement_;
  std::map<std::string, ObjectProfile> profiles_;
  std::map<rt::ObjectId, std::string> names_;
  double end_vt_ = 0;
};

}  // namespace unimem::baseline
