// X-Men baseline (Dulloor et al., "Data Tiering in Heterogeneous Memory
// Systems", EuroSys 2016 — the comparator in the paper's Figs. 9/10).
//
// Per the papers: X-Men uses *offline* PIN profiling to characterize the
// memory behaviour of each data object over the whole run, classifies the
// access pattern as streaming / pointer-chasing / random, estimates the
// benefit of DRAM placement, and installs ONE static placement.  It does
// not model data-movement cost, never migrates at runtime, and "assume[s]
// a homogeneous memory access pattern within a data object" — no per-phase
// adaptation.  Unimem therefore matches it on phase-stable NPB kernels but
// beats it on phase-varying codes (Nek5000).
//
// Our implementation grants X-Men exact ground-truth aggregates from the
// offline pass (PIN sees every access), which is *more* information than
// Unimem's sampled counters — the comparison is conservative in X-Men's
// favour.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "baselines/static_context.h"
#include "simmem/hetero_memory.h"

namespace unimem::baseline {

/// Compute the X-Men static placement from offline object profiles:
/// benefit-per-byte greedy packing of the DRAM budget, with benefit =
/// pattern-dependent estimated stall reduction.
std::vector<std::string> xmen_placement(
    const std::map<std::string, ObjectProfile>& profiles,
    const mem::HmsConfig& hms, std::size_t dram_budget);

}  // namespace unimem::baseline
