// Size and time unit helpers shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace unimem {

inline constexpr std::size_t kKiB = std::size_t{1} << 10;
inline constexpr std::size_t kMiB = std::size_t{1} << 20;
inline constexpr std::size_t kGiB = std::size_t{1} << 30;

/// Cache-line size assumed throughout the simulator (bytes).
inline constexpr std::size_t kCacheLine = 64;

/// Round `n` up to a multiple of `align` (align must be a power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// Number of cache lines covering `bytes`.
constexpr std::uint64_t lines_of(std::uint64_t bytes) {
  return (bytes + kCacheLine - 1) / kCacheLine;
}

/// Convert MB/s to bytes/second.
constexpr double mbps(double mb_per_s) { return mb_per_s * 1e6; }

/// Convert GB/s to bytes/second.
constexpr double gbps(double gb_per_s) { return gb_per_s * 1e9; }

/// Convert nanoseconds to seconds.
constexpr double ns(double nanos) { return nanos * 1e-9; }

}  // namespace unimem
