// Deterministic, seedable PRNG used everywhere randomness is needed so that
// simulation results are exactly reproducible run-to-run.
#pragma once

#include <cstdint>

namespace unimem {

/// SplitMix64: tiny, fast, high-quality 64-bit generator.  Deterministic for
/// a given seed on every platform (unlike std::default_random_engine).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  std::uint64_t state_;
};

}  // namespace unimem
