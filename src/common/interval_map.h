// Interval map from half-open address ranges to values.  Used to attribute
// sampled miss addresses back to registered data objects, mirroring how a
// real profiler maps PEBS linear addresses onto tracked allocations.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

namespace unimem {

/// Maps non-overlapping half-open ranges [lo, hi) -> T.
/// Insertion of an overlapping range is rejected (returns false).
template <typename T>
class IntervalMap {
 public:
  bool insert(std::uint64_t lo, std::uint64_t hi, T value) {
    if (lo >= hi) return false;
    // Find the first interval whose start is >= lo; the previous interval
    // (if any) must end at or before lo for no overlap.
    auto next = map_.lower_bound(lo);
    if (next != map_.end() && next->first < hi) return false;
    if (next != map_.begin()) {
      auto prev = std::prev(next);
      if (prev->second.hi > lo) return false;
    }
    map_.emplace(lo, Entry{hi, std::move(value)});
    return true;
  }

  /// Remove the interval starting exactly at `lo`. Returns true if removed.
  bool erase(std::uint64_t lo) { return map_.erase(lo) > 0; }

  /// Look up the value covering address `addr`, if any.
  std::optional<T> find(std::uint64_t addr) const {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) return std::nullopt;
    --it;
    if (addr < it->second.hi) return it->second.value;
    return std::nullopt;
  }

  /// Invoke `fn(value)` for every interval intersecting [lo, hi).
  template <typename F>
  void for_each_overlapping(std::uint64_t lo, std::uint64_t hi, F&& fn) const {
    if (lo >= hi) return;
    auto it = map_.upper_bound(lo);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.hi > lo) fn(prev->second.value);
    }
    for (; it != map_.end() && it->first < hi; ++it) fn(it->second.value);
  }

  /// Invoke `fn(lo, hi, value)` for every interval, in address order.
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [lo, e] : map_) fn(lo, e.hi, e.value);
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

 private:
  struct Entry {
    std::uint64_t hi;
    T value;
  };
  std::map<std::uint64_t, Entry> map_;
};

}  // namespace unimem
