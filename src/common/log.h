// Minimal leveled logging to stderr.  The runtime is a library: it stays
// quiet below the warn threshold unless asked.
//
// Severity is filtered by the UNIMEM_LOG env var (or set_level()):
//   names:   off | error | warn | info | debug
//   numbers: 0=off, 1=info, 2=debug   (legacy scheme, kept for compat)
// Default is `warn`: operational notes that previously went to stderr
// unconditionally (torn-line drops, worker death) stay visible, but a
// machine consumer can silence them with UNIMEM_LOG=off or keep only
// errors with UNIMEM_LOG=error.  Every line is prefixed with its
// severity ("[unimem:warn] ", ...) so log scrapers can filter.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace unimem {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

class Log {
 public:
  static LogLevel level() { return mutable_level(); }

  static void set_level(LogLevel lvl) { mutable_level() = lvl; }

  static bool enabled(LogLevel lvl) {
    return static_cast<int>(mutable_level()) >= static_cast<int>(lvl);
  }

  template <typename... Args>
  static void error(const char* fmt, Args... args) {
    if (enabled(LogLevel::kError)) emit("[unimem:error] ", fmt, args...);
  }

  template <typename... Args>
  static void warn(const char* fmt, Args... args) {
    if (enabled(LogLevel::kWarn)) emit("[unimem:warn] ", fmt, args...);
  }

  template <typename... Args>
  static void info(const char* fmt, Args... args) {
    if (enabled(LogLevel::kInfo)) emit("[unimem] ", fmt, args...);
  }

  template <typename... Args>
  static void debug(const char* fmt, Args... args) {
    if (enabled(LogLevel::kDebug)) emit("[unimem:dbg] ", fmt, args...);
  }

 private:
  static LogLevel& mutable_level() {
    static LogLevel lvl = from_env();
    return lvl;
  }

  static LogLevel from_env() {
    const char* e = std::getenv("UNIMEM_LOG");
    if (e == nullptr) return LogLevel::kWarn;
    if (std::strcmp(e, "off") == 0) return LogLevel::kOff;
    if (std::strcmp(e, "error") == 0) return LogLevel::kError;
    if (std::strcmp(e, "warn") == 0) return LogLevel::kWarn;
    if (std::strcmp(e, "info") == 0) return LogLevel::kInfo;
    if (std::strcmp(e, "debug") == 0) return LogLevel::kDebug;
    // Legacy numeric scheme: 0=off, 1=info, 2(+)=debug.
    const int v = std::atoi(e);
    if (v <= 0) return LogLevel::kOff;
    return v == 1 ? LogLevel::kInfo : LogLevel::kDebug;
  }

  template <typename... Args>
  static void emit(const char* prefix, const char* fmt, Args... args) {
    std::fputs(prefix, stderr);
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }
};

}  // namespace unimem
