// Minimal leveled logging.  Off by default; enabled via UNIMEM_LOG env var
// (0=off, 1=info, 2=debug) or programmatically.  The runtime is a library:
// it must stay silent unless asked.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace unimem {

enum class LogLevel : int { kOff = 0, kInfo = 1, kDebug = 2 };

class Log {
 public:
  static LogLevel level() {
    static LogLevel lvl = from_env();
    return lvl;
  }

  static void set_level(LogLevel lvl) { mutable_level() = lvl; }

  template <typename... Args>
  static void info(const char* fmt, Args... args) {
    if (static_cast<int>(mutable_level()) >= 1) emit("[unimem] ", fmt, args...);
  }

  template <typename... Args>
  static void debug(const char* fmt, Args... args) {
    if (static_cast<int>(mutable_level()) >= 2) emit("[unimem:dbg] ", fmt, args...);
  }

 private:
  static LogLevel& mutable_level() {
    static LogLevel lvl = from_env();
    return lvl;
  }
  static LogLevel from_env() {
    const char* e = std::getenv("UNIMEM_LOG");
    if (e == nullptr) return LogLevel::kOff;
    int v = std::atoi(e);
    if (v <= 0) return LogLevel::kOff;
    return v == 1 ? LogLevel::kInfo : LogLevel::kDebug;
  }
  template <typename... Args>
  static void emit(const char* prefix, const char* fmt, Args... args) {
    std::fputs(prefix, stderr);
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }
};

}  // namespace unimem
