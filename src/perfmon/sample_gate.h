// Production-overhead sampling primitives for the sampled profiler tier.
//
// The exact profiler consumes every PMU sample inline; that is fine for
// offline planning but unaffordable always-on.  Sampled mode does the
// minimal amount of work on the rank thread — a countdown gate decides
// which PMU events are even captured, captured addresses are buffered and
// attributed out of band (heapprofd-style, see core/sampled_profile.h) —
// and an adaptive controller widens the sampling period when phases
// already attribute plenty of evidence.
//
// Determinism contract: every schedule is seeded per (rank, phase, epoch)
// via schedule_seed(), so the captured sample set is a pure function of
// the point's configuration — never of host thread timing — and sweep
// artifacts stay byte-identical across --jobs counts and shard merges.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"

namespace unimem::perf {

/// Mix a base seed with the (rank, phase, epoch) coordinates so every
/// profiled phase gets an independent, reproducible sample schedule.
inline std::uint64_t schedule_seed(std::uint64_t base, int rank,
                                   std::uint64_t phase, std::uint64_t epoch) {
  Rng mix(base ^ (static_cast<std::uint64_t>(rank) * 0x9e3779b97f4a7c15ull));
  std::uint64_t h = mix.next() ^ (phase * 0xbf58476d1ce4e5b9ull);
  h = Rng(h).next() ^ (epoch * 0x94d049bb133111ebull);
  return Rng(h).next();
}

/// Per-event capture decision: a countdown with seeded jittered reload
/// around `period`, so the rank-thread cost per PMU event is one
/// decrement-and-test and captures cannot phase-lock with strided access
/// patterns.  period == 1 captures every event (the exact-equivalent
/// schedule).
class SampleGate {
 public:
  SampleGate(std::uint64_t period, std::uint64_t seed)
      : rng_(seed), period_(std::max<std::uint64_t>(1, period)) {
    reload();
  }

  /// True when this event is captured.  O(1), branch-predictable.
  bool take() {
    if (--countdown_ > 0) return false;
    reload();
    return true;
  }

  std::uint64_t period() const { return period_; }

 private:
  void reload() {
    // Uniform in [ceil(period/2), ceil(3*period/2)): mean = period, so the
    // expected capture rate is 1/period regardless of jitter.
    countdown_ = period_ == 1
                     ? 1
                     : (period_ + 1) / 2 + rng_.below(period_);
  }

  Rng rng_;
  std::uint64_t period_;
  std::uint64_t countdown_ = 1;
};

/// Adaptive sample-rate controller (heapprofd-style backoff): when the
/// profile is already statistically solid — many attributed samples per
/// phase — widen the period to shed overhead; when evidence is thin,
/// narrow it back toward the configured base.  Updated ONLY at
/// deterministic drain barriers (end of a profiled iteration), never from
/// the aggregation thread, so the period sequence is reproducible.
class AdaptiveRate {
 public:
  struct Options {
    std::uint64_t base_period = 64;  ///< configured sampling period
    std::uint64_t max_period = 4096;
    /// Mean attributed samples per phase above which the period doubles.
    std::uint64_t high_watermark = 512;
    /// ... below which it halves (down to base_period).
    std::uint64_t low_watermark = 64;
    bool enabled = true;
  };

  explicit AdaptiveRate(Options opts)
      : opts_(opts), period_(std::max<std::uint64_t>(1, opts.base_period)) {
    opts_.max_period = std::max(opts_.max_period, period_);
  }

  std::uint64_t period() const { return period_; }

  /// Feed one profiled iteration's totals (drain barrier).
  void observe_iteration(std::uint64_t attributed_samples,
                         std::uint64_t phases) {
    if (!opts_.enabled || phases == 0) return;
    const std::uint64_t per_phase = attributed_samples / phases;
    if (per_phase > opts_.high_watermark)
      period_ = std::min(period_ * 2, opts_.max_period);
    else if (per_phase < opts_.low_watermark)
      period_ = std::max(period_ / 2,
                         std::max<std::uint64_t>(1, opts_.base_period));
  }

 private:
  Options opts_;
  std::uint64_t period_;
};

}  // namespace unimem::perf
