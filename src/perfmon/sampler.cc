#include "perfmon/sampler.h"

#include <algorithm>

#include "common/units.h"

namespace unimem::perf {

namespace {

// Lay the windows on the phase timeline after the compute segment.
// (The real interleaving does not matter: only the *fraction* of time a
// region has in-flight misses feeds Eq. 1, and that is preserved.)
struct Segment {
  double begin, end;
  const MemWindow* w;
};

std::vector<Segment> layout_segments(const std::vector<MemWindow>& windows,
                                     double compute_time_s) {
  std::vector<Segment> segs;
  segs.reserve(windows.size());
  double t = compute_time_s;
  for (const auto& w : windows) {
    segs.push_back({t, t + w.mem_time_s, &w});
    t += w.mem_time_s;
  }
  return segs;
}

}  // namespace

PhaseSamples Sampler::sample_phase(const std::vector<MemWindow>& windows,
                                   double compute_time_s,
                                   double phase_time_s) {
  PhaseSamples out;
  const double period = params_.sample_period_s();
  if (phase_time_s <= 0 || period <= 0) return out;

  for (const auto& w : windows) out.total_miss_count += w.misses;

  const std::vector<Segment> segs = layout_segments(windows, compute_time_s);

  out.total_samples = static_cast<std::uint64_t>(phase_time_s / period);
  // Jittered sampling start, as on real hardware.
  double sample_t = rng_.uniform() * period;
  std::size_t seg_idx = 0;
  for (std::uint64_t i = 0; i < out.total_samples; ++i, sample_t += period) {
    while (seg_idx < segs.size() && sample_t >= segs[seg_idx].end) ++seg_idx;
    if (seg_idx >= segs.size()) break;           // tail of the phase
    const Segment& s = segs[seg_idx];
    if (sample_t < s.begin) continue;            // inside the compute segment
    if (s.w->misses == 0 || s.w->region_bytes == 0) continue;
    // A memory-bound window keeps misses in flight essentially all the time;
    // sample a uniformly random line address within the region.
    std::uint64_t line =
        rng_.below(std::max<std::uint64_t>(1, s.w->region_bytes / kCacheLine));
    out.miss_addresses.push_back(s.w->region_base + line * kCacheLine);
  }
  return out;
}

PhaseSamples Sampler::sample_phase(const std::vector<MemWindow>& windows,
                                   double compute_time_s, double phase_time_s,
                                   const SampledConfig& cfg) {
  PhaseSamples out;
  const double period = params_.sample_period_s();
  if (phase_time_s <= 0 || period <= 0) return out;

  for (const auto& w : windows) out.total_miss_count += w.misses;

  const std::vector<Segment> segs = layout_segments(windows, compute_time_s);

  // Per-phase RNG: jitter and the capture gate both derive from cfg.seed,
  // never from the member stream.
  Rng rng(cfg.seed);
  SampleGate gate(cfg.period, rng.next());
  const std::uint64_t base_ticks =
      static_cast<std::uint64_t>(phase_time_s / period);
  double sample_t = rng.uniform() * period;
  std::size_t seg_idx = 0;
  for (std::uint64_t i = 0; i < base_ticks; ++i, sample_t += period) {
    if (!gate.take()) continue;  // event not captured: zero further work
    ++out.total_samples;         // captured ticks are Eq. 1's denominator
    while (seg_idx < segs.size() && sample_t >= segs[seg_idx].end) ++seg_idx;
    if (seg_idx >= segs.size()) continue;        // tail of the phase
    const Segment& s = segs[seg_idx];
    if (sample_t < s.begin) continue;            // inside the compute segment
    if (s.w->misses == 0 || s.w->region_bytes == 0) continue;
    std::uint64_t line =
        rng.below(std::max<std::uint64_t>(1, s.w->region_bytes / kCacheLine));
    out.miss_addresses.push_back(s.w->region_base + line * kCacheLine);
  }
  return out;
}

}  // namespace unimem::perf
