// Hardware performance-counter emulation.
//
// Paper §3.1.1: "we collect the number of last level cache miss events, and
// then map the event information to data objects.  Leveraging the common
// sampling mode in performance counters (e.g., Precise Event-Based Sampling
// from Intel ...), we collect memory addresses whose associated memory
// references cause last level cache misses."
//
// The sampler reproduces that evidence stream: given the ground-truth
// per-region memory activity of a phase (which the cache+timing substrate
// knows), it emits
//   * the aggregate LLC-miss count for the phase (a precise counter),
//   * one sample every `sample_interval_cycles` of virtual time; a sample
//     carries the address of an in-flight miss if one exists at that time.
// Unimem's profiler consumes ONLY this output — never the ground truth —
// so modeling error and the paper's CF_bw / CF_lat correction factors stay
// meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "perfmon/sample_gate.h"
#include "simclock/timing_params.h"

namespace unimem::perf {

/// Ground-truth memory activity of one region during one phase, as known by
/// the simulation substrate (not visible to the Unimem planner).
struct MemWindow {
  std::uint64_t region_base = 0;   ///< start address of the live allocation
  std::uint64_t region_bytes = 0;
  std::uint64_t misses = 0;        ///< LLC misses served from main memory
  double mem_time_s = 0;           ///< modeled stall time of this region
};

/// What the "PMU" hands to the profiler for one phase.
struct PhaseSamples {
  std::uint64_t total_samples = 0;     ///< time samples taken in the phase
  std::uint64_t total_miss_count = 0;  ///< aggregate LLC-miss counter
  /// Addresses captured by samples that observed an in-flight miss.
  std::vector<std::uint64_t> miss_addresses;
};

/// Sampled-tier schedule for one phase (profiler_mode = sampled): only
/// every ~`period`-th base PMU event is captured, on a SampleGate schedule
/// seeded per (rank, phase, epoch) — see perfmon/sample_gate.h for the
/// determinism contract.
struct SampledConfig {
  std::uint64_t period = 64;  ///< base PMU periods per captured sample
  std::uint64_t seed = 0;     ///< schedule_seed(base, rank, phase, epoch)
};

class Sampler {
 public:
  explicit Sampler(clk::TimingParams params, std::uint64_t seed = 12345)
      : params_(params), rng_(seed) {}

  /// Emulate sampling over one phase.  The phase timeline is laid out as
  /// `compute_time_s` of computation followed by the memory windows in
  /// order; each time sample falling inside a window captures a uniformly
  /// random address within that window's region.
  PhaseSamples sample_phase(const std::vector<MemWindow>& windows,
                            double compute_time_s, double phase_time_s);

  /// Sampled-tier emulation of the same phase: the base sample clock still
  /// ticks every sample_interval_cycles, but only gate-selected ticks are
  /// captured.  total_samples counts the captured ticks (the denominator
  /// of Eq. 1's time fraction) and total_miss_count stays the precise
  /// aggregate counter, so apportioned estimates remain unbiased — just
  /// noisier by ~sqrt(period).  Uses only `cfg.seed` (never the member
  /// RNG), so exact-mode streams are bit-identical with or without
  /// sampled-mode calls interleaved.
  PhaseSamples sample_phase(const std::vector<MemWindow>& windows,
                            double compute_time_s, double phase_time_s,
                            const SampledConfig& cfg);

  const clk::TimingParams& params() const { return params_; }

 private:
  clk::TimingParams params_;
  Rng rng_;
};

}  // namespace unimem::perf
