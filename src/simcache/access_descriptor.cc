#include "simcache/access_descriptor.h"

#include <algorithm>

#include "common/units.h"

namespace unimem::cache {

std::uint64_t AccessDescriptor::footprint_lines() const {
  if (region_bytes == 0) return 0;
  if (pattern == Pattern::kStrided && stride_bytes > access_bytes) {
    // Only every stride-th chunk is touched; distinct lines is the number of
    // strided slots, capped by the number of lines in the region.
    std::uint64_t slots = region_bytes / std::max<std::size_t>(stride_bytes, 1);
    std::uint64_t touched_per_slot =
        (access_bytes + kCacheLine - 1) / kCacheLine;
    if (stride_bytes < kCacheLine) return lines_of(region_bytes);
    return std::min<std::uint64_t>(lines_of(region_bytes),
                                   std::max<std::uint64_t>(slots, 1) *
                                       std::max<std::uint64_t>(touched_per_slot, 1));
  }
  return lines_of(region_bytes);
}

std::uint64_t AccessDescriptor::line_touches() const {
  switch (pattern) {
    case Pattern::kSequential: {
      // Consecutive elements share lines.
      std::uint64_t per_line = std::max<std::uint64_t>(1, kCacheLine / access_bytes);
      return (accesses + per_line - 1) / per_line;
    }
    case Pattern::kStrided: {
      if (stride_bytes >= kCacheLine) return accesses;
      std::uint64_t per_line =
          std::max<std::uint64_t>(1, kCacheLine / std::max<std::size_t>(stride_bytes, 1));
      return (accesses + per_line - 1) / per_line;
    }
    case Pattern::kRandom:
    case Pattern::kGather:
    case Pattern::kPointerChase:
      return accesses;  // each access lands on an (effectively) fresh line
  }
  return accesses;
}

int effective_mlp(const AccessDescriptor& d, int default_mlp) {
  if (d.pattern == Pattern::kPointerChase) return 1;
  if (d.mlp > 0) return d.mlp;
  switch (d.pattern) {
    case Pattern::kSequential:
      return default_mlp;  // streams prefetch well: bandwidth-bound
    case Pattern::kStrided:
      // Constant strides are detected by hardware prefetchers just like
      // unit strides; the stream stays bandwidth-bound (it just wastes
      // line bandwidth, which the miss accounting already charges).
      return default_mlp;
    case Pattern::kRandom:
    case Pattern::kGather:
      return std::max(2, default_mlp / 4);  // MSHR-limited: latency-leaning
    case Pattern::kPointerChase:
      return 1;
  }
  return default_mlp;
}

}  // namespace unimem::cache
