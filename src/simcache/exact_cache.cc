#include "simcache/exact_cache.h"

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"

namespace unimem::cache {

ExactCache::ExactCache(CacheConfig cfg)
    : cfg_(cfg),
      sets_(cfg.num_sets()),
      tags_(sets_ * cfg.ways, 0),
      lru_(sets_ * cfg.ways, 0) {}

void ExactCache::reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  stamp_ = 0;
}

bool ExactCache::touch(std::uint64_t addr) {
  const std::uint64_t line = addr / cfg_.line_bytes;
  const std::size_t set = line % sets_;
  const std::uint64_t tag = line / sets_ + 1;  // +1 so 0 stays "invalid"
  std::uint64_t* t = &tags_[set * cfg_.ways];
  std::uint64_t* u = &lru_[set * cfg_.ways];
  ++stamp_;
  int victim = 0;
  for (int w = 0; w < cfg_.ways; ++w) {
    if (t[w] == tag) {  // hit
      u[w] = stamp_;
      return false;
    }
    if (u[w] < u[victim]) victim = w;
  }
  t[victim] = tag;  // miss: fill
  u[victim] = stamp_;
  return true;
}

AccessResult ExactCache::process(const AccessDescriptor& d, int default_mlp) {
  AccessResult r;
  if (d.accesses == 0 || d.region_bytes == 0 || d.base == nullptr) return r;
  const auto base = reinterpret_cast<std::uint64_t>(d.base);
  Rng rng(d.seed * 0x2545F4914F6CDD1Dull + 7);

  auto touch_count = [&](std::uint64_t addr) {
    ++r.line_touches;
    if (touch(addr)) ++r.misses;
  };

  switch (d.pattern) {
    case Pattern::kSequential: {
      // Stream through the region at line granularity, wrapping around for
      // multiple passes.
      const std::uint64_t touches = d.line_touches();
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      for (std::uint64_t i = 0; i < touches; ++i) {
        std::uint64_t line_idx = i % region_lines;
        touch_count(base + line_idx * kCacheLine);
      }
      break;
    }
    case Pattern::kStrided: {
      const std::uint64_t slots =
          std::max<std::uint64_t>(1, d.region_bytes / std::max<std::size_t>(d.stride_bytes, 1));
      for (std::uint64_t i = 0; i < d.accesses; ++i) {
        std::uint64_t slot = i % slots;
        touch_count(base + slot * d.stride_bytes);
      }
      break;
    }
    case Pattern::kRandom:
    case Pattern::kGather: {
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      for (std::uint64_t i = 0; i < d.accesses; ++i) {
        std::uint64_t line_idx = rng.below(region_lines);
        touch_count(base + line_idx * kCacheLine);
      }
      break;
    }
    case Pattern::kPointerChase: {
      // A chase visits lines in a pseudo-random dependent order; for miss
      // accounting the address stream is random within the region.
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      std::uint64_t line_idx = rng.below(region_lines);
      for (std::uint64_t i = 0; i < d.accesses; ++i) {
        touch_count(base + line_idx * kCacheLine);
        line_idx = (line_idx * 6364136223846793005ull + rng.below(region_lines)) %
                   region_lines;
      }
      break;
    }
  }
  r.serialized_misses =
      static_cast<double>(r.misses) / effective_mlp(d, default_mlp);
  return r;
}

}  // namespace unimem::cache
