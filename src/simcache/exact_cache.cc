#include "simcache/exact_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/units.h"

namespace unimem::cache {
namespace {

/// One access against a packed set: branchless tag search, then an age
/// update (0 = MRU .. ways-1 = LRU; the ages of a set always form a
/// permutation).  Returns true on miss.
inline bool access_set(std::uint64_t* t, std::uint8_t* a, int ways,
                       std::uint64_t tag) {
  int hit = -1;
  for (int w = 0; w < ways; ++w)
    if (t[w] == tag) hit = w;
  if (hit >= 0) {
    const std::uint8_t ha = a[hit];
    for (int w = 0; w < ways; ++w)
      a[w] = static_cast<std::uint8_t>(a[w] + (a[w] < ha ? 1 : 0));
    a[hit] = 0;
    return false;
  }
  const std::uint8_t oldest = static_cast<std::uint8_t>(ways - 1);
  int victim = 0;
  for (int w = 0; w < ways; ++w)
    if (a[w] == oldest) victim = w;
  for (int w = 0; w < ways; ++w) a[w] = static_cast<std::uint8_t>(a[w] + 1);
  t[victim] = tag;
  a[victim] = 0;
  return true;
}

/// One exact LRU pass of `m` distinct tags over one set; tag_at(k) yields
/// the k-th tag of the set's visit substream.  Key property (distinct
/// tags): an access at position k can hit only a tag resident at pass
/// start, and any such tag is hit or evicted within 2*ways accesses, so
/// positions >= 2*ways always miss.  We therefore simulate at most the
/// first min(m, 2*ways) accesses — and skip even that when no resident tag
/// falls inside [win_lo, win_hi], a range covering those window tags —
/// then splice the all-miss tail state in O(ways).
template <class TagAt>
inline std::uint64_t pass_over_set(std::uint64_t* t, std::uint8_t* a,
                                   int ways, std::uint64_t m,
                                   std::uint64_t win_lo, std::uint64_t win_hi,
                                   TagAt&& tag_at) {
  const std::uint64_t uways = static_cast<std::uint64_t>(ways);
  const std::uint64_t k_window = std::min<std::uint64_t>(m, 2 * uways);
  bool maybe_hit = false;
  for (int w = 0; w < ways; ++w)
    maybe_hit |= (t[w] >= win_lo && t[w] <= win_hi);

  std::uint64_t misses = 0;
  std::uint64_t done = 0;
  if (maybe_hit)
    for (; done < k_window; ++done)
      misses += access_set(t, a, ways, tag_at(done)) ? 1 : 0;

  const std::uint64_t rem = m - done;
  if (rem > 0) {
    misses += rem;
    if (rem >= uways) {
      // Full replacement: the last `ways` tags, newest first.
      for (int w = 0; w < ways; ++w) {
        t[w] = tag_at(m - 1 - static_cast<std::uint64_t>(w));
        a[w] = static_cast<std::uint8_t>(w);
      }
    } else {
      // Survivors age by `rem`; the `rem` oldest ways take the tail tags.
      const std::uint8_t keep = static_cast<std::uint8_t>(uways - rem);
      for (int w = 0; w < ways; ++w) {
        if (a[w] < keep) {
          a[w] = static_cast<std::uint8_t>(a[w] + rem);
        } else {
          const std::uint8_t na = static_cast<std::uint8_t>(a[w] - keep);
          t[w] = tag_at(m - 1 - na);
          a[w] = na;
        }
      }
    }
  }
  return misses;
}

}  // namespace

ExactCache::ExactCache(CacheConfig cfg)
    : cfg_(cfg),
      sets_(cfg.num_sets()),
      ways_(cfg.ways),
      tags_(sets_ * cfg.ways, 0),
      ages_(sets_ * cfg.ways, 0) {
  // Ages are uint8 (0 = MRU .. ways-1 = LRU); a wider config would wrap
  // silently and corrupt the ground-truth miss counts.
  if (ways_ < 1 || ways_ > 255) {
    std::fprintf(stderr, "ExactCache: ways must be in [1, 255] (got %d)\n",
                 ways_);
    std::abort();
  }
  sets_pow2_ = sets_ > 0 && (sets_ & (sets_ - 1)) == 0;
  if (sets_pow2_)
    while ((std::size_t{1} << set_shift_) < sets_) ++set_shift_;
  reset();
}

void ExactCache::reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  // Invalid ways fill in way order (age ways-1 is the victim).
  for (std::size_t s = 0; s < sets_; ++s)
    for (int w = 0; w < ways_; ++w)
      ages_[s * static_cast<std::size_t>(ways_) + static_cast<std::size_t>(w)] =
          static_cast<std::uint8_t>(ways_ - 1 - w);
}

bool ExactCache::touch(std::uint64_t addr) {
  return touch_line(addr / cfg_.line_bytes);
}

bool ExactCache::touch_line(std::uint64_t line) {
  std::size_t set;
  std::uint64_t tag;
  if (sets_pow2_) {
    set = static_cast<std::size_t>(line & (sets_ - 1));
    tag = (line >> set_shift_) + 1;
  } else {
    set = static_cast<std::size_t>(line % sets_);
    tag = line / sets_ + 1;
  }
  const std::size_t o = set * static_cast<std::size_t>(ways_);
  return access_set(&tags_[o], &ages_[o], ways_, tag);
}

std::uint64_t ExactCache::sequential_pass(std::uint64_t first_line,
                                          std::uint64_t len) {
  std::uint64_t misses = 0;
  // Short passes: the per-set machinery costs O(sets x ways); walk the
  // lines directly instead.
  if (len < 2 * sets_) {
    for (std::uint64_t i = 0; i < len; ++i)
      misses += touch_line(first_line + i) ? 1 : 0;
    return misses;
  }
  const std::uint64_t start_set = first_line % sets_;
  for (std::size_t s = 0; s < sets_; ++s) {
    // First visit offset of set s within [first_line, first_line + len).
    const std::uint64_t o = (s + sets_ - start_set) % sets_;
    if (o >= len) continue;
    const std::uint64_t m = 1 + (len - 1 - o) / sets_;
    // Consecutive visits of a set are sets_ lines apart, so its tags are
    // the arithmetic run t0, t0+1, ...
    const std::uint64_t t0 = (first_line + o) / sets_ + 1;
    const std::uint64_t k_window =
        std::min<std::uint64_t>(m, 2 * static_cast<std::uint64_t>(ways_));
    const std::size_t off = s * static_cast<std::size_t>(ways_);
    misses += pass_over_set(&tags_[off], &ages_[off], ways_, m, t0,
                            t0 + k_window - 1,
                            [t0](std::uint64_t k) { return t0 + k; });
  }
  return misses;
}

void ExactCache::build_strided_csr(std::uint64_t base_addr, std::size_t stride,
                                   std::uint64_t slots) {
  csr_off_.assign(sets_ + 1, 0);
  csr_fill_.assign(sets_, 0);
  const std::uint64_t invalid = ~std::uint64_t{0};
  // Count distinct-line visits per set (byte addresses are monotone within
  // a period, so duplicates are consecutive).
  std::uint64_t prev = invalid;
  for (std::uint64_t k = 0; k < slots; ++k) {
    const std::uint64_t line = (base_addr + k * stride) / kCacheLine;
    if (line == prev) continue;
    prev = line;
    ++csr_off_[(line % sets_) + 1];
  }
  for (std::size_t s = 0; s < sets_; ++s) csr_off_[s + 1] += csr_off_[s];
  csr_tags_.resize(csr_off_[sets_]);
  prev = invalid;
  for (std::uint64_t k = 0; k < slots; ++k) {
    const std::uint64_t line = (base_addr + k * stride) / kCacheLine;
    if (line == prev) continue;
    prev = line;
    const std::size_t s = static_cast<std::size_t>(line % sets_);
    csr_tags_[csr_off_[s] + csr_fill_[s]++] = line / sets_ + 1;
  }
  // Hit-window tag range per set (first min(m, 2*ways) visits).
  csr_win_lo_.assign(sets_, 0);
  csr_win_hi_.assign(sets_, 0);
  for (std::size_t s = 0; s < sets_; ++s) {
    const std::uint32_t m = csr_off_[s + 1] - csr_off_[s];
    if (m == 0) continue;
    const std::uint32_t k_window =
        std::min<std::uint32_t>(m, static_cast<std::uint32_t>(2 * ways_));
    std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
    for (std::uint32_t k = 0; k < k_window; ++k) {
      const std::uint64_t tag = csr_tags_[csr_off_[s] + k];
      lo = std::min(lo, tag);
      hi = std::max(hi, tag);
    }
    csr_win_lo_[s] = lo;
    csr_win_hi_[s] = hi;
  }
}

std::uint64_t ExactCache::strided_pass() {
  std::uint64_t misses = 0;
  for (std::size_t s = 0; s < sets_; ++s) {
    const std::uint32_t m = csr_off_[s + 1] - csr_off_[s];
    if (m == 0) continue;
    const std::uint64_t* tags = &csr_tags_[csr_off_[s]];
    const std::size_t off = s * static_cast<std::size_t>(ways_);
    misses += pass_over_set(&tags_[off], &ages_[off], ways_, m,
                            csr_win_lo_[s], csr_win_hi_[s],
                            [tags](std::uint64_t k) { return tags[k]; });
  }
  return misses;
}

AccessResult ExactCache::process(const AccessDescriptor& d, int default_mlp) {
  AccessResult r;
  if (d.accesses == 0 || d.region_bytes == 0 || d.base == nullptr) return r;
  const auto base = reinterpret_cast<std::uint64_t>(d.base);
  // The bulk paths decompose line = base/64 + index, which needs the
  // configured line size to be the global kCacheLine (true everywhere; the
  // guard keeps odd configs exact rather than fast).
  const bool fast = cfg_.line_bytes == kCacheLine;
  const std::uint64_t base_line = base / kCacheLine;
  Rng rng(d.seed * 0x2545F4914F6CDD1Dull + 7);

  switch (d.pattern) {
    case Pattern::kSequential: {
      // Stream through the region at line granularity, wrapping around for
      // multiple passes.
      const std::uint64_t touches = d.line_touches();
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      r.line_touches = touches;
      if (fast) {
        const std::uint64_t full = touches / region_lines;
        const std::uint64_t tail = touches % region_lines;
        for (std::uint64_t p = 0; p < full; ++p)
          r.misses += sequential_pass(base_line, region_lines);
        if (tail > 0) r.misses += sequential_pass(base_line, tail);
      } else {
        for (std::uint64_t i = 0; i < touches; ++i)
          r.misses += touch(base + (i % region_lines) * kCacheLine) ? 1 : 0;
      }
      break;
    }
    case Pattern::kStrided: {
      const std::uint64_t slots = std::max<std::uint64_t>(
          1, d.region_bytes / std::max<std::size_t>(d.stride_bytes, 1));
      r.line_touches = d.accesses;
      if (fast && d.accesses >= slots) {
        const std::uint64_t full = d.accesses / slots;
        const std::uint64_t tail = d.accesses % slots;
        build_strided_csr(base, d.stride_bytes, slots);
        for (std::uint64_t p = 0; p < full; ++p) r.misses += strided_pass();
        for (std::uint64_t k = 0; k < tail; ++k)
          r.misses +=
              touch_line((base + k * d.stride_bytes) / kCacheLine) ? 1 : 0;
      } else {
        for (std::uint64_t i = 0; i < d.accesses; ++i)
          r.misses += touch(base + (i % slots) * d.stride_bytes) ? 1 : 0;
      }
      break;
    }
    case Pattern::kRandom:
    case Pattern::kGather: {
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      r.line_touches = d.accesses;
      if (fast) {
        for (std::uint64_t i = 0; i < d.accesses; ++i)
          r.misses += touch_line(base_line + rng.below(region_lines)) ? 1 : 0;
      } else {
        for (std::uint64_t i = 0; i < d.accesses; ++i)
          r.misses +=
              touch(base + rng.below(region_lines) * kCacheLine) ? 1 : 0;
      }
      break;
    }
    case Pattern::kPointerChase: {
      // A chase visits lines in a pseudo-random dependent order; for miss
      // accounting the address stream is random within the region.
      const std::uint64_t region_lines = lines_of(d.region_bytes);
      r.line_touches = d.accesses;
      std::uint64_t line_idx = rng.below(region_lines);
      for (std::uint64_t i = 0; i < d.accesses; ++i) {
        r.misses += (fast ? touch_line(base_line + line_idx)
                          : touch(base + line_idx * kCacheLine))
                        ? 1
                        : 0;
        line_idx = (line_idx * 6364136223846793005ull +
                    rng.below(region_lines)) %
                   region_lines;
      }
      break;
    }
  }
  r.serialized_misses =
      static_cast<double>(r.misses) / effective_mlp(d, default_mlp);
  return r;
}

}  // namespace unimem::cache
