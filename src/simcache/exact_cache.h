// Exact set-associative LRU last-level-cache simulator.
//
// Ground truth for the analytic model and the engine used by unit tests and
// small examples.  Works at cache-line granularity; the address streams are
// generated from the descriptor deterministically (seeded).
//
// The state is packed per set: a contiguous tag array per set searched
// branchlessly, and small-int LRU ages (0 = MRU .. ways-1 = LRU, a
// permutation per set) instead of global 64-bit use stamps.  process()
// walks cache lines in bulk — never individual byte addresses — and takes
// an O(sets x ways) per-pass shortcut for cyclic distinct-line streams
// (dense sequential and strided descriptors), which is where production
// problem sizes spend their time.  touch() remains the simple byte-address
// oracle the equivalence tests drive.
#pragma once

#include <cstdint>
#include <vector>

#include "simcache/cache_model.h"

namespace unimem::cache {

class ExactCache final : public CacheModel {
 public:
  explicit ExactCache(CacheConfig cfg = CacheConfig{});

  AccessResult process(const AccessDescriptor& d, int default_mlp) override;
  void reset() override;
  const CacheConfig& config() const override { return cfg_; }

  /// Touch a single byte address; returns true on miss.  Exposed for tests
  /// as the one-access-at-a-time oracle the bulk path is checked against.
  bool touch(std::uint64_t addr);

 private:
  /// One line-granular access against the packed per-set state.
  bool touch_line(std::uint64_t line);

  /// One exact LRU pass of `len` consecutive lines starting at
  /// `first_line`; returns the miss count.  Uses the per-set distinct-tag
  /// shortcut when the pass is long enough to amortize it.
  std::uint64_t sequential_pass(std::uint64_t first_line, std::uint64_t len);

  /// Build the per-set CSR visit streams for one period of a strided
  /// descriptor (consecutive duplicate lines collapsed), then run one
  /// exact pass over them; returns the miss count.
  void build_strided_csr(std::uint64_t base_addr, std::size_t stride,
                         std::uint64_t slots);
  std::uint64_t strided_pass();

  CacheConfig cfg_;
  std::size_t sets_;
  int ways_;
  bool sets_pow2_ = false;
  std::uint32_t set_shift_ = 0;  ///< log2(sets_) when sets_pow2_
  // Packed per-set state: tags_[set * ways + way], 0 = invalid;
  // ages_[set * ways + way] is the way's LRU age (0 = MRU).
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint8_t> ages_;

  // Scratch for the strided bulk path, reused across process() calls.
  std::vector<std::uint32_t> csr_off_;   ///< sets_ + 1 prefix offsets
  std::vector<std::uint32_t> csr_fill_;  ///< per-set fill cursor (build)
  std::vector<std::uint64_t> csr_tags_;  ///< per-set tags in visit order
  std::vector<std::uint64_t> csr_win_lo_, csr_win_hi_;  ///< hit-window range
};

}  // namespace unimem::cache
