// Exact set-associative LRU last-level-cache simulator.
//
// Ground truth for the analytic model and the engine used by unit tests and
// small examples.  Works at cache-line granularity; the address streams are
// generated from the descriptor deterministically (seeded).
#pragma once

#include <cstdint>
#include <vector>

#include "simcache/cache_model.h"

namespace unimem::cache {

class ExactCache final : public CacheModel {
 public:
  explicit ExactCache(CacheConfig cfg = CacheConfig{});

  AccessResult process(const AccessDescriptor& d, int default_mlp) override;
  void reset() override;
  const CacheConfig& config() const override { return cfg_; }

  /// Touch a single byte address; returns true on miss.  Exposed for tests.
  bool touch(std::uint64_t addr);

 private:
  CacheConfig cfg_;
  std::size_t sets_;
  // tags_[set * ways + way]; 0 means invalid.  lru_ holds last-use stamps.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t stamp_ = 0;
};

}  // namespace unimem::cache
