// Cache-model interface: turns an access descriptor into LLC miss counts.
// Two implementations exist:
//   * ExactCache    - a set-associative LRU simulator (ground truth, slow)
//   * AnalyticCache - closed-form miss estimates (fast path for benches)
// Tests verify the two agree across the pattern space (DESIGN.md §6.5).
#pragma once

#include <cstddef>

#include "simcache/access_descriptor.h"

namespace unimem::cache {

struct CacheConfig {
  std::size_t size_bytes = 1 << 20;  ///< 1 MiB LLC (scaled; DESIGN.md §5)
  int ways = 16;
  std::size_t line_bytes = 64;

  std::size_t num_sets() const { return size_bytes / (line_bytes * ways); }
  std::size_t num_lines() const { return size_bytes / line_bytes; }
};

class CacheModel {
 public:
  virtual ~CacheModel() = default;

  /// Run one descriptor through the model, updating internal state and
  /// returning miss statistics.  `default_mlp` comes from TimingParams.
  virtual AccessResult process(const AccessDescriptor& d, int default_mlp) = 0;

  /// Drop all cached state (e.g. between independent experiments).
  virtual void reset() = 0;

  virtual const CacheConfig& config() const = 0;
};

}  // namespace unimem::cache
