#include "simcache/analytic_cache.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace unimem::cache {

AccessResult AnalyticCache::process(const AccessDescriptor& d,
                                    int default_mlp) {
  AccessResult r;
  if (d.accesses == 0 || d.region_bytes == 0) return r;
  const double cache_lines = static_cast<double>(cfg_.num_lines());
  // Fit decisions use the logical traversal size (see AccessDescriptor::
  // logical_bytes); per-chunk slices of one big sweep share the cache.
  const double logical_scale =
      static_cast<double>(d.effective_logical_bytes()) /
      static_cast<double>(d.region_bytes);
  const double footprint =
      static_cast<double>(d.footprint_lines()) * logical_scale;
  const double touches = static_cast<double>(d.line_touches());
  r.line_touches = d.line_touches();

  // A shared LLC never holds one object exclusively; assume a resident
  // fraction of capacity is available to this stream.
  constexpr double kResidency = 0.8;
  const double eff_cache = cache_lines * kResidency;

  double misses = 0;
  switch (d.pattern) {
    case Pattern::kSequential:
    case Pattern::kStrided: {
      if (footprint > eff_cache) {
        // Capacity-bound stream: every distinct line touch misses (by the
        // time the stream wraps around, the line has been evicted).
        misses = touches;
      } else {
        // Fits: cold misses once, then hits on subsequent passes.
        misses = std::min(touches, footprint);
      }
      break;
    }
    case Pattern::kRandom:
    case Pattern::kGather:
    case Pattern::kPointerChase: {
      if (footprint <= eff_cache) {
        // Warms up: expected cold misses follow the coupon-collector bound,
        // capped by the footprint.
        misses = std::min(touches, footprint * (1.0 - std::exp(-touches / footprint)));
      } else {
        // Steady state: a touched line is resident with prob cache/footprint.
        const double p_miss = 1.0 - eff_cache / footprint;
        misses = touches * std::max(0.02, p_miss);
      }
      break;
    }
  }
  r.misses = static_cast<std::uint64_t>(misses + 0.5);
  r.serialized_misses =
      static_cast<double>(r.misses) / effective_mlp(d, default_mlp);
  return r;
}

}  // namespace unimem::cache
