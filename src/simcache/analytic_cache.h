// Analytic cache model: closed-form LLC miss estimates per descriptor.
//
// The exact simulator costs O(#line-touches); the benches sweep dozens of
// configurations over multi-megabyte footprints, so they use this O(1)
// model instead.  The estimates follow standard capacity-miss reasoning:
//   * streaming over a region larger than the cache misses on every line;
//   * a region that fits is cold-missed once and then hits;
//   * random access to an oversized region misses with probability
//     ~ (1 - cache/region) in steady state.
// tests/simcache_test.cc checks agreement with ExactCache across patterns.
#pragma once

#include "simcache/cache_model.h"

namespace unimem::cache {

class AnalyticCache final : public CacheModel {
 public:
  explicit AnalyticCache(CacheConfig cfg = CacheConfig{}) : cfg_(cfg) {}

  AccessResult process(const AccessDescriptor& d, int default_mlp) override;
  void reset() override {}
  const CacheConfig& config() const override { return cfg_; }

 private:
  CacheConfig cfg_;
};

}  // namespace unimem::cache
