// Access descriptors: the language in which workloads tell the memory
// substrate *how* a phase touches a data object.
//
// The paper's preliminary study (§2, Observation 3) establishes that what
// matters for placement is the per-object access pattern: streaming-like
// patterns with massive independent misses are *bandwidth sensitive*, while
// dependent-access patterns (pointer chasing) are *latency sensitive*.
// Descriptors capture exactly these distinctions and drive both the cache
// model (miss counts) and the timing model (overlap/serialization).
#pragma once

#include <cstddef>
#include <cstdint>

namespace unimem::cache {

enum class Pattern : int {
  kSequential,    ///< unit-stride stream over the region
  kStrided,       ///< fixed stride >= one element
  kRandom,        ///< independent uniform-random accesses
  kGather,        ///< index-driven gather (independent, random-like)
  kPointerChase,  ///< dependent chain: each access needs the previous one
};

inline const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kSequential: return "sequential";
    case Pattern::kStrided: return "strided";
    case Pattern::kRandom: return "random";
    case Pattern::kGather: return "gather";
    case Pattern::kPointerChase: return "pointer-chase";
  }
  return "?";
}

struct AccessDescriptor {
  /// Base address of the touched region (the live allocation of the object
  /// or chunk; re-resolved every phase so migration is observed).
  const void* base = nullptr;
  /// Region length in bytes.
  std::size_t region_bytes = 0;
  Pattern pattern = Pattern::kSequential;
  /// Number of element accesses the phase performs on this region.
  std::uint64_t accesses = 0;
  /// Element size in bytes (8 for double).
  std::uint32_t access_bytes = 8;
  /// Stride in bytes between consecutive accesses (kStrided only).
  std::size_t stride_bytes = 64;
  /// Fraction of accesses that are writes, in [0,1].
  double write_fraction = 0.0;
  /// Memory-level-parallelism override; 0 = pattern default
  /// (kPointerChase is always 1: accesses are dependent).
  int mlp = 0;
  /// Seed for randomized patterns; fixed => deterministic.
  std::uint64_t seed = 1;
  /// When this descriptor is one chunk's slice of a larger logical
  /// traversal, the full traversal's size in bytes (0 = region_bytes).
  /// Cache-fit decisions must use the logical size: fourteen 1 MiB chunk
  /// slices of one streamed 14 MiB array do NOT each fit in a 1 MiB LLC.
  std::size_t logical_bytes = 0;

  std::size_t effective_logical_bytes() const {
    return logical_bytes != 0 ? logical_bytes : region_bytes;
  }

  /// Distinct cache lines this descriptor's footprint covers.
  std::uint64_t footprint_lines() const;
  /// Total cache-line touches the access stream generates.
  std::uint64_t line_touches() const;
};

/// Result of running one descriptor through a cache model.
struct AccessResult {
  std::uint64_t line_touches = 0;
  std::uint64_t misses = 0;  ///< LLC misses -> main-memory line transfers
  /// Misses that are on the critical path (cannot overlap each other).
  /// For independent patterns ~ misses/MLP; for pointer chasing == misses.
  double serialized_misses = 0;

  std::uint64_t bytes_from_memory() const { return misses * 64; }

  AccessResult& operator+=(const AccessResult& o) {
    line_touches += o.line_touches;
    misses += o.misses;
    serialized_misses += o.serialized_misses;
    return *this;
  }
};

/// Effective MLP for a pattern (how many outstanding misses overlap).
int effective_mlp(const AccessDescriptor& d, int default_mlp);

}  // namespace unimem::cache
