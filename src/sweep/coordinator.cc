#include "sweep/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/log.h"
#include "sweep/result_store.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace unimem::sweep {

namespace {

struct Chunk {
  std::vector<SweepPoint> points;
  int owner = 0;       ///< worker slot whose slice these points came from
  int redispatch = 0;  ///< how many times a dying worker handed them back
};

bool read_task_meta(const std::string& path, CampaignOutcome* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::size_t worlds = 0, breq = 0, bcomp = 0, failed = 0, retries = 0;
  int jobs = 0;
  const int n = std::fscanf(f, "%zu %zu %zu %zu %d %zu", &worlds, &breq,
                            &bcomp, &failed, &jobs, &retries);
  std::fclose(f);
  if (n != 6) return false;
  out->worlds_executed += worlds;
  out->baseline_requests += breq;
  out->baseline_computed += bcomp;
  out->retries += retries;
  out->jobs_used = std::max(out->jobs_used, jobs);
  return true;
}

}  // namespace

CampaignOutcome run_campaign(const std::vector<SweepPoint>& points,
                             const CoordinatorOptions& opts) {
  if (opts.launcher == nullptr)
    throw std::invalid_argument("run_campaign: launcher required");
  if (opts.workers < 1)
    throw std::invalid_argument("run_campaign: workers must be >= 1");
  if (opts.scratch_dir.empty())
    throw std::invalid_argument("run_campaign: scratch_dir required");
  const auto t0 = std::chrono::steady_clock::now();

  const std::size_t n = points.size();
  std::map<std::size_t, std::size_t> pos_of;  // point index -> position
  for (std::size_t i = 0; i < n; ++i) pos_of[points[i].index] = i;

  CampaignOutcome out;
  out.workers = opts.workers;
  out.rows.resize(n);
  std::vector<char> has(n, 0);
  std::size_t done = 0;

  auto finalize = [&](const SweepRow& row, std::size_t pos) {
    has[pos] = 1;
    out.rows[pos] = row;
    ++done;
    if (!row.ok) ++out.failed;
    if (opts.on_final_row) opts.on_final_row(out.rows[pos]);
  };

  // Resume: accept prior ok rows up front (point order), re-run the rest.
  for (const SweepRow& row : opts.resume_rows) {
    const auto it = pos_of.find(row.index);
    if (it == pos_of.end()) continue;  // artifact covered a wider filter
    if (row.label != points[it->second].label)
      throw std::runtime_error(
          "run_campaign: resume row " + std::to_string(row.index) +
          " has label '" + row.label + "' but the spec expands to '" +
          points[it->second].label + "' — stale artifact from another spec?");
    if (!row.ok || has[it->second]) continue;
    finalize(row, it->second);
    ++out.resumed;
  }

  // Deal the remaining points: shard_slice per worker (keeps baseline
  // groups together), then cut each slice into chunks.
  std::vector<SweepPoint> pending;
  pending.reserve(n - done);
  for (std::size_t i = 0; i < n; ++i)
    if (!has[i]) pending.push_back(points[i]);

  std::vector<std::deque<Chunk>> queues(
      static_cast<std::size_t>(opts.workers));
  for (int w = 0; w < opts.workers; ++w) {
    const std::vector<SweepPoint> slice =
        shard_slice(pending, w, opts.workers);
    if (slice.empty()) continue;
    std::size_t chunk = opts.chunk_points;
    if (chunk == 0)
      // With stealing, give every worker a few chunks so there is
      // something to steal; without it, chunking only adds dispatch
      // overhead — one task per worker, like run_sharded_processes.
      chunk = opts.steal ? std::max<std::size_t>(1, slice.size() / 4)
                         : slice.size();
    for (std::size_t b = 0; b < slice.size(); b += chunk) {
      Chunk c;
      c.owner = w;
      c.points.assign(slice.begin() + static_cast<std::ptrdiff_t>(b),
                      slice.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(b + chunk, slice.size())));
      queues[static_cast<std::size_t>(w)].push_back(std::move(c));
    }
  }

  std::map<int, Chunk> active;  // slot -> chunk being executed
  std::map<int, std::string> active_artifact;
  std::uint64_t next_task_id = 0;

  auto take_chunk = [&](int slot) -> std::pair<bool, Chunk> {
    auto& own = queues[static_cast<std::size_t>(slot)];
    if (!own.empty()) {
      Chunk c = std::move(own.front());
      own.pop_front();
      return {true, std::move(c)};
    }
    if (!opts.steal) return {false, {}};
    // Steal from the most-loaded sibling's tail (the work its owner
    // would reach last); ties break toward the lowest slot for
    // reproducible dispatch decisions.
    int victim = -1;
    std::size_t best = 0;
    for (int w = 0; w < opts.workers; ++w)
      if (queues[static_cast<std::size_t>(w)].size() > best) {
        best = queues[static_cast<std::size_t>(w)].size();
        victim = w;
      }
    if (victim < 0) return {false, {}};
    auto& q = queues[static_cast<std::size_t>(victim)];
    Chunk c = std::move(q.back());
    q.pop_back();
    ++out.steals;
    UNIMEM_TRACE_INSTANT2("coordinator", "task.steal", -1.0, "thief",
                          static_cast<std::uint64_t>(slot), "victim",
                          static_cast<std::uint64_t>(victim));
    return {true, std::move(c)};
  };

  auto dispatch = [&](int slot) -> bool {
    auto [got, chunk] = take_chunk(slot);
    if (!got) return false;
    LaunchTask task;
    task.slot = slot;
    task.task_id = next_task_id++;
    task.attempt_base = chunk.redispatch;
    task.points = chunk.points;
    task.artifact =
        opts.scratch_dir + "/task-" + std::to_string(task.task_id) + ".jsonl";
    task.engine = opts.engine;
    task.engine.on_result = nullptr;
    if (opts.trace_tasks) {
      task.trace = task.artifact + ".trace";
      task.trace_buf = opts.trace_buf;
    }
    UNIMEM_TRACE_INSTANT2("coordinator",
                          chunk.redispatch > 0 ? "task.redispatch"
                                               : "task.dispatch",
                          -1.0, "task", task.task_id, "points",
                          task.points.size());
    opts.launcher->start(task);
    active_artifact[slot] = task.artifact;
    active[slot] = std::move(chunk);
    ++out.tasks;
    return true;
  };

  auto progress = [&](bool complete) {
    if (!opts.on_progress) return;
    CampaignProgress p;
    p.total = n;
    p.done = done;
    p.failed = out.failed;
    p.resumed = out.resumed;
    p.retries = out.retries;
    p.steals = out.steals;
    p.tasks = out.tasks;
    p.task_retries = out.task_retries;
    p.complete = complete;
    opts.on_progress(p);
  };

  std::vector<int> free_slots;
  for (int w = opts.workers - 1; w >= 0; --w) free_slots.push_back(w);

  while (done < n) {
    for (std::size_t i = free_slots.size(); i-- > 0;) {
      if (dispatch(free_slots[i]))
        free_slots.erase(free_slots.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (active.empty())
      throw std::logic_error(
          "run_campaign: stalled with unfinished points and no active "
          "tasks");

    auto [slot, status] = opts.launcher->wait_any();
    const auto ait = active.find(slot);
    if (ait == active.end())
      throw std::logic_error("run_campaign: completion for idle slot");
    Chunk chunk = std::move(ait->second);
    active.erase(ait);
    const std::string artifact = active_artifact[slot];
    active_artifact.erase(slot);
    free_slots.push_back(slot);

    // Harvest whatever the task managed to write — even a killed worker's
    // completed rows count (tolerant read drops at most a torn tail).
    std::vector<SweepRow> rows;
    try {
      rows = read_jsonl_tolerant(artifact);
    } catch (const std::exception&) {
      rows.clear();  // no artifact at all: every point is unfinished
    }
    read_task_meta(artifact + ".meta", &out);
    if (opts.trace_tasks) {
      // A dead worker may have spilled nothing; harvest what exists and
      // let the merge skip unreadable shards.
      std::FILE* tf = std::fopen((artifact + ".trace").c_str(), "rb");
      if (tf != nullptr) {
        std::fclose(tf);
        out.trace_shards.push_back(artifact + ".trace");
      }
    }

    std::set<std::size_t> chunk_indices;
    for (const SweepPoint& p : chunk.points) chunk_indices.insert(p.index);
    for (const SweepRow& row : rows) {
      if (chunk_indices.count(row.index) == 0) continue;
      const std::size_t pos = pos_of.at(row.index);
      if (has[pos]) continue;
      finalize(row, pos);
      chunk_indices.erase(row.index);
    }

    if (!chunk_indices.empty()) {
      // The worker died mid-chunk.  Re-dispatch the unfinished points (to
      // the same owner's queue; stealing will rebalance if it lags), or —
      // budget exhausted — finalize them as failures naming the cause.
      Chunk rest;
      rest.owner = chunk.owner;
      rest.redispatch = chunk.redispatch + 1;
      for (const SweepPoint& p : chunk.points)
        if (chunk_indices.count(p.index) != 0) rest.points.push_back(p);
      const std::string cause =
          status.detail.empty() ? "task did not run to completion"
                                : status.detail;
      Log::warn("sweep worker died (%s) — %zu point(s) unfinished",
                cause.c_str(), chunk_indices.size());
      UNIMEM_TRACE_INSTANT1("coordinator", "task.dead", -1.0, "unfinished",
                            chunk_indices.size());
      out.task_failures.push_back(cause + " — " +
                                  std::to_string(chunk_indices.size()) +
                                  " point(s) unfinished");
      if (chunk.redispatch < opts.max_task_retries) {
        queues[static_cast<std::size_t>(rest.owner)].push_back(
            std::move(rest));
        ++out.task_retries;
      } else {
        for (const SweepPoint& p : rest.points) {
          SweepRow row;
          row.index = p.index;
          row.label = p.label;
          row.axis = p.axis;
          row.ok = false;
          row.error = "worker died (" + cause + "), re-dispatch budget of " +
                      std::to_string(opts.max_task_retries) + " exhausted";
          finalize(row, pos_of.at(p.index));
        }
      }
    }
    progress(false);
  }

  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  auto& reg = trace::MetricsRegistry::global();
  reg.counter("campaign.tasks")->add(out.tasks);
  reg.counter("campaign.task_retries")->add(out.task_retries);
  reg.counter("campaign.steals")->add(out.steals);
  reg.counter("campaign.resumed")->add(out.resumed);
  reg.counter("campaign.failed_points")->add(out.failed);
  reg.gauge("campaign.wall_s")->set(out.wall_s);
  progress(true);
  return out;
}

}  // namespace unimem::sweep
