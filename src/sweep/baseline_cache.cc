#include "sweep/baseline_cache.h"

#include <cstdio>

namespace unimem::sweep {

BaselineService::BaselineService(Runner runner) : runner_(std::move(runner)) {
  if (!runner_) runner_ = [](const exp::RunConfig& c) { return exp::run_once(c); };
}

std::string BaselineService::key(const exp::RunConfig& cfg) {
  // Included: workload identity and size, the drift-injection schedule
  // (it scales the modeled traffic of every policy, DRAM-only included),
  // the rank/node topology, the network model, and the execution-engine
  // knobs StaticContext consumes (timing, cache model).  Excluded on
  // purpose: NVM bw/lat ratios and dram_capacity (the DRAM-only machine's
  // tiers all run at DRAM speed and capacity only bounds allocation,
  // never timing), the Unimem technique switches and re-planning knobs,
  // and manual placements (DRAM-only ignores them all).
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "%s|%c|i%d|r%d|rpn%d|a%.9g|b%.9g|f%.9g|fl%.9g|mlp%d|s%llu|"
                "c%zu/%d/%zu|x%d|d%.9g/%d/%llu",
                cfg.workload.c_str(), cfg.wcfg.cls, cfg.wcfg.iterations,
                cfg.wcfg.nranks, cfg.ranks_per_node, cfg.net.alpha_s,
                cfg.net.beta_bps, cfg.unimem.timing.cpu_freq_hz,
                cfg.unimem.timing.flops_per_sec, cfg.unimem.timing.default_mlp,
                static_cast<unsigned long long>(
                    cfg.unimem.timing.sample_interval_cycles),
                cfg.unimem.cache.size_bytes, cfg.unimem.cache.ways,
                cfg.unimem.cache.line_bytes, cfg.unimem.use_exact_cache ? 1 : 0,
                cfg.wcfg.drift_amplitude, cfg.wcfg.drift_period,
                static_cast<unsigned long long>(cfg.wcfg.drift_seed));
  return buf;
}

exp::RunResult BaselineService::dram_baseline(const exp::RunConfig& cfg) {
  const std::string k = key(cfg);
  std::shared_future<exp::RunResult> fut;
  bool mine = false;
  std::promise<exp::RunResult> prom;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++requests_;
    auto it = cache_.find(k);
    if (it == cache_.end()) {
      fut = prom.get_future().share();
      cache_.emplace(k, fut);
      ++computed_;
      mine = true;
    } else {
      fut = it->second;
    }
  }
  if (mine) {
    exp::RunConfig dram = cfg;
    dram.policy = exp::Policy::kDramOnly;
    try {
      prom.set_value(runner_(dram));
    } catch (...) {
      prom.set_exception(std::current_exception());
    }
  }
  // Rethrows the computing thread's exception for every waiter, so a
  // failing baseline fails each dependent point (isolated per point by
  // the engine), not the whole batch.
  return fut.get();
}

std::size_t BaselineService::computed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return computed_;
}

std::size_t BaselineService::requests() const {
  std::lock_guard<std::mutex> lk(mu_);
  return requests_;
}

}  // namespace unimem::sweep
