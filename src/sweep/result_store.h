// SweepResultStore: collection + serialization of sweep rows.
//
// Designed to be handed to SweepEngine as the on_result callback: rows
// stream to JSONL the moment they complete (each line carries the point
// index, so consumers can re-order; the file is append-only and flushed
// per row for liveness), while CSV — a columnar, whole-table format — is
// written at finish() in deterministic point order.  The store can also
// render itself as an exp::Report for the aligned-stdout-table path every
// bench binary uses.
#pragma once

#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "experiments/report.h"
#include "sweep/engine.h"

namespace unimem::sweep {

class SweepResultStore {
 public:
  SweepResultStore() = default;
  ~SweepResultStore();

  SweepResultStore(const SweepResultStore&) = delete;
  SweepResultStore& operator=(const SweepResultStore&) = delete;

  /// Enable streaming JSONL; opens (truncates) the file immediately so a
  /// watcher can tail it from point zero.  Throws std::runtime_error when
  /// the file cannot be opened.
  void stream_jsonl(const std::string& path);

  /// Write the full table as CSV at finish().
  void write_csv_at_finish(const std::string& path) { csv_path_ = path; }

  /// Record one completed row (thread-safety is provided by the engine,
  /// which serializes on_result calls).
  void add(const SweepRow& row);

  /// Sorts rows into point order, writes the CSV if configured, closes
  /// the JSONL stream.  Idempotent.
  void finish();

  const std::vector<SweepRow>& rows() const { return rows_; }

  /// Aligned stdout table of every row (index/label/time/normalized).
  exp::Report report(const std::string& title) const;

  /// One row as a JSONL line (no trailing newline); exposed for tests.
  static std::string jsonl_line(const SweepRow& row);

 private:
  std::vector<SweepRow> rows_;
  std::string csv_path_;
  std::FILE* jsonl_ = nullptr;
  bool finished_ = false;
};

/// First row whose axis contains every (key, value) in `where`; nullptr
/// when none matches.  The pivot helper the ported figure harnesses use
/// to map grid rows back into their table cells.
const SweepRow* find_row(const std::vector<SweepRow>& rows,
                         const std::map<std::string, std::string>& where);

}  // namespace unimem::sweep
