// SweepResultStore: collection + serialization of sweep rows.
//
// Designed to be handed to SweepEngine as the on_result callback: rows
// stream to JSONL the moment they complete (each line carries the point
// index, so consumers can re-order; the file is append-only and flushed
// per row for liveness), while CSV — a columnar, whole-table format — is
// written at finish() in deterministic point order.  The store can also
// render itself as an exp::Report for the aligned-stdout-table path every
// bench binary uses.
#pragma once

#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "experiments/report.h"
#include "sweep/engine.h"

namespace unimem::sweep {

class SweepResultStore {
 public:
  SweepResultStore() = default;
  ~SweepResultStore();

  SweepResultStore(const SweepResultStore&) = delete;
  SweepResultStore& operator=(const SweepResultStore&) = delete;

  /// Enable streaming JSONL; opens (truncates) the file immediately so a
  /// watcher can tail it from point zero.  Throws std::runtime_error when
  /// the file cannot be opened.
  void stream_jsonl(const std::string& path);

  /// Write the full table as CSV at finish().
  void write_csv_at_finish(const std::string& path) { csv_path_ = path; }

  /// Write the rows as JSONL in point order at finish() — unlike the
  /// streaming file (completion order), this artifact is byte-identical
  /// across job counts and execution topologies.
  void write_jsonl_at_finish(const std::string& path) { jsonl_path_ = path; }

  /// Record one completed row (thread-safety is provided by the engine,
  /// which serializes on_result calls).
  void add(const SweepRow& row);

  /// Sorts rows into point order, writes the CSV if configured, closes
  /// the JSONL stream.  Idempotent.
  void finish();

  const std::vector<SweepRow>& rows() const { return rows_; }

  /// Aligned stdout table of every row (index/label/time/normalized).
  exp::Report report(const std::string& title) const;

  /// One row as a JSONL line (no trailing newline); exposed for tests.
  static std::string jsonl_line(const SweepRow& row);

 private:
  std::vector<SweepRow> rows_;
  std::string csv_path_;
  std::string jsonl_path_;
  std::FILE* jsonl_ = nullptr;
  bool finished_ = false;
};

/// Inverse of SweepResultStore::jsonl_line: reconstruct a SweepRow from
/// one line of the store's own JSONL output.  Exact round-trip —
/// jsonl_line(parse_jsonl_line(l)) == l — because doubles are serialized
/// with %.17g (shortest exact form round-trips through strtod) and axis
/// maps serialize in sorted key order.  Only accepts the store's own
/// format; throws std::runtime_error on malformed input.
SweepRow parse_jsonl_line(const std::string& line);

/// Read every row of a SweepResultStore JSONL file (any order); throws
/// std::runtime_error when the file cannot be opened or a line is
/// malformed.
std::vector<SweepRow> read_jsonl(const std::string& path);

/// Crash-tolerant JSONL reader for --resume and coordinator task
/// artifacts: parses every well-formed line; a malformed FINAL line (the
/// torn tail of a writer killed mid-write) is silently dropped — losing
/// one re-runnable point beats discarding the whole artifact — and
/// `dropped` (optional) reports whether that happened.  A malformed line
/// with complete lines after it still throws (real corruption, not a
/// crash).  Later duplicates of a point index win: a resumed campaign
/// appends fresh rows for points that previously failed.
std::vector<SweepRow> read_jsonl_tolerant(const std::string& path,
                                          std::size_t* dropped = nullptr);

/// Stitch per-shard JSONL files back into one point-ordered row list.
/// The shards of one expansion partition it exactly, so duplicate point
/// indices across files mean mismatched shard runs — rejected with
/// std::runtime_error rather than silently merged.
std::vector<SweepRow> merge_shards(const std::vector<std::string>& paths);

/// First row whose axis contains every (key, value) in `where`; nullptr
/// when none matches.  The pivot helper the ported figure harnesses use
/// to map grid rows back into their table cells.
const SweepRow* find_row(const std::vector<SweepRow>& rows,
                         const std::map<std::string, std::string>& where);

}  // namespace unimem::sweep
