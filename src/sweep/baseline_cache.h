// Memoized DRAM-only normalization baselines for sweep execution.
//
// The paper normalizes every figure to a DRAM-only run of the same
// (workload, size, network) — historically re-executed by each harness
// loop for every row, and by normalized_time() for every point.  A
// DRAM-only run's virtual time is invariant to the NVM bandwidth/latency
// ratios and the DRAM allowance (the DRAM-only machine runs every tier at
// DRAM speed and places nothing under the arbiter's allowance), so one
// baseline serves an entire grid slice.  BaselineService memoizes on
// exactly the fields that do reach the DRAM-only timing path.
//
// Thread-safe and single-flight: concurrent requests for the same key
// block on one computation (a shared_future), never duplicate it.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "experiments/runner.h"

namespace unimem::sweep {

class BaselineService {
 public:
  using Runner = std::function<exp::RunResult(const exp::RunConfig&)>;

  /// `runner` executes a prepared DRAM-only config; defaults to
  /// exp::run_once.  Injectable so tests can count/replace executions.
  explicit BaselineService(Runner runner = {});

  /// The DRAM-only baseline for `cfg`'s workload/size/network (cfg itself
  /// may be any policy; it is rewritten to Policy::kDramOnly).
  exp::RunResult dram_baseline(const exp::RunConfig& cfg);

  /// Number of baseline worlds actually executed (cache misses).
  std::size_t computed() const;
  /// Number of dram_baseline() calls served.
  std::size_t requests() const;

  /// Memoization key: every RunConfig field a DRAM-only run's timing
  /// depends on (exposed for the key-coverage test).
  ///
  /// Shard stability: the key is a pure function of the requesting
  /// point's RunConfig — never of engine state, request order, or which
  /// process asks — and the baseline run itself is deterministic, so a
  /// baseline computed independently in shard 0 of a multi-process sweep
  /// is bitwise identical to the same key computed in shard 1.  Fields a
  /// DRAM-only run cannot feel (policy, NVM ratios, dram_capacity,
  /// manual placements, technique switches) are excluded so that e.g. a
  /// fig4 manual-placement point and its nvm-only reference — possibly
  /// living on different shards — resolve to the same key.  Asserted by
  /// BaselineService.KeyIsShardStableAcrossPolicyVariants.
  static std::string key(const exp::RunConfig& cfg);

 private:
  Runner runner_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_future<exp::RunResult>> cache_;
  std::size_t computed_ = 0;
  std::size_t requests_ = 0;
};

}  // namespace unimem::sweep
