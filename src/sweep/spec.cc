#include "sweep/spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "sweep/baseline_cache.h"

namespace unimem::sweep {

namespace {

std::string policy_slug(exp::Policy p) {
  switch (p) {
    case exp::Policy::kDramOnly: return "dram-only";
    case exp::Policy::kNvmOnly: return "nvm-only";
    case exp::Policy::kUnimem: return "unimem";
    case exp::Policy::kXMen: return "xmen";
    case exp::Policy::kManual: return "manual";
  }
  return "?";
}

std::string fmt(const char* pattern, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

/// Which axes change the timing of a point under the given policy.  Axes
/// a policy is insensitive to collapse to their first value, so a static
/// policy is not re-run once per irrelevant grid value (and the DRAM-only
/// machine, whose tiers all run at DRAM speed, ignores the NVM ratios).
struct AxisSensitivity {
  bool nvm_ratios;  ///< nvm_bw_ratio / nvm_lat_mult
  bool dram;        ///< dram_capacity
  bool techniques;  ///< Unimem switch sets
  bool profiler;    ///< profiler_periods (only Unimem profiles online)
  bool dag;         ///< dag_schedules (only Unimem plans migrations)
  bool tiers;       ///< topologies (the DRAM-only machine ignores the ladder)
};

AxisSensitivity sensitivity(exp::Policy p) {
  switch (p) {
    case exp::Policy::kDramOnly:
      return {false, false, false, false, false, false};
    case exp::Policy::kNvmOnly: return {true, false, false, false, false, true};
    case exp::Policy::kUnimem: return {true, true, true, true, true, true};
    case exp::Policy::kXMen:
    case exp::Policy::kManual:
      return {true, true, false, false, false, true};
  }
  return {true, true, true, true, true, true};
}

/// Compact label segment for a topology spec: "hbm:1MiB,dram:4MiB" ->
/// "hbm1M-dram4M"; "" (the classic 2-tier machine) -> "classic".
std::string topology_slug(const std::string& topo) {
  if (topo.empty()) return "classic";
  std::string out;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    const char c = topo[i];
    if (c == ':') continue;
    if (c == ',') {
      out += '-';
      continue;
    }
    if (c == 'i' || c == 'B') continue;  // MiB/KiB/GiB -> M/K/G
    out += c;
  }
  return out;
}

template <typename T>
std::vector<T> first_of(const std::vector<T>& v) {
  return v.empty() ? std::vector<T>{} : std::vector<T>{v.front()};
}

}  // namespace

std::vector<SweepPoint> SweepSpec::expand(const std::string& filter) const {
  std::vector<SweepPoint> out;
  std::size_t index = 0;

  auto emit = [&](const SweepPoint& p) {
    if (filter.empty() || p.label.find(filter) != std::string::npos)
      out.push_back(p);
  };

  for (const std::string& w : workloads) {
    for (exp::Policy policy : policies) {
      const AxisSensitivity sens = sensitivity(policy);
      const auto bws = sens.nvm_ratios ? nvm_bw_ratios : first_of(nvm_bw_ratios);
      const auto lats =
          sens.nvm_ratios ? nvm_lat_mults : first_of(nvm_lat_mults);
      const auto drams = sens.dram ? dram_capacities : first_of(dram_capacities);
      const auto techs = sens.techniques ? techniques : first_of(techniques);
      const auto profs =
          sens.profiler ? profiler_periods : first_of(profiler_periods);
      const auto dags = sens.dag ? dag_schedules : first_of(dag_schedules);
      const auto topos = sens.tiers ? topologies : first_of(topologies);
      for (double bw : bws) {
        for (double lat : lats) {
          for (std::size_t dram : drams) {
            for (int rpn : ranks_per_node) {
              for (const TechniqueSet& tech : techs) {
                for (std::uint64_t prof : profs) {
                 for (rt::DagSchedule dag : dags) {
                 for (const std::string& topo : topos) {
                  SweepPoint p;
                  p.index = index++;
                  p.cfg.workload = w;
                  p.cfg.wcfg.cls = cls;
                  p.cfg.wcfg.iterations = iterations;
                  p.cfg.wcfg.nranks = nranks;
                  p.cfg.wcfg.drift_amplitude = drift_amplitude;
                  p.cfg.wcfg.drift_period = drift_period;
                  p.cfg.replan_epoch = replan_epoch;
                  p.cfg.drift_threshold = drift_threshold;
                  p.cfg.nvm_bw_ratio = bw;
                  p.cfg.nvm_lat_mult = lat;
                  p.cfg.dram_capacity = dram;
                  p.cfg.ranks_per_node = rpn;
                  p.cfg.policy = policy;
                  p.cfg.net = net;
                  p.cfg.unimem = unimem;
                  p.cfg.unimem.enable_global_search = tech.global_search;
                  p.cfg.unimem.enable_local_search = tech.local_search;
                  p.cfg.unimem.enable_chunking = tech.chunking;
                  p.cfg.unimem.enable_initial_placement =
                      tech.initial_placement;
                  if (prof > 0) {
                    p.cfg.unimem.profiler_mode = rt::ProfilerMode::kSampled;
                    p.cfg.unimem.sample_period_mult = prof;
                  }
                  p.cfg.unimem.dag_schedule = dag;
                  p.cfg.tiers = topo;
                  p.normalize = normalize;

                  p.axis["workload"] = w;
                  p.axis["policy"] = policy_slug(policy);
                  if (nvm_bw_ratios.size() > 1)
                    p.axis["bw"] = sens.nvm_ratios ? fmt("%.3g", bw) : "*";
                  if (nvm_lat_mults.size() > 1)
                    p.axis["lat"] = sens.nvm_ratios ? fmt("%.3g", lat) : "*";
                  if (dram_capacities.size() > 1)
                    p.axis["dram"] =
                        sens.dram
                            ? std::to_string(dram / kMiB) + "MiB"
                            : "*";
                  if (ranks_per_node.size() > 1)
                    p.axis["rpn"] = std::to_string(rpn);
                  if (techniques.size() > 1)
                    p.axis["tech"] = sens.techniques ? tech.name : "*";
                  if (profiler_periods.size() > 1)
                    p.axis["prof"] =
                        !sens.profiler
                            ? "*"
                            : prof == 0 ? std::string("exact")
                                        : "s" + std::to_string(prof);
                  if (dag_schedules.size() > 1)
                    p.axis["dag"] =
                        !sens.dag
                            ? "*"
                            : dag == rt::DagSchedule::kSlack ? "slack" : "off";
                  if (topologies.size() > 1)
                    p.axis["tiers"] =
                        sens.tiers ? topology_slug(topo) : "*";

                  p.label = w + "/" + p.axis["policy"];
                  for (const char* key : {"bw", "lat", "dram", "rpn", "tech",
                                          "prof", "dag", "tiers"}) {
                    auto it = p.axis.find(key);
                    if (it != p.axis.end() && it->second != "*")
                      p.label += "/" + std::string(key) + it->second;
                  }
                  emit(p);
                 }
                 }
                }
              }
            }
          }
        }
      }
    }
  }

  for (const ExplicitPoint& e : explicit_points) {
    SweepPoint p;
    p.index = index++;
    p.label = e.label;
    p.axis["workload"] = e.cfg.workload;
    p.axis["policy"] = policy_slug(e.cfg.policy);
    for (const auto& [k, v] : e.axis) p.axis[k] = v;
    p.cfg = e.cfg;
    p.normalize = e.normalize;
    emit(p);
  }
  return out;
}

std::size_t SweepSpec::size() const { return expand().size(); }

std::vector<std::string> SweepSpec::axis_names() const {
  std::vector<std::string> out;
  auto add = [&](const char* n) {
    if (std::find(out.begin(), out.end(), n) == out.end())
      out.push_back(n);
  };
  if (workloads.size() > 1) add("workload");
  if (policies.size() > 1) add("policy");
  if (nvm_bw_ratios.size() > 1) add("bw");
  if (nvm_lat_mults.size() > 1) add("lat");
  if (dram_capacities.size() > 1) add("dram");
  if (ranks_per_node.size() > 1) add("rpn");
  if (techniques.size() > 1) add("tech");
  if (profiler_periods.size() > 1) add("prof");
  if (dag_schedules.size() > 1) add("dag");
  if (topologies.size() > 1) add("tiers");
  // Explicit points contribute whatever pivot keys they carry (fig4's
  // "placement", fig12's "ranks", ...) — appended sorted after the grid
  // axes so the listing stays deterministic.
  std::vector<std::string> extra;
  for (const ExplicitPoint& e : explicit_points)
    for (const auto& [k, v] : e.axis) {
      if (std::find(out.begin(), out.end(), k) != out.end()) continue;
      if (std::find(extra.begin(), extra.end(), k) != extra.end()) continue;
      extra.push_back(k);
    }
  std::sort(extra.begin(), extra.end());
  for (std::string& k : extra) out.push_back(std::move(k));
  return out;
}

std::vector<SweepPoint> shard_slice(const std::vector<SweepPoint>& points,
                                    int shard, int nshards) {
  if (nshards < 1 || shard < 0 || shard >= nshards)
    throw std::invalid_argument("shard_slice: need 0 <= shard < nshards");
  // Deal whole baseline groups — points sharing BaselineService::key,
  // i.e. one memoized DRAM-only run — round-robin in first-seen order, so
  // the per-process caches of a sharded sweep never recompute a neighbor
  // shard's baseline (fig12's nvm-only and unimem rows of one rank count
  // stay together).  When shards outnumber groups that rule would leave
  // shards idle, so fall back to per-point round-robin there.
  std::unordered_map<std::string, std::size_t> group_of;
  std::vector<std::size_t> group(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    group[i] =
        group_of.emplace(BaselineService::key(points[i].cfg), group_of.size())
            .first->second;
  const bool by_group = group_of.size() >= static_cast<std::size_t>(nshards);
  std::vector<SweepPoint> out;
  for (std::size_t i = 0; i < points.size(); ++i)
    if ((by_group ? group[i] : i) % static_cast<std::size_t>(nshards) ==
        static_cast<std::size_t>(shard))
      out.push_back(points[i]);
  return out;
}

SweepSpec smoke_clamped(SweepSpec spec) {
  spec.cls = 'S';
  // Adaptive-re-planning specs need headroom for at least one full epoch
  // cycle (profile -> plan -> epoch wait -> epoch re-profile -> decision
  // at the next iteration top), or smoke/TSan runs would never reach the
  // replan path they exist to exercise: with profile_iterations=2 and
  // replan_epoch=E the first decision fires at iteration 4+E+1.
  const int iter_clamp = spec.replan_epoch > 0 ? 4 + spec.replan_epoch + 1 : 3;
  spec.iterations = std::min(spec.iterations, iter_clamp);
  spec.nranks = std::min(spec.nranks, 2);
  for (auto& e : spec.explicit_points) {
    e.cfg.wcfg.cls = 'S';
    e.cfg.wcfg.iterations = std::min(e.cfg.wcfg.iterations, iter_clamp);
    e.cfg.wcfg.nranks = std::min(e.cfg.wcfg.nranks, 2);
  }
  return spec;
}

bool smoke_requested() {
  return std::getenv("UNIMEM_BENCH_SMOKE") != nullptr;
}

namespace {

/// The six NPB kernels in the paper's presentation order; `with_nek`
/// appends Nek5000-eddy (Figs. 9-13 include it).
std::vector<std::string> npb(bool with_nek) {
  std::vector<std::string> w{"cg", "ft", "bt", "lu", "sp", "mg"};
  if (with_nek) w.push_back("nek");
  return w;
}

std::vector<TechniqueSet> cumulative_techniques() {
  return {
      {"(1)global", true, false, false, false},
      {"(1)+(2)local", true, true, false, false},
      {"+(3)chunking", true, true, true, false},
      {"+(4)initial", true, true, true, true},
  };
}

SweepSpec make_spec(const std::string& name) {
  SweepSpec s;
  s.name = name;
  if (name == "fig2") {
    s.title = "Fig. 2: NVM-only slowdown vs bandwidth";
    s.workloads = npb(false);
    s.policies = {exp::Policy::kNvmOnly};
    s.nvm_bw_ratios = {0.5, 0.25, 0.125};
  } else if (name == "fig3") {
    s.title = "Fig. 3: NVM-only slowdown vs latency";
    s.workloads = npb(false);
    s.policies = {exp::Policy::kNvmOnly};
    s.nvm_bw_ratios = {1.0};
    s.nvm_lat_mults = {2.0, 4.0, 8.0};
  } else if (name == "fig4") {
    // Explicit-only spec (paper Observation 3): per-point manual DRAM
    // placements on SP, two input classes x two NVM configurations.  The
    // DRAM-only reference row is the normalization baseline itself, so it
    // is not a point; the harness prints it as the constant 1.00.
    s.title = "Fig. 4: SP per-object placement";
    s.workloads = {};
    struct NvmCfg {
      const char* slug;
      double bw, lat;
    };
    const NvmCfg nvms[] = {{"bw0.5", 0.5, 1.0}, {"lat4", 1.0, 4.0}};
    const std::pair<const char*, std::vector<std::string>> sets[] = {
        {"in+out", {"in_buffer", "out_buffer"}},
        {"lhs", {"lhs"}},
        {"rhs", {"rhs"}},
    };
    for (char cls : {'C', 'D'}) {
      for (const NvmCfg& n : nvms) {
        exp::RunConfig base;
        base.workload = "sp";
        base.wcfg.cls = cls;
        base.nvm_bw_ratio = n.bw;
        base.nvm_lat_mult = n.lat;
        const std::map<std::string, std::string> axis{
            {"cls", std::string(1, cls)}, {"nvm", n.slug}};
        for (const auto& [slug, names] : sets) {
          SweepSpec::ExplicitPoint e;
          e.cfg = base;
          e.cfg.policy = exp::Policy::kManual;
          e.cfg.manual_dram = names;
          e.label =
              std::string("sp/manual/cls") + cls + "/" + n.slug + "/" + slug;
          e.axis = axis;
          e.axis["placement"] = slug;
          s.explicit_points.push_back(std::move(e));
        }
        SweepSpec::ExplicitPoint e;
        e.cfg = base;
        e.cfg.policy = exp::Policy::kNvmOnly;
        e.label = std::string("sp/nvm-only/cls") + cls + "/" + n.slug;
        e.axis = axis;
        e.axis["placement"] = "nvm-only";
        s.explicit_points.push_back(std::move(e));
      }
    }
  } else if (name == "fig9") {
    s.title = "Fig. 9: policies at NVM = 1/2 DRAM bandwidth";
    s.workloads = npb(true);
    s.policies = {exp::Policy::kNvmOnly, exp::Policy::kXMen,
                  exp::Policy::kUnimem};
  } else if (name == "fig10") {
    s.title = "Fig. 10: policies at NVM = 4x DRAM latency";
    s.workloads = npb(true);
    s.policies = {exp::Policy::kNvmOnly, exp::Policy::kXMen,
                  exp::Policy::kUnimem};
    s.nvm_bw_ratios = {1.0};
    s.nvm_lat_mults = {4.0};
  } else if (name == "fig11") {
    s.title = "Fig. 11: cumulative technique ablation at NVM = 1/2 bandwidth";
    s.workloads = npb(true);
    s.policies = {exp::Policy::kNvmOnly, exp::Policy::kUnimem};
    s.techniques = cumulative_techniques();
  } else if (name == "fig12") {
    // Explicit-only spec: CG strong scaling varies `nranks` per row
    // (2/4/8/16), NUMA-emulated NVM (0.6x bandwidth, 1.89x latency).
    // Each rank count gets its own DRAM-only baseline via the normal
    // normalization path (the BaselineService key includes nranks).
    s.title = "Fig. 12: CG strong scaling, NUMA-emulated NVM";
    s.workloads = {};
    for (int ranks : {2, 4, 8, 16}) {
      for (exp::Policy pol : {exp::Policy::kNvmOnly, exp::Policy::kUnimem}) {
        SweepSpec::ExplicitPoint e;
        e.cfg.workload = "cg";
        e.cfg.wcfg.cls = 'D';
        e.cfg.wcfg.nranks = ranks;
        e.cfg.nvm_bw_ratio = 0.60;  // the paper's NUMA emulation
        e.cfg.nvm_lat_mult = 1.89;
        e.cfg.policy = pol;
        e.label = std::string("cg/") +
                  (pol == exp::Policy::kNvmOnly ? "nvm-only" : "unimem") +
                  "/r" + std::to_string(ranks);
        e.axis["ranks"] = std::to_string(ranks);
        s.explicit_points.push_back(std::move(e));
      }
    }
  } else if (name == "fig13") {
    s.title = "Fig. 13: Unimem vs DRAM size at NVM = 1/2 bandwidth";
    s.workloads = npb(true);
    s.policies = {exp::Policy::kNvmOnly, exp::Policy::kUnimem};
    s.dram_capacities = {4 * kMiB, 8 * kMiB, 16 * kMiB};
  } else if (name == "replan_drift") {
    // Dynamic-workload scenario (not a paper figure): every point runs
    // with seeded per-phase weight drift injected (wl::DriftSchedule), and
    // the Unimem grid points run the adaptive re-planner on a 3-iteration
    // epoch cadence.  The explicit `*/unimem-static` points are the same
    // drifted runs with re-planning off — the one-shot-plan control the
    // adaptive runtime has to beat.
    s.title = "Adaptive re-planning under injected weight drift";
    s.workloads = {"cg", "mg", "nek"};
    s.policies = {exp::Policy::kNvmOnly, exp::Policy::kUnimem};
    s.iterations = 18;
    s.drift_amplitude = 0.35;
    s.drift_period = 3;
    s.replan_epoch = 3;
    s.drift_threshold = 0.15;
    // At this amplitude roughly a third of the units drift each window;
    // a 0.5 budget lets moderate windows take the incremental repair and
    // still kicks wholesale reshuffles to the full DP.
    s.unimem.drift_budget = 0.5;
    for (const std::string& w : s.workloads) {
      SweepSpec::ExplicitPoint e;
      e.cfg.workload = w;
      e.cfg.wcfg.cls = s.cls;
      e.cfg.wcfg.iterations = s.iterations;
      e.cfg.wcfg.nranks = s.nranks;
      e.cfg.wcfg.drift_amplitude = s.drift_amplitude;
      e.cfg.wcfg.drift_period = s.drift_period;
      e.cfg.policy = exp::Policy::kUnimem;
      e.cfg.replan_epoch = 0;  // the control: plan once, never adapt
      e.label = w + "/unimem-static";
      e.axis["mode"] = "static";
      s.explicit_points.push_back(std::move(e));
    }
  } else if (name == "profiler_fidelity") {
    // Sampled-tier fidelity matrix (not a paper figure): every workload
    // planned from the exact profile vs sampled profiles at several base
    // periods.  Normalized times pivot on the "prof" axis; a sampled
    // column near its exact column means the thinner evidence still
    // steered the knapsack to the same placement.
    s.title = "Profiler fidelity: sampled-plan vs exact-plan time";
    s.workloads = npb(true);
    s.policies = {exp::Policy::kUnimem};
    s.profiler_periods = {0, 16, 64, 256};
  } else if (name == "service_stress") {
    // Coordinator stress grid (not a paper figure): 10 bandwidths x 10
    // latencies x 100 DRAM capacities = 10,000 points of the cheapest
    // world we can run (class-S single-rank single-iteration CG under
    // manual placement with nothing placed), sized to exercise the sweep
    // service's dispatch/steal/retry/resume machinery, not the simulator.
    // Tests drive it with a synthetic run_point hook; smoke CI runs a
    // --filter slice through the real CLI.
    s.title = "Sweep service stress: 10k-point synthetic campaign";
    s.workloads = {"cg"};
    s.policies = {exp::Policy::kManual};
    s.cls = 'S';
    s.iterations = 1;
    s.nranks = 1;
    s.normalize = false;
    s.nvm_bw_ratios.clear();
    s.nvm_lat_mults.clear();
    for (int i = 1; i <= 10; ++i) {
      s.nvm_bw_ratios.push_back(i / 10.0);
      s.nvm_lat_mults.push_back(static_cast<double>(i));
    }
    s.dram_capacities.clear();
    for (std::size_t m = 1; m <= 100; ++m)
      s.dram_capacities.push_back(m * kMiB);
  } else if (name == "dag_slack") {
    // Phase-DAG slack scheduling (not a paper figure): nek/lu at tight
    // DRAM allowances, dag_schedule off vs slack.  Tight DRAM forces
    // per-phase migration churn, which is exactly where parking the copy
    // trigger in an earlier slack-covered phase (or, failing that, at the
    // earliest legal trigger with the maximal overlap window) hides copy
    // time that the JIT trigger walk leaves exposed.  The harness and the
    // dag-smoke CI lane read exposed/hidden splits off the in-memory
    // RunResult rows.
    s.title = "Phase-DAG slack scheduling: exposed vs hidden migration time";
    s.workloads = {"nek", "lu"};
    s.policies = {exp::Policy::kUnimem};
    s.nvm_bw_ratios = {0.125};
    s.dram_capacities = {1 * kMiB, 2 * kMiB, 4 * kMiB};
    s.dag_schedules = {rt::DagSchedule::kOff, rt::DagSchedule::kSlack};
    s.normalize = false;
  } else if (name == "tier_sensitivity3") {
    // Fig. 13-style sensitivity on a 3-tier machine (not a paper figure):
    // HBM+DRAM+NVM ladders whose fast-tier allowances scale together, so
    // the "tiers" column plays the role Fig. 13's DRAM-size axis plays on
    // the 2-tier machine.  NVM-only rows are the ladder's no-placement
    // control (everything sits in the backstop regardless of the ladder).
    s.title = "3-tier sensitivity: Unimem vs HBM+DRAM allowance";
    s.workloads = {"cg", "lu", "nek"};
    s.policies = {exp::Policy::kNvmOnly, exp::Policy::kUnimem};
    s.topologies = {"hbm:1MiB,dram:4MiB,nvm:512MiB",
                    "hbm:2MiB,dram:8MiB,nvm:512MiB",
                    "hbm:4MiB,dram:16MiB,nvm:512MiB"};
  } else if (name == "tier_ladder") {
    // Tier-ladder ablation (not a paper figure): the same workloads on the
    // classic 2-tier DRAM+NVM machine, a 3-tier HBM ladder, and a 4-tier
    // ladder that adds a CXL rung between DRAM and NVM.  The HBM+DRAM
    // allowance (10 MiB) stays comparable to the classic 8 MiB DRAM
    // allowance, so column differences isolate what an extra rung buys
    // (or costs) the multiple-choice placement.
    s.title = "Tier-ladder ablation: 2-, 3- and 4-tier machines";
    s.workloads = {"cg", "mg"};
    s.policies = {exp::Policy::kNvmOnly, exp::Policy::kUnimem};
    s.topologies = {"",
                    "hbm:2MiB,dram:8MiB,nvm:512MiB",
                    "hbm:2MiB,dram:8MiB,cxl:32MiB,nvm:512MiB"};
  } else if (name == "table4") {
    // Raw migration statistics (not normalized): one Unimem point per
    // workload at NVM = 1/2 bandwidth; the harness reads the row's
    // RunResult stats directly.
    s.title = "Table 4: migration details at NVM = 1/2 DRAM bandwidth";
    s.workloads = npb(true);
    s.normalize = false;
  }
  return s;
}

}  // namespace

std::vector<std::string> spec_names() {
  return {"fig2",  "fig3",  "fig4",   "fig9",         "fig10",
          "fig11", "fig12", "fig13",  "table4",       "replan_drift",
          "profiler_fidelity", "service_stress", "dag_slack",
          "tier_sensitivity3", "tier_ladder"};
}

std::optional<SweepSpec> spec_by_name(const std::string& name) {
  for (const std::string& n : spec_names())
    if (n == name) return make_spec(name);
  return std::nullopt;
}

}  // namespace unimem::sweep
