#include "sweep/result_store.h"

#include <algorithm>
#include <stdexcept>

namespace unimem::sweep {

using exp::json_escape;

namespace {

std::string num17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

SweepResultStore::~SweepResultStore() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an explicit finish() call is the way
    // to observe CSV write failures.
  }
}

void SweepResultStore::stream_jsonl(const std::string& path) {
  jsonl_ = std::fopen(path.c_str(), "w");
  if (jsonl_ == nullptr)
    throw std::runtime_error("SweepResultStore: cannot open " + path);
}

std::string SweepResultStore::jsonl_line(const SweepRow& row) {
  std::string out;
  auto str_field = [&](const char* key, const std::string& v) {
    out += ",\"";
    out += key;
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  };
  auto raw_field = [&](const char* key, const std::string& v) {
    out += ",\"";
    out += key;
    out += "\":";
    out += v;
  };
  out += "{\"index\":";
  out += std::to_string(row.index);
  str_field("label", row.label);
  out += ",\"axis\":{";
  bool first = true;
  for (const auto& [k, v] : row.axis) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
  raw_field("ok", row.ok ? "true" : "false");
  if (!row.ok) str_field("error", row.error);
  raw_field("time_s", num17(row.result.time_s));
  raw_field("checksum", num17(row.result.checksum));
  if (row.baseline_time_s > 0) {
    raw_field("baseline_time_s", num17(row.baseline_time_s));
    raw_field("normalized", num17(row.normalized));
  }
  raw_field("migrations", std::to_string(row.result.total_migrations));
  raw_field("bytes_moved", std::to_string(row.result.total_bytes_moved));
  raw_field("overhead_pct", num17(row.result.mean_overhead_percent));
  raw_field("overlap_pct", num17(row.result.mean_overlap_percent));
  out += '}';
  return out;
}

void SweepResultStore::add(const SweepRow& row) {
  rows_.push_back(row);
  if (jsonl_ != nullptr) {
    const std::string line = jsonl_line(row);
    std::fputs(line.c_str(), jsonl_);
    std::fputc('\n', jsonl_);
    std::fflush(jsonl_);
  }
}

void SweepResultStore::finish() {
  if (finished_) return;
  finished_ = true;
  std::sort(rows_.begin(), rows_.end(),
            [](const SweepRow& a, const SweepRow& b) { return a.index < b.index; });
  if (jsonl_ != nullptr) {
    std::fclose(jsonl_);
    jsonl_ = nullptr;
  }
  if (csv_path_.empty()) return;
  std::FILE* f = std::fopen(csv_path_.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("SweepResultStore: cannot open " + csv_path_);
  std::fputs(
      "index,label,ok,error,time_s,baseline_time_s,normalized,checksum,"
      "migrations,bytes_moved,overhead_pct,overlap_pct\n",
      f);
  for (const SweepRow& r : rows_) {
    std::string err = r.error;  // keep the row a single CSV record
    std::replace(err.begin(), err.end(), ',', ';');
    std::replace(err.begin(), err.end(), '\n', ' ');
    std::fprintf(f, "%zu,%s,%d,%s,%s,%s,%s,%s,%llu,%llu,%s,%s\n", r.index,
                 r.label.c_str(), r.ok ? 1 : 0, err.c_str(),
                 num17(r.result.time_s).c_str(),
                 num17(r.baseline_time_s).c_str(), num17(r.normalized).c_str(),
                 num17(r.result.checksum).c_str(),
                 static_cast<unsigned long long>(r.result.total_migrations),
                 static_cast<unsigned long long>(r.result.total_bytes_moved),
                 num17(r.result.mean_overhead_percent).c_str(),
                 num17(r.result.mean_overlap_percent).c_str());
  }
  std::fclose(f);
}

exp::Report SweepResultStore::report(const std::string& title) const {
  exp::Report rep(title);
  rep.set_header({"point", "label", "time (ms)", "normalized", "migrations",
                  "status"});
  std::vector<SweepRow> sorted = rows_;
  std::sort(sorted.begin(), sorted.end(),
            [](const SweepRow& a, const SweepRow& b) { return a.index < b.index; });
  for (const SweepRow& r : sorted) {
    rep.add_row({std::to_string(r.index), r.label,
                 exp::Report::num(r.result.time_s * 1e3, 3),
                 r.baseline_time_s > 0 ? exp::Report::num(r.normalized, 3) : "-",
                 std::to_string(r.result.total_migrations),
                 r.ok ? "ok" : ("FAILED: " + r.error)});
  }
  return rep;
}

const SweepRow* find_row(const std::vector<SweepRow>& rows,
                         const std::map<std::string, std::string>& where) {
  for (const SweepRow& r : rows) {
    bool match = true;
    for (const auto& [k, v] : where) {
      auto it = r.axis.find(k);
      if (it == r.axis.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) return &r;
  }
  return nullptr;
}

}  // namespace unimem::sweep
