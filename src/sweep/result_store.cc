#include "sweep/result_store.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace unimem::sweep {

using exp::json_escape;

namespace {

std::string num17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

SweepResultStore::~SweepResultStore() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an explicit finish() call is the way
    // to observe CSV write failures.
  }
}

void SweepResultStore::stream_jsonl(const std::string& path) {
  jsonl_ = std::fopen(path.c_str(), "w");
  if (jsonl_ == nullptr)
    throw std::runtime_error("SweepResultStore: cannot open " + path);
}

std::string SweepResultStore::jsonl_line(const SweepRow& row) {
  std::string out;
  auto str_field = [&](const char* key, const std::string& v) {
    out += ",\"";
    out += key;
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  };
  auto raw_field = [&](const char* key, const std::string& v) {
    out += ",\"";
    out += key;
    out += "\":";
    out += v;
  };
  out += "{\"index\":";
  out += std::to_string(row.index);
  str_field("label", row.label);
  out += ",\"axis\":{";
  bool first = true;
  for (const auto& [k, v] : row.axis) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
  raw_field("ok", row.ok ? "true" : "false");
  if (!row.ok) str_field("error", row.error);
  raw_field("time_s", num17(row.result.time_s));
  raw_field("checksum", num17(row.result.checksum));
  if (row.baseline_time_s > 0) {
    raw_field("baseline_time_s", num17(row.baseline_time_s));
    raw_field("normalized", num17(row.normalized));
  }
  raw_field("migrations", std::to_string(row.result.total_migrations));
  raw_field("bytes_moved", std::to_string(row.result.total_bytes_moved));
  raw_field("overhead_pct", num17(row.result.mean_overhead_percent));
  raw_field("overlap_pct", num17(row.result.mean_overlap_percent));
  out += '}';
  return out;
}

void SweepResultStore::add(const SweepRow& row) {
  rows_.push_back(row);
  if (jsonl_ != nullptr) {
    const std::string line = jsonl_line(row);
    std::fputs(line.c_str(), jsonl_);
    std::fputc('\n', jsonl_);
    std::fflush(jsonl_);
  }
}

void SweepResultStore::finish() {
  if (finished_) return;
  finished_ = true;
  std::sort(rows_.begin(), rows_.end(),
            [](const SweepRow& a, const SweepRow& b) { return a.index < b.index; });
  if (jsonl_ != nullptr) {
    std::fclose(jsonl_);
    jsonl_ = nullptr;
  }
  if (!jsonl_path_.empty()) {
    std::FILE* f = std::fopen(jsonl_path_.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("SweepResultStore: cannot open " + jsonl_path_);
    for (const SweepRow& r : rows_) {
      const std::string line = jsonl_line(r);
      std::fputs(line.c_str(), f);
      std::fputc('\n', f);
    }
    std::fclose(f);
  }
  if (csv_path_.empty()) return;
  std::FILE* f = std::fopen(csv_path_.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("SweepResultStore: cannot open " + csv_path_);
  std::fputs(
      "index,label,ok,error,time_s,baseline_time_s,normalized,checksum,"
      "migrations,bytes_moved,overhead_pct,overlap_pct\n",
      f);
  // Keep every field a single CSV cell: labels come from explicit-point
  // specs (free text, may carry commas), errors from exception messages.
  auto csv_cell = [](std::string v) {
    std::replace(v.begin(), v.end(), ',', ';');
    std::replace(v.begin(), v.end(), '\n', ' ');
    return v;
  };
  for (const SweepRow& r : rows_) {
    std::fprintf(f, "%zu,%s,%d,%s,%s,%s,%s,%s,%llu,%llu,%s,%s\n", r.index,
                 csv_cell(r.label).c_str(), r.ok ? 1 : 0,
                 csv_cell(r.error).c_str(),
                 num17(r.result.time_s).c_str(),
                 num17(r.baseline_time_s).c_str(), num17(r.normalized).c_str(),
                 num17(r.result.checksum).c_str(),
                 static_cast<unsigned long long>(r.result.total_migrations),
                 static_cast<unsigned long long>(r.result.total_bytes_moved),
                 num17(r.result.mean_overhead_percent).c_str(),
                 num17(r.result.mean_overlap_percent).c_str());
  }
  std::fclose(f);
}

exp::Report SweepResultStore::report(const std::string& title) const {
  exp::Report rep(title);
  rep.set_header({"point", "label", "time (ms)", "normalized", "migrations",
                  "status"});
  std::vector<SweepRow> sorted = rows_;
  std::sort(sorted.begin(), sorted.end(),
            [](const SweepRow& a, const SweepRow& b) { return a.index < b.index; });
  for (const SweepRow& r : sorted) {
    rep.add_row({std::to_string(r.index), r.label,
                 exp::Report::num(r.result.time_s * 1e3, 3),
                 r.baseline_time_s > 0 ? exp::Report::num(r.normalized, 3) : "-",
                 std::to_string(r.result.total_migrations),
                 r.ok ? "ok" : ("FAILED: " + r.error)});
  }
  return rep;
}

namespace {

/// Strict sequential cursor over one jsonl_line()-formatted line.  The
/// store always emits keys in a fixed order with no whitespace, so the
/// parser can demand the exact byte shape and fail loudly on anything
/// else (hand-edited or foreign JSON is not merge input).
class LineCursor {
 public:
  explicit LineCursor(const std::string& line) : s_(line) {}

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void expect(const char* lit) {
    if (!literal(lit)) fail(std::string("expected '") + lit + "'");
  }

  /// A JSON string body up to the closing quote, json_escape inverted.
  std::string string_body() {
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      switch (s_[pos_++]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          for (std::size_t i = 0; i < 4; ++i)
            if (std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])) == 0)
              fail("non-hex \\u escape");
          out += static_cast<char>(
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
    expect("\"");
    return out;
  }

  double number() {
    char* end = nullptr;
    const double v = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) fail("expected number");
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    return v;
  }

  unsigned long long unsigned_int() {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s_.c_str() + pos_, &end, 10);
    if (end == s_.c_str() + pos_) fail("expected integer");
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    return v;
  }

  bool done() const { return pos_ == s_.size(); }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("parse_jsonl_line: " + why + " at byte " +
                             std::to_string(pos_) + " of: " + s_);
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

SweepRow parse_jsonl_line(const std::string& line) {
  LineCursor c(line);
  SweepRow row;
  c.expect("{\"index\":");
  row.index = static_cast<std::size_t>(c.unsigned_int());
  c.expect(",\"label\":\"");
  row.label = c.string_body();
  c.expect(",\"axis\":{");
  while (!c.literal("}")) {
    if (!row.axis.empty()) c.expect(",");
    c.expect("\"");
    const std::string key = c.string_body();
    c.expect(":\"");
    row.axis[key] = c.string_body();
  }
  c.expect(",\"ok\":");
  row.ok = c.literal("true");
  if (!row.ok) c.expect("false");
  if (c.literal(",\"error\":\"")) row.error = c.string_body();
  c.expect(",\"time_s\":");
  row.result.time_s = c.number();
  c.expect(",\"checksum\":");
  row.result.checksum = c.number();
  if (c.literal(",\"baseline_time_s\":")) {
    row.baseline_time_s = c.number();
    c.expect(",\"normalized\":");
    row.normalized = c.number();
  }
  c.expect(",\"migrations\":");
  row.result.total_migrations = c.unsigned_int();
  c.expect(",\"bytes_moved\":");
  row.result.total_bytes_moved = c.unsigned_int();
  c.expect(",\"overhead_pct\":");
  row.result.mean_overhead_percent = c.number();
  c.expect(",\"overlap_pct\":");
  row.result.mean_overlap_percent = c.number();
  c.expect("}");
  if (!c.done()) c.fail("trailing bytes");
  return row;
}

std::vector<SweepRow> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("read_jsonl: cannot open " + path);
  std::vector<SweepRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_jsonl_line(line));
  }
  // getline ends on both EOF and stream errors; only EOF means the whole
  // file was read — a read error would otherwise truncate the tail
  // silently.
  if (in.bad()) throw std::runtime_error("read_jsonl: read error on " + path);
  return rows;
}

std::vector<SweepRow> read_jsonl_tolerant(const std::string& path,
                                          std::size_t* dropped) {
  std::ifstream in(path);
  if (!in.good())
    throw std::runtime_error("read_jsonl_tolerant: cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  if (in.bad())
    throw std::runtime_error("read_jsonl_tolerant: read error on " + path);
  if (dropped != nullptr) *dropped = 0;

  std::vector<SweepRow> rows;
  std::map<std::size_t, std::size_t> pos_of;  // index -> slot in rows
  for (std::size_t i = 0; i < lines.size(); ++i) {
    SweepRow row;
    try {
      row = parse_jsonl_line(lines[i]);
    } catch (const std::exception&) {
      // Only the FINAL line may be malformed: that is the torn tail of a
      // writer killed mid-fputs, and dropping it loses one re-runnable
      // point.  A malformed line with complete lines after it is real
      // corruption and still throws.
      if (i + 1 == lines.size()) {
        if (dropped != nullptr) *dropped = 1;
        break;
      }
      throw;
    }
    const auto it = pos_of.find(row.index);
    if (it != pos_of.end()) {
      // Later duplicates win: a resumed campaign appends fresh rows for
      // points whose earlier rows were failures.
      rows[it->second] = row;
    } else {
      pos_of[row.index] = rows.size();
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<SweepRow> merge_shards(const std::vector<std::string>& paths) {
  std::vector<SweepRow> rows;
  for (const std::string& p : paths) {
    std::vector<SweepRow> shard = read_jsonl(p);
    rows.insert(rows.end(), std::make_move_iterator(shard.begin()),
                std::make_move_iterator(shard.end()));
  }
  std::sort(rows.begin(), rows.end(),
            [](const SweepRow& a, const SweepRow& b) { return a.index < b.index; });
  for (std::size_t i = 1; i < rows.size(); ++i)
    if (rows[i].index == rows[i - 1].index)
      throw std::runtime_error(
          "merge_shards: duplicate point index " +
          std::to_string(rows[i].index) +
          " (inputs are overlapping shard runs, not a partition)");
  return rows;
}

const SweepRow* find_row(const std::vector<SweepRow>& rows,
                         const std::map<std::string, std::string>& where) {
  for (const SweepRow& r : rows) {
    bool match = true;
    for (const auto& [k, v] : where) {
      auto it = r.axis.find(k);
      if (it == r.axis.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) return &r;
  }
  return nullptr;
}

}  // namespace unimem::sweep
