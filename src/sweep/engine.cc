#include "sweep/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace unimem::sweep {

SweepEngine::SweepEngine(EngineOptions opts, BaselineService* baselines)
    : opts_(opts), baselines_(baselines != nullptr ? baselines : &owned_) {}

SweepOutcome SweepEngine::run(const std::vector<SweepPoint>& points) {
  const auto t0 = std::chrono::steady_clock::now();

  int jobs = opts_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), points.size()));
  jobs = std::max(jobs, 1);
  const int rank_budget =
      opts_.max_inflight_ranks > 0 ? opts_.max_inflight_ranks : 4 * jobs;

  SweepOutcome out;
  out.rows.resize(points.size());
  out.jobs_used = jobs;

  const std::size_t base_requests = baselines_->requests();
  const std::size_t base_computed = baselines_->computed();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> point_worlds{0};
  std::mutex admit_mu;
  std::condition_variable admit_cv;
  int active_ranks = 0;
  int active_jobs = 0;
  std::mutex result_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      const SweepPoint& p = points[i];
      const int need = std::max(1, p.cfg.wcfg.nranks);

      {
        // Admit by simulated-rank load; a job wider than the whole budget
        // may only run alone (active_jobs == 0), never starves.
        std::unique_lock<std::mutex> lk(admit_mu);
        admit_cv.wait(lk, [&] {
          return active_ranks + need <= rank_budget || active_jobs == 0;
        });
        active_ranks += need;
        ++active_jobs;
      }

      SweepRow row;
      row.index = p.index;
      row.label = p.label;
      row.axis = p.axis;
      try {
        if (p.normalize) {
          const exp::RunResult base = baselines_->dram_baseline(p.cfg);
          row.baseline_time_s = base.time_s;
          // The DRAM-only point IS its own baseline: reuse the memoized
          // run instead of executing the identical World again.
          if (p.cfg.policy == exp::Policy::kDramOnly) {
            row.result = base;
          } else {
            row.result = exp::run_once(p.cfg);
            point_worlds.fetch_add(1);
          }
          row.normalized =
              base.time_s > 0 ? row.result.time_s / base.time_s : 0.0;
        } else {
          row.result = exp::run_once(p.cfg);
          point_worlds.fetch_add(1);
        }
        row.ok = true;
      } catch (const std::exception& e) {
        row.error = e.what();
      } catch (...) {
        row.error = "unknown error";
      }

      {
        std::lock_guard<std::mutex> lk(result_mu);
        if (!row.ok) ++out.failed;
        out.rows[i] = row;
        if (opts_.on_result) opts_.on_result(out.rows[i]);
      }

      {
        std::lock_guard<std::mutex> lk(admit_mu);
        active_ranks -= need;
        --active_jobs;
      }
      admit_cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  out.baseline_requests = baselines_->requests() - base_requests;
  out.baseline_computed = baselines_->computed() - base_computed;
  out.worlds_executed = point_worlds.load() + out.baseline_computed;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  return out;
}

}  // namespace unimem::sweep
