#include "sweep/engine.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/log.h"
#include "common/rng.h"
#include "sweep/result_store.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace unimem::sweep {

double RetryBackoff::delay_s(std::size_t index, int attempt) const {
  if (attempt < 1) return 0.0;
  const double grown = base_s * std::pow(2.0, attempt - 1);
  const double capped = std::min(grown, max_s);
  // Jitter must be a pure function of (seed, index, attempt) so a resumed
  // or re-run campaign reproduces the exact retry schedule.
  Rng mix(seed ^ (static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ull) ^
          (static_cast<std::uint64_t>(attempt) * 0xbf58476d1ce4e5b9ull));
  return capped * (0.5 + 0.5 * mix.uniform());
}

SweepEngine::SweepEngine(EngineOptions opts, BaselineService* baselines)
    : opts_(opts), baselines_(baselines != nullptr ? baselines : &owned_) {}

SweepOutcome SweepEngine::run(const std::vector<SweepPoint>& points) {
  const auto t0 = std::chrono::steady_clock::now();

  int jobs = opts_.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), points.size()));
  jobs = std::max(jobs, 1);
  const int rank_budget =
      opts_.max_inflight_ranks > 0 ? opts_.max_inflight_ranks : 4 * jobs;

  SweepOutcome out;
  out.rows.resize(points.size());
  out.jobs_used = jobs;

  const std::size_t base_requests = baselines_->requests();
  const std::size_t base_computed = baselines_->computed();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> point_worlds{0};
  std::atomic<std::size_t> point_retries{0};
  std::mutex admit_mu;
  std::condition_variable admit_cv;
  int active_ranks = 0;
  int active_jobs = 0;
  std::mutex result_mu;

  auto run_point_once = [&](const SweepPoint& p, int attempt) {
    if (opts_.run_point) return opts_.run_point(p, attempt);
    return exp::run_once(p.cfg);
  };

  std::atomic<int> worker_seq{0};
  auto worker = [&] {
    if (trace::on()) {
      // Sort behind the rank tracks of whatever world is in flight.
      const int w = worker_seq.fetch_add(1);
      trace::set_thread_track("sweep-worker " + std::to_string(w), 200 + w);
    }
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      const SweepPoint& p = points[i];
      const int need = std::max(1, p.cfg.wcfg.nranks);

      {
        // Admit by simulated-rank load; a job wider than the whole budget
        // may only run alone (active_jobs == 0), never starves.
        std::unique_lock<std::mutex> lk(admit_mu);
        admit_cv.wait(lk, [&] {
          return active_ranks + need <= rank_budget || active_jobs == 0;
        });
        active_ranks += need;
        ++active_jobs;
      }

      SweepRow row;
      row.index = p.index;
      row.label = p.label;
      row.axis = p.axis;
      // Retry loop: a failing attempt is re-run (after a deterministic
      // backoff delay) up to max_point_retries extra times.  The row keeps
      // no memory of earlier attempts — a retried success is bitwise
      // identical to a first-try success, preserving golden determinism.
      for (int attempt = 0;; ++attempt) {
        UNIMEM_TRACE_BEGIN2("sweep", "point", -1.0, "index", p.index,
                            "attempt",
                            static_cast<std::uint64_t>(
                                opts_.attempt_base + attempt));
        row.ok = false;
        row.error.clear();
        row.result = exp::RunResult{};
        row.baseline_time_s = 0;
        row.normalized = 0;
        try {
          if (p.normalize) {
            const exp::RunResult base = baselines_->dram_baseline(p.cfg);
            row.baseline_time_s = base.time_s;
            // The DRAM-only point IS its own baseline: reuse the memoized
            // run instead of executing the identical World again.
            if (p.cfg.policy == exp::Policy::kDramOnly &&
                !opts_.run_point) {
              row.result = base;
            } else {
              row.result = run_point_once(p, opts_.attempt_base + attempt);
              point_worlds.fetch_add(1);
            }
            row.normalized =
                base.time_s > 0 ? row.result.time_s / base.time_s : 0.0;
          } else {
            row.result = run_point_once(p, opts_.attempt_base + attempt);
            point_worlds.fetch_add(1);
          }
          row.ok = true;
        } catch (const std::exception& e) {
          row.error = e.what();
        } catch (...) {
          row.error = "unknown error";
        }
        UNIMEM_TRACE_END1("sweep", "point", -1.0, "ok", row.ok ? 1 : 0);
        // Hand finished events (including those of the world's now-dead
        // rank threads) to the recorder so ring memory is bounded by the
        // threads of one point, not the whole sweep.
        if (trace::on()) trace::TraceRecorder::instance().flush();
        if (row.ok || attempt >= opts_.max_point_retries) break;
        point_retries.fetch_add(1);
        UNIMEM_TRACE_INSTANT2("sweep", "retry", -1.0, "index", p.index,
                              "attempt",
                              static_cast<std::uint64_t>(
                                  opts_.attempt_base + attempt + 1));
        const double delay =
            opts_.backoff.delay_s(p.index, opts_.attempt_base + attempt + 1);
        if (delay > 0)
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }

      {
        std::lock_guard<std::mutex> lk(result_mu);
        if (!row.ok) ++out.failed;
        out.rows[i] = row;
        if (opts_.on_result) opts_.on_result(out.rows[i]);
      }

      {
        std::lock_guard<std::mutex> lk(admit_mu);
        active_ranks -= need;
        --active_jobs;
      }
      admit_cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  try {
    for (int j = 0; j < jobs; ++j) pool.emplace_back(worker);
  } catch (const std::system_error&) {
    // Thread creation failed (resource pressure).  Degrade to the workers
    // we got plus this thread instead of unwinding past joinable threads,
    // which would std::terminate the whole process (or sweep task).
    out.jobs_used = static_cast<int>(pool.size()) + 1;
    worker();
  }
  for (auto& t : pool) t.join();

  out.retries = point_retries.load();
  out.baseline_requests = baselines_->requests() - base_requests;
  out.baseline_computed = baselines_->computed() - base_computed;
  out.worlds_executed = point_worlds.load() + out.baseline_computed;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();

  // Publish engine tallies into the global registry (additive across
  // engine runs in one process, e.g. the tasks of an inproc campaign).
  auto& reg = trace::MetricsRegistry::global();
  reg.counter("sweep.points_ok")->add(out.rows.size() - out.failed);
  reg.counter("sweep.points_failed")->add(out.failed);
  reg.counter("sweep.point_retries")->add(out.retries);
  reg.counter("sweep.worlds_executed")->add(out.worlds_executed);
  reg.counter("sweep.baseline_requests")->add(out.baseline_requests);
  reg.counter("sweep.baseline_computed")->add(out.baseline_computed);
  return out;
}

namespace {

std::string shard_path(const std::string& dir, int shard, const char* ext) {
  return dir + "/shard-" + std::to_string(shard) + ext;
}

/// Child-side body: run one shard slice to its JSONL + sidecar files.
/// Never returns; exit code 0 means "ran to completion" (row failures are
/// data, recorded in the JSONL), nonzero means infrastructure failure.
[[noreturn]] void run_shard_child(const std::vector<SweepPoint>& points,
                                  const ShardedOptions& opts, int shard) {
  try {
    SweepResultStore store;
    store.stream_jsonl(shard_path(opts.scratch_dir, shard, ".jsonl"));
    EngineOptions eopts = opts.engine;
    eopts.on_result = [&](const SweepRow& row) { store.add(row); };
    SweepEngine engine(eopts);
    const SweepOutcome out =
        engine.run(shard_slice(points, shard, opts.shards));
    store.finish();

    const std::string meta = shard_path(opts.scratch_dir, shard, ".meta");
    std::FILE* f = std::fopen(meta.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("cannot open " + meta);
    std::fprintf(f, "%zu %zu %zu %zu %d %zu\n", out.worlds_executed,
                 out.baseline_requests, out.baseline_computed, out.failed,
                 out.jobs_used, out.retries);
    std::fclose(f);
  } catch (const std::exception& e) {
    Log::error("sweep shard %d: %s", shard, e.what());
    std::fflush(stderr);
    _exit(3);
  }
  // _exit, not exit: the child shares the parent's stdio buffers and must
  // not flush them a second time on its way out.
  _exit(0);
}

}  // namespace

SweepOutcome run_sharded_processes(const std::vector<SweepPoint>& points,
                                   const ShardedOptions& opts) {
  if (opts.shards < 1)
    throw std::invalid_argument("run_sharded_processes: shards must be >= 1");
  if (opts.scratch_dir.empty())
    throw std::invalid_argument("run_sharded_processes: scratch_dir required");
  const auto t0 = std::chrono::steady_clock::now();

  // Default jobs split the host across the children: N shards each
  // resolving jobs=0 to hardware_concurrency would oversubscribe N-fold.
  ShardedOptions eff = opts;
  if (eff.engine.jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    eff.engine.jobs = std::max(1, static_cast<int>(hw) / eff.shards);
  }

  // Flush before forking so buffered output is not duplicated into every
  // child's address space.
  std::fflush(nullptr);

  std::vector<pid_t> children;
  children.reserve(static_cast<std::size_t>(opts.shards));
  for (int s = 0; s < opts.shards; ++s) {
    const pid_t pid = fork();
    if (pid < 0) {
      for (pid_t c : children) waitpid(c, nullptr, 0);
      throw std::runtime_error("run_sharded_processes: fork failed");
    }
    if (pid == 0) run_shard_child(points, eff, s);
    children.push_back(pid);
  }

  // Wait for every sibling (no orphans left behind), but remember WHICH
  // shards died and how, so the diagnostic names the culprit instead of
  // "a shard child did not run to completion".
  std::string failure_detail;
  for (std::size_t s = 0; s < children.size(); ++s) {
    int status = 0;
    pid_t r;
    while ((r = waitpid(children[s], &status, 0)) == -1 && errno == EINTR) {
    }
    const bool ok =
        r == children[s] && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!ok) {
      if (!failure_detail.empty()) failure_detail += "; ";
      failure_detail += "shard " + std::to_string(s) + " " +
                        (r == children[s] ? describe_wait_status(status)
                                          : "lost to waitpid");
    }
  }
  if (!failure_detail.empty())
    throw std::runtime_error("run_sharded_processes: " + failure_detail);

  SweepOutcome out;
  out.shards = opts.shards;
  std::size_t meta_failed = 0;
  std::vector<std::string> jsonls;
  for (int s = 0; s < opts.shards; ++s) {
    jsonls.push_back(shard_path(opts.scratch_dir, s, ".jsonl"));
    const std::string meta = shard_path(opts.scratch_dir, s, ".meta");
    std::FILE* f = std::fopen(meta.c_str(), "r");
    if (f == nullptr)
      throw std::runtime_error("run_sharded_processes: missing " + meta);
    std::size_t worlds = 0, breq = 0, bcomp = 0, failed = 0, retries = 0;
    int jobs = 0;
    const int n = std::fscanf(f, "%zu %zu %zu %zu %d %zu", &worlds, &breq,
                              &bcomp, &failed, &jobs, &retries);
    std::fclose(f);
    if (n != 6)
      throw std::runtime_error("run_sharded_processes: malformed " + meta);
    out.worlds_executed += worlds;
    out.baseline_requests += breq;
    out.baseline_computed += bcomp;
    out.retries += retries;
    meta_failed += failed;
    // Children run identical engine options, so "jobs used" is the
    // per-child width (report the widest), not the sum — out.shards
    // carries the process fan-out.
    out.jobs_used = std::max(out.jobs_used, jobs);
  }

  out.rows = merge_shards(jsonls);
  if (out.rows.size() != points.size())
    throw std::runtime_error(
        "run_sharded_processes: merged " + std::to_string(out.rows.size()) +
        " rows for " + std::to_string(points.size()) + " points");
  for (const SweepRow& r : out.rows) {
    if (!r.ok) ++out.failed;
    if (opts.engine.on_result) opts.engine.on_result(r);
  }
  // Each child reported its failure count in the sidecar; the merged rows
  // must agree, or the scratch dir held stale artifacts from an earlier
  // run (e.g. a leftover shard file with a different failure pattern).
  if (out.failed != meta_failed)
    throw std::runtime_error(
        "run_sharded_processes: sidecars report " +
        std::to_string(meta_failed) + " failed point(s) but merged rows " +
        "contain " + std::to_string(out.failed) +
        " — stale shard artifacts in " + opts.scratch_dir + "?");
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  return out;
}

std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) return "exited " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "killed by signal " + std::to_string(sig) +
           (name != nullptr ? std::string(" (") + name + ")" : std::string());
  }
  if (WIFSTOPPED(status))
    return "stopped by signal " + std::to_string(WSTOPSIG(status));
  return "unknown wait status " + std::to_string(status);
}

}  // namespace unimem::sweep
