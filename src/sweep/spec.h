// Sweep specifications: a declarative grid over exp::RunConfig axes that
// expands into a deterministic, stably-indexed list of executable points.
//
// A SweepSpec is the batch-service twin of the hand-rolled loops the
// figure harnesses used to carry: it names the axes (workloads, policies,
// NVM bandwidth/latency ratios, DRAM capacities, ranks-per-node, Unimem
// technique sets) and the shared scalars (input class, iterations, rank
// count, network), and expand() produces the cartesian product in
// declaration order.  Every point carries a stable index, a human-readable
// label, and its axis values by name so result consumers can pivot rows
// into figure-shaped tables without re-deriving the expansion order.
//
// The named-spec registry (specs(), spec_by_name()) is shared between the
// `unimem_sweep` CLI and the ported bench harnesses, so "the fig13 sweep"
// means exactly one thing everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "experiments/runner.h"

namespace unimem::sweep {

/// A named set of Unimem technique switches (Fig. 11's cumulative
/// ablation axis).  Applied to RunConfig::unimem for kUnimem points only;
/// static-placement policies ignore technique switches, so the axis does
/// not multiply their points.
struct TechniqueSet {
  std::string name = "all";
  bool global_search = true;
  bool local_search = true;
  bool chunking = true;
  bool initial_placement = true;
};

/// One executable grid point.
struct SweepPoint {
  std::size_t index = 0;       ///< position in expansion order (stable)
  std::string label;           ///< "cg/nvm-only/bw0.50/lat1.0/dram8MiB"
  /// Axis values by name ("workload", "policy", "bw", "lat", "dram",
  /// "rpn", "tech", "prof", "dag") — the pivot keys for table-shaped
  /// consumers.
  std::map<std::string, std::string> axis;
  exp::RunConfig cfg;
  /// Divide time by the memoized DRAM-only baseline of the same
  /// (workload, size, network) when reporting.
  bool normalize = false;
};

struct SweepSpec {
  std::string name;
  std::string title;  ///< report/table title

  // ---- axes (cartesian product, declaration order; empty = default) ----
  std::vector<std::string> workloads{"cg"};
  std::vector<exp::Policy> policies{exp::Policy::kUnimem};
  std::vector<double> nvm_bw_ratios{0.5};
  std::vector<double> nvm_lat_mults{1.0};
  std::vector<std::size_t> dram_capacities{8 * kMiB};
  std::vector<int> ranks_per_node{1};
  std::vector<TechniqueSet> techniques{TechniqueSet{}};
  /// Profiling-tier axis: 0 = exact profiler, N > 0 = sampled profiler
  /// with base period N (rt::RuntimeOptions::sample_period_mult).  Only
  /// kUnimem points are sensitive; static policies never profile.
  std::vector<std::uint64_t> profiler_periods{0};
  /// Phase-DAG scheduling axis (rt::RuntimeOptions::dag_schedule): kOff =
  /// classic JIT triggers, kSlack = critical-path slack-scheduled
  /// triggers.  Only kUnimem points are sensitive.
  std::vector<rt::DagSchedule> dag_schedules{rt::DagSchedule::kOff};
  /// Memory-topology axis (exp::RunConfig::tiers): each entry is a
  /// parse_topology spec ("hbm:1MiB,dram:4MiB,nvm:512MiB") or "" for the
  /// classic 2-tier machine built from the bw/lat/dram axes.  DRAM-only
  /// points are insensitive (their machine ignores the ladder).
  std::vector<std::string> topologies{""};

  // ---- shared scalars --------------------------------------------------
  char cls = 'C';
  int iterations = 10;
  int nranks = 4;
  mpi::NetworkParams net{};
  rt::RuntimeOptions unimem{};  ///< base options; technique sets overlay
  bool normalize = true;

  // ---- dynamic-workload scalars (adaptive re-planning sweeps) ----------
  /// Drift injection applied to every grid point's WorkloadConfig (see
  /// wl::DriftSchedule); 0 amplitude = static workloads (default).
  double drift_amplitude = 0.0;
  int drift_period = 4;
  /// Adaptive re-planning knobs forwarded to RunConfig (kUnimem points
  /// consume them; static policies ignore them).  0 epoch = off.
  int replan_epoch = 0;
  double drift_threshold = 0.25;

  /// Explicit points appended after the grid (label -> config), for
  /// sweeps that are not cartesian: Fig. 4 varies `manual_dram` per row,
  /// Fig. 12 varies `nranks`.  Each point carries its own full RunConfig,
  /// so any per-point field variation works, plus extra axis values (the
  /// pivot keys) merged over the automatic "workload"/"policy" entries.
  /// A spec may be explicit-only: set `workloads = {}` to suppress the
  /// grid entirely.
  struct ExplicitPoint {
    std::string label;
    exp::RunConfig cfg;
    bool normalize = true;
    std::map<std::string, std::string> axis;
  };
  std::vector<ExplicitPoint> explicit_points;

  /// Expand to the deterministic point list.  `filter`, when non-empty,
  /// keeps only points whose label contains it (indices stay those of the
  /// unfiltered expansion, so a filtered run still reports stable ids).
  std::vector<SweepPoint> expand(const std::string& filter = "") const;

  /// Total point count of the unfiltered expansion.
  std::size_t size() const;

  /// Names of the axes this spec actually varies (more than one value, or
  /// contributed by explicit points), in label order — what `unimem_sweep
  /// --list` prints so a reader can tell the sweep's shape from the
  /// registry without expanding it.
  std::vector<std::string> axis_names() const;
};

/// Deterministic shard slice, original order and indices preserved.  The
/// N slices of an expansion partition it exactly (no overlap, no gap),
/// so N processes each running `shard_slice(expand(), i, N)` together
/// cover the spec once.  Assignment is a pure function of the point
/// list: whole baseline groups (points sharing a BaselineService::key)
/// are dealt round-robin so each shard's private baseline cache computes
/// its DRAM-only runs exactly once across the whole fleet; when shards
/// outnumber baseline groups, individual points are dealt round-robin
/// instead so no shard sits idle.  Throws std::invalid_argument unless
/// 0 <= shard < nshards.
std::vector<SweepPoint> shard_slice(const std::vector<SweepPoint>& points,
                                    int shard, int nshards);

/// Shrink a spec to smoke scale (class S, <=3 iterations, <=2 ranks) —
/// the SweepSpec twin of bench::smoke().  Applied by the CLI and the
/// ported harnesses when UNIMEM_BENCH_SMOKE is set in the environment.
SweepSpec smoke_clamped(SweepSpec spec);

/// True when UNIMEM_BENCH_SMOKE is set (any value, even empty).
bool smoke_requested();

/// Names of the built-in specs (paper figure sweeps).
std::vector<std::string> spec_names();

/// Look up a built-in spec; nullopt for unknown names.
std::optional<SweepSpec> spec_by_name(const std::string& name);

}  // namespace unimem::sweep
