// Campaign coordinator: the sweep service's control plane.
//
// run_campaign() drives a set of sweep points to completion through a
// pluggable Launcher (launcher.h), upgrading the static fork topology of
// run_sharded_processes into a fault-tolerant service:
//
//   * CHUNKED DISPATCH — points are dealt to worker slots with
//     shard_slice (whole baseline groups stay together), then each slice
//     is cut into chunks so a finished worker can pick up more work.
//   * WORK STEALING — a worker whose own queue drains takes chunks from
//     the most-loaded sibling's queue tail, so one straggling slice no
//     longer bounds campaign wall-clock.
//   * RETRIES — failed points are re-run with deterministic capped
//     exponential backoff (EngineOptions::max_point_retries inside each
//     task; RetryBackoff schedules are pure functions of seed/point/
//     attempt, so recovery is reproducible).
//   * TASK REASSIGNMENT — a task whose worker DIES (nonzero exit,
//     signal, lost ssh...) has its unfinished points re-dispatched up to
//     max_task_retries times; rows the dead task already streamed are
//     kept (its artifact is read with the crash-tolerant reader).
//   * RESUME — rows from a previous campaign's artifact are accepted
//     up front and their points never re-run (crash-restart).
//
// The coordinator itself NEVER spawns a thread: it is a single-threaded
// event loop around Launcher::wait_any().  That is a hard constraint, not
// a style choice — process launchers fork(), and forking a multi-threaded
// parent whose child spawns threads is forbidden under TSan (and unsound
// in general).  All parallelism lives inside tasks.
//
// Determinism contract: per-point rows are bitwise identical no matter
// which worker ran them, how often they were retried, or whether the
// campaign was resumed — so the final point-ordered rows (and any
// artifact written from them) are byte-identical across every topology.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sweep/launcher.h"

namespace unimem::sweep {

/// Live campaign counters, pushed to on_progress after every task
/// completion (and once at the end with complete=true).  The CLI renders
/// this as the live --summary-json.
struct CampaignProgress {
  std::size_t total = 0;
  std::size_t done = 0;  ///< finalized points (ok + failed + resumed)
  std::size_t failed = 0;
  std::size_t resumed = 0;       ///< points satisfied by resume_rows
  std::size_t retries = 0;       ///< failed point attempts re-run in tasks
  std::size_t steals = 0;        ///< chunks taken from another worker's queue
  std::size_t tasks = 0;         ///< tasks dispatched (incl. re-dispatches)
  std::size_t task_retries = 0;  ///< re-dispatches after a worker died
  bool complete = false;
};

struct CoordinatorOptions {
  Launcher* launcher = nullptr;  ///< required; not owned
  /// Concurrent worker slots (tasks in flight); also the shard_slice
  /// fan-out that decides chunk ownership.
  int workers = 2;
  /// Allow idle workers to take chunks from other workers' queues.
  bool steal = false;
  /// Points per task; 0 = auto (slice/4 per worker, so every worker has
  /// a few chunks to steal or finish early).  Ignored when steal is off
  /// and chunking would only add dispatch overhead: each worker then gets
  /// its whole slice as one task, matching run_sharded_processes.
  std::size_t chunk_points = 0;
  /// Re-dispatch budget for tasks whose worker died; when exhausted the
  /// task's unfinished points are finalized as failed rows naming the
  /// worker's fate.
  int max_task_retries = 2;
  /// Per-task engine options.  max_point_retries/backoff ride inside
  /// (retries happen in the task, concurrently); on_result is ignored —
  /// rows come back through task artifacts and on_final_row.
  EngineOptions engine;
  /// Directory for per-task JSONL artifacts + meta sidecars; must exist.
  std::string scratch_dir;
  /// Rows from a previous campaign's JSONL (read_jsonl_tolerant): ok rows
  /// whose index matches a point are finalized immediately and not
  /// re-run.  Failed resume rows ARE re-run (a resume is a second
  /// chance).  A label mismatch against the point list throws — that is
  /// an artifact from a different spec, not a resumable campaign.
  std::vector<SweepRow> resume_rows;
  /// Campaign-level row sink: called once per point — resumed points
  /// first (in point order), then fresh points in completion order.
  std::function<void(const SweepRow&)> on_final_row;
  std::function<void(const CampaignProgress&)> on_progress;
  /// Ask each task to spill a per-task trace shard ("<artifact>.trace",
  /// binary format) for the coordinator to stitch into the campaign
  /// timeline.  Set this for process-backed launchers only; in-process
  /// tasks already emit into the coordinator's recorder.
  bool trace_tasks = false;
  std::size_t trace_buf = 0;  ///< forwarded to LaunchTask::trace_buf
};

struct CampaignOutcome {
  std::vector<SweepRow> rows;  ///< point (expansion) order
  std::size_t failed = 0;
  std::size_t resumed = 0;
  std::size_t retries = 0;
  std::size_t steals = 0;
  std::size_t tasks = 0;
  std::size_t task_retries = 0;
  double wall_s = 0;
  int workers = 0;
  /// Aggregated from task meta sidecars (tasks launched without a
  /// sidecar-writing body contribute zero).
  std::size_t worlds_executed = 0;
  std::size_t baseline_requests = 0;
  std::size_t baseline_computed = 0;
  int jobs_used = 0;  ///< widest per-task engine width observed
  /// One entry per task that finished with points missing from its
  /// artifact: the worker's fate plus how many points it handed back.
  /// Re-dispatch recovers these; the log says why they happened.
  std::vector<std::string> task_failures;
  /// Binary trace shards harvested from finished tasks (trace_tasks on),
  /// in harvest order.  The caller merges them (trace/export.h) before
  /// the scratch directory is removed.
  std::vector<std::string> trace_shards;
};

CampaignOutcome run_campaign(const std::vector<SweepPoint>& points,
                             const CoordinatorOptions& opts);

}  // namespace unimem::sweep
