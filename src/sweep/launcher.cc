#include "sweep/launcher.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/log.h"
#include "sweep/result_store.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace unimem::sweep {

SweepOutcome run_task_to_artifact(const LaunchTask& task,
                                  BaselineService* baselines) {
  // Per-task trace shard: restart the recorder so a fork child sheds any
  // state inherited from the coordinator's recorder, then spill a binary
  // shard next to the artifact for the coordinator to stitch.  Only
  // process-backed launchers set task.trace — an in-process task emits
  // into the shared recorder directly.
  if (!task.trace.empty()) trace::TraceRecorder::instance().start(task.trace_buf);

  SweepResultStore store;
  store.stream_jsonl(task.artifact);
  EngineOptions eopts = task.engine;
  eopts.attempt_base = task.attempt_base;
  eopts.on_result = [&](const SweepRow& row) { store.add(row); };
  SweepEngine engine(eopts, baselines);
  const SweepOutcome out = engine.run(task.points);
  store.finish();

  if (!task.trace.empty()) {
    trace::TraceData data = trace::TraceRecorder::instance().stop();
    if (!trace::write_binary(data, task.trace))
      Log::warn("sweep task %llu: cannot write trace shard %s",
                static_cast<unsigned long long>(task.task_id),
                task.trace.c_str());
  }

  const std::string meta = task.artifact + ".meta";
  std::FILE* f = std::fopen(meta.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot open " + meta);
  std::fprintf(f, "%zu %zu %zu %zu %d %zu\n", out.worlds_executed,
               out.baseline_requests, out.baseline_computed, out.failed,
               out.jobs_used, out.retries);
  std::fclose(f);
  return out;
}

// ---------------------------------------------------------------------------
// InProcessLauncher

InProcessLauncher::~InProcessLauncher() {
  for (auto& [slot, t] : threads_)
    if (t.joinable()) t.join();
}

void InProcessLauncher::start(const LaunchTask& task) {
  const int slot = task.slot;
  if (threads_.count(slot) != 0)
    throw std::logic_error("InProcessLauncher: slot already running");
  threads_[slot] = std::thread([this, task] {
    LaunchStatus st;
    try {
      run_task_to_artifact(task, &baselines_);
      st.ok = true;
    } catch (const std::exception& e) {
      st.detail = e.what();
    } catch (...) {
      st.detail = "unknown error";
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_.emplace_back(task.slot, std::move(st));
    }
    cv_.notify_all();
  });
}

std::pair<int, LaunchStatus> InProcessLauncher::wait_any() {
  std::pair<int, LaunchStatus> out;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !done_.empty(); });
    out = std::move(done_.front());
    done_.pop_front();
  }
  // Join outside the lock: the task thread's last act (push + notify) is
  // already done, so this join is near-instant.
  auto it = threads_.find(out.first);
  if (it != threads_.end()) {
    it->second.join();
    threads_.erase(it);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ProcessLauncher

void ProcessLauncher::start(const LaunchTask& task) {
  // Flush before forking so buffered output is not duplicated into the
  // child's address space.
  std::fflush(nullptr);
  const pid_t pid = spawn(task);
  slot_of_[pid] = task.slot;
}

std::pair<int, LaunchStatus> ProcessLauncher::wait_any() {
  if (slot_of_.empty())
    throw std::logic_error("ProcessLauncher: wait_any with no children");
  for (;;) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid == -1) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("ProcessLauncher: waitpid: ") +
                               std::strerror(errno));
    }
    const auto it = slot_of_.find(pid);
    if (it == slot_of_.end()) continue;  // not ours (no other forkers here)
    const int slot = it->second;
    slot_of_.erase(it);
    LaunchStatus st;
    st.ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!st.ok) st.detail = describe_wait_status(status);
    return {slot, st};
  }
}

// ---------------------------------------------------------------------------
// ForkLauncher

pid_t ForkLauncher::spawn(const LaunchTask& task) {
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("ForkLauncher: fork failed");
  if (pid == 0) {
    try {
      run_task_to_artifact(task);
    } catch (const std::exception& e) {
      Log::error("sweep task %llu: %s",
                 static_cast<unsigned long long>(task.task_id), e.what());
      std::fflush(stderr);
      _exit(3);
    }
    // _exit, not exit: the child shares the parent's stdio buffers and
    // must not flush them a second time on its way out.
    _exit(0);
  }
  return pid;
}

// ---------------------------------------------------------------------------
// CommandLauncher

pid_t CommandLauncher::spawn(const LaunchTask& task) {
  std::vector<std::string> argv = prefix_;
  std::vector<std::string> tail = make_argv_(task);
  argv.insert(argv.end(), tail.begin(), tail.end());
  if (argv.empty())
    throw std::invalid_argument("CommandLauncher: empty command line");

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (std::string& a : argv) cargv.push_back(a.data());
  cargv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("CommandLauncher: fork failed");
  if (pid == 0) {
    execvp(cargv[0], cargv.data());
    Log::error("sweep task %llu: exec %s: %s",
               static_cast<unsigned long long>(task.task_id), cargv[0],
               std::strerror(errno));
    std::fflush(stderr);
    _exit(127);
  }
  return pid;
}

}  // namespace unimem::sweep
