// Launchers: WHERE a coordinator task runs.
//
// The coordinator (coordinator.h) is a single-threaded dispatch loop; a
// Launcher is its asynchronous execution backend.  start() begins a task,
// wait_any() blocks until some started task finishes and reports whether
// the task BODY ran to completion — row-level failures are data inside
// the task's JSONL artifact, not launcher failures.  Keeping the wait
// side asynchronous is what lets one coordinator overlap many workers
// while itself staying single-threaded, which in turn is what makes
// ForkLauncher safe under TSan (fork() from a multi-threaded process
// whose child then spawns threads is undefined enough that TSan aborts).
//
// Three topologies:
//   * InProcessLauncher — one std::thread per task, shared BaselineService.
//   * ForkLauncher      — fork(); the child runs the task body and _exit()s.
//                         Same isolation model as run_sharded_processes.
//   * CommandLauncher   — fork()+exec of an argv the caller builds per
//                         task (ssh-style: any prefix like {"ssh","host"}
//                         in front of a sweep CLI invocation).  The child
//                         shares nothing with the parent but the artifact
//                         path, which is what makes the artifact format,
//                         not the address space, the contract.
//
// Every task writes rows to its own JSONL artifact; the coordinator reads
// artifacts back with the crash-tolerant reader, so a task killed
// mid-write loses at most its torn last line.
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sweep/engine.h"

namespace unimem::sweep {

/// One unit of coordinator work: run `points` through a SweepEngine and
/// stream their rows to the JSONL `artifact`.
struct LaunchTask {
  int slot = 0;               ///< worker slot the coordinator assigned
  std::uint64_t task_id = 0;  ///< unique within a campaign (artifact names)
  /// Campaign-global attempt number of every point in this task (0 on
  /// first dispatch; retry chunks carry the point's attempt count).
  /// Forwarded to EngineOptions::attempt_base so run_point hooks and
  /// fault-injection schedules see the global attempt even across
  /// process boundaries.
  int attempt_base = 0;
  std::vector<SweepPoint> points;
  std::string artifact;  ///< JSONL path the task streams rows to
  EngineOptions engine;  ///< per-task engine options (on_result is ignored)
  /// Non-empty: the task restarts the trace recorder around its body and
  /// spills a binary trace shard at this path (process-backed launchers
  /// only; in-process tasks share the coordinator's recorder).
  std::string trace;
  std::size_t trace_buf = 0;  ///< ring slots per thread; 0 = default
};

/// Launcher-level verdict for one finished task.  `ok` means the task
/// body ran to completion; when false, `detail` names the cause ("exited
/// 3", "killed by signal 9 (Killed)", an exception message, ...).
struct LaunchStatus {
  bool ok = false;
  std::string detail;
};

/// Task body shared by every launcher: run task.points through a
/// SweepEngine streaming to task.artifact, then write
/// "<artifact>.meta" (same sidecar format as run_sharded_processes) so
/// the coordinator can aggregate world/baseline counters.  The task's
/// on_result is replaced by the artifact stream — the coordinator replays
/// rows to the campaign-level callback itself.  `baselines` may be shared
/// across tasks (in-process launcher); nullptr = task-owned service.
SweepOutcome run_task_to_artifact(const LaunchTask& task,
                                  BaselineService* baselines = nullptr);

class Launcher {
 public:
  virtual ~Launcher() = default;

  /// Begin a task; returns immediately.  Throws on spawn failure.
  virtual void start(const LaunchTask& task) = 0;

  /// Block until any started task finishes; returns its slot + status.
  /// Precondition: at least one task is outstanding.
  virtual std::pair<int, LaunchStatus> wait_any() = 0;

  virtual const char* name() const = 0;
};

/// One std::thread per task inside this process.  Tasks share one
/// BaselineService (keys are pure functions of the point's RunConfig), so
/// baselines memoize across tasks exactly as in a plain engine run.
class InProcessLauncher : public Launcher {
 public:
  ~InProcessLauncher() override;

  void start(const LaunchTask& task) override;
  std::pair<int, LaunchStatus> wait_any() override;
  const char* name() const override { return "inproc"; }

 private:
  BaselineService baselines_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<int, LaunchStatus>> done_;
  std::map<int, std::thread> threads_;  // slot -> running task thread
};

/// Shared fork/waitpid machinery for the two process-backed launchers.
/// The parent must still be effectively single-threaded when start() is
/// called if the child will spawn threads (the coordinator guarantees
/// this by never threading itself).
class ProcessLauncher : public Launcher {
 public:
  void start(const LaunchTask& task) override;
  std::pair<int, LaunchStatus> wait_any() override;

 protected:
  /// Fork-and-run; returns the child pid (parent side only).
  virtual pid_t spawn(const LaunchTask& task) = 0;

 private:
  std::map<pid_t, int> slot_of_;  // outstanding children
};

/// fork(): the child runs run_task_to_artifact and _exit()s — the same
/// code path and exit-code contract as run_sharded_processes children
/// (0 = ran to completion, 3 = infrastructure failure).
class ForkLauncher : public ProcessLauncher {
 public:
  const char* name() const override { return "fork"; }

 protected:
  pid_t spawn(const LaunchTask& task) override;
};

/// fork()+exec of `prefix + make_argv(task)`.  With an empty prefix this
/// re-invokes a local binary (the sweep CLI launches itself); with
/// {"ssh", "host"} the same argv runs remotely — the artifact path is the
/// only coupling, so any transport that can run a command and share a
/// filesystem path works.
class CommandLauncher : public ProcessLauncher {
 public:
  using ArgvBuilder = std::function<std::vector<std::string>(const LaunchTask&)>;

  CommandLauncher(std::vector<std::string> prefix, ArgvBuilder make_argv)
      : prefix_(std::move(prefix)), make_argv_(std::move(make_argv)) {}

  const char* name() const override { return "cmd"; }

 protected:
  pid_t spawn(const LaunchTask& task) override;

 private:
  std::vector<std::string> prefix_;
  ArgvBuilder make_argv_;
};

}  // namespace unimem::sweep
