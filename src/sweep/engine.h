// SweepEngine: bounded-concurrency batch execution of sweep points.
//
// Each job runs one point to completion — its own World (threads-as-ranks),
// its own memory system, nothing shared with other jobs except the
// memoized BaselineService — so jobs are embarrassingly parallel and the
// engine is a straightforward worker pool with three deliberate policies:
//
//   * Admission is bounded by TOTAL SIMULATED RANKS in flight, not job
//     count: a World of 16 ranks is 16 runnable threads, so packing jobs
//     by rank load keeps host oversubscription flat across heterogeneous
//     specs.  A job larger than the whole budget is admitted alone.
//   * Results land at their point's index: the outcome row order is the
//     spec's deterministic expansion order no matter which job finishes
//     first, and per-point values are bitwise identical across any job
//     count (asserted by SweepDeterminism in tests/sweep_test.cc).
//   * Failure isolation: a throwing job (or a throwing baseline it
//     depends on) marks its own row failed and the batch keeps going.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sweep/baseline_cache.h"
#include "sweep/spec.h"

namespace unimem::sweep {

struct SweepRow {
  std::size_t index = 0;
  std::string label;
  std::map<std::string, std::string> axis;
  bool ok = false;
  std::string error;
  exp::RunResult result{};
  /// Set when the point asked for normalization.
  double baseline_time_s = 0;
  double normalized = 0;  ///< result.time_s / baseline_time_s
};

struct SweepOutcome {
  /// One row per executed point, in point (expansion) order.
  std::vector<SweepRow> rows;
  std::size_t failed = 0;
  double wall_s = 0;  ///< host wall-clock for the whole batch
  /// Worker threads actually used (options.jobs resolved against the
  /// hardware and clamped to the point count).  For a sharded run this is
  /// the per-child job count (the largest across children), NOT the sum —
  /// `shards` reports the process fan-out separately.
  int jobs_used = 0;
  /// Shard children of a run_sharded_processes() run; 0 = single process.
  int shards = 0;
  /// Point attempts that failed and were re-run under
  /// EngineOptions::max_point_retries.
  std::size_t retries = 0;
  /// Worlds the engine actually executed: point runs + baseline cache
  /// misses.  A naive serial harness would have executed
  /// rows + baseline_requests worlds.
  std::size_t worlds_executed = 0;
  std::size_t baseline_requests = 0;
  std::size_t baseline_computed = 0;
};

/// Capped exponential backoff with deterministic per-(point, attempt)
/// jitter: delay_s() is a pure function of (seed, index, attempt), so a
/// campaign's retry schedule is reproducible run-to-run — the sweep-layer
/// twin of perf::schedule_seed's determinism contract.
struct RetryBackoff {
  double base_s = 0.05;  ///< delay before the first retry (pre-jitter)
  double max_s = 5.0;    ///< cap on the exponential growth
  std::uint64_t seed = 0x5157454550u;  ///< jitter seed ("SWEEP")
  /// Delay before retry `attempt` (1-based) of point `index`:
  /// min(max_s, base_s * 2^(attempt-1)) scaled by a seeded jitter factor
  /// in [0.5, 1.0) so simultaneous retries cannot thundering-herd.
  double delay_s(std::size_t index, int attempt) const;
};

struct EngineOptions {
  /// Concurrent jobs; 0 = std::thread::hardware_concurrency().
  int jobs = 0;
  /// Admission bound on the sum of in-flight simulated ranks; 0 derives
  /// 4x the job count (each paper-scale job is a 4-rank World).
  int max_inflight_ranks = 0;
  /// Streaming result callback, invoked in completion order; calls are
  /// serialized by the engine.
  std::function<void(const SweepRow&)> on_result;
  /// Per-point retry budget: a failing point is re-run up to this many
  /// extra times (with RetryBackoff delays between attempts) before its
  /// failure row is final.  Retried-then-successful rows are bitwise
  /// identical to first-try successes — attempts are an engine counter
  /// (SweepOutcome::retries), never artifact data — so retries preserve
  /// golden determinism.
  int max_point_retries = 0;
  RetryBackoff backoff{};
  /// First attempt number this engine runs (nonzero when a coordinator
  /// re-dispatches points it already saw fail, so `run_point` hooks and
  /// fault-injection schedules observe the campaign-global attempt).
  int attempt_base = 0;
  /// Point execution hook: when set, replaces exp::run_once for the
  /// point's own run (baselines still go through the BaselineService).
  /// Receives the campaign-global attempt number (attempt_base + local
  /// attempt).  Tests inject synthetic runners and seeded transient
  /// faults here; the CLI's --inject-fail rides the same hook.
  std::function<exp::RunResult(const SweepPoint&, int attempt)> run_point;
};

class SweepEngine {
 public:
  /// `baselines` may be shared across batches (e.g. the CLI reusing one
  /// service over several specs); nullptr = engine-owned service.
  explicit SweepEngine(EngineOptions opts = {},
                       BaselineService* baselines = nullptr);

  SweepOutcome run(const std::vector<SweepPoint>& points);

  BaselineService& baselines() { return *baselines_; }

 private:
  EngineOptions opts_;
  BaselineService owned_;
  BaselineService* baselines_;
};

/// Multi-process topology: fork one child per shard, each running a
/// SweepEngine over its round-robin shard_slice() of `points` and
/// streaming results to `<scratch_dir>/shard-<i>.jsonl`, then stitch the
/// shard files back into one point-ordered outcome in the parent.
///
/// Every child owns its whole address space (its own BaselineService —
/// keys depend only on the point's RunConfig, so a baseline computed in
/// shard 0 is bitwise identical to the same key computed in shard 1),
/// which makes the merged rows byte-identical to a single-process
/// `--jobs 1` run of the same points: asserted by the golden determinism
/// tests and the sweep_shard_golden ctest.
///
/// Must be called before the process spawns any threads (fork() only
/// replicates the calling thread).  `worlds_executed`/baseline counters
/// are summed from per-shard sidecar files; `jobs_used` reports the
/// per-child width and `shards` the process fan-out.  Sidecar failure
/// counts are cross-checked against the merged rows so stale shard
/// artifacts fail loudly instead of corrupting the summary.
struct ShardedOptions {
  int shards = 2;
  /// Per-child engine options (jobs/ranks bound each child separately);
  /// jobs <= 0 defaults to hardware_concurrency / shards so the children
  /// together fill the host instead of oversubscribing it N-fold.
  EngineOptions engine;
  /// Directory for per-shard JSONL + sidecar files; must exist.
  std::string scratch_dir;
};

SweepOutcome run_sharded_processes(const std::vector<SweepPoint>& points,
                                   const ShardedOptions& opts);

/// Human-readable waitpid status: "exited 3", "killed by signal 9 (Killed)",
/// "stopped"...  Shared by the sharded runner and the process launchers so
/// every "child died" diagnostic names the actual cause.
std::string describe_wait_status(int status);

}  // namespace unimem::sweep
