// SweepEngine: bounded-concurrency batch execution of sweep points.
//
// Each job runs one point to completion — its own World (threads-as-ranks),
// its own memory system, nothing shared with other jobs except the
// memoized BaselineService — so jobs are embarrassingly parallel and the
// engine is a straightforward worker pool with three deliberate policies:
//
//   * Admission is bounded by TOTAL SIMULATED RANKS in flight, not job
//     count: a World of 16 ranks is 16 runnable threads, so packing jobs
//     by rank load keeps host oversubscription flat across heterogeneous
//     specs.  A job larger than the whole budget is admitted alone.
//   * Results land at their point's index: the outcome row order is the
//     spec's deterministic expansion order no matter which job finishes
//     first, and per-point values are bitwise identical across any job
//     count (asserted by SweepDeterminism in tests/sweep_test.cc).
//   * Failure isolation: a throwing job (or a throwing baseline it
//     depends on) marks its own row failed and the batch keeps going.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sweep/baseline_cache.h"
#include "sweep/spec.h"

namespace unimem::sweep {

struct SweepRow {
  std::size_t index = 0;
  std::string label;
  std::map<std::string, std::string> axis;
  bool ok = false;
  std::string error;
  exp::RunResult result{};
  /// Set when the point asked for normalization.
  double baseline_time_s = 0;
  double normalized = 0;  ///< result.time_s / baseline_time_s
};

struct SweepOutcome {
  /// One row per executed point, in point (expansion) order.
  std::vector<SweepRow> rows;
  std::size_t failed = 0;
  double wall_s = 0;  ///< host wall-clock for the whole batch
  /// Worker threads actually used (options.jobs resolved against the
  /// hardware and clamped to the point count).
  int jobs_used = 0;
  /// Worlds the engine actually executed: point runs + baseline cache
  /// misses.  A naive serial harness would have executed
  /// rows + baseline_requests worlds.
  std::size_t worlds_executed = 0;
  std::size_t baseline_requests = 0;
  std::size_t baseline_computed = 0;
};

struct EngineOptions {
  /// Concurrent jobs; 0 = std::thread::hardware_concurrency().
  int jobs = 0;
  /// Admission bound on the sum of in-flight simulated ranks; 0 derives
  /// 4x the job count (each paper-scale job is a 4-rank World).
  int max_inflight_ranks = 0;
  /// Streaming result callback, invoked in completion order; calls are
  /// serialized by the engine.
  std::function<void(const SweepRow&)> on_result;
};

class SweepEngine {
 public:
  /// `baselines` may be shared across batches (e.g. the CLI reusing one
  /// service over several specs); nullptr = engine-owned service.
  explicit SweepEngine(EngineOptions opts = {},
                       BaselineService* baselines = nullptr);

  SweepOutcome run(const std::vector<SweepPoint>& points);

  BaselineService& baselines() { return *baselines_; }

 private:
  EngineOptions opts_;
  BaselineService owned_;
  BaselineService* baselines_;
};

/// Multi-process topology: fork one child per shard, each running a
/// SweepEngine over its round-robin shard_slice() of `points` and
/// streaming results to `<scratch_dir>/shard-<i>.jsonl`, then stitch the
/// shard files back into one point-ordered outcome in the parent.
///
/// Every child owns its whole address space (its own BaselineService —
/// keys depend only on the point's RunConfig, so a baseline computed in
/// shard 0 is bitwise identical to the same key computed in shard 1),
/// which makes the merged rows byte-identical to a single-process
/// `--jobs 1` run of the same points: asserted by the golden determinism
/// tests and the sweep_shard_golden ctest.
///
/// Must be called before the process spawns any threads (fork() only
/// replicates the calling thread).  `worlds_executed`/baseline counters
/// are summed from per-shard sidecar files; `jobs_used` reports the sum
/// over children.
struct ShardedOptions {
  int shards = 2;
  /// Per-child engine options (jobs/ranks bound each child separately);
  /// jobs <= 0 defaults to hardware_concurrency / shards so the children
  /// together fill the host instead of oversubscribing it N-fold.
  EngineOptions engine;
  /// Directory for per-shard JSONL + sidecar files; must exist.
  std::string scratch_dir;
};

SweepOutcome run_sharded_processes(const std::vector<SweepPoint>& points,
                                   const ShardedOptions& opts);

}  // namespace unimem::sweep
