#include "experiments/runner.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "baselines/static_context.h"
#include "baselines/xmen.h"
#include "trace/metrics.h"

namespace unimem::exp {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kDramOnly: return "DRAM-only";
    case Policy::kNvmOnly: return "NVM-only";
    case Policy::kUnimem: return "Unimem";
    case Policy::kXMen: return "X-Men";
    case Policy::kManual: return "manual";
  }
  return "?";
}

namespace {

struct Node {
  std::unique_ptr<mem::HeteroMemory> hms;
  std::unique_ptr<mem::DramArbiter> arbiter;
};

/// Build the per-node memory systems for a run.
std::vector<Node> make_nodes(const RunConfig& cfg, bool dram_speed_everywhere) {
  const int nnodes =
      (cfg.wcfg.nranks + cfg.ranks_per_node - 1) / cfg.ranks_per_node;
  // NVM must hold every rank's footprint with headroom for migration churn.
  const std::size_t nvm_cap =
      static_cast<std::size_t>(cfg.ranks_per_node) *
      (2 * cfg.wcfg.rank_bytes() + 32 * kMiB);
  // The DRAM *allowance* (what the arbiter enforces and the planner packs)
  // is cfg.dram_capacity; the backing arena carries 2x slack because real
  // allocations go through paged virtual memory and are not defeated by
  // physical contiguity at object granularity.
  const std::size_t dram_arena = 2 * cfg.dram_capacity + 4 * kMiB;
  std::vector<Node> nodes(static_cast<std::size_t>(nnodes));
  if (!cfg.tiers.empty() && !dram_speed_everywhere) {
    // Explicit N-tier topology.  Spec capacities are per-node *allowances*:
    // every constrained tier's arena carries the same 2x slack as the
    // classic DRAM arena, the backstop is grown to hold every rank's
    // footprint, and the arbiter meters exactly the spec'd allowances.
    mem::TopologyConfig topo = mem::parse_topology(cfg.tiers);
    std::vector<std::size_t> allowances(topo.num_tiers(),
                                        mem::DramArbiter::kUnbounded);
    for (std::size_t k = 0; k + 1 < topo.num_tiers(); ++k) {
      allowances[k] = topo.tiers[k].capacity_bytes;
      topo.tiers[k].capacity_bytes =
          2 * topo.tiers[k].capacity_bytes + 4 * kMiB;
    }
    topo.tiers.back().capacity_bytes =
        std::max(topo.tiers.back().capacity_bytes, nvm_cap);
    for (auto& n : nodes) {
      n.hms = std::make_unique<mem::HeteroMemory>(topo);
      n.arbiter = std::make_unique<mem::DramArbiter>(allowances);
    }
    return nodes;
  }
  for (auto& n : nodes) {
    mem::HmsConfig hc;
    if (dram_speed_everywhere) {
      // DRAM-only machine: the "NVM" tier runs at DRAM speed; capacity is
      // irrelevant to timing, placement stays trivially in that tier.
      hc = mem::HmsConfig{
          mem::TierConfig::dram_basis(dram_arena),
          mem::TierConfig::nvm_scaled(nvm_cap, 1.0, 1.0)};
    } else {
      hc = mem::HmsConfig{
          mem::TierConfig::dram_basis(dram_arena),
          mem::TierConfig::nvm_scaled(nvm_cap, cfg.nvm_bw_ratio,
                                      cfg.nvm_lat_mult)};
    }
    n.hms = std::make_unique<mem::HeteroMemory>(hc);
    n.arbiter = std::make_unique<mem::DramArbiter>(cfg.dram_capacity);
  }
  return nodes;
}

struct PassResult {
  double time_s = 0;
  double checksum = 0;
  std::vector<rt::RuntimeStats> stats;
  std::map<std::string, baseline::ObjectProfile> profiles;  // offline pass
};

/// One full SPMD execution under a given placement mode.
PassResult run_pass(const RunConfig& cfg, Policy policy,
                    const std::vector<std::string>& manual_dram,
                    bool record_profile) {
  auto nodes = make_nodes(cfg, policy == Policy::kDramOnly);
  mpi::World world(cfg.wcfg.nranks, cfg.net, cfg.ranks_per_node);

  PassResult out;
  out.stats.resize(static_cast<std::size_t>(cfg.wcfg.nranks));
  std::vector<double> times(static_cast<std::size_t>(cfg.wcfg.nranks), 0.0);
  std::vector<double> sums(static_cast<std::size_t>(cfg.wcfg.nranks), 0.0);
  std::mutex profile_mu;

  world.run([&](mpi::Comm& comm) {
    const int r = comm.rank();
    Node& node = nodes[static_cast<std::size_t>(comm.node())];
    auto workload = wl::make_workload(cfg.workload);

    if (policy == Policy::kUnimem) {
      rt::RuntimeOptions opts = cfg.unimem;
      opts.ranks_per_node = cfg.ranks_per_node;
      if (cfg.replan_epoch != 0) {
        opts.replan_epoch = cfg.replan_epoch;
        opts.drift_threshold = cfg.drift_threshold;
      }
      rt::Runtime runtime(opts, node.hms.get(), node.arbiter.get(), &comm);
      sums[r] = workload->run_rank(runtime, cfg.wcfg);
      out.stats[r] = runtime.stats();
      times[r] = comm.clock().now();
    } else {
      baseline::StaticContextOptions sopts;
      sopts.timing = cfg.unimem.timing;
      sopts.cache = cfg.unimem.cache;
      sopts.use_exact_cache = cfg.unimem.use_exact_cache;
      sopts.record_profile = record_profile;
      baseline::PlacementFn place;
      switch (policy) {
        case Policy::kDramOnly:
        case Policy::kNvmOnly:
          place = baseline::nvm_only();  // DRAM-only differs via tier speed
          break;
        default:
          place = baseline::manual(manual_dram);
          break;
      }
      baseline::StaticContext ctx(sopts, node.hms.get(), node.arbiter.get(),
                                  &comm, place);
      sums[r] = workload->run_rank(ctx, cfg.wcfg);
      times[r] = comm.clock().now();
      if (record_profile && r == 0) {
        std::lock_guard<std::mutex> lk(profile_mu);
        out.profiles = ctx.profiles();
      }
    }
  });

  out.time_s = *std::max_element(times.begin(), times.end());
  for (double s : sums) out.checksum += s;
  return out;
}

}  // namespace

RunResult run_once(const RunConfig& cfg) {
  std::vector<std::string> manual = cfg.manual_dram;
  Policy policy = cfg.policy;

  if (policy == Policy::kXMen) {
    // Offline PIN-style profiling pass: everything in NVM, ground-truth
    // per-object aggregates recorded; then a static benefit-density
    // placement for the measured pass.
    RunConfig prof_cfg = cfg;
    prof_cfg.wcfg.iterations = std::max(2, cfg.wcfg.iterations / 4);
    PassResult prof =
        run_pass(prof_cfg, Policy::kNvmOnly, {}, /*record_profile=*/true);
    mem::HmsConfig hc{
        mem::TierConfig::dram_basis(cfg.dram_capacity),
        mem::TierConfig::nvm_scaled(0, cfg.nvm_bw_ratio, cfg.nvm_lat_mult)};
    manual = baseline::xmen_placement(
        prof.profiles, hc,
        cfg.dram_capacity / static_cast<std::size_t>(cfg.ranks_per_node));
    policy = Policy::kManual;
  }

  PassResult pass = run_pass(cfg, policy, manual, false);

  RunResult out;
  out.time_s = pass.time_s;
  out.checksum = pass.checksum;
  if (!pass.stats.empty()) out.stats = pass.stats[0];
  double overhead = 0, overlap = 0;
  int n = 0;
  for (const rt::RuntimeStats& s : pass.stats) {
    out.total_migrations += s.migration.migrations;
    out.total_bytes_moved += s.migration.bytes_moved;
    out.total_copy_s += s.migration.copy_time_s;
    out.total_exposed_s += s.migration.exposed_migration_s();
    out.dag_critical_path_s =
        std::max(out.dag_critical_path_s, s.dag_critical_path_s);
    if (s.total_time_s > 0) {
      overhead += s.overhead_percent();
      overlap += s.migration.overlap_percent();
      ++n;
    }
  }
  if (n > 0) {
    out.mean_overhead_percent = overhead / n;
    out.mean_overlap_percent = overlap / n;
  }

  // Fold per-run tallies into the global registry (additive across the
  // runs of a sweep); the CLI snapshots this into --summary-json.
  auto& reg = trace::MetricsRegistry::global();
  reg.counter("runtime.migrations")->add(out.total_migrations);
  reg.counter("runtime.bytes_moved")->add(out.total_bytes_moved);
  std::uint64_t replan_checks = 0, repairs = 0, solves = 0, reprofiles = 0;
  for (const rt::RuntimeStats& s : pass.stats) {
    replan_checks += s.replan_checks;
    repairs += s.incremental_repairs;
    solves += s.full_replans;
    reprofiles += s.reprofiles;
  }
  reg.counter("runtime.replan_checks")->add(replan_checks);
  reg.counter("runtime.incremental_repairs")->add(repairs);
  reg.counter("runtime.full_replans")->add(solves);
  reg.counter("runtime.reprofiles")->add(reprofiles);
  reg.histogram("runtime.world_time_s")->observe(out.time_s);
  reg.histogram("runtime.migration_copy_s")->observe(out.total_copy_s);
  reg.histogram("runtime.migration_exposed_s")->observe(out.total_exposed_s);
  reg.histogram("runtime.migration_hidden_s")
      ->observe(out.total_copy_s - out.total_exposed_s);
  return out;
}

double normalized_time(const RunConfig& cfg, double* dram_time_out) {
  RunConfig dram = cfg;
  dram.policy = Policy::kDramOnly;
  RunResult base = run_once(dram);
  RunResult r = run_once(cfg);
  if (dram_time_out != nullptr) *dram_time_out = base.time_s;
  return base.time_s > 0 ? r.time_s / base.time_s : 0.0;
}

}  // namespace unimem::exp
