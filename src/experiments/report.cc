#include "experiments/report.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>

namespace unimem::exp {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// "" / "1" / "-" mean "append to stdout" (the historic UNIMEM_CSV
/// behavior); anything else is a per-report file prefix.
bool env_means_stdout(const char* v) {
  return v[0] == '\0' || std::string(v) == "1" || std::string(v) == "-";
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("Report: cannot open " + path);
  std::fputs(content.c_str(), f);
  std::fclose(f);
}

}  // namespace

std::string Report::slug() const {
  if (!slug_.empty()) return slug_;
  std::string s;
  bool dash = false;
  for (char c : title_) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      dash = false;
    } else if (!s.empty() && !dash) {
      s += '-';
      dash = true;
    }
    if (s.size() >= 48) break;
  }
  while (!s.empty() && s.back() == '-') s.pop_back();
  if (s.empty()) s = "report";

  // Per-process uniqueness: a second report with the same title gets a
  // numeric suffix instead of silently overwriting the first one's files.
  static std::mutex mu;
  static std::set<std::string> used;
  std::lock_guard<std::mutex> lk(mu);
  std::string candidate = s;
  for (int n = 2; used.count(candidate) != 0; ++n)
    candidate = s + "-" + std::to_string(n);
  used.insert(candidate);
  slug_ = candidate;
  return slug_;
}

std::string Report::to_csv() const {
  std::string out;
  auto row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ',';
      out += cells[i];
    }
    out += '\n';
  };
  row(header_);
  for (const auto& r : rows_) row(r);
  return out;
}

std::string Report::to_jsonl() const {
  std::string out;
  for (const auto& r : rows_) {
    out += "{\"report\":\"" + json_escape(title_) + "\"";
    for (std::size_t i = 0; i < r.size(); ++i) {
      const std::string key =
          i < header_.size() ? header_[i] : "col" + std::to_string(i);
      out += ",\"" + json_escape(key) + "\":\"" + json_escape(r[i]) + "\"";
    }
    out += "}\n";
  }
  return out;
}

void Report::save_csv(const std::string& path) const {
  write_file(path, to_csv());
}

void Report::save_jsonl(const std::string& path) const {
  write_file(path, to_jsonl());
}

void Report::print(std::FILE* out) const {
  std::fprintf(out, "\n== %s ==\n", title_.c_str());

  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      std::fprintf(out, "%-*s  ", static_cast<int>(i < width.size() ? width[i] : 8),
                   row[i].c_str());
    std::fputc('\n', out);
  };
  print_row(header_);
  for (std::size_t i = 0; i < width.size(); ++i)
    std::fprintf(out, "%s  ", std::string(width[i], '-').c_str());
  std::fputc('\n', out);
  for (const auto& r : rows_) print_row(r);

  // Environment-driven side outputs are best-effort: an unwritable
  // prefix must not abort a harness that already printed its table.
  if (const char* csv = std::getenv("UNIMEM_CSV"); csv != nullptr) {
    if (env_means_stdout(csv)) {
      std::fprintf(out, "\ncsv,%s\n", title_.c_str());
      auto csv_row = [&](const std::vector<std::string>& row) {
        std::fputs("csv", out);
        for (const auto& c : row) std::fprintf(out, ",%s", c.c_str());
        std::fputc('\n', out);
      };
      csv_row(header_);
      for (const auto& r : rows_) csv_row(r);
    } else {
      try {
        save_csv(std::string(csv) + "-" + slug() + ".csv");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "Report: UNIMEM_CSV: %s\n", e.what());
      }
    }
  }
  if (const char* jsonl = std::getenv("UNIMEM_JSONL"); jsonl != nullptr) {
    if (env_means_stdout(jsonl)) {
      std::fputs(to_jsonl().c_str(), out);
    } else {
      try {
        save_jsonl(std::string(jsonl) + "-" + slug() + ".jsonl");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "Report: UNIMEM_JSONL: %s\n", e.what());
      }
    }
  }
}

}  // namespace unimem::exp
