#include "experiments/report.h"

#include <algorithm>
#include <cstdlib>

namespace unimem::exp {

void Report::print(std::FILE* out) const {
  std::fprintf(out, "\n== %s ==\n", title_.c_str());

  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      std::fprintf(out, "%-*s  ", static_cast<int>(i < width.size() ? width[i] : 8),
                   row[i].c_str());
    std::fputc('\n', out);
  };
  print_row(header_);
  for (std::size_t i = 0; i < width.size(); ++i)
    std::fprintf(out, "%s  ", std::string(width[i], '-').c_str());
  std::fputc('\n', out);
  for (const auto& r : rows_) print_row(r);

  if (std::getenv("UNIMEM_CSV") != nullptr) {
    std::fprintf(out, "\ncsv,%s\n", title_.c_str());
    auto csv_row = [&](const std::vector<std::string>& row) {
      std::fputs("csv", out);
      for (const auto& c : row) std::fprintf(out, ",%s", c.c_str());
      std::fputc('\n', out);
    };
    csv_row(header_);
    for (const auto& r : rows_) csv_row(r);
  }
}

}  // namespace unimem::exp
