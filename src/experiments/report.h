// Minimal fixed-width table printer for the bench binaries, so every
// figure/table harness prints rows in the same aligned format the paper's
// tables use.  Also writes CSV next to stdout when UNIMEM_CSV is set.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace unimem::exp {

class Report {
 public:
  explicit Report(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols) { header_ = std::move(cols); }
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Format helper: fixed-precision double.
  static std::string num(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
  }

  void print(std::FILE* out = stdout) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace unimem::exp
