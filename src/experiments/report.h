// Minimal fixed-width table printer for the bench binaries, so every
// figure/table harness prints rows in the same aligned format the paper's
// tables use.  Besides the stdout table, a report can serialize itself as
// CSV and JSONL — either explicitly (save_csv/save_jsonl) or driven by the
// UNIMEM_CSV / UNIMEM_JSONL environment variables at print() time:
//
//   UNIMEM_CSV=      (empty, "1" or "-")  csv,... lines appended to stdout
//   UNIMEM_CSV=path/prefix                <prefix>-<title-slug>.csv
//
// and the same for UNIMEM_JSONL.  File names are derived per report from
// the title slug (made unique within the process), so several reports in
// one binary never clobber each other's files.  Concurrent *processes*
// printing identically-titled reports still share a path — give each run
// its own prefix (e.g. UNIMEM_CSV=out/run-$$) to separate them.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace unimem::exp {

/// Minimal JSON string escaping (quotes, backslash, control chars) —
/// shared by Report::to_jsonl and the sweep result store.
std::string json_escape(const std::string& s);

class Report {
 public:
  explicit Report(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols) { header_ = std::move(cols); }
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Format helper: fixed-precision double.
  static std::string num(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
  }

  /// Aligned table to `out`, plus any UNIMEM_CSV / UNIMEM_JSONL output.
  void print(std::FILE* out = stdout) const;

  /// Filesystem-safe slug of the title, unique within this process (a
  /// repeated title gets a "-2", "-3", ... suffix on first use).
  std::string slug() const;

  /// Whole table as CSV (header + rows, comma-separated).
  std::string to_csv() const;
  /// One JSON object per row, keyed by header column names.
  std::string to_jsonl() const;

  /// Explicit file output (throws std::runtime_error on open failure).
  void save_csv(const std::string& path) const;
  void save_jsonl(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  mutable std::string slug_;  ///< assigned on first slug() call
};

}  // namespace unimem::exp
