// Experiment runner: executes one (workload, policy, system configuration)
// combination and reports the virtual execution time and runtime stats.
// Every bench binary in bench/ is a thin sweep over run_once().
//
// Topology: ranks are threads; every `ranks_per_node` consecutive ranks
// share one simulated node = one HeteroMemory (tier arenas) + one
// DramArbiter (the user-level DRAM space service).
#pragma once

#include <string>
#include <vector>

#include "core/runtime.h"
#include "minimpi/comm.h"
#include "simmem/hetero_memory.h"
#include "workloads/workload.h"

namespace unimem::exp {

enum class Policy { kDramOnly, kNvmOnly, kUnimem, kXMen, kManual };

const char* policy_name(Policy p);

struct RunConfig {
  std::string workload = "cg";
  wl::WorkloadConfig wcfg{};
  /// NVM tier relative to DRAM (the paper's sweep axes).
  double nvm_bw_ratio = 0.5;
  double nvm_lat_mult = 1.0;
  /// Node DRAM allowance (paper default 256 MB -> scaled 8 MiB).
  std::size_t dram_capacity = 8 * kMiB;
  /// Explicit N-tier topology spec, e.g. "hbm:1MiB,dram:4MiB,nvm:512MiB"
  /// (parse_topology grammar; capacities are per-node allowances).  Empty
  /// (the default) builds the classic 2-tier DRAM+NVM machine from the
  /// fields above; DRAM-only baselines always ignore this.  Tier speeds
  /// come from the named backend presets, so nvm_bw_ratio/nvm_lat_mult do
  /// not apply to an explicit topology.
  std::string tiers{};
  int ranks_per_node = 1;
  Policy policy = Policy::kUnimem;
  /// DRAM-resident object names for Policy::kManual (Fig. 4).
  std::vector<std::string> manual_dram{};
  /// Adaptive re-planning knobs (Policy::kUnimem): re-profile every
  /// `replan_epoch` enforcing iterations and repair the plan
  /// incrementally when only a few per-unit weights drifted past
  /// `drift_threshold` (see core/replan.h).  0 = off.  When nonzero these
  /// top-level knobs override `unimem.replan_epoch`/`drift_threshold`, so
  /// sweeps can vary them per point without cloning RuntimeOptions.
  int replan_epoch = 0;
  double drift_threshold = 0.25;
  /// Technique switches etc. for Policy::kUnimem.
  rt::RuntimeOptions unimem{};
  mpi::NetworkParams net{};
};

struct RunResult {
  double time_s = 0;          ///< max rank virtual time (the app's time)
  double checksum = 0;        ///< reduced workload checksum
  rt::RuntimeStats stats{};   ///< rank-0 Unimem stats (zero for baselines)
  /// Sum over ranks (Table 4 reports per-run totals).
  std::uint64_t total_migrations = 0;
  std::uint64_t total_bytes_moved = 0;
  double mean_overhead_percent = 0;
  double mean_overlap_percent = 0;
  /// Migration time split across all ranks (seconds of modeled copy time
  /// and the part of it exposed on the critical path).  In-memory only —
  /// not serialized into sweep CSV/JSONL rows, which stay byte-stable.
  double total_copy_s = 0;
  double total_exposed_s = 0;
  /// Longest weighted path through the last phase DAG (dag_schedule=slack
  /// only; max over ranks, 0 otherwise).
  double dag_critical_path_s = 0;
};

/// Run one configuration to completion.  For Policy::kXMen this runs the
/// offline profiling pass first, then the measured pass.
RunResult run_once(const RunConfig& cfg);

/// Convenience: time of `cfg` normalized to a DRAM-only run of the same
/// workload/size (the paper normalizes every figure this way).
double normalized_time(const RunConfig& cfg, double* dram_time_out = nullptr);

}  // namespace unimem::exp
