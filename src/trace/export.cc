#include "trace/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

namespace unimem::trace {

namespace {

// JSON string escaping, local to the exporter so the trace library does
// not pull in the experiments report code.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- binary encoding helpers (little-endian, explicit widths) -------------

void put_u32(std::FILE* f, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  std::fwrite(b, 1, 4, f);
}

void put_u64(std::FILE* f, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  std::fwrite(b, 1, 8, f);
}

void put_f64(std::FILE* f, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(f, bits);
}

bool get_u32(std::FILE* f, std::uint32_t* v) {
  unsigned char b[4];
  if (std::fread(b, 1, 4, f) != 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return true;
}

bool get_u64(std::FILE* f, std::uint64_t* v) {
  unsigned char b[8];
  if (std::fread(b, 1, 8, f) != 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return true;
}

bool get_f64(std::FILE* f, double* v) {
  std::uint64_t bits;
  if (!get_u64(f, &bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

constexpr char kMagic[8] = {'U', 'N', 'I', 'M', 'T', 'R', 'C', '1'};
// Defensive parse bounds: a spill this size would be hundreds of GiB.
constexpr std::uint32_t kMaxTableEntries = 1u << 26;

struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

TraceData::TraceData() {
  strings.push_back("");          // index 0: the absent string
  tracks.push_back({"untracked", 1 << 20});
}

std::uint32_t TraceData::intern(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  for (std::uint32_t i = 0; i < strings.size(); ++i)
    if (strings[i] == s) return i;
  strings.emplace_back(s);
  return static_cast<std::uint32_t>(strings.size() - 1);
}

const std::string& TraceData::str(std::uint32_t idx) const {
  return idx < strings.size() ? strings[idx] : strings[0];
}

void merge_into(TraceData* base, const TraceData& shard,
                const std::string& track_prefix) {
  // Wall alignment: shift the shard by the epoch delta, clamped at zero
  // so a shard whose recorder started before base's keeps its origin
  // rather than underflowing.
  std::uint64_t shift_ns = 0;
  if (base->epoch_realtime_ns != 0 && shard.epoch_realtime_ns != 0 &&
      shard.epoch_realtime_ns > base->epoch_realtime_ns)
    shift_ns = shard.epoch_realtime_ns - base->epoch_realtime_ns;

  std::vector<std::uint32_t> smap(shard.strings.size(), 0);
  for (std::uint32_t i = 1; i < shard.strings.size(); ++i)
    smap[i] = base->intern(shard.strings[i].c_str());

  std::vector<std::uint32_t> tmap(shard.tracks.size(), 0);
  for (std::uint32_t i = 1; i < shard.tracks.size(); ++i) {
    TraceTrack t = shard.tracks[i];
    t.name = track_prefix + t.name;
    base->tracks.push_back(std::move(t));
    tmap[i] = static_cast<std::uint32_t>(base->tracks.size() - 1);
  }

  base->events.reserve(base->events.size() + shard.events.size());
  for (TraceEventRow row : shard.events) {
    row.cat = row.cat < smap.size() ? smap[row.cat] : 0;
    row.name = row.name < smap.size() ? smap[row.name] : 0;
    row.arg_name0 = row.arg_name0 < smap.size() ? smap[row.arg_name0] : 0;
    row.arg_name1 = row.arg_name1 < smap.size() ? smap[row.arg_name1] : 0;
    row.track = row.track < tmap.size() ? tmap[row.track] : 0;
    row.wall_ns += shift_ns;
    base->events.push_back(row);
  }
  base->dropped += shard.dropped;
}

void sort_events(TraceData* data) {
  std::stable_sort(data->events.begin(), data->events.end(),
                   [](const TraceEventRow& a, const TraceEventRow& b) {
                     return a.wall_ns < b.wall_ns;
                   });
}

bool write_chrome_json(const TraceData& data, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  FileCloser closer{f};

  std::fprintf(f, "{\"traceEvents\":[\n");
  bool first = true;
  auto sep = [&] {
    if (!first) std::fprintf(f, ",\n");
    first = false;
  };

  // Metadata: two processes (clock domains), each with one named thread
  // per track.  tid = track index + 1 (Perfetto dislikes tid 0).
  const struct {
    int pid;
    const char* name;
  } clocks[] = {{1, "virtual time"}, {2, "wall time"}};
  for (const auto& clk : clocks) {
    sep();
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                 "\"args\":{\"name\":\"%s\"}}",
                 clk.pid, clk.name);
    for (std::uint32_t t = 0; t < data.tracks.size(); ++t) {
      sep();
      std::fprintf(f,
                   "{\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
                   "\"name\":\"thread_name\","
                   "\"args\":{\"name\":\"%s\"}}",
                   clk.pid, t + 1, json_escape(data.tracks[t].name).c_str());
      sep();
      std::fprintf(f,
                   "{\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
                   "\"name\":\"thread_sort_index\","
                   "\"args\":{\"sort_index\":%d}}",
                   clk.pid, t + 1, data.tracks[t].sort_hint);
    }
  }

  auto emit_one = [&](const TraceEventRow& e, int pid, double ts_us) {
    sep();
    std::fprintf(f,
                 "{\"ph\":\"%c\",\"pid\":%d,\"tid\":%u,\"ts\":%.3f,"
                 "\"cat\":\"%s\",\"name\":\"%s\"",
                 e.phase, pid, e.track + 1, ts_us,
                 json_escape(data.str(e.cat)).c_str(),
                 json_escape(data.str(e.name)).c_str());
    const bool has_args = e.arg_name0 != 0 || e.arg_name1 != 0;
    if (has_args) {
      std::fprintf(f, ",\"args\":{");
      bool afirst = true;
      if (e.arg_name0 != 0) {
        std::fprintf(f, "\"%s\":%" PRIu64,
                     json_escape(data.str(e.arg_name0)).c_str(), e.arg0);
        afirst = false;
      }
      if (e.arg_name1 != 0)
        std::fprintf(f, "%s\"%s\":%" PRIu64, afirst ? "" : ",",
                     json_escape(data.str(e.arg_name1)).c_str(), e.arg1);
      std::fprintf(f, "}");
    }
    if (e.phase == 'i') std::fprintf(f, ",\"s\":\"t\"");
    std::fprintf(f, "}");
  };

  for (const TraceEventRow& e : data.events) {
    if (e.vt >= 0.0) emit_one(e, 1, e.vt * 1e6);
    emit_one(e, 2, static_cast<double>(e.wall_ns) / 1e3);
  }

  std::fprintf(f,
               "\n],\"displayTimeUnit\":\"ms\","
               "\"otherData\":{\"format\":\"unimem-trace\","
               "\"epoch_realtime_ns\":%" PRIu64 ",\"dropped\":%" PRIu64 "}}\n",
               data.epoch_realtime_ns, data.dropped);
  return std::ferror(f) == 0;
}

bool write_binary(const TraceData& data, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  FileCloser closer{f};

  std::fwrite(kMagic, 1, sizeof kMagic, f);
  put_u64(f, data.epoch_realtime_ns);
  put_u64(f, data.dropped);

  put_u32(f, static_cast<std::uint32_t>(data.strings.size()));
  for (const std::string& s : data.strings) {
    put_u32(f, static_cast<std::uint32_t>(s.size()));
    std::fwrite(s.data(), 1, s.size(), f);
  }

  put_u32(f, static_cast<std::uint32_t>(data.tracks.size()));
  for (const TraceTrack& t : data.tracks) {
    put_u32(f, static_cast<std::uint32_t>(t.name.size()));
    std::fwrite(t.name.data(), 1, t.name.size(), f);
    put_u32(f, static_cast<std::uint32_t>(t.sort_hint));
  }

  put_u64(f, static_cast<std::uint64_t>(data.events.size()));
  for (const TraceEventRow& e : data.events) {
    put_u32(f, e.cat);
    put_u32(f, e.name);
    put_u32(f, e.arg_name0);
    put_u32(f, e.arg_name1);
    put_u64(f, e.arg0);
    put_u64(f, e.arg1);
    put_f64(f, e.vt);
    put_u64(f, e.wall_ns);
    put_u32(f, e.track);
    std::fputc(e.phase, f);
  }
  return std::ferror(f) == 0;
}

bool read_binary(const std::string& path, TraceData* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  FileCloser closer{f};

  char magic[8];
  if (std::fread(magic, 1, sizeof magic, f) != sizeof magic ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    return false;

  TraceData data;
  data.strings.clear();
  data.tracks.clear();
  if (!get_u64(f, &data.epoch_realtime_ns)) return false;
  if (!get_u64(f, &data.dropped)) return false;

  std::uint32_t nstr = 0;
  if (!get_u32(f, &nstr) || nstr == 0 || nstr > kMaxTableEntries) return false;
  data.strings.reserve(nstr);
  for (std::uint32_t i = 0; i < nstr; ++i) {
    std::uint32_t len = 0;
    if (!get_u32(f, &len) || len > kMaxTableEntries) return false;
    std::string s(len, '\0');
    if (len != 0 && std::fread(s.data(), 1, len, f) != len) return false;
    data.strings.push_back(std::move(s));
  }

  std::uint32_t ntrk = 0;
  if (!get_u32(f, &ntrk) || ntrk == 0 || ntrk > kMaxTableEntries) return false;
  data.tracks.reserve(ntrk);
  for (std::uint32_t i = 0; i < ntrk; ++i) {
    std::uint32_t len = 0;
    if (!get_u32(f, &len) || len > kMaxTableEntries) return false;
    TraceTrack t;
    t.name.resize(len);
    if (len != 0 && std::fread(t.name.data(), 1, len, f) != len) return false;
    std::uint32_t hint = 0;
    if (!get_u32(f, &hint)) return false;
    t.sort_hint = static_cast<int>(hint);
    data.tracks.push_back(std::move(t));
  }

  std::uint64_t nev = 0;
  if (!get_u64(f, &nev)) return false;
  data.events.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(nev, kMaxTableEntries)));
  for (std::uint64_t i = 0; i < nev; ++i) {
    TraceEventRow e;
    if (!get_u32(f, &e.cat) || !get_u32(f, &e.name) ||
        !get_u32(f, &e.arg_name0) || !get_u32(f, &e.arg_name1) ||
        !get_u64(f, &e.arg0) || !get_u64(f, &e.arg1) || !get_f64(f, &e.vt) ||
        !get_u64(f, &e.wall_ns) || !get_u32(f, &e.track))
      return false;
    const int ph = std::fgetc(f);
    if (ph == EOF) return false;
    e.phase = static_cast<char>(ph);
    data.events.push_back(e);
  }
  *out = std::move(data);
  return true;
}

std::vector<TraceSummaryRow> summarize(const TraceData& data) {
  struct Acc {
    std::uint64_t count = 0;
    double wall_total_s = 0.0;
    double vt_total_s = 0.0;
    std::uint64_t truncated = 0;
  };
  // (cat idx, name idx) -> accumulator; per-track stacks match B/E pairs.
  std::map<std::pair<std::uint32_t, std::uint32_t>, Acc> acc;
  std::map<std::uint32_t, std::vector<TraceEventRow>> open;  // track -> stack

  std::vector<TraceEventRow> events = data.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEventRow& a, const TraceEventRow& b) {
                     return a.wall_ns < b.wall_ns;
                   });

  for (const TraceEventRow& e : events) {
    const auto key = std::make_pair(e.cat, e.name);
    switch (e.phase) {
      case 'B':
        open[e.track].push_back(e);
        break;
      case 'E': {
        auto& stack = open[e.track];
        // Unwind to the matching begin; tolerate torn traces where the
        // open was dropped by ring overflow.  Each non-matching BEGIN the
        // unwind discards is a span whose END never arrived — count it as
        // truncated under its own (cat, name) instead of losing it.
        while (!stack.empty()) {
          const TraceEventRow b = stack.back();
          stack.pop_back();
          if (b.cat == e.cat && b.name == e.name) {
            Acc& a = acc[key];
            ++a.count;
            a.wall_total_s +=
                static_cast<double>(e.wall_ns - b.wall_ns) / 1e9;
            if (b.vt >= 0.0 && e.vt >= 0.0) a.vt_total_s += e.vt - b.vt;
            break;
          }
          ++acc[std::make_pair(b.cat, b.name)].truncated;
        }
        break;
      }
      case 'i':
      case 'C':
        ++acc[key].count;
        break;
      default:
        break;
    }
  }

  // Whatever is still open after the last event is torn too: the writer
  // never emitted the END (crash mid-span, or the final span of a spill
  // cut off at the iteration the trace stopped).
  for (const auto& kv : open)
    for (const TraceEventRow& b : kv.second)
      ++acc[std::make_pair(b.cat, b.name)].truncated;

  std::vector<TraceSummaryRow> rows;
  rows.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    TraceSummaryRow r;
    r.cat = data.str(key.first);
    r.name = data.str(key.second);
    r.count = a.count;
    r.wall_total_s = a.wall_total_s;
    r.vt_total_s = a.vt_total_s;
    r.truncated = a.truncated;
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(),
            [](const TraceSummaryRow& a, const TraceSummaryRow& b) {
              if (a.cat != b.cat) return a.cat < b.cat;
              return a.name < b.name;
            });
  return rows;
}

}  // namespace unimem::trace
