// Low-overhead structured tracing (heapprofd's always-on framing from
// SNIPPETS.md #1: a cheap event stream mined out of band, never a
// perturbation of the thing being measured).
//
// Model: typed span/instant/counter events on per-thread tracks.  Every
// event carries a wall-clock timestamp (steady ns since recorder start)
// and, when the emitter lives inside a simulated World, the virtual time
// too — exporters render both clocks (export.h).  Event and category
// names must be string literals (static storage): the hot path stores the
// pointers and interning happens once, at drain time.
//
// Cost contract (BM_TraceEmitProduction in bench/micro_components.cc and
// `trace_emit_overhead` in BENCH_components.json):
//   * compiled out       — define UNIMEM_TRACE_DISABLED: the macros expand
//     to nothing and no trace symbol is referenced;
//   * runtime-disabled   — one relaxed atomic load + branch (<= 1 ns);
//   * enabled            — raw TSC-class timestamp + lock-free SPSC ring
//     push (<= 50 ns), no allocation, no syscall, no lock.  clock_gettime
//     would alone blow the budget on VM-class hosts, so events carry raw
//     ticks and the drain converts them to ns against steady_clock.
//
// Concurrency: each thread owns the producer side of its own ring; the
// drainer (flush/stop, any single thread) owns every consumer side.  A
// full ring drops the NEW event and counts it (TraceData::dropped) — a
// tracer that blocks or reallocates on overflow would perturb exactly the
// schedules it exists to observe.  Virtual time is never advanced by
// tracing, so traced and untraced runs produce bit-identical artifacts
// (asserted by the trace_golden ctest).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/export.h"

namespace unimem::trace {

enum class Phase : char {
  kBegin = 'B',    ///< span open (matched by kEnd on the same track)
  kEnd = 'E',      ///< span close
  kInstant = 'i',  ///< point event
  kCounter = 'C',  ///< sampled counter value (arg0)
};

/// One buffered event.  POD on purpose: the ring copies it by value and
/// the name/category/arg-name pointers must be string literals.
struct Event {
  const char* cat = nullptr;
  const char* name = nullptr;
  const char* arg_name0 = nullptr;
  const char* arg_name1 = nullptr;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  double vt = -1.0;         ///< virtual seconds; < 0 = no virtual clock
  std::uint64_t ticks = 0;  ///< raw timestamp (TSC-class counter), stamped
                            ///< by emit; converted to wall ns at drain
  std::uint32_t track = 0;  ///< stamped by emit
  Phase phase = Phase::kInstant;
};

/// Single-producer single-consumer lock-free ring.  The producer is the
/// owning thread (push), the consumer is whoever drains the recorder
/// (pop_into) — TSan-clean through the usual acquire/release pairing.
/// Indices grow monotonically and are masked into the slot array, so
/// wraparound is exercised continuously, not as an edge case.
class Ring {
 public:
  /// `capacity` is rounded up to a power of two, minimum 8.
  explicit Ring(std::size_t capacity);

  /// Producer side.  False (and a dropped count) when the ring is full.
  bool push(const Event& e);

  /// Consumer side: move every currently-visible event into `out`,
  /// returning how many were taken.
  std::size_t pop_into(std::vector<Event>* out);

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }

  /// Owner-side farewell: the owning thread is exiting and will never
  /// push again.  The release store pairs with the drainer's retired()
  /// acquire, so a drain that observes retirement sees every push —
  /// use_count() alone cannot give that ordering.
  void retire() { retired_.store(true, std::memory_order_release); }
  bool retired() const { return retired_.load(std::memory_order_acquire); }

 private:
  std::vector<Event> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};     ///< next write (producer)
  std::atomic<std::uint64_t> tail_{0};     ///< next read (consumer)
  std::atomic<std::uint64_t> dropped_{0};  ///< producer-side overflow count
  std::atomic<bool> retired_{false};       ///< owner thread exited
};

/// Fast-path gate: a relaxed load of this flag, inlined at every macro
/// site, is the whole cost of disabled-at-runtime tracing.
extern std::atomic<bool> g_trace_on;
inline bool on() { return g_trace_on.load(std::memory_order_relaxed); }

/// Process-wide recorder: a registry of per-thread rings plus the track
/// table.  Threads register lazily on first emit (or eagerly through
/// set_thread_track); start/stop/flush are the drain side.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Enable tracing with `buf_events` ring slots per thread (0 = default
  /// 16Ki).  Restarts cleanly when already active: prior buffered events,
  /// tracks, and thread registrations are discarded — which is exactly
  /// what a forked task child needs to shed its parent's state.
  void start(std::size_t buf_events = 0);

  /// True between start() and stop().
  bool active() const { return on(); }

  /// Drain every ring into the accumulated TraceData (safe while
  /// producers keep emitting; call from one thread at a time).
  void flush();

  /// Disable, drain the tail, and return everything recorded since
  /// start().  The recorder is reusable afterwards.
  TraceData stop();

  /// Name the calling thread's track ("rank 0", "sweep-worker 3", ...).
  /// Registers the thread if needed; renames its track otherwise.
  /// `sort_hint` orders tracks in the exported timeline (lower = higher).
  void set_thread_track(const std::string& name, int sort_hint = 0);

  /// Append `e` (stamped with wall time + track) to the calling thread's
  /// ring.  No-op when inactive.
  void emit(Event e);

  /// Epoch (CLOCK_REALTIME ns) of the most recent start() — lets a merge
  /// align wall clocks across processes (export.h merge_into).
  std::uint64_t epoch_realtime_ns() const { return epoch_realtime_ns_; }

 private:
  TraceRecorder() = default;

  /// Per-thread view, cached in a thread_local and revalidated against
  /// generation_ so a restart (or fork-child restart) re-registers.  The
  /// destructor retires the ring, letting flush() reap it safely once
  /// the owning thread is gone.
  struct ThreadState {
    std::uint64_t generation = ~std::uint64_t{0};
    std::shared_ptr<Ring> ring;
    std::uint32_t track = 0;

    ~ThreadState() {
      if (ring != nullptr) ring->retire();
    }
  };

  struct RegisteredRing {
    std::shared_ptr<Ring> ring;
  };

  static ThreadState& thread_state();

  /// Slow path: (re-)register the calling thread under the current
  /// generation, naming its track `default_name` if it has none yet.
  void register_thread(ThreadState* ts, const std::string& default_name,
                       int sort_hint);

  std::atomic<std::uint64_t> generation_{0};

  std::mutex mu_;  ///< guards rings_, data_, buf_events_
  std::vector<RegisteredRing> rings_;
  TraceData data_;  ///< accumulates drained events + the track table
  std::size_t buf_events_ = 0;
  std::uint64_t epoch_realtime_ns_ = 0;
  std::uint64_t start_steady_ns_ = 0;
  std::uint64_t start_ticks_ = 0;  ///< fast_ticks() at start(); drain origin
};

// ---- emit helpers (called through the macros below) -----------------------

void emit_event(Phase ph, const char* cat, const char* name, double vt,
                const char* an0 = nullptr, std::uint64_t a0 = 0,
                const char* an1 = nullptr, std::uint64_t a1 = 0);

/// Name the current thread's track; safe to call when tracing is off.
void set_thread_track(const std::string& name, int sort_hint = 0);

}  // namespace unimem::trace

// ---------------------------------------------------------------------------
// Macro surface.  UNIMEM_TRACE_DISABLED compiles every site to nothing
// (arguments unevaluated); otherwise each site is the runtime-flag branch
// plus, when enabled, one emit.  `vt` is virtual seconds (pass -1.0 for
// wall-only emitters such as the sweep layer).
#ifndef UNIMEM_TRACE_DISABLED

#define UNIMEM_TRACE_EMIT_(ph, cat, name, vt, ...)                      \
  do {                                                                  \
    if (::unimem::trace::on())                                          \
      ::unimem::trace::emit_event(::unimem::trace::Phase::ph, (cat),    \
                                  (name), (vt), ##__VA_ARGS__);         \
  } while (0)

#define UNIMEM_TRACE_BEGIN(cat, name, vt) \
  UNIMEM_TRACE_EMIT_(kBegin, cat, name, vt)
#define UNIMEM_TRACE_BEGIN1(cat, name, vt, an0, a0) \
  UNIMEM_TRACE_EMIT_(kBegin, cat, name, vt, an0,    \
                     static_cast<std::uint64_t>(a0))
#define UNIMEM_TRACE_BEGIN2(cat, name, vt, an0, a0, an1, a1)             \
  UNIMEM_TRACE_EMIT_(kBegin, cat, name, vt, an0,                         \
                     static_cast<std::uint64_t>(a0), an1,                \
                     static_cast<std::uint64_t>(a1))
#define UNIMEM_TRACE_END(cat, name, vt) UNIMEM_TRACE_EMIT_(kEnd, cat, name, vt)
#define UNIMEM_TRACE_END1(cat, name, vt, an0, a0) \
  UNIMEM_TRACE_EMIT_(kEnd, cat, name, vt, an0, static_cast<std::uint64_t>(a0))
#define UNIMEM_TRACE_END2(cat, name, vt, an0, a0, an1, a1)               \
  UNIMEM_TRACE_EMIT_(kEnd, cat, name, vt, an0,                           \
                     static_cast<std::uint64_t>(a0), an1,                \
                     static_cast<std::uint64_t>(a1))
#define UNIMEM_TRACE_INSTANT(cat, name, vt) \
  UNIMEM_TRACE_EMIT_(kInstant, cat, name, vt)
#define UNIMEM_TRACE_INSTANT1(cat, name, vt, an0, a0) \
  UNIMEM_TRACE_EMIT_(kInstant, cat, name, vt, an0,    \
                     static_cast<std::uint64_t>(a0))
#define UNIMEM_TRACE_INSTANT2(cat, name, vt, an0, a0, an1, a1)           \
  UNIMEM_TRACE_EMIT_(kInstant, cat, name, vt, an0,                       \
                     static_cast<std::uint64_t>(a0), an1,                \
                     static_cast<std::uint64_t>(a1))
#define UNIMEM_TRACE_COUNTER(cat, name, vt, value)     \
  UNIMEM_TRACE_EMIT_(kCounter, cat, name, vt, "value", \
                     static_cast<std::uint64_t>(value))

#else  // UNIMEM_TRACE_DISABLED

#define UNIMEM_TRACE_BEGIN(...) do {} while (0)
#define UNIMEM_TRACE_BEGIN1(...) do {} while (0)
#define UNIMEM_TRACE_BEGIN2(...) do {} while (0)
#define UNIMEM_TRACE_END(...) do {} while (0)
#define UNIMEM_TRACE_END1(...) do {} while (0)
#define UNIMEM_TRACE_END2(...) do {} while (0)
#define UNIMEM_TRACE_INSTANT(...) do {} while (0)
#define UNIMEM_TRACE_INSTANT1(...) do {} while (0)
#define UNIMEM_TRACE_INSTANT2(...) do {} while (0)
#define UNIMEM_TRACE_COUNTER(...) do {} while (0)

#endif  // UNIMEM_TRACE_DISABLED
